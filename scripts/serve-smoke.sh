#!/usr/bin/env bash
# serve-smoke: the crash-resume equivalence gate for aelite-serve.
#
# Runs the same campaign twice: once uninterrupted (baseline), once
# kill -9'd mid-run and resumed from the journal. The final artifacts
# must be byte-identical, the resumed server must skip the journaled
# shards, and a SIGTERM drain must exit 0 within its deadline.
set -euo pipefail

WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT
cd "$(dirname "$0")/.."

go build -o "$WORK/aelite-serve" ./cmd/aelite-serve

ADDR=127.0.0.1:18080
SPEC='{"family":"uniform","conns":8,"shards":8,"seed":42,"warmup_ns":1000,"measure_ns":40000}'

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "serve-smoke: server never became healthy" >&2
  return 1
}

submit_job() { # -> job id on stdout
  curl -fsS "http://$ADDR/api/jobs" -d "$SPEC" |
    grep -o '"id": "[^"]*"' | head -1 | cut -d'"' -f4
}

wait_artifact() { # $1 = artifacts dir, $2 = job id
  for _ in $(seq 1 300); do
    [ -f "$1/$2.json" ] && return 0
    sleep 0.1
  done
  echo "serve-smoke: artifact $1/$2.json never appeared" >&2
  return 1
}

# --- Baseline: uninterrupted run -------------------------------------
"$WORK/aelite-serve" -addr "$ADDR" -journal "$WORK/base.journal" \
  -artifacts "$WORK/base" -workers 1 >"$WORK/base.log" 2>&1 &
BASE_PID=$!
wait_healthy
JOB=$(submit_job)
echo "serve-smoke: submitted job $JOB"
wait_artifact "$WORK/base" "$JOB"
kill -TERM "$BASE_PID"
wait "$BASE_PID" || { echo "serve-smoke: baseline drain exited non-zero" >&2; exit 1; }

# --- Crash run: kill -9 once shards are journaled, then resume -------
"$WORK/aelite-serve" -addr "$ADDR" -journal "$WORK/crash.journal" \
  -artifacts "$WORK/crash" -workers 1 >"$WORK/crash1.log" 2>&1 &
CRASH_PID=$!
wait_healthy
[ "$(submit_job)" = "$JOB" ] || { echo "serve-smoke: job id differs across runs" >&2; exit 1; }
for _ in $(seq 1 300); do
  if [ "$(grep -c '"t":"shard"' "$WORK/crash.journal" 2>/dev/null || true)" -ge 2 ]; then
    break
  fi
  sleep 0.05
done
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
DONE_SHARDS=$(grep -c '"t":"shard"' "$WORK/crash.journal" || true)
if grep -q '"t":"done"' "$WORK/crash.journal"; then
  echo "serve-smoke: warning: campaign finished before kill -9; resume path not exercised" >&2
fi
echo "serve-smoke: killed -9 with $DONE_SHARDS/8 shards journaled"

"$WORK/aelite-serve" -addr "$ADDR" -journal "$WORK/crash.journal" \
  -artifacts "$WORK/crash" -workers 1 -resume >"$WORK/crash2.log" 2>&1 &
RESUME_PID=$!
wait_healthy
grep -q "resumed 1 unfinished job" "$WORK/crash2.log" || {
  echo "serve-smoke: resume did not requeue the interrupted job" >&2
  cat "$WORK/crash2.log" >&2
  exit 1
}
wait_artifact "$WORK/crash" "$JOB"
kill -TERM "$RESUME_PID"
wait "$RESUME_PID" || { echo "serve-smoke: resumed drain exited non-zero" >&2; exit 1; }
grep -q "drained in" "$WORK/crash2.log" || {
  echo "serve-smoke: no drain summary in resumed server log" >&2
  exit 1
}

# --- The gate: byte-identical artifacts ------------------------------
if ! cmp "$WORK/base/$JOB.json" "$WORK/crash/$JOB.json"; then
  echo "serve-smoke: FAIL: resumed artifact differs from uninterrupted baseline" >&2
  exit 1
fi
echo "serve-smoke: PASS: crash-resumed artifact is byte-identical to the baseline"
