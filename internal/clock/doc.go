// Package clock models the clock domains of a flit-synchronous network on
// chip. aelite (Hansson et al., DATE 2009) distinguishes three regimes:
//
//   - synchronous: all network elements share one clock (period and phase);
//   - mesochronous: all elements share the nominal period but each has an
//     arbitrary, bounded phase offset (Section V of the paper assumes the
//     skew between a writer and a reader is at most half a clock cycle);
//   - plesiochronous: elements have slightly different periods (ppm-level
//     offsets), handled by the asynchronous wrappers of Section VI.
//
// Time is kept in integer picoseconds so that edge ordering across domains
// is exact and simulations are bit-reproducible.
//
// Cross-package contract: all simulation time is exchanged in this
// package's integer-picosecond Time/Duration values — sim.Engine's event
// ordering, trace timestamps and replay fingerprints all assume exact
// integer arithmetic, never floating-point nanoseconds.
package clock
