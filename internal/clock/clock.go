package clock

import "fmt"

// Time is an absolute simulation time in picoseconds.
type Time int64

// Duration is a time difference in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * 1000
	Millisecond Duration = 1000 * 1000 * 1000
)

// Infinity is a time later than any edge a simulation will produce.
const Infinity Time = 1<<63 - 1

// PeriodFromMHz returns the clock period, in picoseconds, of a clock with
// the given frequency in MHz. It panics if the frequency is not positive.
func PeriodFromMHz(mhz float64) Duration {
	if mhz <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency %v MHz", mhz))
	}
	return Duration(1e6/mhz + 0.5)
}

// MHzFromPeriod converts a period in picoseconds to a frequency in MHz.
func MHzFromPeriod(period Duration) float64 {
	return 1e6 / float64(period)
}

// A Clock is a periodic source of rising edges. Edge n occurs at
// Phase + n*Period for n >= 0. The zero value is not a valid clock; use New.
type Clock struct {
	Name   string
	Period Duration // clock period, > 0
	Phase  Duration // offset of edge 0 from time zero, in [0, Period)
}

// New returns a clock with the given name, period and phase. The phase is
// normalised into [0, Period). It panics if period <= 0.
func New(name string, period, phase Duration) *Clock {
	if period <= 0 {
		panic(fmt.Sprintf("clock: non-positive period %d ps", period))
	}
	phase %= period
	if phase < 0 {
		phase += period
	}
	return &Clock{Name: name, Period: period, Phase: phase}
}

// NewMHz returns a clock with a frequency given in MHz and a phase in
// picoseconds.
func NewMHz(name string, mhz float64, phase Duration) *Clock {
	return New(name, PeriodFromMHz(mhz), phase)
}

// EdgeAt returns the time of rising edge n.
func (c *Clock) EdgeAt(n int64) Time {
	return c.Phase + Time(n)*c.Period
}

// NextEdge returns the time of the first rising edge strictly after t.
func (c *Clock) NextEdge(t Time) Time {
	if t < c.Phase {
		return c.Phase
	}
	n := (t - c.Phase) / c.Period
	e := c.Phase + n*c.Period
	if e <= t {
		e += c.Period
	}
	return e
}

// EdgeIndex returns the index n of the edge occurring exactly at t, and
// whether t is an edge of this clock.
func (c *Clock) EdgeIndex(t Time) (int64, bool) {
	if t < c.Phase {
		return 0, false
	}
	d := t - c.Phase
	if d%c.Period != 0 {
		return 0, false
	}
	return int64(d / c.Period), true
}

// CyclesIn returns how many full periods of this clock fit in d.
func (c *Clock) CyclesIn(d Duration) int64 {
	return int64(d / c.Period)
}

// FrequencyMHz reports the clock frequency in MHz.
func (c *Clock) FrequencyMHz() float64 { return MHzFromPeriod(c.Period) }

func (c *Clock) String() string {
	return fmt.Sprintf("%s(%.1f MHz, phase %d ps)", c.Name, c.FrequencyMHz(), c.Phase)
}

// Mesochronous returns a copy of base with the given name and an additional
// phase offset. The offset may be any value; it is normalised into the
// period. Section V of the paper assumes |offset| <= Period/2 between
// neighbouring elements for correct bi-synchronous FIFO operation; that
// bound is asserted where it matters (the link pipeline stage), not here.
func Mesochronous(base *Clock, name string, offset Duration) *Clock {
	return New(name, base.Period, base.Phase+offset)
}

// Plesiochronous returns a clock whose period deviates from base by the
// given signed parts-per-million offset, with the given phase.
func Plesiochronous(base *Clock, name string, ppm float64, phase Duration) *Clock {
	p := float64(base.Period) * (1 + ppm/1e6)
	period := Duration(p + 0.5)
	if period <= 0 {
		period = 1
	}
	return New(name, period, phase)
}
