package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPeriodFromMHz(t *testing.T) {
	cases := []struct {
		mhz  float64
		want Duration
	}{
		{500, 2000},
		{1000, 1000},
		{250, 4000},
		{875, 1143},
	}
	for _, c := range cases {
		if got := PeriodFromMHz(c.mhz); got != c.want {
			t.Errorf("PeriodFromMHz(%v) = %d, want %d", c.mhz, got, c.want)
		}
	}
	if got := MHzFromPeriod(2000); got != 500 {
		t.Errorf("MHzFromPeriod(2000) = %v", got)
	}
}

func TestPeriodFromMHzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-positive frequency")
		}
	}()
	PeriodFromMHz(0)
}

func TestNewNormalisesPhase(t *testing.T) {
	c := New("x", 2000, 4500)
	if c.Phase != 500 {
		t.Errorf("phase = %d, want 500", c.Phase)
	}
	c = New("x", 2000, -500)
	if c.Phase != 1500 {
		t.Errorf("negative phase normalised to %d, want 1500", c.Phase)
	}
}

func TestNewPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-positive period")
		}
	}()
	New("x", 0, 0)
}

func TestEdges(t *testing.T) {
	c := New("c", 1000, 250)
	if got := c.EdgeAt(0); got != 250 {
		t.Errorf("EdgeAt(0) = %d", got)
	}
	if got := c.EdgeAt(3); got != 3250 {
		t.Errorf("EdgeAt(3) = %d", got)
	}
	// NextEdge is strictly after t.
	cases := []struct{ t, want Time }{
		{0, 250}, {249, 250}, {250, 1250}, {251, 1250}, {1250, 2250},
	}
	for _, cse := range cases {
		if got := c.NextEdge(cse.t); got != cse.want {
			t.Errorf("NextEdge(%d) = %d, want %d", cse.t, got, cse.want)
		}
	}
	if n, ok := c.EdgeIndex(3250); !ok || n != 3 {
		t.Errorf("EdgeIndex(3250) = %d,%v", n, ok)
	}
	if _, ok := c.EdgeIndex(3251); ok {
		t.Error("EdgeIndex accepted off-edge time")
	}
	if _, ok := c.EdgeIndex(0); ok {
		t.Error("EdgeIndex accepted time before phase")
	}
	if got := c.CyclesIn(5500); got != 5 {
		t.Errorf("CyclesIn(5500) = %d", got)
	}
}

// TestNextEdgeQuick: NextEdge always returns an edge, strictly in the
// future, and no earlier edge exists in between.
func TestNextEdgeQuick(t *testing.T) {
	f := func(rawPeriod uint16, rawPhase uint32, rawT uint32) bool {
		period := Duration(rawPeriod%5000) + 1
		c := New("q", period, Duration(rawPhase))
		tm := Time(rawT)
		e := c.NextEdge(tm)
		if e <= tm {
			return false
		}
		if _, ok := c.EdgeIndex(e); !ok {
			return false
		}
		// No edge strictly between tm and e.
		if e-period > tm {
			if _, ok := c.EdgeIndex(e - period); ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMesochronous(t *testing.T) {
	base := NewMHz("base", 500, 0)
	m := Mesochronous(base, "m", 700)
	if m.Period != base.Period {
		t.Error("mesochronous clock changed period")
	}
	if m.Phase != 700 {
		t.Errorf("phase = %d", m.Phase)
	}
}

func TestPlesiochronous(t *testing.T) {
	base := NewMHz("base", 500, 0)
	fast := Plesiochronous(base, "f", -1000, 10) // 1000 ppm fast
	slow := Plesiochronous(base, "s", +1000, 10)
	if fast.Period >= base.Period {
		t.Errorf("fast period %d not below base %d", fast.Period, base.Period)
	}
	if slow.Period <= base.Period {
		t.Errorf("slow period %d not above base %d", slow.Period, base.Period)
	}
	if got := Plesiochronous(base, "z", 0, 0).Period; got != base.Period {
		t.Errorf("zero-ppm period = %d", got)
	}
}

func TestString(t *testing.T) {
	c := NewMHz("clk", 500, 100)
	if got := c.String(); got != "clk(500.0 MHz, phase 100 ps)" {
		t.Errorf("String() = %q", got)
	}
	if got := c.FrequencyMHz(); got != 500 {
		t.Errorf("FrequencyMHz = %v", got)
	}
}
