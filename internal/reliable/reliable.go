package reliable

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/trace"
)

// DefaultRetryBudget bounds timeout-triggered resend rounds per connection
// before quarantine.
const DefaultRetryBudget = 8

// DefaultBackoffCap caps the exponential backoff multiplier on the resend
// timeout.
const DefaultBackoffCap = 8

// Drop reason codes, carried in the Arg of trace.CRCDrop events.
const (
	DropCRC       = 1 // CRC mismatch or missing sideband
	DropGap       = 2 // sequence number ahead of expected (a flit was lost)
	DropDuplicate = 3 // sequence number behind expected (retransmit overlap)
	DropTruncated = 4 // flit cut short, or phits with no flit head
)

// TxConfig configures the reliability shell of one out-connection.
type TxConfig struct {
	// Windowed enables sequence tracking and retransmission: the data
	// direction of a connection. Unwindowed senders (the ack/credit
	// reverse direction) still stamp sequence numbers and acks but keep
	// no window — their information is cumulative and refreshed, so loss
	// recovers by itself.
	Windowed bool
	// PairedIn names the in-connection at this endpoint whose cumulative
	// ack rides on this connection's sideband (phit.None when none; the
	// mirror of the baseline protocol's piggybacked credits).
	PairedIn phit.ConnID
	// Timeout is the resend timeout: the worst-case interval from a
	// flit's injection to its ack under fault-free operation. Required
	// (positive) for windowed senders.
	Timeout clock.Duration
	// RetryBudget bounds consecutive timeout-triggered resend rounds
	// before quarantine (0 selects DefaultRetryBudget).
	RetryBudget int
	// BackoffCap caps the timeout's exponential backoff multiplier
	// (0 selects DefaultBackoffCap).
	BackoffCap int
}

// RxConfig configures the reliability shell of one in-connection.
type RxConfig struct {
	// Tracked enables in-order sequence filtering: the data direction.
	// Untracked receivers (the ack/credit reverse direction) only verify
	// the CRC and extract acks.
	Tracked bool
	// AckFor names the out-connection at this endpoint whose window is
	// advanced by acks arriving on this in-connection (phit.None when
	// this direction carries no acks for us).
	AckFor phit.ConnID
}

type txEntry struct {
	seq     uint32
	payload [phit.FlitWords - 1]phit.Meta
	words   int
	sentAt  clock.Time
}

type txState struct {
	cfg     TxConfig
	nextSeq uint32
	base    uint32 // seq of the oldest unacked entry
	entries []txEntry

	deadline    clock.Time
	backoff     int // current timeout multiplier
	retries     int // consecutive timeout rounds without ack progress
	resendPos   int // index into entries mid-round, -1 otherwise
	quarantined bool

	freshFlits  int64
	retransmits int64
	ackedFlits  int64
	ackedWords  int64
}

func (tx *txState) outstandingWords() int {
	w := 0
	for i := range tx.entries {
		w += tx.entries[i].words
	}
	return w
}

type rxState struct {
	cfg      RxConfig
	expected uint32
	needAck  bool

	lossValid bool
	lossAt    clock.Time

	accepted   int64
	crcDrops   int64
	gapDrops   int64
	dupDrops   int64
	truncDrops int64
	recovered  int64
}

// An Endpoint is the per-NI reliability state: one per network interface,
// shared by every connection that starts or ends there. It is driven
// synchronously from the NI's own send and receive paths, so it adds no
// components, wires or timing shifts to the simulation.
type Endpoint struct {
	name string
	tx   map[phit.ConnID]*txState
	rx   map[phit.ConnID]*rxState

	// credit returns acked words to the NI's credit counter (bound by
	// the NI; replaces the lossy in-header credit field).
	credit func(now clock.Time, conn phit.ConnID, words int)

	// asm reassembles one flit from the NI's phit-granular receive path.
	asm    phit.Flit
	asmLen int

	// onQuarantine, when set, is invoked synchronously whenever an
	// out-connection transitions into quarantine. It fires from inside the
	// simulation engine's event processing, so the callback must only
	// record the event — reconfiguring the network from here would
	// re-enter the engine.
	onQuarantine func(now clock.Time, conn phit.ConnID)

	rep fault.Reporter
	tr  *trace.Emitter
}

// NewEndpoint builds an empty endpoint for the named NI.
func NewEndpoint(name string) *Endpoint {
	return &Endpoint{
		name: name,
		tx:   make(map[phit.ConnID]*txState),
		rx:   make(map[phit.ConnID]*rxState),
	}
}

// Name returns the endpoint's diagnostic name.
func (ep *Endpoint) Name() string { return ep.name }

// SetReporter routes quarantine violations to r; nil keeps the fail-fast
// panic of strict mode.
func (ep *Endpoint) SetReporter(r fault.Reporter) { ep.rep = r }

// SetTracer installs the recovery-event emitter; nil disables tracing.
func (ep *Endpoint) SetTracer(e *trace.Emitter) { ep.tr = e }

// BindCredit installs the NI callback that returns acked words to a
// sender's end-to-end credit counter.
func (ep *Endpoint) BindCredit(f func(now clock.Time, conn phit.ConnID, words int)) { ep.credit = f }

// SetQuarantineHook installs a callback fired at every quarantine
// transition. The callback runs inside the engine's event processing and
// must not reconfigure the network; the self-healing layer uses it to
// queue the connection for reroute between engine runs.
func (ep *Endpoint) SetQuarantineHook(f func(now clock.Time, conn phit.ConnID)) {
	ep.onQuarantine = f
}

// RegisterTx adds the reliability shell to an out-connection.
func (ep *Endpoint) RegisterTx(conn phit.ConnID, cfg TxConfig) {
	if _, dup := ep.tx[conn]; dup {
		panic(fmt.Sprintf("reliable %s: duplicate tx connection %d", ep.name, conn))
	}
	if cfg.Windowed && cfg.Timeout <= 0 {
		panic(fmt.Sprintf("reliable %s: windowed tx connection %d needs a positive timeout", ep.name, conn))
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	ep.tx[conn] = &txState{cfg: cfg, backoff: 1, resendPos: -1}
}

// RegisterRx adds the reliability shell to an in-connection.
func (ep *Endpoint) RegisterRx(conn phit.ConnID, cfg RxConfig) {
	if _, dup := ep.rx[conn]; dup {
		panic(fmt.Sprintf("reliable %s: duplicate rx connection %d", ep.name, conn))
	}
	ep.rx[conn] = &rxState{cfg: cfg}
}

// Windowed reports whether the out-connection keeps a retransmission
// window (false for unregistered connections).
func (ep *Endpoint) Windowed(conn phit.ConnID) bool {
	tx := ep.tx[conn]
	return tx != nil && tx.cfg.Windowed
}

// Quarantined reports whether the out-connection has been quarantined.
func (ep *Endpoint) Quarantined(conn phit.ConnID) bool {
	tx := ep.tx[conn]
	return tx != nil && tx.quarantined
}

// WantAck reports whether the out-connection should transmit this slot
// even without payload, because its paired in-connection owes the remote
// sender a fresh cumulative ack.
func (ep *Endpoint) WantAck(conn phit.ConnID) bool {
	tx := ep.tx[conn]
	if tx == nil || tx.cfg.PairedIn == phit.None {
		return false
	}
	rx := ep.rx[tx.cfg.PairedIn]
	return rx != nil && rx.cfg.Tracked && rx.needAck
}

// sideband assembles the sideband for one outgoing flit of the connection:
// the given sequence number plus, when the paired in-connection is
// tracked, the current cumulative ack (which this send also satisfies).
func (ep *Endpoint) sideband(tx *txState, seq uint32) phit.Sideband {
	sb := phit.Sideband{Seq: seq & phit.SeqMask}
	if tx.cfg.PairedIn != phit.None {
		if rx := ep.rx[tx.cfg.PairedIn]; rx != nil && rx.cfg.Tracked {
			sb.Ack = rx.expected & phit.SeqMask
			sb.AckValid = true
			rx.needAck = false
		}
	}
	return sb
}

// FinishTx seals a freshly built flit: it stamps the sideband (sequence,
// cumulative ack, CRC) and, for windowed senders, records the flit in the
// retransmission window. words is the payload word count; the flit's
// payload metas are copied so a resend can rebuild the flit bit-exactly.
func (ep *Endpoint) FinishTx(now clock.Time, conn phit.ConnID, f *phit.Flit, words int) {
	tx := ep.tx[conn]
	if tx == nil {
		panic(fmt.Sprintf("reliable %s: FinishTx on unregistered connection %d", ep.name, conn))
	}
	seq := tx.nextSeq & phit.SeqMask
	tx.nextSeq = (tx.nextSeq + 1) & phit.SeqMask
	if tx.cfg.Windowed {
		e := txEntry{seq: seq, words: words, sentAt: now}
		for i := 0; i < words && i < len(e.payload); i++ {
			e.payload[i] = f[i+1].Meta
		}
		if len(tx.entries) == 0 {
			tx.deadline = now + clock.Time(tx.cfg.Timeout)*clock.Time(tx.backoff)
		}
		tx.entries = append(tx.entries, e)
		tx.freshFlits++
	}
	phit.StampSideband(f, ep.sideband(tx, seq))
}

// Resend returns the next flit of an in-progress (or newly due) go-back-N
// resend round, rebuilt on the header word of the current slot. words is
// the flit's payload word count. ok is false when nothing is due — the
// caller is then free to send fresh payload. A connection whose retry
// budget is exhausted is quarantined here.
func (ep *Endpoint) Resend(now clock.Time, conn phit.ConnID, hdr phit.Word) (f phit.Flit, words int, ok bool) {
	tx := ep.tx[conn]
	if tx == nil || !tx.cfg.Windowed || tx.quarantined || len(tx.entries) == 0 {
		return f, 0, false
	}
	if tx.resendPos < 0 {
		if now < tx.deadline {
			return f, 0, false
		}
		// Timeout: the oldest unacked flit (or its ack) was lost.
		tx.retries++
		if tx.retries > tx.cfg.RetryBudget {
			ep.quarantine(now, conn, tx)
			return f, 0, false
		}
		tx.resendPos = 0
	}
	e := tx.entries[tx.resendPos]
	f[0] = phit.Phit{Valid: true, Kind: phit.Header, Data: hdr, Meta: phit.Meta{Conn: conn}}
	w := 1
	for i := 0; i < e.words; i++ {
		meta := e.payload[i]
		f[w] = phit.Phit{Valid: true, Kind: phit.Payload, Data: phit.Word(meta.Seq), Meta: meta}
		w++
	}
	for ; w < phit.FlitWords; w++ {
		f[w] = phit.Phit{Valid: true, Kind: phit.Padding, Meta: phit.Meta{Conn: conn}}
	}
	f[phit.FlitWords-1].EoP = true
	phit.StampSideband(&f, ep.sideband(tx, e.seq))
	tx.resendPos++
	if tx.resendPos >= len(tx.entries) {
		// Round complete: rearm the timeout with exponential backoff.
		tx.resendPos = -1
		if tx.backoff < tx.cfg.BackoffCap {
			tx.backoff *= 2
		}
		tx.deadline = now + clock.Time(tx.cfg.Timeout)*clock.Time(tx.backoff)
	}
	tx.retransmits++
	if ep.tr != nil {
		ep.tr.Emit(trace.Event{Time: now, Kind: trace.Retransmit, Conn: conn,
			Seq: int64(e.seq), Arg: int64(tx.retries), Slot: trace.NoSlot})
	}
	return f, e.words, true
}

// quarantine marks the connection degraded — it transmits nothing from now
// on — and reports the violation once. Healthy connections are untouched:
// the quarantined connection's reserved slots simply fall idle.
func (ep *Endpoint) quarantine(now clock.Time, conn phit.ConnID, tx *txState) {
	tx.quarantined = true
	tx.resendPos = -1
	if ep.tr != nil {
		ep.tr.Emit(trace.Event{Time: now, Kind: trace.Quarantine, Conn: conn,
			Arg: int64(len(tx.entries)), Slot: trace.NoSlot})
	}
	if ep.onQuarantine != nil {
		ep.onQuarantine(now, conn)
	}
	fault.Report(ep.rep, fault.Violation{
		Kind: fault.LinkQuarantined, Component: "reliable " + ep.name, Time: now, Slot: fault.NoSlot,
		Detail: fmt.Sprintf("connection %d exhausted its retry budget (%d rounds, %d flits unacked), link quarantined",
			conn, tx.cfg.RetryBudget, len(tx.entries)),
	})
}

// Accept consumes one phit from the NI's receive path. It reassembles
// whole flits, verifies their CRC, filters duplicates and gaps on tracked
// connections and applies piggybacked acks. ok is true when a clean,
// in-order flit is ready: the NI then delivers f's phits exactly as the
// baseline protocol would have.
func (ep *Endpoint) Accept(now clock.Time, p phit.Phit) (f phit.Flit, ok bool) {
	if !p.Valid {
		if ep.asmLen > 0 {
			ep.flushPartial(now)
		}
		return f, false
	}
	head := p.Kind == phit.Header || p.Kind == phit.CreditOnly
	if head && ep.asmLen > 0 {
		// A new flit begins while one is open: the previous was truncated.
		ep.flushPartial(now)
	}
	if !head && ep.asmLen == 0 {
		// Mid-flit phit with no open flit: its head was lost in transit.
		ep.dropPhits(now, p.Meta.Conn, DropTruncated, 1)
		return f, false
	}
	ep.asm[ep.asmLen] = p
	ep.asmLen++
	if ep.asmLen < phit.FlitWords {
		return f, false
	}
	ep.asmLen = 0
	return ep.acceptFlit(now, ep.asm)
}

// flushPartial discards an incomplete flit assembly (a phit of it was
// dropped in transit).
func (ep *Endpoint) flushPartial(now clock.Time) {
	ep.dropPhits(now, ep.asm[0].Meta.Conn, DropTruncated, ep.asmLen)
	ep.asmLen = 0
}

// dropPhits records the loss of part of a flit on a connection.
func (ep *Endpoint) dropPhits(now clock.Time, conn phit.ConnID, reason int, phits int) {
	rx := ep.rx[conn]
	if rx != nil {
		rx.truncDrops++
		if rx.cfg.Tracked {
			ep.markLoss(rx, now)
		}
	}
	if ep.tr != nil {
		ep.tr.Emit(trace.Event{Time: now, Kind: trace.CRCDrop, Conn: conn,
			Arg: int64(reason), Seq: int64(phits), Slot: trace.NoSlot})
	}
}

// markLoss starts the head-of-line recovery clock if it is not already
// running: the interval until in-order delivery resumes is the
// connection's recovery latency.
func (ep *Endpoint) markLoss(rx *rxState, now clock.Time) {
	if !rx.lossValid {
		rx.lossValid = true
		rx.lossAt = now
	}
}

// acceptFlit verifies and filters one reassembled flit.
func (ep *Endpoint) acceptFlit(now clock.Time, f phit.Flit) (phit.Flit, bool) {
	conn := f[0].Meta.Conn
	rx := ep.rx[conn]
	sb, present, crcOK := phit.CheckSideband(&f)
	if !present || !crcOK {
		if rx != nil {
			rx.crcDrops++
			if rx.cfg.Tracked {
				ep.markLoss(rx, now)
			}
		}
		if ep.tr != nil {
			ep.tr.Emit(trace.Event{Time: now, Kind: trace.CRCDrop, Conn: conn,
				Arg: DropCRC, Seq: int64(sb.Seq), Slot: trace.NoSlot})
		}
		return f, false
	}
	// The flit is intact: apply its piggybacked cumulative ack before any
	// sequence filtering (acks ride on every flit of the direction,
	// duplicate or not — cumulative acks are idempotent).
	if sb.AckValid && rx != nil && rx.cfg.AckFor != phit.None {
		ep.applyAck(now, rx.cfg.AckFor, sb.Ack)
	}
	if rx == nil || !rx.cfg.Tracked {
		return f, true
	}
	switch d := phit.SeqDelta(sb.Seq, rx.expected); {
	case d == 0:
		rx.expected = (rx.expected + 1) & phit.SeqMask
		rx.needAck = true
		rx.accepted++
		if rx.lossValid {
			rx.lossValid = false
			rx.recovered++
			if ep.tr != nil {
				ep.tr.Emit(trace.Event{Time: now, Kind: trace.Recovered, Conn: conn,
					Arg: int64(now - rx.lossAt), Slot: trace.NoSlot})
			}
		}
		return f, true
	case d < 0:
		// Duplicate of an already accepted flit: the ack was lost. Drop
		// it but schedule a fresh ack so the sender stops resending.
		rx.dupDrops++
		rx.needAck = true
		if ep.tr != nil {
			ep.tr.Emit(trace.Event{Time: now, Kind: trace.CRCDrop, Conn: conn,
				Arg: DropDuplicate, Seq: int64(sb.Seq), Slot: trace.NoSlot})
		}
		return f, false
	default:
		// Gap: an earlier flit of this connection was lost whole.
		// Go-back-N keeps the receiver trivial: drop until the sender
		// rewinds.
		rx.gapDrops++
		ep.markLoss(rx, now)
		if ep.tr != nil {
			ep.tr.Emit(trace.Event{Time: now, Kind: trace.CRCDrop, Conn: conn,
				Arg: DropGap, Seq: int64(sb.Seq), Slot: trace.NoSlot})
		}
		return f, false
	}
}

// applyAck advances a windowed sender's base to a cumulative ack and
// returns the acked words as end-to-end credits.
func (ep *Endpoint) applyAck(now clock.Time, conn phit.ConnID, ack uint32) {
	tx := ep.tx[conn]
	if tx == nil || !tx.cfg.Windowed {
		return
	}
	d := int(phit.SeqDelta(ack, tx.base))
	if d <= 0 || d > len(tx.entries) {
		return // stale or out-of-window ack: ignore
	}
	words := 0
	for i := 0; i < d; i++ {
		words += tx.entries[i].words
	}
	tx.entries = append(tx.entries[:0], tx.entries[d:]...)
	tx.base = ack & phit.SeqMask
	tx.ackedFlits += int64(d)
	tx.ackedWords += int64(words)
	// Ack progress proves the path works: reset the escalation state and
	// cancel any in-flight resend round (a timeout re-opens it if the
	// remaining window is really stuck).
	tx.retries = 0
	tx.backoff = 1
	tx.resendPos = -1
	if len(tx.entries) > 0 {
		tx.deadline = now + clock.Time(tx.cfg.Timeout)
	}
	if ep.tr != nil {
		ep.tr.Emit(trace.Event{Time: now, Kind: trace.AckAdvance, Conn: conn,
			Seq: int64(ack), Arg: int64(words), Slot: trace.NoSlot})
	}
	if ep.credit != nil && words > 0 {
		ep.credit(now, conn, words)
	}
}

// TxStats is the send-side reliability aggregate of one connection.
type TxStats struct {
	Windowed         bool
	Quarantined      bool
	FreshFlits       int64 // flits entered into the window
	Retransmits      int64 // flits re-sent by go-back-N rounds
	AckedFlits       int64
	AckedWords       int64
	Outstanding      int // unacked flits currently in the window
	OutstandingWords int
	Retries          int // consecutive timeout rounds without ack progress
}

// TxStatsOf returns the send-side aggregate (ok false when the connection
// has no reliability shell here).
func (ep *Endpoint) TxStatsOf(conn phit.ConnID) (TxStats, bool) {
	tx := ep.tx[conn]
	if tx == nil {
		return TxStats{}, false
	}
	return TxStats{
		Windowed: tx.cfg.Windowed, Quarantined: tx.quarantined,
		FreshFlits: tx.freshFlits, Retransmits: tx.retransmits,
		AckedFlits: tx.ackedFlits, AckedWords: tx.ackedWords,
		Outstanding: len(tx.entries), OutstandingWords: tx.outstandingWords(),
		Retries: tx.retries,
	}, true
}

// RxStats is the receive-side reliability aggregate of one connection.
type RxStats struct {
	Tracked    bool
	Accepted   int64 // clean in-order flits delivered
	CRCDrops   int64 // flits dropped on CRC or sideband failure
	GapDrops   int64 // flits dropped because an earlier one was lost
	DupDrops   int64 // duplicate flits dropped (lost-ack overlap)
	TruncDrops int64 // truncated-flit and stray-phit drops
	Recovered  int64 // head-of-line stalls that ended in recovery
}

// RxStatsOf returns the receive-side aggregate (ok false when the
// connection has no reliability shell here).
func (ep *Endpoint) RxStatsOf(conn phit.ConnID) (RxStats, bool) {
	rx := ep.rx[conn]
	if rx == nil {
		return RxStats{}, false
	}
	return RxStats{
		Tracked: rx.cfg.Tracked, Accepted: rx.accepted,
		CRCDrops: rx.crcDrops, GapDrops: rx.gapDrops, DupDrops: rx.dupDrops,
		TruncDrops: rx.truncDrops, Recovered: rx.recovered,
	}, true
}
