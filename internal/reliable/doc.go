// Package reliable is the end-to-end reliability shell around the NI
// kernel ports: CRC-protected flits, go-back-N retransmission with a
// per-connection timeout derived from the slot-table round trip, and link
// quarantine after a bounded retry budget.
//
// The aelite network of the paper is guaranteed-service-only and assumes
// fault-free links; this layer is what a real deployment bolts on top to
// survive transient data faults without giving up composability. Every
// recovery mechanism rides exclusively on resources the connection already
// reserved:
//
//   - each outgoing flit is stamped with a 24-bit sequence number and a
//     CRC-8 over its three phits, carried in a sideband word
//     (phit.Sideband) that routers and link stages forward untouched;
//   - the receive side verifies the CRC and accepts flits strictly in
//     sequence order — corrupted, truncated, duplicated or gapped flits
//     are dropped whole, so the IP-visible stream is exactly the sent
//     stream;
//   - cumulative acks (count of in-order flits accepted) piggyback on the
//     sideband of the paired reverse connection — the same channel the
//     baseline protocol uses for credits — and replace the in-header
//     credit field, whose incremental deltas a lossy link could destroy;
//     the sender's end-to-end credits replenish from ack progress, which
//     is idempotent under ack loss;
//   - unacked flits stay in a retransmission window (bounded by the
//     receive buffer capacity, because fresh sends consume credits); a
//     timeout sized to the worst-case forward latency bound plus the
//     reverse channel's slot round trip triggers a go-back-N resend of the
//     window in the connection's own reserved slots, with exponential
//     backoff on repeated rounds;
//   - a connection that exhausts its retry budget is quarantined: it stops
//     transmitting and a fault.LinkQuarantined violation is reported once,
//     while every healthy connection keeps its guarantees (graceful
//     degradation, not global abort — and composability means the healthy
//     connections' timing is untouched by the quarantined one).
//
// An Endpoint holds the per-NI state; the NI calls it on its send path
// (Resend, FinishTx) and receive path (Accept) so the shell adds zero
// components, zero wires and zero timing shift to the simulation. With no
// endpoint installed the NI hot path is a single nil test.
package reliable
