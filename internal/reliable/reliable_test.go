package reliable

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/trace"
)

const (
	connD   phit.ConnID = 1 // data direction
	connRev phit.ConnID = 2 // reverse (ack/credit) direction
	timeout             = 100 * clock.Nanosecond
)

// pair builds the two endpoints of one bidirectional connection: src sends
// data on connD and receives acks on connRev; dst mirrors it.
func pair(t *testing.T) (src, dst *Endpoint) {
	t.Helper()
	src = NewEndpoint("src")
	src.RegisterTx(connD, TxConfig{Windowed: true, PairedIn: connRev, Timeout: timeout})
	src.RegisterRx(connRev, RxConfig{AckFor: connD})
	dst = NewEndpoint("dst")
	dst.RegisterRx(connD, RxConfig{Tracked: true})
	dst.RegisterTx(connRev, TxConfig{PairedIn: connD})
	return src, dst
}

// dataFlit builds one sealed data flit with the given payload word count.
func dataFlit(t *testing.T, src *Endpoint, now clock.Time, words int) phit.Flit {
	t.Helper()
	var f phit.Flit
	f[0] = phit.Phit{Valid: true, Kind: phit.Header, Data: 0xbeef, Meta: phit.Meta{Conn: connD}}
	w := 1
	for i := 0; i < words; i++ {
		f[w] = phit.Phit{Valid: true, Kind: phit.Payload, Data: phit.Word(100 + i), Meta: phit.Meta{Conn: connD, Seq: int64(100 + i)}}
		w++
	}
	for ; w < phit.FlitWords; w++ {
		f[w] = phit.Phit{Valid: true, Kind: phit.Padding, Meta: phit.Meta{Conn: connD}}
	}
	f[phit.FlitWords-1].EoP = true
	src.FinishTx(now, connD, &f, words)
	return f
}

// ackFlit builds one sealed credit-only flit carrying dst's cumulative ack.
func ackFlit(t *testing.T, dst *Endpoint, now clock.Time) phit.Flit {
	t.Helper()
	var f phit.Flit
	f[0] = phit.Phit{Valid: true, Kind: phit.CreditOnly, Meta: phit.Meta{Conn: connRev}}
	for w := 1; w < phit.FlitWords; w++ {
		f[w] = phit.Phit{Valid: true, Kind: phit.Padding, Meta: phit.Meta{Conn: connRev}}
	}
	f[phit.FlitWords-1].EoP = true
	dst.FinishTx(now, connRev, &f, 0)
	return f
}

// deliver feeds every phit of a flit into an endpoint's receive path and
// returns the flits that came out clean.
func deliver(ep *Endpoint, now clock.Time, f phit.Flit) []phit.Flit {
	var out []phit.Flit
	for _, p := range f {
		if g, ok := ep.Accept(now, p); ok {
			out = append(out, g)
		}
	}
	return out
}

func TestCleanDelivery(t *testing.T) {
	src, dst := pair(t)
	credits := 0
	src.BindCredit(func(_ clock.Time, conn phit.ConnID, words int) {
		if conn != connD {
			t.Fatalf("credit for connection %d, want %d", conn, connD)
		}
		credits += words
	})

	for i := 0; i < 5; i++ {
		now := clock.Time(i) * 10 * clock.Nanosecond
		f := dataFlit(t, src, now, 2)
		got := deliver(dst, now, f)
		if len(got) != 1 {
			t.Fatalf("flit %d: delivered %d flits, want 1", i, len(got))
		}
		if !dst.WantAck(connRev) {
			t.Fatalf("flit %d: dst owes no ack after accepting", i)
		}
		ack := ackFlit(t, dst, now)
		if dst.WantAck(connRev) {
			t.Fatalf("flit %d: ack flit did not clear the owed ack", i)
		}
		if got := deliver(src, now, ack); len(got) != 1 {
			t.Fatalf("flit %d: ack flit rejected", i)
		}
	}
	if credits != 10 {
		t.Fatalf("credits returned = %d, want 10", credits)
	}
	ts, _ := src.TxStatsOf(connD)
	if ts.FreshFlits != 5 || ts.AckedFlits != 5 || ts.Outstanding != 0 || ts.Retransmits != 0 {
		t.Fatalf("tx stats = %+v, want 5 fresh, 5 acked, 0 outstanding, 0 retransmits", ts)
	}
	rs, _ := dst.RxStatsOf(connD)
	if rs.Accepted != 5 || rs.CRCDrops+rs.GapDrops+rs.DupDrops+rs.TruncDrops != 0 {
		t.Fatalf("rx stats = %+v, want 5 accepted, 0 drops", rs)
	}
}

func TestCorruptionDroppedAndRetransmitted(t *testing.T) {
	src, dst := pair(t)
	f0 := dataFlit(t, src, 0, 2)
	f1 := dataFlit(t, src, 0, 2)

	// Corrupt a payload bit of flit 0 in transit.
	f0[1].Data ^= 1 << 7
	if got := deliver(dst, 0, f0); len(got) != 0 {
		t.Fatalf("corrupted flit delivered")
	}
	// Flit 1 now arrives with a sequence gap and must be dropped too.
	if got := deliver(dst, 0, f1); len(got) != 0 {
		t.Fatalf("gapped flit delivered")
	}
	rs, _ := dst.RxStatsOf(connD)
	if rs.CRCDrops != 1 || rs.GapDrops != 1 || rs.Accepted != 0 {
		t.Fatalf("rx stats = %+v, want 1 crc drop, 1 gap drop", rs)
	}

	// Nothing resends before the timeout...
	if _, _, ok := src.Resend(clock.Time(timeout)-1, connD, 0xbeef); ok {
		t.Fatalf("resend before the timeout")
	}
	// ...then the whole window goes back out, oldest first.
	r0, w0, ok := src.Resend(clock.Time(timeout), connD, 0xbeef)
	if !ok || w0 != 2 {
		t.Fatalf("first resend: ok=%v words=%d, want ok 2", ok, w0)
	}
	r1, _, ok := src.Resend(clock.Time(timeout), connD, 0xbeef)
	if !ok {
		t.Fatalf("second resend missing")
	}
	if _, _, ok := src.Resend(clock.Time(timeout), connD, 0xbeef); ok {
		t.Fatalf("resend round did not stop at the window end")
	}

	// The resent flits deliver in order and heal the stall.
	if got := deliver(dst, clock.Time(timeout), r0); len(got) != 1 {
		t.Fatalf("resent flit 0 rejected")
	}
	if got := deliver(dst, clock.Time(timeout), r1); len(got) != 1 {
		t.Fatalf("resent flit 1 rejected")
	}
	rs, _ = dst.RxStatsOf(connD)
	if rs.Accepted != 2 || rs.Recovered != 1 {
		t.Fatalf("rx stats = %+v, want 2 accepted, 1 recovery", rs)
	}

	// The ack clears the window and restores the credits for both flits.
	credits := 0
	src.BindCredit(func(_ clock.Time, _ phit.ConnID, words int) { credits += words })
	deliver(src, clock.Time(timeout), ackFlit(t, dst, clock.Time(timeout)))
	ts, _ := src.TxStatsOf(connD)
	if ts.Outstanding != 0 || ts.AckedFlits != 2 || ts.Retransmits != 2 || ts.Retries != 0 {
		t.Fatalf("tx stats = %+v, want empty window, 2 acked, 2 retransmits, retries reset", ts)
	}
	if credits != 4 {
		t.Fatalf("credits = %d, want 4", credits)
	}
}

func TestResentFlitMatchesOriginal(t *testing.T) {
	src, _ := pair(t)
	orig := dataFlit(t, src, 0, 2)
	re, words, ok := src.Resend(clock.Time(timeout), connD, 0xbeef)
	if !ok || words != 2 {
		t.Fatalf("resend: ok=%v words=%d", ok, words)
	}
	if re != orig {
		t.Fatalf("resent flit differs from the original:\n  orig %+v\n  re   %+v", orig, re)
	}
}

func TestDuplicateDropSchedulesAck(t *testing.T) {
	src, dst := pair(t)
	f := dataFlit(t, src, 0, 2)
	if got := deliver(dst, 0, f); len(got) != 1 {
		t.Fatalf("first copy rejected")
	}
	ackFlit(t, dst, 0) // consume the owed ack (flit lost in transit, say)
	if dst.WantAck(connRev) {
		t.Fatalf("ack owed after sending one")
	}
	// The duplicate (a go-back-N resend overlap) is dropped but re-arms
	// the ack so the sender can stop resending.
	if got := deliver(dst, 0, f); len(got) != 0 {
		t.Fatalf("duplicate delivered")
	}
	if !dst.WantAck(connRev) {
		t.Fatalf("duplicate did not schedule a fresh ack")
	}
	rs, _ := dst.RxStatsOf(connD)
	if rs.DupDrops != 1 {
		t.Fatalf("rx stats = %+v, want 1 duplicate drop", rs)
	}
}

func TestTruncationDrops(t *testing.T) {
	src, dst := pair(t)
	f0 := dataFlit(t, src, 0, 2)
	f1 := dataFlit(t, src, 0, 2)

	// Flit 0 loses its tail: its head is flushed when flit 1 begins.
	for _, p := range f0[:1] {
		dst.Accept(0, p)
	}
	if got := deliver(dst, 0, f1); len(got) != 0 {
		t.Fatalf("flit after truncation delivered despite the gap-free filter")
	}
	rs, _ := dst.RxStatsOf(connD)
	if rs.TruncDrops == 0 {
		t.Fatalf("rx stats = %+v, want truncation drops", rs)
	}

	// A stray mid-flit phit with no open assembly is dropped too.
	f2 := dataFlit(t, src, 0, 2)
	dst.Accept(0, f2[1])
	rs2, _ := dst.RxStatsOf(connD)
	if rs2.TruncDrops != rs.TruncDrops+1 {
		t.Fatalf("stray phit not counted: %+v -> %+v", rs, rs2)
	}
}

func TestBackoffAndQuarantine(t *testing.T) {
	src, _ := pair(t)
	col := fault.NewCollector()
	src.SetReporter(col)
	bus := trace.NewBus()
	m := trace.NewMetrics(bus)
	src.SetTracer(bus.Emitter("src"))

	src.RegisterTx(3, TxConfig{Windowed: true, Timeout: timeout, RetryBudget: 2})
	var f phit.Flit
	f[0] = phit.Phit{Valid: true, Kind: phit.Header, Meta: phit.Meta{Conn: 3}}
	src.FinishTx(0, 3, &f, 0)

	now := clock.Time(0)
	rounds := 0
	for i := 0; i < 10 && !src.Quarantined(3); i++ {
		now += clock.Time(8 * timeout) // far past any backoff deadline
		if _, _, ok := src.Resend(now, 3, 0); ok {
			rounds++
		}
	}
	if !src.Quarantined(3) {
		t.Fatalf("connection not quarantined after retry budget")
	}
	if rounds != 2 {
		t.Fatalf("resend rounds before quarantine = %d, want 2 (the budget)", rounds)
	}
	if src.Quarantined(connD) {
		t.Fatalf("healthy connection quarantined too")
	}
	vs := col.Violations()
	if len(vs) != 1 || vs[0].Kind != fault.LinkQuarantined {
		t.Fatalf("violations = %v, want one LinkQuarantined", vs)
	}
	if !strings.Contains(vs[0].Component, "src") {
		t.Fatalf("violation component = %q, want the endpoint name", vs[0].Component)
	}
	if m.Count(trace.Quarantine) != 1 {
		t.Fatalf("quarantine events = %d, want 1", m.Count(trace.Quarantine))
	}
	// Resend never offers flits for a quarantined connection.
	if _, _, ok := src.Resend(now+clock.Time(timeout)*100, 3, 0); ok {
		t.Fatalf("quarantined connection still resending")
	}
}

func TestQuarantineStrictModePanics(t *testing.T) {
	src, _ := pair(t)
	src.RegisterTx(3, TxConfig{Windowed: true, Timeout: timeout, RetryBudget: 1})
	var f phit.Flit
	f[0] = phit.Phit{Valid: true, Kind: phit.Header, Meta: phit.Meta{Conn: 3}}
	src.FinishTx(0, 3, &f, 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("quarantine in strict mode did not panic")
		}
	}()
	for i := 0; i < 10; i++ {
		src.Resend(clock.Time(i+1)*8*clock.Time(timeout), 3, 0)
	}
}

func TestBackoffDoublesDeadline(t *testing.T) {
	src, _ := pair(t)
	dataFlit(t, src, 0, 1)
	// Round 1 fires at the base timeout.
	if _, _, ok := src.Resend(clock.Time(timeout), connD, 0); !ok {
		t.Fatalf("round 1 did not fire")
	}
	// After one round the deadline is now + 2*timeout.
	if _, _, ok := src.Resend(clock.Time(timeout)+clock.Time(timeout)*2-1, connD, 0); ok {
		t.Fatalf("round 2 fired before the backed-off deadline")
	}
	if _, _, ok := src.Resend(clock.Time(timeout)+clock.Time(timeout)*2, connD, 0); !ok {
		t.Fatalf("round 2 did not fire at the backed-off deadline")
	}
}

func TestStaleAckIgnored(t *testing.T) {
	src, dst := pair(t)
	f := dataFlit(t, src, 0, 2)
	deliver(dst, 0, f)
	ack := ackFlit(t, dst, 0)
	if got := deliver(src, 0, ack); len(got) != 1 {
		t.Fatalf("ack flit rejected")
	}
	// The same cumulative ack again (reverse flits repeat it) is a no-op.
	ack2 := ackFlit(t, dst, 0)
	deliver(src, 0, ack2)
	ts, _ := src.TxStatsOf(connD)
	if ts.AckedFlits != 1 || ts.Outstanding != 0 {
		t.Fatalf("tx stats after repeated ack = %+v, want 1 acked", ts)
	}
}

func TestSequenceWraparound(t *testing.T) {
	src := NewEndpoint("src")
	src.RegisterTx(connD, TxConfig{Windowed: true, Timeout: timeout})
	// Jump the sequence space to just below the wrap point.
	src.tx[connD].nextSeq = phit.SeqMask - 1
	src.tx[connD].base = phit.SeqMask - 1
	dst := NewEndpoint("dst")
	dst.RegisterRx(connD, RxConfig{Tracked: true})
	dst.rx[connD].expected = phit.SeqMask - 1
	dst.RegisterTx(connRev, TxConfig{PairedIn: connD})
	src.RegisterRx(connRev, RxConfig{AckFor: connD})

	for i := 0; i < 4; i++ {
		f := dataFlit(t, src, 0, 1)
		if got := deliver(dst, 0, f); len(got) != 1 {
			t.Fatalf("flit %d across the wrap rejected", i)
		}
		ack := ackFlit(t, dst, 0)
		deliver(src, 0, ack)
	}
	ts, _ := src.TxStatsOf(connD)
	if ts.AckedFlits != 4 || ts.Outstanding != 0 {
		t.Fatalf("tx stats across wrap = %+v, want 4 acked, empty window", ts)
	}
}
