// Package stats provides streaming latency/throughput statistics for NoC
// measurements: per-connection summaries, histograms and percentile
// queries. Everything is deterministic and allocation-light so it can run
// inside cycle loops.
//
// core's per-connection reports and the guarantee auditor both draw
// their latency summaries from these accumulators, so measured numbers
// agree across reporting paths by construction.
package stats
