package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("zero summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSummaryNegative(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 || s.Mean() != -3 {
		t.Errorf("negative handling: %v", s.String())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestHistogramQuick: percentiles are order statistics — P100 is max, P0
// is min, and percentiles are monotone.
func TestHistogramQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h.Add(v)
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		if h.Percentile(0) != sorted[0] || h.Percentile(100) != sorted[len(sorted)-1] {
			return false
		}
		last := math.Inf(-1)
		for p := 5.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	b := h.Buckets(10)
	total := int64(0)
	for i, n := range b {
		total += n
		if n == 0 {
			t.Errorf("bucket %d empty for uniform data", i)
		}
	}
	if total != 100 {
		t.Errorf("bucket total = %d", total)
	}
	// Degenerate cases.
	var one Histogram
	one.Add(5)
	b = one.Buckets(4)
	if b[0] != 1 {
		t.Errorf("constant data buckets = %v", b)
	}
	var empty Histogram
	if got := empty.Buckets(3); got[0] != 0 || len(got) != 3 {
		t.Errorf("empty buckets = %v", got)
	}
}

func TestHistogramInterleavedAddAndQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	if h.Percentile(50) != 10 {
		t.Error("single sample percentile")
	}
	h.Add(20) // must re-sort after the earlier query
	if got := h.Percentile(100); got != 20 {
		t.Errorf("max after re-add = %v", got)
	}
	if h.N() != 2 {
		t.Errorf("N = %d", h.N())
	}
}
