package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.StdDev() != 0 {
		t.Error("zero summary not zero")
	}
	// An empty summary must be distinguishable from one holding a real 0
	// sample: Min/Max/Mean are NaN, Range reports !ok.
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Mean()) {
		t.Errorf("empty summary Min/Max/Mean = %v/%v/%v, want NaN", s.Min(), s.Max(), s.Mean())
	}
	if _, _, ok := s.Range(); ok {
		t.Error("empty summary Range ok = true")
	}
	s.Add(0)
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Errorf("single 0 sample: %v", s.String())
	}
	if _, _, ok := s.Range(); !ok {
		t.Error("non-empty summary Range ok = false")
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, whole Summary
	for i, v := range []float64{3, -7, 12, 0, 5, 9} {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		whole.Add(v)
	}
	a.Merge(&b)
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merge: got %v, want %v", a.String(), whole.String())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 || math.Abs(a.StdDev()-whole.StdDev()) > 1e-12 {
		t.Errorf("merge moments: got %v, want %v", a.String(), whole.String())
	}
	// Merging an empty summary is a no-op; merging into an empty one copies.
	var empty, into Summary
	a.Merge(&empty)
	a.Merge(nil)
	if a.N() != whole.N() {
		t.Error("merge of empty changed N")
	}
	into.Merge(&a)
	if into.N() != a.N() || into.Min() != a.Min() || into.Max() != a.Max() {
		t.Error("merge into empty did not copy")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(5)
	a.Add(1)
	if a.Percentile(100) != 5 {
		t.Error("pre-merge percentile")
	}
	b.Add(9)
	b.Add(3)
	a.Merge(&b)
	if a.N() != 4 || a.Percentile(100) != 9 || a.Percentile(0) != 1 {
		t.Errorf("merged histogram: n=%d p0=%v p100=%v", a.N(), a.Percentile(0), a.Percentile(100))
	}
	// Insertion order is preserved across queries and merges.
	want := []float64{5, 1, 9, 3}
	got := a.Samples()
	if len(got) != len(want) {
		t.Fatalf("samples = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("insertion order broken: %v", got)
		}
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSummaryNegative(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 || s.Mean() != -3 {
		t.Errorf("negative handling: %v", s.String())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Percentile(50)) {
		t.Error("empty percentile not NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestHistogramQuick: percentiles are order statistics — P100 is max, P0
// is min, and percentiles are monotone.
func TestHistogramQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			h.Add(v)
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		if h.Percentile(0) != sorted[0] || h.Percentile(100) != sorted[len(sorted)-1] {
			return false
		}
		last := math.Inf(-1)
		for p := 5.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	b := h.Buckets(10)
	total := int64(0)
	for i, n := range b {
		total += n
		if n == 0 {
			t.Errorf("bucket %d empty for uniform data", i)
		}
	}
	if total != 100 {
		t.Errorf("bucket total = %d", total)
	}
	// Degenerate cases.
	var one Histogram
	one.Add(5)
	b = one.Buckets(4)
	if b[0] != 1 {
		t.Errorf("constant data buckets = %v", b)
	}
	var empty Histogram
	if got := empty.Buckets(3); got[0] != 0 || len(got) != 3 {
		t.Errorf("empty buckets = %v", got)
	}
	// Non-positive bin counts are total, not a panic.
	if got := empty.Buckets(0); got != nil {
		t.Errorf("Buckets(0) = %v, want nil", got)
	}
	if got := h.Buckets(-2); got != nil {
		t.Errorf("Buckets(-2) = %v, want nil", got)
	}
	// Negative sample sets bucket correctly.
	var neg Histogram
	for _, v := range []float64{-10, -5, -1} {
		neg.Add(v)
	}
	nb := neg.Buckets(3)
	var negTotal int64
	for _, n := range nb {
		negTotal += n
	}
	if negTotal != 3 || nb[0] == 0 {
		t.Errorf("negative buckets = %v", nb)
	}
}

// TestHistogramDegenerate pins the total behaviour of percentile and
// bucket queries on empty and single-sample histograms — the shapes every
// undelivered or single-word connection produces in a short run.
func TestHistogramDegenerate(t *testing.T) {
	var empty Histogram
	for _, p := range []float64{-5, 0, 50, 99, 100, 150} {
		if got := empty.Percentile(p); !math.IsNaN(got) {
			t.Errorf("empty P%.0f = %v, want NaN", p, got)
		}
	}
	for _, n := range []int{1, 3, 7} {
		b := empty.Buckets(n)
		if len(b) != n {
			t.Fatalf("empty Buckets(%d) has %d bins", n, len(b))
		}
		for i, c := range b {
			if c != 0 {
				t.Errorf("empty Buckets(%d)[%d] = %d", n, i, c)
			}
		}
	}

	var one Histogram
	one.Add(-3.5)
	for _, p := range []float64{-5, 0, 50, 99, 100, 150} {
		if got := one.Percentile(p); got != -3.5 {
			t.Errorf("single-sample P%.0f = %v, want -3.5", p, got)
		}
	}
	for _, n := range []int{1, 4} {
		b := one.Buckets(n)
		if b[0] != 1 {
			t.Errorf("single-sample Buckets(%d) = %v, want all mass in bin 0", n, b)
		}
		for i := 1; i < n; i++ {
			if b[i] != 0 {
				t.Errorf("single-sample Buckets(%d)[%d] = %d", n, i, b[i])
			}
		}
	}
}

// TestHistogramStaleSortWindow: interleaving Buckets, Percentile and Add
// must neither reorder the stored samples nor serve a stale sorted view.
func TestHistogramStaleSortWindow(t *testing.T) {
	var h Histogram
	h.Add(30)
	h.Add(10)
	_ = h.Percentile(50) // forces a sort of the query copy
	h.Add(20)            // arrives after the sort
	if got := h.Percentile(100); got != 30 {
		t.Errorf("P100 after interleaved Add = %v, want 30", got)
	}
	if got := h.Percentile(50); got != 20 {
		t.Errorf("P50 after interleaved Add = %v, want 20", got)
	}
	b := h.Buckets(3)
	var total int64
	for _, n := range b {
		total += n
	}
	if total != 3 {
		t.Errorf("bucket total = %d after interleaving", total)
	}
	want := []float64{30, 10, 20}
	for i, v := range h.Samples() {
		if v != want[i] {
			t.Fatalf("insertion order broken by queries: %v", h.Samples())
		}
	}
}

func TestHistogramInterleavedAddAndQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	if h.Percentile(50) != 10 {
		t.Error("single sample percentile")
	}
	h.Add(20) // must re-sort after the earlier query
	if got := h.Percentile(100); got != 20 {
		t.Errorf("max after re-add = %v", got)
	}
	if h.N() != 2 {
		t.Errorf("N = %d", h.N())
	}
}
