package stats

import (
	"fmt"
	"math"
	"sort"
)

// Finite sanitises a value bound for a JSON artifact: NaN and the
// infinities — the usual residue of dividing by a zero count or an empty
// time span — encode as zero, which every consumer already treats as
// "no data". encoding/json rejects them outright, so one leaked NaN
// would otherwise fail the whole artifact write.
func Finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// A Summary accumulates a stream of float64 samples.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or NaN with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or NaN with no samples — an empty
// summary must be distinguishable from one whose smallest sample is 0
// (a real 0 ps latency exists: same-instant probe observations).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN with no samples.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Range returns the smallest and largest samples and whether any sample
// exists — the ok-bool form of Min/Max for callers that prefer explicit
// emptiness over NaN propagation.
func (s *Summary) Range() (min, max float64, ok bool) {
	if s.n == 0 {
		return 0, 0, false
	}
	return s.min, s.max, true
}

// Merge folds another summary into s, as if every sample of o had been
// Added to s. Merging an empty summary is a no-op; merging into an empty
// summary copies o. It enables per-shard accumulation (one Summary per
// worker or per connection) with exact recombination.
func (s *Summary) Merge(o *Summary) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.sumSq += o.sumSq
}

// StdDev returns the population standard deviation, or 0 with no samples.
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.sum / float64(s.n)
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

func (s *Summary) String() string {
	if s.n == 0 {
		return "n=0 (empty)"
	}
	return fmt.Sprintf("n=%d mean=%.1f min=%.1f max=%.1f sd=%.1f", s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// A Histogram keeps exact samples (NoC experiments produce at most a few
// million) and answers percentile queries. It embeds a Summary.
//
// Samples are retained in insertion order; percentile queries work on a
// separate lazily sorted copy. (An earlier version sorted the sample
// slice itself in Percentile, which silently destroyed insertion order
// for any reader interleaving Add and query — the classic stale-sort
// window this structure now closes by construction.)
type Histogram struct {
	Summary
	samples []float64 // insertion order, never reordered
	ordered []float64 // lazily maintained sorted copy for queries
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.Summary.Add(v)
	h.samples = append(h.samples, v)
}

// Merge folds another histogram's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	h.Summary.Merge(&o.Summary)
	h.samples = append(h.samples, o.samples...)
}

// Samples returns the recorded samples in insertion order. The slice is
// shared; callers must not mutate it.
func (h *Histogram) Samples() []float64 { return h.samples }

// sorted returns the samples in ascending order, re-sorting only when
// samples were added since the last query. The invariant is structural:
// len(ordered) == len(samples) iff ordered is current, because samples
// only ever grows and ordered is rebuilt whole.
func (h *Histogram) sorted() []float64 {
	if len(h.ordered) != len(h.samples) {
		h.ordered = append(h.ordered[:0], h.samples...)
		sort.Float64s(h.ordered)
	}
	return h.ordered
}

// Percentile returns the p-th percentile (0..100) using nearest-rank. It
// returns NaN with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	s := h.sorted()
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Buckets divides [min, max] into n equal bins and returns the count per
// bin, for plotting latency distributions. It is total: n <= 0 returns
// nil, an empty histogram returns n zero bins, negative samples and
// single-value sample sets (width 0) land everything in bin 0.
func (h *Histogram) Buckets(n int) []int64 {
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	lo, hi, ok := h.Range()
	if !ok {
		return out
	}
	width := (hi - lo) / float64(n)
	if width == 0 {
		out[0] = int64(len(h.samples))
		return out
	}
	for _, v := range h.samples {
		i := int((v - lo) / width)
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0 // float rounding at the lower edge
		}
		out[i]++
	}
	return out
}
