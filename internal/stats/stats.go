// Package stats provides streaming latency/throughput statistics for NoC
// measurements: per-connection summaries, histograms and percentile
// queries. Everything is deterministic and allocation-light so it can run
// inside cycle loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// A Summary accumulates a stream of float64 samples.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%.1f max=%.1f sd=%.1f", s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// A Histogram keeps exact samples (NoC experiments produce at most a few
// million) and answers percentile queries. It embeds a Summary.
type Histogram struct {
	Summary
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.Summary.Add(v)
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Percentile returns the p-th percentile (0..100) using nearest-rank. It
// returns 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Buckets divides [min, max] into n equal bins and returns the count per
// bin, for plotting latency distributions.
func (h *Histogram) Buckets(n int) []int64 {
	out := make([]int64, n)
	if len(h.samples) == 0 || n == 0 {
		return out
	}
	lo, hi := h.Min(), h.Max()
	width := (hi - lo) / float64(n)
	if width == 0 {
		out[0] = int64(len(h.samples))
		return out
	}
	for _, v := range h.samples {
		i := int((v - lo) / width)
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	return out
}
