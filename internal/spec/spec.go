package spec

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"repro/internal/phit"
	"repro/internal/topology"
)

// IPID identifies an IP (a processor, accelerator, memory...).
type IPID int

// AppID identifies an application: a set of connections that belong
// together and must be verifiable in isolation.
type AppID int

// An IP is a hardware block attached to the network through an NI.
type IP struct {
	ID   IPID   `json:"id"`
	Name string `json:"name"`
	// NI is the network interface the IP is mapped to; topology.Invalid
	// until mapping has run.
	NI topology.NodeID `json:"ni"`
}

// A Connection is a unidirectional logical channel between two IP ports
// with guaranteed-service requirements.
type Connection struct {
	ID  phit.ConnID `json:"id"`
	App AppID       `json:"app"`
	Src IPID        `json:"src"`
	Dst IPID        `json:"dst"`

	// BandwidthMBps is the required throughput in Mbyte/s (1e6 bytes).
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	// MaxLatencyNs is the required worst-case latency, in nanoseconds,
	// from a word entering the source NI to it leaving the destination
	// NI.
	MaxLatencyNs float64 `json:"max_latency_ns"`
}

// A UseCase is a complete set of applications sharing the NoC.
type UseCase struct {
	Name        string       `json:"name"`
	Apps        int          `json:"apps"`
	IPs         []IP         `json:"ips"`
	Connections []Connection `json:"connections"`
}

// Validate checks referential integrity and requirement sanity.
func (u *UseCase) Validate() error {
	ips := make(map[IPID]bool, len(u.IPs))
	for _, ip := range u.IPs {
		if ips[ip.ID] {
			return fmt.Errorf("spec: duplicate IP id %d", ip.ID)
		}
		ips[ip.ID] = true
	}
	conns := make(map[phit.ConnID]bool, len(u.Connections))
	for _, c := range u.Connections {
		switch {
		case c.ID == phit.None:
			return fmt.Errorf("spec: connection between IP %d and %d uses reserved id 0", c.Src, c.Dst)
		case conns[c.ID]:
			return fmt.Errorf("spec: duplicate connection id %d", c.ID)
		case !ips[c.Src]:
			return fmt.Errorf("spec: connection %d references unknown source IP %d", c.ID, c.Src)
		case !ips[c.Dst]:
			return fmt.Errorf("spec: connection %d references unknown destination IP %d", c.ID, c.Dst)
		case c.Src == c.Dst:
			return fmt.Errorf("spec: connection %d is a self-loop on IP %d", c.ID, c.Src)
		case c.BandwidthMBps <= 0:
			return fmt.Errorf("spec: connection %d has non-positive bandwidth", c.ID)
		case c.MaxLatencyNs <= 0:
			return fmt.Errorf("spec: connection %d has non-positive latency budget", c.ID)
		case c.App < 0 || int(c.App) >= u.Apps:
			return fmt.Errorf("spec: connection %d names app %d of %d", c.ID, c.App, u.Apps)
		}
		conns[c.ID] = true
	}
	return nil
}

// IP returns the IP with the given id.
func (u *UseCase) IP(id IPID) (IP, error) {
	for _, ip := range u.IPs {
		if ip.ID == id {
			return ip, nil
		}
	}
	return IP{}, fmt.Errorf("spec: no IP %d", id)
}

// ConnectionsOfApp returns the connections belonging to one application.
func (u *UseCase) ConnectionsOfApp(a AppID) []Connection {
	var out []Connection
	for _, c := range u.Connections {
		if c.App == a {
			out = append(out, c)
		}
	}
	return out
}

// TotalBandwidthMBps sums the required bandwidth over all connections.
func (u *UseCase) TotalBandwidthMBps() float64 {
	sum := 0.0
	for _, c := range u.Connections {
		sum += c.BandwidthMBps
	}
	return sum
}

// RandomConfig parameterises Random. The zero value is not useful; start
// from Section7Config.
type RandomConfig struct {
	Name  string
	Seed  int64
	IPs   int
	Apps  int
	Conns int

	// Rates are drawn in two log-uniform bands: a HeavyFraction of the
	// connections draws from [HeavyMinRateMBps, MaxRateMBps], the rest
	// from [MinRateMBps, HeavyMinRateMBps] (or the whole range when
	// HeavyFraction is 0). Real SoC traffic is dominated by many modest
	// control/streaming channels plus a few heavy memory streams; a flat
	// distribution over the paper's 10-500 Mbyte/s range would exceed
	// the 4x3 mesh's bisection at 500 MHz, which the paper's workload
	// demonstrably does not (it fits).
	MinRateMBps, MaxRateMBps float64
	HeavyFraction            float64
	HeavyMinRateMBps         float64

	// Latency budgets are drawn log-uniformly from
	// [MinLatencyNs, MaxLatencyNs].
	MinLatencyNs, MaxLatencyNs float64
}

// Section7Config reproduces the workload of the paper's Section VII:
// 200 connections across 4 applications between 70 IPs, with throughput
// requirements in 10-500 Mbyte/s and latency requirements in 35-500 ns.
func Section7Config(seed int64) RandomConfig {
	return RandomConfig{
		Name:             "section7",
		Seed:             seed,
		IPs:              70,
		Apps:             4,
		Conns:            200,
		MinRateMBps:      10,
		MaxRateMBps:      500,
		HeavyFraction:    0.1,
		HeavyMinRateMBps: 40,
		MinLatencyNs:     35,
		MaxLatencyNs:     500,
	}
}

// Random generates a seeded random use case per the config. Connections
// pick distinct random endpoints; each connection is assigned to a random
// application.
func Random(cfg RandomConfig) *UseCase {
	if cfg.IPs < 2 || cfg.Conns < 1 || cfg.Apps < 1 {
		panic(fmt.Sprintf("spec: degenerate random config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := &UseCase{Name: cfg.Name, Apps: cfg.Apps}
	for i := 0; i < cfg.IPs; i++ {
		u.IPs = append(u.IPs, IP{ID: IPID(i), Name: fmt.Sprintf("IP%d", i), NI: topology.Invalid})
	}
	logUniform := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	for i := 0; i < cfg.Conns; i++ {
		src := IPID(rng.Intn(cfg.IPs))
		dst := IPID(rng.Intn(cfg.IPs - 1))
		if dst >= src {
			dst++
		}
		var rate float64
		if cfg.HeavyFraction > 0 && cfg.HeavyMinRateMBps > cfg.MinRateMBps {
			if rng.Float64() < cfg.HeavyFraction {
				rate = logUniform(cfg.HeavyMinRateMBps, cfg.MaxRateMBps)
			} else {
				rate = logUniform(cfg.MinRateMBps, cfg.HeavyMinRateMBps)
			}
		} else {
			rate = logUniform(cfg.MinRateMBps, cfg.MaxRateMBps)
		}
		u.Connections = append(u.Connections, Connection{
			ID:            phit.ConnID(i + 1),
			App:           AppID(rng.Intn(cfg.Apps)),
			Src:           src,
			Dst:           dst,
			BandwidthMBps: rate,
			MaxLatencyNs:  logUniform(cfg.MinLatencyNs, cfg.MaxLatencyNs),
		})
	}
	return u
}

// MapIPsRoundRobin assigns IPs to the mesh's NIs in round-robin order
// (deterministic). With 70 IPs on 48 NIs, some NIs host two IPs, as in the
// paper's concentrated mapping. The seed shuffles the IP order first so
// that different seeds give different placements.
func MapIPsRoundRobin(u *UseCase, m *topology.Mesh, seed int64) {
	nis := m.AllNIs()
	order := rand.New(rand.NewSource(seed)).Perm(len(u.IPs))
	for i, idx := range order {
		u.IPs[idx].NI = nis[i%len(nis)]
	}
}

// MapIPsByLoad assigns IPs to NIs balancing communication load, as the
// Æthereal design flow's mapping step does: IPs are placed in descending
// order of their total connection bandwidth onto the NI whose accumulated
// load is lowest (ties by NI order). This keeps any one NI's injection or
// delivery link from being oversubscribed by unlucky clustering.
func MapIPsByLoad(u *UseCase, m *topology.Mesh) {
	nis := m.AllNIs()
	load := make(map[IPID]float64, len(u.IPs))
	for _, c := range u.Connections {
		load[c.Src] += c.BandwidthMBps
		load[c.Dst] += c.BandwidthMBps
	}
	order := make([]int, len(u.IPs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := load[u.IPs[order[a]].ID], load[u.IPs[order[b]].ID]
		if la != lb {
			return la > lb
		}
		return u.IPs[order[a]].ID < u.IPs[order[b]].ID
	})
	niLoad := make([]float64, len(nis))
	niIPs := make([]int, len(nis))
	maxPerNI := (len(u.IPs) + len(nis) - 1) / len(nis)
	for _, idx := range order {
		best := -1
		for k := range nis {
			if niIPs[k] >= maxPerNI {
				continue
			}
			if best < 0 || niLoad[k] < niLoad[best] {
				best = k
			}
		}
		u.IPs[idx].NI = nis[best]
		niLoad[best] += load[u.IPs[idx].ID]
		niIPs[best]++
	}
}

// MapIPsByTraffic places IPs communication-aware, approximating the
// Æthereal design flow's mapping step [16]: IPs are placed in descending
// order of total connection bandwidth; each goes to the NI (with a seat
// left) that minimises the sum over already-placed partners of
// bandwidth x mesh distance, plus a load-balancing term that spreads
// aggregate injection/delivery load across NIs. Heavy flows end up short
// and hot spots are avoided — both essential to fit 200 random
// connections on a 4x3 mesh at 500 MHz.
func MapIPsByTraffic(u *UseCase, m *topology.Mesh) {
	nis := m.AllNIs()
	// Per-IP partner lists in first-appearance order: the placement cost
	// below sums floats over a candidate's partners, and summing in map
	// iteration order would let float non-associativity flip near-tie
	// placements between same-seed runs.
	type partner struct {
		ip IPID
		w  float64
	}
	partners := make(map[IPID][]partner)
	slot := make(map[[2]IPID]int)
	addW := func(a, b IPID, w float64) {
		key := [2]IPID{a, b}
		if i, ok := slot[key]; ok {
			partners[a][i].w += w
		} else {
			slot[key] = len(partners[a])
			partners[a] = append(partners[a], partner{ip: b, w: w})
		}
	}
	load := make(map[IPID]float64, len(u.IPs))
	for _, c := range u.Connections {
		addW(c.Src, c.Dst, c.BandwidthMBps)
		addW(c.Dst, c.Src, c.BandwidthMBps)
		load[c.Src] += c.BandwidthMBps
		load[c.Dst] += c.BandwidthMBps
	}
	order := make([]int, len(u.IPs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := load[u.IPs[order[a]].ID], load[u.IPs[order[b]].ID]
		if la != lb {
			return la > lb
		}
		return u.IPs[order[a]].ID < u.IPs[order[b]].ID
	})
	dist := func(a, b topology.NodeID) float64 {
		ra, rb := m.Node(m.Node(a).Router), m.Node(m.Node(b).Router)
		d := ra.X - rb.X
		if d < 0 {
			d = -d
		}
		dy := ra.Y - rb.Y
		if dy < 0 {
			dy = -dy
		}
		return float64(d+dy) + 2 // two NI hops
	}
	placed := make(map[IPID]topology.NodeID)
	niLoad := make([]float64, len(nis))
	niIPs := make([]int, len(nis))
	maxPerNI := (len(u.IPs) + len(nis) - 1) / len(nis)
	// The load-balance weight trades wire length against hot NIs; the
	// mean mesh distance (~4) over a typical partner weight works well.
	const balance = 6.0
	for _, idx := range order {
		ip := &u.IPs[idx]
		best, bestCost := -1, 0.0
		for k, ni := range nis {
			if niIPs[k] >= maxPerNI {
				continue
			}
			cost := balance * niLoad[k]
			for _, pw := range partners[ip.ID] {
				if pni, ok := placed[pw.ip]; ok {
					cost += pw.w * dist(ni, pni)
				}
			}
			if best < 0 || cost < bestCost {
				best, bestCost = k, cost
			}
		}
		ip.NI = nis[best]
		placed[ip.ID] = nis[best]
		niLoad[best] += load[ip.ID]
		niIPs[best]++
	}
}

// Save writes the use case as indented JSON.
func (u *UseCase) Save(path string) error {
	b, err := json.MarshalIndent(u, "", "  ")
	if err != nil {
		return fmt.Errorf("spec: marshal: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a use case from JSON and validates it.
func Load(path string) (*UseCase, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var u UseCase
	if err := json.Unmarshal(b, &u); err != nil {
		return nil, fmt.Errorf("spec: parse %s: %w", path, err)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &u, nil
}
