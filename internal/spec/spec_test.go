package spec

import (
	"path/filepath"
	"testing"

	"repro/internal/phit"
	"repro/internal/topology"
)

func validConfig() RandomConfig {
	return RandomConfig{
		Name: "t", Seed: 1, IPs: 10, Apps: 3, Conns: 20,
		MinRateMBps: 10, MaxRateMBps: 500,
		MinLatencyNs: 35, MaxLatencyNs: 500,
	}
}

func TestRandomGeneratesValid(t *testing.T) {
	u := Random(validConfig())
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(u.IPs) != 10 || len(u.Connections) != 20 {
		t.Fatalf("sizes: %d IPs, %d conns", len(u.IPs), len(u.Connections))
	}
	for _, c := range u.Connections {
		if c.BandwidthMBps < 10 || c.BandwidthMBps > 500 {
			t.Errorf("rate %v outside range", c.BandwidthMBps)
		}
		if c.MaxLatencyNs < 35 || c.MaxLatencyNs > 500 {
			t.Errorf("latency %v outside range", c.MaxLatencyNs)
		}
		if c.Src == c.Dst {
			t.Error("self-loop generated")
		}
	}
	if u.TotalBandwidthMBps() <= 0 {
		t.Error("zero total bandwidth")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(validConfig())
	b := Random(validConfig())
	for i := range a.Connections {
		if a.Connections[i] != b.Connections[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	cfg := validConfig()
	cfg.Seed = 2
	c := Random(cfg)
	same := true
	for i := range a.Connections {
		if a.Connections[i] != c.Connections[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestHeavyTail(t *testing.T) {
	cfg := validConfig()
	cfg.Conns = 400
	cfg.HeavyFraction = 0.1
	cfg.HeavyMinRateMBps = 40
	u := Random(cfg)
	heavy := 0
	for _, c := range u.Connections {
		if c.BandwidthMBps >= 40 {
			heavy++
		}
	}
	frac := float64(heavy) / 400
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("heavy fraction %.2f, want ~0.1", frac)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *UseCase {
		return &UseCase{Apps: 2, IPs: []IP{{ID: 0}, {ID: 1}},
			Connections: []Connection{{ID: 1, App: 0, Src: 0, Dst: 1, BandwidthMBps: 10, MaxLatencyNs: 100}}}
	}
	cases := map[string]func(u *UseCase){
		"dup ip":       func(u *UseCase) { u.IPs = append(u.IPs, IP{ID: 0}) },
		"zero conn id": func(u *UseCase) { u.Connections[0].ID = phit.None },
		"dup conn":     func(u *UseCase) { u.Connections = append(u.Connections, u.Connections[0]) },
		"unknown src":  func(u *UseCase) { u.Connections[0].Src = 9 },
		"unknown dst":  func(u *UseCase) { u.Connections[0].Dst = 9 },
		"self loop":    func(u *UseCase) { u.Connections[0].Dst = 0 },
		"zero rate":    func(u *UseCase) { u.Connections[0].BandwidthMBps = 0 },
		"zero latency": func(u *UseCase) { u.Connections[0].MaxLatencyNs = 0 },
		"bad app":      func(u *UseCase) { u.Connections[0].App = 5 },
	}
	for name, mutate := range cases {
		u := base()
		mutate(u)
		if err := u.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base case rejected: %v", err)
	}
}

func TestMappings(t *testing.T) {
	m := topology.NewMesh(2, 2, 2)
	u := Random(validConfig())
	MapIPsRoundRobin(u, m, 3)
	for _, ip := range u.IPs {
		if ip.NI == topology.Invalid {
			t.Fatal("round robin left an IP unmapped")
		}
	}
	u2 := Random(validConfig())
	MapIPsByLoad(u2, m)
	counts := map[topology.NodeID]int{}
	for _, ip := range u2.IPs {
		if ip.NI == topology.Invalid {
			t.Fatal("by-load left an IP unmapped")
		}
		counts[ip.NI]++
	}
	// 10 IPs on 8 NIs: no NI hosts more than ceil(10/8) = 2.
	for ni, n := range counts {
		if n > 2 {
			t.Errorf("NI %d hosts %d IPs", ni, n)
		}
	}
	u3 := Random(validConfig())
	MapIPsByTraffic(u3, m)
	for _, ip := range u3.IPs {
		if ip.NI == topology.Invalid {
			t.Fatal("by-traffic left an IP unmapped")
		}
	}
}

func TestConnectionsOfAppAndIP(t *testing.T) {
	u := Random(validConfig())
	total := 0
	for a := 0; a < u.Apps; a++ {
		total += len(u.ConnectionsOfApp(AppID(a)))
	}
	if total != len(u.Connections) {
		t.Errorf("apps partition %d of %d connections", total, len(u.Connections))
	}
	if _, err := u.IP(0); err != nil {
		t.Errorf("IP(0): %v", err)
	}
	if _, err := u.IP(999); err == nil {
		t.Error("IP(999) found")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "uc.json")
	u := Random(validConfig())
	m := topology.NewMesh(2, 2, 2)
	MapIPsRoundRobin(u, m, 1)
	if err := u.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != u.Name || len(got.Connections) != len(u.Connections) {
		t.Error("round trip lost data")
	}
	for i := range got.Connections {
		if got.Connections[i] != u.Connections[i] {
			t.Fatal("connection changed in round trip")
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
}

func TestSection7Config(t *testing.T) {
	cfg := Section7Config(1)
	if cfg.IPs != 70 || cfg.Apps != 4 || cfg.Conns != 200 {
		t.Errorf("Section7Config = %+v", cfg)
	}
	if cfg.MinRateMBps != 10 || cfg.MaxRateMBps != 500 {
		t.Error("rate range wrong")
	}
	if cfg.MinLatencyNs != 35 || cfg.MaxLatencyNs != 500 {
		t.Error("latency range wrong")
	}
	u := Random(cfg)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for degenerate config")
		}
	}()
	Random(RandomConfig{IPs: 1, Conns: 1, Apps: 1})
}
