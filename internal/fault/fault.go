package fault

import (
	"fmt"
	"sort"

	"repro/internal/clock"
)

// Kind classifies a violation of the operating envelope.
type Kind int

const (
	// SkewBound: writer/reader skew beyond half a clock period
	// (paper Section V's mesochronous assumption).
	SkewBound Kind = iota
	// AlignBound: FIFO forwarding delay plus adverse skew beyond two
	// cycles, breaking the uniform one-slot TDM shift per link stage.
	AlignBound
	// FIFOOverflow: a bi-synchronous FIFO exceeded its 4-word bound.
	FIFOOverflow
	// FIFOUnderflow: a link FSM found the FIFO empty mid-flit (a used
	// slot did not carry a whole flit).
	FIFOUnderflow
	// LinkLatency: a link stage held a word longer than the one-flit-cycle
	// forwarding latency of paper Section V.
	LinkLatency
	// SlotContention: two flits met on one link in the same slot
	// (Section III's contention-free-routing invariant).
	SlotContention
	// SlotOwnership: a link carried a connection in a slot the allocation
	// reserved for another (TDM schedule violated).
	SlotOwnership
	// ProtocolError: a phit of the wrong kind at the wrong position
	// (non-header opening a packet, header inside a packet...).
	ProtocolError
	// UnknownQueue: a header addressed a queue the NI does not have.
	UnknownQueue
	// CreditError: end-to-end credit accounting violated (credits above
	// capacity, credits with no target connection).
	CreditError
	// QueueOverflow: an NI receive queue overflowed — end-to-end flow
	// control violated.
	QueueOverflow
	// RouteError: a phit routed to a non-existent or unconnected port.
	RouteError
	// PacketState: an NI sender's packetisation self-consistency broke
	// (packet left open into a foreign or unowned slot).
	PacketState
	// Liveness: an asynchronous wrapper stopped firing (empty-token
	// liveness of paper Section VI lost).
	Liveness
	// LinkQuarantined: a connection exhausted its reliability-layer retry
	// budget and stopped transmitting — its path is treated as failed
	// while every other connection keeps its guarantees.
	LinkQuarantined
	// LatencyBound: a delivered word exceeded its connection's
	// analytical worst-case latency (paper Section VII) — raised by the
	// conformance auditor, never by the fabric itself.
	LatencyBound
	// DeliveryOrder: a connection delivered words out of sequence — the
	// in-order property every TDM connection carries by construction.
	DeliveryOrder
	// InjectionRate: an IP offered sustained load above its allocated
	// guarantee. Not a fabric fault — the GS contract only binds the
	// bounds while the source stays within its allocation — but the
	// auditor flags it so an out-of-contract run is never mistaken for
	// a conforming one.
	InjectionRate
	// IsolationBreach: a connection's delivery timeline changed when
	// *other* connections' traffic was perturbed — the composability
	// claim (paper Section III) broken.
	IsolationBreach
	// ReconfigDisturbance: a surviving connection's delivery timeline
	// changed across a run-time reconfiguration event (an open or close of
	// *other* connections) — the "undisrupted quality-of-service during
	// reconfiguration" capability of reference [16] broken.
	ReconfigDisturbance
	// ReconfigResidue: a closed connection left state behind in the
	// reconfiguration window — slots still owned in the allocation or
	// still programmed in a live NI injection table after CloseConnection
	// returned.
	ReconfigResidue
)

var kindNames = map[Kind]string{
	SkewBound:           "skew-bound",
	AlignBound:          "align-bound",
	FIFOOverflow:        "fifo-overflow",
	FIFOUnderflow:       "fifo-underflow",
	LinkLatency:         "link-latency",
	SlotContention:      "slot-contention",
	SlotOwnership:       "slot-ownership",
	ProtocolError:       "protocol",
	UnknownQueue:        "unknown-queue",
	CreditError:         "credit",
	QueueOverflow:       "queue-overflow",
	RouteError:          "route",
	PacketState:         "packet-state",
	Liveness:            "liveness",
	LinkQuarantined:     "link-quarantined",
	LatencyBound:        "latency-bound",
	DeliveryOrder:       "delivery-order",
	InjectionRate:       "injection-rate",
	IsolationBreach:     "isolation",
	ReconfigDisturbance: "reconfig-disturbance",
	ReconfigResidue:     "reconfig-residue",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NoSlot marks a violation with no meaningful TDM slot.
const NoSlot = -1

// A Violation is one detected breach of the operating envelope.
type Violation struct {
	Kind      Kind
	Component string     // diagnostic name of the detecting component
	Time      clock.Time // simulation instant of detection, in ps
	Slot      int        // TDM slot, or NoSlot
	Detail    string     // human-readable specifics
}

func (v Violation) String() string {
	if v.Slot == NoSlot {
		return fmt.Sprintf("%s: [%s] %s at %d ps", v.Component, v.Kind, v.Detail, v.Time)
	}
	return fmt.Sprintf("%s: [%s] %s in slot %d at %d ps", v.Component, v.Kind, v.Detail, v.Slot, v.Time)
}

// A Reporter consumes violations. Components hold a Reporter; nil selects
// strict (fail-fast) mode.
type Reporter interface {
	Report(v Violation)
}

// Report delivers v to r, or panics with the violation's message when r is
// nil — preserving the historical fail-fast behaviour of the envelope
// checks. Call sites that report a violation must also degrade gracefully
// (drop, clamp, resynchronise) so that collecting mode can continue.
func Report(r Reporter, v Violation) {
	if r == nil {
		panic(v.String())
	}
	r.Report(v)
}

// DefaultKeep bounds how many violations a Collector stores verbatim; the
// totals keep counting past it, so a pathological campaign cannot exhaust
// memory.
const DefaultKeep = 10000

// A Collector is the engine-level violation sink of a campaign. The
// simulation engine is single-goroutine, so Collector needs no locking.
type Collector struct {
	violations []Violation
	byKind     map[Kind]int64
	total      int64
	keep       int
}

// NewCollector returns an empty collector storing up to DefaultKeep
// violations.
func NewCollector() *Collector {
	return &Collector{byKind: make(map[Kind]int64), keep: DefaultKeep}
}

// SetKeep bounds the number of violations stored verbatim (counters are
// unaffected).
func (c *Collector) SetKeep(n int) { c.keep = n }

// Report implements Reporter.
func (c *Collector) Report(v Violation) {
	c.total++
	c.byKind[v.Kind]++
	if len(c.violations) < c.keep {
		c.violations = append(c.violations, v)
	}
}

// Total returns the number of violations reported.
func (c *Collector) Total() int64 { return c.total }

// Violations returns the stored violations in detection order.
func (c *Collector) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// CountByKind returns the per-kind totals.
func (c *Collector) CountByKind() map[Kind]int64 {
	out := make(map[Kind]int64, len(c.byKind))
	for k, n := range c.byKind {
		out[k] = n
	}
	return out
}

// Kinds returns the kinds seen, sorted, for deterministic reporting.
func (c *Collector) Kinds() []Kind {
	out := make([]Kind, 0, len(c.byKind))
	for k := range c.byKind {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FirstAt returns the first stored violation detected at or after t.
func (c *Collector) FirstAt(t clock.Time) (Violation, bool) {
	for _, v := range c.violations {
		if v.Time >= t {
			return v, true
		}
	}
	return Violation{}, false
}
