package fault

import (
	"repro/internal/parallel"
	"repro/internal/sim"
)

// A System is the slice of a built network a campaign needs: the engine to
// arm events on, the injection points, and a place to hang the invariant
// checkers. core.Network satisfies it.
type System interface {
	Engine() *sim.Engine
	FaultTargets() Targets
	AddInvariantCheckers(rep Reporter)
}

// Execute arms plan on sys, drives the simulation via run, and returns the
// deterministic campaign summary — the boilerplate every campaign driver
// (aelite-sim, the faultcampaign example, sweep workers) shares.
//
// col receives the violations and feeds the summary; a nil col leaves the
// system in strict mode, so the first violation panics and the summary
// lists the injected faults only.
func Execute(plan *Plan, col *Collector, sys System, run func()) (*Summary, error) {
	var rep Reporter
	if col != nil {
		rep = col
	}
	sys.AddInvariantCheckers(rep)
	c := NewCampaign(plan, col)
	if err := c.Arm(sys.Engine(), sys.FaultTargets()); err != nil {
		return nil, err
	}
	run()
	return c.Summarize(), nil
}

// RunSweep executes n independent campaign points across up to jobs
// workers and returns their summaries in point order, never completion
// order, so a sweep renders byte-identically at any worker count.
//
// point(i) runs on a worker goroutine: it must build its own network and
// engine (a sim.Engine is single-goroutine), arm and drive its own
// campaign — typically via Execute — and return the summary. Every point
// runs even when another fails; the lowest-indexed error is returned.
func RunSweep(jobs, n int, point func(i int) (*Summary, error)) ([]*Summary, error) {
	return parallel.Map(jobs, n, point)
}
