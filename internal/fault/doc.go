// Package fault is the fault-injection and violation-observation subsystem
// of the aelite reproduction.
//
// The paper's guarantees hold only inside a strict operating envelope:
// writer/reader skew of at most half a clock cycle, a bi-synchronous FIFO
// forwarding delay of one to two cycles, contention-free TDM slots, whole
// flits in used slots, live asynchronous wrappers. The simulator checks
// that envelope everywhere — historically by panicking, which is the right
// default for catching modelling errors but makes it impossible to *study*
// behaviour at or beyond the boundary.
//
// This package separates mechanism from policy:
//
//   - a Violation is a structured record of one envelope breach (kind,
//     component, time, slot, detail);
//   - a Reporter receives violations. A nil Reporter selects strict mode:
//     Report panics with the violation's message, byte-compatible with the
//     historical fail-fast behaviour, so existing tests and production
//     runs are unchanged. A non-nil Reporter (usually a Collector) selects
//     collecting mode: the component records the violation and degrades
//     gracefully (drops the phit, clamps the credits, closes the packet)
//     instead of killing the process;
//   - a Plan is a deterministic, seedable schedule of fault events
//     (clock drift and jitter, phit drop/corrupt/duplicate, FIFO delay
//     stretch, wrapper PIC stall), armed on a simulation engine by a
//     Campaign at exact picosecond times so campaigns are bit-reproducible;
//   - invariant Checkers (SlotChecker, LivenessChecker) are engine
//     components that continuously verify the paper's core claims while
//     faults are being injected.
//
// The usual single-campaign shape, with Execute wiring the checkers,
// arming the plan and summarising in one call:
//
//	plan, err := fault.ParseSpec("drop@9000:l0.:2;random:3", seed)
//	if err != nil { ... }
//	col := fault.NewCollector()
//	net := buildNetwork(col) // a fault.System, e.g. *core.Network
//	summary, err := fault.Execute(plan, col, net, func() {
//		net.Run(warmupNs, measureNs)
//	})
//	if err != nil { ... }
//	summary.Write(os.Stdout)
//
// Multi-campaign sweeps (e.g. the same plan across consecutive seeds) fan
// out with RunSweep, which keeps results keyed by point index so the
// output is byte-identical at every worker count:
//
//	sums, err := fault.RunSweep(jobs, n, func(i int) (*fault.Summary, error) {
//		// build a private network and plan for point i, then fault.Execute
//	})
package fault
