package fault

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

// A SlotChecker continuously verifies the Section III contention-freedom
// invariant on one link: a TDM slot (one flit cycle) carries at most one
// flit, and every phit in it belongs to one connection. It observes the
// link's entry wire without knowing the allocation, so it detects schedule
// corruption whatever its cause (injected faults, allocator bugs, clock
// drift shifting slot boundaries).
type SlotChecker struct {
	name string
	clk  *clock.Clock
	wire *sim.Wire[phit.Phit]
	rep  Reporter

	sampled phit.Phit
	curSlot int64
	conn    phit.ConnID
	headers int
	flagged bool

	Observed int64
}

// NewSlotChecker builds a checker for the link entry wire, clocked by the
// writer's clock.
func NewSlotChecker(name string, clk *clock.Clock, wire *sim.Wire[phit.Phit], rep Reporter) *SlotChecker {
	return &SlotChecker{name: name, clk: clk, wire: wire, rep: rep, curSlot: -1}
}

// Name implements sim.Component.
func (s *SlotChecker) Name() string { return s.name }

// Clock implements sim.Component.
func (s *SlotChecker) Clock() *clock.Clock { return s.clk }

// Sample implements sim.Component.
func (s *SlotChecker) Sample(now clock.Time) { s.sampled = s.wire.Read() }

// Update implements sim.Component.
func (s *SlotChecker) Update(now clock.Time) {
	if !s.sampled.Valid {
		return
	}
	edge, ok := s.clk.EdgeIndex(now)
	if !ok {
		return
	}
	// The sampled value was driven in the previous cycle; attribute it to
	// that cycle's slot.
	drive := edge - 1
	if drive < 0 {
		return
	}
	slot := drive / phit.FlitWords
	if slot != s.curSlot {
		s.curSlot = slot
		s.conn = s.sampled.Meta.Conn
		s.headers = 0
		s.flagged = false
	}
	if s.sampled.Kind == phit.Header || s.sampled.Kind == phit.CreditOnly {
		s.headers++
	}
	s.Observed++
	if s.flagged {
		return
	}
	if s.sampled.Meta.Conn != s.conn {
		s.flagged = true
		Report(s.rep, Violation{
			Kind: SlotContention, Component: s.name, Time: now, Slot: int(slot % int64(1<<31)),
			Detail: fmt.Sprintf("connections %d and %d share one slot", s.conn, s.sampled.Meta.Conn),
		})
		return
	}
	if s.headers > 1 {
		s.flagged = true
		Report(s.rep, Violation{
			Kind: SlotContention, Component: s.name, Time: now, Slot: int(slot % int64(1<<31)),
			Detail: fmt.Sprintf("%d packet headers in one slot — two flits on one link in the same slot", s.headers),
		})
	}
}

// Progress is anything whose forward progress the liveness checker can
// watch; *wrapper.Wrapper satisfies it.
type Progress interface {
	Name() string
	Fires() int64
}

// A LivenessChecker verifies the Section VI empty-token liveness claim:
// every asynchronous wrapper keeps firing (data or empty tokens) as long as
// the network runs. A wrapper that makes no progress for a whole window is
// reported once per stall episode.
type LivenessChecker struct {
	name string
	clk  *clock.Clock
	rep  Reporter

	watch   []Progress
	last    []int64
	stalled []bool

	window int64 // check interval in edges of clk
	edge   int64
}

// DefaultLivenessWindow is the check interval in nominal clock cycles —
// generous against transient stalls (slot-table gaps, startup priming) but
// far below any meaningful simulation length.
const DefaultLivenessWindow = 48 * phit.FlitWords

// NewLivenessChecker watches the given wrappers on the nominal clock.
// window 0 selects DefaultLivenessWindow.
func NewLivenessChecker(name string, clk *clock.Clock, watch []Progress, window int64, rep Reporter) *LivenessChecker {
	if window <= 0 {
		window = DefaultLivenessWindow
	}
	return &LivenessChecker{
		name: name, clk: clk, rep: rep,
		watch: watch, last: make([]int64, len(watch)), stalled: make([]bool, len(watch)),
		window: window,
	}
}

// Name implements sim.Component.
func (l *LivenessChecker) Name() string { return l.name }

// Clock implements sim.Component.
func (l *LivenessChecker) Clock() *clock.Clock { return l.clk }

// Sample implements sim.Component.
func (l *LivenessChecker) Sample(now clock.Time) {}

// Update implements sim.Component.
func (l *LivenessChecker) Update(now clock.Time) {
	l.edge++
	if l.edge%l.window != 0 {
		return
	}
	for i, p := range l.watch {
		fires := p.Fires()
		if fires == l.last[i] {
			if !l.stalled[i] {
				l.stalled[i] = true
				Report(l.rep, Violation{
					Kind: Liveness, Component: l.name, Time: now, Slot: NoSlot,
					Detail: fmt.Sprintf("%s made no progress for %d cycles — empty-token liveness lost", p.Name(), l.window),
				})
			}
		} else {
			l.stalled[i] = false
		}
		l.last[i] = fires
	}
}
