package fault

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

func TestReportStrictPanicsWithMessage(t *testing.T) {
	v := Violation{Kind: SlotContention, Component: "l0", Time: 4200, Slot: 3, Detail: "x"}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Report(nil, v) did not panic")
		}
		if r != v.String() {
			t.Errorf("panic value %v, want the violation message %q", r, v.String())
		}
	}()
	Report(nil, v)
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.SetKeep(3)
	for i := 0; i < 5; i++ {
		k := ProtocolError
		if i%2 == 1 {
			k = CreditError
		}
		Report(c, Violation{Kind: k, Component: "n", Time: clock.Time(100 * (i + 1)), Slot: NoSlot})
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5 — counters must keep counting past the keep bound", c.Total())
	}
	if got := len(c.Violations()); got != 3 {
		t.Errorf("stored %d violations, want the keep bound 3", got)
	}
	want := map[Kind]int64{ProtocolError: 3, CreditError: 2}
	got := c.CountByKind()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("CountByKind[%v] = %d, want %d", k, got[k], n)
		}
	}
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] > kinds[1] {
		t.Errorf("Kinds = %v, want 2 kinds sorted ascending", kinds)
	}
	if v, ok := c.FirstAt(150); !ok || v.Time != 200 {
		t.Errorf("FirstAt(150) = %v,%v, want the violation at 200", v, ok)
	}
	if _, ok := c.FirstAt(10000); ok {
		t.Error("FirstAt past the last violation reported a hit")
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("drop@9000:l0.:2; corrupt@12.5:l3. ;random:3;stall@0:w", 77)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 77 {
		t.Errorf("seed %d, want 77", p.Seed)
	}
	if len(p.Events) != 4 {
		t.Fatalf("parsed %d events, want 4: %v", len(p.Events), p.Events)
	}
	e := p.Events[0]
	if e.Op != OpDrop || e.At != 9000*clock.Nanosecond || e.Target != "l0." || e.Param != 2 {
		t.Errorf("event 0 = %v", e)
	}
	// Fractional nanoseconds and the per-op default param.
	e = p.Events[1]
	if e.Op != OpCorrupt || e.At != clock.Time(12.5*float64(clock.Nanosecond)) || e.Param != 1 {
		t.Errorf("event 1 = %v", e)
	}
	if p.Events[2].Op != opRandom || p.Events[2].Param != 3 {
		t.Errorf("event 2 = %v, want unexpanded random:3", p.Events[2])
	}
	if p.Events[3].Op != OpStall || p.Events[3].Param != 30 {
		t.Errorf("event 3 = %v, want default 30 stall cycles", p.Events[3])
	}

	bad := []string{
		"",                    // empty campaign
		"  ;  ",               // only separators
		"zap@100:l0",          // unknown op
		"drop:l0",             // missing @TIME
		"drop@abc:l0",         // bad time
		"drop@-5:l0",          // negative time
		"drop@100:l0:x",       // bad param
		"drop@100:l0:1:extra", // too many fields
		"random:0",            // non-positive random count
		"random:x",            // bad random count
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", spec)
		}
	}
}

// hookedWire builds an engine with one intercepted wire and a driver that
// drives the sequence seq (invalid phits for zero words) one value per
// cycle, returning the committed phits observed after each cycle.
func runHook(t *testing.T, arm func(h *LinkHook), seq []phit.Word) []phit.Phit {
	t.Helper()
	eng := sim.New()
	clk := clock.New("c", 1000, 0)
	w := sim.NewWire[phit.Phit]("w")
	eng.AddWire(w)
	h := NewLinkHook("w")
	h.Attach(w)
	arm(h)
	var out []phit.Phit
	d := &driver{clk: clk, out: w, seq: seq}
	eng.Add(d)
	eng.Add(&observer{clk: clk, wire: w, sink: &out})
	eng.Run(clock.Time(len(seq)+2) * 1000)
	return out
}

// driver drives seq values then idles; observer, on the same clock, samples
// the wire with register semantics (it sees each commit one cycle later).
type driver struct {
	clk *clock.Clock
	out *sim.Wire[phit.Phit]
	seq []phit.Word
	i   int
}

func (d *driver) Name() string          { return "drv" }
func (d *driver) Clock() *clock.Clock   { return d.clk }
func (d *driver) Sample(now clock.Time) {}
func (d *driver) Update(now clock.Time) {
	v := phit.IdlePhit
	if d.i < len(d.seq) && d.seq[d.i] != 0 {
		v = phit.Phit{Valid: true, Kind: phit.Payload, Data: d.seq[d.i]}
	}
	d.i++
	d.out.Drive(v)
}

type observer struct {
	clk     *clock.Clock
	wire    *sim.Wire[phit.Phit]
	sink    *[]phit.Phit
	sampled phit.Phit
}

func (o *observer) Name() string          { return "obs" }
func (o *observer) Clock() *clock.Clock   { return o.clk }
func (o *observer) Sample(now clock.Time) { o.sampled = o.wire.Read() }
func (o *observer) Update(now clock.Time) { *o.sink = append(*o.sink, o.sampled) }

func TestLinkHookDrop(t *testing.T) {
	got := runHook(t, func(h *LinkHook) { h.arm(OpDrop, 2) }, []phit.Word{10, 20, 30})
	var valid []phit.Word
	for _, p := range got {
		if p.Valid {
			valid = append(valid, p.Data)
		}
	}
	if len(valid) != 1 || valid[0] != 30 {
		t.Errorf("surviving phits %v, want only 30 after dropping 2", valid)
	}
}

func TestLinkHookCorrupt(t *testing.T) {
	got := runHook(t, func(h *LinkHook) { h.arm(OpCorrupt, 1) }, []phit.Word{10, 20})
	var valid []phit.Word
	for _, p := range got {
		if p.Valid {
			valid = append(valid, p.Data)
		}
	}
	if len(valid) < 2 || valid[0] != 10^CorruptMask || valid[1] != 20 {
		t.Errorf("phits %v, want first corrupted to %d then 20 untouched", valid, 10^CorruptMask)
	}
}

func TestLinkHookDuplicate(t *testing.T) {
	// 40 is followed by an idle cycle; the duplicate replays 40 into it.
	got := runHook(t, func(h *LinkHook) { h.arm(OpDuplicate, 1) }, []phit.Word{40, 0, 50})
	var valid []phit.Word
	for _, p := range got {
		if p.Valid {
			valid = append(valid, p.Data)
		}
	}
	if len(valid) < 3 || valid[0] != 40 || valid[1] != 40 || valid[2] != 50 {
		t.Errorf("phits %v, want 40 replayed into the following cycle before 50", valid)
	}
}

// dummyTargets builds a target set backed by plain wires and counters.
func dummyTargets() (Targets, *int) {
	stalls := 0
	return Targets{
		Links: []LinkTarget{
			{Name: "link.a", Wire: sim.NewWire[phit.Phit]("a")},
			{Name: "link.ab", Wire: sim.NewWire[phit.Phit]("ab")},
		},
		Clocks: []*clock.Clock{clock.New("tile0", 2000, 0)},
		Delays: []DelayTarget{{Name: "fifo.x", Stretch: func(clock.Duration) {}}},
		Stalls: []StallTarget{{Name: "wrap.y", Stall: func(int) { stalls++ }}},
	}, &stalls
}

func TestResolveExactBeatsSubstring(t *testing.T) {
	tg, _ := dummyTargets()
	// "link.a" is an exact name AND a substring of "link.ab": exact wins.
	lt, err := resolve("link.a", tg.Links, func(l LinkTarget) string { return l.Name })
	if err != nil {
		t.Fatal(err)
	}
	if lt.Name != "link.a" {
		t.Errorf("resolved %q, want the exact match link.a", lt.Name)
	}
	if _, err := resolve("link", tg.Links, func(l LinkTarget) string { return l.Name }); err == nil {
		t.Error("ambiguous pattern resolved without error")
	} else if !strings.Contains(err.Error(), "link.a") || !strings.Contains(err.Error(), "link.ab") {
		t.Errorf("ambiguity error %v does not list the candidates", err)
	}
	if _, err := resolve("nope", tg.Links, func(l LinkTarget) string { return l.Name }); err == nil {
		t.Error("unmatched pattern resolved without error")
	}
}

func TestArmUnknownTargetFails(t *testing.T) {
	tg, _ := dummyTargets()
	p, err := ParseSpec("drop@100:nosuchlink", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(p, NewCollector())
	if err := c.Arm(sim.New(), tg); err == nil {
		t.Error("Arm accepted an event with no matching target")
	}
}

// TestRandomExpansionDeterministic: the same seed always expands random:N
// into the same schedule; a different seed gives a different one.
func TestRandomExpansionDeterministic(t *testing.T) {
	expand := func(seed int64) string {
		tg, _ := dummyTargets()
		p, err := ParseSpec("random:6", seed)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCampaign(p, NewCollector())
		if err := c.Arm(sim.New(), tg); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range c.Injected() {
			fmt.Fprintf(&b, "%s->%s\n", f.Event, f.Target)
		}
		return b.String()
	}
	a, b := expand(42), expand(42)
	if a != b {
		t.Errorf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	if c := expand(43); c == a {
		t.Error("different seeds produced the identical schedule")
	}
}

// TestCampaignStallAndSummary: an armed stall event fires at its exact
// instant, and the summary reports detection latency against the collector.
func TestCampaignStallAndSummary(t *testing.T) {
	tg, stalls := dummyTargets()
	p, err := ParseSpec("stall@3:wrap.y:17", 1)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	c := NewCampaign(p, col)
	eng := sim.New()
	if err := c.Arm(eng, tg); err != nil {
		t.Fatal(err)
	}
	// Needs at least one clocked component for the engine to visit instants.
	eng.Add(&driver{clk: clock.New("c", 1000, 0), out: sim.NewWire[phit.Phit]("x")})
	col.Report(Violation{Kind: Liveness, Component: "check", Time: 5000, Slot: NoSlot})
	eng.Run(10000)
	if *stalls != 1 {
		t.Errorf("stall target invoked %d times, want 1", *stalls)
	}
	s := c.Summarize()
	if len(s.Faults) != 1 || s.Faults[0].Target != "wrap.y" {
		t.Fatalf("summary faults %v", s.Faults)
	}
	if want := clock.Duration(5000 - 3*clock.Nanosecond); s.Latency[0] != want {
		t.Errorf("detection latency %d, want %d", s.Latency[0], want)
	}
	var buf strings.Builder
	s.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "1 faults injected, 1 violations detected") ||
		!strings.Contains(out, "wrap.y") || !strings.Contains(out, "liveness") {
		t.Errorf("summary rendering missing expected fields:\n%s", out)
	}
}

// TestSummaryNoDetection: a fault with no violation at or after it renders
// "-" for its detection latency.
func TestSummaryNoDetection(t *testing.T) {
	tg, _ := dummyTargets()
	p, _ := ParseSpec("drop@100:link.ab", 1)
	c := NewCampaign(p, NewCollector())
	if err := c.Arm(sim.New(), tg); err != nil {
		t.Fatal(err)
	}
	s := c.Summarize()
	if s.Latency[0] != NoDetection {
		t.Errorf("latency %d, want NoDetection", s.Latency[0])
	}
	var buf strings.Builder
	s.Write(&buf)
	if !strings.Contains(buf.String(), " -\n") {
		t.Errorf("undetected fault not rendered as '-':\n%s", buf.String())
	}
}
