package fault

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

// An Op is one fault mechanism.
type Op int

const (
	// OpDrop discards the next Param valid phits committed on a link.
	OpDrop Op = iota
	// OpCorrupt XORs the data word of the next Param valid phits on a
	// link with CorruptMask (header corruption re-routes packets; payload
	// corruption flips data bits).
	OpCorrupt
	// OpDuplicate replays the next valid phit on a link into the
	// following cycle, overwriting whatever the writer drove.
	OpDuplicate
	// OpPhase steps a clock's phase by Param picoseconds — drift or a
	// jitter excursion beyond the mesochronous bound.
	OpPhase
	// OpPeriod changes a clock's period by Param picoseconds —
	// plesiochronous drift beyond the rated ppm.
	OpPeriod
	// OpDelay stretches a bi-synchronous FIFO's forwarding delay by Param
	// picoseconds — a slow or metastable synchroniser.
	OpDelay
	// OpStall freezes an asynchronous wrapper's PIC for Param cycles.
	OpStall
)

var opNames = map[Op]string{
	OpDrop:      "drop",
	OpCorrupt:   "corrupt",
	OpDuplicate: "dup",
	OpPhase:     "phase",
	OpPeriod:    "period",
	OpDelay:     "delay",
	OpStall:     "stall",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// CorruptMask is XORed into the data word of corrupted phits. Bit 0 is the
// low bit of a header's first output-port hop, so corrupting a header
// deterministically mis-routes the packet.
const CorruptMask phit.Word = 1

// An Event is one scheduled fault.
type Event struct {
	At     clock.Time // injection instant, exact picoseconds
	Op     Op
	Target string // resolved against the campaign's Targets by substring
	Param  int64  // count (drop/corrupt), ps (phase/period/delay), cycles (stall)
}

func (e Event) String() string {
	return fmt.Sprintf("%s@%dps:%s:%d", e.Op, e.At, e.Target, e.Param)
}

// A Plan is a deterministic schedule of fault events, optionally combined
// with sustained per-link fault rates. Two campaigns armed with equal
// plans on equal networks produce identical simulations.
type Plan struct {
	Seed   int64
	Events []Event
	// Rates applies sustained random faults for the whole run, on top of
	// (or instead of) the scheduled events.
	Rates []RateRule
}

// A RateRule subjects every link whose name contains Target (every link
// when Target is empty) to sustained random transient faults for the whole
// run. Each matching link draws from its own RNG, seeded from the plan
// seed and the link name, so outcomes are independent of worker count and
// of how many other links are faulted.
type RateRule struct {
	Target string
	// BitFlip is the per-phit probability that one random bit of a
	// payload or padding phit's data word is inverted in transit. Header
	// phits are spared: a flipped route would turn a data fault into a
	// misrouting fault, which the scheduled corrupt op covers separately.
	BitFlip float64
	// Drop is the per-flit probability that a whole 3-phit flit is
	// replaced by idle cycles in transit.
	Drop float64
}

// Validate rejects rates outside [0,1].
func (r RateRule) Validate() error {
	if r.BitFlip < 0 || r.BitFlip > 1 {
		return fmt.Errorf("fault: bit-flip rate %g outside [0,1]", r.BitFlip)
	}
	if r.Drop < 0 || r.Drop > 1 {
		return fmt.Errorf("fault: drop rate %g outside [0,1]", r.Drop)
	}
	return nil
}

// ParseRateSpec parses a sustained-rate fault specification:
// semicolon-separated rules of the form
//
//	kind:RATE[:target]
//
// where kind is bitflip|drop, RATE is a probability in [0,1] (per
// payload/padding phit for bitflip, per flit for drop) and target is an
// optional substring selecting the faulted links (all links when omitted).
// Listing the same kind twice for one target is an error — the rates would
// silently sum.
func ParseRateSpec(spec string) ([]RateRule, error) {
	var out []RateRule
	seen := make(map[string]bool)
	byTarget := make(map[string]int)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rate rule %q: want kind:RATE[:target]", part)
		}
		kind := fields[0]
		if kind != "bitflip" && kind != "drop" {
			return nil, fmt.Errorf("fault: unknown rate kind %q in %q", kind, part)
		}
		rate, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad rate %q in %q", fields[1], part)
		}
		target := ""
		if len(fields) == 3 {
			target = fields[2]
		}
		key := kind + "\x00" + target
		if seen[key] {
			return nil, fmt.Errorf("fault: duplicate %s rate for link target %q", kind, target)
		}
		seen[key] = true
		i, ok := byTarget[target]
		if !ok {
			out = append(out, RateRule{Target: target})
			i = len(out) - 1
			byTarget[target] = i
		}
		if kind == "bitflip" {
			out[i].BitFlip = rate
		} else {
			out[i].Drop = rate
		}
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("%v (in %q)", err, part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty rate spec")
	}
	return out, nil
}

// fnv64 hashes a link name (FNV-1a) into a per-link RNG seed component.
func fnv64(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// ParseSpec parses a campaign specification string: semicolon-separated
// events of the form
//
//	op@TIMEns:target[:param]
//
// where op is drop|corrupt|dup|phase|period|delay|stall, TIME is the
// injection time in nanoseconds, target is a substring selecting one
// injection point (link, clock, FIFO or wrapper name), and param is the op
// count, picosecond delta or cycle count (defaults: 1 for drop/corrupt,
// half a nominal period worth of ps for phase, 100 for period/delay in ps,
// 30 for stall cycles).
//
// The special form "random:N" expands, at Arm time, into N events drawn
// deterministically from the campaign seed.
func ParseSpec(spec string, seed int64) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if n, ok := strings.CutPrefix(part, "random:"); ok {
			count, err := strconv.Atoi(n)
			if err != nil || count <= 0 {
				return nil, fmt.Errorf("fault: bad random event count %q", n)
			}
			p.Events = append(p.Events, Event{Op: opRandom, Param: int64(count)})
			continue
		}
		opStr, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault: event %q: want op@TIMEns:target[:param]", part)
		}
		var op Op
		found := false
		for o, name := range opNames {
			if name == opStr {
				op, found = o, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fault: unknown op %q in %q", opStr, part)
		}
		fields := strings.Split(rest, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("fault: event %q: want op@TIMEns:target[:param]", part)
		}
		ns, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || ns < 0 {
			return nil, fmt.Errorf("fault: bad time %q in %q", fields[0], part)
		}
		ev := Event{At: clock.Time(ns * float64(clock.Nanosecond)), Op: op, Target: fields[1], Param: defaultParam(op)}
		if len(fields) == 3 {
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad param %q in %q", fields[2], part)
			}
			ev.Param = v
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("fault: empty campaign spec")
	}
	return p, nil
}

// opRandom is the unexpanded "random:N" placeholder; Arm expands it.
const opRandom Op = -1

func defaultParam(op Op) int64 {
	switch op {
	case OpDrop, OpCorrupt, OpDuplicate:
		return 1
	case OpPhase:
		return 1000 // 1 ns: past half a period for any clock ≥ 500 MHz
	case OpPeriod:
		return 100
	case OpDelay:
		return 2000
	case OpStall:
		return 30
	default:
		return 1
	}
}

// Targets enumerates a built network's injection points by name. Any slice
// may be empty; Arm reports an error only when an event matches nothing.
type Targets struct {
	Links  []LinkTarget
	Clocks []*clock.Clock
	Delays []DelayTarget
	Stalls []StallTarget
}

// A LinkTarget is a phit wire faults can drop, corrupt or duplicate on.
type LinkTarget struct {
	Name string
	Wire *sim.Wire[phit.Phit]
}

// A DelayTarget is a stretchable bi-synchronous FIFO forwarding delay.
type DelayTarget struct {
	Name    string
	Stretch func(delta clock.Duration)
}

// A StallTarget is a stallable asynchronous-wrapper PIC.
type StallTarget struct {
	Name  string
	Stall func(cycles int)
}

// An InjectedFault records one armed event after target resolution — the
// campaign summary's ground truth.
type InjectedFault struct {
	Event  Event
	Target string // fully resolved name
}

// A Campaign owns a plan, arms it on an engine and summarises the outcome.
type Campaign struct {
	Plan      *Plan
	Collector *Collector // nil in strict mode (faults still injected)

	injected []InjectedFault
	hooks    map[*sim.Wire[phit.Phit]]*LinkHook
	rated    []*LinkHook // hooks carrying rate rules, in link-target order
}

// NewCampaign pairs a plan with a collector. A nil collector arms the
// faults but leaves every component in strict mode, so the first violation
// still fails fast.
func NewCampaign(p *Plan, c *Collector) *Campaign {
	return &Campaign{Plan: p, Collector: c, hooks: make(map[*sim.Wire[phit.Phit]]*LinkHook)}
}

// Injected returns the armed faults in schedule order.
func (c *Campaign) Injected() []InjectedFault {
	return append([]InjectedFault(nil), c.injected...)
}

// Arm resolves every event against the targets and schedules its
// application on the engine at the event's exact instant. Call once,
// before running the simulation.
func (c *Campaign) Arm(eng *sim.Engine, t Targets) error {
	events, err := c.expand(t)
	if err != nil {
		return err
	}
	for _, ev := range events {
		ev := ev
		switch ev.Op {
		case OpDrop, OpCorrupt, OpDuplicate:
			lt, err := resolve(ev.Target, t.Links, func(l LinkTarget) string { return l.Name })
			if err != nil {
				return fmt.Errorf("fault: %s: %w", ev, err)
			}
			h := c.hooks[lt.Wire]
			if h == nil {
				h = NewLinkHook(lt.Name)
				h.Attach(lt.Wire)
				c.hooks[lt.Wire] = h
			}
			eng.At(ev.At, func() { h.arm(ev.Op, int(ev.Param)) })
			c.injected = append(c.injected, InjectedFault{Event: ev, Target: lt.Name})
		case OpPhase, OpPeriod:
			ck, err := resolve(ev.Target, t.Clocks, func(c *clock.Clock) string { return c.Name })
			if err != nil {
				return fmt.Errorf("fault: %s: %w", ev, err)
			}
			op, delta := ev.Op, clock.Duration(ev.Param)
			eng.At(ev.At, func() {
				if op == OpPhase {
					ck.Phase += delta
				} else if p := ck.Period + delta; p > 0 {
					ck.Period = p
				}
				eng.InvalidateSchedule()
			})
			c.injected = append(c.injected, InjectedFault{Event: ev, Target: ck.Name})
		case OpDelay:
			dt, err := resolve(ev.Target, t.Delays, func(d DelayTarget) string { return d.Name })
			if err != nil {
				return fmt.Errorf("fault: %s: %w", ev, err)
			}
			delta := clock.Duration(ev.Param)
			eng.At(ev.At, func() { dt.Stretch(delta) })
			c.injected = append(c.injected, InjectedFault{Event: ev, Target: dt.Name})
		case OpStall:
			st, err := resolve(ev.Target, t.Stalls, func(s StallTarget) string { return s.Name })
			if err != nil {
				return fmt.Errorf("fault: %s: %w", ev, err)
			}
			cycles := int(ev.Param)
			eng.At(ev.At, func() { st.Stall(cycles) })
			c.injected = append(c.injected, InjectedFault{Event: ev, Target: st.Name})
		default:
			return fmt.Errorf("fault: %s: unknown op", ev)
		}
	}
	sort.SliceStable(c.injected, func(i, j int) bool { return c.injected[i].Event.At < c.injected[j].Event.At })
	return c.armRates(t)
}

// armRates installs the plan's sustained-rate rules on every matching link.
// Each faulted link gets its own RNG, seeded from the plan seed and the
// link name, so a link's fault stream is a pure function of the plan — not
// of worker count, arming order or the fate of other links.
func (c *Campaign) armRates(t Targets) error {
	for _, r := range c.Plan.Rates {
		if err := r.Validate(); err != nil {
			return err
		}
		matched := 0
		for _, lt := range t.Links {
			if r.Target != "" && !strings.Contains(lt.Name, r.Target) {
				continue
			}
			matched++
			h := c.hooks[lt.Wire]
			if h == nil {
				h = NewLinkHook(lt.Name)
				h.Attach(lt.Wire)
				c.hooks[lt.Wire] = h
			}
			if h.rng == nil {
				h.rng = rand.New(rand.NewSource(c.Plan.Seed ^ fnv64(lt.Name)))
				c.rated = append(c.rated, h)
			}
			h.bitRate += r.BitFlip
			h.dropRate += r.Drop
		}
		if matched == 0 {
			return fmt.Errorf("fault: rate rule matches no link (target %q)", r.Target)
		}
	}
	return nil
}

// expand replaces random:N placeholders with concrete events drawn
// deterministically from the plan seed over the available targets and the
// window spanned by the concrete events (default 1–50 µs).
func (c *Campaign) expand(t Targets) ([]Event, error) {
	var out []Event
	var lo, hi clock.Time = 1 * clock.Microsecond, 50 * clock.Microsecond
	for _, ev := range c.Plan.Events {
		if ev.Op != opRandom && ev.At > hi {
			hi = ev.At
		}
	}
	rng := rand.New(rand.NewSource(c.Plan.Seed))
	for _, ev := range c.Plan.Events {
		if ev.Op != opRandom {
			out = append(out, ev)
			continue
		}
		ops := randomOps(t)
		if len(ops) == 0 {
			return nil, fmt.Errorf("fault: random events requested but the network exposes no injection points")
		}
		for i := int64(0); i < ev.Param; i++ {
			op := ops[rng.Intn(len(ops))]
			at := lo + clock.Time(rng.Int63n(int64(hi-lo)))
			rev := Event{At: at, Op: op, Param: defaultParam(op)}
			switch op {
			case OpDrop, OpCorrupt, OpDuplicate:
				rev.Target = t.Links[rng.Intn(len(t.Links))].Name
				rev.Param = 1 + rng.Int63n(3)
			case OpPhase, OpPeriod:
				rev.Target = t.Clocks[rng.Intn(len(t.Clocks))].Name
				if op == OpPhase {
					rev.Param = 200 + rng.Int63n(1800) // 0.2–2 ns phase step
				} else {
					rev.Param = 50 + rng.Int63n(450) // 50–500 ps period shift
				}
			case OpDelay:
				rev.Target = t.Delays[rng.Intn(len(t.Delays))].Name
				rev.Param = 1000 + rng.Int63n(4000)
			case OpStall:
				rev.Target = t.Stalls[rng.Intn(len(t.Stalls))].Name
				rev.Param = 10 + rng.Int63n(90)
			}
			out = append(out, rev)
		}
	}
	return out, nil
}

// randomOps lists the ops the targets can support.
func randomOps(t Targets) []Op {
	var ops []Op
	if len(t.Links) > 0 {
		ops = append(ops, OpDrop, OpCorrupt, OpDuplicate)
	}
	if len(t.Clocks) > 0 {
		ops = append(ops, OpPhase, OpPeriod)
	}
	if len(t.Delays) > 0 {
		ops = append(ops, OpDelay)
	}
	if len(t.Stalls) > 0 {
		ops = append(ops, OpStall)
	}
	return ops
}

// resolve finds the unique target whose name contains the pattern (exact
// match wins over substring).
func resolve[T any](pattern string, items []T, name func(T) string) (T, error) {
	var zero T
	var found []T
	for _, it := range items {
		if name(it) == pattern {
			return it, nil
		}
		if strings.Contains(name(it), pattern) {
			found = append(found, it)
		}
	}
	switch len(found) {
	case 0:
		return zero, fmt.Errorf("no target matches %q", pattern)
	case 1:
		return found[0], nil
	default:
		names := make([]string, 0, len(found))
		for _, it := range found {
			names = append(names, name(it))
		}
		return zero, fmt.Errorf("pattern %q is ambiguous: %s", pattern, strings.Join(names, ", "))
	}
}

// A LinkHook perturbs phits on one wire in place, via the wire's
// commit-time intercept, so injection itself never shifts timing.
type LinkHook struct {
	name string

	drop    int
	corrupt int
	dup     int

	replay        phit.Phit
	replayPending bool

	// Sustained-rate fault state (rng nil when no rate rule matched).
	rng      *rand.Rand
	bitRate  float64
	dropRate float64
	flitPos  int // word index within the current valid-phit run
	dropRun  int // phits left to erase of a flit being dropped whole

	Dropped      int64
	Corrupted    int64
	Duplicated   int64
	BitsFlipped  int64
	FlitsDropped int64
}

// NewLinkHook returns an idle hook; Attach installs it on a wire.
func NewLinkHook(name string) *LinkHook { return &LinkHook{name: name} }

// Attach installs the hook as the wire's intercept.
func (h *LinkHook) Attach(w *sim.Wire[phit.Phit]) { w.SetIntercept(h.intercept) }

// arm queues count applications of op starting at the next valid phit.
func (h *LinkHook) arm(op Op, count int) {
	switch op {
	case OpDrop:
		h.drop += count
	case OpCorrupt:
		h.corrupt += count
	case OpDuplicate:
		h.dup += count
	}
}

func (h *LinkHook) intercept(v phit.Phit, driven bool) phit.Phit {
	if h.replayPending {
		h.replayPending = false
		h.Duplicated++
		return h.replay
	}
	if !driven || !v.Valid {
		h.flitPos, h.dropRun = 0, 0
		return v
	}
	pos := h.flitPos
	h.flitPos = (h.flitPos + 1) % phit.FlitWords
	if h.rng != nil {
		if pos == 0 {
			h.dropRun = 0
			if h.dropRate > 0 && h.rng.Float64() < h.dropRate {
				h.dropRun = phit.FlitWords
				h.FlitsDropped++
			}
		}
		if h.dropRun > 0 {
			h.dropRun--
			return phit.IdlePhit
		}
		if h.bitRate > 0 && (v.Kind == phit.Payload || v.Kind == phit.Padding) &&
			h.rng.Float64() < h.bitRate {
			v.Data ^= phit.Word(1) << uint(h.rng.Intn(32))
			h.BitsFlipped++
		}
	}
	switch {
	case h.drop > 0:
		h.drop--
		h.Dropped++
		return phit.IdlePhit
	case h.corrupt > 0:
		h.corrupt--
		h.Corrupted++
		v.Data ^= CorruptMask
		return v
	case h.dup > 0:
		h.dup--
		h.replay = v
		h.replayPending = true
	}
	return v
}

// A Summary is the deterministic outcome report of one campaign: with equal
// plans, seeds and networks, two runs render byte-identical summaries.
type Summary struct {
	Faults     []InjectedFault
	Latency    []clock.Duration // detection latency per fault, NoDetection if none
	RateLinks  []RateOutcome    // per-link sustained-rate outcomes, target order
	Total      int64
	ByKind     map[Kind]int64
	Kinds      []Kind
	Violations []Violation // stored subset, detection order
}

// A RateOutcome is the sustained-rate fault tally of one link.
type RateOutcome struct {
	Name         string
	BitsFlipped  int64
	FlitsDropped int64
}

// NoDetection marks a fault with no violation detected at or after it.
const NoDetection clock.Duration = -1

// Summarize computes the campaign summary from its collector (which may be
// nil in strict mode — the summary then lists faults only).
func (c *Campaign) Summarize() *Summary {
	s := &Summary{Faults: c.Injected(), ByKind: map[Kind]int64{}}
	if c.Collector != nil {
		s.Total = c.Collector.Total()
		s.ByKind = c.Collector.CountByKind()
		s.Kinds = c.Collector.Kinds()
		s.Violations = c.Collector.Violations()
	}
	for _, f := range s.Faults {
		lat := NoDetection
		if c.Collector != nil {
			if v, ok := c.Collector.FirstAt(f.Event.At); ok {
				lat = v.Time - f.Event.At
			}
		}
		s.Latency = append(s.Latency, lat)
	}
	for _, h := range c.rated {
		s.RateLinks = append(s.RateLinks, RateOutcome{
			Name: h.name, BitsFlipped: h.BitsFlipped, FlitsDropped: h.FlitsDropped,
		})
	}
	return s
}

// Write renders the summary.
func (s *Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "fault campaign: %d faults injected, %d violations detected\n", len(s.Faults), s.Total)
	if len(s.Faults) > 0 {
		fmt.Fprintf(w, "%10s %8s %-28s %10s %12s\n", "t(ns)", "op", "target", "param", "detectNs")
		for i, f := range s.Faults {
			det := "-"
			if s.Latency[i] != NoDetection {
				det = fmt.Sprintf("%.1f", float64(s.Latency[i])/float64(clock.Nanosecond))
			}
			fmt.Fprintf(w, "%10.1f %8s %-28s %10d %12s\n",
				float64(f.Event.At)/float64(clock.Nanosecond), f.Event.Op, f.Target, f.Event.Param, det)
		}
	}
	if len(s.RateLinks) > 0 {
		var bits, flits int64
		for _, r := range s.RateLinks {
			bits += r.BitsFlipped
			flits += r.FlitsDropped
		}
		fmt.Fprintf(w, "rate faults: %d links, %d bits flipped, %d flits dropped\n",
			len(s.RateLinks), bits, flits)
		for _, r := range s.RateLinks {
			if r.BitsFlipped == 0 && r.FlitsDropped == 0 {
				continue
			}
			fmt.Fprintf(w, "%-34s %8d bitflips %8d drops\n", r.Name, r.BitsFlipped, r.FlitsDropped)
		}
	}
	if len(s.Kinds) > 0 {
		fmt.Fprintf(w, "violations by kind:\n")
		for _, k := range s.Kinds {
			fmt.Fprintf(w, "%16s %8d\n", k, s.ByKind[k])
		}
	}
	const maxList = 20
	for i, v := range s.Violations {
		if i == maxList {
			fmt.Fprintf(w, "  ... %d more\n", len(s.Violations)-maxList)
			break
		}
		fmt.Fprintf(w, "  %s\n", v)
	}
}
