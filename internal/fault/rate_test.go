package fault

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

func TestParseRateSpec(t *testing.T) {
	rules, err := ParseRateSpec("bitflip:0.01; drop:0.002:l3.; bitflip:0.5:l3.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2 (rules for one target merge): %v", len(rules), rules)
	}
	if r := rules[0]; r.Target != "" || r.BitFlip != 0.01 || r.Drop != 0 {
		t.Errorf("rule 0 = %+v, want all-links bitflip 0.01", r)
	}
	if r := rules[1]; r.Target != "l3." || r.BitFlip != 0.5 || r.Drop != 0.002 {
		t.Errorf("rule 1 = %+v, want l3. bitflip 0.5 drop 0.002", r)
	}

	bad := []string{
		"",                         // empty spec
		" ; ",                      // only separators
		"zap:0.1",                  // unknown kind
		"bitflip",                  // missing rate
		"bitflip:x",                // malformed rate
		"bitflip:1.5",              // rate above 1
		"drop:-0.1",                // negative rate
		"drop:0.1:l0;drop:0.2:l0",  // duplicate kind for one link
		"bitflip:0.1;bitflip:0.05", // duplicate kind for all links
	}
	for _, spec := range bad {
		if _, err := ParseRateSpec(spec); err == nil {
			t.Errorf("ParseRateSpec(%q) accepted a malformed spec", spec)
		}
	}
}

func TestRateRuleValidate(t *testing.T) {
	for _, r := range []RateRule{{BitFlip: -0.1}, {BitFlip: 1.01}, {Drop: -1}, {Drop: 2}} {
		if r.Validate() == nil {
			t.Errorf("Validate(%+v) accepted an out-of-range rate", r)
		}
	}
	if err := (RateRule{BitFlip: 1, Drop: 0}).Validate(); err != nil {
		t.Errorf("Validate rejected boundary rates: %v", err)
	}
}

func TestArmRatesNoMatchFails(t *testing.T) {
	targets, _ := dummyTargets()
	c := NewCampaign(&Plan{Seed: 1, Rates: []RateRule{{Target: "nosuchlink", Drop: 0.5}}}, NewCollector())
	if err := c.Arm(sim.New(), targets); err == nil {
		t.Fatalf("rate rule with no matching link armed without error")
	}
}

// kindDriver drives n phits of one kind, one per cycle, then idles.
type kindDriver struct {
	clk  *clock.Clock
	out  *sim.Wire[phit.Phit]
	kind phit.Kind
	n    int
	i    int
}

func (d *kindDriver) Name() string          { return "drv" }
func (d *kindDriver) Clock() *clock.Clock   { return d.clk }
func (d *kindDriver) Sample(now clock.Time) {}
func (d *kindDriver) Update(now clock.Time) {
	v := phit.IdlePhit
	if d.i < d.n {
		v = phit.Phit{Valid: true, Kind: d.kind, Data: phit.Word(0xabc)}
	}
	d.i++
	d.out.Drive(v)
}

// runRated drives n phits of the kind through one rate-faulted wire via
// the production arming path and returns the observed phits plus the hook
// for its counters.
func runRated(t *testing.T, seed int64, rule RateRule, kind phit.Kind, n int) ([]phit.Phit, *LinkHook) {
	t.Helper()
	eng := sim.New()
	clk := clock.New("c", 1000, 0)
	w := sim.NewWire[phit.Phit]("w")
	eng.AddWire(w)
	c := NewCampaign(&Plan{Seed: seed, Rates: []RateRule{rule}}, NewCollector())
	if err := c.Arm(eng, Targets{Links: []LinkTarget{{Name: "w", Wire: w}}}); err != nil {
		t.Fatal(err)
	}
	var out []phit.Phit
	eng.Add(&kindDriver{clk: clk, out: w, kind: kind, n: n})
	eng.Add(&observer{clk: clk, wire: w, sink: &out})
	eng.Run(clock.Time(n+2) * 1000)
	return out, c.hooks[w]
}

func TestRateFaultsDeterministicAndSeedSensitive(t *testing.T) {
	rule := RateRule{BitFlip: 0.2, Drop: 0.1}
	const n = 600 // 200 flits' worth of payload phits
	a, ha := runRated(t, 42, rule, phit.Payload, n)
	b, hb := runRated(t, 42, rule, phit.Payload, n)
	if len(a) != len(b) {
		t.Fatalf("runs of one seed differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs of one seed diverge at phit %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if ha.BitsFlipped != hb.BitsFlipped || ha.FlitsDropped != hb.FlitsDropped {
		t.Fatalf("counters of one seed differ: %d/%d vs %d/%d",
			ha.BitsFlipped, ha.FlitsDropped, hb.BitsFlipped, hb.FlitsDropped)
	}
	if ha.BitsFlipped == 0 || ha.FlitsDropped == 0 {
		t.Fatalf("rates 0.2/0.1 over %d phits produced no faults (%d flips, %d drops)",
			n, ha.BitsFlipped, ha.FlitsDropped)
	}

	_, hc := runRated(t, 43, rule, phit.Payload, n)
	if hc.BitsFlipped == ha.BitsFlipped && hc.FlitsDropped == ha.FlitsDropped {
		t.Fatalf("different seeds produced identical fault tallies %d/%d",
			ha.BitsFlipped, ha.FlitsDropped)
	}
}

func TestRateBitflipSparesHeaders(t *testing.T) {
	// Headers must never be flipped (a flipped route would misroute the
	// whole packet): drive header phits only, at bit-flip rate 1.
	out, hook := runRated(t, 7, RateRule{BitFlip: 1}, phit.Header, 5)
	for i, p := range out {
		if p.Valid && p.Data != 0xabc {
			t.Fatalf("header phit %d flipped to %#x", i, p.Data)
		}
	}
	if hook.BitsFlipped != 0 {
		t.Fatalf("hook flipped %d bits of header phits", hook.BitsFlipped)
	}
}

func TestRateDropErasesWholeFlits(t *testing.T) {
	// At drop rate 1 every flit vanishes: nothing valid survives and the
	// counter counts flits, not phits.
	out, hook := runRated(t, 9, RateRule{Drop: 1}, phit.Payload, 4*phit.FlitWords)
	for i, p := range out {
		if p.Valid {
			t.Fatalf("phit %d survived a full drop rate: %+v", i, p)
		}
	}
	if hook.FlitsDropped != 4 {
		t.Fatalf("FlitsDropped = %d, want 4 (whole flits, not phits)", hook.FlitsDropped)
	}
}

func TestRunSweepZeroPoints(t *testing.T) {
	called := false
	got, err := RunSweep(4, 0, func(i int) (*Summary, error) {
		called = true
		return &Summary{}, nil
	})
	if err != nil {
		t.Fatalf("RunSweep with zero points failed: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("RunSweep with zero points returned %d summaries", len(got))
	}
	if called {
		t.Fatalf("RunSweep with zero points invoked the point function")
	}
}
