package replay

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
)

func TestLCM(t *testing.T) {
	const maxH = clock.Duration(1) << 32
	cases := []struct{ a, b, want clock.Duration }{
		{0, 5, 0}, // zero operand = aperiodic
		{5, 0, 0},
		{4, 6, 12},
		{192, 256, 768}, // slot revolution x CBR pattern
		{1, 1, 1},
		{maxH, 3, 0},            // overflow past the bound
		{maxH / 2, 2, maxH / 2}, // b divides a
		{maxH/2 + 1, 2, 0},      // odd: doubling overflows the bound
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b, maxH); got != c.want {
			t.Errorf("LCM(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPatternCycles(t *testing.T) {
	cases := []struct{ p, add, den, max, want int64 }{
		{1, 1, 8, 1 << 22, 8},       // CBR 1/8 words per cycle
		{1, 3, 8, 1 << 22, 8},       // 3/8: coprime numerator, same period
		{1, 2, 8, 1 << 22, 4},       // 2/8 reduces
		{1, 0, 8, 1 << 22, 1},       // no accumulation: constant
		{6, 1, 7, 1 << 22, 42},      // burst envelope of 6 cycles
		{1, 1, 1 << 30, 1 << 22, 0}, // byte-exact rational: aperiodic
		{0, 1, 8, 1 << 22, 0},
		{1, 1, 0, 1 << 22, 0},
	}
	for _, c := range cases {
		if got := PatternCycles(c.p, c.add, c.den, c.max); got != c.want {
			t.Errorf("PatternCycles(%d, %d, %d, %d) = %d, want %d", c.p, c.add, c.den, c.max, got, c.want)
		}
	}
}

// TestPhitNormalisationRoundTrip: the engagement proof rests on the
// fingerprint being shift-invariant — a phit shifted by exactly one epoch
// must fingerprint identically against the shifted boundary.
func TestPhitNormalisationRoundTrip(t *testing.T) {
	const h = clock.Duration(9000)
	base := map[phit.ConnID]int64{3: 100}
	ctx0 := &Ctx{Now: 20000, SeqBase: func(c phit.ConnID) int64 { return base[c] }}
	ctx1 := &Ctx{Now: 20000 + clock.Time(h), SeqBase: func(c phit.ConnID) int64 { return base[c] + 7 }}
	s := &Shift{Epochs: 1, DT: h, DSeq: func(c phit.ConnID) int64 { return 7 }}

	phits := []phit.Phit{
		{}, // invalid: must encode as one byte and shift to itself
		{Valid: true, Kind: phit.Header, Data: 0x55aa, SB: 1},
		{Valid: true, Kind: phit.Payload, Data: phit.Word(103), EoP: true,
			Meta: phit.Meta{Conn: 3, Seq: 103, Injected: 19500, Sent: 19900}},
		{Valid: true, Kind: phit.Payload, Data: phit.Word(104),
			Meta: phit.Meta{Conn: 3, Seq: 104, Injected: 0, Sent: 19900}}, // zero time stays zero
	}
	for i, p := range phits {
		before := AppendPhit(nil, p, ctx0)
		after := AppendPhit(nil, ShiftPhit(p, s), ctx1)
		if !bytes.Equal(before, after) {
			t.Errorf("phit %d: fingerprint not shift-invariant:\n  %x\n  %x", i, before, after)
		}
		if !p.Valid && len(before) != 1 {
			t.Errorf("invalid phit encodes as %d bytes, want 1", len(before))
		}
	}

	// A genuinely different phit must not collide.
	a := AppendPhit(nil, phits[2], ctx0)
	mut := phits[2]
	mut.Meta.Injected += 500
	b := AppendPhit(nil, mut, ctx0)
	if bytes.Equal(a, b) {
		t.Error("distinct injection instants fingerprint identically")
	}
}

func TestMetaRoundTrip(t *testing.T) {
	const h = clock.Duration(4000)
	ctx0 := &Ctx{Now: 8000, SeqBase: func(phit.ConnID) int64 { return 40 }}
	ctx1 := &Ctx{Now: 8000 + clock.Time(h), SeqBase: func(phit.ConnID) int64 { return 42 }}
	s := &Shift{Epochs: 1, DT: h, DSeq: func(phit.ConnID) int64 { return 2 }}
	m := phit.Meta{Conn: 9, Seq: 41, Injected: 7500, Sent: 0}
	before := AppendMeta(nil, m, ctx0)
	after := AppendMeta(nil, ShiftMeta(m, s), ctx1)
	if !bytes.Equal(before, after) {
		t.Errorf("meta fingerprint not shift-invariant:\n  %x\n  %x", before, after)
	}
	if got := ShiftMeta(m, s).Injected; got != 7500+clock.Time(h) {
		t.Errorf("Injected shifted to %d", got)
	}
	if got := ShiftMeta(m, s).Sent; got != 0 {
		t.Errorf("zero Sent must stay zero, got %d", got)
	}
}

func TestShiftTimePreservesUnset(t *testing.T) {
	if got := ShiftTime(0, 5000); got != 0 {
		t.Errorf("ShiftTime(0) = %d", got)
	}
	if got := ShiftTime(1, 5000); got != 5001 {
		t.Errorf("ShiftTime(1) = %d", got)
	}
	a := AppendTime(nil, 0, &Ctx{Now: 1000})
	b := AppendTime(nil, 1000, &Ctx{Now: 1000}) // equal to the boundary
	if bytes.Equal(a, b) {
		t.Error("unset time is indistinguishable from the boundary instant")
	}
}
