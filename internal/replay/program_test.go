package replay_test

// Program state-machine tests against a synthetic engine: a minimal
// periodic component proves record -> fingerprint-verify -> engage ->
// whole-epoch replay -> deopt -> re-engage without any NoC machinery,
// asserting both observational equivalence (event streams, edge counts,
// architectural state) and that dispatch was actually skipped.

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// beeper emits one traced event every fourth cycle, with a running
// sequence number: the smallest component with a pattern period larger
// than its clock period and seq-carrying state.
type beeper struct {
	name string
	clk  *clock.Clock
	em   *trace.Emitter

	cycle   int64 // architectural: position in the 4-cycle pattern
	seq     int64 // architectural: next sequence number
	updates int64 // dispatch counter, NOT architectural (measures skipping)

	mSeq, dSeq int64
	marked     bool
}

func (b *beeper) Name() string          { return b.name }
func (b *beeper) Clock() *clock.Clock   { return b.clk }
func (b *beeper) Sample(now clock.Time) {}
func (b *beeper) Update(now clock.Time) {
	b.updates++
	if b.cycle%4 == 0 && b.em != nil {
		b.em.Emit(trace.Event{Time: now, Kind: trace.Inject, Conn: 1, Seq: b.seq, Slot: trace.NoSlot})
		b.seq++
	}
	b.cycle++
}

func (b *beeper) ReplayOK() bool                      { return true }
func (b *beeper) ReplayPeriod() clock.Duration        { return 4 * b.clk.Period }
func (b *beeper) ReplayConnSeq() (phit.ConnID, int64) { return 1, b.seq }
func (b *beeper) ReplayMark(now clock.Time) bool {
	first := !b.marked
	b.marked = true
	b.dSeq = b.seq - b.mSeq
	b.mSeq = b.seq
	return !first
}
func (b *beeper) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	buf = replay.AppendI64(buf, b.cycle%4)
	return replay.AppendI64(buf, b.seq-ctx.SeqBase(1))
}
func (b *beeper) ReplayShift(s *replay.Shift) {
	b.cycle += int64(s.DT / b.clk.Period)
	b.seq += s.DSeq(1)
	b.marked = false
}

type eventRec struct{ lines []string }

func (r *eventRec) Event(ev trace.Event) {
	r.lines = append(r.lines, fmt.Sprintf("%d %d %d %d %d %d %s",
		ev.Time, ev.Ref, ev.Seq, ev.Conn, ev.Comp, ev.Slot, ev.Kind))
}

// world is one engine + beeper + recorder, with or without a program.
type world struct {
	eng  *sim.Engine
	b    *beeper
	rec  *eventRec
	prog *replay.Program
}

func newWorld(fast bool) *world {
	w := &world{eng: sim.New(), rec: &eventRec{}}
	clk := clock.New("c", 1000, 0)
	w.b = &beeper{name: "beep", clk: clk}
	w.eng.Add(w.b)
	bus := trace.NewBus()
	bus.Attach(w.rec)
	w.eng.SetTracer(bus)
	w.b.em = bus.Emitter("beep")
	if fast {
		w.prog = replay.New(w.eng)
		w.prog.Install()
	}
	return w
}

func assertSameWorld(t *testing.T, slow, fast *world, stage string) {
	t.Helper()
	if len(slow.rec.lines) != len(fast.rec.lines) {
		t.Fatalf("%s: %d vs %d events", stage, len(slow.rec.lines), len(fast.rec.lines))
	}
	for i := range slow.rec.lines {
		if slow.rec.lines[i] != fast.rec.lines[i] {
			t.Fatalf("%s: event %d diverges:\n  slow: %s\n  fast: %s",
				stage, i, slow.rec.lines[i], fast.rec.lines[i])
		}
	}
	if slow.eng.Edges() != fast.eng.Edges() {
		t.Fatalf("%s: edges %d vs %d", stage, slow.eng.Edges(), fast.eng.Edges())
	}
	fast.eng.Sync()
	if slow.b.cycle != fast.b.cycle || slow.b.seq != fast.b.seq {
		t.Fatalf("%s: state (cycle, seq) = (%d, %d) vs (%d, %d)",
			stage, slow.b.cycle, slow.b.seq, fast.b.cycle, fast.b.seq)
	}
}

func TestProgramEngagesAndReplays(t *testing.T) {
	slow, fast := newWorld(false), newWorld(true)
	slow.eng.Run(200_000)
	fast.eng.Run(200_000)
	assertSameWorld(t, slow, fast, "replay")

	st := fast.prog.ProgStats()
	if st.Engagements == 0 {
		t.Fatal("program never engaged on a trivially periodic world")
	}
	if inert, why := fast.prog.Inert(); inert {
		t.Fatalf("program inert: %s", why)
	}
	if fast.prog.Hyperperiod() != 4000 {
		t.Fatalf("hyperperiod = %d, want 4000", fast.prog.Hyperperiod())
	}
	// The point of the exercise: the fast run must have skipped most of
	// the 200 dispatches the slow run executed.
	if fast.b.updates >= slow.b.updates/2 {
		t.Fatalf("fast path dispatched %d of %d updates; nothing was replayed",
			fast.b.updates, slow.b.updates)
	}
}

// TestProgramDeoptsOnTimerAndReengages: a scheduled callback bounds the
// replay horizon; the program must materialise, let the timer run
// cycle-accurately, then engage again afterwards.
func TestProgramDeoptsOnTimerAndReengages(t *testing.T) {
	slow, fast := newWorld(false), newWorld(true)
	var slowFired, fastFired clock.Time
	slow.eng.At(100_000, func() { slowFired = slow.eng.Now() })
	fast.eng.At(100_000, func() { fastFired = fast.eng.Now() })
	slow.eng.Run(300_000)
	fast.eng.Run(300_000)
	assertSameWorld(t, slow, fast, "timer deopt")
	if slowFired != fastFired || fastFired == 0 {
		t.Fatalf("timer fired at %d vs %d", slowFired, fastFired)
	}
	st := fast.prog.ProgStats()
	if st.Deopts == 0 {
		t.Fatal("timer never deoptimised the program")
	}
	if st.Engagements < 2 {
		t.Fatalf("program engaged %d times; must re-engage after the timer deopt", st.Engagements)
	}
}

// TestProgramInvalidatedByStructuralChange: removing a component while
// engaged must materialise state immediately and keep the run equivalent.
func TestProgramSyncMidEngagement(t *testing.T) {
	slow, fast := newWorld(false), newWorld(true)
	slow.eng.Run(100_000)
	fast.eng.Run(100_000)
	if !fast.prog.Engaged() {
		t.Fatal("program not engaged mid-run")
	}
	// Sync must land the fast-forwarded state without ending the run's
	// equivalence; the engine must be able to continue either way.
	fast.eng.Sync()
	if fast.b.seq != slow.b.seq {
		t.Fatalf("seq after Sync = %d, want %d", fast.b.seq, slow.b.seq)
	}
	slow.eng.Run(150_000)
	fast.eng.Run(150_000)
	assertSameWorld(t, slow, fast, "post-sync")
	if fast.prog.ProgStats().Engagements < 2 {
		t.Fatal("program never re-engaged after Sync")
	}
}

// TestProgramInertOnAperiodicComponent: a component whose ReplayPeriod is
// 0 must keep the program permanently inert, with a reason.
func TestProgramInertOnAperiodicComponent(t *testing.T) {
	w := newWorld(true)
	ap := &beeper{name: "aper", clk: clock.New("c2", 1000, 0)}
	w.eng.Add(&aperiodic{ap})
	w.eng.Run(50_000)
	if inert, why := w.prog.Inert(); !inert || why == "" {
		t.Fatalf("inert = %v (%q); want inert with a reason", inert, why)
	}
	if w.prog.ProgStats().Engagements != 0 {
		t.Fatal("inert program engaged")
	}
}

// aperiodic wraps a beeper but reports no pattern period.
type aperiodic struct{ *beeper }

func (a *aperiodic) ReplayPeriod() clock.Duration { return 0 }
