package replay

import (
	"repro/internal/clock"
	"repro/internal/phit"
)

// A Periodic component can participate in hyperperiod replay. Every
// component registered with the engine must implement it (and report
// ReplayOK) for a Program ever to engage; anything else — best-effort
// routers, asynchronous wrappers, invariant checkers — keeps the program
// permanently on the cycle-accurate path.
type Periodic interface {
	// ReplayOK reports whether the component's current configuration is
	// replay-safe. Components return false while a mode that makes their
	// behaviour data-dependent is active (per-word arrival recording,
	// reliability retransmission).
	ReplayOK() bool

	// ReplayPeriod returns the component's pattern period in picoseconds:
	// the smallest duration (a multiple of its clock period) after which
	// its behaviour, given identical state, repeats. Zero means aperiodic
	// and keeps the program inert.
	ReplayPeriod() clock.Duration

	// ReplayMark is called at each hyperperiod boundary. The component
	// snapshots its monotone counters, computes the per-epoch deltas since
	// the previous mark, and reports whether the elapsed epoch was
	// shift-clean: no high-water-mark ratchet moved, and every recurring
	// absolute-time statistic advanced by exactly the epoch length or not
	// at all. The first mark after construction or a shift returns false.
	ReplayMark(now clock.Time) bool

	// ReplayFingerprint appends a normalised encoding of the component's
	// complete architectural state to buf: absolute times relative to
	// ctx.Now, sequence numbers relative to ctx.SeqBase of their
	// connection. Two equal fingerprints at instants one hyperperiod apart
	// prove the state is periodic.
	ReplayFingerprint(ctx *Ctx, buf []byte) []byte

	// ReplayShift fast-forwards the component's state by s.Epochs whole
	// epochs: absolute times advance by s.DT, sequence numbers by
	// s.DSeq(conn), monotone counters by s.Epochs times the per-epoch
	// delta captured at the last ReplayMark.
	ReplayShift(s *Shift)
}

// A SeqSource exposes a connection's next payload sequence number (its
// traffic generator). The program samples all sources at each boundary to
// build the fingerprint normalisation base and the per-epoch deltas.
type SeqSource interface {
	ReplayConnSeq() (phit.ConnID, int64)
}

// A State is a stateful element that is not a clocked component — a wire
// or FIFO — registered with the program for fingerprinting and shifting.
type State interface {
	// StateOK reports whether the element is replay-safe (no commit-time
	// intercept installed).
	StateOK() bool
	StateFingerprint(ctx *Ctx, buf []byte) []byte
	StateShift(s *Shift)
}

// Ctx is the fingerprint normalisation context: the boundary instant and
// the per-connection payload sequence base.
type Ctx struct {
	Now     clock.Time
	SeqBase func(phit.ConnID) int64
}

// Shift is the state fast-forward context. DT and DSeq are totals over all
// Epochs, not per-epoch values.
type Shift struct {
	Epochs int64
	DT     clock.Duration
	DSeq   func(phit.ConnID) int64
}

// timeUnset marks a zero Time field (never set) in fingerprints, which
// must stay distinguishable from a time equal to the boundary instant.
const timeUnset = int64(-1 << 62)

// AppendI64 appends v to buf in little-endian order.
func AppendI64(buf []byte, v int64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendTime appends t normalised to ctx.Now. The zero Time means "never
// set" on statistics fields and in phit metadata, and is kept distinct.
func AppendTime(buf []byte, t clock.Time, ctx *Ctx) []byte {
	if t == 0 {
		return AppendI64(buf, timeUnset)
	}
	return AppendI64(buf, int64(t-ctx.Now))
}

// ShiftTime advances a time field by dt, preserving the zero "never set"
// value.
func ShiftTime(t clock.Time, dt clock.Duration) clock.Time {
	if t == 0 {
		return 0
	}
	return t + clock.Time(dt)
}

// AppendPhit appends a normalised encoding of p. Invalid phits encode as
// a single byte so that unobservable stale fields never block engagement.
// Payload phits normalise their sequence number — and the Data word, which
// carries the sequence number by construction — against ctx.SeqBase.
func AppendPhit(buf []byte, p phit.Phit, ctx *Ctx) []byte {
	if !p.Valid {
		return append(buf, 0)
	}
	flags := byte(1)
	if p.EoP {
		flags |= 2
	}
	buf = append(buf, flags, byte(p.Kind))
	data, seq := int64(p.Data), p.Meta.Seq
	if p.Kind == phit.Payload {
		base := ctx.SeqBase(p.Meta.Conn)
		data = int64(p.Data - phit.Word(base))
		seq -= base
	}
	buf = AppendI64(buf, data)
	buf = AppendI64(buf, int64(p.SB))
	buf = AppendI64(buf, int64(p.Meta.Conn))
	buf = AppendI64(buf, seq)
	buf = AppendTime(buf, p.Meta.Injected, ctx)
	buf = AppendTime(buf, p.Meta.Sent, ctx)
	return buf
}

// ShiftPhit fast-forwards a phit's metadata: injection/send instants by
// s.DT, payload sequence numbers (and the Data word carrying them) by
// s.DSeq of the phit's connection.
func ShiftPhit(p phit.Phit, s *Shift) phit.Phit {
	if !p.Valid {
		return p
	}
	if p.Kind == phit.Payload {
		d := s.DSeq(p.Meta.Conn)
		p.Meta.Seq += d
		p.Data += phit.Word(d)
	}
	p.Meta.Injected = ShiftTime(p.Meta.Injected, s.DT)
	p.Meta.Sent = ShiftTime(p.Meta.Sent, s.DT)
	return p
}

// AppendMeta appends a normalised phit.Meta (queued NI metadata).
func AppendMeta(buf []byte, m phit.Meta, ctx *Ctx) []byte {
	base := ctx.SeqBase(m.Conn)
	buf = AppendI64(buf, int64(m.Conn))
	buf = AppendI64(buf, m.Seq-base)
	buf = AppendTime(buf, m.Injected, ctx)
	buf = AppendTime(buf, m.Sent, ctx)
	return buf
}

// ShiftMeta fast-forwards queued NI metadata.
func ShiftMeta(m phit.Meta, s *Shift) phit.Meta {
	m.Seq += s.DSeq(m.Conn)
	m.Injected = ShiftTime(m.Injected, s.DT)
	m.Sent = ShiftTime(m.Sent, s.DT)
	return m
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 on overflow past
// maxH (aperiodic for the program's purposes). Zero operands yield 0.
func LCM(a, b clock.Duration, maxH clock.Duration) clock.Duration {
	if a == 0 || b == 0 {
		return 0
	}
	g := clock.Duration(gcd(int64(a), int64(b)))
	q := a / g
	if q > maxH/b {
		return 0
	}
	return q * b
}

// PatternCycles returns the number of clock cycles after which an
// accumulator that gains add units per pattern period of p cycles, carries
// modulo den, returns to its starting value: p·den/gcd(add,den). It
// returns 0 if that exceeds maxCycles (treated as aperiodic).
func PatternCycles(p, add, den, maxCycles int64) int64 {
	if p <= 0 || den <= 0 {
		return 0
	}
	k := int64(1)
	if add > 0 {
		k = den / gcd(add, den)
	}
	if p > maxCycles/k {
		return 0
	}
	return p * k
}
