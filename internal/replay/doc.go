// Package replay is the hyperperiod-compiled fast path of the simulator.
//
// The GS network is fully periodic: once slot tables are fixed, every
// router, link and NI action repeats each slot-table revolution, and every
// traffic source with a rational words-per-cycle rate repeats with its own
// pattern period. The least common multiple of all those component periods
// is the network's hyperperiod H. A Program records one full hyperperiod
// of cycle-accurate execution — the per-instant schedule of component
// edges and every emitted trace event — fingerprints the complete
// architectural state at consecutive hyperperiod boundaries, and, when two
// boundary fingerprints are byte-identical (time- and sequence-number-
// normalised), replays the recorded epoch without touching the clock-group
// heap, the timer heap, or any per-component Sample/Update dispatch.
//
// Replay deoptimises back to the cycle-accurate engine on any
// data-dependent event: a scheduled callback (fault injection,
// reconfiguration script) bounds each replay step, a structural mutation
// (component or wire added/removed, clock invalidated) materialises state
// immediately, and configurations that are not provably periodic —
// best-effort traffic, asynchronous wrappers, reliability retransmission,
// armed fault checkers — never engage at all, because their components do
// not implement Periodic. Deopt is trace-invisible: recorded events are
// re-emitted with exact shifted timestamps during replay, and the residual
// partial epoch is resimulated with the trace bus muted.
//
// Cross-package contract: engagement requires every component to be
// provably periodic — traffic generators qualify exactly when their rate
// reduces to a small rational words-per-cycle pattern, which is what the
// scenario package's replay-admissible rate quantisation guarantees for
// generated workloads. core.Config.FastReplay installs a Program;
// experiments report its engagement counters.
package replay
