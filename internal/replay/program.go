package replay

import (
	"bytes"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
	"repro/internal/trace"
)

const (
	// DefaultMaxHyperperiod bounds the admissible hyperperiod; component
	// period combinations whose LCM exceeds it keep the program inert.
	DefaultMaxHyperperiod = clock.Duration(1) << 32 // ~4.3 ms

	// maxInstants and maxEvents bound the recording arena; a hyperperiod
	// too dense to record within them makes the program inert rather than
	// letting the arena grow without limit.
	maxInstants = 1 << 21
	maxEvents   = 1 << 20
)

// A Program is the compiled fast path installed on an engine (see the
// package comment for the protocol). Create with New, register the
// network's wires with RegisterWire, then Install.
type Program struct {
	eng  *sim.Engine
	bus  *trace.Bus // the engine's tracer at install (or re-anchor) time
	sink *recSink

	comps      []Periodic
	seqSrcs    []SeqSource
	states     []State
	compsStale bool

	maxH clock.Duration
	hp   clock.Duration // the current hyperperiod (0 before first rescan)

	inert    bool
	inertWhy string

	// Boundary state machine. anchorPending selects "waiting for a boundary
	// to re-baseline at"; otherwise the program is recording the epoch
	// (prevMark, nextMark] unless engaged.
	anchorPending bool
	prevValid     bool
	prevMark      clock.Time
	nextMark      clock.Time
	prevFP        []byte
	fpBuf         []byte
	seqPrev       map[phit.ConnID]int64
	seqNow        map[phit.ConnID]int64
	timersAtMark  int64

	rec     recording
	pending []trace.Event
	capture bool

	// Engaged-replay cursor: the next instant to replay is number i of
	// epoch k, at absolute time base + k*hp + rec.dts[i].
	engaged    bool
	base       clock.Time
	k          int64
	i          int
	dseq       map[phit.ConnID]int64 // per-epoch payload sequence advance
	epochEdges int64

	engagements      int64
	deopts           int64
	replayedInstants int64
}

// A recording is one hyperperiod of schedule: per-instant offsets from the
// epoch's opening boundary, edge counts, and the trace events each instant
// emitted (evIdx is the prefix-sum index into events).
type recording struct {
	start  clock.Time
	dts    []clock.Duration
	edges  []int32
	evIdx  []int32
	events []trace.Event
}

func (r *recording) reset(start clock.Time) {
	r.start = start
	r.dts = r.dts[:0]
	r.edges = r.edges[:0]
	r.evIdx = append(r.evIdx[:0], 0)
	r.events = r.events[:0]
}

// recSink captures the events emitted during one cycle-accurately executed
// instant; Observe moves them into the recording arena.
type recSink struct{ p *Program }

func (s *recSink) Event(ev trace.Event) {
	if s.p.capture {
		s.p.pending = append(s.p.pending, ev)
	}
}

// phitWire adapts a registered phit wire to the State interface. Between
// instants a wire can hold no pending drive, so its committed value is its
// complete state.
type phitWire struct{ w *sim.Wire[phit.Phit] }

func (pw phitWire) StateOK() bool { return !pw.w.HasIntercept() }
func (pw phitWire) StateFingerprint(ctx *Ctx, buf []byte) []byte {
	return AppendPhit(buf, pw.w.Read(), ctx)
}
func (pw phitWire) StateShift(s *Shift) {
	pw.w.Adjust(func(v phit.Phit) phit.Phit { return ShiftPhit(v, s) })
}

// New returns an uninstalled program for the engine.
func New(eng *sim.Engine) *Program {
	p := &Program{
		eng:     eng,
		maxH:    DefaultMaxHyperperiod,
		seqPrev: make(map[phit.ConnID]int64),
		seqNow:  make(map[phit.ConnID]int64),
		dseq:    make(map[phit.ConnID]int64),
	}
	p.sink = &recSink{p: p}
	return p
}

// RegisterWire adds a phit wire to the fingerprinted state set. Every wire
// of the network must be registered, or state held only in an unregistered
// wire could alias two genuinely different configurations.
func (p *Program) RegisterWire(w *sim.Wire[phit.Phit]) {
	p.states = append(p.states, phitWire{w: w})
}

// RegisterState adds an arbitrary stateful element to the fingerprinted
// state set.
func (p *Program) RegisterState(st State) { p.states = append(p.states, st) }

// Install attaches the program to its engine as the fast path.
func (p *Program) Install() {
	p.bus = p.eng.Tracer()
	if p.bus != nil {
		p.bus.Attach(p.sink)
	}
	p.compsStale = true
	p.anchorPending = true
	p.eng.SetFastPath(p)
}

// Engaged reports whether the program is currently replaying.
func (p *Program) Engaged() bool { return p.engaged }

// Inert reports whether the program has permanently fallen back to
// cycle-accurate execution, and why.
func (p *Program) Inert() (bool, string) { return p.inert, p.inertWhy }

// Hyperperiod returns the compiled hyperperiod (0 before the first
// successful component scan).
func (p *Program) Hyperperiod() clock.Duration { return p.hp }

// Stats summarises the program's activity.
type Stats struct {
	Engagements      int64
	Deopts           int64
	ReplayedInstants int64
}

// ProgStats returns engagement/deopt/replay counters.
func (p *Program) ProgStats() Stats {
	return Stats{Engagements: p.engagements, Deopts: p.deopts, ReplayedInstants: p.replayedInstants}
}

func (p *Program) goInert(why string) {
	p.inert = true
	p.inertWhy = why
	p.capture = false
	p.engaged = false
	p.prevValid = false
	p.pending = nil
	p.rec = recording{}
}

// rescan rebuilds the component view and the hyperperiod after a
// structural change. It reports false (and makes the program inert) when
// the configuration is not replayable.
func (p *Program) rescan() bool {
	p.comps = p.comps[:0]
	p.seqSrcs = p.seqSrcs[:0]
	var hp clock.Duration
	for _, c := range p.eng.AddOrder() {
		pc, ok := c.(Periodic)
		if !ok {
			p.goInert("component " + c.Name() + " is not replay-periodic")
			return false
		}
		per := pc.ReplayPeriod()
		if per == 0 {
			p.goInert("component " + c.Name() + " is aperiodic")
			return false
		}
		if hp == 0 {
			hp = per
		} else if hp = LCM(hp, per, p.maxH); hp == 0 {
			p.goInert("hyperperiod exceeds the admissible bound")
			return false
		}
		p.comps = append(p.comps, pc)
		if ss, ok := c.(SeqSource); ok {
			p.seqSrcs = append(p.seqSrcs, ss)
		}
	}
	if len(p.comps) == 0 {
		p.goInert("no components registered")
		return false
	}
	p.hp = hp
	p.compsStale = false
	return true
}

func (p *Program) collectSeqs() {
	for c := range p.seqNow {
		delete(p.seqNow, c)
	}
	for _, ss := range p.seqSrcs {
		conn, s := ss.ReplayConnSeq()
		p.seqNow[conn] = s
	}
}

func (p *Program) fingerprint(now clock.Time, buf []byte) []byte {
	ctx := &Ctx{Now: now, SeqBase: func(c phit.ConnID) int64 { return p.seqNow[c] }}
	for _, c := range p.comps {
		buf = c.ReplayFingerprint(ctx, buf)
	}
	for _, st := range p.states {
		buf = st.StateFingerprint(ctx, buf)
	}
	return buf
}

// anchorAt re-baselines every boundary snapshot at the executed instant
// now and starts recording the epoch (now, now+hp].
func (p *Program) anchorAt(now clock.Time) {
	for _, c := range p.comps {
		c.ReplayMark(now)
	}
	p.collectSeqs()
	p.prevFP = p.fingerprint(now, p.prevFP[:0])
	p.seqPrev, p.seqNow = p.seqNow, p.seqPrev
	p.prevValid = true
	p.prevMark = now
	p.nextMark = now + p.hp
	p.timersAtMark = p.eng.TimersRun()
	p.rec.reset(now)
	p.pending = p.pending[:0]
	p.capture = true
	p.anchorPending = false
}

// markAt closes the recorded epoch at the boundary instant now: engage if
// the epoch proved periodic and undisturbed, else roll the boundary and
// record the next epoch.
func (p *Program) markAt(now clock.Time) {
	clean := true
	for _, c := range p.comps {
		if !c.ReplayMark(now) {
			clean = false
		}
	}
	eligible := true
	for _, c := range p.comps {
		if !c.ReplayOK() {
			eligible = false
			break
		}
	}
	if eligible {
		for _, st := range p.states {
			if !st.StateOK() {
				eligible = false
				break
			}
		}
	}
	timerClean := p.eng.TimersRun() == p.timersAtMark
	p.collectSeqs()
	p.fpBuf = p.fingerprint(now, p.fpBuf[:0])
	if clean && eligible && timerClean && p.prevValid &&
		now-p.prevMark == p.hp && bytes.Equal(p.fpBuf, p.prevFP) {
		p.engage(now)
		return
	}
	p.prevFP, p.fpBuf = p.fpBuf, p.prevFP
	p.seqPrev, p.seqNow = p.seqNow, p.seqPrev
	p.prevValid = true
	p.prevMark = now
	p.nextMark = now + p.hp
	p.timersAtMark = p.eng.TimersRun()
	p.rec.reset(now)
}

func (p *Program) engage(now clock.Time) {
	for c := range p.dseq {
		delete(p.dseq, c)
	}
	for c, s := range p.seqNow {
		p.dseq[c] = s - p.seqPrev[c]
	}
	p.epochEdges = 0
	for _, e := range p.rec.edges {
		p.epochEdges += int64(e)
	}
	p.base = now
	p.k = 0
	p.i = 0
	p.engaged = true
	p.capture = false
	p.engagements++
}

// Observe implements sim.FastPath.
func (p *Program) Observe(now clock.Time, edges int) {
	if p.inert {
		return
	}
	if b := p.eng.Tracer(); b != p.bus {
		// The tracer was installed or swapped mid-run: recorded events
		// belong to the old bus, so re-anchor on the new one.
		p.bus = b
		if b != nil {
			b.Attach(p.sink)
		}
		p.capture = false
		p.pending = p.pending[:0]
		p.anchorPending = true
		return
	}
	if p.anchorPending {
		if p.compsStale && !p.rescan() {
			return
		}
		p.anchorAt(now)
		return
	}
	if now > p.nextMark {
		// The boundary instant was not an executed instant (the anchor was
		// a timer-only instant off every clock's grid); re-anchor here.
		p.pending = p.pending[:0]
		p.anchorAt(now)
		return
	}
	if len(p.rec.dts) >= maxInstants || len(p.rec.events)+len(p.pending) > maxEvents {
		p.goInert("hyperperiod recording exceeds the arena capacity")
		return
	}
	p.rec.dts = append(p.rec.dts, now-p.rec.start)
	p.rec.edges = append(p.rec.edges, int32(edges))
	p.rec.events = append(p.rec.events, p.pending...)
	p.rec.evIdx = append(p.rec.evIdx, int32(len(p.rec.events)))
	p.pending = p.pending[:0]
	if now == p.nextMark {
		p.markAt(now)
	}
}

// emitInstant re-emits the recorded events of instant i shifted forward by
// the given number of whole epochs.
func (p *Program) emitInstant(i int, epochs int64) {
	if p.bus == nil {
		return
	}
	evs := p.rec.events[p.rec.evIdx[i]:p.rec.evIdx[i+1]]
	dt := clock.Time(epochs) * p.hp
	for _, ev := range evs {
		ev.Time += dt
		if ev.Ref != 0 {
			ev.Ref += dt
		}
		if ev.Seq != 0 {
			// Only payload-bearing kinds carry a per-connection sequence
			// number; their zero is reserved for the run's very first word,
			// emitted long before any engagement, and for header-stamped
			// events, which are sequence-invariant.
			switch ev.Kind {
			case trace.Inject, trace.Send, trace.Eject, trace.RouterForward, trace.LinkForward:
				ev.Seq += epochs * p.dseq[ev.Conn]
			}
		}
		p.bus.Emit(ev)
	}
}

// Step implements sim.FastPath.
func (p *Program) Step(until clock.Time) sim.FastResult {
	if !p.engaged {
		return sim.FastResult{}
	}
	if p.eng.Tracer() != p.bus {
		// Tracer swapped while engaged: materialise; Observe re-anchors.
		p.materialize()
		return sim.FastResult{Now: p.eng.Now()}
	}
	horizon := until
	timerBound := false
	if tat, ok := p.eng.NextTimer(); ok && tat-1 < horizon {
		horizon = tat - 1
		timerBound = true
	}
	n := len(p.rec.dts)
	if n == 0 {
		p.materialize()
		return sim.FastResult{Now: p.eng.Now()}
	}
	var edges int64
	instants := 0
	// Whole-epoch jumps first: when positioned at an epoch boundary with a
	// full epoch inside the horizon, consume it in one stride.
	for p.i == 0 && p.base+clock.Time(p.k+1)*p.hp <= horizon {
		if p.bus != nil {
			for i := 0; i < n; i++ {
				p.emitInstant(i, p.k+1)
			}
		}
		edges += p.epochEdges
		instants += n
		p.k++
	}
	for {
		t := p.base + clock.Time(p.k)*p.hp + p.rec.dts[p.i]
		if t > horizon {
			break
		}
		p.emitInstant(p.i, p.k+1)
		edges += int64(p.rec.edges[p.i])
		instants++
		p.i++
		if p.i == n {
			p.i = 0
			p.k++
		}
	}
	p.replayedInstants += int64(instants)
	if !timerBound {
		return sim.FastResult{Now: until, Edges: edges, Instants: instants, Done: true}
	}
	// A scheduled callback bounds the window: materialise real state and
	// hand the instant back to the cycle-accurate loop.
	p.materialize()
	return sim.FastResult{Now: p.eng.Now(), Edges: edges, Instants: instants, Done: false}
}

// materialize turns the replay cursor back into real component state: one
// bulk shift over the whole epochs, then a trace-muted resimulation of the
// residual partial epoch.
func (p *Program) materialize() {
	m := p.k
	if m > 0 {
		sh := &Shift{Epochs: m, DT: clock.Duration(m) * p.hp,
			DSeq: func(c phit.ConnID) int64 { return m * p.dseq[c] }}
		for _, c := range p.comps {
			c.ReplayShift(sh)
		}
		for _, st := range p.states {
			st.StateShift(sh)
		}
	}
	boundary := p.base + clock.Time(m)*p.hp
	i := p.i
	p.engaged = false
	p.capture = false
	p.anchorPending = true
	p.deopts++
	p.eng.ResumeAt(boundary)
	if i > 0 {
		// The already-replayed instants of the partial epoch had their
		// events emitted from the recording; resimulate them silently.
		if p.bus != nil {
			p.bus.SetSilent(true)
		}
		p.eng.Resimulate(boundary + p.rec.dts[i-1])
		if p.bus != nil {
			p.bus.SetSilent(false)
		}
	}
}

// Invalidated implements sim.FastPath.
func (p *Program) Invalidated() {
	if p.inert {
		return
	}
	p.compsStale = true
	if p.engaged {
		p.materialize()
		return
	}
	p.capture = false
	p.pending = p.pending[:0]
	p.anchorPending = true
}

// Sync implements sim.FastPath.
func (p *Program) Sync() {
	if !p.engaged {
		return
	}
	tnow := p.eng.Now()
	p.materialize()
	if p.eng.Now() < tnow {
		// No instants exist between the materialised position and tnow (the
		// replay cursor had consumed up to tnow), so restoring the clock is
		// observation-free.
		p.eng.ResumeAt(tnow)
	}
}
