package traffic

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/replay"
)

// A Port is the IP-side injection interface of a network interface; both
// the aelite NI and the best-effort baseline NI implement it.
type Port interface {
	Offer(now clock.Time, conn phit.ConnID, meta phit.Meta) bool
}

// A Generator produces payload words for one connection at a modelled
// rate. It implements sim.Component and runs in the IP's clock domain
// (which, thanks to the NI's bi-synchronous FIFO, need not be the NI's).
type Generator struct {
	name string
	clk  *clock.Clock
	ni   Port
	conn phit.ConnID

	// The offered rate in payload words per generator clock cycle is the
	// exact rational rateNum/rateDen (reduced). The accumulator accNum is
	// scaled by rateDen, so rate arithmetic is integer and the emission
	// pattern is exactly periodic — the property hyperperiod replay
	// proves and exploits. The historical float64 accumulator drifted by
	// ulps, which was invisible to throughput metrics but made the
	// pattern period ill-defined.
	rateNum, rateDen int64
	accNum           int64

	// Burst parameters: the generator alternates onCycles of generation
	// at burstNum/rateDen words per cycle with offCycles of silence,
	// keeping the long-run average at rateNum/rateDen. onCycles == 0
	// selects pure CBR.
	onCycles, offCycles int64
	burstNum            int64

	// start delays the first word, staggering generators.
	start clock.Time

	disabled bool
	phase    int64
	offered  int64 // words accepted into the NI FIFO
	rejected int64 // blocked-write retries (full FIFO)
	seq      int64

	// Per-epoch counter deltas captured at hyperperiod boundaries.
	rm genMark
}

type genMark struct {
	valid                             bool
	offered, rejected, seq, phase     int64
	dOffered, dRejected, dSeq, dPhase int64
}

// NewCBR returns a constant-bit-rate generator offering rateMBps megabytes
// per second of payload for the connection, given the word width in bytes.
func NewCBR(name string, clk *clock.Clock, n Port, conn phit.ConnID,
	rateMBps float64, wordBytes int, start clock.Time) *Generator {
	if rateMBps <= 0 {
		panic(fmt.Sprintf("traffic %s: non-positive rate", name))
	}
	num, den := rationalRate(rateMBps, wordBytes, clk)
	return &Generator{name: name, clk: clk, ni: n, conn: conn, rateNum: num, rateDen: den, start: start}
}

// NewBursty returns an on/off generator with the given long-run average
// rate: bursts of onCycles at burstFactor times the average rate separated
// by idle gaps sized to preserve the average.
func NewBursty(name string, clk *clock.Clock, n Port, conn phit.ConnID,
	rateMBps float64, wordBytes int, onCycles int64, burstFactor float64, start clock.Time) *Generator {
	if burstFactor <= 1 || onCycles <= 0 {
		panic(fmt.Sprintf("traffic %s: burst factor must exceed 1 with positive on-time", name))
	}
	g := NewCBR(name, clk, n, conn, rateMBps, wordBytes, start)
	g.onCycles = onCycles
	g.offCycles = int64(float64(onCycles) * (burstFactor - 1))
	g.burstNum = int64(math.Round(float64(g.rateNum) * burstFactor))
	if g.burstNum > g.rateDen {
		g.burstNum = g.rateDen // a generator cannot exceed one word per cycle
	}
	return g
}

// rationalRate converts a megabytes-per-second rate to an exact reduced
// words-per-cycle rational. The rate is quantised to one byte per second,
// far below every tolerance in the experiments.
func rationalRate(rateMBps float64, wordBytes int, clk *clock.Clock) (num, den int64) {
	if wordBytes <= 0 {
		panic("traffic: non-positive word width")
	}
	bytesPerSec := int64(math.Round(rateMBps * 1e6))
	if bytesPerSec <= 0 {
		bytesPerSec = 1
	}
	num = bytesPerSec * int64(clk.Period)
	den = int64(wordBytes) * 1e12
	g := gcd(num, den)
	return num / g, den / g
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Name implements sim.Component.
func (g *Generator) Name() string { return g.name }

// Clock implements sim.Component.
func (g *Generator) Clock() *clock.Clock { return g.clk }

// Sample implements sim.Component.
func (g *Generator) Sample(now clock.Time) {}

// Update implements sim.Component.
func (g *Generator) Update(now clock.Time) {
	if g.disabled || now < g.start {
		return
	}
	num := g.rateNum
	if g.onCycles > 0 {
		period := g.onCycles + g.offCycles
		if g.phase%period >= g.onCycles {
			num = 0
		} else {
			num = g.burstNum
		}
		g.phase++
	}
	g.accNum += num
	for g.accNum >= g.rateDen {
		meta := phit.Meta{Conn: g.conn, Seq: g.seq, Injected: now}
		if !g.ni.Offer(now, g.conn, meta) {
			// Blocking write: the word stays pending; retry next
			// cycle. Cap the backlog accumulator at one FIFO's
			// worth so an over-subscribed generator models a
			// stalled IP rather than an unbounded debt.
			g.rejected++
			if g.accNum > 16*g.rateDen {
				g.accNum = 16 * g.rateDen
			}
			return
		}
		g.seq++
		g.offered++
		g.accNum -= g.rateDen
	}
}

// NewTransactional returns a generator that emits whole transactions of
// txWords words at line rate (one word per cycle), spaced so the long-run
// average equals rateMBps. Real SoC traffic is transactional — DMA bursts,
// cache lines, stream buffers — and this shape is what separates a
// guaranteed-service network from a best-effort one: transactions from
// different IPs collide in BE routers, while TDM injection is oblivious
// to them.
func NewTransactional(name string, clk *clock.Clock, n Port, conn phit.ConnID,
	rateMBps float64, wordBytes int, txWords int64, start clock.Time) *Generator {
	if txWords <= 0 {
		panic(fmt.Sprintf("traffic %s: transaction of %d words", name, txWords))
	}
	g := NewCBR(name, clk, n, conn, rateMBps, wordBytes, start)
	if g.rateNum >= g.rateDen {
		return g // already at line rate: transactions are back to back
	}
	g.onCycles = txWords
	g.offCycles = txWords*g.rateDen/g.rateNum - txWords
	g.burstNum = g.rateDen
	return g
}

// SetEnabled turns the generator on or off; a disabled generator models
// an application that is not running (the composability experiments
// compare runs with other applications enabled vs disabled).
func (g *Generator) SetEnabled(on bool) { g.disabled = !on }

// SetRateMBps changes the offered rate, e.g. to model a misbehaving IP
// that oversubscribes its allocation (which, in aelite, only slows that IP
// down), or an opportunistic best-effort IP exceeding its nominal rate.
// For transactional/bursty generators the inter-burst spacing is rescaled.
func (g *Generator) SetRateMBps(rateMBps float64, wordBytes int) {
	oldDen := g.rateDen
	g.rateNum, g.rateDen = rationalRate(rateMBps, wordBytes, g.clk)
	if oldDen != g.rateDen && g.accNum != 0 {
		g.accNum = int64(float64(g.accNum) / float64(oldDen) * float64(g.rateDen))
	}
	if g.onCycles > 0 {
		if g.rateNum >= g.rateDen {
			g.offCycles = 0
			g.burstNum = g.rateDen
			return
		}
		off := g.onCycles*g.rateDen/g.rateNum - g.onCycles
		if off < 0 {
			off = 0
		}
		g.offCycles = off
		g.burstNum = g.rateDen
	}
}

// Offered returns the number of words accepted into the NI so far.
func (g *Generator) Offered() int64 { return g.offered }

// Rejected returns the number of blocked-write retries.
func (g *Generator) Rejected() int64 { return g.rejected }

// maxPatternCycles bounds a generator's admissible pattern period; finer
// rationals are treated as aperiodic, keeping hyperperiods bounded.
const maxPatternCycles = 1 << 22

// ReplayOK implements replay.Periodic.
func (g *Generator) ReplayOK() bool { return true }

// ReplayPeriod implements replay.Periodic: the exact cycle count after
// which the accumulator and burst phase return to their values.
func (g *Generator) ReplayPeriod() clock.Duration {
	if g.disabled {
		return g.clk.Period // constant state
	}
	p, add := int64(1), g.rateNum
	if g.onCycles > 0 {
		p = g.onCycles + g.offCycles
		add = g.onCycles * g.burstNum
	}
	cycles := replay.PatternCycles(p, add%g.rateDen, g.rateDen, maxPatternCycles)
	if cycles == 0 {
		return 0
	}
	return clock.Duration(cycles) * g.clk.Period
}

// ReplayMark implements replay.Periodic.
func (g *Generator) ReplayMark(now clock.Time) bool {
	first := !g.rm.valid
	g.rm.dOffered = g.offered - g.rm.offered
	g.rm.dRejected = g.rejected - g.rm.rejected
	g.rm.dSeq = g.seq - g.rm.seq
	g.rm.dPhase = g.phase - g.rm.phase
	g.rm.offered, g.rm.rejected, g.rm.seq, g.rm.phase = g.offered, g.rejected, g.seq, g.phase
	g.rm.valid = true
	return !first
}

// ReplayFingerprint implements replay.Periodic.
func (g *Generator) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	buf = replay.AppendI64(buf, g.accNum)
	var ph int64
	if g.onCycles > 0 {
		ph = g.phase % (g.onCycles + g.offCycles)
	}
	buf = replay.AppendI64(buf, ph)
	var pend int64
	if ctx.Now < g.start {
		pend = int64(g.start - ctx.Now)
	}
	buf = replay.AppendI64(buf, pend)
	var dis int64
	if g.disabled {
		dis = 1
	}
	return replay.AppendI64(buf, dis)
}

// ReplayShift implements replay.Periodic.
func (g *Generator) ReplayShift(s *replay.Shift) {
	g.offered += s.Epochs * g.rm.dOffered
	g.rejected += s.Epochs * g.rm.dRejected
	g.seq += s.Epochs * g.rm.dSeq
	g.phase += s.Epochs * g.rm.dPhase
	g.rm.valid = false
}

// ReplayConnSeq implements replay.SeqSource.
func (g *Generator) ReplayConnSeq() (phit.ConnID, int64) { return g.conn, g.seq }
