// Package traffic provides IP traffic models for driving NoC simulations:
// constant-bit-rate and bursty generators that write into an NI's IP-side
// FIFO with blocking semantics (the paper's IPs use blocking writes; an
// oversubscribing application simply slows down under back-pressure).
package traffic

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/phit"
)

// A Port is the IP-side injection interface of a network interface; both
// the aelite NI and the best-effort baseline NI implement it.
type Port interface {
	Offer(now clock.Time, conn phit.ConnID, meta phit.Meta) bool
}

// A Generator produces payload words for one connection at a modelled
// rate. It implements sim.Component and runs in the IP's clock domain
// (which, thanks to the NI's bi-synchronous FIFO, need not be the NI's).
type Generator struct {
	name string
	clk  *clock.Clock
	ni   Port
	conn phit.ConnID

	// wordsPerCycle is the offered rate in payload words per generator
	// clock cycle.
	wordsPerCycle float64

	// Burst parameters: the generator alternates onCycles of generation
	// at burstRate with offCycles of silence, keeping the long-run
	// average at wordsPerCycle. onCycles == 0 selects pure CBR.
	onCycles, offCycles int64
	burstRate           float64

	// start delays the first word, staggering generators.
	start clock.Time

	disabled bool
	acc      float64
	phase    int64
	offered  int64 // words accepted into the NI FIFO
	rejected int64 // blocked-write retries (full FIFO)
	seq      int64
}

// NewCBR returns a constant-bit-rate generator offering rateMBps megabytes
// per second of payload for the connection, given the word width in bytes.
func NewCBR(name string, clk *clock.Clock, n Port, conn phit.ConnID,
	rateMBps float64, wordBytes int, start clock.Time) *Generator {
	if rateMBps <= 0 {
		panic(fmt.Sprintf("traffic %s: non-positive rate", name))
	}
	wpc := wordsPerCycle(rateMBps, wordBytes, clk)
	return &Generator{name: name, clk: clk, ni: n, conn: conn, wordsPerCycle: wpc, start: start}
}

// NewBursty returns an on/off generator with the given long-run average
// rate: bursts of onCycles at burstFactor times the average rate separated
// by idle gaps sized to preserve the average.
func NewBursty(name string, clk *clock.Clock, n Port, conn phit.ConnID,
	rateMBps float64, wordBytes int, onCycles int64, burstFactor float64, start clock.Time) *Generator {
	if burstFactor <= 1 || onCycles <= 0 {
		panic(fmt.Sprintf("traffic %s: burst factor must exceed 1 with positive on-time", name))
	}
	g := NewCBR(name, clk, n, conn, rateMBps, wordBytes, start)
	g.onCycles = onCycles
	g.offCycles = int64(float64(onCycles) * (burstFactor - 1))
	g.burstRate = g.wordsPerCycle * burstFactor
	if g.burstRate > 1 {
		g.burstRate = 1 // a generator cannot exceed one word per cycle
	}
	return g
}

func wordsPerCycle(rateMBps float64, wordBytes int, clk *clock.Clock) float64 {
	if wordBytes <= 0 {
		panic("traffic: non-positive word width")
	}
	bytesPerSec := rateMBps * 1e6
	cyclesPerSec := 1e12 / float64(clk.Period)
	return bytesPerSec / float64(wordBytes) / cyclesPerSec
}

// Name implements sim.Component.
func (g *Generator) Name() string { return g.name }

// Clock implements sim.Component.
func (g *Generator) Clock() *clock.Clock { return g.clk }

// Sample implements sim.Component.
func (g *Generator) Sample(now clock.Time) {}

// Update implements sim.Component.
func (g *Generator) Update(now clock.Time) {
	if g.disabled || now < g.start {
		return
	}
	rate := g.wordsPerCycle
	if g.onCycles > 0 {
		period := g.onCycles + g.offCycles
		if g.phase%period >= g.onCycles {
			rate = 0
		} else {
			rate = g.burstRate
		}
		g.phase++
	}
	g.acc += rate
	for g.acc >= 1 {
		meta := phit.Meta{Conn: g.conn, Seq: g.seq, Injected: now}
		if !g.ni.Offer(now, g.conn, meta) {
			// Blocking write: the word stays pending; retry next
			// cycle. Cap the backlog accumulator at one FIFO's
			// worth so an over-subscribed generator models a
			// stalled IP rather than an unbounded debt.
			g.rejected++
			if g.acc > 16 {
				g.acc = 16
			}
			return
		}
		g.seq++
		g.offered++
		g.acc--
	}
}

// NewTransactional returns a generator that emits whole transactions of
// txWords words at line rate (one word per cycle), spaced so the long-run
// average equals rateMBps. Real SoC traffic is transactional — DMA bursts,
// cache lines, stream buffers — and this shape is what separates a
// guaranteed-service network from a best-effort one: transactions from
// different IPs collide in BE routers, while TDM injection is oblivious
// to them.
func NewTransactional(name string, clk *clock.Clock, n Port, conn phit.ConnID,
	rateMBps float64, wordBytes int, txWords int64, start clock.Time) *Generator {
	if txWords <= 0 {
		panic(fmt.Sprintf("traffic %s: transaction of %d words", name, txWords))
	}
	g := NewCBR(name, clk, n, conn, rateMBps, wordBytes, start)
	if g.wordsPerCycle >= 1 {
		return g // already at line rate: transactions are back to back
	}
	g.onCycles = txWords
	g.offCycles = int64(float64(txWords)/g.wordsPerCycle) - txWords
	g.burstRate = 1
	return g
}

// SetEnabled turns the generator on or off; a disabled generator models
// an application that is not running (the composability experiments
// compare runs with other applications enabled vs disabled).
func (g *Generator) SetEnabled(on bool) { g.disabled = !on }

// SetRateMBps changes the offered rate, e.g. to model a misbehaving IP
// that oversubscribes its allocation (which, in aelite, only slows that IP
// down), or an opportunistic best-effort IP exceeding its nominal rate.
// For transactional/bursty generators the inter-burst spacing is rescaled.
func (g *Generator) SetRateMBps(rateMBps float64, wordBytes int) {
	g.wordsPerCycle = wordsPerCycle(rateMBps, wordBytes, g.clk)
	if g.onCycles > 0 {
		if g.wordsPerCycle >= 1 {
			g.offCycles = 0
			g.burstRate = 1
			return
		}
		off := int64(float64(g.onCycles)/g.wordsPerCycle) - g.onCycles
		if off < 0 {
			off = 0
		}
		g.offCycles = off
	}
}

// Offered returns the number of words accepted into the NI so far.
func (g *Generator) Offered() int64 { return g.offered }

// Rejected returns the number of blocked-write retries.
func (g *Generator) Rejected() int64 { return g.rejected }
