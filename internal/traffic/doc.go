// Package traffic provides IP traffic models for driving NoC simulations:
// constant-bit-rate and bursty generators that write into an NI's IP-side
// FIFO with blocking semantics (the paper's IPs use blocking writes; an
// oversubscribing application simply slows down under back-pressure).
//
// Generators are the periodicity root of the replay fast path: a CBR
// rate that reduces to a small rational words-per-cycle pattern makes
// the generator provably periodic (internal/replay), which is why
// internal/scenario quantises generated rates to exactly that family.
package traffic
