package traffic

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

// acceptPort counts words and can be toggled full.
type acceptPort struct {
	words []phit.Meta
	full  bool
}

func (p *acceptPort) Offer(now clock.Time, conn phit.ConnID, meta phit.Meta) bool {
	if p.full {
		return false
	}
	p.words = append(p.words, meta)
	return true
}

func run(t *testing.T, g *Generator, eng *sim.Engine, cycles int64) {
	t.Helper()
	eng.Run(eng.Now() + clock.Time(cycles)*g.Clock().Period)
}

func TestCBRRate(t *testing.T) {
	// 500 MB/s at 4-byte words and 500 MHz = 0.25 words/cycle.
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{}
	g := NewCBR("g", clk, port, 1, 500, 4, 0)
	eng := sim.New()
	eng.Add(g)
	run(t, g, eng, 1000)
	if n := len(port.words); n < 245 || n > 255 {
		t.Errorf("CBR produced %d words in 1000 cycles, want ~250", n)
	}
	if g.Offered() != int64(len(port.words)) {
		t.Errorf("Offered = %d", g.Offered())
	}
	// Sequence numbers are dense and metadata stamped.
	for i, m := range port.words {
		if m.Seq != int64(i) || m.Conn != 1 || m.Injected == 0 {
			t.Fatalf("word %d meta = %+v", i, m)
		}
	}
}

func TestCBRBlockingBackpressure(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{full: true}
	g := NewCBR("g", clk, port, 1, 1000, 4, 0)
	eng := sim.New()
	eng.Add(g)
	run(t, g, eng, 100)
	if g.Rejected() == 0 {
		t.Error("full port never rejected")
	}
	if len(port.words) != 0 {
		t.Error("words accepted by a full port")
	}
	// Reopen: the generator resumes without unbounded catch-up burst.
	port.full = false
	run(t, g, eng, 100)
	if n := len(port.words); n < 45 || n > 70 {
		t.Errorf("after reopening, %d words in 100 cycles (0.5 w/c + bounded backlog)", n)
	}
}

func TestBurstyAverageRate(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{}
	g := NewBursty("g", clk, port, 1, 250, 4, 32, 4, 0)
	eng := sim.New()
	eng.Add(g)
	run(t, g, eng, 4000)
	// 250 MB/s = 0.125 w/c average -> ~500 words.
	if n := len(port.words); n < 450 || n > 550 {
		t.Errorf("bursty produced %d words, want ~500", n)
	}
	// Burstiness: inside a burst the rate is 4x the average (0.5 w/c),
	// so intra-burst spacing is 2 cycles.
	dense := 0
	for i := 1; i < len(port.words); i++ {
		if port.words[i].Injected-port.words[i-1].Injected <= 2*clk.Period {
			dense++
		}
	}
	if dense < len(port.words)/2 {
		t.Errorf("only %d of %d words at burst spacing; not bursty", dense, len(port.words))
	}
}

func TestTransactionalShape(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{}
	g := NewTransactional("g", clk, port, 1, 100, 4, 16, 0)
	eng := sim.New()
	eng.Add(g)
	run(t, g, eng, 3200)
	// 100 MB/s = 0.05 w/c -> 160 words in 3200 cycles, as 10
	// transactions of 16.
	n := len(port.words)
	if n < 144 || n > 176 {
		t.Errorf("%d words, want ~160", n)
	}
	// Words within a transaction arrive at line rate.
	if d := port.words[1].Injected - port.words[0].Injected; d != clk.Period {
		t.Errorf("intra-transaction spacing %d ps", d)
	}
	// Transaction boundaries have long gaps.
	if d := port.words[16].Injected - port.words[15].Injected; d < 100*clk.Period {
		t.Errorf("inter-transaction gap only %d ps", d)
	}
}

func TestTransactionalLineRatePassThrough(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{}
	// 2000 MB/s at 4B/500MHz = 1 w/c: already line rate, no gaps.
	g := NewTransactional("g", clk, port, 1, 2000, 4, 16, 0)
	eng := sim.New()
	eng.Add(g)
	run(t, g, eng, 50)
	if n := len(port.words); n != 50 {
		t.Errorf("line-rate transactional produced %d of 50", n)
	}
}

func TestSetRateAndEnable(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{}
	g := NewTransactional("g", clk, port, 1, 100, 4, 16, 0)
	eng := sim.New()
	eng.Add(g)
	g.SetRateMBps(400, 4) // 4x
	run(t, g, eng, 3200)
	n := len(port.words)
	if n < 576 || n > 704 {
		t.Errorf("%d words after 4x rate, want ~640", n)
	}
	g.SetEnabled(false)
	run(t, g, eng, 1000)
	if len(port.words) != n {
		t.Error("disabled generator produced words")
	}
	g.SetEnabled(true)
	run(t, g, eng, 1000)
	if len(port.words) == n {
		t.Error("re-enabled generator stayed silent")
	}
}

func TestStartDelay(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	port := &acceptPort{}
	g := NewCBR("g", clk, port, 1, 2000, 4, 100*clk.Period)
	eng := sim.New()
	eng.Add(g)
	run(t, g, eng, 99)
	if len(port.words) != 0 {
		t.Errorf("%d words before the start time", len(port.words))
	}
	run(t, g, eng, 10)
	if len(port.words) == 0 {
		t.Error("no words after the start time")
	}
}

func TestGeneratorPanics(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	for name, f := range map[string]func(){
		"zero rate":    func() { NewCBR("g", clk, &acceptPort{}, 1, 0, 4, 0) },
		"zero words":   func() { NewCBR("g", clk, &acceptPort{}, 1, 100, 0, 0) },
		"burst factor": func() { NewBursty("g", clk, &acceptPort{}, 1, 100, 4, 32, 1, 0) },
		"tx words":     func() { NewTransactional("g", clk, &acceptPort{}, 1, 100, 4, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
