// Package cli fixes the exit-path contract shared by every aelite
// command. All commands (aelite-sim, aelite-exp, aelite-alloc,
// aelite-area, aelite-serve) exit through the same three doors:
//
//	2 (ExitUsage)   the invocation is malformed — a bad flag value, an
//	                unknown subcommand, a contradictory flag combination.
//	                Rejected up front, before anything is built.
//	1 (ExitFailure) the invocation is well-formed but the run failed — a
//	                missing spec file, an infeasible allocation, a missed
//	                requirement.
//	3 (ExitFatal)   a recovered panic — an internal invariant broke.
//
// Every path prints exactly one "tool: message" diagnostic line to
// standard error (ExitFatal prefixes the message with "fatal:"), the
// style set by the PR 1 fault layer: a one-line diagnostic instead of a
// raw stack trace.
package cli

import (
	"fmt"
	"io"
	"os"
)

// Exit codes of the shared contract.
const (
	ExitOK      = 0
	ExitFailure = 1
	ExitUsage   = 2
	ExitFatal   = 3
)

// Stderr receives the diagnostics; tests swap it for a buffer.
var Stderr io.Writer = os.Stderr

// Usage prints the one-line diagnostic for a malformed invocation and
// returns ExitUsage for main to pass to os.Exit.
func Usage(tool string, err error) int {
	fmt.Fprintf(Stderr, "%s: %v\n", tool, err)
	return ExitUsage
}

// Failure prints the one-line diagnostic for a failed run and returns
// ExitFailure.
func Failure(tool string, err error) int {
	fmt.Fprintf(Stderr, "%s: %v\n", tool, err)
	return ExitFailure
}

// Fatal prints the one-line diagnostic for a recovered panic value and
// returns ExitFatal.
func Fatal(tool string, recovered any) int {
	fmt.Fprintf(Stderr, "%s: fatal: %v\n", tool, recovered)
	return ExitFatal
}
