package cli

import (
	"bytes"
	"errors"
	"testing"
)

// TestExitPaths pins the cross-command exit contract: one diagnostic
// line per door, with the documented code.
func TestExitPaths(t *testing.T) {
	cases := []struct {
		name     string
		exit     func(tool string) int
		wantCode int
		wantLine string
	}{
		{
			name:     "usage",
			exit:     func(tool string) int { return Usage(tool, errors.New("-conns applies only with -scenario")) },
			wantCode: ExitUsage,
			wantLine: "aelite-x: -conns applies only with -scenario\n",
		},
		{
			name:     "failure",
			exit:     func(tool string) int { return Failure(tool, errors.New("no allocation for connection 7")) },
			wantCode: ExitFailure,
			wantLine: "aelite-x: no allocation for connection 7\n",
		},
		{
			name:     "fatal panic",
			exit:     func(tool string) int { return Fatal(tool, "slot table corrupted") },
			wantCode: ExitFatal,
			wantLine: "aelite-x: fatal: slot table corrupted\n",
		},
		{
			name:     "fatal wraps any recovered value",
			exit:     func(tool string) int { return Fatal(tool, 42) },
			wantCode: ExitFatal,
			wantLine: "aelite-x: fatal: 42\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			old := Stderr
			Stderr = &buf
			defer func() { Stderr = old }()
			if got := tc.exit("aelite-x"); got != tc.wantCode {
				t.Fatalf("exit code = %d, want %d", got, tc.wantCode)
			}
			if buf.String() != tc.wantLine {
				t.Fatalf("diagnostic = %q, want %q", buf.String(), tc.wantLine)
			}
			if bytes.Count(buf.Bytes(), []byte("\n")) != 1 {
				t.Fatalf("diagnostic is not one line: %q", buf.String())
			}
		})
	}
}

// TestCodesAreDistinct guards the contract's door numbering.
func TestCodesAreDistinct(t *testing.T) {
	if ExitOK != 0 || ExitFailure != 1 || ExitUsage != 2 || ExitFatal != 3 {
		t.Fatalf("exit codes moved: ok=%d failure=%d usage=%d fatal=%d",
			ExitOK, ExitFailure, ExitUsage, ExitFatal)
	}
}
