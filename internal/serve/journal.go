package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// A Record is one journal line. The journal is append-only JSONL, one
// record per line, fsync'd per append: the strongest statement a line's
// presence makes — "this shard's result is durable" — must survive
// kill -9 at any instant.
//
//	{"t":"submit","job":...,"fp":...,"spec":{...}}   work accepted
//	{"t":"shard","job":...,"fp":...,"result":{...}}  one shard done
//	{"t":"done","job":...,"status":"done"|"failed"|"cancelled"}
type Record struct {
	T      string       `json:"t"`
	Job    string       `json:"job"`
	FP     string       `json:"fp,omitempty"`
	Spec   *JobSpec     `json:"spec,omitempty"`
	Result *ShardResult `json:"result,omitempty"`
	Status string       `json:"status,omitempty"`
}

// Record types.
const (
	RecSubmit = "submit"
	RecShard  = "shard"
	RecDone   = "done"
)

// A Journal is the crash-safe append-only job log. Appends are
// serialised and fsync'd; a record either made it to stable storage
// whole or resumes as a detectable truncated tail.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal for appending.
//
// An existing file that does not end in a newline carries a truncated
// tail — the signature of kill -9 mid-append. Appending straight after
// it would glue the next record onto the partial line, turning a
// successfully-Append'ed record into unparseable bytes on the next
// replay. OpenJournal therefore seals the tail with a separating
// newline (fsync'd) before any append: the partial line stays in place
// for Replay to report as corruption, and every new record starts on
// its own line.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if n := st.Size(); n > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, n-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	// The journal's own directory entry must be durable too: record
	// fsyncs are worthless if a power loss forgets the file ever existed.
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// syncDir fsyncs a directory so entries created or renamed into it
// survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append marshals rec, writes it as one line and fsyncs. The record is
// durable when Append returns.
func (j *Journal) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// CorruptionKind classifies one salvageable journal defect.
type CorruptionKind string

// The corruption kinds Replay detects. Each is recovered by dropping the
// offending record (never a valid earlier one), so a resume is always
// safe: at worst, dropped work re-runs; completed work is never invented.
const (
	// KindTruncatedTail is a final line that is not valid JSON — the
	// signature of kill -9 mid-append. The partial record is dropped.
	KindTruncatedTail CorruptionKind = "truncated-tail"
	// KindBadRecord is a non-final line that does not parse — torn bytes
	// inside the file. The line is dropped.
	KindBadRecord CorruptionKind = "bad-record"
	// KindDuplicateShard is a second result for a (job, shard) pair. The
	// first (earliest durable) result wins; the duplicate is dropped.
	KindDuplicateShard CorruptionKind = "duplicate-shard"
	// KindFingerprintMismatch is a record whose fp disagrees with its
	// job's recorded spec (or a submit whose spec does not hash to its
	// own fp field): the result cannot be trusted to describe this work
	// and is dropped, forcing an honest re-run.
	KindFingerprintMismatch CorruptionKind = "fingerprint-mismatch"
	// KindOrphanRecord references a job the journal never saw submitted.
	KindOrphanRecord CorruptionKind = "orphan-record"
)

// A CorruptionError is one detected journal defect.
type CorruptionError struct {
	Kind   CorruptionKind
	Line   int // 1-based journal line
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("journal line %d: %s: %s", e.Line, e.Kind, e.Detail)
}

// A Corruption aggregates every defect one Replay found. It is returned
// alongside the salvaged state: the caller decides whether to resume
// (logging the issues) or abort. errors.As recovers the individual
// *CorruptionError values via Issues.
type Corruption struct {
	Issues []*CorruptionError
}

func (c *Corruption) Error() string {
	parts := make([]string, len(c.Issues))
	for i, e := range c.Issues {
		parts[i] = e.Error()
	}
	return fmt.Sprintf("journal: %d defect(s): %s", len(c.Issues), strings.Join(parts, "; "))
}

// JournalJob is one job's salvaged journal state.
type JournalJob struct {
	ID     string
	FP     string
	Spec   JobSpec
	Shards map[int]*ShardResult // completed shards, by index
	Done   bool                 // a done record was journaled
	Status string               // terminal status when Done
}

// ResumeState is everything Replay salvaged, in submission order.
type ResumeState struct {
	Jobs  []*JournalJob
	byJob map[string]*JournalJob
}

// Job looks up a salvaged job by id.
func (s *ResumeState) Job(id string) (*JournalJob, bool) {
	j, ok := s.byJob[id]
	return j, ok
}

// ReplayJournal reads the journal and rebuilds the durable state. It
// never loses data silently: every defect is returned as a typed
// *CorruptionError inside a *Corruption error, and the returned state is
// always safe to resume from — defective records are dropped, valid ones
// kept, and nothing is ever fabricated. A missing journal file is an
// empty state, not an error.
func ReplayJournal(path string) (*ResumeState, error) {
	st := &ResumeState{byJob: make(map[string]*JournalJob)}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var corr Corruption
	flaw := func(kind CorruptionKind, line int, format string, args ...any) {
		corr.Issues = append(corr.Issues, &CorruptionError{
			Kind: kind, Line: line, Detail: fmt.Sprintf(format, args...),
		})
	}

	// A bufio.Reader line loop instead of a Scanner: a Scanner enforces a
	// maximum token size, and one shard record past that limit (a large
	// study table, say) would fail the whole replay with ErrTooLong —
	// indistinguishable from real corruption. Records have no size
	// contract, so replay must not impose one.
	rd := bufio.NewReader(f)
	line := 0
	type parsed struct {
		rec  Record
		line int
	}
	var recs []parsed
	var pending string // last raw line, to classify tail truncation
	pendingLine := 0
	for {
		raw, rerr := rd.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, rerr
		}
		if raw != "" && raw != "\n" {
			line++
			raw = strings.TrimSuffix(raw, "\n")
			if strings.TrimSpace(raw) == "" {
				raw = ""
			}
			if raw != "" {
				var rec Record
				if err := json.Unmarshal([]byte(raw), &rec); err != nil {
					// Defer the verdict: a garbled final line is a truncated
					// tail (expected under kill -9), anywhere else it is a
					// torn record.
					if pending != "" {
						flaw(KindBadRecord, pendingLine, "unparseable record dropped: %.60q", pending)
					}
					pending, pendingLine = raw, line
				} else {
					if pending != "" {
						flaw(KindBadRecord, pendingLine, "unparseable record dropped: %.60q", pending)
						pending = ""
					}
					recs = append(recs, parsed{rec, line})
				}
			}
		} else if raw == "\n" {
			line++
		}
		if rerr == io.EOF {
			break
		}
	}
	if pending != "" {
		flaw(KindTruncatedTail, pendingLine, "truncated tail dropped: %.60q", pending)
	}

	for _, p := range recs {
		rec := p.rec
		switch rec.T {
		case RecSubmit:
			if rec.Spec == nil {
				flaw(KindBadRecord, p.line, "submit record for job %s has no spec", rec.Job)
				continue
			}
			spec := *rec.Spec
			spec.Normalize()
			if fp := spec.Fingerprint(); fp != rec.FP {
				flaw(KindFingerprintMismatch, p.line,
					"submit record for job %s: spec hashes to %s, record claims %s", rec.Job, JobID(fp), JobID(rec.FP))
				continue
			}
			if _, ok := st.byJob[rec.Job]; ok {
				// Idempotent resubmits are normal (same fp → same job);
				// the first submit already carries everything.
				continue
			}
			jj := &JournalJob{ID: rec.Job, FP: rec.FP, Spec: spec, Shards: make(map[int]*ShardResult)}
			st.byJob[rec.Job] = jj
			st.Jobs = append(st.Jobs, jj)
		case RecShard:
			jj, ok := st.byJob[rec.Job]
			if !ok {
				flaw(KindOrphanRecord, p.line, "shard record for unsubmitted job %s dropped", rec.Job)
				continue
			}
			if rec.Result == nil {
				flaw(KindBadRecord, p.line, "shard record for job %s has no result", rec.Job)
				continue
			}
			if rec.FP != jj.FP {
				flaw(KindFingerprintMismatch, p.line,
					"shard %d of job %s carries fingerprint %s, submit recorded %s",
					rec.Result.Shard, rec.Job, JobID(rec.FP), JobID(jj.FP))
				continue
			}
			if rec.Result.Shard < 0 || rec.Result.Shard >= jj.Spec.shardCount() {
				flaw(KindBadRecord, p.line, "shard index %d outside job %s's %d shards",
					rec.Result.Shard, rec.Job, jj.Spec.shardCount())
				continue
			}
			if _, dup := jj.Shards[rec.Result.Shard]; dup {
				flaw(KindDuplicateShard, p.line,
					"second result for shard %d of job %s dropped (first write wins)", rec.Result.Shard, rec.Job)
				continue
			}
			jj.Shards[rec.Result.Shard] = rec.Result
		case RecDone:
			jj, ok := st.byJob[rec.Job]
			if !ok {
				flaw(KindOrphanRecord, p.line, "done record for unsubmitted job %s dropped", rec.Job)
				continue
			}
			jj.Done = true
			jj.Status = rec.Status
		default:
			flaw(KindBadRecord, p.line, "unknown record type %q dropped", rec.T)
		}
	}
	if len(corr.Issues) > 0 {
		return st, &corr
	}
	return st, nil
}
