package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/phit"
	"repro/internal/scenario"
	"repro/internal/slots"
	"repro/internal/stats"
)

// A JobSpec is one submitted unit of work: a sweep campaign of Shards
// independent scenario simulations (shard i runs the scenario at seed
// Seed+i), Kind "scale" — one allocation-scale study over every
// generator family at the given mesh size — or Kind "compare", the
// N-backend comparison study running the submitted family (plus
// "uniform" when it differs) through every registered backend. Specs
// are canonicalised by Normalize and identified by the SHA-256
// Fingerprint of the canonical form, so resubmitting the same work
// always lands on the same job.
type JobSpec struct {
	// Kind selects the runner: "scenario" (default), "scale" or
	// "compare".
	Kind string `json:"kind,omitempty"`

	Family string `json:"family,omitempty"` // scenario family (default "uniform")
	Cols   int    `json:"cols,omitempty"`   // mesh columns (default 4)
	Rows   int    `json:"rows,omitempty"`   // mesh rows (default 4)
	Conns  int    `json:"conns,omitempty"`  // connections per shard (default 16)
	Seed   int64  `json:"seed,omitempty"`   // base seed; shard i uses Seed+i (default 1)
	Shards int    `json:"shards,omitempty"` // campaign width (default 1)

	Mode      string  `json:"mode,omitempty"`       // clocking mode (default "synchronous")
	Allocator string  `json:"allocator,omitempty"`  // slot allocator (default "greedy")
	FreqMHz   float64 `json:"freq_mhz,omitempty"`   // network frequency (default 500)
	WarmupNs  float64 `json:"warmup_ns,omitempty"`  // warm-up window (default 2000)
	MeasureNs float64 `json:"measure_ns,omitempty"` // measurement window (default 10000)

	// DeadlineMs bounds the whole job's wall-clock runtime; 0 inherits
	// the scheduler default. The deadline cancels between shards — a
	// single shard is bounded work and always runs to completion.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// MaxShards bounds a single job's campaign width; wider sweeps should be
// split across jobs so admission control can meter them individually.
const MaxShards = 1024

// Normalize fills the defaulted fields in place. It runs before
// fingerprinting, so a spec and its explicit-default twin are the same
// job.
func (s *JobSpec) Normalize() {
	if s.Kind == "" {
		s.Kind = "scenario"
	}
	if s.Family == "" {
		s.Family = string(scenario.Uniform)
	}
	if s.Cols == 0 {
		s.Cols = 4
	}
	if s.Rows == 0 {
		s.Rows = 4
	}
	if s.Conns == 0 {
		s.Conns = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Mode == "" {
		s.Mode = "synchronous"
	}
	if s.Allocator == "" {
		s.Allocator = "greedy"
	}
	if s.FreqMHz == 0 {
		s.FreqMHz = 500
	}
	if s.WarmupNs == 0 {
		s.WarmupNs = 2000
	}
	if s.MeasureNs == 0 {
		s.MeasureNs = 10000
	}
}

// Validate rejects a malformed spec with a one-line reason — the
// admission controller's "invalid-spec" door. Call after Normalize.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case "scenario", "scale", "compare":
	default:
		return fmt.Errorf("unknown kind %q (scenario | scale | compare)", s.Kind)
	}
	if _, err := scenario.ParseFamily(s.Family); err != nil {
		return err
	}
	if s.Cols < 2 || s.Rows < 2 {
		return fmt.Errorf("mesh %dx%d is below the 2x2 minimum", s.Cols, s.Rows)
	}
	if s.Conns < 1 {
		return fmt.Errorf("conns %d must be at least 1", s.Conns)
	}
	if s.Shards < 1 || s.Shards > MaxShards {
		return fmt.Errorf("shards %d outside [1, %d]", s.Shards, MaxShards)
	}
	switch s.Mode {
	case "synchronous", "mesochronous", "asynchronous":
	default:
		return fmt.Errorf("unknown mode %q (synchronous | mesochronous | asynchronous)", s.Mode)
	}
	if _, err := slots.ByName(s.Allocator); err != nil {
		return err
	}
	if s.FreqMHz <= 0 {
		return fmt.Errorf("freq_mhz %g must be positive", s.FreqMHz)
	}
	if s.WarmupNs < 0 || s.MeasureNs <= 0 {
		return fmt.Errorf("warmup_ns %g must be >= 0 and measure_ns %g > 0", s.WarmupNs, s.MeasureNs)
	}
	if s.DeadlineMs < 0 {
		return fmt.Errorf("deadline_ms %d must not be negative", s.DeadlineMs)
	}
	if ports := s.Cols + s.Rows - 1; s.Kind == "scenario" && ports > phit.WideLayout.MaxHops() {
		return fmt.Errorf("a %dx%d mesh needs %d-hop headers; the widest runnable layout encodes %d (submit kind \"scale\" for allocation-only planning)",
			s.Cols, s.Rows, ports, phit.WideLayout.MaxHops())
	}
	return nil
}

// shardCount is the number of shards the runner will execute: scenario
// campaigns fan out Shards seeds; scale and compare studies are one
// (internally parallel) shard.
func (s *JobSpec) shardCount() int {
	if s.Kind == "scale" || s.Kind == "compare" {
		return 1
	}
	return s.Shards
}

// Fingerprint is the deterministic identity of the normalized spec: the
// SHA-256 of its canonical JSON. Two specs with equal fingerprints
// produce byte-identical artifacts, which is what lets a resumed server
// trust journaled shard results.
func (s *JobSpec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("serve: spec marshal: %v", err)) // struct marshal cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// JobIDLen is the fingerprint prefix length used as the public job id.
const JobIDLen = 16

// JobID derives the public job id from a fingerprint.
func JobID(fingerprint string) string {
	if len(fingerprint) < JobIDLen {
		return fingerprint
	}
	return fingerprint[:JobIDLen]
}

// A ShardResult is one shard's deterministic outcome. It carries no
// wall-clock fields: equal (spec, shard) pairs yield byte-identical
// results on any machine at any time, the property the crash-resume
// artifact equivalence gate rests on.
type ShardResult struct {
	Shard int    `json:"shard"`
	Name  string `json:"name"` // scenario name, or "scale" for a study shard

	// Scenario-shard outcome.
	Conns          int     `json:"conns,omitempty"`
	Delivered      int64   `json:"delivered,omitempty"`
	AllMet         bool    `json:"all_met,omitempty"`
	AllWithinBound bool    `json:"all_within_bound,omitempty"`
	WorstLatNs     float64 `json:"worst_lat_ns,omitempty"`
	TotalMBps      float64 `json:"total_mbps,omitempty"`

	// Scale-shard outcome (Kind "scale"): the full study report with its
	// one wall-clock field (AllocMs) zeroed for determinism.
	Scale *experiments.ScaleReport `json:"scale,omitempty"`

	// Compare-shard outcome (Kind "compare"): the N-backend comparison
	// table. Every field is deterministic as produced.
	Compare *experiments.CompareReport `json:"compare,omitempty"`
}

// runShard executes one shard of the spec. It is the worker's unit of
// work: deterministic in (spec, shard), bounded, and oblivious to the
// scheduler around it. ctx cancels a scale study between its points;
// scenario shards check it once up front (a single small simulation is
// bounded work).
func runShard(ctx context.Context, spec JobSpec, shard int) (*ShardResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.Kind == "scale" {
		return runScaleShard(ctx, spec)
	}
	if spec.Kind == "compare" {
		return runCompareShard(ctx, spec)
	}

	fam, err := scenario.ParseFamily(spec.Family)
	if err != nil {
		return nil, err
	}
	scfg := scenario.Default(fam, spec.Cols, spec.Rows, spec.Conns, spec.Seed+int64(shard))
	scfg.FreqMHz = spec.FreqMHz
	ncfg := core.Config{FreqMHz: spec.FreqMHz, Allocator: spec.Allocator}
	switch spec.Mode {
	case "mesochronous":
		ncfg.Mode = core.Mesochronous
	case "asynchronous":
		ncfg.Mode = core.Asynchronous
	}
	// Header layout follows the mesh diameter, as in the CLIs.
	if ports := spec.Cols + spec.Rows - 1; ports > phit.DefaultLayout.MaxHops() {
		ncfg.Layout = phit.WideLayout
		ncfg.WordBytes = 8
		scfg.WordBytes = 8
	}
	s, err := scenario.Generate(scfg)
	if err != nil {
		return nil, err
	}
	m := s.Mesh()
	core.PrepareTopology(m, ncfg)
	n, err := core.Build(m, s.UseCase, ncfg)
	if err != nil {
		return nil, err
	}
	rep := n.Run(spec.WarmupNs, spec.MeasureNs)

	res := &ShardResult{
		Shard: shard, Name: scfg.Name, Conns: len(rep.Conns),
		AllMet: rep.AllMet(), AllWithinBound: rep.AllWithinBound(),
	}
	for _, c := range rep.Conns {
		res.Delivered += c.Delivered
		res.TotalMBps += c.MeasuredMBps
		if c.LatMaxNs > res.WorstLatNs {
			res.WorstLatNs = c.LatMaxNs
		}
	}
	// A degenerate window (nothing delivered, empty span) aggregates to
	// NaN/Inf, and one such value fails the whole artifact marshal.
	res.TotalMBps = stats.Finite(res.TotalMBps)
	res.WorstLatNs = stats.Finite(res.WorstLatNs)
	return res, nil
}

// runScaleShard runs the spec as a one-mesh scale study across every
// generator family and both allocators, reusing the experiments runner
// (and, through it, the context-aware parallel sweep).
func runScaleShard(ctx context.Context, spec JobSpec) (*ShardResult, error) {
	cfg := experiments.ScaleConfig{
		Seed:       spec.Seed,
		Families:   scenario.Families(),
		Meshes:     []experiments.ScaleMesh{{Cols: spec.Cols, Rows: spec.Rows, Conns: spec.Conns}},
		Allocators: []string{"greedy", "ripup"},
		WarmupNs:   spec.WarmupNs,
		MeasureNs:  spec.MeasureNs,
	}
	rep, err := experiments.ScaleStudyCtx(ctx, cfg, 2)
	if err != nil {
		return nil, err
	}
	// AllocMs is wall-clock — the one non-deterministic field — and must
	// not reach the crash-resume-equivalent artifact.
	for i := range rep.Points {
		rep.Points[i].AllocMs = 0
	}
	return &ShardResult{Shard: 0, Name: "scale", Scale: rep}, nil
}

// runCompareShard runs the spec as an N-backend comparison study: the
// submitted family plus "uniform" (when it differs) through every
// registered backend, reusing the experiments runner. The resulting
// table is deterministic in the spec, so it satisfies the artifact
// byte-identity contract as-is.
func runCompareShard(ctx context.Context, spec JobSpec) (*ShardResult, error) {
	fam, err := scenario.ParseFamily(spec.Family)
	if err != nil {
		return nil, err
	}
	families := []scenario.Family{fam}
	if fam != scenario.Uniform {
		families = append([]scenario.Family{scenario.Uniform}, families...)
	}
	cfg := experiments.CompareConfig{
		Seed:     spec.Seed,
		Families: families,
		Cols:     spec.Cols, Rows: spec.Rows, Conns: spec.Conns,
		WarmupNs:  spec.WarmupNs,
		MeasureNs: spec.MeasureNs,
	}
	rep, err := experiments.CompareStudyCtx(ctx, cfg, 2)
	if err != nil {
		return nil, err
	}
	return &ShardResult{Shard: 0, Name: "compare", Compare: rep}, nil
}

// An Artifact is a completed job's canonical campaign output: the spec,
// its identity, and every shard result in shard order. MarshalCanonical
// is the byte-level contract: an interrupted-and-resumed campaign and an
// uninterrupted one render byte-identical artifacts.
type Artifact struct {
	Job    string        `json:"job"`
	FP     string        `json:"fp"`
	Spec   JobSpec       `json:"spec"`
	Shards []ShardResult `json:"shards"`
}

// NewArtifact assembles the canonical artifact from completed shards.
func NewArtifact(spec JobSpec, fp string, shards map[int]*ShardResult) *Artifact {
	a := &Artifact{Job: JobID(fp), FP: fp, Spec: spec}
	idx := make([]int, 0, len(shards))
	for i := range shards {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		a.Shards = append(a.Shards, *shards[i])
	}
	return a
}

// MarshalCanonical renders the artifact's canonical bytes (indented
// JSON, trailing newline).
func (a *Artifact) MarshalCanonical() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
