package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSpec(shards int) JobSpec {
	s := JobSpec{Shards: shards}
	s.Normalize()
	return s
}

// writeJournal builds a journal file from pre-rendered lines.
func writeJournal(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serve.journal")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// journalLines appends records through the real Journal and returns the
// file's lines.
func journalLines(t *testing.T, recs ...Record) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "build.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(b), "\n"), "\n")
}

func kinds(err error) []CorruptionKind {
	var corr *Corruption
	if !errors.As(err, &corr) {
		return nil
	}
	out := make([]CorruptionKind, len(corr.Issues))
	for i, e := range corr.Issues {
		out[i] = e.Kind
	}
	return out
}

func TestReplayMissingJournalIsEmptyState(t *testing.T) {
	st, err := ReplayJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil {
		t.Fatalf("missing journal: %v", err)
	}
	if len(st.Jobs) != 0 {
		t.Fatalf("jobs = %d, want 0", len(st.Jobs))
	}
}

func TestReplayRoundTrip(t *testing.T) {
	spec := testSpec(3)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 0, Name: "s0"}},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 2, Name: "s2"}},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	if err != nil {
		t.Fatalf("clean journal: %v", err)
	}
	jj, ok := st.Job(id)
	if !ok {
		t.Fatalf("job %s not salvaged", id)
	}
	if len(jj.Shards) != 2 || jj.Shards[0].Name != "s0" || jj.Shards[2].Name != "s2" {
		t.Fatalf("shards = %+v", jj.Shards)
	}
	if jj.Done {
		t.Fatal("job marked done without a done record")
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	// kill -9 mid-append: the final line is a torn JSON prefix. Replay
	// must keep every whole record, drop the tail, and say so with a
	// typed error.
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 0, Name: "s0"}},
	)
	torn := lines[1][:len(lines[1])/2]
	st, err := ReplayJournal(writeJournal(t, lines[0], torn))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindTruncatedTail {
		t.Fatalf("kinds = %v, want [%s] (err %v)", ks, KindTruncatedTail, err)
	}
	jj, ok := st.Job(id)
	if !ok {
		t.Fatal("submit record lost along with the torn tail")
	}
	if len(jj.Shards) != 0 {
		t.Fatalf("salvaged %d shards from a torn record, want 0 (never fabricate results)", len(jj.Shards))
	}
}

func TestReplayTornMiddleIsBadRecordNotTail(t *testing.T) {
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 0, Name: "s0"}},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 1, Name: "s1"}},
	)
	st, err := ReplayJournal(writeJournal(t, lines[0], lines[1][:20], lines[2]))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindBadRecord {
		t.Fatalf("kinds = %v, want [%s]", ks, KindBadRecord)
	}
	jj, _ := st.Job(id)
	if len(jj.Shards) != 1 || jj.Shards[1] == nil {
		t.Fatalf("shards = %+v, want shard 1 salvaged past the torn line", jj.Shards)
	}
}

func TestReplayDuplicateShardFirstWriteWins(t *testing.T) {
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 1, Name: "first"}},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 1, Name: "second"}},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindDuplicateShard {
		t.Fatalf("kinds = %v, want [%s]", ks, KindDuplicateShard)
	}
	jj, _ := st.Job(id)
	if got := jj.Shards[1].Name; got != "first" {
		t.Fatalf("shard 1 = %q, want the first durable write to win", got)
	}
}

func TestReplayFingerprintMismatch(t *testing.T) {
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	other := testSpec(3) // different spec → different fingerprint
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: other.Fingerprint(), Result: &ShardResult{Shard: 0, Name: "alien"}},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 1, Name: "ours"}},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindFingerprintMismatch {
		t.Fatalf("kinds = %v, want [%s]", ks, KindFingerprintMismatch)
	}
	jj, _ := st.Job(id)
	if len(jj.Shards) != 1 || jj.Shards[1] == nil {
		t.Fatalf("shards = %+v: a result under the wrong fingerprint must not be trusted", jj.Shards)
	}
}

func TestReplaySubmitFingerprintMismatchDropsJob(t *testing.T) {
	spec := testSpec(2)
	id := JobID(spec.Fingerprint())
	tampered := fmt.Sprintf(`{"t":"submit","job":%q,"fp":%q,"spec":{"kind":"scenario","family":"uniform","cols":4,"rows":4,"conns":16,"seed":1,"shards":2,"mode":"synchronous","allocator":"greedy","freq_mhz":500,"warmup_ns":2000,"measure_ns":99999}}`,
		id, spec.Fingerprint())
	st, err := ReplayJournal(writeJournal(t, tampered))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindFingerprintMismatch {
		t.Fatalf("kinds = %v, want [%s]", ks, KindFingerprintMismatch)
	}
	if len(st.Jobs) != 0 {
		t.Fatalf("salvaged %d jobs from a tampered submit, want 0", len(st.Jobs))
	}
}

func TestReplayOrphanShardRecord(t *testing.T) {
	spec := testSpec(2)
	fp := spec.Fingerprint()
	lines := journalLines(t,
		Record{T: RecShard, Job: "feedfeedfeedfeed", FP: fp, Result: &ShardResult{Shard: 0}},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindOrphanRecord {
		t.Fatalf("kinds = %v, want [%s]", ks, KindOrphanRecord)
	}
	if len(st.Jobs) != 0 {
		t.Fatalf("jobs = %d, want 0", len(st.Jobs))
	}
}

func TestReplayShardIndexOutOfRange(t *testing.T) {
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 7, Name: "ghost"}},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindBadRecord {
		t.Fatalf("kinds = %v, want [%s]", ks, KindBadRecord)
	}
	jj, _ := st.Job(id)
	if len(jj.Shards) != 0 {
		t.Fatalf("shards = %+v, want the out-of-range result dropped", jj.Shards)
	}
}

func TestReplayIdempotentResubmitIsNotCorruption(t *testing.T) {
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecDone, Job: id, Status: "done"},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	if err != nil {
		t.Fatalf("idempotent resubmit flagged as corruption: %v", err)
	}
	jj, _ := st.Job(id)
	if !jj.Done || jj.Status != "done" {
		t.Fatalf("done = %v status = %q", jj.Done, jj.Status)
	}
}

func TestOpenJournalSealsTruncatedTailBeforeAppend(t *testing.T) {
	// kill -9 left a partial final line with no newline. Reopening for
	// append must seal it with a separating newline: otherwise the first
	// record appended after -resume is glued onto the partial line and a
	// later replay silently drops a record whose Append reported success.
	spec := testSpec(2)
	fp := spec.Fingerprint()
	id := JobID(fp)
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 0, Name: "s0"}},
	)
	path := filepath.Join(t.TempDir(), "torn.journal")
	torn := lines[0] + "\n" + lines[1][:len(lines[1])/2] // no trailing newline
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: 1, Name: "s1"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	st, err := ReplayJournal(path)
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindBadRecord {
		t.Fatalf("kinds = %v, want [%s] (the sealed tail is no longer the final line)", ks, KindBadRecord)
	}
	jj, ok := st.Job(id)
	if !ok {
		t.Fatal("submit record lost")
	}
	if len(jj.Shards) != 1 || jj.Shards[1] == nil || jj.Shards[1].Name != "s1" {
		t.Fatalf("shards = %+v: the record appended after reopen was glued onto the torn tail", jj.Shards)
	}
}

// bigShardResult builds a shard result whose journal record is well past
// bufio.Scanner's 64 KiB default token limit: a compare report with a
// long synthetic family list. Records carry no size contract, so replay
// must not impose one.
func bigShardResult() *ShardResult {
	return &ShardResult{Shard: 0, Name: "compare-" + strings.Repeat("x", 96*1024)}
}

func TestReplayLargeRecordNoSizeLimit(t *testing.T) {
	// A single shard record past 64 KiB used to fail the whole replay
	// with bufio.ErrTooLong — indistinguishable from corruption. Replay
	// must read it whole and salvage it like any other record.
	spec := testSpec(1)
	fp := spec.Fingerprint()
	id := JobID(fp)
	big := bigShardResult()
	lines := journalLines(t,
		Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec},
		Record{T: RecShard, Job: id, FP: fp, Result: big},
	)
	if len(lines[1]) <= 64*1024 {
		t.Fatalf("shard record is %d bytes; the regression needs one past the 64 KiB scanner limit", len(lines[1]))
	}
	st, err := ReplayJournal(writeJournal(t, lines...))
	if err != nil {
		t.Fatalf("large record misdiagnosed as corruption: %v", err)
	}
	jj, ok := st.Job(id)
	if !ok || len(jj.Shards) != 1 || jj.Shards[0] == nil {
		t.Fatalf("job %s not salvaged whole: %+v", id, jj)
	}
	if jj.Shards[0].Name != big.Name {
		t.Fatal("large shard record came back altered")
	}
}

func TestReplayLargeRecordKillResumeArtifactByteIdentical(t *testing.T) {
	// kill -9 right after the >64 KiB shard record is durable: the next
	// append is torn mid-line. Resuming through OpenJournal (which seals
	// the tail) and finishing the job must render the artifact
	// byte-for-byte equal to an uninterrupted run's.
	spec := testSpec(1)
	fp := spec.Fingerprint()
	id := JobID(fp)
	big := bigShardResult()

	path := filepath.Join(t.TempDir(), "large.journal")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(Record{T: RecShard, Job: id, FP: fp, Result: big}); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	// The kill: a torn done record with no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Second life: reopen (seals the tail), journal the terminal record.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{T: RecDone, Job: id, Status: "done"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	st, err := ReplayJournal(path)
	ks := kinds(err)
	if len(ks) != 1 || ks[0] != KindBadRecord {
		t.Fatalf("kinds = %v, want [%s] for the sealed torn line (err %v)", ks, KindBadRecord, err)
	}
	jj, ok := st.Job(id)
	if !ok || !jj.Done || jj.Status != "done" {
		t.Fatalf("salvaged job = %+v, want done", jj)
	}
	got, err := NewArtifact(jj.Spec, jj.FP, jj.Shards).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewArtifact(spec, fp, map[int]*ShardResult{0: big}).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed artifact differs from the uninterrupted one")
	}
}

func TestJournalAppendSurvivesReplay(t *testing.T) {
	// The writer and the replayer agree: what Append persists, Replay
	// reads back without complaint.
	path := filepath.Join(t.TempDir(), "rt.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(4)
	fp := spec.Fingerprint()
	id := JobID(fp)
	if err := j.Append(Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(Record{T: RecShard, Job: id, FP: fp, Result: &ShardResult{Shard: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(Record{T: RecDone, Job: id, Status: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	jj, ok := st.Job(id)
	if !ok || len(jj.Shards) != 4 || !jj.Done {
		t.Fatalf("salvaged %+v", jj)
	}
}
