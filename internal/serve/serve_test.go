package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// quickSpec is a small, fast campaign used throughout the tests.
func quickSpec(shards int) JobSpec {
	return JobSpec{Family: "uniform", Conns: 4, Shards: shards, WarmupNs: 500, MeasureNs: 1500}
}

// waitTerminal polls a job to its terminal state.
func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.State(); s.Terminal() {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s", j.ID, j.State())
	return ""
}

func TestSchedulerRunsCampaignToDone(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2})
	s.Start()
	defer s.Stop()
	j, err := s.Submit(quickSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateDone {
		t.Fatalf("state = %s (%s)", got, j.View().Detail)
	}
	var art Artifact
	if err := json.Unmarshal(j.Artifact(), &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Shards) != 3 {
		t.Fatalf("artifact shards = %d, want 3", len(art.Shards))
	}
	for i, sh := range art.Shards {
		if sh.Shard != i || sh.Delivered == 0 {
			t.Fatalf("shard %d: %+v", i, sh)
		}
	}
}

func TestSubmitIsIdempotentByFingerprint(t *testing.T) {
	s := NewScheduler(SchedulerConfig{})
	defer s.Stop()
	a, err := s.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// The explicit-defaults twin of the same spec is the same job.
	twin := quickSpec(2)
	twin.Kind = "scenario"
	twin.Cols, twin.Rows = 4, 4
	b, err := s.Submit(twin)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("idempotent resubmit made a second job: %s vs %s", a.ID, b.ID)
	}
	if len(s.Jobs()) != 1 {
		t.Fatalf("jobs = %d, want 1", len(s.Jobs()))
	}
}

func TestAdmissionRejectsTyped(t *testing.T) {
	// Not started: jobs stay queued, so the bounded queue fills.
	s := NewScheduler(SchedulerConfig{QueueLimit: 2})
	if _, err := s.Submit(JobSpec{Family: "no-such-family"}); err == nil {
		t.Fatal("invalid spec admitted")
	} else {
		var rej *RejectionError
		if !errors.As(err, &rej) || rej.Reason != "invalid-spec" {
			t.Fatalf("err = %v, want invalid-spec rejection", err)
		}
	}
	for i := 0; i < 2; i++ {
		spec := quickSpec(1)
		spec.Seed = int64(100 + i) // distinct fingerprints
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	full := quickSpec(1)
	full.Seed = 999
	_, err := s.Submit(full)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != "queue-full" {
		t.Fatalf("err = %v, want queue-full rejection", err)
	}

	go s.Drain(time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = s.Submit(full)
		if errors.As(err, &rej) && rej.Reason == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("err = %v, want draining rejection", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := NewScheduler(SchedulerConfig{}) // not started: job stays queued
	j, err := s.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got)
	}
	if err := s.Cancel(j.ID); err == nil {
		t.Fatal("cancelling a terminal job must error")
	}
}

func TestCancelRacingDequeueDefersToWorker(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1}) // not started: we play the worker by hand
	j, err := s.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the race window: a worker has popped the job from the
	// queue but runJob has not yet marked it Running, so its state still
	// reads Queued while the queue no longer holds it.
	s.mu.Lock()
	s.queue = s.queue[1:]
	s.mu.Unlock()
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateQueued {
		t.Fatalf("state = %s; Cancel must not declare a worker-owned job terminal", got)
	}
	// The worker proceeds: runJob must honour the pending cancel and land
	// the one terminal state without running any shard.
	s.runJob(j)
	if got := j.State(); got != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got)
	}
	if v := j.View(); v.ShardsDone != 0 {
		t.Fatalf("ran %d shards after cancel", v.ShardsDone)
	}
}

func TestChaosCampaignCompletesWithRetries(t *testing.T) {
	// Seeded fault injection at 50%: shards fail with transient errors
	// and genuine panics, the supervisor recovers, retries with backoff,
	// and the campaign still completes with an artifact identical to the
	// calm run's.
	calm := NewScheduler(SchedulerConfig{Workers: 2})
	calm.Start()
	jc, err := calm.Submit(quickSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, jc); got != StateDone {
		t.Fatalf("calm run: %s", got)
	}
	calm.Stop()

	stormy := NewScheduler(SchedulerConfig{
		Workers: 2,
		Retry:   RetryPolicy{MaxRetries: 12, Base: time.Millisecond, Max: 4 * time.Millisecond, JitterSeed: 1},
		Chaos:   ChaosConfig{Rate: 0.5, Seed: 11},
	})
	stormy.Start()
	js, err := stormy.Submit(quickSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, js); got != StateDone {
		t.Fatalf("stormy run: %s (%s)", got, js.View().Detail)
	}
	if !bytes.Equal(jc.Artifact(), js.Artifact()) {
		t.Fatal("chaos changed the artifact bytes; injection must be pre-execution only")
	}
	sum := stormy.Drain(time.Second)
	if sum.ChaosInjected == 0 || sum.Retries == 0 {
		t.Fatalf("drain summary %+v: want injected faults and retries counted", sum)
	}
	if js.View().Retries == 0 {
		t.Fatal("job retry counter is zero under 50% chaos")
	}
}

func TestChaosEveryAttemptExhaustsRetryBudget(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers: 1,
		Retry:   RetryPolicy{MaxRetries: 2, Base: time.Millisecond, Max: time.Millisecond, JitterSeed: 1},
		Chaos:   ChaosConfig{Rate: 1.0, Seed: 3},
	})
	s.Start()
	defer s.Stop()
	j, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateFailed {
		t.Fatalf("state = %s, want failed after the retry budget", got)
	}
	if v := j.View(); !strings.Contains(v.Detail, "retry budget exhausted") {
		t.Fatalf("detail = %q", v.Detail)
	}
}

func TestPermanentFailureFailsFast(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1})
	s.Start()
	defer s.Stop()
	spec := quickSpec(1)
	spec.Conns = 2000 // infeasible: deterministic generation error
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, j); got != StateFailed {
		t.Fatalf("state = %s, want failed", got)
	}
	if v := j.View(); v.Retries != 0 {
		t.Fatalf("retried a deterministic failure %d times; the classifier must fail fast", v.Retries)
	}
}

func TestCrashResumeArtifactByteIdentical(t *testing.T) {
	// The acceptance gate in miniature: an interrupted campaign, resumed
	// from the journal in a fresh scheduler, must render the artifact
	// byte-for-byte equal to an uninterrupted run's.
	dir := t.TempDir()
	spec := quickSpec(4)

	// Uninterrupted baseline (no journal needed).
	base := NewScheduler(SchedulerConfig{Workers: 1})
	base.Start()
	jb, err := base.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jb)
	base.Stop()

	// First life: journal everything, then "crash" by truncating the
	// journal to the submit + 2 shards, mid-way through the third line.
	crashPath := filepath.Join(dir, "crash.journal")
	j1, err := OpenJournal(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	first := NewScheduler(SchedulerConfig{Workers: 1, Journal: j1})
	first.Start()
	jf, err := first.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jf)
	first.Stop()
	j1.Close()
	full, err := os.ReadFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(full), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal has %d lines, want submit + 4 shards + done", len(lines))
	}
	// submit + shards 0,1 + half of shard 2's record: kill -9 mid-append.
	torn := lines[0] + lines[1] + lines[2] + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(crashPath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: replay (expecting the truncated-tail diagnosis),
	// resume, and finish the missing shards.
	st, err := ReplayJournal(crashPath)
	var corr *Corruption
	if !errors.As(err, &corr) {
		t.Fatalf("replay of torn journal: err = %v, want *Corruption", err)
	}
	if len(corr.Issues) != 1 || corr.Issues[0].Kind != KindTruncatedTail {
		t.Fatalf("issues = %v", corr.Issues)
	}
	j2, err := OpenJournal(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	second := NewScheduler(SchedulerConfig{Workers: 1, Journal: j2})
	requeued, skipped, err := second.Resume(st)
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 || skipped != 2 {
		t.Fatalf("requeued %d skipped %d, want 1 and 2", requeued, skipped)
	}
	second.Start()
	defer second.Stop()
	jr, ok := second.Job(jf.ID)
	if !ok {
		t.Fatalf("resumed scheduler lost job %s", jf.ID)
	}
	if got := waitTerminal(t, jr); got != StateDone {
		t.Fatalf("resumed job: %s (%s)", got, jr.View().Detail)
	}
	if v := jr.View(); v.Resumed != 2 {
		t.Fatalf("resumed shards = %d, want 2", v.Resumed)
	}
	if !bytes.Equal(jb.Artifact(), jr.Artifact()) {
		t.Fatal("resumed artifact differs from the uninterrupted baseline")
	}
}

func TestResumeRegistersFinishedJobsWithArtifacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.journal")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(SchedulerConfig{Workers: 1, Journal: j1})
	s1.Start()
	j, err := s1.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	s1.Stop()
	j1.Close()

	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("clean journal: %v", err)
	}
	s2 := NewScheduler(SchedulerConfig{Workers: 1})
	requeued, _, err := s2.Resume(st)
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 0 {
		t.Fatalf("requeued %d finished jobs, want 0", requeued)
	}
	r, ok := s2.Job(j.ID)
	if !ok || r.State() != StateDone {
		t.Fatalf("finished job not registered done")
	}
	if !bytes.Equal(r.Artifact(), j.Artifact()) {
		t.Fatal("rebuilt artifact differs from the original")
	}
}

func TestResumeDoneJobMissingShardsRequeues(t *testing.T) {
	// A done record whose shard records did not all survive replay (torn
	// line, fingerprint mismatch) must not certify a partial artifact:
	// the job re-queues and the missing shards re-run.
	base := NewScheduler(SchedulerConfig{Workers: 1})
	base.Start()
	jb, err := base.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jb)
	base.Stop()
	var art Artifact
	if err := json.Unmarshal(jb.Artifact(), &art); err != nil {
		t.Fatal(err)
	}

	// Journal with shard 1's record lost but the done record intact.
	lines := journalLines(t,
		Record{T: RecSubmit, Job: jb.ID, FP: jb.FP, Spec: &jb.Spec},
		Record{T: RecShard, Job: jb.ID, FP: jb.FP, Result: &art.Shards[0]},
		Record{T: RecDone, Job: jb.ID, Status: "done"},
	)
	st, err := ReplayJournal(writeJournal(t, lines...))
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewScheduler(SchedulerConfig{Workers: 1})
	requeued, skipped, err := s2.Resume(st)
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 || skipped != 1 {
		t.Fatalf("requeued %d skipped %d, want 1 and 1", requeued, skipped)
	}
	s2.Start()
	defer s2.Stop()
	jr, ok := s2.Job(jb.ID)
	if !ok {
		t.Fatalf("no job %s after resume", jb.ID)
	}
	if got := waitTerminal(t, jr); got != StateDone {
		t.Fatalf("state = %s (%s)", got, jr.View().Detail)
	}
	if !bytes.Equal(jr.Artifact(), jb.Artifact()) {
		t.Fatal("re-run artifact differs from the uninterrupted baseline")
	}
}

func TestDrainCheckpointsQueuedJobs(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1}) // never started
	for i := 0; i < 3; i++ {
		spec := quickSpec(1)
		spec.Seed = int64(50 + i)
		if _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	sum := s.Drain(100 * time.Millisecond)
	if sum.Checkpointed != 3 {
		t.Fatalf("checkpointed = %d, want 3", sum.Checkpointed)
	}
	if sum.Done != 0 || sum.ForceCancelled != 0 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s := NewScheduler(SchedulerConfig{Workers: 2, ArtifactsDir: dir})
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(NewServer(s))
	defer ts.Close()

	hrsp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hrsp.Body.Close()
	if hrsp.StatusCode != 200 {
		t.Fatalf("healthz: %s", hrsp.Status)
	}

	// Bad spec → 400 with the typed reason.
	rsp, err := ts.Client().Post(ts.URL+"/api/jobs", "application/json",
		strings.NewReader(`{"family":"fibonacci"}`)) //nolint:noctx // test client
	if err != nil {
		t.Fatal(err)
	}
	if rsp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s", rsp.Status)
	}
	var apiErr struct{ Reason string }
	if err := json.NewDecoder(rsp.Body).Decode(&apiErr); err != nil || apiErr.Reason != "invalid-spec" {
		t.Fatalf("reason = %q err %v", apiErr.Reason, err)
	}
	rsp.Body.Close()

	// Submit, await, fetch the artifact.
	body, _ := json.Marshal(quickSpec(2))
	rsp, err = ts.Client().Post(ts.URL+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if rsp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", rsp.Status)
	}
	var view JobView
	if err := json.NewDecoder(rsp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	j, ok := s.Job(view.ID)
	if !ok {
		t.Fatalf("no job %s", view.ID)
	}
	waitTerminal(t, j)

	rsp, err = ts.Client().Get(ts.URL + "/api/jobs/" + view.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.NewDecoder(rsp.Body).Decode(&art); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if len(art.Shards) != 2 {
		t.Fatalf("artifact shards = %d", len(art.Shards))
	}
	// The persisted artifact matches the served one byte for byte.
	onDisk, err := os.ReadFile(filepath.Join(dir, view.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, j.Artifact()) {
		t.Fatal("artifact file differs from the in-memory artifact")
	}

	// The SSE stream replays the lifecycle through to the terminal event.
	rsp, err = ts.Client().Get(ts.URL + "/api/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// The job is terminal, so the handler replays the full history and
	// closes the stream — ReadAll sees every event through "done".
	raw, err := io.ReadAll(rsp.Body)
	rsp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	stream := string(raw)
	for _, want := range []string{"event: state", `"state":"queued"`, `"state":"done"`} {
		if !strings.Contains(stream, want) {
			t.Fatalf("SSE stream missing %q:\n%s", want, stream)
		}
	}

	// Job list includes the job.
	rsp, err = ts.Client().Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct{ Jobs []JobView }
	if err := json.NewDecoder(rsp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	rsp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].State != StateDone {
		t.Fatalf("list = %+v", list.Jobs)
	}
}

// stalledSSEWriter plays a client that reads the first event and then
// stops reading: the first write succeeds, later writes block the way a
// full TCP send buffer would — until the deadline the handler set, then
// fail with os.ErrDeadlineExceeded. It implements SetWriteDeadline so
// http.NewResponseController reaches it.
type stalledSSEWriter struct {
	hdr         http.Header
	buf         bytes.Buffer
	writes      int
	deadline    time.Time
	deadlineSet bool
}

func (w *stalledSSEWriter) Header() http.Header { return w.hdr }
func (w *stalledSSEWriter) WriteHeader(int)     {}
func (w *stalledSSEWriter) Flush()              {}
func (w *stalledSSEWriter) SetWriteDeadline(t time.Time) error {
	w.deadline, w.deadlineSet = t, true
	return nil
}
func (w *stalledSSEWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes == 1 {
		return w.buf.Write(b)
	}
	if w.deadline.IsZero() {
		return 0, errors.New("write would block forever: handler set no deadline")
	}
	time.Sleep(time.Until(w.deadline))
	return 0, os.ErrDeadlineExceeded
}

func TestSSEStalledClientResyncsToTerminal(t *testing.T) {
	// A stalled SSE reader used to pin the streaming goroutine on a
	// blocked write with no way to ever observe the job finish. The fix
	// is two-sided: the handler tears down a stream whose write misses
	// the deadline, and a reconnect with Last-Event-ID resumes the
	// replay just past what the client saw — through the terminal event.
	s := NewScheduler(SchedulerConfig{Workers: 1})
	s.Start()
	defer s.Stop()
	j, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	srv := NewServer(s)
	srv.StreamWriteTimeout = 50 * time.Millisecond

	// First life: one event delivered, then the client stalls.
	w1 := &stalledSSEWriter{hdr: make(http.Header)}
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(w1, httptest.NewRequest("GET", "/api/jobs/"+j.ID+"/events", nil))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled stream still pinned after 5s; the write deadline never fired")
	}
	if !w1.deadlineSet {
		t.Fatal("handler never set a write deadline")
	}
	first := w1.buf.String()
	if !strings.Contains(first, "id: 0\n") {
		t.Fatalf("first stream carries no SSE id for resync:\n%s", first)
	}
	if strings.Contains(first, `"state":"done"`) {
		t.Fatalf("test premise broken: the stalled stream already delivered the terminal event:\n%s", first)
	}

	// Second life: reconnect where the stream left off.
	req := httptest.NewRequest("GET", "/api/jobs/"+j.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "0")
	w2 := httptest.NewRecorder()
	srv.ServeHTTP(w2, req)
	stream := w2.Body.String()
	if strings.Contains(stream, "id: 0\n") {
		t.Fatalf("resync replayed the event the client already saw:\n%s", stream)
	}
	if !strings.Contains(stream, "id: 1\n") {
		t.Fatalf("resync does not resume just past Last-Event-ID:\n%s", stream)
	}
	if !strings.Contains(stream, `"state":"done"`) {
		t.Fatalf("resynced stream never reached the terminal event:\n%s", stream)
	}
}
