package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle position. Transitions are append-only
// events: queued → running → retrying(n) → done | failed | cancelled.
type State string

// The job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateRetrying  State = "retrying"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// An Event is one job state transition — the serve-layer analogue of a
// trace event: typed, ordered, and the only way state changes are
// communicated.
type Event struct {
	Seq     int       `json:"seq"`
	Job     string    `json:"job"`
	State   State     `json:"state"`
	Retries int       `json:"retries"`
	Shard   int       `json:"shard"` // -1 when the event is not shard-scoped
	Done    int       `json:"shards_done"`
	Total   int       `json:"shards_total"`
	Detail  string    `json:"detail,omitempty"`
	At      time.Time `json:"at"`
}

// A Job is one admitted unit of work and its full event history.
type Job struct {
	ID   string
	FP   string
	Spec JobSpec

	mu       sync.Mutex
	state    State
	detail   string
	retries  int
	resumed  int // shards pre-seeded from the journal at resume
	shards   map[int]*ShardResult
	events   []Event
	cancel   context.CancelFunc
	userStop bool // cancelled by request (vs by drain), journaled as terminal
	artifact []byte
}

// JobView is the API-facing snapshot of a job.
type JobView struct {
	ID         string  `json:"id"`
	FP         string  `json:"fp"`
	Spec       JobSpec `json:"spec"`
	State      State   `json:"state"`
	Detail     string  `json:"detail,omitempty"`
	Retries    int     `json:"retries"`
	ShardsDone int     `json:"shards_done"`
	Shards     int     `json:"shards_total"`
	Resumed    int     `json:"shards_resumed"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID: j.ID, FP: j.FP, Spec: j.Spec, State: j.state, Detail: j.detail,
		Retries: j.retries, ShardsDone: len(j.shards), Shards: j.Spec.shardCount(),
		Resumed: j.resumed,
	}
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Artifact returns the canonical artifact bytes of a done job (nil
// otherwise).
func (j *Job) Artifact() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.artifact
}

// EventsSince returns the events with Seq >= since. Pollers (and the SSE
// stream) page through the history with it; the history is append-only,
// so no event is ever missed.
func (j *Job) EventsSince(since int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if since >= len(j.events) {
		return nil
	}
	out := make([]Event, len(j.events)-since)
	copy(out, j.events[since:])
	return out
}

// transition appends a state-change event under the job lock.
func (j *Job) transition(state State, shard int, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.detail = detail
	j.events = append(j.events, Event{
		Seq: len(j.events), Job: j.ID, State: state, Retries: j.retries,
		Shard: shard, Done: len(j.shards), Total: j.Spec.shardCount(),
		Detail: detail, At: time.Now(),
	})
}

// A RejectionError is admission control saying no, with a machine-readable
// reason: bounded queues reject loudly instead of queueing into OOM.
type RejectionError struct {
	Reason string // "invalid-spec" | "queue-full" | "draining" | "journal"
	Err    error
}

func (e *RejectionError) Error() string { return fmt.Sprintf("rejected (%s): %v", e.Reason, e.Err) }
func (e *RejectionError) Unwrap() error { return e.Err }

// SchedulerConfig parameterises the control plane's core.
type SchedulerConfig struct {
	Workers         int           // concurrent jobs (default 2)
	QueueLimit      int           // bounded admission queue (default 64)
	Retry           RetryPolicy   // zero value → DefaultRetryPolicy
	Chaos           ChaosConfig   // seeded fault injection (tests, drills)
	DefaultDeadline time.Duration // per-job deadline when the spec has none (0 = none)
	Journal         *Journal      // nil → ephemeral (no crash safety)
	ArtifactsDir    string        // "" → artifacts served from memory only
}

// A Scheduler owns the job table, the bounded queue and the worker pool.
// Its robustness contract: a panicking or transiently failing shard is
// retried with backoff and never takes down the process; every completed
// shard is journaled durably before the job advances; admission beyond
// the queue bound is rejected with a typed reason.
type Scheduler struct {
	cfg SchedulerConfig

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	queue []*Job // FIFO of admitted, not-yet-running jobs
	qcond *sync.Cond

	draining bool
	baseCtx  context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup

	retries   atomic.Int64
	panics    atomic.Int64
	chaos     atomic.Int64
	backoffNs atomic.Int64
}

// NewScheduler builds a scheduler; Start launches its workers.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.Retry == (RetryPolicy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	s := &Scheduler{cfg: cfg, jobs: make(map[string]*Job)}
	s.qcond = sync.NewCond(&s.mu)
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	return s
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Submit runs admission control on spec. Accepted work is journaled,
// queued and returned; a spec whose fingerprint matches an existing job
// returns that job (idempotent resubmit). Rejections are typed
// *RejectionError values.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, &RejectionError{Reason: "invalid-spec", Err: err}
	}
	fp := spec.Fingerprint()
	id := JobID(fp)

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return j, nil
	}
	if s.draining {
		s.mu.Unlock()
		return nil, &RejectionError{Reason: "draining", Err: errors.New("server is draining; resubmit after restart")}
	}
	if depth := len(s.queue); depth >= s.cfg.QueueLimit {
		s.mu.Unlock()
		return nil, &RejectionError{Reason: "queue-full",
			Err: fmt.Errorf("queue holds %d of %d jobs", depth, s.cfg.QueueLimit)}
	}
	s.mu.Unlock()

	// The submit record is durable before the job is visible: a crash
	// after this point resumes the job, a crash before it never knew it.
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Append(Record{T: RecSubmit, Job: id, FP: fp, Spec: &spec}); err != nil {
			return nil, &RejectionError{Reason: "journal", Err: err}
		}
	}

	j := &Job{ID: id, FP: fp, Spec: spec, shards: make(map[int]*ShardResult)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[id]; ok { // lost a submit race: same fp, same work
		return existing, nil
	}
	// Re-check admission: the lock was released for the journal append, so
	// a concurrent Drain or a burst of submits may have closed the door.
	// The already-durable submit record is harmless — a -resume simply
	// re-queues the job, which is exactly what a drained checkpoint means.
	if s.draining {
		return nil, &RejectionError{Reason: "draining", Err: errors.New("server is draining; resubmit after restart")}
	}
	if depth := len(s.queue); depth >= s.cfg.QueueLimit {
		return nil, &RejectionError{Reason: "queue-full",
			Err: fmt.Errorf("queue holds %d of %d jobs", depth, s.cfg.QueueLimit)}
	}
	s.admit(j, "")
	return j, nil
}

// admit registers and enqueues a job. Caller holds s.mu.
func (s *Scheduler) admit(j *Job, detail string) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queue = append(s.queue, j)
	j.transition(StateQueued, -1, detail)
	s.qcond.Signal()
}

// Resume replays salvaged journal state into the scheduler: finished
// jobs are registered as done (artifacts rebuilt from their journaled
// shards), unfinished ones re-queued with their completed shards
// pre-seeded so only missing work re-runs. It returns the re-queued job
// count and the total number of shards skipped.
func (s *Scheduler) Resume(st *ResumeState) (requeued, skipped int, err error) {
	for _, jj := range st.Jobs {
		j := &Job{ID: jj.ID, FP: jj.FP, Spec: jj.Spec, shards: jj.Shards, resumed: len(jj.Shards)}
		// A done record only certifies the artifact when every shard record
		// survived replay: corruption may have dropped a shard while the
		// done line stayed intact, and rebuilding from the survivors would
		// serve an incomplete artifact as done. Such a job re-queues so the
		// missing shards re-run (byte-identical, by determinism).
		complete := len(jj.Shards) == jj.Spec.shardCount()
		if jj.Done && (jj.Status != string(StateDone) || complete) {
			s.mu.Lock()
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			s.mu.Unlock()
			switch jj.Status {
			case string(StateDone):
				if err := s.finalizeArtifact(j); err != nil {
					return requeued, skipped, fmt.Errorf("job %s: rebuild artifact: %w", j.ID, err)
				}
				j.transition(StateDone, -1, "resumed: already complete")
			default:
				j.transition(State(jj.Status), -1, "resumed: already terminal")
			}
			continue
		}
		detail := fmt.Sprintf("resumed: %d/%d shards already journaled", len(jj.Shards), jj.Spec.shardCount())
		if jj.Done {
			detail = fmt.Sprintf("resumed: done record present but only %d/%d shards journaled; re-running the rest",
				len(jj.Shards), jj.Spec.shardCount())
		}
		skipped += len(jj.Shards)
		requeued++
		s.mu.Lock()
		s.admit(j, detail)
		s.mu.Unlock()
	}
	return requeued, skipped, nil
}

// Job looks up a job by id.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job in submission order.
func (s *Scheduler) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Cancel stops a job: a queued job is removed from the queue, a running
// one has its context cancelled (taking effect at the next shard
// boundary). The cancellation is journaled as terminal — a cancelled job
// does not resurrect on resume.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("no job %s", id)
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		s.mu.Unlock()
		return fmt.Errorf("job %s is already %s", id, j.State())
	}
	j.userStop = true
	cancel := j.cancel
	j.mu.Unlock()
	// Only the actual removal from the queue proves no worker holds the
	// job: state may still read Queued for an instant after a worker has
	// popped it but before runJob marks it Running. In that window the
	// worker owns the job, so the cancel must ride userStop (checked by
	// runJob before the first shard and between shards), never a
	// competing terminal record here.
	removed := false
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			removed = true
			break
		}
	}
	s.mu.Unlock()

	if removed {
		s.finish(j, StateCancelled, "cancelled while queued")
		return nil
	}
	if cancel != nil {
		cancel()
	}
	return nil
}

// worker pulls jobs off the queue until the scheduler stops or drains.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining && s.baseCtx.Err() == nil {
			s.qcond.Wait()
		}
		if s.draining || s.baseCtx.Err() != nil {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob drives one job through its shards with per-shard retry,
// journaling each completed shard before moving on.
func (s *Scheduler) runJob(j *Job) {
	ctx := s.baseCtx
	deadline := time.Duration(j.Spec.DeadlineMs) * time.Millisecond
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	stopped := j.userStop
	j.mu.Unlock()
	// A Cancel that raced the dequeue saw neither a queue entry to remove
	// nor an armed cancel func; it left userStop set and returned. Honour
	// it here, before any shard runs, and again between shards.
	if stopped {
		s.finish(j, StateCancelled, "cancelled by request")
		return
	}

	j.transition(StateRunning, -1, "")
	total := j.Spec.shardCount()
	for shard := 0; shard < total; shard++ {
		j.mu.Lock()
		_, have := j.shards[shard]
		stopped := j.userStop
		j.mu.Unlock()
		if stopped {
			s.finish(j, StateCancelled, "cancelled by request")
			return
		}
		if have { // journaled by a previous life of this server
			continue
		}
		res, err := s.runShardSupervised(ctx, j, shard)
		if err != nil {
			s.failJob(j, shard, err)
			return
		}
		// Durability point: the shard result is fsync'd before the job
		// advances — kill -9 beyond this line never re-runs the shard.
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Append(Record{T: RecShard, Job: j.ID, FP: j.FP, Result: res}); err != nil {
				s.failJob(j, shard, fmt.Errorf("journal: %w", err))
				return
			}
		}
		j.mu.Lock()
		j.shards[shard] = res
		j.mu.Unlock()
		j.transition(StateRunning, shard, fmt.Sprintf("shard %d/%d done", shard+1, total))
	}
	if err := s.finalizeArtifact(j); err != nil {
		s.failJob(j, -1, fmt.Errorf("artifact: %w", err))
		return
	}
	s.finish(j, StateDone, "")
}

// runShardSupervised is the supervision + retry loop around one shard:
// panics become typed *PanicError values, transient failures back off
// and retry, permanent ones (and an exhausted retry budget) surface
// immediately.
func (s *Scheduler) runShardSupervised(ctx context.Context, j *Job, shard int) (*ShardResult, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := s.attemptShard(ctx, j, shard, attempt)
		if err == nil {
			return res, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		if _, isPanic := err.(*PanicError); isPanic { //nolint:errorlint // attemptShard returns it unwrapped
			s.panics.Add(1)
		}
		if attempt >= s.cfg.Retry.MaxRetries {
			return nil, fmt.Errorf("retry budget exhausted after %d attempts: %w", attempt+1, err)
		}
		s.retries.Add(1)
		j.mu.Lock()
		j.retries++
		j.mu.Unlock()
		backoff := s.cfg.Retry.Backoff(j.FP, shard, attempt+1)
		s.backoffNs.Add(int64(backoff))
		j.transition(StateRetrying, shard,
			fmt.Sprintf("shard %d attempt %d failed (%v); backing off %s", shard, attempt+1, err, backoff))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		j.transition(StateRunning, shard, fmt.Sprintf("shard %d retry %d", shard, attempt+1))
	}
}

// attemptShard runs one attempt with the panic supervisor armed and the
// chaos injector ahead of it.
func (s *Scheduler) attemptShard(ctx context.Context, j *Job, shard, attempt int) (res *ShardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Recovered: r, Stack: debug.Stack()}
		}
	}()
	switch s.cfg.Chaos.trip(j.FP, shard, attempt) {
	case 1:
		s.chaos.Add(1)
		return nil, Transient(errors.New("chaos: injected transient fault"))
	case 2:
		s.chaos.Add(1)
		panic("chaos: injected worker panic")
	}
	return runShard(ctx, j.Spec, shard)
}

// failJob lands a job on its terminal failure state. Context
// cancellation is split three ways: a user cancel is terminal
// "cancelled", a deadline is terminal "failed", and a drain/shutdown
// cancel leaves no terminal journal record so the job resumes next
// start.
func (s *Scheduler) failJob(j *Job, shard int, err error) {
	j.mu.Lock()
	userStop := j.userStop
	j.mu.Unlock()
	switch {
	case userStop:
		s.finish(j, StateCancelled, "cancelled by request")
	case errors.Is(err, context.DeadlineExceeded):
		s.finish(j, StateFailed, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Shutdown/drain: checkpoint (journal already holds the completed
		// shards), do not journal a terminal state.
		j.transition(StateCancelled, shard, "interrupted by drain; resumable")
	default:
		s.finish(j, StateFailed, err.Error())
	}
}

// finish journals and records a terminal state.
func (s *Scheduler) finish(j *Job, state State, detail string) {
	if s.cfg.Journal != nil {
		// Best-effort: a missed done record degrades to re-running zero
		// shards on resume (all are journaled), never to data loss.
		_ = s.cfg.Journal.Append(Record{T: RecDone, Job: j.ID, Status: string(state)})
	}
	j.transition(state, -1, detail)
}

// finalizeArtifact renders and (when configured) persists the canonical
// artifact.
func (s *Scheduler) finalizeArtifact(j *Job) error {
	j.mu.Lock()
	art := NewArtifact(j.Spec, j.FP, j.shards)
	j.mu.Unlock()
	b, err := art.MarshalCanonical()
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.artifact = b
	j.mu.Unlock()
	if s.cfg.ArtifactsDir != "" {
		return writeArtifactFile(s.cfg.ArtifactsDir, j.ID, b)
	}
	return nil
}

// DrainSummary is the graceful-shutdown report.
type DrainSummary struct {
	Done           int   `json:"done"`
	Failed         int   `json:"failed"`
	Cancelled      int   `json:"cancelled"`
	Checkpointed   int   `json:"checkpointed"`    // queued jobs left for -resume
	ForceCancelled int   `json:"force_cancelled"` // in-flight jobs cancelled at the drain deadline
	Retries        int64 `json:"retries"`
	Panics         int64 `json:"panics_recovered"`
	ChaosInjected  int64 `json:"chaos_injected"`
	BackoffTotalMs int64 `json:"backoff_total_ms"`
	DrainMs        int64 `json:"drain_ms"`
}

// Drain gracefully shuts the scheduler down: admission closes, queued
// jobs are checkpointed for resume, and in-flight jobs get up to timeout
// to finish before their contexts are cancelled. It returns the drain
// summary; the scheduler is spent afterwards.
func (s *Scheduler) Drain(timeout time.Duration) DrainSummary {
	start := time.Now()
	s.mu.Lock()
	s.draining = true
	checkpointed := len(s.queue)
	for _, j := range s.queue {
		j.transition(StateQueued, -1, "checkpointed: queued for resume")
	}
	s.queue = nil
	running := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if !j.State().Terminal() && j.State() != StateQueued {
			running = append(running, j)
		}
	}
	s.qcond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := 0
	select {
	case <-done:
	case <-time.After(timeout):
		// Deadline: cancel in-flight jobs (effective at the next shard or
		// retry boundary — every shard is bounded work) and wait them out.
		for _, j := range running {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil && !j.State().Terminal() {
				forced++
				cancel()
			}
		}
		s.stop()
		<-done
	}

	sum := DrainSummary{
		Checkpointed:   checkpointed,
		ForceCancelled: forced,
		Retries:        s.retries.Load(),
		Panics:         s.panics.Load(),
		ChaosInjected:  s.chaos.Load(),
		BackoffTotalMs: s.backoffNs.Load() / 1e6,
		DrainMs:        time.Since(start).Milliseconds(),
	}
	for _, v := range s.Jobs() {
		switch v.State {
		case StateDone:
			sum.Done++
		case StateFailed:
			sum.Failed++
		case StateCancelled:
			sum.Cancelled++
		case StateQueued:
			// counted via Checkpointed
		}
	}
	return sum
}

// Stop hard-stops the scheduler (tests); prefer Drain.
func (s *Scheduler) Stop() {
	s.stop()
	s.mu.Lock()
	s.qcond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
