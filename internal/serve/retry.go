package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// A TransientError marks a failure worth retrying: the same attempt may
// succeed next time (a flaky worker, an injected chaos fault, a resource
// blip). Anything not transient is permanent — the simulators are
// deterministic, so a sim error that happened once will happen every
// time, and retrying it is a hot loop around a certainty.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// A PanicError is a worker panic recovered by the supervisor: the job
// survives as a typed error instead of the panic taking down the
// process. It is classified transient — a panicked worker is the failure
// mode supervision exists for, and the shard is re-queued with backoff
// until the retry budget rules it permanent.
type PanicError struct {
	Recovered any
	Stack     []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panicked: %v", e.Recovered) }

// IsTransient is the permanent-failure classifier: true only for
// explicitly transient errors and recovered panics. Deterministic
// failures — scenario generation errors, infeasible allocations, context
// cancellation — classify permanent and fail fast instead of looping.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *TransientError
	var pe *PanicError
	return errors.As(err, &te) || errors.As(err, &pe)
}

// A RetryPolicy shapes the exponential backoff between attempts of a
// transient-failed shard: Base doubles per retry up to Max, plus up to
// Jitter() of seeded jitter so a thundering herd of retries decorrelates
// deterministically (same seed, same schedule — retry timing is part of
// the reproducible record).
type RetryPolicy struct {
	MaxRetries int           // retry budget per shard (beyond the first attempt)
	Base       time.Duration // first backoff
	Max        time.Duration // backoff ceiling
	JitterSeed int64         // seeds the deterministic jitter hash
}

// DefaultRetryPolicy is the documented policy: 3 retries, 50 ms base,
// 2 s ceiling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Base: 50 * time.Millisecond, Max: 2 * time.Second, JitterSeed: 1}
}

// Backoff returns the delay before retry attempt (1-based), for the
// given job/shard identity: Base·2^(attempt-1) capped at Max, plus a
// deterministic jitter in [0, delay/2).
func (p RetryPolicy) Backoff(fp string, shard, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base << uint(attempt-1)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	if d <= 0 {
		return 0
	}
	// Seeded FNV over the shard identity: decorrelated across shards,
	// identical across runs.
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", p.JitterSeed, fp, shard, attempt)
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d + jitter
}

// A ChaosConfig injects seeded failures ahead of shard execution — the
// fault-campaign discipline (internal/fault) applied to the control
// plane itself. At Rate, an attempt fails before the simulator runs:
// even attempts as a transient error, odd ones as a genuine worker panic
// (exercising the supervisor). Injection is pre-execution, so results
// are never corrupted — a chaos campaign must complete with byte-
// identical artifacts, just more slowly.
type ChaosConfig struct {
	Rate float64 // per-attempt injection probability (0 disables)
	Seed int64
}

// trip decides deterministically whether to inject a failure into this
// attempt, and which kind: 0 none, 1 transient error, 2 panic.
func (c ChaosConfig) trip(fp string, shard, attempt int) int {
	if c.Rate <= 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", c.Seed, fp, shard, attempt)
	v := h.Sum64()
	if float64(v%1_000_000)/1e6 >= c.Rate {
		return 0
	}
	return 1 + int((v/1_000_000)%2)
}
