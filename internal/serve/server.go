package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// Server is the HTTP face of the scheduler: a small JSON API plus an SSE
// stream of job state transitions. All state lives in the scheduler and
// its journal; the server is stateless and safe to kill at any time.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux

	// StreamWriteTimeout bounds each SSE write. A client that stops
	// reading (full TCP send buffer) would otherwise pin the streaming
	// goroutine forever; at the deadline the stream is torn down instead,
	// and the client resyncs on reconnect via Last-Event-ID. Zero
	// disables the deadline.
	StreamWriteTimeout time.Duration
}

// NewServer wires the API routes around a scheduler.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux(), StreamWriteTimeout: 10 * time.Second}
	srv.mux.HandleFunc("GET /healthz", srv.health)
	srv.mux.HandleFunc("POST /api/jobs", srv.submit)
	srv.mux.HandleFunc("GET /api/jobs", srv.list)
	srv.mux.HandleFunc("GET /api/jobs/{id}", srv.get)
	srv.mux.HandleFunc("POST /api/jobs/{id}/cancel", srv.cancel)
	srv.mux.HandleFunc("GET /api/jobs/{id}/artifact", srv.artifact)
	srv.mux.HandleFunc("GET /api/jobs/{id}/events", srv.events)
	return srv
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// submit admits a job. Rejections map the admission reason onto HTTP:
// invalid-spec → 400, queue-full → 429, draining → 503, journal → 500.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err), Reason: "invalid-spec"})
		return
	}
	j, err := s.sched.Submit(spec)
	if err != nil {
		var rej *RejectionError
		status := http.StatusInternalServerError
		reason := ""
		if errors.As(err, &rej) {
			reason = rej.Reason
			switch rej.Reason {
			case "invalid-spec":
				status = http.StatusBadRequest
			case "queue-full":
				status = http.StatusTooManyRequests
			case "draining":
				status = http.StatusServiceUnavailable
			}
		}
		writeJSON(w, status, apiError{Error: err.Error(), Reason: reason})
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.sched.Jobs()})
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	j, _ := s.sched.Job(id)
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) artifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	b := j.Artifact()
	if b == nil {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job is %s; the artifact exists once it is done", j.State())})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// events streams the job's state transitions as server-sent events. The
// event history is append-only and replayed from the start, so a client
// connecting late sees the full lifecycle; the stream closes after the
// terminal event. Every event carries its sequence number as the SSE
// id, and a reconnecting client's Last-Event-ID resumes the replay just
// past what it saw — so even a stream torn down mid-flight (stalled
// reader hitting the write deadline, dropped connection) loses nothing:
// the resynced stream runs gaplessly through the terminal event.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	next := 0
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		if n, err := strconv.Atoi(lid); err == nil && n >= 0 {
			next = n + 1
		}
	}
	rc := http.NewResponseController(w)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		evs := j.EventsSince(next)
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			// A stalled client must not pin this goroutine: each write
			// races a deadline, and a timed-out stream is torn down. The
			// client reconnects with Last-Event-ID and still observes
			// every event it missed, the terminal one included.
			if s.StreamWriteTimeout > 0 {
				if err := rc.SetWriteDeadline(time.Now().Add(s.StreamWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
					return
				}
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: state\ndata: %s\n\n", ev.Seq, b); err != nil {
				return
			}
			next = ev.Seq + 1
		}
		if len(evs) > 0 {
			fl.Flush()
			if evs[len(evs)-1].State.Terminal() {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

// writeArtifactFile persists an artifact atomically: rendered to a temp
// file, fsync'd, then renamed into place, so a crash never leaves a
// half-written artifact at the published path.
func writeArtifactFile(dir, jobID string, b []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, jobID+".json")
	tmp, err := os.CreateTemp(dir, "."+jobID+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is synced.
	return syncDir(dir)
}
