package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestIsTransientClassifier(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain deterministic error", errors.New("infeasible allocation"), false},
		{"context cancelled", context.Canceled, false},
		{"context deadline", context.DeadlineExceeded, false},
		{"wrapped cancellation", Transient(context.Canceled), false},
		{"marked transient", Transient(errors.New("blip")), true},
		{"recovered panic", &PanicError{Recovered: "boom"}, true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("%s: IsTransient = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := DefaultRetryPolicy()
	prevBase := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.Backoff("fp", 0, attempt)
		d2 := p.Backoff("fp", 0, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %s vs %s", attempt, d1, d2)
		}
		if d1 > p.Max+p.Max/2 {
			t.Fatalf("attempt %d: backoff %s exceeds ceiling %s + jitter", attempt, d1, p.Max)
		}
		base := p.Base << uint(attempt-1)
		if base > p.Max || base <= 0 {
			base = p.Max
		}
		if d1 < base {
			t.Fatalf("attempt %d: backoff %s below base %s", attempt, d1, base)
		}
		if base < prevBase {
			t.Fatalf("attempt %d: base shrank", attempt)
		}
		prevBase = base
	}
	if a, b := p.Backoff("fp", 0, 1), p.Backoff("fp", 1, 1); a == b {
		t.Fatal("jitter identical across shards; want decorrelation")
	}
}

func TestChaosTripDeterministicAndOff(t *testing.T) {
	off := ChaosConfig{}
	for i := 0; i < 10; i++ {
		if off.trip("fp", i, 0) != 0 {
			t.Fatal("disabled chaos tripped")
		}
	}
	on := ChaosConfig{Rate: 0.5, Seed: 7}
	saw := map[int]bool{}
	for shard := 0; shard < 64; shard++ {
		v := on.trip("fp", shard, 0)
		if v != on.trip("fp", shard, 0) {
			t.Fatal("chaos trip not deterministic")
		}
		saw[v] = true
	}
	if !saw[0] || (!saw[1] && !saw[2]) {
		t.Fatalf("rate 0.5 over 64 attempts saw %v; want both outcomes", saw)
	}
}
