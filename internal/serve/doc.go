// Package serve is the crash-safe simulation control plane: an HTTP/JSON
// API (Server) over a supervised job scheduler (Scheduler) with a
// fsync'd append-only journal (Journal) underneath.
//
// The robustness contract, in the paper's spirit of composable and
// predictable services, is that the control plane's own behaviour is as
// predictable as the network it simulates:
//
//   - Admission is bounded and typed: a full queue or a draining server
//     rejects with a machine-readable reason (*RejectionError), never by
//     queueing unboundedly.
//   - Workers are supervised: a panicking shard becomes a typed
//     *PanicError, is retried with deterministic exponential backoff
//     (RetryPolicy), and never takes down the process. Deterministic
//     failures classify permanent (IsTransient) and fail fast.
//   - Completed shards are journaled durably (fsync per record) before
//     the job advances. After kill -9, ReplayJournal salvages the state
//     — reporting every defect as a typed *CorruptionError, never
//     dropping valid work silently — and Scheduler.Resume re-runs only
//     the missing shards. Because shard results carry no wall-clock
//     fields, an interrupted-and-resumed campaign renders an artifact
//     byte-identical to an uninterrupted one.
//   - SIGTERM drains gracefully: in-flight jobs finish (up to a
//     deadline), queued jobs checkpoint for resume, and Drain reports a
//     summary with retry/panic/chaos counters.
//
// ChaosConfig injects seeded pre-execution faults so the retry and
// supervision paths are routinely exercised without ever corrupting
// results.
package serve
