// Package topology describes the static structure of a network on chip:
// routers, network interfaces (NI) and the directed links between their
// ports.
//
// Conventions:
//
//   - Every node (router or NI) has consecutively numbered ports. A
//     router's arity is its port count. On mesh routers ports 0..3 are the
//     North, East, South and West neighbours and ports 4.. attach NIs
//     (a "concentrated" topology when more than one NI shares a router, as
//     in the paper's 4x3 mesh with 4 NIs per router).
//   - A Link is unidirectional and connects an output port of one node to
//     an input port of another. Bidirectional connectivity is two links.
//   - Links may carry pipeline stages (the mesochronous link pipeline
//     stages of paper Section V); each stage delays a flit by exactly one
//     flit cycle, which shifts TDM reservations by one extra slot.
//
// Cross-package contract: NewMesh's node naming and port numbering are
// relied on by route's dimension-ordered routers and by the NI-index
// mapping scenario and spec use; LinkIDs are the keys of every slot
// claim in internal/slots.
package topology
