package topology

import "testing"

func TestGraphBasics(t *testing.T) {
	g := New()
	r := g.AddNode(Router, "r", 3)
	n := g.AddNode(NI, "n", 1)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	l1, l2 := g.ConnectBidir(n, 0, r, 2)
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
	if g.OutLink(n, 0) != l1 || g.InLink(r, 2) != l1 {
		t.Error("forward link misconnected")
	}
	if g.OutLink(r, 2) != l2 || g.InLink(n, 0) != l2 {
		t.Error("reverse link misconnected")
	}
	if g.OutLink(r, 0) != Invalid {
		t.Error("unconnected port should be Invalid")
	}
	if g.OutLink(r, 99) != Invalid {
		t.Error("out-of-range port should be Invalid")
	}
	lk := g.Link(l1)
	if lk.From != n || lk.To != r || lk.ToPort != 2 {
		t.Errorf("link = %+v", lk)
	}
	if got := g.Node(r).Name; got != "r" {
		t.Errorf("Node name = %q", got)
	}
}

func TestConnectPanics(t *testing.T) {
	cases := map[string]func(g *Graph, r, n NodeID){
		"bad from port": func(g *Graph, r, n NodeID) { g.Connect(r, 9, n, 0) },
		"bad to port":   func(g *Graph, r, n NodeID) { g.Connect(r, 0, n, 9) },
		"double out": func(g *Graph, r, n NodeID) {
			g.Connect(r, 0, n, 0)
			g.Connect(r, 0, n, 0)
		},
	}
	for name, f := range cases {
		g := New()
		r := g.AddNode(Router, "r", 2)
		n := g.AddNode(NI, "n", 1)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f(g, r, n)
		}()
	}
}

func TestAddNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero ports")
		}
	}()
	New().AddNode(Router, "r", 0)
}

func TestMeshStructure(t *testing.T) {
	m := NewMesh(4, 3, 4)
	if got := len(m.Routers()); got != 12 {
		t.Errorf("routers = %d, want 12", got)
	}
	if got := len(m.NIs()); got != 48 {
		t.Errorf("NIs = %d, want 48", got)
	}
	// Mesh links: horizontal 3*3*2 + vertical 4*2*2 = 18+16 = 34;
	// NI links: 48*2 = 96.
	if got := m.NumLinks(); got != 130 {
		t.Errorf("links = %d, want 130", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Router arity = 4 mesh + 4 NI ports.
	r := m.Node(m.RouterAt(1, 1))
	if r.Ports != 8 {
		t.Errorf("router ports = %d", r.Ports)
	}
	if r.X != 1 || r.Y != 1 {
		t.Errorf("router coords = %d,%d", r.X, r.Y)
	}
	// Interior router has all mesh ports connected; corner does not.
	for p := 0; p < 4; p++ {
		if m.OutLink(m.RouterAt(1, 1), p) == Invalid {
			t.Errorf("interior router missing mesh port %d", p)
		}
	}
	if m.OutLink(m.RouterAt(0, 0), North) != Invalid || m.OutLink(m.RouterAt(0, 0), West) != Invalid {
		t.Error("corner router has links off the mesh edge")
	}
	// NI attachment.
	ni := m.Node(m.NIAt(2, 1, 3))
	if ni.Router != m.RouterAt(2, 1) {
		t.Error("NI attached to wrong router")
	}
	if got := len(m.AllNIs()); got != 48 {
		t.Errorf("AllNIs = %d", got)
	}
}

func TestMeshNeighbours(t *testing.T) {
	m := NewMesh(3, 3, 1)
	r11 := m.RouterAt(1, 1)
	east := m.Link(m.OutLink(r11, East)).To
	if m.Node(east).X != 2 || m.Node(east).Y != 1 {
		t.Errorf("east neighbour at (%d,%d)", m.Node(east).X, m.Node(east).Y)
	}
	south := m.Link(m.OutLink(r11, South)).To
	if m.Node(south).X != 1 || m.Node(south).Y != 2 {
		t.Errorf("south neighbour at (%d,%d)", m.Node(south).X, m.Node(south).Y)
	}
}

func TestPipelineStages(t *testing.T) {
	m := NewMesh(2, 2, 1)
	m.SetMeshPipelineStages(2)
	meshLinks, niLinks := 0, 0
	for _, l := range m.Links() {
		routerToRouter := m.Node(l.From).Kind == Router && m.Node(l.To).Kind == Router
		if routerToRouter {
			meshLinks++
			if l.PipelineStages != 2 {
				t.Errorf("mesh link %d has %d stages", l.ID, l.PipelineStages)
			}
		} else {
			niLinks++
			if l.PipelineStages != 0 {
				t.Errorf("NI link %d has %d stages", l.ID, l.PipelineStages)
			}
		}
	}
	if meshLinks != 8 || niLinks != 8 {
		t.Errorf("mesh/NI links = %d/%d", meshLinks, niLinks)
	}
	m.SetAllPipelineStages(1)
	for _, l := range m.Links() {
		if l.PipelineStages != 1 {
			t.Errorf("link %d has %d stages after SetAll", l.ID, l.PipelineStages)
		}
	}
}

func TestMeshPanics(t *testing.T) {
	m := NewMesh(2, 2, 1)
	for name, f := range map[string]func(){
		"bad mesh":     func() { NewMesh(0, 2, 1) },
		"no NIs":       func() { NewMesh(2, 2, 0) },
		"router range": func() { m.RouterAt(5, 0) },
		"ni range":     func() { m.NIAt(0, 0, 7) },
		"neg stages":   func() { m.SetPipelineStages(0, -1) },
		"bad node":     func() { m.Node(-1) },
		"bad link":     func() { m.Link(LinkID(999)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if Router.String() != "router" || NI.String() != "NI" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string")
	}
}
