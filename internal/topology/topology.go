package topology

import "fmt"

// NodeID identifies a node within a Graph.
type NodeID int

// LinkID identifies a link within a Graph.
type LinkID int

// Invalid marks an absent node or link reference.
const Invalid = -1

// Kind distinguishes node types.
type Kind uint8

const (
	// Router is an aelite (or baseline) router.
	Router Kind = iota
	// NI is a network interface connecting IPs to the network.
	NI
)

func (k Kind) String() string {
	switch k {
	case Router:
		return "router"
	case NI:
		return "NI"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Mesh directions for router ports 0..3.
const (
	North = 0
	East  = 1
	South = 2
	West  = 3
	// NIPortBase is the first router port used for NI attachment on
	// mesh routers.
	NIPortBase = 4
)

// A Node is a router or NI.
type Node struct {
	ID    NodeID
	Kind  Kind
	Name  string
	Ports int // number of ports (router arity, or NI network ports)

	// X, Y are mesh coordinates for routers created by NewMesh;
	// -1 otherwise.
	X, Y int

	// Router is, for an NI, the router it attaches to; Invalid for
	// routers.
	Router NodeID

	out []LinkID // per output port, Invalid if unconnected
	in  []LinkID // per input port, Invalid if unconnected
}

// A Link is a unidirectional connection from (From, FromPort) to
// (To, ToPort).
type Link struct {
	ID       LinkID
	From     NodeID
	FromPort int
	To       NodeID
	ToPort   int

	// PipelineStages is the number of mesochronous link pipeline stages
	// on this link. Each stage adds one flit cycle of latency and one
	// slot of TDM shift.
	PipelineStages int
}

// A Graph is an immutable-after-construction NoC topology.
type Graph struct {
	nodes []Node
	links []Link
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node with the given kind, name and port count and
// returns its id.
func (g *Graph) AddNode(kind Kind, name string, ports int) NodeID {
	if ports <= 0 {
		panic(fmt.Sprintf("topology: node %q must have at least one port", name))
	}
	id := NodeID(len(g.nodes))
	n := Node{ID: id, Kind: kind, Name: name, Ports: ports, X: -1, Y: -1, Router: Invalid,
		out: make([]LinkID, ports), in: make([]LinkID, ports)}
	for i := range n.out {
		n.out[i] = Invalid
		n.in[i] = Invalid
	}
	g.nodes = append(g.nodes, n)
	return id
}

// Connect adds a unidirectional link and returns its id. It panics if
// either port is out of range or already connected in that direction:
// topologies are built once, so misconnection is a programming error.
func (g *Graph) Connect(from NodeID, fromPort int, to NodeID, toPort int) LinkID {
	f, t := g.node(from), g.node(to)
	if fromPort < 0 || fromPort >= f.Ports {
		panic(fmt.Sprintf("topology: %s has no output port %d", f.Name, fromPort))
	}
	if toPort < 0 || toPort >= t.Ports {
		panic(fmt.Sprintf("topology: %s has no input port %d", t.Name, toPort))
	}
	if f.out[fromPort] != Invalid {
		panic(fmt.Sprintf("topology: %s output port %d already connected", f.Name, fromPort))
	}
	if t.in[toPort] != Invalid {
		panic(fmt.Sprintf("topology: %s input port %d already connected", t.Name, toPort))
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, FromPort: fromPort, To: to, ToPort: toPort})
	f.out[fromPort] = id
	t.in[toPort] = id
	return id
}

// ConnectBidir adds links in both directions using the same port number on
// each side and returns the two link ids (a->b, b->a).
func (g *Graph) ConnectBidir(a NodeID, aPort int, b NodeID, bPort int) (LinkID, LinkID) {
	return g.Connect(a, aPort, b, bPort), g.Connect(b, bPort, a, aPort)
}

// SetAllPipelineStages sets the pipeline-stage count on every link (used
// by the asynchronous-wrapper mode, where each hop advances the flit by a
// uniform number of dataflow iterations).
func (g *Graph) SetAllPipelineStages(stages int) {
	for i := range g.links {
		g.SetPipelineStages(g.links[i].ID, stages)
	}
}

// SetPipelineStages sets the number of link pipeline stages on a link.
func (g *Graph) SetPipelineStages(l LinkID, stages int) {
	if stages < 0 {
		panic("topology: negative pipeline stage count")
	}
	g.links[l].PipelineStages = stages
}

func (g *Graph) node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("topology: no node %d", id))
	}
	return &g.nodes[id]
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return *g.node(id) }

// Link returns the link with the given id.
func (g *Graph) Link(id LinkID) Link {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("topology: no link %d", id))
	}
	return g.links[id]
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Nodes returns a copy of all nodes.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	for i := range g.nodes {
		out[i] = g.nodes[i]
	}
	return out
}

// Links returns a copy of all links.
func (g *Graph) Links() []Link {
	return append([]Link(nil), g.links...)
}

// OutLink returns the link leaving the node's output port, or Invalid.
func (g *Graph) OutLink(n NodeID, port int) LinkID {
	node := g.node(n)
	if port < 0 || port >= node.Ports {
		return Invalid
	}
	return node.out[port]
}

// InLink returns the link entering the node's input port, or Invalid.
func (g *Graph) InLink(n NodeID, port int) LinkID {
	node := g.node(n)
	if port < 0 || port >= node.Ports {
		return Invalid
	}
	return node.in[port]
}

// Routers returns the ids of all router nodes in id order.
func (g *Graph) Routers() []NodeID { return g.byKind(Router) }

// NIs returns the ids of all NI nodes in id order.
func (g *Graph) NIs() []NodeID { return g.byKind(NI) }

func (g *Graph) byKind(k Kind) []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if g.nodes[i].Kind == k {
			out = append(out, g.nodes[i].ID)
		}
	}
	return out
}

// Validate checks structural sanity: every NI is attached to a router,
// every link endpoint exists, and mesh routers have consistent back-links.
func (g *Graph) Validate() error {
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Kind == NI {
			if n.Router == Invalid {
				return fmt.Errorf("topology: NI %s not attached to a router", n.Name)
			}
			if g.nodes[n.Router].Kind != Router {
				return fmt.Errorf("topology: NI %s attached to non-router %s", n.Name, g.nodes[n.Router].Name)
			}
		}
	}
	for _, l := range g.links {
		if g.node(l.From).out[l.FromPort] != l.ID || g.node(l.To).in[l.ToPort] != l.ID {
			return fmt.Errorf("topology: link %d has inconsistent port back-references", l.ID)
		}
	}
	return nil
}
