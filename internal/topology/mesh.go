package topology

import "fmt"

// A Mesh is a 2-D mesh of routers with NIs concentrated on each router,
// the topology used throughout the paper's evaluation (Section VII uses a
// 4x3 mesh with 4 NIs per router).
type Mesh struct {
	*Graph
	Cols, Rows   int
	NIsPerRouter int

	routers [][]NodeID // [col][row]
	nis     [][]NodeID // [router index][ni index]
}

// NewMesh builds a cols x rows mesh with n NIs attached to every router.
// Router arity is 4 + n (mesh ports North/East/South/West plus one port
// per NI); border routers leave their outward mesh ports unconnected, as
// in hardware. NIs have a single network port (port 0).
func NewMesh(cols, rows, nisPerRouter int) *Mesh {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", cols, rows))
	}
	if nisPerRouter <= 0 {
		panic("topology: mesh needs at least one NI per router")
	}
	m := &Mesh{Graph: New(), Cols: cols, Rows: rows, NIsPerRouter: nisPerRouter}
	m.routers = make([][]NodeID, cols)
	for x := 0; x < cols; x++ {
		m.routers[x] = make([]NodeID, rows)
		for y := 0; y < rows; y++ {
			id := m.AddNode(Router, fmt.Sprintf("R%d.%d", x, y), 4+nisPerRouter)
			n := m.node(id)
			n.X, n.Y = x, y
			m.routers[x][y] = id
		}
	}
	// Mesh links. North decreases y, South increases y (screen
	// coordinates); East increases x.
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			r := m.routers[x][y]
			if x+1 < cols {
				m.Connect(r, East, m.routers[x+1][y], West)
				m.Connect(m.routers[x+1][y], West, r, East)
			}
			if y+1 < rows {
				m.Connect(r, South, m.routers[x][y+1], North)
				m.Connect(m.routers[x][y+1], North, r, South)
			}
		}
	}
	// NIs.
	m.nis = make([][]NodeID, cols*rows)
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			r := m.routers[x][y]
			idx := x*rows + y
			for k := 0; k < nisPerRouter; k++ {
				ni := m.AddNode(NI, fmt.Sprintf("NI%d.%d.%d", x, y, k), 1)
				nn := m.node(ni)
				nn.Router = r
				m.Connect(ni, 0, r, NIPortBase+k)
				m.Connect(r, NIPortBase+k, ni, 0)
				m.nis[idx] = append(m.nis[idx], ni)
			}
		}
	}
	return m
}

// RouterAt returns the router at mesh coordinate (x, y).
func (m *Mesh) RouterAt(x, y int) NodeID {
	if x < 0 || x >= m.Cols || y < 0 || y >= m.Rows {
		panic(fmt.Sprintf("topology: no router at (%d,%d) in %dx%d mesh", x, y, m.Cols, m.Rows))
	}
	return m.routers[x][y]
}

// NIAt returns the k-th NI of the router at (x, y).
func (m *Mesh) NIAt(x, y, k int) NodeID {
	r := m.RouterAt(x, y) // bounds check
	_ = r
	idx := x*m.Rows + y
	if k < 0 || k >= m.NIsPerRouter {
		panic(fmt.Sprintf("topology: router (%d,%d) has no NI %d", x, y, k))
	}
	return m.nis[idx][k]
}

// AllNIs returns every NI in deterministic (router-major) order.
func (m *Mesh) AllNIs() []NodeID {
	var out []NodeID
	for _, group := range m.nis {
		out = append(out, group...)
	}
	return out
}

// SetMeshPipelineStages puts the given number of link pipeline stages on
// every router-to-router link (NI links stay direct, matching the paper's
// placement of link pipeline stages on long inter-router wires).
func (m *Mesh) SetMeshPipelineStages(stages int) {
	for _, l := range m.links {
		if m.nodes[l.From].Kind == Router && m.nodes[l.To].Kind == Router {
			m.SetPipelineStages(l.ID, stages)
		}
	}
}
