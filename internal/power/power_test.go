package power

import (
	"strings"
	"testing"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/slots"
	"repro/internal/topology"
)

// alloc builds a small allocation: one connection with `count` slots from
// NI(0,0,0) to NI(1,0,0) over a 2x1 mesh.
func alloc(t *testing.T, count, tableSize int) (*topology.Mesh, *slots.Allocation) {
	t.Helper()
	m := topology.NewMesh(2, 1, 1)
	paths, err := route.Candidates(m, m.NIAt(0, 0, 0), m.NIAt(1, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := slots.Allocate(tableSize, []slots.Request{
		{Conn: phit.ConnID(1), Paths: paths, Count: count},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

func TestAnalyzeBasics(t *testing.T) {
	m, a := alloc(t, 2, 8)
	rep := Analyze(m, a, 32, 500)
	if len(rep.Routers) != 2 {
		t.Fatalf("routers = %d", len(rep.Routers))
	}
	for _, r := range rep.Routers {
		if r.IdleUW <= 0 {
			t.Errorf("%s idle power %v", r.Name, r.IdleUW)
		}
		// 2 of 8 slots carry flits, but a flit wakes its router in
		// both its arrival and its (shifted) departure slot: awake
		// fraction 4/8.
		if r.AwakeFraction != 0.5 {
			t.Errorf("%s awake fraction %v, want 0.5", r.Name, r.AwakeFraction)
		}
		if r.SleepUW >= r.IdleUW {
			t.Errorf("%s sleep power %v not below idle %v", r.Name, r.SleepUW, r.IdleUW)
		}
		want := r.IdleUW * (0.5 + 0.5*SleepResidual)
		if d := r.SleepUW - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s sleep power %v, want %v", r.Name, r.SleepUW, want)
		}
		if r.DynamicUW <= 0 {
			t.Errorf("%s zero dynamic power with traffic", r.Name)
		}
		if r.TotalUW() != r.SleepUW+r.DynamicUW {
			t.Error("TotalUW inconsistent")
		}
	}
	// Saving = 1 - (0.5 + 0.5*residual) = 0.425 at this load.
	if rep.SavingFraction < 0.4 || rep.SavingFraction > 0.45 {
		t.Errorf("saving fraction %v, want ~0.425", rep.SavingFraction)
	}
	if !strings.Contains(rep.String(), "sleep") {
		t.Error("String() lacks summary")
	}
}

func TestAnalyzeIdleNetworkSleepsFully(t *testing.T) {
	m := topology.NewMesh(2, 1, 1)
	a := slots.NewAllocation(8) // nothing allocated
	rep := Analyze(m, a, 32, 500)
	for _, r := range rep.Routers {
		if r.AwakeFraction != 0 {
			t.Errorf("%s awake %v with no traffic", r.Name, r.AwakeFraction)
		}
		want := r.IdleUW * SleepResidual
		if d := r.SleepUW - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s sleeping power %v, want residual %v", r.Name, r.SleepUW, want)
		}
		if r.DynamicUW != 0 {
			t.Errorf("%s dynamic power %v with no traffic", r.Name, r.DynamicUW)
		}
	}
	if rep.SavingFraction < 0.84 {
		t.Errorf("saving %v, want 1-SleepResidual", rep.SavingFraction)
	}
}

func TestAnalyzeSaturatedRouterNeverSleeps(t *testing.T) {
	m, a := alloc(t, 8, 8) // every slot owned
	rep := Analyze(m, a, 32, 500)
	for _, r := range rep.Routers {
		if r.AwakeFraction != 1 {
			t.Errorf("%s awake %v with a saturated link", r.Name, r.AwakeFraction)
		}
		if r.SleepUW != r.IdleUW {
			t.Errorf("%s sleep power %v should equal idle %v at full load", r.Name, r.SleepUW, r.IdleUW)
		}
	}
	if rep.SavingFraction != 0 {
		t.Errorf("saving %v on a saturated network", rep.SavingFraction)
	}
}

func TestFrequencyScaling(t *testing.T) {
	m, a := alloc(t, 2, 8)
	lo := Analyze(m, a, 32, 250)
	hi := Analyze(m, a, 32, 500)
	// Idle power scales superlinearly with f (area also grows near
	// fmax), at least linearly here.
	if hi.IdleUW < 1.9*lo.IdleUW {
		t.Errorf("idle power %v -> %v; expected ~2x from 250 to 500 MHz", lo.IdleUW, hi.IdleUW)
	}
	if hi.DynamicUW < 1.9*lo.DynamicUW {
		t.Errorf("dynamic power %v -> %v", lo.DynamicUW, hi.DynamicUW)
	}
}
