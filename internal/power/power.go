package power

import (
	"fmt"
	"sort"

	"repro/internal/area"
	"repro/internal/phit"
	"repro/internal/slots"
	"repro/internal/topology"
)

// Calibration constants (90 nm low power).
const (
	// IdlePowerDensity is clock+register idle power per µm² of cell
	// area at 500 MHz, in µW/µm². ~0.015 gives ~215 µW for the
	// 14.3 kµm² arity-5 router — in line with published 90 nm NoC
	// router figures (fractions of a mW idle).
	IdlePowerDensity = 0.015
	// ReferenceMHz is the frequency the density is quoted at; idle
	// power scales linearly with frequency.
	ReferenceMHz = 500.0
	// WordEnergyPJ is the dynamic energy per 32-bit word traversing one
	// router (switch, wiring); ~1 pJ/word/hop at 90 nm.
	WordEnergyPJ = 1.0
	// LinkStageWordEnergyPJ is the dynamic energy per word through a
	// mesochronous link pipeline stage (FIFO write + read).
	LinkStageWordEnergyPJ = 0.4
	// SleepResidual is the fraction of idle power a sleeping router
	// still burns (wake logic, leakage).
	SleepResidual = 0.15
)

// RouterReport is the power breakdown of one router.
type RouterReport struct {
	Router topology.NodeID
	Name   string
	// AwakeFraction is the fraction of TDM slots in which at least one
	// link through this router carries a reservation (the router must
	// be clocked then; in every other slot it may sleep — the schedule
	// guarantees nothing arrives).
	AwakeFraction float64
	// IdleUW is the always-on clock power without sleep modes, µW.
	IdleUW float64
	// SleepUW is the clock power with per-slot clock gating, µW.
	SleepUW float64
	// DynamicUW is the traffic-dependent switching power at the
	// allocated (guaranteed) load, µW.
	DynamicUW float64
}

// TotalUW returns the router's power with sleep modes enabled.
func (r RouterReport) TotalUW() float64 { return r.SleepUW + r.DynamicUW }

// NetworkReport aggregates the mesh.
type NetworkReport struct {
	Routers []RouterReport
	// Totals in µW.
	IdleUW, SleepUW, DynamicUW float64
	// SavingFraction is 1 - with-sleep/always-on for the clock power.
	SavingFraction float64
}

// Analyze computes the power report for an allocated network: arityOf
// gives each router's port count (for the area model), widthBits the
// data width and fMHz the operating frequency. Traffic is taken at the
// allocation's guaranteed load — the upper bound the schedule admits.
func Analyze(m *topology.Mesh, alloc *slots.Allocation, widthBits int, fMHz float64) *NetworkReport {
	rep := &NetworkReport{}
	freqScale := fMHz / ReferenceMHz
	for _, r := range m.Routers() {
		node := m.Node(r)
		a := area.RouterArea(node.Ports, widthBits, fMHz)
		idle := IdlePowerDensity * a * freqScale

		// Awake slots: union over all links touching the router of
		// their occupied slots, shifted to the router's local frame.
		// A router must be awake in slot s when an input delivers a
		// flit in s (it processes it over the following flit cycle) —
		// we take the conservative union of input and output
		// occupancy.
		awake := make([]bool, alloc.TableSize)
		words := 0.0
		for p := 0; p < node.Ports; p++ {
			for _, lid := range []topology.LinkID{m.InLink(r, p), m.OutLink(r, p)} {
				if lid == topology.Invalid {
					continue
				}
				for s := 0; s < alloc.TableSize; s++ {
					if alloc.LinkOwner(lid, s) != phit.None {
						awake[s] = true
					}
				}
			}
			if lid := m.OutLink(r, p); lid != topology.Invalid {
				words += alloc.LinkUtilisation(lid) * float64(alloc.TableSize)
			}
		}
		n := 0
		for _, w := range awake {
			if w {
				n++
			}
		}
		frac := float64(n) / float64(alloc.TableSize)

		// Dynamic: words per second = occupied slots × FlitWords words
		// per revolution; revolutions/s = f/(3*S).
		revPerSec := fMHz * 1e6 / float64(phit.FlitWords*alloc.TableSize)
		wordsPerSec := words * float64(phit.FlitWords) * revPerSec
		dynUW := wordsPerSec * WordEnergyPJ * 1e-12 * 1e6 * float64(widthBits) / 32

		rr := RouterReport{
			Router:        r,
			Name:          node.Name,
			AwakeFraction: frac,
			IdleUW:        idle,
			SleepUW:       idle * (frac + (1-frac)*SleepResidual),
			DynamicUW:     dynUW,
		}
		rep.Routers = append(rep.Routers, rr)
		rep.IdleUW += rr.IdleUW
		rep.SleepUW += rr.SleepUW
		rep.DynamicUW += rr.DynamicUW
	}
	sort.Slice(rep.Routers, func(i, j int) bool { return rep.Routers[i].Router < rep.Routers[j].Router })
	if rep.IdleUW > 0 {
		rep.SavingFraction = 1 - rep.SleepUW/rep.IdleUW
	}
	return rep
}

func (r *NetworkReport) String() string {
	return fmt.Sprintf("power: idle %.0f µW, with sleep %.0f µW (%.0f%% clock-power saving), dynamic %.0f µW",
		r.IdleUW, r.SleepUW, r.SavingFraction*100, r.DynamicUW)
}
