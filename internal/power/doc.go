// Package power models aelite's power consumption and the router sleep
// modes the paper leaves as future work (Section VI-A: "the aelite NoC,
// in its current form, consumes power while idling. The power consumption
// is reduced by ... introducing sleep modes for individual routers. We
// consider the latter ... future work.").
//
// The model has two parts, both deliberately simple and calibrated to
// published 90 nm NoC figures rather than to a netlist:
//
//   - idle (clock) power: every clocked cell burns power proportional to
//     its area and clock frequency — the price of the globally running
//     flit-synchronous fabric;
//   - dynamic energy: each word switched through a router or link stage
//     costs a fixed energy.
//
// Sleep modes exploit a unique property of TDM: a router's activity is
// *known at allocation time*. A router whose incoming links are idle in
// a slot has, deterministically, nothing to do three cycles later, so it
// can gate its clock for that slot without any wake-up speculation —
// the schedule is the wake-up signal. The model reports, per router, the
// fraction of slots it must be awake and the resulting power with
// per-slot clock gating (a residual fraction of idle power remains:
// always-on wake logic and leakage).
//
// The model reads activity straight from slots.Allocation link occupancy
// (the schedule is the wake-up signal) and cell areas from internal/area;
// aelite-exp power renders it.
package power
