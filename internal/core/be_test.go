package core

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
)

func TestBESmallDelivers(t *testing.T) {
	m, uc := smallUseCase(t, 6)
	n, err := BuildBE(m, uc, BEConfig{})
	if err != nil {
		t.Fatalf("BuildBE: %v", err)
	}
	rep := n.Run(4000, 20000)
	for _, c := range rep.Conns {
		if c.Delivered == 0 {
			var b strings.Builder
			rep.Write(&b)
			t.Fatalf("connection %d delivered nothing:\n%s", c.Conn, b.String())
		}
		if !c.MetThroughput {
			t.Errorf("connection %d measured %.1f MB/s < required %.1f (lightly loaded BE should keep up)",
				c.Conn, c.MeasuredMBps, c.RequiredMBps)
		}
	}
}

// TestBEInterference is the counter-example to aelite's composability: on
// the BE network, adding other applications changes app 0's word-level
// timing. (It would be astonishing if wormhole arbitration did not perturb
// a single word; the assertion documents that our baseline really does
// interfere rather than secretly time-multiplexing.)
func TestBEInterference(t *testing.T) {
	build := func() (*BENetwork, *spec.UseCase) {
		m := topology.NewMesh(3, 2, 2)
		uc := spec.Random(spec.RandomConfig{
			Name: "beinterf", Seed: 21, IPs: 12, Apps: 3, Conns: 14,
			MinRateMBps: 60, MaxRateMBps: 300,
			MinLatencyNs: 250, MaxLatencyNs: 900,
		})
		spec.MapIPsRoundRobin(uc, m, 5)
		n, err := BuildBE(m, uc, BEConfig{})
		if err != nil {
			t.Fatalf("BuildBE: %v", err)
		}
		return n, uc
	}

	record := func(n *BENetwork, uc *spec.UseCase, only bool) map[phit.ConnID][]clock.Time {
		for _, c := range uc.Connections {
			if only && c.App != 0 {
				n.Generator(c.ID).SetEnabled(false)
			}
		}
		for _, c := range uc.Connections {
			if c.App != 0 {
				continue
			}
			ip, _ := uc.IP(c.Dst)
			n.NIOf(ip.NI).RecordArrivals(c.ID, true)
		}
		n.Run(0, 40000)
		out := make(map[phit.ConnID][]clock.Time)
		for _, c := range uc.Connections {
			if c.App != 0 {
				continue
			}
			ip, _ := uc.IP(c.Dst)
			out[c.ID] = n.NIOf(ip.NI).Arrivals(c.ID)
		}
		return out
	}

	n1, uc1 := build()
	alone := record(n1, uc1, true)
	n2, uc2 := build()
	shared := record(n2, uc2, false)

	perturbed := false
	for conn, a := range alone {
		b := shared[conn]
		if len(a) != len(b) {
			perturbed = true
			break
		}
		for i := range a {
			if a[i] != b[i] {
				perturbed = true
				break
			}
		}
	}
	if !perturbed {
		t.Error("BE timing of app 0 is identical with and without other apps — the baseline shows no interference, which defeats the comparison")
	}
}
