package core

import (
	"strings"
	"testing"

	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
)

func TestBuildRejectsStaleTopology(t *testing.T) {
	m, uc := smallUseCase(t, 4)
	// Prepare for mesochronous (stages on mesh links) but build
	// synchronous: the TDM shifts baked into the routes would be wrong.
	PrepareTopology(m, Config{Mode: Mesochronous})
	if _, err := Build(m, uc, Config{Mode: Synchronous}); err == nil {
		t.Fatal("Build accepted a topology prepared for a different mode")
	}
}

func TestBuildRejectsSameNIEndpoints(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	uc := &spec.UseCase{
		Name: "local", Apps: 1,
		IPs: []spec.IP{
			{ID: 0, Name: "a", NI: m.NIAt(0, 0, 0)},
			{ID: 1, Name: "b", NI: m.NIAt(0, 0, 0)},
		},
		Connections: []spec.Connection{
			{ID: 1, App: 0, Src: 0, Dst: 1, BandwidthMBps: 10, MaxLatencyNs: 500},
		},
	}
	cfg := Config{}
	PrepareTopology(m, cfg)
	if _, err := Build(m, uc, cfg); err == nil || !strings.Contains(err.Error(), "share NI") {
		t.Fatalf("Build accepted NI-local traffic: %v", err)
	}
}

func TestBuildRejectsInvalidSpec(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	uc := &spec.UseCase{Name: "bad", Apps: 1,
		IPs:         []spec.IP{{ID: 0, NI: m.NIAt(0, 0, 0)}},
		Connections: []spec.Connection{{ID: 1, App: 0, Src: 0, Dst: 0, BandwidthMBps: 1, MaxLatencyNs: 1}}}
	cfg := Config{}
	PrepareTopology(m, cfg)
	if _, err := Build(m, uc, cfg); err == nil {
		t.Fatal("Build accepted a self-loop spec")
	}
}

func TestBuildRejectsImpossibleBandwidth(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	uc := &spec.UseCase{
		Name: "heavy", Apps: 1,
		IPs: []spec.IP{
			{ID: 0, Name: "a", NI: m.NIAt(0, 0, 0)},
			{ID: 1, Name: "b", NI: m.NIAt(1, 1, 0)},
		},
		Connections: []spec.Connection{
			// 3 GB/s exceeds a 500 MHz 32-bit link's payload capacity.
			{ID: 1, App: 0, Src: 0, Dst: 1, BandwidthMBps: 3000, MaxLatencyNs: 500},
		},
	}
	cfg := Config{}
	PrepareTopology(m, cfg)
	if _, err := Build(m, uc, cfg); err == nil {
		t.Fatal("Build accepted an impossible bandwidth requirement")
	}
}

func TestBuildRejectsImpossibleLatency(t *testing.T) {
	m := topology.NewMesh(4, 3, 1)
	uc := &spec.UseCase{
		Name: "tight", Apps: 1,
		IPs: []spec.IP{
			{ID: 0, Name: "a", NI: m.NIAt(0, 0, 0)},
			{ID: 1, Name: "b", NI: m.NIAt(3, 2, 0)},
		},
		Connections: []spec.Connection{
			// 10 ns across the whole mesh is below the bare path delay.
			{ID: 1, App: 0, Src: 0, Dst: 1, BandwidthMBps: 10, MaxLatencyNs: 10},
		},
	}
	cfg := Config{}
	PrepareTopology(m, cfg)
	if _, err := Build(m, uc, cfg); err == nil {
		t.Fatal("Build accepted a latency below the path's fixed delay")
	}
}

func TestBuildBERejectsPipelinedMesh(t *testing.T) {
	m, uc := smallUseCase(t, 4)
	m.SetMeshPipelineStages(1)
	if _, err := BuildBE(m, uc, BEConfig{}); err == nil {
		t.Fatal("BuildBE accepted a pipelined mesh")
	}
}

func TestBuildBERejectsUnmapped(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	uc := spec.Random(spec.RandomConfig{
		Name: "x", Seed: 1, IPs: 4, Apps: 1, Conns: 2,
		MinRateMBps: 10, MaxRateMBps: 20, MinLatencyNs: 300, MaxLatencyNs: 500,
	})
	if _, err := BuildBE(m, uc, BEConfig{}); err == nil {
		t.Fatal("BuildBE accepted unmapped IPs")
	}
}

func TestProbeDetectsCorruptedSchedule(t *testing.T) {
	// Build a working network, then corrupt one NI's slot table so a
	// flit is injected in a slot the allocation did not grant. The
	// probes (or the router contention check) must halt the run.
	m, uc := smallUseCase(t, 3)
	cfg := Config{Probes: true}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a source NI and move one of its reservations to a slot that
	// the allocation believes is free on its link.
	var victim *ni.NI
	var tableOwner phit.ConnID
	for _, id := range m.AllNIs() {
		tb := n.Alloc.NITable(id)
		for s := 0; s < tb.Size(); s++ {
			if tb.Owner(s) != phit.None {
				victim = n.NIOf(id)
				tableOwner = tb.Owner(s)
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		t.Fatal("no allocated NI found")
	}
	victim.CorruptSlotForTest(tableOwner)
	defer func() {
		if recover() == nil {
			t.Fatal("corrupted schedule went undetected")
		}
	}()
	n.Run(0, 20000)
}

func TestReportWriterAndAccessors(t *testing.T) {
	m, uc := smallUseCase(t, 4)
	cfg := Config{}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := n.Run(2000, 10000)
	var b strings.Builder
	rep.Write(&b)
	out := b.String()
	for _, want := range []string{"use case", "conn", "reqMB/s", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
	if n.BaseClock() == nil || n.Engine() == nil {
		t.Error("accessors returned nil")
	}
	if len(rep.Violations()) != 0 && rep.AllMet() {
		t.Error("Violations/AllMet inconsistent")
	}
}

func TestModeString(t *testing.T) {
	if Synchronous.String() != "synchronous" ||
		Mesochronous.String() != "mesochronous" ||
		Asynchronous.String() != "asynchronous" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
}
