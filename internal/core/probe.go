package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/topology"
)

// A probe dynamically verifies contention-free routing: every valid phit
// observed at a link's entry must belong to the connection that the
// allocation assigned to that link in that slot. Any mismatch is a
// violated TDM schedule — the property underpinning both composability and
// predictability — so with a nil reporter the probe halts the simulation
// rather than counting, and with a reporter it records a SlotOwnership
// violation and keeps observing.
type probe struct {
	name  string
	clk   *clock.Clock
	wire  *sim.Wire[phit.Phit]
	alloc *slots.Allocation
	link  topology.LinkID
	rep   fault.Reporter

	sampled  phit.Phit
	observed int64

	// Hyperperiod-boundary snapshot and per-epoch delta (see probe_replay.go).
	mObserved, dObserved int64
	rmValid              bool
}

func (p *probe) Name() string          { return p.name }
func (p *probe) Clock() *clock.Clock   { return p.clk }
func (p *probe) Sample(now clock.Time) { p.sampled = p.wire.Read() }

func (p *probe) Update(now clock.Time) {
	if !p.sampled.Valid {
		return
	}
	edge, ok := p.clk.EdgeIndex(now)
	if !ok {
		// An injected phase or period step can leave this dispatch
		// between edges of the mutated clock; slot attribution is
		// meaningless there, so skip the observation in collecting mode.
		if p.rep != nil {
			return
		}
		panic(fmt.Sprintf("%s: update off-edge at %d ps", p.name, now))
	}
	// The sampled value was driven in the previous cycle; attribute it
	// to that cycle's slot.
	drive := edge - 1
	if drive < 0 {
		return
	}
	slot := int((drive / phit.FlitWords) % int64(p.alloc.TableSize))
	owner := p.alloc.LinkOwner(p.link, slot)
	got := p.sampled.Meta.Conn
	if got != owner {
		fault.Report(p.rep, fault.Violation{
			Kind: fault.SlotOwnership, Component: p.name, Time: now, Slot: slot,
			Detail: fmt.Sprintf("slot carries connection %d but is allocated to %d — TDM schedule violated", got, owner),
		})
		return
	}
	p.observed++
}
