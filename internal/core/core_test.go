package core

import (
	"strings"
	"testing"

	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
)

// smallUseCase builds a 2x2 mesh with 1 NI per router and a few
// connections with modest requirements.
func smallUseCase(t *testing.T, conns int) (*topology.Mesh, *spec.UseCase) {
	t.Helper()
	m := topology.NewMesh(2, 2, 1)
	cfg := spec.RandomConfig{
		Name: "small", Seed: 7, IPs: 4, Apps: 2, Conns: conns,
		MinRateMBps: 20, MaxRateMBps: 120,
		MinLatencyNs: 200, MaxLatencyNs: 800,
	}
	uc := spec.Random(cfg)
	spec.MapIPsRoundRobin(uc, m, 3)
	if err := uc.Validate(); err != nil {
		t.Fatalf("use case invalid: %v", err)
	}
	return m, uc
}

func TestSynchronousSmallMeetsRequirements(t *testing.T) {
	m, uc := smallUseCase(t, 6)
	cfg := Config{Probes: true}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := n.Run(4000, 20000)
	if !rep.AllMet() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("requirements violated:\n%s", b.String())
	}
	if !rep.AllWithinBound() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("analytical latency bound violated:\n%s", b.String())
	}
	for _, c := range rep.Conns {
		if c.Delivered == 0 {
			t.Errorf("connection %d delivered nothing", c.Conn)
		}
	}
}

func TestMesochronousSmallMeetsRequirements(t *testing.T) {
	m, uc := smallUseCase(t, 6)
	cfg := Config{Mode: Mesochronous, PhaseSeed: 11, Probes: true}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := n.Run(4000, 20000)
	if !rep.AllMet() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("requirements violated:\n%s", b.String())
	}
	if !rep.AllWithinBound() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("analytical latency bound violated:\n%s", b.String())
	}
	// The Section V invariant: the 4-word bi-synchronous FIFOs never
	// fill (overflow would have panicked) and actually stay at or below
	// capacity minus nothing... record the high-water mark for
	// diagnosis.
	for _, st := range n.Stages() {
		if st.MaxFIFOOccupancy() > 4 {
			t.Errorf("stage FIFO exceeded 4 words: %d", st.MaxFIFOOccupancy())
		}
	}
}

func TestBuildRejectsUnmappedIPs(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	uc := spec.Random(spec.RandomConfig{
		Name: "x", Seed: 1, IPs: 4, Apps: 1, Conns: 2,
		MinRateMBps: 10, MaxRateMBps: 20, MinLatencyNs: 300, MaxLatencyNs: 500,
	})
	cfg := Config{}
	PrepareTopology(m, cfg)
	if _, err := Build(m, uc, cfg); err == nil {
		t.Fatal("Build accepted unmapped IPs")
	}
}

func TestInfoAndGenerators(t *testing.T) {
	m, uc := smallUseCase(t, 4)
	cfg := Config{}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, c := range uc.Connections {
		info, err := n.Info(c.ID)
		if err != nil {
			t.Fatalf("Info(%d): %v", c.ID, err)
		}
		if len(info.Slots) == 0 {
			t.Errorf("connection %d has no slots", c.ID)
		}
		if info.GuaranteedMBps < c.BandwidthMBps {
			t.Errorf("connection %d guaranteed %.1f < required %.1f",
				c.ID, info.GuaranteedMBps, c.BandwidthMBps)
		}
		if n.Generator(c.ID) == nil {
			t.Errorf("connection %d has no generator", c.ID)
		}
	}
	if _, err := n.Info(phit.ConnID(9999)); err == nil {
		t.Error("Info accepted unknown connection")
	}
}

func TestAsynchronousSmallMeetsRequirements(t *testing.T) {
	m, uc := smallUseCase(t, 6)
	cfg := Config{Mode: Asynchronous, PhaseSeed: 13, PPM: 200}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := n.Run(6000, 30000)
	if !rep.AllMet() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("requirements violated:\n%s", b.String())
	}
	if !rep.AllWithinBound() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("analytical latency bound violated:\n%s", b.String())
	}
}
