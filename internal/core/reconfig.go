package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/reliable"
	"repro/internal/route"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Use-case reconfiguration (the Æthereal capability of reference [16],
// "undisrupted quality-of-service during reconfiguration of multiple
// applications"): applications can be stopped and new ones admitted at
// run time. Because the only state shared between connections is slot
// ownership, and a newly admitted connection claims only currently free
// slots, running applications are — by construction — not disturbed: the
// composability tests assert their timing stays bit-identical across a
// reconfiguration.

// Typed admission-rejection causes. Every error returned by PlanAdmission
// and OpenConnection wraps exactly one of these, so callers (the
// internal/admission package, the CLIs) can classify a rejection without
// parsing messages.
var (
	// ErrModeUnsupported: the network mode cannot be reconfigured at run
	// time (asynchronous wrappers index slots by token count).
	ErrModeUnsupported = errors.New("mode does not support run-time reconfiguration")
	// ErrDuplicate: the connection id is already open.
	ErrDuplicate = errors.New("connection already open")
	// ErrUnknownEndpoint: an endpoint IP is not in the use case.
	ErrUnknownEndpoint = errors.New("unknown endpoint")
	// ErrSharedNI: both endpoints sit on one NI (local traffic bypasses
	// the NoC).
	ErrSharedNI = errors.New("endpoints share an NI")
	// ErrNoRoute: no candidate route exists (or none fits the header's
	// path field, or every one crosses an avoided link).
	ErrNoRoute = errors.New("no usable route")
	// ErrInfeasible: the requested bandwidth or latency cannot be met on
	// this network even with an empty slot table (rate above link
	// capacity, budget below the fixed path delay).
	ErrInfeasible = errors.New("requirement infeasible")
	// ErrNoSlots: routing and sizing succeeded but the live table has no
	// free-slot placement (the underlying *slots.PlacementError is in the
	// chain).
	ErrNoSlots = errors.New("no free slot placement")
	// ErrQueueExhausted: an involved NI has no queue ids left.
	ErrQueueExhausted = errors.New("NI queue ids exhausted")
)

// An AdmissionPlan is the reusable, side-effect-free part of admitting a
// connection: routes found, requirements sized, reverse-channel id
// chosen, slot requests built. It mutates nothing; OpenConnection applies
// it to the live allocation, admission.Probe applies it to a clone.
type AdmissionPlan struct {
	Conn spec.Connection
	// Rev is the credit-channel connection id the admission would use
	// (one above everything currently open).
	Rev phit.ConnID
	// Requests are the data and reverse slot requests, ready for
	// slots.AllocateInto.
	Requests []slots.Request
	// Worst is the largest-shift forward candidate, the path the sizing
	// covered.
	Worst *route.Path

	srcNI, dstNI topology.NodeID
}

// PlanAdmission routes and sizes a prospective connection against the
// live network without changing anything. Candidate paths crossing any
// link in avoid are discarded (the self-healing reroute passes the
// quarantined path's links here). The returned error wraps one of the
// Err* causes above.
func (n *Network) PlanAdmission(c spec.Connection, avoid []topology.LinkID) (*AdmissionPlan, error) {
	if n.Cfg.Mode == Asynchronous {
		return nil, fmt.Errorf("core: connection %d: %w (slot counters are token-indexed)", c.ID, ErrModeUnsupported)
	}
	if _, dup := n.conns[c.ID]; dup {
		return nil, fmt.Errorf("core: %w: connection %d", ErrDuplicate, c.ID)
	}
	if n.retired[c.ID] {
		return nil, fmt.Errorf("core: %w: connection id %d was closed and its queue RAM is still registered; re-admission needs a fresh id (FreshConnID)", ErrDuplicate, c.ID)
	}
	srcIP, err := n.Spec.IP(c.Src)
	if err != nil {
		return nil, fmt.Errorf("core: connection %d: %w: %v", c.ID, ErrUnknownEndpoint, err)
	}
	dstIP, err := n.Spec.IP(c.Dst)
	if err != nil {
		return nil, fmt.Errorf("core: connection %d: %w: %v", c.ID, ErrUnknownEndpoint, err)
	}
	if srcIP.NI == dstIP.NI {
		return nil, fmt.Errorf("core: connection %d: %w (NI %d)", c.ID, ErrSharedNI, srcIP.NI)
	}
	cfg := n.Cfg
	tableSize := cfg.TableSize

	fwdPaths, err := route.Candidates(n.Mesh, srcIP.NI, dstIP.NI, 6)
	if err != nil {
		return nil, fmt.Errorf("core: connection %d: %w: %v", c.ID, ErrNoRoute, err)
	}
	revPaths, err := route.Candidates(n.Mesh, dstIP.NI, srcIP.NI, 6)
	if err != nil {
		return nil, fmt.Errorf("core: connection %d: %w: %v", c.ID, ErrNoRoute, err)
	}
	fwdPaths = dropAvoided(fitHeader(fwdPaths, cfg.Layout), avoid)
	revPaths = dropAvoided(fitHeader(revPaths, cfg.Layout), avoid)
	if len(fwdPaths) == 0 || len(revPaths) == 0 {
		return nil, fmt.Errorf("core: connection %d: %w (header limit %d hops, %d links avoided)",
			c.ID, ErrNoRoute, cfg.Layout.MaxHops(), len(avoid))
	}
	worst := fwdPaths[0]
	for _, p := range fwdPaths[1:] {
		if p.TotalShift > worst.TotalShift {
			worst = p
		}
	}
	count, windowTarget, m, err := sizeConnection(cfg, c, worst, tableSize)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}

	// Queue ids are consumed only on success, but a plan that could never
	// be applied must not report admissible.
	if n.qidNext[dstIP.NI] > cfg.Layout.MaxQID() || n.qidNext[srcIP.NI] > cfg.Layout.MaxQID() {
		return nil, fmt.Errorf("core: connection %d: %w", c.ID, ErrQueueExhausted)
	}

	// New id for the reverse channel: above everything *ever* used, not
	// just everything live — a closed connection's queue ids stay
	// registered in the NI, so id reuse would collide there.
	rev := n.idHigh + 1
	if c.ID >= rev {
		rev = c.ID + 1
	}

	return &AdmissionPlan{
		Conn: c,
		Rev:  rev,
		Requests: []slots.Request{
			{Conn: c.ID, Paths: fwdPaths, Count: count, GapTarget: windowTarget, WindowSlots: m},
			{Conn: rev, Paths: revPaths, Count: analysis.RevSlots(count, cfg.Layout.MaxCredits())},
		},
		Worst: worst,
		srcNI: srcIP.NI,
		dstNI: dstIP.NI,
	}, nil
}

// dropAvoided discards candidate paths that traverse any avoided link.
func dropAvoided(paths []*route.Path, avoid []topology.LinkID) []*route.Path {
	if len(avoid) == 0 {
		return paths
	}
	bad := make(map[topology.LinkID]bool, len(avoid))
	for _, l := range avoid {
		bad[l] = true
	}
	out := paths[:0]
	for _, p := range paths {
		hit := false
		for _, l := range p.Links {
			if bad[l] {
				hit = true
				break
			}
		}
		if !hit {
			out = append(out, p)
		}
	}
	return out
}

// A TrialOutcome summarises the guarantees a trial placement would carry
// — what admission control checks against the request before committing.
type TrialOutcome struct {
	GuaranteeMBps  float64
	LatencyBoundNs float64
	DataSlots      int
	RevSlots       int
	PathHops       int
}

// TrialOutcome computes the analytical bounds of a plan placed into a
// trial allocation (typically a Clone of the live one populated via
// slots.AllocateInto). The trial allocation is read, never written.
func (n *Network) TrialOutcome(plan *AdmissionPlan, trial *slots.Allocation) TrialOutcome {
	as := trial.ByConn[plan.Conn.ID]
	ras := trial.ByConn[plan.Rev]
	p := usedWorstPath(as)
	b := analysis.ConnectionBounds(p, as.Slots, trial.TableSize, n.Cfg.FreqMHz, n.Cfg.WordBytes,
		analysisMode(n.Cfg, plan.Conn.BandwidthMBps))
	return TrialOutcome{
		GuaranteeMBps:  b.GuaranteeMBps,
		LatencyBoundNs: b.LatencyNs,
		DataSlots:      len(as.Slots),
		RevSlots:       len(ras.Slots),
		PathHops:       p.Hops(),
	}
}

// CloseConnection stops a data connection and releases its (and its
// credit channel's) slot reservations. It first disables the traffic
// generator, then simulates until the connection's pipeline has drained
// (send queue empty plus in-flight flits delivered), and only then frees
// the slots — freeing earlier would let a new owner collide with
// in-flight flits, which the probes and routers would (correctly) flag
// as schedule violations.
//
// A quarantined connection cannot drain — its sender transmits nothing by
// design — so its queue contents are abandoned: once the tables are
// cleared and the slots released, the stranded words can never enter the
// network, and nothing the connection leaves behind is observable by
// anyone else.
//
// The NI-side queue configuration and queue ids remain registered (idle);
// hardware reconfiguration reprograms tables, not queue RAM. Re-admission
// therefore uses a fresh connection id.
func (n *Network) CloseConnection(id phit.ConnID) error {
	info, ok := n.conns[id]
	if !ok {
		return fmt.Errorf("core: unknown connection %d", id)
	}
	// Reconfiguration mutates tables and generator state outside the
	// engine's Run loop; land any fast-forwarded replay state first.
	n.eng.Sync()
	g := n.gens[id]
	g.SetEnabled(false)

	// Drain: wait for the source queue to empty, then two table
	// revolutions for in-flight flits and credit returns.
	src := n.nis[info.srcNI]
	revolution := clock.Duration(3*n.Cfg.TableSize) * n.base.Period
	quarantined := false
	if ep := src.Reliable(); ep != nil && ep.Quarantined(id) {
		quarantined = true
	}
	if !quarantined {
		// Worst-case drain time: each queued word needs an owned slot
		// *and* an end-to-end credit, and credits return one reverse-slot
		// round trip after a delivery — so budget one credit round trip
		// (in revolutions, rounded up, plus scheduling margin) per queued
		// word, rather than a hard-coded constant that a large table or a
		// slow credit channel can exceed.
		rtRevs := (info.ackRTSlots + n.Cfg.TableSize - 1) / n.Cfg.TableSize
		maxWait := 4 + ni.DefaultSendCapacity*(rtRevs+2)
		for i := 0; i < maxWait; i++ {
			if src.SendQueueSpace(id) == ni.DefaultSendCapacity {
				break
			}
			n.eng.Run(n.eng.Now() + revolution)
		}
		if src.SendQueueSpace(id) != ni.DefaultSendCapacity {
			return fmt.Errorf("core: connection %d did not drain (credit starvation?)", id)
		}
		n.eng.Run(n.eng.Now() + 4*revolution)
	}

	// Clear the injection tables, then release the allocation.
	clearTable := n.niTables[info.srcNI]
	for s := range clearTable.Slots {
		if clearTable.Slots[s] == id {
			clearTable.Slots[s] = phit.None
		}
	}
	revTable := n.niTables[info.dstNI]
	for s := range revTable.Slots {
		if revTable.Slots[s] == info.rev {
			revTable.Slots[s] = phit.None
		}
	}
	// One more revolution so in-flight credit-only flits of the reverse
	// channel are out of the network before its slots are reused.
	n.eng.Run(n.eng.Now() + 2*revolution)
	// Both directions leave the allocation in one atomic step: the table
	// never shows a half-closed connection.
	n.Alloc.ReleaseAll(id, info.rev)
	delete(n.conns, id)
	delete(n.gens, id)
	n.retired[id] = true
	n.retired[info.rev] = true
	return nil
}

// OpenConnection admits a new guaranteed-service connection at run time:
// it is routed, sized from its requirements, allocated into the *free*
// slots of the live allocation, and its traffic generator started. The
// returned error leaves the network untouched (admission control: a
// connection that does not fit is simply rejected, exactly as in [16])
// and wraps one of the typed Err* causes.
func (n *Network) OpenConnection(c spec.Connection) error {
	return n.OpenConnectionAvoiding(c, nil)
}

// OpenConnectionAvoiding is OpenConnection with an avoid set: no slot of
// the new connection (data or credit direction) will ride a path crossing
// any of the given links. The self-healing reroute uses it to steer a
// re-admitted connection clear of its quarantined path.
func (n *Network) OpenConnectionAvoiding(c spec.Connection, avoid []topology.LinkID) error {
	plan, err := n.PlanAdmission(c, avoid)
	if err != nil {
		return err
	}
	n.eng.Sync()
	cfg := n.Cfg
	tableSize := cfg.TableSize
	rev := plan.Rev
	if err := slots.AllocateInto(n.Alloc, plan.Requests); err != nil {
		return fmt.Errorf("core: admission of connection %d failed: %w: %w", c.ID, ErrNoSlots, err)
	}

	info := &connInfo{spec: c, srcNI: plan.srcNI, dstNI: plan.dstNI, rev: rev}
	as := n.Alloc.ByConn[c.ID]
	ras := n.Alloc.ByConn[rev]
	info.path = usedWorstPath(as)
	info.slotSet = as.Slots
	info.revPath = usedWorstPath(ras)
	info.revSlots = ras.Slots
	b := analysis.ConnectionBounds(info.path, as.Slots, tableSize, cfg.FreqMHz, cfg.WordBytes, analysisMode(cfg, c.BandwidthMBps))
	info.guaranteeMBps = b.GuaranteeMBps
	info.boundNs = b.LatencyNs
	rt := analysis.CreditRoundTripSlots(ras.Slots, info.revPath, tableSize)
	info.ackRTSlots = rt
	info.recvCap = analysis.RecvCapacityWords(len(as.Slots), rt, tableSize)

	// Queue ids and NI registration (availability pre-checked by the plan).
	dataQID := n.qidNext[info.dstNI]
	n.qidNext[info.dstNI]++
	revQID := n.qidNext[info.srcNI]
	n.qidNext[info.srcNI]++
	dataHdrs, err := slotHeaders(cfg.Layout, as, dataQID)
	if err != nil {
		return err
	}
	revHdrs, err := slotHeaders(cfg.Layout, ras, revQID)
	if err != nil {
		return err
	}
	src, dst := n.nis[info.srcNI], n.nis[info.dstNI]
	src.AddOutConn(ni.OutConnConfig{ID: c.ID, Headers: dataHdrs, InitialCredits: info.recvCap, PairedIn: rev})
	dst.AddInConn(ni.InConnConfig{ID: c.ID, QID: dataQID, RecvCapacity: info.recvCap, CreditFor: rev, AutoDrain: true})
	dst.AddOutConn(ni.OutConnConfig{ID: rev, Headers: revHdrs, InitialCredits: 0, PairedIn: c.ID})
	src.AddInConn(ni.InConnConfig{ID: rev, QID: revQID, RecvCapacity: 0, CreditFor: c.ID, AutoDrain: true})

	// Reliability shell: a run-time admission gets the same windowed
	// sender / tracked receiver / ack carriage Build wires, with the
	// timeout derived the same way (an endpoint is created on the fly for
	// an NI that had no reliable connection yet).
	if cfg.Reliable {
		flitCycle := clock.Duration(phit.FlitWords) * clock.PeriodFromMHz(cfg.FreqMHz)
		timeout := clock.Duration(info.boundNs*1e3) +
			clock.Duration(info.ackRTSlots+tableSize)*flitCycle
		sep, dep := n.reliableEndpointFor(info.srcNI), n.reliableEndpointFor(info.dstNI)
		sep.RegisterTx(c.ID, reliable.TxConfig{
			Windowed: true, PairedIn: rev, Timeout: timeout,
			RetryBudget: cfg.RetryBudget,
		})
		sep.RegisterRx(rev, reliable.RxConfig{AckFor: c.ID})
		dep.RegisterRx(c.ID, reliable.RxConfig{Tracked: true})
		dep.RegisterTx(rev, reliable.TxConfig{PairedIn: c.ID})
	}

	// Program the injection tables (the live objects the NIs read).
	srcTable := n.niTables[info.srcNI]
	for _, s := range as.Slots {
		if srcTable.Slots[s] != phit.None {
			panic(fmt.Sprintf("core: admitted slot %d already programmed", s))
		}
		srcTable.Slots[s] = c.ID
	}
	dstTable := n.niTables[info.dstNI]
	for _, s := range ras.Slots {
		if dstTable.Slots[s] != phit.None {
			panic(fmt.Sprintf("core: admitted reverse slot %d already programmed", s))
		}
		dstTable.Slots[s] = rev
	}

	n.conns[c.ID] = info
	if c.ID > n.idHigh {
		n.idHigh = c.ID
	}
	if rev > n.idHigh {
		n.idHigh = rev
	}
	g := buildGenerator(cfg, info, n.domainOf(info.srcNI), src, len(n.gens))
	n.gens[c.ID] = g
	n.eng.Add(g)
	return nil
}

// FreshConnID returns an id above everything ever used on this network —
// the id a re-admission (self-healing reroute, use-case switch) should
// carry, since closed ids keep their NI queue registrations.
func (n *Network) FreshConnID() phit.ConnID {
	return n.idHigh + 1
}

// SpecOf returns the requirements spec of an open data connection — what
// a reroute re-admits under a fresh id.
func (n *Network) SpecOf(c phit.ConnID) (spec.Connection, error) {
	info, ok := n.conns[c]
	if !ok {
		return spec.Connection{}, fmt.Errorf("core: unknown connection %d", c)
	}
	return info.spec, nil
}

// reliableEndpointFor returns the NI's reliability endpoint, creating and
// installing one (with the quarantine hook) if the NI had none — the case
// when no connection touched it at Build time.
func (n *Network) reliableEndpointFor(id topology.NodeID) *reliable.Endpoint {
	c := n.nis[id]
	if ep := c.Reliable(); ep != nil {
		return ep
	}
	ep := reliable.NewEndpoint(c.Name())
	ep.SetQuarantineHook(n.recordQuarantine)
	c.SetReliable(ep)
	return ep
}

// A QuarantineEvent records one connection's quarantine transition, for
// the self-healing layer to consume between engine runs.
type QuarantineEvent struct {
	Conn phit.ConnID
	Time clock.Time
}

// recordQuarantine is the endpoint hook: it only queues the event —
// quarantine fires inside the engine's event processing (possibly inside
// CloseConnection's own drain runs), where reconfiguring would re-enter
// the engine.
func (n *Network) recordQuarantine(now clock.Time, conn phit.ConnID) {
	n.pendingQuar = append(n.pendingQuar, QuarantineEvent{Conn: conn, Time: now})
}

// TakeQuarantined drains the queue of quarantine transitions recorded
// since the last call. Callers (admission.Healer) invoke it between
// engine runs and react by closing and re-admitting the victims.
func (n *Network) TakeQuarantined() []QuarantineEvent {
	out := n.pendingQuar
	n.pendingQuar = nil
	return out
}

// ConnectionLinks returns every link a data connection's slots ride —
// both the data direction and its credit channel, across all per-slot
// paths — ascending and deduplicated. The self-healing reroute feeds the
// router-to-router subset back into OpenConnectionAvoiding.
func (n *Network) ConnectionLinks(c phit.ConnID) ([]topology.LinkID, error) {
	info, ok := n.conns[c]
	if !ok {
		return nil, fmt.Errorf("core: unknown connection %d", c)
	}
	seen := make(map[topology.LinkID]bool)
	for _, id := range []phit.ConnID{c, info.rev} {
		asg := n.Alloc.ByConn[id]
		if asg == nil {
			continue
		}
		for _, s := range asg.Slots {
			p := asg.PathOf[s]
			if p == nil {
				p = asg.Path
			}
			for _, l := range p.Links {
				seen[l] = true
			}
		}
	}
	out := make([]topology.LinkID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// InjectionTable exposes the live injection slot table of an NI — the
// object the hardware reads and run-time reconfiguration reprograms in
// place (the audit residue check reads it).
func (n *Network) InjectionTable(id topology.NodeID) *slots.Table {
	return n.niTables[id]
}

// ReverseOf returns the credit-channel connection id of a data
// connection.
func (n *Network) ReverseOf(c phit.ConnID) (phit.ConnID, error) {
	info, ok := n.conns[c]
	if !ok {
		return phit.None, fmt.Errorf("core: unknown connection %d", c)
	}
	return info.rev, nil
}

// A TimedAction is one mid-measurement reconfiguration step for RunTimed:
// Do runs when the simulation reaches AtNs nanoseconds into the
// measurement window.
type TimedAction struct {
	AtNs float64
	Do   func(n *Network) error
}

// RunTimed is Run with reconfiguration events inside the measurement
// window: warm up, reset statistics, then alternate engine segments with
// the actions in AtNs order, and report over the whole window. Actions
// that themselves advance simulated time (CloseConnection drains) are
// accounted for — a later action never rewinds the engine.
func (n *Network) RunTimed(warmupNs, measureNs float64, actions []TimedAction) (*Report, error) {
	warm := clock.Time(warmupNs * float64(clock.Nanosecond))
	n.eng.Run(n.eng.Now() + warm)
	n.eng.Sync()
	for _, c := range n.nis {
		c.ResetStats()
	}
	start := n.eng.Now()
	end := start + clock.Time(measureNs*float64(clock.Nanosecond))
	acts := append([]TimedAction(nil), actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].AtNs < acts[j].AtNs })
	for _, a := range acts {
		at := start + clock.Time(a.AtNs*float64(clock.Nanosecond))
		if at > end {
			at = end
		}
		if at > n.eng.Now() {
			n.eng.Run(at)
		}
		// Actions mutate network state outside the engine; land any
		// fast-forwarded replay state before each one runs.
		n.eng.Sync()
		if err := a.Do(n); err != nil {
			return nil, err
		}
	}
	if end > n.eng.Now() {
		n.eng.Run(end)
	}
	n.eng.Sync()
	return n.report(measureNs), nil
}

// analysisMode maps a network configuration (and a connection's rate,
// which selects the transaction size) onto the analytical protocol mode.
func analysisMode(cfg Config, rateMBps float64) analysis.Mode {
	return analysis.Mode{
		Reliable:      cfg.Reliable,
		Transactional: cfg.Transactional,
		TxWords:       TxWordsForRate(rateMBps),
	}
}

// sizeConnection converts one connection's requirements into a slot
// count, service-window target and window size (shared by Build and
// OpenConnection).
func sizeConnection(cfg Config, c spec.Connection, worst *route.Path, tableSize int) (count, windowTarget, m int, err error) {
	bwSlots, err := analysis.SlotsForBandwidth(c.BandwidthMBps, cfg.FreqMHz, cfg.WordBytes, tableSize, cfg.Reliable)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: connection %d: %w", c.ID, err)
	}
	var latSlots int
	if cfg.Transactional {
		latSlots, err = analysis.SlotsForBurstLatency(c.MaxLatencyNs, TxWordsForRate(c.BandwidthMBps), worst, tableSize, cfg.FreqMHz, cfg.Reliable)
	} else {
		latSlots, err = analysis.SlotsForLatency(c.MaxLatencyNs, worst, tableSize, cfg.FreqMHz)
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: connection %d: %w", c.ID, err)
	}
	windowPeriod := 0
	m = 1
	if cfg.Transactional {
		tx := TxWordsForRate(c.BandwidthMBps)
		m = analysis.BurstSlotTimes(tx, cfg.Reliable)
		wordsPerCycle := c.BandwidthMBps * 1e6 / float64(cfg.WordBytes) / (cfg.FreqMHz * 1e6)
		periodCycles := float64(tx) / wordsPerCycle
		windowPeriod = int(periodCycles / float64(phit.FlitWords))
		if windowPeriod < 1 {
			windowPeriod = 1
		}
		if ps := (m*tableSize + windowPeriod - 1) / windowPeriod; ps > latSlots {
			latSlots = ps
		}
	}
	count = bwSlots
	if latSlots > count {
		count = latSlots
	}
	windowTarget, werr := analysis.WindowSlotsForBudget(c.MaxLatencyNs, worst, cfg.FreqMHz)
	if werr != nil {
		return 0, 0, 0, fmt.Errorf("core: connection %d: %w", c.ID, werr)
	}
	if windowPeriod > 0 && windowPeriod < windowTarget {
		windowTarget = windowPeriod
	}
	return count, windowTarget, m, nil
}

// domainOf returns the clock domain of a node (tile clock in mesochronous
// mode, base otherwise). Valid after instantiate.
func (n *Network) domainOf(id topology.NodeID) *clock.Clock {
	if ck, ok := n.domains[id]; ok {
		return ck
	}
	return n.base
}
