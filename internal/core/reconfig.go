package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Use-case reconfiguration (the Æthereal capability of reference [16],
// "undisrupted quality-of-service during reconfiguration of multiple
// applications"): applications can be stopped and new ones admitted at
// run time. Because the only state shared between connections is slot
// ownership, and a newly admitted connection claims only currently free
// slots, running applications are — by construction — not disturbed: the
// composability tests assert their timing stays bit-identical across a
// reconfiguration.

// CloseConnection stops a data connection and releases its (and its
// credit channel's) slot reservations. It first disables the traffic
// generator, then simulates until the connection's pipeline has drained
// (send queue empty plus in-flight flits delivered), and only then frees
// the slots — freeing earlier would let a new owner collide with
// in-flight flits, which the probes and routers would (correctly) flag
// as schedule violations.
//
// The NI-side queue configuration and queue ids remain registered (idle);
// hardware reconfiguration reprograms tables, not queue RAM.
func (n *Network) CloseConnection(id phit.ConnID) error {
	info, ok := n.conns[id]
	if !ok {
		return fmt.Errorf("core: unknown connection %d", id)
	}
	g := n.gens[id]
	g.SetEnabled(false)

	// Drain: wait for the source queue to empty, then two table
	// revolutions for in-flight flits and credit returns.
	src := n.nis[info.srcNI]
	revolution := clock.Duration(3*n.Cfg.TableSize) * n.base.Period
	for i := 0; i < 64; i++ {
		if src.SendQueueSpace(id) == ni.DefaultSendCapacity {
			break
		}
		n.eng.Run(n.eng.Now() + revolution)
	}
	if src.SendQueueSpace(id) != ni.DefaultSendCapacity {
		return fmt.Errorf("core: connection %d did not drain (credit starvation?)", id)
	}
	n.eng.Run(n.eng.Now() + 4*revolution)

	// Clear the injection tables, then release the allocation.
	clearTable := n.niTables[info.srcNI]
	for s := range clearTable.Slots {
		if clearTable.Slots[s] == id {
			clearTable.Slots[s] = phit.None
		}
	}
	revTable := n.niTables[info.dstNI]
	for s := range revTable.Slots {
		if revTable.Slots[s] == info.rev {
			revTable.Slots[s] = phit.None
		}
	}
	// One more revolution so in-flight credit-only flits of the reverse
	// channel are out of the network before its slots are reused.
	n.eng.Run(n.eng.Now() + 2*revolution)
	n.Alloc.Release(id)
	n.Alloc.Release(info.rev)
	delete(n.conns, id)
	delete(n.gens, id)
	return nil
}

// OpenConnection admits a new guaranteed-service connection at run time:
// it is routed, sized from its requirements, allocated into the *free*
// slots of the live allocation, and its traffic generator started. The
// returned error leaves the network untouched (admission control: a
// connection that does not fit is simply rejected, exactly as in [16]).
func (n *Network) OpenConnection(c spec.Connection) error {
	if n.Cfg.Mode == Asynchronous {
		return fmt.Errorf("core: run-time reconfiguration of the wrapped network is not supported (slot counters are token-indexed)")
	}
	if _, dup := n.conns[c.ID]; dup {
		return fmt.Errorf("core: connection %d already open", c.ID)
	}
	srcIP, err := n.Spec.IP(c.Src)
	if err != nil {
		return err
	}
	dstIP, err := n.Spec.IP(c.Dst)
	if err != nil {
		return err
	}
	if srcIP.NI == dstIP.NI {
		return fmt.Errorf("core: connection %d endpoints share NI %d", c.ID, srcIP.NI)
	}
	cfg := n.Cfg
	m := n.Mesh
	tableSize := cfg.TableSize

	fwdPaths, err := route.Candidates(m, srcIP.NI, dstIP.NI, 6)
	if err != nil {
		return err
	}
	revPaths, err := route.Candidates(m, dstIP.NI, srcIP.NI, 6)
	if err != nil {
		return err
	}
	fwdPaths = fitHeader(fwdPaths, cfg.Layout)
	revPaths = fitHeader(revPaths, cfg.Layout)
	if len(fwdPaths) == 0 || len(revPaths) == 0 {
		return fmt.Errorf("core: connection %d has no route that fits the header path field", c.ID)
	}
	worst := fwdPaths[0]
	for _, p := range fwdPaths[1:] {
		if p.TotalShift > worst.TotalShift {
			worst = p
		}
	}
	count, windowTarget, m_, err := sizeConnection(cfg, c, worst, tableSize)
	if err != nil {
		return err
	}

	// New ids for the reverse channel: above everything in use.
	rev := phit.ConnID(1)
	for id, info := range n.conns {
		if id >= rev {
			rev = id + 1
		}
		if info.rev >= rev {
			rev = info.rev + 1
		}
	}
	if c.ID >= rev {
		rev = c.ID + 1
	}

	reqs := []slots.Request{
		{Conn: c.ID, Paths: fwdPaths, Count: count, GapTarget: windowTarget, WindowSlots: m_},
		{Conn: rev, Paths: revPaths, Count: analysis.RevSlots(count, cfg.Layout.MaxCredits())},
	}
	if err := slots.AllocateInto(n.Alloc, reqs); err != nil {
		return fmt.Errorf("core: admission of connection %d failed: %w", c.ID, err)
	}

	info := &connInfo{spec: c, srcNI: srcIP.NI, dstNI: dstIP.NI, rev: rev}
	as := n.Alloc.ByConn[c.ID]
	ras := n.Alloc.ByConn[rev]
	info.path = usedWorstPath(as)
	info.slotSet = as.Slots
	info.revPath = usedWorstPath(ras)
	info.revSlots = ras.Slots
	b := analysis.ConnectionBounds(info.path, as.Slots, tableSize, cfg.FreqMHz, cfg.WordBytes, analysisMode(cfg, c.BandwidthMBps))
	info.guaranteeMBps = b.GuaranteeMBps
	info.boundNs = b.LatencyNs
	rt := analysis.CreditRoundTripSlots(ras.Slots, info.revPath, tableSize)
	info.ackRTSlots = rt
	info.recvCap = analysis.RecvCapacityWords(len(as.Slots), rt, tableSize)

	// Queue ids and NI registration.
	dataQID := n.qidNext[info.dstNI]
	n.qidNext[info.dstNI]++
	revQID := n.qidNext[info.srcNI]
	n.qidNext[info.srcNI]++
	if dataQID > cfg.Layout.MaxQID() || revQID > cfg.Layout.MaxQID() {
		n.Alloc.Release(c.ID)
		n.Alloc.Release(rev)
		return fmt.Errorf("core: NI queue ids exhausted")
	}
	dataHdrs, err := slotHeaders(cfg.Layout, as, dataQID)
	if err != nil {
		return err
	}
	revHdrs, err := slotHeaders(cfg.Layout, ras, revQID)
	if err != nil {
		return err
	}
	src, dst := n.nis[info.srcNI], n.nis[info.dstNI]
	src.AddOutConn(ni.OutConnConfig{ID: c.ID, Headers: dataHdrs, InitialCredits: info.recvCap, PairedIn: rev})
	dst.AddInConn(ni.InConnConfig{ID: c.ID, QID: dataQID, RecvCapacity: info.recvCap, CreditFor: rev, AutoDrain: true})
	dst.AddOutConn(ni.OutConnConfig{ID: rev, Headers: revHdrs, InitialCredits: 0, PairedIn: c.ID})
	src.AddInConn(ni.InConnConfig{ID: rev, QID: revQID, RecvCapacity: 0, CreditFor: c.ID, AutoDrain: true})

	// Program the injection tables (the live objects the NIs read).
	srcTable := n.niTables[info.srcNI]
	for _, s := range as.Slots {
		if srcTable.Slots[s] != phit.None {
			panic(fmt.Sprintf("core: admitted slot %d already programmed", s))
		}
		srcTable.Slots[s] = c.ID
	}
	dstTable := n.niTables[info.dstNI]
	for _, s := range ras.Slots {
		if dstTable.Slots[s] != phit.None {
			panic(fmt.Sprintf("core: admitted reverse slot %d already programmed", s))
		}
		dstTable.Slots[s] = rev
	}

	n.conns[c.ID] = info
	g := buildGenerator(cfg, info, n.domainOf(info.srcNI), src, len(n.gens))
	n.gens[c.ID] = g
	n.eng.Add(g)
	return nil
}

// analysisMode maps a network configuration (and a connection's rate,
// which selects the transaction size) onto the analytical protocol mode.
func analysisMode(cfg Config, rateMBps float64) analysis.Mode {
	return analysis.Mode{
		Reliable:      cfg.Reliable,
		Transactional: cfg.Transactional,
		TxWords:       TxWordsForRate(rateMBps),
	}
}

// sizeConnection converts one connection's requirements into a slot
// count, service-window target and window size (shared by Build and
// OpenConnection).
func sizeConnection(cfg Config, c spec.Connection, worst *route.Path, tableSize int) (count, windowTarget, m int, err error) {
	bwSlots, err := analysis.SlotsForBandwidth(c.BandwidthMBps, cfg.FreqMHz, cfg.WordBytes, tableSize, cfg.Reliable)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: connection %d: %w", c.ID, err)
	}
	var latSlots int
	if cfg.Transactional {
		latSlots, err = analysis.SlotsForBurstLatency(c.MaxLatencyNs, TxWordsForRate(c.BandwidthMBps), worst, tableSize, cfg.FreqMHz, cfg.Reliable)
	} else {
		latSlots, err = analysis.SlotsForLatency(c.MaxLatencyNs, worst, tableSize, cfg.FreqMHz)
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: connection %d: %w", c.ID, err)
	}
	windowPeriod := 0
	m = 1
	if cfg.Transactional {
		tx := TxWordsForRate(c.BandwidthMBps)
		m = analysis.BurstSlotTimes(tx, cfg.Reliable)
		wordsPerCycle := c.BandwidthMBps * 1e6 / float64(cfg.WordBytes) / (cfg.FreqMHz * 1e6)
		periodCycles := float64(tx) / wordsPerCycle
		windowPeriod = int(periodCycles / float64(phit.FlitWords))
		if windowPeriod < 1 {
			windowPeriod = 1
		}
		if ps := (m*tableSize + windowPeriod - 1) / windowPeriod; ps > latSlots {
			latSlots = ps
		}
	}
	count = bwSlots
	if latSlots > count {
		count = latSlots
	}
	windowTarget, werr := analysis.WindowSlotsForBudget(c.MaxLatencyNs, worst, cfg.FreqMHz)
	if werr != nil {
		return 0, 0, 0, fmt.Errorf("core: connection %d: %w", c.ID, werr)
	}
	if windowPeriod > 0 && windowPeriod < windowTarget {
		windowTarget = windowPeriod
	}
	return count, windowTarget, m, nil
}

// domainOf returns the clock domain of a node (tile clock in mesochronous
// mode, base otherwise). Valid after instantiate.
func (n *Network) domainOf(id topology.NodeID) *clock.Clock {
	if ck, ok := n.domains[id]; ok {
		return ck
	}
	return n.base
}
