package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/phit"
	"repro/internal/trace"
)

// tracedRun builds the small mesochronous network with a fixed seed,
// attaches a Chrome sink and a Metrics sink, runs it, and returns the
// rendered trace bytes and metrics-report JSON.
func tracedRun(t *testing.T) ([]byte, []byte) {
	t.Helper()
	m, uc := smallUseCase(t, 4)
	cfg := Config{Mode: Mesochronous, PhaseSeed: 11}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bus := trace.NewBus()
	chrome := trace.NewChrome(bus)
	chrome.SetFlitCycle(phit.FlitWords * int64(n.BaseClock().Period))
	metrics := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	n.Run(2000, 8000)

	var tr, mr bytes.Buffer
	if _, err := chrome.WriteTo(&tr); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	rep := metrics.Report(int64(n.Engine().Now()), int64(n.BaseClock().Period))
	if err := rep.WriteJSON(&mr); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return tr.Bytes(), mr.Bytes()
}

// TestTraceDeterminism: the acceptance criterion of the tracing layer —
// two builds of the same seed produce byte-identical Chrome traces and
// metric reports. Any map-ordered wiring or float-formatted timestamp
// would break this.
func TestTraceDeterminism(t *testing.T) {
	tr1, mr1 := tracedRun(t)
	tr2, mr2 := tracedRun(t)
	if !bytes.Equal(tr1, tr2) {
		t.Error("same-seed Chrome traces differ")
	}
	if !bytes.Equal(mr1, mr2) {
		t.Error("same-seed metric reports differ")
	}
	if len(tr1) == 0 || !bytes.Contains(tr1, []byte("traceEvents")) {
		t.Error("trace output empty or malformed")
	}
}

// TestTraceObservesLifecycle: a traced synchronous run records every stage
// of the flit lifecycle and the aggregates are mutually consistent.
func TestTraceObservesLifecycle(t *testing.T) {
	m, uc := smallUseCase(t, 4)
	cfg := Config{}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bus := trace.NewBus()
	metrics := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	rep := n.Run(2000, 10000)
	if !rep.AllMet() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("requirements violated under tracing:\n%s", b.String())
	}

	for _, k := range []trace.Kind{trace.Inject, trace.Send, trace.SlotStart, trace.RouterForward, trace.Eject, trace.Credit} {
		if metrics.Count(k) == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	for _, c := range uc.Connections {
		cm := metrics.Conn(c.ID)
		if cm == nil {
			t.Fatalf("connection %d unseen by tracer", c.ID)
		}
		if cm.Delivered == 0 || cm.Delivered > cm.Injected {
			t.Errorf("connection %d: delivered %d of %d injected", c.ID, cm.Delivered, cm.Injected)
		}
		if cm.Latency.N() != cm.Delivered {
			t.Errorf("connection %d: %d latency samples for %d deliveries", c.ID, cm.Latency.N(), cm.Delivered)
		}
		if lo, _, ok := cm.Latency.Range(); !ok || lo < 0 {
			t.Errorf("connection %d: implausible latency range (ok=%v lo=%v)", c.ID, ok, lo)
		}
	}
	// Detaching stops the stream.
	before := metrics.Events()
	n.AttachTracer(nil)
	n.Engine().Run(n.Engine().Now() + 5000)
	if metrics.Events() != before {
		t.Error("events emitted after detach")
	}
}

// TestTraceAsynchronousWrappers: in asynchronous mode the wrapper fires
// and the wrapped router cores emit through the bus.
func TestTraceAsynchronousWrappers(t *testing.T) {
	m, uc := smallUseCase(t, 2)
	cfg := Config{Mode: Asynchronous, PhaseSeed: 3}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bus := trace.NewBus()
	metrics := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	n.Run(4000, 12000)
	if metrics.Count(trace.WrapperFire) == 0 {
		t.Error("no wrapper fires recorded")
	}
	if metrics.Count(trace.RouterForward) == 0 {
		t.Error("no router forwards recorded from wrapped cores")
	}
	if metrics.Count(trace.Eject) == 0 {
		t.Error("no ejections recorded")
	}
}
