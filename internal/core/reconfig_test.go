package core

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/spec"
)

// reconfigSpec: app 0 is the undisturbed observer; app 1 is the one that
// gets stopped; new connections are admitted afterwards.
func reconfigSpec(t *testing.T) (*Network, *spec.UseCase) {
	t.Helper()
	n, uc := buildComposability(t, Synchronous)
	return n, uc
}

// TestReconfigurationUndisrupted is reference [16]'s claim, on this
// implementation: stopping one application, draining it, releasing its
// slots, and admitting a brand-new connection into the freed capacity
// does not move a single word of the surviving application by a single
// picosecond — compared against a run with no reconfiguration at all.
func TestReconfigurationUndisrupted(t *testing.T) {
	record := func(reconfigure bool) (map[phit.ConnID][]clock.Time, *Network, error) {
		n, uc := reconfigSpec(t)
		for _, c := range uc.Connections {
			if c.App == 0 {
				ip, _ := uc.IP(c.Dst)
				n.NIOf(ip.NI).RecordArrivals(c.ID, true)
			}
		}
		n.Run(0, 20000)
		if reconfigure {
			// Stop every app-1 connection.
			for _, c := range uc.Connections {
				if c.App == 1 {
					if err := n.CloseConnection(c.ID); err != nil {
						return nil, nil, err
					}
				}
			}
			// Admit a new connection between two previously used
			// endpoints, into the freed slots.
			newConn := spec.Connection{
				ID: 900, App: 2, Src: uc.Connections[0].Src, Dst: uc.Connections[1].Dst,
				BandwidthMBps: 60, MaxLatencyNs: 600,
			}
			if sIP, _ := uc.IP(newConn.Src); func() bool {
				d, _ := uc.IP(newConn.Dst)
				return sIP.NI == d.NI
			}() {
				// Pick another destination on a different NI.
				for _, ip := range uc.IPs {
					if s, _ := uc.IP(newConn.Src); ip.NI != s.NI {
						newConn.Dst = ip.ID
						break
					}
				}
			}
			if err := n.OpenConnection(newConn); err != nil {
				return nil, nil, err
			}
		}
		// Continue to the same absolute horizon in both runs.
		n.eng.Run(90000 * clock.Nanosecond)
		out := map[phit.ConnID][]clock.Time{}
		for _, c := range uc.Connections {
			if c.App == 0 {
				ip, _ := uc.IP(c.Dst)
				out[c.ID] = n.NIOf(ip.NI).Arrivals(c.ID)
			}
		}
		return out, n, nil
	}

	baseline, _, err := record(false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	reconfigured, n, err := record(true)
	if err != nil {
		t.Fatalf("reconfigured: %v", err)
	}
	checkIdenticalTiming(t, baseline, reconfigured)

	// The new connection must actually be running and delivering.
	info, err := n.Info(900)
	if err != nil {
		t.Fatalf("Info(new): %v", err)
	}
	if len(info.Slots) == 0 {
		t.Fatal("admitted connection has no slots")
	}
	n.eng.Run(n.eng.Now() + 30000*clock.Nanosecond)
	st := n.NIOf(n.conns[900].dstNI).InStats(900)
	if st.Delivered == 0 {
		t.Error("admitted connection delivered nothing")
	}
	if st.Latency.Max() > info.BoundNs {
		t.Errorf("admitted connection max latency %.1f exceeds bound %.1f", st.Latency.Max(), info.BoundNs)
	}
}

// TestCloseReleasesCapacity: slots freed by a closed connection are
// reusable — the same connection can be re-admitted.
func TestCloseReleasesCapacity(t *testing.T) {
	n, uc := reconfigSpec(t)
	n.Run(0, 10000)
	victim := uc.Connections[0]
	before, err := n.Info(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CloseConnection(victim.ID); err != nil {
		t.Fatalf("CloseConnection: %v", err)
	}
	if _, err := n.Info(victim.ID); err == nil {
		t.Error("closed connection still reported")
	}
	// Re-admit with a fresh id.
	readmit := victim
	readmit.ID = 901
	if err := n.OpenConnection(readmit); err != nil {
		t.Fatalf("re-admission failed: %v", err)
	}
	after, err := n.Info(901)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Slots) < len(before.Slots) {
		t.Errorf("re-admitted with %d slots, originally %d", len(after.Slots), len(before.Slots))
	}
	// The network still runs cleanly (probes active).
	n.eng.Run(n.eng.Now() + 30000*clock.Nanosecond)
}

// TestOpenConnectionAdmissionControl: a connection that cannot fit is
// rejected and the network state is unchanged.
func TestOpenConnectionAdmissionControl(t *testing.T) {
	n, uc := reconfigSpec(t)
	n.Run(0, 5000)
	huge := spec.Connection{
		ID: 902, App: 0, Src: uc.Connections[0].Src, Dst: uc.Connections[0].Dst,
		BandwidthMBps: 2500, MaxLatencyNs: 500, // above link capacity
	}
	if err := n.OpenConnection(huge); err == nil {
		t.Fatal("admission control accepted an impossible connection")
	}
	dup := uc.Connections[1]
	if err := n.OpenConnection(dup); err == nil {
		t.Fatal("accepted a duplicate connection id")
	}
	// Still healthy.
	n.eng.Run(n.eng.Now() + 10000*clock.Nanosecond)
}

// TestCloseDrainCreditStarvation: the drain loop's wait budget is derived
// from the queue depth and the credit round trip, and when even that
// budget cannot empty the queue — here because a fault kills the credit
// channel outright — CloseConnection reports the starvation instead of
// hanging or tearing down a connection with words still queued.
func TestCloseDrainCreditStarvation(t *testing.T) {
	m, uc := smallUseCase(t, 6)
	col := fault.NewCollector()
	cfg := Config{Probes: true, FaultReporter: col}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	victim := uc.Connections[0].ID
	info := n.conns[victim]
	// Drop every flit the destination NI injects: that is the victim's
	// credit channel, so deliveries continue until the initial credits run
	// out and then the source send queue fills for good.
	dstName := n.Mesh.Node(info.dstNI).Name
	plan := &fault.Plan{Seed: 3, Rates: []fault.RateRule{{Target: "." + dstName + ">", Drop: 1}}}
	if err := fault.NewCampaign(plan, col).Arm(n.Engine(), n.FaultTargets()); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	n.Run(0, 40000)
	if n.NIOf(info.srcNI).SendQueueSpace(victim) == ni.DefaultSendCapacity {
		t.Fatal("recipe failed: send queue drained despite the dead credit channel")
	}
	err = n.CloseConnection(victim)
	if err == nil {
		t.Fatal("CloseConnection succeeded with a starved, non-empty send queue")
	}
	if !strings.Contains(err.Error(), "did not drain") {
		t.Fatalf("want a drain error, got: %v", err)
	}
	// The refused close must not have released anything: the connection is
	// still alive and owns its slots.
	ci, err := n.Info(victim)
	if err != nil {
		t.Fatalf("Info after refused close: %v", err)
	}
	if len(ci.Slots) == 0 {
		t.Error("refused close released the connection's slots")
	}
}

// assertNoSlotResidue is the atomic-release property: after any sequence
// of closes, no closed connection — data or credit direction — owns a
// byte of shared state anywhere (allocation, link slot tables, live NI
// injection tables), every remaining slot owner is a live connection, and
// the allocation's own invariants hold. A violation here is exactly the
// overlap that would let a closed connection's slot be handed to a new
// owner while the old one still injects into it.
func assertNoSlotResidue(t *testing.T, n *Network, closed map[phit.ConnID]bool) {
	t.Helper()
	for id := range closed {
		if n.Alloc.ByConn[id] != nil {
			t.Errorf("closed connection %d still has an allocation", id)
		}
	}
	for _, l := range n.Mesh.Links() {
		for s := 0; s < n.Alloc.TableSize; s++ {
			o := n.Alloc.LinkOwner(l.ID, s)
			if o == phit.None {
				continue
			}
			if closed[o] {
				t.Errorf("closed connection %d still owns slot %d of link %d", o, s, l.ID)
			}
			if n.Alloc.ByConn[o] == nil {
				t.Errorf("slot %d of link %d owned by unknown connection %d", s, l.ID, o)
			}
		}
	}
	for _, nid := range n.Mesh.AllNIs() {
		tb := n.InjectionTable(nid)
		if tb == nil {
			continue
		}
		for s, o := range tb.Slots {
			if closed[o] {
				t.Errorf("closed connection %d still programmed in NI %d slot %d", o, nid, s)
			}
		}
	}
	if err := n.Alloc.Verify(); err != nil {
		t.Errorf("allocation invariants broken: %v", err)
	}
}

// TestCloseReleasesDataAndCreditSlotsAtomically closes connections one by
// one and checks the released-slots-never-overlap-a-live-owner property
// after every step, then re-admits into the freed capacity and checks it
// once more — the credit channel's slots must leave with the data slots,
// in the same step.
func TestCloseReleasesDataAndCreditSlotsAtomically(t *testing.T) {
	n, uc := reconfigSpec(t)
	n.Run(0, 10000)
	closed := map[phit.ConnID]bool{}
	var last spec.Connection
	for _, c := range uc.Connections {
		if c.App != 1 {
			continue
		}
		rev := n.conns[c.ID].rev
		if err := n.CloseConnection(c.ID); err != nil {
			t.Fatalf("CloseConnection(%d): %v", c.ID, err)
		}
		closed[c.ID], closed[rev] = true, true
		last = c
		assertNoSlotResidue(t, n, closed)
	}
	if len(closed) == 0 {
		t.Fatal("workload has no app-1 connections to close")
	}
	// Freed capacity is reusable, and re-admission does not resurrect any
	// released slot under a retired id.
	readmit := last
	readmit.ID = n.FreshConnID()
	if err := n.OpenConnection(readmit); err != nil {
		t.Fatalf("re-admission into freed capacity: %v", err)
	}
	assertNoSlotResidue(t, n, closed)
	n.eng.Run(n.eng.Now() + 20000*clock.Nanosecond)
	assertNoSlotResidue(t, n, closed)
}
