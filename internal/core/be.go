package core

import (
	"fmt"
	"sort"

	"repro/internal/aethereal"
	"repro/internal/clock"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// BEConfig parameterises the Æthereal best-effort baseline network
// (paper Section VII: same mapping and paths, all connections changed
// from GS to BE, globally synchronous).
type BEConfig struct {
	Layout    phit.HeaderLayout
	WordBytes int
	FreqMHz   float64
	// BufferWords is the per-input router buffer depth.
	BufferWords int
	// MaxPacketWords caps BE packet payload length.
	MaxPacketWords int
	// TrafficBurstFactor > 1 selects bursty generators, as in Config.
	TrafficBurstFactor float64
	// Transactional selects line-rate transaction generators sized by
	// TxWordsForRate, as in Config.
	Transactional bool
}

// ApplyDefaults fills zero fields.
func (c *BEConfig) ApplyDefaults() {
	if c.Layout.WordBits == 0 {
		c.Layout = phit.DefaultLayout
	}
	if c.WordBytes == 0 {
		c.WordBytes = 4
	}
	if c.FreqMHz == 0 {
		c.FreqMHz = 500
	}
	if c.BufferWords == 0 {
		c.BufferWords = aethereal.DefaultBufferWords
	}
	if c.MaxPacketWords == 0 {
		c.MaxPacketWords = aethereal.DefaultMaxPacketWords
	}
}

type beConnInfo struct {
	spec  spec.Connection
	srcNI topology.NodeID
	dstNI topology.NodeID
	path  *route.Path
}

// A BENetwork is a built best-effort baseline instance.
type BENetwork struct {
	Cfg  BEConfig
	Mesh *topology.Mesh
	Spec *spec.UseCase

	eng     *sim.Engine
	base    *clock.Clock
	nis     map[topology.NodeID]*aethereal.NI
	routers map[topology.NodeID]*aethereal.Router
	gens    map[phit.ConnID]*traffic.Generator
	conns   map[phit.ConnID]*beConnInfo
}

// Engine exposes the simulation engine.
func (n *BENetwork) Engine() *sim.Engine { return n.eng }

// NIOf returns the BE NI at a node.
func (n *BENetwork) NIOf(id topology.NodeID) *aethereal.NI { return n.nis[id] }

// Generator returns a connection's traffic generator.
func (n *BENetwork) Generator(c phit.ConnID) *traffic.Generator { return n.gens[c] }

// AttachTracer installs bus as the BE network's event bus and hands every
// NI its emitter (the BE NI emits the Inject/Send/Eject word lifecycle;
// wormhole routers have no TDM slots to trace). Component names are
// interned in mesh NI order, so the same build gets the same component
// ids and a byte-identical same-seed event stream. Passing a nil bus
// detaches everything.
func (n *BENetwork) AttachTracer(bus *trace.Bus) {
	n.eng.SetTracer(bus)
	for _, id := range n.Mesh.AllNIs() {
		if c := n.nis[id]; c != nil {
			if bus == nil {
				c.SetTracer(nil)
			} else {
				c.SetTracer(bus.Emitter(c.Name()))
			}
		}
	}
}

// BuildBE assembles the best-effort baseline: same mesh, same IP mapping,
// same XY paths as the aelite network, but wormhole BE routers and NIs.
// The mesh must have zero pipeline stages (the Æthereal baseline is
// globally synchronous).
func BuildBE(m *topology.Mesh, uc *spec.UseCase, cfg BEConfig) (*BENetwork, error) {
	cfg.ApplyDefaults()
	if err := uc.Validate(); err != nil {
		return nil, err
	}
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			return nil, fmt.Errorf("core: IP %s is not mapped to an NI", ip.Name)
		}
	}
	for _, l := range m.Links() {
		if l.PipelineStages != 0 {
			return nil, fmt.Errorf("core: BE baseline requires unpipelined links; link %d has %d stages", l.ID, l.PipelineStages)
		}
	}
	n := &BENetwork{
		Cfg:     cfg,
		Mesh:    m,
		Spec:    uc,
		eng:     sim.New(),
		nis:     make(map[topology.NodeID]*aethereal.NI),
		routers: make(map[topology.NodeID]*aethereal.Router),
		gens:    make(map[phit.ConnID]*traffic.Generator),
		conns:   make(map[phit.ConnID]*beConnInfo),
	}
	n.base = clock.NewMHz("clk", cfg.FreqMHz, 0)

	for _, c := range uc.Connections {
		srcIP, err := uc.IP(c.Src)
		if err != nil {
			return nil, err
		}
		dstIP, err := uc.IP(c.Dst)
		if err != nil {
			return nil, err
		}
		if srcIP.NI == dstIP.NI {
			return nil, fmt.Errorf("core: connection %d endpoints share NI %d", c.ID, srcIP.NI)
		}
		p, err := route.XY(m, srcIP.NI, dstIP.NI)
		if err != nil {
			return nil, err
		}
		n.conns[c.ID] = &beConnInfo{spec: c, srcNI: srcIP.NI, dstNI: dstIP.NI, path: p}
	}

	// Wires: per link a data wire and a reverse credit wire.
	data := make(map[topology.LinkID]*sim.Wire[phit.Phit])
	credit := make(map[topology.LinkID]*sim.Wire[int])
	for _, l := range m.Links() {
		dn := fmt.Sprintf("l%d.data", l.ID)
		cn := fmt.Sprintf("l%d.credit", l.ID)
		data[l.ID] = sim.NewWire[phit.Phit](dn)
		credit[l.ID] = sim.NewWire[int](cn)
		n.eng.AddWire(data[l.ID])
		n.eng.AddWire(credit[l.ID])
	}

	// Routers.
	for _, r := range m.Routers() {
		node := m.Node(r)
		rc := aethereal.NewRouter(node.Name, node.Ports, cfg.Layout, n.base, cfg.BufferWords)
		for p := 0; p < node.Ports; p++ {
			if l := m.InLink(r, p); l != topology.Invalid {
				rc.ConnectIn(p, data[l], credit[l])
			}
			if l := m.OutLink(r, p); l != topology.Invalid {
				// Downstream buffer depth: routers buffer
				// BufferWords; NIs drain at line rate and are
				// given the same credit window.
				rc.ConnectOut(p, data[l], credit[l], cfg.BufferWords)
			}
		}
		n.routers[r] = rc
		n.eng.Add(rc)
	}

	// NIs.
	for _, id := range m.AllNIs() {
		node := m.Node(id)
		inL := m.InLink(id, 0)
		outL := m.OutLink(id, 0)
		c := aethereal.NewNI(node.Name, n.base, cfg.Layout,
			data[inL], data[outL], credit[outL], credit[inL],
			cfg.BufferWords, cfg.MaxPacketWords)
		n.nis[id] = c
		n.eng.Add(c)
	}

	// Connections and generators, in deterministic order.
	ids := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	qidNext := make(map[topology.NodeID]int)
	for _, id := range ids {
		info := n.conns[id]
		qid := qidNext[info.dstNI]
		qidNext[info.dstNI]++
		if qid > cfg.Layout.MaxQID() {
			return nil, fmt.Errorf("core: BE NI queue ids exhausted at NI %d", info.dstNI)
		}
		hdr, err := cfg.Layout.Encode(info.path.Ports, qid, 0)
		if err != nil {
			return nil, fmt.Errorf("core: connection %d header: %w", id, err)
		}
		n.nis[info.srcNI].AddOutConn(aethereal.OutConnConfig{ID: id, Header: hdr})
		n.nis[info.dstNI].AddInConn(aethereal.InConnConfig{ID: id, QID: qid})

		name := fmt.Sprintf("gen.c%d", id)
		start := clock.Time(len(n.gens)%16) * 3 * n.base.Period
		var g *traffic.Generator
		switch {
		case cfg.Transactional:
			g = traffic.NewTransactional(name, n.base, n.nis[info.srcNI], id, info.spec.BandwidthMBps,
				cfg.WordBytes, int64(TxWordsForRate(info.spec.BandwidthMBps)), start)
		case cfg.TrafficBurstFactor > 1:
			g = traffic.NewBursty(name, n.base, n.nis[info.srcNI], id, info.spec.BandwidthMBps,
				cfg.WordBytes, 64, cfg.TrafficBurstFactor, start)
		default:
			g = traffic.NewCBR(name, n.base, n.nis[info.srcNI], id, info.spec.BandwidthMBps,
				cfg.WordBytes, start)
		}
		n.gens[id] = g
		n.eng.Add(g)
	}
	return n, nil
}

// Run simulates warm-up, clears statistics, measures, and reports.
// Guarantee fields are zero: best effort has none — that is the point.
func (n *BENetwork) Run(warmupNs, measureNs float64) *Report {
	warm := clock.Time(warmupNs * float64(clock.Nanosecond))
	meas := clock.Time(measureNs * float64(clock.Nanosecond))
	n.eng.Run(n.eng.Now() + warm)
	for _, c := range n.nis {
		c.ResetStats()
	}
	n.eng.Run(n.eng.Now() + meas)

	r := &Report{
		Name:       n.Spec.Name,
		FreqMHz:    n.Cfg.FreqMHz,
		Mode:       "best-effort",
		MeasureNs:  measureNs,
		TotalEdges: n.eng.Edges(),
	}
	ids := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := n.conns[id]
		dst := n.nis[info.dstNI]
		delivered := dst.Delivered(id)
		lat := dst.Latency(id)
		first, last := dst.Span(id)
		cr := ConnReport{
			Conn:              id,
			App:               info.spec.App,
			RequiredMBps:      info.spec.BandwidthMBps,
			RequiredLatencyNs: info.spec.MaxLatencyNs,
			PathHops:          info.path.Hops(),
			Delivered:         delivered,
		}
		if delivered > 0 {
			st := ni.ConnStats{Delivered: delivered, FirstNs: first, LastNs: last}
			cr.MeasuredMBps = st.ThroughputMBps(n.Cfg.WordBytes)
			cr.LatMinNs = lat.Min()
			cr.LatMeanNs = lat.Mean()
			cr.LatMaxNs = lat.Max()
			cr.LatP99Ns = lat.Percentile(99)
			cr.LatStdDevNs = lat.StdDev()
		}
		cr.MetThroughput = cr.MeasuredMBps >= cr.RequiredMBps*ThroughputTolerance
		cr.MetLatency = delivered > 0 && cr.LatMaxNs <= cr.RequiredLatencyNs
		cr.WithinBound = true // no analytical bound exists for BE
		r.Conns = append(r.Conns, cr)
	}
	return r
}
