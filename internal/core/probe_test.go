package core

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/topology"
)

// slotWriter drives the probed wire every cycle with a phit belonging to
// the connection that owns the *driving* cycle's TDM slot, optionally
// skewed by slotOffset flit cycles to model a misattributing writer.
type slotWriter struct {
	name       string
	clk        *clock.Clock
	out        *sim.Wire[phit.Phit]
	table      int
	slotOffset int64
}

func (w *slotWriter) Name() string          { return w.name }
func (w *slotWriter) Clock() *clock.Clock   { return w.clk }
func (w *slotWriter) Sample(now clock.Time) {}

func (w *slotWriter) Update(now clock.Time) {
	edge, ok := w.clk.EdgeIndex(now)
	if !ok {
		panic("writer off-edge")
	}
	slot := ((edge/phit.FlitWords+w.slotOffset)%int64(w.table) + int64(w.table)) % int64(w.table)
	w.out.Drive(phit.Phit{Valid: true, Kind: phit.Payload, Meta: phit.Meta{Conn: phit.ConnID(slot + 1)}})
}

// probeRun drives a probe from a clock domain distinct from the writer's
// — two clock objects with identical period and phase, so every instant
// is a coincident multi-group dispatch of the engine's min-heap scheduler
// — and returns the slot-ownership violations and observations.
func probeRun(t *testing.T, slotOffset int64) (int64, int64) {
	t.Helper()
	const tableSize = 4
	alloc := slots.NewAllocation(tableSize)
	path := &route.Path{Links: []topology.LinkID{0}, Shift: []int{0}}
	for s := 0; s < tableSize; s++ {
		alloc.Claim(phit.ConnID(s+1), path, s)
	}

	eng := sim.New()
	wire := sim.NewWire[phit.Phit]("l0")
	eng.AddWire(wire)
	// Distinct clock objects: the engine groups components per *object*,
	// so writer and probe land in different heap groups whose edges
	// always coincide.
	wClk := clock.New("w", 1000, 0)
	pClk := clock.New("p", 1000, 0)
	col := fault.NewCollector()
	w := &slotWriter{name: "writer", clk: wClk, out: wire, table: tableSize}
	p := &probe{name: "probe.l0", clk: pClk, wire: wire, alloc: alloc, link: 0, rep: col}
	// slotOffset shifts which slot the *writer* stamps, modelling a wire
	// value attributed to the wrong cycle.
	w.slotOffset = slotOffset
	eng.Add(w)
	eng.Add(p)
	eng.Run(clock.Time(tableSize * phit.FlitWords * 1000 * 3))
	return col.Total(), p.observed
}

// TestProbeSamplesPreCommitValues: the probe must observe the value the
// wire held *before* the current instant's drives commit, and attribute
// it to the driving cycle (edge-1), even when writer and probe sit in
// different min-heap clock groups sharing every edge instant. An engine
// that committed wires between group dispatches, or a probe attributing
// to the sampling cycle, shifts the observed slot by one and trips
// ownership violations at every flit boundary.
func TestProbeSamplesPreCommitValues(t *testing.T) {
	violations, observed := probeRun(t, 0)
	if violations != 0 {
		t.Errorf("aligned writer produced %d slot-ownership violations", violations)
	}
	if observed == 0 {
		t.Error("probe observed nothing")
	}
}

// TestProbeDetectsSlotSkew guards the regression test's sensitivity: a
// writer stamping the next flit cycle's owner must be caught.
func TestProbeDetectsSlotSkew(t *testing.T) {
	violations, _ := probeRun(t, 1)
	if violations == 0 {
		t.Error("probe missed a one-slot schedule skew")
	}
}
