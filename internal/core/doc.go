// Package core is the public façade of the aelite reproduction: it turns a
// use-case spec plus a topology into a fully allocated, runnable,
// cycle-accurate network, and reports per-connection guarantees and
// measurements.
//
// The design flow mirrors the Æthereal tooling the paper builds on
// (reference [16]): map IPs to NIs, route each connection (XY with YX
// fallback), size its TDM slot reservation from its throughput and latency
// requirements, allocate contention-free slots, derive buffer sizes and
// credits, then instantiate routers, link pipeline stages, NIs and traffic
// and simulate.
//
// Build is all-or-nothing: a use case either gets every connection
// allocated (searching candidate slot-table sizes if none is pinned) or
// an error. PlanAllocation is the allocation-only, best-effort
// counterpart used by scale studies to measure success rates; the
// Allocator config field selects the slots.Allocator strategy for both.
// A use case must never be shared across builds, and PrepareTopology
// must run on a mesh before it is built.
package core
