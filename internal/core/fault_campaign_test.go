package core

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
)

// buildMesoWithFaults assembles the small mesochronous mesh with the given
// checkerboard skew override and reporter.
func buildMesoWithFaults(t *testing.T, skewPS int64, rep fault.Reporter) *Network {
	t.Helper()
	m, uc := smallUseCase(t, 6)
	cfg := Config{Mode: Mesochronous, Probes: true, FaultReporter: rep, SkewOverridePS: skewPS}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// TestCampaignByteIdenticalSummaries: the acceptance criterion for
// reproducibility — two campaigns with the same plan and seed on the same
// network render byte-identical summaries; a different seed does not.
func TestCampaignByteIdenticalSummaries(t *testing.T) {
	summary := func(seed int64) string {
		plan, err := fault.ParseSpec("drop@6000:l0.:2;random:5", seed)
		if err != nil {
			t.Fatal(err)
		}
		col := fault.NewCollector()
		n := buildMesoWithFaults(t, 0, col)
		n.AddInvariantCheckers(col)
		campaign := fault.NewCampaign(plan, col)
		if err := campaign.Arm(n.Engine(), n.FaultTargets()); err != nil {
			t.Fatal(err)
		}
		n.Run(4000, 20000)
		var b strings.Builder
		campaign.Summarize().Write(&b)
		return b.String()
	}
	a, b := summary(42), summary(42)
	if a != b {
		t.Errorf("same seed, different summaries:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if c := summary(43); c == a {
		t.Error("different seeds produced byte-identical campaigns")
	}
}

// TestSkewSweepEnvelope: the acceptance criterion for the skew campaign —
// with the checkerboard override one picosecond past half a period, the
// collecting run completes and every link stage reports at least one
// skew-bound violation; at exactly half a period nothing is reported; and
// strict mode refuses to build the out-of-envelope network at all.
func TestSkewSweepEnvelope(t *testing.T) {
	half := int64(clock.PeriodFromMHz(500)) / 2

	t.Run("inside", func(t *testing.T) {
		col := fault.NewCollector()
		n := buildMesoWithFaults(t, half, col)
		n.AddInvariantCheckers(col)
		n.Run(4000, 20000)
		if col.Total() != 0 {
			t.Errorf("violations at skew == period/2 — the bound must be inclusive: %v", col.Violations())
		}
	})

	t.Run("outside-collect", func(t *testing.T) {
		col := fault.NewCollector()
		n := buildMesoWithFaults(t, half+1, col)
		n.AddInvariantCheckers(col)
		rep := n.Run(4000, 20000) // must complete despite the violations
		if rep == nil {
			t.Fatal("no report")
		}
		stages := len(n.Stages())
		if stages == 0 {
			t.Fatal("mesochronous network has no link stages")
		}
		flagged := map[string]bool{}
		for _, v := range col.Violations() {
			if v.Kind == fault.SkewBound {
				flagged[v.Component] = true
			}
		}
		if len(flagged) != stages {
			t.Errorf("%d of %d stages reported the out-of-envelope skew", len(flagged), stages)
		}
	})

	t.Run("outside-strict", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("strict mode built a network one picosecond past the skew envelope")
			}
			if !strings.Contains(r.(string), "skew") {
				t.Errorf("panic %v does not mention skew", r)
			}
		}()
		buildMesoWithFaults(t, half+1, nil)
	})
}
