package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/clock"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/wrapper"
)

// instantiateAsync builds the plesiochronous network of paper Section VI:
// every router and NI runs on its own clock inside an asynchronous
// wrapper, and every link is a primed token channel.
func (n *Network) instantiateAsync() error {
	period := clock.PeriodFromMHz(n.Cfg.FreqMHz)
	n.base = clock.New("clk", period, 0)
	rng := rand.New(rand.NewSource(n.Cfg.PhaseSeed))

	// Per-node plesiochronous clocks: frequency off by up to ±PPM, and
	// an arbitrary phase within one period.
	nodeClk := make(map[topology.NodeID]*clock.Clock)
	for _, node := range n.Mesh.Nodes() {
		ppm := 0.0
		if n.Cfg.PPM > 0 {
			ppm = (2*rng.Float64() - 1) * n.Cfg.PPM
		}
		nodeClk[node.ID] = clock.Plesiochronous(n.base, "clk."+node.Name, ppm,
			clock.Duration(rng.Int63n(int64(period))))
		n.faultClks = append(n.faultClks, nodeClk[node.ID])
	}

	// Token channels per link. Transfer delay: the 2-cycle registered
	// fire plus synchronisation, in nominal time.
	chans := make(map[topology.LinkID]*wrapper.Channel)
	for _, l := range n.Mesh.Links() {
		if l.PipelineStages != wrapper.InitialTokens-1 {
			return fmt.Errorf("core: link %d has %d pipeline stages; asynchronous mode requires %d on every link (call PrepareTopology before Build)",
				l.ID, l.PipelineStages, wrapper.InitialTokens-1)
		}
		name := fmt.Sprintf("ch%d.%s>%s", l.ID, n.Mesh.Node(l.From).Name, n.Mesh.Node(l.To).Name)
		ch := wrapper.NewChannel(name, 2*period)
		chans[l.ID] = ch
		n.eng.AddWire(ch)
	}

	// Wrapped routers.
	for _, r := range n.Mesh.Routers() {
		node := n.Mesh.Node(r)
		core := router.NewCore(node.Name, node.Ports, n.Cfg.Layout)
		core.SetReporter(n.Cfg.FaultReporter)
		w := wrapper.New("wrap."+node.Name, nodeClk[r], wrapper.NewRouterActor(core))
		w.SetReporter(n.Cfg.FaultReporter)
		for p := 0; p < node.Ports; p++ {
			if l := n.Mesh.InLink(r, p); l != topology.Invalid {
				w.ConnectIn(p, chans[l])
			}
			if l := n.Mesh.OutLink(r, p); l != topology.Invalid {
				w.ConnectOut(p, chans[l])
			}
		}
		n.wrappers = append(n.wrappers, w)
		n.eng.Add(w)
	}

	// Wrapped NIs.
	for _, id := range n.Mesh.AllNIs() {
		node := n.Mesh.Node(id)
		table := n.Alloc.NITable(id)
		n.niTables[id] = table
		c := ni.New(node.Name, nodeClk[id], n.Cfg.Layout, table, nil, nil)
		c.SetReporter(n.Cfg.FaultReporter)
		n.nis[id] = c
		w := wrapper.New("wrap."+node.Name, nodeClk[id], wrapper.NewNIActor(c))
		w.SetReporter(n.Cfg.FaultReporter)
		w.ConnectIn(0, chans[n.Mesh.InLink(id, 0)])
		w.ConnectOut(0, chans[n.Mesh.OutLink(id, 0)])
		n.wrappers = append(n.wrappers, w)
		n.eng.Add(w)
	}

	for id, ck := range nodeClk {
		n.domains[id] = ck
	}
	// Connections and generators (identical bookkeeping to the
	// synchronous path).
	qidNext := n.qidNext
	ids := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := n.conns[id]
		dataQID := qidNext[info.dstNI]
		qidNext[info.dstNI]++
		revQID := qidNext[info.srcNI]
		qidNext[info.srcNI]++
		if dataQID > n.Cfg.Layout.MaxQID() || revQID > n.Cfg.Layout.MaxQID() {
			return fmt.Errorf("core: NI queue ids exhausted (layout allows %d queues per NI)", n.Cfg.Layout.MaxQID()+1)
		}
		dataHdrs, err := slotHeaders(n.Cfg.Layout, n.Alloc.ByConn[id], dataQID)
		if err != nil {
			return fmt.Errorf("core: connection %d header: %w", id, err)
		}
		revHdrs, err := slotHeaders(n.Cfg.Layout, n.Alloc.ByConn[info.rev], revQID)
		if err != nil {
			return fmt.Errorf("core: connection %d reverse header: %w", id, err)
		}
		src, dst := n.nis[info.srcNI], n.nis[info.dstNI]
		src.AddOutConn(ni.OutConnConfig{ID: id, Headers: dataHdrs, InitialCredits: info.recvCap, PairedIn: info.rev})
		dst.AddInConn(ni.InConnConfig{ID: id, QID: dataQID, RecvCapacity: info.recvCap, CreditFor: info.rev, AutoDrain: true})
		dst.AddOutConn(ni.OutConnConfig{ID: info.rev, Headers: revHdrs, InitialCredits: 0, PairedIn: id})
		src.AddInConn(ni.InConnConfig{ID: info.rev, QID: revQID, RecvCapacity: 0, CreditFor: id, AutoDrain: true})

		g := buildGenerator(n.Cfg, info, nodeClk[info.srcNI], src, len(n.gens))
		n.gens[id] = g
		n.eng.Add(g)
	}
	n.wireReliable()
	return nil
}
