package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/link"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/reliable"
	"repro/internal/replay"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/wrapper"
)

// Mode selects the clocking discipline of the network.
type Mode int

const (
	// Synchronous: one global clock, direct links (the baseline aelite
	// of paper Section IV, with its global clock-tree burden).
	Synchronous Mode = iota
	// Mesochronous: every router tile (router + its NIs) has a random
	// phase offset within half a period, and inter-router links carry
	// mesochronous link pipeline stages (paper Section V).
	Mesochronous
	// Asynchronous: every router and every NI runs on its own
	// plesiochronous clock inside an asynchronous wrapper; all links are
	// token channels (paper Section VI).
	Asynchronous
)

func (m Mode) String() string {
	switch m {
	case Synchronous:
		return "synchronous"
	case Mesochronous:
		return "mesochronous"
	case Asynchronous:
		return "asynchronous"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterises network construction. ApplyDefaults fills zero
// fields.
type Config struct {
	Layout    phit.HeaderLayout
	WordBytes int
	// TableSize is the TDM slot table size; 0 lets Build search
	// candidate sizes until allocation succeeds.
	TableSize int
	FreqMHz   float64
	Mode      Mode
	// StagesPerLink is the number of link pipeline stages on each
	// router-router link in Mesochronous mode (>= 1).
	StagesPerLink int
	// FIFOForwardCycles is the bi-synchronous FIFO forwarding delay in
	// cycles (the paper assumes 1-2; with maximum skew, 1 keeps the
	// alignment at exactly one flit cycle).
	FIFOForwardCycles int
	// PhaseSeed randomises tile clock phases in Mesochronous mode.
	PhaseSeed int64
	// Probes enables dynamic TDM-ownership verification on every link
	// entry (panics on any violation of the allocated schedule).
	Probes bool
	// TrafficBurstFactor > 1 makes generators bursty (on/off) at the
	// same average rate; 0 or 1 selects CBR.
	TrafficBurstFactor float64
	// Transactional makes every IP emit whole transactions at line rate
	// (words sized by TxWordsForRate) instead of smooth CBR, and sizes
	// slot reservations and latency bounds for transaction drains.
	Transactional bool
	// PPM is the maximum plesiochronous frequency deviation, in parts
	// per million, of each element's clock in Asynchronous mode.
	PPM float64
	// FaultReporter, when non-nil, switches every component's envelope
	// checks from fail-fast panics to structured fault.Violation records
	// delivered to the reporter (typically a *fault.Collector), and the
	// components degrade gracefully past each violation.
	FaultReporter fault.Reporter
	// Reliable wraps every NI in the end-to-end reliability shell
	// (internal/reliable): CRC-stamped flits, in-order receive filtering,
	// cumulative acks instead of in-header credits, go-back-N
	// retransmission and link quarantine. Off (the default), the baseline
	// protocol runs untouched.
	Reliable bool
	// RetryBudget bounds the reliability layer's consecutive resend
	// rounds per connection before quarantine (0 selects
	// reliable.DefaultRetryBudget). Ignored without Reliable.
	RetryBudget int
	// FastReplay installs the hyperperiod replay fast path
	// (internal/replay): the engine records one hyperperiod of the
	// cycle-accurate schedule, and once two consecutive boundary
	// fingerprints match, replays it without per-component dispatch.
	// Configurations that are not provably periodic (transactional
	// traffic, asynchronous wrappers, reliability retransmission, armed
	// fault intercepts) fall back to cycle-accurate execution untouched,
	// so enabling it is always observation-safe.
	FastReplay bool
	// Allocator selects the slot/path allocation strategy by name:
	// "greedy" (the baseline; also the empty string) or "ripup" (the
	// Even & Fais-style rip-up-and-reroute allocator). See slots.ByName.
	Allocator string
	// UncappedPaths lifts the header path-field filter (Layout.MaxHops)
	// during allocation-only planning, so PlanAllocation can evaluate
	// slot/path allocation on meshes whose diameter exceeds the
	// single-word-header operating envelope (TDM allocation is
	// independent of header encoding). Build ignores it: a runnable
	// network needs every route encodable in one header word.
	UncappedPaths bool
	// SkewOverridePS, when non-zero in Mesochronous mode, replaces the
	// random in-envelope tile phases with a deterministic checkerboard:
	// tiles at even Manhattan parity get phase 0, odd parity get this
	// value, so every inter-router link sees exactly this skew. Values
	// past half a period deliberately leave the paper's operating
	// envelope (strict mode then fails fast at Build; collecting mode
	// records SkewBound violations and runs anyway).
	SkewOverridePS int64
}

// ApplyDefaults fills zero-valued fields with the paper's defaults: 32-bit
// words, 500 MHz, synchronous, one stage per link in mesochronous mode.
func (c *Config) ApplyDefaults() {
	if c.Layout.WordBits == 0 {
		c.Layout = phit.DefaultLayout
	}
	if c.WordBytes == 0 {
		c.WordBytes = 4
	}
	if c.FreqMHz == 0 {
		c.FreqMHz = 500
	}
	if c.StagesPerLink == 0 {
		c.StagesPerLink = 1
	}
	if c.FIFOForwardCycles == 0 {
		c.FIFOForwardCycles = 1
	}
}

// connInfo is everything the builder derived for one data connection.
type connInfo struct {
	spec     spec.Connection
	srcNI    topology.NodeID
	dstNI    topology.NodeID
	path     *route.Path
	slotSet  []int
	rev      phit.ConnID
	revPath  *route.Path
	revSlots []int

	guaranteeMBps float64
	boundNs       float64
	recvCap       int
	ackRTSlots    int // reverse-channel slot round trip (ack/credit return)
}

// A Network is a built, runnable aelite instance.
type Network struct {
	Cfg   Config
	Mesh  *topology.Mesh
	Spec  *spec.UseCase
	Alloc *slots.Allocation

	eng      *sim.Engine
	base     *clock.Clock
	nis      map[topology.NodeID]*ni.NI
	routers  map[topology.NodeID]*router.Component
	gens     map[phit.ConnID]*traffic.Generator
	conns    map[phit.ConnID]*connInfo
	stages   []*link.Stage
	niTables map[topology.NodeID]*slots.Table
	qidNext  map[topology.NodeID]int
	domains  map[topology.NodeID]*clock.Clock

	// Fault-injection surface, in construction (= deterministic) order.
	wrappers  []*wrapper.Wrapper
	linkWires []fault.LinkTarget
	linkClks  []*clock.Clock // writer-domain clock per linkWires entry
	faultClks []*clock.Clock // every mutable (non-base) clock

	// pendingQuar queues quarantine transitions recorded by the
	// reliability endpoints' hooks, drained by TakeQuarantined.
	pendingQuar []QuarantineEvent

	// prog is the installed hyperperiod replay program (nil unless
	// Config.FastReplay).
	prog *replay.Program

	// idHigh is the highest connection id (data or credit) ever used;
	// retired marks closed ids. Both guard re-admission: NI queue RAM
	// stays registered after a close, so ids are never reused.
	idHigh  phit.ConnID
	retired map[phit.ConnID]bool
}

// Engine exposes the simulation engine (for custom drivers and tests).
func (n *Network) Engine() *sim.Engine { return n.eng }

// BaseClock returns the nominal network clock.
func (n *Network) BaseClock() *clock.Clock { return n.base }

// NIOf returns the NI component at a node.
func (n *Network) NIOf(id topology.NodeID) *ni.NI { return n.nis[id] }

// Stages returns the mesochronous link pipeline stages (empty in
// synchronous mode).
func (n *Network) Stages() []*link.Stage { return n.stages }

// Generator returns the traffic generator of a data connection.
func (n *Network) Generator(c phit.ConnID) *traffic.Generator { return n.gens[c] }

// candidateTableSizes are tried in order when Config.TableSize is zero.
var candidateTableSizes = []int{8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}

// Build assembles a network for the use case on the mesh. The use case
// must be validated and its IPs mapped (spec.MapIPsRoundRobin or manual).
// Call PrepareTopology on the mesh first so routing knows the link
// pipeline depths this config instantiates.
func Build(m *topology.Mesh, uc *spec.UseCase, cfg Config) (*Network, error) {
	cfg.ApplyDefaults()
	cfg.UncappedPaths = false // planning-only relaxation; headers must encode

	if err := uc.Validate(); err != nil {
		return nil, err
	}
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			return nil, fmt.Errorf("core: IP %s is not mapped to an NI", ip.Name)
		}
	}
	sizes := candidateTableSizes
	if cfg.TableSize != 0 {
		sizes = []int{cfg.TableSize}
	}
	var (
		alloc *slots.Allocation
		infos map[phit.ConnID]*connInfo
		err   error
	)
	for _, s := range sizes {
		alloc, infos, err = allocate(m, uc, cfg, s)
		if err == nil {
			cfg.TableSize = s
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: allocation failed for all table sizes: %w", err)
	}
	if err := alloc.Verify(); err != nil {
		return nil, fmt.Errorf("core: allocator produced a contended schedule: %w", err)
	}
	n := &Network{
		Cfg:      cfg,
		Mesh:     m,
		Spec:     uc,
		Alloc:    alloc,
		eng:      sim.New(),
		nis:      make(map[topology.NodeID]*ni.NI),
		routers:  make(map[topology.NodeID]*router.Component),
		gens:     make(map[phit.ConnID]*traffic.Generator),
		conns:    infos,
		niTables: make(map[topology.NodeID]*slots.Table),
		qidNext:  make(map[topology.NodeID]int),
		domains:  make(map[topology.NodeID]*clock.Clock),
		retired:  make(map[phit.ConnID]bool),
	}
	for id, info := range infos {
		if id > n.idHigh {
			n.idHigh = id
		}
		if info.rev > n.idHigh {
			n.idHigh = info.rev
		}
	}
	if cfg.Mode == Asynchronous {
		// Wrapped operation relaxes the latency bound: every hop
		// re-aligns to a local flit cycle (up to one extra flit
		// cycle per hop) and the slowest clock may run PPM slow.
		for _, info := range n.conns {
			extra := float64(phit.FlitWords*len(info.path.Links)) * 1e3 / cfg.FreqMHz
			info.boundNs = (info.boundNs + extra) * (1 + cfg.PPM/1e6)
		}
		if err := n.instantiateAsync(); err != nil {
			return nil, err
		}
		n.installReplay()
		return n, nil
	}
	if err := n.instantiate(); err != nil {
		return nil, err
	}
	n.installReplay()
	return n, nil
}

// installReplay attaches the hyperperiod replay program when configured.
// Every link wire (entry, pipeline-internal and exit) joins the
// fingerprinted state set; NI queues, link FIFOs and router registers are
// fingerprinted by their owning components.
func (n *Network) installReplay() {
	if !n.Cfg.FastReplay {
		return
	}
	p := replay.New(n.eng)
	seen := make(map[*sim.Wire[phit.Phit]]bool)
	reg := func(w *sim.Wire[phit.Phit]) {
		if w != nil && !seen[w] {
			seen[w] = true
			p.RegisterWire(w)
		}
	}
	for _, lt := range n.linkWires {
		reg(lt.Wire)
	}
	for _, st := range n.stages {
		reg(st.InWire())
		reg(st.OutWire())
	}
	p.Install()
	n.prog = p
}

// Replay returns the installed hyperperiod replay program, or nil when
// Config.FastReplay is off.
func (n *Network) Replay() *replay.Program { return n.prog }

// allocate routes and slot-allocates every connection (and its reverse
// credit channel) for one candidate table size.
func allocate(m *topology.Mesh, uc *spec.UseCase, cfg Config, tableSize int) (*slots.Allocation, map[phit.ConnID]*connInfo, error) {
	al, err := slots.ByName(cfg.Allocator)
	if err != nil {
		return nil, nil, err
	}
	infos, requests, err := buildRequests(m, uc, cfg, tableSize)
	if err != nil {
		return nil, nil, err
	}
	alloc, err := slots.AllocateWith(al, tableSize, requests)
	if err != nil {
		return nil, nil, err
	}
	for _, info := range infos {
		as := alloc.ByConn[info.spec.ID]
		ras := alloc.ByConn[info.rev]
		info.path = usedWorstPath(as)
		info.slotSet = as.Slots
		info.revPath = usedWorstPath(ras)
		info.revSlots = ras.Slots
		b := analysis.ConnectionBounds(info.path, as.Slots, tableSize, cfg.FreqMHz, cfg.WordBytes, analysisMode(cfg, info.spec.BandwidthMBps))
		info.guaranteeMBps = b.GuaranteeMBps
		info.boundNs = b.LatencyNs
		rt := analysis.CreditRoundTripSlots(ras.Slots, info.revPath, tableSize)
		info.ackRTSlots = rt
		info.recvCap = analysis.RecvCapacityWords(len(as.Slots), rt, tableSize)
	}
	return alloc, infos, nil
}

// buildRequests routes every connection and sizes its slot request (and
// its reverse credit channel's) for one candidate table size, without
// allocating anything.
func buildRequests(m *topology.Mesh, uc *spec.UseCase, cfg Config, tableSize int) (map[phit.ConnID]*connInfo, []slots.Request, error) {
	infos := make(map[phit.ConnID]*connInfo, len(uc.Connections))
	var requests []slots.Request
	// Reverse connections get ids above the data range.
	maxID := phit.ConnID(0)
	for _, c := range uc.Connections {
		if c.ID > maxID {
			maxID = c.ID
		}
	}
	revBase := maxID + 1
	for i, c := range uc.Connections {
		srcIP, err := uc.IP(c.Src)
		if err != nil {
			return nil, nil, err
		}
		dstIP, err := uc.IP(c.Dst)
		if err != nil {
			return nil, nil, err
		}
		if srcIP.NI == dstIP.NI {
			return nil, nil, fmt.Errorf("core: connection %d endpoints share NI %d; local traffic bypasses the NoC", c.ID, srcIP.NI)
		}
		// Several minimal-route candidates (plus detours) defeat
		// slot-alignment fragmentation on loaded meshes (TDM never
		// blocks in-network, so any route is safe). Candidates whose
		// hop count exceeds the header path field are unusable.
		fwdPaths, err := route.Candidates(m, srcIP.NI, dstIP.NI, 6)
		if err != nil {
			return nil, nil, err
		}
		revPaths, err := route.Candidates(m, dstIP.NI, srcIP.NI, 6)
		if err != nil {
			return nil, nil, err
		}
		if !cfg.UncappedPaths {
			fwdPaths = fitHeader(fwdPaths, cfg.Layout)
			revPaths = fitHeader(revPaths, cfg.Layout)
		}
		if len(fwdPaths) == 0 || len(revPaths) == 0 {
			return nil, nil, fmt.Errorf("core: connection %d has no route that fits the %d-hop header path field",
				c.ID, cfg.Layout.MaxHops())
		}

		// Size for the worst (largest shift) candidate path so the
		// bound holds whichever is picked (minimal routes on a
		// uniform mesh all share it, but stay general).
		worst := fwdPaths[0]
		for _, p := range fwdPaths[1:] {
			if p.TotalShift > worst.TotalShift {
				worst = p
			}
		}
		count, windowTarget, m, err := sizeConnection(cfg, c, worst, tableSize)
		if err != nil {
			return nil, nil, err
		}
		rev := revBase + phit.ConnID(i)
		info := &connInfo{spec: c, srcNI: srcIP.NI, dstNI: dstIP.NI, rev: rev}
		infos[c.ID] = info

		requests = append(requests,
			slots.Request{Conn: c.ID, Paths: fwdPaths, Count: count, GapTarget: windowTarget, WindowSlots: m},
			slots.Request{Conn: rev, Paths: revPaths, Count: analysis.RevSlots(count, cfg.Layout.MaxCredits())},
		)
	}
	return infos, requests, nil
}

// instantiate builds clocks, wires, routers, link stages, NIs, probes and
// traffic generators.
func (n *Network) instantiate() error {
	period := clock.PeriodFromMHz(n.Cfg.FreqMHz)
	n.base = clock.New("clk", period, 0)
	rng := rand.New(rand.NewSource(n.Cfg.PhaseSeed))
	fwdDelay := clock.Duration(n.Cfg.FIFOForwardCycles) * period

	// Tile phases are drawn within the window that keeps every link's
	// alignment at exactly one flit cycle: pairwise skew at most half a
	// period (the paper's bound) and, for slower FIFOs, at most
	// 2 cycles minus the forwarding delay (see link.NewStage).
	phaseWindow := period / 2
	if w := 2*period - fwdDelay; w < phaseWindow {
		phaseWindow = w
	}
	drawPhase := func() clock.Duration {
		if phaseWindow <= 0 {
			return 0
		}
		return clock.Duration(rng.Int63n(int64(phaseWindow) + 1))
	}

	// Per-router-tile clocks: the router and its NIs share one domain. A
	// skew override replaces the random in-envelope phases with a
	// checkerboard, giving every inter-router link exactly that skew
	// (adjacent routers always differ in Manhattan parity on a mesh).
	tileClk := make(map[topology.NodeID]*clock.Clock)
	for _, r := range n.Mesh.Routers() {
		ck := n.base
		if n.Cfg.Mode == Mesochronous {
			node := n.Mesh.Node(r)
			ph := drawPhase()
			if n.Cfg.SkewOverridePS != 0 {
				ph = 0
				if (node.X+node.Y)%2 != 0 {
					ph = clock.Duration(n.Cfg.SkewOverridePS)
				}
			}
			ck = clock.Mesochronous(n.base, fmt.Sprintf("clk.%s", node.Name), ph)
			n.faultClks = append(n.faultClks, ck)
		}
		tileClk[r] = ck
	}
	domainOf := func(id topology.NodeID) *clock.Clock {
		node := n.Mesh.Node(id)
		if node.Kind == topology.Router {
			return tileClk[id]
		}
		return tileClk[node.Router]
	}
	for _, node := range n.Mesh.Nodes() {
		n.domains[node.ID] = domainOf(node.ID)
	}

	// Wires per link: entry (driven by From) and exit (read by To).
	entry := make(map[topology.LinkID]*sim.Wire[phit.Phit])
	exit := make(map[topology.LinkID]*sim.Wire[phit.Phit])
	for _, l := range n.Mesh.Links() {
		// The allocator's per-stage slot shift must match what this
		// mode instantiates; PrepareTopology sets it before routing.
		wantStages := 0
		if n.Cfg.Mode == Mesochronous && n.Mesh.Node(l.From).Kind == topology.Router &&
			n.Mesh.Node(l.To).Kind == topology.Router {
			wantStages = n.Cfg.StagesPerLink
		}
		if l.PipelineStages != wantStages {
			return fmt.Errorf("core: link %d has %d pipeline stages in the topology but mode %s instantiates %d; call PrepareTopology before Build",
				l.ID, l.PipelineStages, n.Cfg.Mode, wantStages)
		}
		name := fmt.Sprintf("l%d.%s>%s", l.ID, n.Mesh.Node(l.From).Name, n.Mesh.Node(l.To).Name)
		w := sim.NewWire[phit.Phit](name)
		wClk, rClk := domainOf(l.From), domainOf(l.To)
		// Wires commit with their writer's clock group: the entry wire is
		// driven by the From component, the exit wire by the last pipeline
		// stage, which NewStage clocks in the reader's domain.
		n.eng.AddWireClocked(w, wClk)
		entry[l.ID] = w
		n.linkWires = append(n.linkWires, fault.LinkTarget{Name: name, Wire: w})
		n.linkClks = append(n.linkClks, wClk)
		if wantStages == 0 {
			if wClk != rClk {
				return fmt.Errorf("core: link %s crosses clock domains without pipeline stages", name)
			}
			exit[l.ID] = w
			continue
		}
		out := sim.NewWire[phit.Phit](name + ".out")
		n.eng.AddWireClocked(out, rClk)
		stageClks := make([]*clock.Clock, wantStages)
		for i := range stageClks {
			if i == wantStages-1 {
				stageClks[i] = rClk
			} else {
				ph := drawPhase()
				if n.Cfg.SkewOverridePS != 0 {
					// Deeper pipelines keep the override on the first hop
					// and land the rest in the reader's phase.
					ph = rClk.Phase
				}
				stageClks[i] = clock.Mesochronous(n.base, fmt.Sprintf("%s.st%d", name, i), ph)
				n.faultClks = append(n.faultClks, stageClks[i])
			}
		}
		sts := link.PipelineWith(name, n.eng, w, out, wClk, stageClks, fwdDelay, n.Cfg.FaultReporter)
		n.stages = append(n.stages, sts...)
		exit[l.ID] = out
	}

	// Routers.
	for _, r := range n.Mesh.Routers() {
		node := n.Mesh.Node(r)
		rc := router.NewComponent(node.Name, node.Ports, n.Cfg.Layout, tileClk[r])
		rc.SetReporter(n.Cfg.FaultReporter)
		for p := 0; p < node.Ports; p++ {
			if l := n.Mesh.InLink(r, p); l != topology.Invalid {
				rc.ConnectIn(p, exit[l])
			}
			if l := n.Mesh.OutLink(r, p); l != topology.Invalid {
				rc.ConnectOut(p, entry[l])
			}
		}
		n.routers[r] = rc
		n.eng.Add(rc)
	}

	// NIs: slot tables, connections, queue ids. The table objects are
	// retained: run-time reconfiguration reprograms them in place.
	qidNext := n.qidNext
	for _, id := range n.Mesh.AllNIs() {
		node := n.Mesh.Node(id)
		table := n.Alloc.NITable(id)
		n.niTables[id] = table
		inW := exit[n.Mesh.InLink(id, 0)]
		outW := entry[n.Mesh.OutLink(id, 0)]
		c := ni.New(node.Name, domainOf(id), n.Cfg.Layout, table, inW, outW)
		c.SetReporter(n.Cfg.FaultReporter)
		n.nis[id] = c
		n.eng.Add(c)
	}
	// Deterministic connection order.
	ids := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := n.conns[id]
		// Queue ids at the destination (data) and source (credits).
		dataQID := qidNext[info.dstNI]
		qidNext[info.dstNI]++
		revQID := qidNext[info.srcNI]
		qidNext[info.srcNI]++
		if dataQID > n.Cfg.Layout.MaxQID() || revQID > n.Cfg.Layout.MaxQID() {
			return fmt.Errorf("core: NI queue ids exhausted (layout allows %d queues per NI)", n.Cfg.Layout.MaxQID()+1)
		}
		dataHdrs, err := slotHeaders(n.Cfg.Layout, n.Alloc.ByConn[id], dataQID)
		if err != nil {
			return fmt.Errorf("core: connection %d header: %w", id, err)
		}
		revHdrs, err := slotHeaders(n.Cfg.Layout, n.Alloc.ByConn[info.rev], revQID)
		if err != nil {
			return fmt.Errorf("core: connection %d reverse header: %w", id, err)
		}
		src, dst := n.nis[info.srcNI], n.nis[info.dstNI]
		// Data direction: out at src, in at dst.
		src.AddOutConn(ni.OutConnConfig{
			ID: id, Headers: dataHdrs, InitialCredits: info.recvCap, PairedIn: info.rev,
		})
		dst.AddInConn(ni.InConnConfig{
			ID: id, QID: dataQID, RecvCapacity: info.recvCap, CreditFor: info.rev, AutoDrain: true,
		})
		// Credit direction: out at dst, in at src.
		dst.AddOutConn(ni.OutConnConfig{
			ID: info.rev, Headers: revHdrs, InitialCredits: 0, PairedIn: id,
		})
		src.AddInConn(ni.InConnConfig{
			ID: info.rev, QID: revQID, RecvCapacity: 0, CreditFor: id, AutoDrain: true,
		})
		// Traffic.
		g := buildGenerator(n.Cfg, info, domainOf(info.srcNI), src, len(n.gens))
		n.gens[id] = g
		n.eng.Add(g)
	}

	n.wireReliable()

	// Probes.
	if n.Cfg.Probes {
		for _, l := range n.Mesh.Links() {
			p := &probe{
				name:  fmt.Sprintf("probe.l%d", l.ID),
				clk:   domainOf(l.From),
				wire:  entry[l.ID],
				alloc: n.Alloc,
				link:  l.ID,
				rep:   n.Cfg.FaultReporter,
			}
			n.eng.Add(p)
		}
	}
	return nil
}

func buildGenerator(cfg Config, info *connInfo, clk *clock.Clock, src *ni.NI, idx int) *traffic.Generator {
	name := fmt.Sprintf("gen.c%d", info.spec.ID)
	start := clock.Time(idx%16) * 3 * clk.Period // stagger packet phases
	switch {
	case cfg.Transactional:
		return traffic.NewTransactional(name, clk, src, info.spec.ID, info.spec.BandwidthMBps,
			cfg.WordBytes, int64(TxWordsForRate(info.spec.BandwidthMBps)), start)
	case cfg.TrafficBurstFactor > 1:
		return traffic.NewBursty(name, clk, src, info.spec.ID, info.spec.BandwidthMBps,
			cfg.WordBytes, 64, cfg.TrafficBurstFactor, start)
	default:
		return traffic.NewCBR(name, clk, src, info.spec.ID, info.spec.BandwidthMBps, cfg.WordBytes, start)
	}
}

// wireReliable installs the end-to-end reliability shell on every NI when
// Config.Reliable is set: each data connection gets a windowed sender at
// its source (with a timeout derived from the connection's own worst-case
// forward bound plus its ack channel's slot round trip), a tracked
// receiver at its destination, and ack carriage on its reverse channel in
// both directions. Called by both instantiation paths after every
// connection is registered (in asynchronous mode the forward bounds have
// already been relaxed for wrapped operation, so the timeouts inherit
// that relaxation).
func (n *Network) wireReliable() {
	if !n.Cfg.Reliable {
		return
	}
	flitCycle := clock.Duration(phit.FlitWords) * clock.PeriodFromMHz(n.Cfg.FreqMHz)
	eps := make(map[topology.NodeID]*reliable.Endpoint)
	epFor := func(id topology.NodeID) *reliable.Endpoint {
		ep := eps[id]
		if ep == nil {
			ep = reliable.NewEndpoint(n.nis[id].Name())
			ep.SetQuarantineHook(n.recordQuarantine)
			eps[id] = ep
		}
		return ep
	}
	ids := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := n.conns[id]
		// Worst-case fault-free flit round trip: the forward latency
		// bound, the cumulative ack's reverse slot round trip, and one
		// table revolution of margin (the ack rides the next reverse
		// flit, which may have just been missed).
		timeout := clock.Duration(info.boundNs*1e3) +
			clock.Duration(info.ackRTSlots+n.Cfg.TableSize)*flitCycle
		src, dst := epFor(info.srcNI), epFor(info.dstNI)
		src.RegisterTx(id, reliable.TxConfig{
			Windowed: true, PairedIn: info.rev, Timeout: timeout,
			RetryBudget: n.Cfg.RetryBudget,
		})
		src.RegisterRx(info.rev, reliable.RxConfig{AckFor: id})
		dst.RegisterRx(id, reliable.RxConfig{Tracked: true})
		dst.RegisterTx(info.rev, reliable.TxConfig{PairedIn: id})
	}
	for _, nid := range n.Mesh.AllNIs() {
		if ep := eps[nid]; ep != nil {
			n.nis[nid].SetReliable(ep)
		}
	}
}

// ReliableTxStats returns the send-side reliability aggregate of a data
// connection (ok false when the network runs the baseline protocol or the
// connection is unknown).
func (n *Network) ReliableTxStats(c phit.ConnID) (reliable.TxStats, bool) {
	info := n.conns[c]
	if info == nil {
		return reliable.TxStats{}, false
	}
	ep := n.nis[info.srcNI].Reliable()
	if ep == nil {
		return reliable.TxStats{}, false
	}
	return ep.TxStatsOf(c)
}

// ReliableRxStats returns the receive-side reliability aggregate of a data
// connection (ok false when the network runs the baseline protocol or the
// connection is unknown).
func (n *Network) ReliableRxStats(c phit.ConnID) (reliable.RxStats, bool) {
	info := n.conns[c]
	if info == nil {
		return reliable.RxStats{}, false
	}
	ep := n.nis[info.dstNI].Reliable()
	if ep == nil {
		return reliable.RxStats{}, false
	}
	return ep.RxStatsOf(c)
}

// TxWordsForRate maps a connection's rate class to its transaction size:
// low-rate control channels move small messages, heavy streams move
// DMA-sized bursts.
func TxWordsForRate(rateMBps float64) int {
	switch {
	case rateMBps < 40:
		return 4
	case rateMBps < 150:
		return 8
	default:
		return 16
	}
}

// fitHeader drops candidate paths that exceed the header layout's
// maximum encodable hop count.
func fitHeader(paths []*route.Path, layout phit.HeaderLayout) []*route.Path {
	out := paths[:0]
	for _, p := range paths {
		if p.Hops() <= layout.MaxHops() {
			out = append(out, p)
		}
	}
	return out
}

// usedWorstPath returns, among the paths an assignment actually uses, the
// one with the largest TotalShift — the path latency bounds must cover.
func usedWorstPath(asg *slots.Assignment) *route.Path {
	// Walk the ordered slot list, not the PathOf map: among candidate
	// paths of equal TotalShift the first strict improvement wins, and map
	// iteration order would make that pick — and everything derived from
	// it (latency bounds, credit round trips, receive buffer capacities) —
	// vary between same-seed builds.
	worst := asg.Path
	for _, s := range asg.Slots {
		if p := asg.PathOf[s]; p != nil && p.TotalShift > worst.TotalShift {
			worst = p
		}
	}
	return worst
}

// slotHeaders encodes, per reserved slot, the header word for the path
// that slot was allocated on.
func slotHeaders(layout phit.HeaderLayout, asg *slots.Assignment, qid int) (map[int]phit.Word, error) {
	out := make(map[int]phit.Word, len(asg.Slots))
	for _, s := range asg.Slots {
		p := asg.PathOf[s]
		if p == nil {
			p = asg.Path
		}
		h, err := layout.Encode(p.Ports, qid, 0)
		if err != nil {
			return nil, err
		}
		out[s] = h
	}
	return out, nil
}

// FaultTargets enumerates the built network's injection points for a
// fault campaign: link entry wires (drop/corrupt/duplicate), every
// non-base clock (phase/period steps), every mesochronous FIFO
// (forwarding-delay stretch) and every asynchronous wrapper (PIC stall).
func (n *Network) FaultTargets() fault.Targets {
	t := fault.Targets{
		Links:  append([]fault.LinkTarget(nil), n.linkWires...),
		Clocks: append([]*clock.Clock(nil), n.faultClks...),
	}
	for _, s := range n.stages {
		t.Delays = append(t.Delays, fault.DelayTarget{Name: s.FIFOName(), Stretch: s.StretchForwardDelay})
	}
	for _, w := range n.wrappers {
		t.Stalls = append(t.Stalls, fault.StallTarget{Name: w.Name(), Stall: w.Stall})
	}
	return t
}

// AddInvariantCheckers registers the paper's invariant observers with the
// engine: a SlotChecker on every link entry (Section III contention
// freedom) and, in asynchronous mode, a LivenessChecker over every
// wrapper (Section VI empty-token liveness). Call once, before Run.
func (n *Network) AddInvariantCheckers(rep fault.Reporter) {
	for i, lt := range n.linkWires {
		n.eng.Add(fault.NewSlotChecker("check."+lt.Name, n.linkClks[i], lt.Wire, rep))
	}
	if len(n.wrappers) > 0 {
		watch := make([]fault.Progress, len(n.wrappers))
		for i, w := range n.wrappers {
			watch[i] = w
		}
		n.eng.Add(fault.NewLivenessChecker("check.liveness", n.base, watch, 0, rep))
	}
}

// PrepareTopology sets the pipeline-stage counts the given config will
// instantiate onto the mesh so that routing computes the correct TDM
// shifts. Call it before Build.
func PrepareTopology(m *topology.Mesh, cfg Config) {
	cfg.ApplyDefaults()
	switch cfg.Mode {
	case Mesochronous:
		m.SetAllPipelineStages(0)
		m.SetMeshPipelineStages(cfg.StagesPerLink)
	case Asynchronous:
		// Every hop advances a flit by InitialTokens dataflow
		// iterations, i.e. InitialTokens slots: the paper's "adapting
		// the slot allocation" for clock-domain crossings.
		m.SetAllPipelineStages(wrapper.InitialTokens - 1)
	default:
		m.SetAllPipelineStages(0)
	}
}
