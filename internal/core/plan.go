package core

import (
	"fmt"

	"repro/internal/phit"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
)

// A Plan is the outcome of an allocation-only, best-effort pass: which
// connections got a contention-free schedule and which did not, without
// building or running a network. Scale studies use it to measure
// allocator success rates on workloads too large (or too oversubscribed)
// for the all-or-nothing Build path.
type Plan struct {
	TableSize int
	Allocator string
	// Alloc holds the claims of every fully placed connection (data slots
	// plus reverse credit channel). It passes slots.Verify.
	Alloc *slots.Allocation
	// Placed lists data connections whose data and credit requests both
	// landed, in spec order. Failed lists the rest: a connection whose
	// credit channel cannot be placed is useless, so its data slots are
	// released rather than kept half-allocated.
	Placed []phit.ConnID
	Failed []phit.ConnID
	// RipUps counts adopted rip-up repairs (zero for greedy).
	RipUps int
}

// SuccessRate is the fraction of data connections fully placed.
func (p *Plan) SuccessRate() float64 {
	n := len(p.Placed) + len(p.Failed)
	if n == 0 {
		return 1
	}
	return float64(len(p.Placed)) / float64(n)
}

// PlanAllocation routes and slot-allocates the use case best-effort with
// the configured allocator (Config.Allocator) at the configured table
// size (Config.TableSize; the zero value selects 64). Unlike Build it
// never searches table sizes and never fails on an unplaceable
// connection — it records it. The mesh must already be through
// PrepareTopology.
func PlanAllocation(m *topology.Mesh, uc *spec.UseCase, cfg Config) (*Plan, error) {
	cfg.ApplyDefaults()
	if cfg.TableSize == 0 {
		cfg.TableSize = 64
	}
	if err := uc.Validate(); err != nil {
		return nil, err
	}
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			return nil, fmt.Errorf("core: IP %s is not mapped to an NI", ip.Name)
		}
	}
	al, err := slots.ByName(cfg.Allocator)
	if err != nil {
		return nil, err
	}
	infos, requests, err := buildRequests(m, uc, cfg, cfg.TableSize)
	if err != nil {
		return nil, err
	}
	a := slots.NewAllocation(cfg.TableSize)
	res, err := al.Place(a, requests, true)
	if err != nil {
		return nil, err
	}
	placed := make(map[phit.ConnID]bool, len(res.Placed))
	for _, c := range res.Placed {
		placed[c] = true
	}
	plan := &Plan{TableSize: cfg.TableSize, Allocator: al.Name(), Alloc: a, RipUps: res.RipUps}
	for _, c := range uc.Connections {
		info := infos[c.ID]
		dataOK, revOK := placed[c.ID], placed[info.rev]
		if dataOK && revOK {
			plan.Placed = append(plan.Placed, c.ID)
			continue
		}
		if dataOK {
			a.Release(c.ID)
		}
		if revOK {
			a.Release(info.rev)
		}
		plan.Failed = append(plan.Failed, c.ID)
	}
	if err := a.Verify(); err != nil {
		return nil, fmt.Errorf("core: planned allocation is contended: %w", err)
	}
	return plan, nil
}
