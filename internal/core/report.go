package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
)

// A ConnReport pairs one connection's requirements and analytical
// guarantees with its simulated behaviour.
type ConnReport struct {
	Conn phit.ConnID
	App  spec.AppID

	// Requirements from the spec.
	RequiredMBps      float64
	RequiredLatencyNs float64

	// Analytical guarantees from the allocation.
	Slots          int
	GuaranteedMBps float64
	BoundNs        float64
	PathHops       int

	// Simulated measurements.
	Delivered    int64
	MeasuredMBps float64
	LatMinNs     float64
	LatMeanNs    float64
	LatMaxNs     float64
	LatP99Ns     float64
	LatStdDevNs  float64

	// Verdicts.
	MetThroughput bool // measured >= required (within tolerance)
	MetLatency    bool // measured max <= required budget
	WithinBound   bool // measured max <= analytical bound
}

// A Report covers one simulation run.
type Report struct {
	Name       string
	FreqMHz    float64
	TableSize  int
	Mode       string
	MeasureNs  float64
	Conns      []ConnReport
	TotalEdges int64
}

// AllMet reports whether every connection met both requirements.
func (r *Report) AllMet() bool {
	for _, c := range r.Conns {
		if !c.MetThroughput || !c.MetLatency {
			return false
		}
	}
	return true
}

// AllWithinBound reports whether every measured maximum latency respected
// its analytical bound (the predictability check).
func (r *Report) AllWithinBound() bool {
	for _, c := range r.Conns {
		if !c.WithinBound {
			return false
		}
	}
	return true
}

// Violations returns the connections that missed a requirement.
func (r *Report) Violations() []ConnReport {
	var out []ConnReport
	for _, c := range r.Conns {
		if !c.MetThroughput || !c.MetLatency {
			out = append(out, c)
		}
	}
	return out
}

// Write renders the report as a table.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "use case %q: %s, %.0f MHz, table %d, measured %.0f ns\n",
		r.Name, r.Mode, r.FreqMHz, r.TableSize, r.MeasureNs)
	fmt.Fprintf(w, "%6s %4s %9s %9s %9s %9s %8s %8s %8s %8s %5s\n",
		"conn", "app", "reqMB/s", "gotMB/s", "reqLatNs", "boundNs", "latMin", "latAvg", "latMax", "latP99", "ok")
	for _, c := range r.Conns {
		ok := "yes"
		if !c.MetThroughput || !c.MetLatency {
			ok = "NO"
		}
		fmt.Fprintf(w, "%6d %4d %9.1f %9.1f %9.1f %9.1f %8.1f %8.1f %8.1f %8.1f %5s\n",
			c.Conn, c.App, c.RequiredMBps, c.MeasuredMBps, c.RequiredLatencyNs, c.BoundNs,
			c.LatMinNs, c.LatMeanNs, c.LatMaxNs, c.LatP99Ns, ok)
	}
}

// ThroughputTolerance absorbs measurement-window edge effects when
// comparing delivered throughput to the requirement.
const ThroughputTolerance = 0.98

// Run simulates warmupNs of warm-up, clears statistics, simulates
// measureNs more, and returns the report.
func (n *Network) Run(warmupNs, measureNs float64) *Report {
	warm := clock.Time(warmupNs * float64(clock.Nanosecond))
	meas := clock.Time(measureNs * float64(clock.Nanosecond))
	n.eng.Run(n.eng.Now() + warm)
	// An engaged fast path must land its fast-forwarded state before the
	// statistics reset (and again before the report reads them).
	n.eng.Sync()
	for _, c := range n.nis {
		c.ResetStats()
	}
	n.eng.Run(n.eng.Now() + meas)
	n.eng.Sync()
	return n.report(measureNs)
}

func (n *Network) report(measureNs float64) *Report {
	r := &Report{
		Name:       n.Spec.Name,
		FreqMHz:    n.Cfg.FreqMHz,
		TableSize:  n.Cfg.TableSize,
		Mode:       n.Cfg.Mode.String(),
		MeasureNs:  measureNs,
		TotalEdges: n.eng.Edges(),
	}
	ids := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := n.conns[id]
		st := n.nis[info.dstNI].InStats(id)
		cr := ConnReport{
			Conn:              id,
			App:               info.spec.App,
			RequiredMBps:      info.spec.BandwidthMBps,
			RequiredLatencyNs: info.spec.MaxLatencyNs,
			Slots:             len(info.slotSet),
			GuaranteedMBps:    info.guaranteeMBps,
			BoundNs:           info.boundNs,
			PathHops:          info.path.Hops(),
			Delivered:         st.Delivered,
		}
		if st.Delivered > 0 {
			cr.MeasuredMBps = st.ThroughputMBps(n.Cfg.WordBytes)
			cr.LatMinNs = st.Latency.Min()
			cr.LatMeanNs = st.Latency.Mean()
			cr.LatMaxNs = st.Latency.Max()
			cr.LatP99Ns = st.Latency.Percentile(99)
			cr.LatStdDevNs = st.Latency.StdDev()
		}
		cr.MetThroughput = cr.MeasuredMBps >= cr.RequiredMBps*ThroughputTolerance
		cr.MetLatency = st.Delivered > 0 && cr.LatMaxNs <= cr.RequiredLatencyNs
		cr.WithinBound = st.Delivered > 0 && cr.LatMaxNs <= cr.BoundNs
		r.Conns = append(r.Conns, cr)
	}
	return r
}

// ConnectionInfo is the externally visible allocation result for one
// connection.
type ConnectionInfo struct {
	Conn           phit.ConnID
	SrcNI          topology.NodeID
	DstNI          topology.NodeID
	Slots          []int
	PathHops       int
	TotalShift     int
	GuaranteedMBps float64
	RequiredMBps   float64
	BoundNs        float64
	RecvCapacity   int
	AckRTSlots     int
}

// Info returns the allocation-derived facts of a data connection.
func (n *Network) Info(c phit.ConnID) (ConnectionInfo, error) {
	info, ok := n.conns[c]
	if !ok {
		return ConnectionInfo{}, fmt.Errorf("core: unknown connection %d", c)
	}
	return ConnectionInfo{
		Conn:           c,
		SrcNI:          info.srcNI,
		DstNI:          info.dstNI,
		Slots:          append([]int(nil), info.slotSet...),
		PathHops:       info.path.Hops(),
		TotalShift:     info.path.TotalShift,
		GuaranteedMBps: info.guaranteeMBps,
		RequiredMBps:   info.spec.BandwidthMBps,
		BoundNs:        info.boundNs,
		RecvCapacity:   info.recvCap,
		AckRTSlots:     info.ackRTSlots,
	}, nil
}

// Connections returns the ids of all data connections, ascending.
func (n *Network) Connections() []phit.ConnID {
	out := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
