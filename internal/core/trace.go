package core

import (
	"repro/internal/trace"
	"repro/internal/wrapper"
)

// AttachTracer installs bus as the network's event bus and hands every
// router, NI, link pipeline stage and asynchronous wrapper its emitter.
// Component names are interned in a fixed order — routers in mesh order,
// then NIs, link stages, wrappers — so the same build gets the same
// component ids, and with the engine's deterministic edge dispatch the same
// seed produces a byte-identical event stream. Call before Run; passing a
// nil bus detaches everything.
func (n *Network) AttachTracer(bus *trace.Bus) {
	n.eng.SetTracer(bus)
	for _, r := range n.Mesh.Routers() {
		if rc := n.routers[r]; rc != nil {
			rc.SetTracer(bus.Emitter(rc.Name()))
		}
	}
	for _, id := range n.Mesh.AllNIs() {
		if c := n.nis[id]; c != nil {
			c.SetTracer(bus.Emitter(c.Name()))
		}
	}
	for _, s := range n.stages {
		s.SetTracer(bus.Emitter(s.Name()))
	}
	// Asynchronous mode: the wrapper fires and the router cores inside the
	// actors (wrapped NIs are already covered by the AllNIs loop above).
	for _, w := range n.wrappers {
		w.SetTracer(bus.Emitter(w.Name()))
		if ra, ok := w.Actor().(*wrapper.RouterActor); ok {
			ra.Core.SetTracer(bus.Emitter(ra.Core.Name()))
		}
	}
}
