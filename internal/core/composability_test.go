package core

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
)

// buildComposability constructs a fresh network over the same spec and
// allocation inputs; construction is fully deterministic, so two calls
// yield identical schedules.
func buildComposability(t *testing.T, mode Mode) (*Network, *spec.UseCase) {
	t.Helper()
	m := topology.NewMesh(3, 2, 2)
	uc := spec.Random(spec.RandomConfig{
		Name: "compos", Seed: 21, IPs: 12, Apps: 3, Conns: 14,
		MinRateMBps: 15, MaxRateMBps: 150,
		MinLatencyNs: 250, MaxLatencyNs: 900,
	})
	spec.MapIPsRoundRobin(uc, m, 5)
	cfg := Config{Mode: mode, PhaseSeed: 4, Probes: true}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, uc
}

// arrivalsOfApp runs the network and returns, per connection of the given
// app, the exact arrival instants of every payload word.
func arrivalsOfApp(t *testing.T, n *Network, uc *spec.UseCase, app spec.AppID,
	enable func(c spec.Connection) bool, hostile bool) map[phit.ConnID][]clock.Time {
	t.Helper()
	for _, c := range uc.Connections {
		g := n.Generator(c.ID)
		if !enable(c) {
			g.SetEnabled(false)
			continue
		}
		if hostile && c.App != app {
			// Oversubscribe other applications well beyond their
			// allocation.
			g.SetRateMBps(c.BandwidthMBps*8, n.Cfg.WordBytes)
		}
	}
	for _, c := range uc.Connections {
		if c.App != app {
			continue
		}
		ip, err := uc.IP(c.Dst)
		if err != nil {
			t.Fatal(err)
		}
		n.NIOf(ip.NI).RecordArrivals(c.ID, true)
	}
	n.Run(0, 40000)
	out := make(map[phit.ConnID][]clock.Time)
	for _, c := range uc.Connections {
		if c.App != app {
			continue
		}
		ip, _ := uc.IP(c.Dst)
		out[c.ID] = n.NIOf(ip.NI).Arrivals(c.ID)
	}
	return out
}

func checkIdenticalTiming(t *testing.T, alone, shared map[phit.ConnID][]clock.Time) {
	t.Helper()
	for conn, a := range alone {
		b := shared[conn]
		if len(a) == 0 {
			t.Errorf("connection %d delivered nothing", conn)
			continue
		}
		if len(a) != len(b) {
			t.Errorf("connection %d delivered %d words alone vs %d shared", conn, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("connection %d word %d arrived at %d ps alone vs %d ps shared — interference detected",
					conn, i, a[i], b[i])
				break
			}
		}
	}
}

// TestComposabilityIsolatedVsShared is the paper's central claim
// (Sections I, III, VII): an application's temporal behaviour is
// bit-identical whether it runs alone or alongside every other
// application. We compare the exact arrival instant of every word of app
// 0 between a run with only app 0 enabled and a run with all apps enabled.
func TestComposabilityIsolatedVsShared(t *testing.T) {
	for _, mode := range []Mode{Synchronous, Mesochronous} {
		t.Run(mode.String(), func(t *testing.T) {
			n1, uc := buildComposability(t, mode)
			alone := arrivalsOfApp(t, n1, uc, 0,
				func(c spec.Connection) bool { return c.App == 0 }, false)

			n2, uc2 := buildComposability(t, mode)
			shared := arrivalsOfApp(t, n2, uc2, 0,
				func(c spec.Connection) bool { return true }, false)

			checkIdenticalTiming(t, alone, shared)
		})
	}
}

// TestComposabilityUnderHostileLoad sharpens the claim: even when every
// other application oversubscribes its allocation by 8x (and is therefore
// throttled by back-pressure), app 0's timing does not move by a single
// picosecond.
func TestComposabilityUnderHostileLoad(t *testing.T) {
	n1, uc := buildComposability(t, Synchronous)
	alone := arrivalsOfApp(t, n1, uc, 0,
		func(c spec.Connection) bool { return c.App == 0 }, false)

	n2, uc2 := buildComposability(t, Synchronous)
	hostile := arrivalsOfApp(t, n2, uc2, 0,
		func(c spec.Connection) bool { return true }, true)

	checkIdenticalTiming(t, alone, hostile)

	// The hostile apps themselves must have been throttled to at most
	// their guaranteed bandwidth (plus header-elision upside), not
	// crashed into other traffic: their generators saw rejections.
	throttled := false
	for _, c := range uc2.Connections {
		if c.App != 0 && n2.Generator(c.ID).Rejected() > 0 {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Error("no hostile generator was ever back-pressured; the hostile load did not stress the network")
	}
}

// TestDeterminism: two identically built and driven networks produce
// byte-identical reports — the engine is exactly reproducible.
func TestDeterminism(t *testing.T) {
	n1, _ := buildComposability(t, Mesochronous)
	n2, _ := buildComposability(t, Mesochronous)
	r1 := n1.Run(2000, 20000)
	r2 := n2.Run(2000, 20000)
	if len(r1.Conns) != len(r2.Conns) {
		t.Fatalf("report sizes differ: %d vs %d", len(r1.Conns), len(r2.Conns))
	}
	for i := range r1.Conns {
		a, b := r1.Conns[i], r2.Conns[i]
		if a != b {
			t.Errorf("connection %d reports differ:\n%+v\n%+v", a.Conn, a, b)
		}
	}
}
