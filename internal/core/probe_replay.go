package core

// Hyperperiod replay support for the slot-ownership probe: it decodes the
// edge index into a TDM slot, so its pattern period is one slot-table
// revolution. Its only mutable state is the monotone observation counter
// (sampled is overwritten before every use).

import (
	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/replay"
)

// ReplayOK implements replay.Periodic.
func (p *probe) ReplayOK() bool { return true }

// ReplayPeriod implements replay.Periodic.
func (p *probe) ReplayPeriod() clock.Duration {
	return clock.Duration(phit.FlitWords*p.alloc.TableSize) * p.clk.Period
}

// ReplayMark implements replay.Periodic.
func (p *probe) ReplayMark(now clock.Time) bool {
	first := !p.rmValid
	p.dObserved = p.observed - p.mObserved
	p.mObserved = p.observed
	p.rmValid = true
	return !first
}

// ReplayFingerprint implements replay.Periodic.
func (p *probe) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	return buf // no architectural state beyond shifted counters
}

// ReplayShift implements replay.Periodic.
func (p *probe) ReplayShift(s *replay.Shift) {
	p.observed += s.Epochs * p.dObserved
	p.rmValid = false
}
