package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/trace"
)

// buildReliable assembles the small mesh with the reliability shell
// enabled and the given reporter and retry budget.
func buildReliable(t *testing.T, rep fault.Reporter, retryBudget int) *Network {
	t.Helper()
	m, uc := smallUseCase(t, 6)
	cfg := Config{Probes: true, Reliable: true, RetryBudget: retryBudget, FaultReporter: rep}
	PrepareTopology(m, cfg)
	n, err := Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// TestReliableCleanMeetsRequirements: with no faults armed the shell must
// be invisible — every connection still meets its contract in all three
// clocking modes, and the recovery machinery never fires. The nil
// reporter keeps the network in strict mode, so any violation panics.
func TestReliableCleanMeetsRequirements(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"synchronous", Config{Probes: true, Reliable: true}},
		{"mesochronous", Config{Mode: Mesochronous, PhaseSeed: 11, Probes: true, Reliable: true}},
		{"asynchronous", Config{Mode: Asynchronous, PhaseSeed: 13, PPM: 200, Reliable: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, uc := smallUseCase(t, 6)
			PrepareTopology(m, tc.cfg)
			n, err := Build(m, uc, tc.cfg)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			rep := n.Run(6000, 30000)
			if !rep.AllMet() {
				var b strings.Builder
				rep.Write(&b)
				t.Fatalf("requirements violated with a clean reliable shell:\n%s", b.String())
			}
			for id := range n.conns {
				tx, ok := n.ReliableTxStats(id)
				if !ok {
					t.Fatalf("connection %d has no reliability shell", id)
				}
				if tx.Retransmits != 0 || tx.Quarantined {
					t.Errorf("connection %d: clean run retransmitted %d flits (quarantined=%v)",
						id, tx.Retransmits, tx.Quarantined)
				}
				rx, _ := n.ReliableRxStats(id)
				if rx.CRCDrops+rx.GapDrops+rx.DupDrops+rx.TruncDrops != 0 {
					t.Errorf("connection %d: clean run dropped flits: %+v", id, rx)
				}
			}
		})
	}
}

// TestReliableBitFlipCampaignRecovers is the headline acceptance test: a
// seeded campaign corrupting well over 1%% of flits completes with every
// payload word either delivered or still in a retransmission window, zero
// invariant violations, and the recovery machinery demonstrably active —
// CRC drops, retransmissions and measured head-of-line recoveries.
func TestReliableBitFlipCampaignRecovers(t *testing.T) {
	col := fault.NewCollector()
	n := buildReliable(t, col, 0)
	n.AddInvariantCheckers(col)
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	n.AttachTracer(bus)

	plan := &fault.Plan{Seed: 17, Rates: []fault.RateRule{{BitFlip: 0.01}}}
	campaign := fault.NewCampaign(plan, col)
	if err := campaign.Arm(n.Engine(), n.FaultTargets()); err != nil {
		t.Fatal(err)
	}
	n.Run(0, 40000)

	if col.Total() != 0 {
		t.Fatalf("bit-flip campaign raised %d invariant violations: %+v",
			col.Total(), col.Violations())
	}

	var flips, fresh, retransmits, crcDrops, recovered int64
	for _, o := range campaign.Summarize().RateLinks {
		flips += o.BitsFlipped
	}
	for id, info := range n.conns {
		tx, ok := n.ReliableTxStats(id)
		if !ok {
			t.Fatalf("connection %d has no reliability shell", id)
		}
		if tx.Quarantined {
			t.Errorf("connection %d quarantined at bit-flip rate 0.01 with an unbounded retry budget", id)
			continue
		}
		sent := n.nis[info.srcNI].SentWords(id)
		delivered := n.nis[info.dstNI].InStats(id).Delivered
		if missing := sent - delivered; missing < 0 || missing > int64(tx.OutstandingWords) {
			t.Errorf("connection %d lost payload: sent %d, delivered %d, %d words in window",
				id, sent, delivered, tx.OutstandingWords)
		}
		if delivered == 0 {
			t.Errorf("connection %d delivered nothing", id)
		}
		fresh += tx.FreshFlits
		retransmits += tx.Retransmits
		rx, _ := n.ReliableRxStats(id)
		crcDrops += rx.CRCDrops
		recovered += rx.Recovered
	}
	if flips == 0 || fresh == 0 {
		t.Fatalf("campaign injected no faults (%d flips over %d flits)", flips, fresh)
	}
	// Acceptance floor: at least 1% of flits corrupted. Each flit exposes
	// two corruptible phits, so flips alone clear the bar at rate 0.01.
	if flips*100 < fresh {
		t.Errorf("only %d bit flips over %d flits — campaign below the 1%% corruption floor", flips, fresh)
	}
	if crcDrops == 0 || retransmits == 0 || recovered == 0 {
		t.Errorf("recovery machinery idle: %d CRC drops, %d retransmits, %d recoveries",
			crcDrops, retransmits, recovered)
	}

	// The trace metrics must have aggregated the same story, including a
	// populated recovery-latency histogram on at least one connection.
	histSamples := int64(0)
	for id := range n.conns {
		cm := mx.Conn(id)
		histSamples += cm.Recovery.N()
	}
	if histSamples != recovered {
		t.Errorf("metrics recovery histogram holds %d samples, endpoints report %d recoveries",
			histSamples, recovered)
	}
	if mx.Count(trace.CRCDrop) == 0 || mx.Count(trace.Retransmit) == 0 || mx.Count(trace.AckAdvance) == 0 {
		t.Errorf("trace bus missed recovery events: crcdrop=%d rexmit=%d ack=%d",
			mx.Count(trace.CRCDrop), mx.Count(trace.Retransmit), mx.Count(trace.AckAdvance))
	}
}

// TestReliableQuarantineIsolatesFaultyLink: a link dropping every flit
// exhausts the (small) retry budget of each connection crossing it, each
// such connection is quarantined exactly once and reported gracefully,
// and connections avoiding the link keep their full service — the
// composability argument under a hard fault.
func TestReliableQuarantineIsolatesFaultyLink(t *testing.T) {
	col := fault.NewCollector()
	n := buildReliable(t, col, 2)

	// Pick a victim NI that at least one connection avoids entirely, so
	// the test can observe both degradation and isolation.
	victim := topology.NodeID(topology.Invalid)
	var victimName string
	for _, id := range n.Mesh.AllNIs() {
		clear := false
		for _, info := range n.conns {
			if info.srcNI != id && info.dstNI != id {
				clear = true
				break
			}
		}
		touched := false
		for _, info := range n.conns {
			if info.srcNI == id || info.dstNI == id {
				touched = true
				break
			}
		}
		if clear && touched {
			victim = id
			victimName = n.Mesh.Node(id).Name
			break
		}
	}
	if victimName == "" {
		t.Fatal("no NI qualifies as a victim in this use case")
	}

	// Drop everything the victim NI injects: its own data flits and the
	// acks of connections terminating there.
	plan := &fault.Plan{Seed: 3, Rates: []fault.RateRule{
		{Target: "." + victimName + ">", Drop: 1},
	}}
	campaign := fault.NewCampaign(plan, col)
	if err := campaign.Arm(n.Engine(), n.FaultTargets()); err != nil {
		t.Fatal(err)
	}
	n.Run(0, 60000)

	counts := col.CountByKind()
	if len(counts) != 1 || counts[fault.LinkQuarantined] == 0 {
		t.Fatalf("want only link-quarantined violations, got %v", counts)
	}
	quarantined := int64(0)
	for id, info := range n.conns {
		tx, ok := n.ReliableTxStats(id)
		if !ok {
			t.Fatalf("connection %d has no reliability shell", id)
		}
		touches := info.srcNI == victim || info.dstNI == victim
		if touches != tx.Quarantined {
			t.Errorf("connection %d (touches victim: %v) quarantined=%v after %d retries",
				id, touches, tx.Quarantined, tx.Retries)
		}
		if touches {
			quarantined++
			continue
		}
		sent := n.nis[info.srcNI].SentWords(id)
		delivered := n.nis[info.dstNI].InStats(id).Delivered
		if delivered == 0 {
			t.Errorf("healthy connection %d delivered nothing while %s was faulty", id, victimName)
		}
		if missing := sent - delivered; missing < 0 || missing > int64(tx.OutstandingWords) {
			t.Errorf("healthy connection %d lost payload: sent %d, delivered %d", id, sent, delivered)
		}
	}
	if quarantined == 0 {
		t.Fatal("no connection touches the victim NI")
	}
	if got := counts[fault.LinkQuarantined]; got != quarantined {
		t.Errorf("%d link-quarantined violations for %d quarantined connections (want one each)",
			got, quarantined)
	}
}
