package admission

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/spec"
	"repro/internal/topology"
)

// buildNet builds the test network: the same light 3x2x2 workload the
// reconfig experiment uses, so closes leave room to re-admit into.
func buildNet(t *testing.T, mode core.Mode, reliable bool, col *fault.Collector) (*core.Network, *spec.UseCase) {
	t.Helper()
	m := topology.NewMesh(3, 2, 2)
	uc := spec.Random(spec.RandomConfig{
		Name: "adm", Seed: 2009, IPs: 10, Apps: 2, Conns: 8,
		MinRateMBps: 20, MaxRateMBps: 80,
		MinLatencyNs: 400, MaxLatencyNs: 1200,
	})
	spec.MapIPsByTraffic(uc, m)
	cfg := core.Config{Mode: mode, PhaseSeed: 4, Probes: mode != core.Asynchronous,
		Reliable: reliable, RetryBudget: 2, FaultReporter: col}
	if mode == core.Asynchronous {
		cfg.PPM = 200
	}
	core.PrepareTopology(m, cfg)
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, uc
}

// payloadCapacityMBps is a link's guaranteed-payload capacity: one of
// every three words is the flit header.
func payloadCapacityMBps(n *core.Network) float64 {
	return n.Cfg.FreqMHz * float64(n.Cfg.WordBytes) * 2 / 3
}

// crossingConnection returns a connection of the workload whose path
// includes at least one router-to-router link, plus all router-to-router
// links of the mesh — the avoid set that makes every route for that pair
// infeasible.
func crossingConnection(t *testing.T, n *core.Network, uc *spec.UseCase) (spec.Connection, []topology.LinkID) {
	t.Helper()
	var all []topology.LinkID
	for _, l := range n.Mesh.Links() {
		if n.Mesh.Node(l.From).Kind == topology.Router && n.Mesh.Node(l.To).Kind == topology.Router {
			all = append(all, l.ID)
		}
	}
	for _, c := range uc.Connections {
		links, err := n.ConnectionLinks(c.ID)
		if err != nil {
			t.Fatalf("ConnectionLinks(%d): %v", c.ID, err)
		}
		for _, l := range links {
			lk := n.Mesh.Link(l)
			if n.Mesh.Node(lk.From).Kind == topology.Router && n.Mesh.Node(lk.To).Kind == topology.Router {
				return c, all
			}
		}
	}
	t.Fatal("no connection crosses a router-to-router link")
	return spec.Connection{}, nil
}

// TestProbeTypedReasons: every rejection class comes back as its typed,
// machine-readable reason — and no probe, admissible or not, changes the
// live allocation by a single slot.
func TestProbeTypedReasons(t *testing.T) {
	n, uc := buildNet(t, core.Mesochronous, false, fault.NewCollector())
	n.Run(0, 5000)
	before := len(n.Alloc.Conns())
	capacity := payloadCapacityMBps(n)
	crossing, allRouterLinks := crossingConnection(t, n, uc)

	fresh := func(c spec.Connection) spec.Connection {
		c.ID = n.FreshConnID()
		return c
	}
	modest := fresh(uc.Connections[0])
	modest.BandwidthMBps, modest.MaxLatencyNs = 30, 1000

	cases := []struct {
		label string
		conn  spec.Connection
		opts  Options
		want  Reason
	}{
		{"modest re-request of known-good endpoints", modest, Options{}, Admitted},
		{"duplicate id of an open connection", uc.Connections[0], Options{}, DuplicateID},
		{"unknown endpoint IP", fresh(spec.Connection{Src: 999, Dst: uc.Connections[0].Dst,
			BandwidthMBps: 30, MaxLatencyNs: 1000}), Options{}, UnknownEndpoint},
		{"rate above link payload capacity", func() spec.Connection {
			c := fresh(uc.Connections[0])
			c.BandwidthMBps, c.MaxLatencyNs = capacity*1.25, 5000
			return c
		}(), Options{}, BoundInfeasible},
		{"latency budget below the path delay", func() spec.Connection {
			c := fresh(uc.Connections[0])
			c.BandwidthMBps, c.MaxLatencyNs = 30, 1
			return c
		}(), Options{}, BoundInfeasible},
		{"every candidate route avoided", func() spec.Connection {
			c := fresh(crossing)
			c.BandwidthMBps, c.MaxLatencyNs = 30, 1000
			return c
		}(), Options{Avoid: allRouterLinks}, NoPath},
		{"table-filling request on a loaded link", func() spec.Connection {
			c := fresh(uc.Connections[0])
			c.BandwidthMBps, c.MaxLatencyNs = capacity*0.97, 5000
			return c
		}(), Options{}, NoSlots},
	}
	for _, tc := range cases {
		d := Probe(n, tc.conn, tc.opts)
		if d.Why() != tc.want {
			t.Errorf("%s: got %s (%s), want %s", tc.label, d.Why(), d.Detail, tc.want)
		}
		if d.Admissible != (tc.want == Admitted) {
			t.Errorf("%s: Admissible = %v inconsistent with reason %s", tc.label, d.Admissible, d.Reason)
		}
		if got := len(n.Alloc.Conns()); got != before {
			t.Fatalf("%s: probe changed the live allocation (%d -> %d connections)", tc.label, before, got)
		}
		if _, err := n.Info(tc.conn.ID); tc.want == Admitted && err == nil {
			t.Errorf("%s: probe opened the connection", tc.label)
		}
	}

	// An admissible probe carries the full requested guarantees.
	d := Probe(n, modest, Options{})
	if !d.Admissible {
		t.Fatalf("modest probe rejected: %s (%s)", d.Reason, d.Detail)
	}
	if d.GuaranteeMBps < modest.BandwidthMBps {
		t.Errorf("guarantee %.1f MB/s below the %.1f requested", d.GuaranteeMBps, modest.BandwidthMBps)
	}
	if d.LatencyBoundNs > modest.MaxLatencyNs {
		t.Errorf("bound %.1f ns above the %.1f budget", d.LatencyBoundNs, modest.MaxLatencyNs)
	}
	if d.DataSlots == 0 || d.RevSlots == 0 {
		t.Errorf("admissible probe sized %d+%d slots", d.DataSlots, d.RevSlots)
	}
}

// TestProbeModeUnsupported: asynchronous builds index slots by token
// count and cannot reconfigure at run time; admission answers with the
// typed reason rather than corrupting the token schedule.
func TestProbeModeUnsupported(t *testing.T) {
	n, uc := buildNet(t, core.Asynchronous, false, fault.NewCollector())
	c := uc.Connections[0]
	c.ID = n.FreshConnID()
	d := Probe(n, c, Options{})
	if d.Why() != ModeUnsupported {
		t.Fatalf("got %s (%s), want mode-unsupported", d.Reason, d.Detail)
	}
}

// TestAdmitDelivers: Admit is Probe plus the commit — the admitted
// connection runs with the decision's guarantees and actually delivers.
func TestAdmitDelivers(t *testing.T) {
	n, uc := buildNet(t, core.Mesochronous, false, fault.NewCollector())
	n.Run(0, 5000)
	c := uc.Connections[0]
	c.ID = n.FreshConnID()
	c.BandwidthMBps, c.MaxLatencyNs = 30, 1000
	d, err := Admit(n, c, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !d.Admissible {
		t.Fatalf("rejected: %s (%s)", d.Reason, d.Detail)
	}
	info, err := n.Info(c.ID)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if len(info.Slots) != d.DataSlots {
		t.Errorf("decision promised %d data slots, commit programmed %d", d.DataSlots, len(info.Slots))
	}
	rep := n.Run(0, 30000)
	for _, cr := range rep.Conns {
		if cr.Conn != c.ID {
			continue
		}
		if cr.Delivered == 0 {
			t.Error("admitted connection delivered nothing")
		}
		if cr.LatMaxNs > d.LatencyBoundNs {
			t.Errorf("observed %.1f ns above the admitted bound %.1f ns", cr.LatMaxNs, d.LatencyBoundNs)
		}
		return
	}
	t.Fatal("admitted connection missing from the report")
}

// TestAdmitRejectionIsNotAnError: an inadmissible request is an answer,
// not an error, and leaves nothing behind.
func TestAdmitRejectionIsNotAnError(t *testing.T) {
	n, uc := buildNet(t, core.Mesochronous, false, fault.NewCollector())
	before := len(n.Alloc.Conns())
	c := uc.Connections[0]
	c.ID = n.FreshConnID()
	c.BandwidthMBps = payloadCapacityMBps(n) * 1.25
	d, err := Admit(n, c, Options{})
	if err != nil {
		t.Fatalf("Admit returned an error for a mere rejection: %v", err)
	}
	if d.Admissible {
		t.Fatal("impossible request admitted")
	}
	if !strings.Contains(d.Reason, "infeasible") {
		t.Errorf("reason = %s, want bound-infeasible", d.Reason)
	}
	if got := len(n.Alloc.Conns()); got != before {
		t.Fatalf("rejection changed the allocation (%d -> %d)", before, got)
	}
}
