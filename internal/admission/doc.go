// Package admission implements run-time admission control for a live
// aelite network: the question "can connection C be opened now?" answered
// by an incremental slot/path search over only the currently-free slots,
// with the would-be allocation's analytical bounds checked against the
// requested budget before anything is committed.
//
// This is the online half of the contract the paper's design flow
// establishes offline (reference [16]): a request either receives the
// full guaranteed service it asked for, or it is rejected with a typed,
// machine-readable reason — it is never admitted in a degraded form, and
// running connections are never disturbed by the attempt, because the
// probe works on a clone of the slot allocation and the commit claims
// only free slots.
//
// Cross-package contract: the probe path works on slots.Allocation.Clone
// and the commit path claims only slots that SlotFree reports free, so an
// admission attempt can never perturb a running connection's schedule —
// the composability the paper guarantees offline extends to run time.
// Budgets are vetted with the same analysis bounds the auditor
// (internal/audit) later enforces flit by flit. The aelite-sim -reconfig
// script path and experiments.ReconfigStudy are the consumers.
package admission
