package admission

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/phit"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Reason classifies an admission decision.
type Reason int

const (
	// Admitted: the request fits; the decision carries the guarantees it
	// would (or did) receive.
	Admitted Reason = iota
	// NoPath: no route between the endpoints survives the header hop
	// limit and the avoid set.
	NoPath
	// NoSlots: routes exist, but the live slot table has no
	// contention-free placement left for the sized request.
	NoSlots
	// BoundInfeasible: the requested bandwidth or latency cannot be met
	// on this network even with every slot free (rate above link
	// capacity, budget below the path's fixed delay).
	BoundInfeasible
	// DuplicateID: the connection id is already open, or was closed and
	// retired (queue RAM stays registered; reuse would collide).
	DuplicateID
	// UnknownEndpoint: an endpoint IP is not part of the use case.
	UnknownEndpoint
	// SharedNI: both endpoints sit on one NI; local traffic bypasses the
	// NoC.
	SharedNI
	// ModeUnsupported: the network mode cannot reconfigure at run time
	// (asynchronous wrappers index slots by token count).
	ModeUnsupported
	// QueueExhausted: an involved NI has no queue ids left.
	QueueExhausted
	// Internal: an unclassified failure (a bug, not a resource shortage).
	Internal
)

var reasonNames = map[Reason]string{
	Admitted:        "admitted",
	NoPath:          "no-path",
	NoSlots:         "no-slots",
	BoundInfeasible: "bound-infeasible",
	DuplicateID:     "duplicate-id",
	UnknownEndpoint: "unknown-endpoint",
	SharedNI:        "shared-ni",
	ModeUnsupported: "mode-unsupported",
	QueueExhausted:  "queue-exhausted",
	Internal:        "internal",
}

func (r Reason) String() string {
	if n, ok := reasonNames[r]; ok {
		return n
	}
	return fmt.Sprintf("Reason(%d)", int(r))
}

// A Decision is the machine-readable outcome of one admission question.
type Decision struct {
	Conn       phit.ConnID `json:"conn"`
	Admissible bool        `json:"admissible"`
	Reason     string      `json:"reason"`
	Detail     string      `json:"detail,omitempty"`

	// Guarantees of the (would-be) allocation, set when admissible.
	GuaranteeMBps  float64 `json:"guarantee_mbps,omitempty"`
	LatencyBoundNs float64 `json:"latency_bound_ns,omitempty"`
	DataSlots      int     `json:"data_slots,omitempty"`
	RevSlots       int     `json:"rev_slots,omitempty"`
	PathHops       int     `json:"path_hops,omitempty"`

	reason Reason
}

// Why returns the typed reason behind the decision.
func (d Decision) Why() Reason { return d.reason }

// Options tunes one admission question.
type Options struct {
	// Avoid lists links no slot of the new connection (data or credit
	// direction) may ride — the quarantined path of a reroute.
	Avoid []topology.LinkID
}

// Probe answers "could connection c be opened now?" without changing
// anything: the plan runs against the live network, the slot search runs
// on a clone of the live allocation, and the resulting bounds are checked
// against the request. The network is untouched whatever the answer.
func Probe(n *core.Network, c spec.Connection, opts Options) Decision {
	plan, err := n.PlanAdmission(c, opts.Avoid)
	if err != nil {
		return classify(c.ID, err)
	}
	trial := n.Alloc.Clone()
	if err := slots.AllocateInto(trial, plan.Requests); err != nil {
		return decide(c.ID, NoSlots, err.Error())
	}
	out := n.TrialOutcome(plan, trial)
	// The sizing already aimed for these bounds; checking the realised
	// placement is the admission *proof* — a request is admitted only
	// with the full service it asked for.
	if out.GuaranteeMBps < c.BandwidthMBps*(1-1e-9) {
		return decide(c.ID, BoundInfeasible, fmt.Sprintf(
			"placement guarantees %.1f MB/s of the %.1f MB/s requested", out.GuaranteeMBps, c.BandwidthMBps))
	}
	if out.LatencyBoundNs > c.MaxLatencyNs*(1+1e-9) {
		return decide(c.ID, BoundInfeasible, fmt.Sprintf(
			"placement bounds latency at %.1f ns, budget is %.1f ns", out.LatencyBoundNs, c.MaxLatencyNs))
	}
	return Decision{
		Conn: c.ID, Admissible: true, Reason: Admitted.String(),
		GuaranteeMBps: out.GuaranteeMBps, LatencyBoundNs: out.LatencyBoundNs,
		DataSlots: out.DataSlots, RevSlots: out.RevSlots, PathHops: out.PathHops,
	}
}

// Admit is Probe followed by the actual open when admissible. A
// non-admissible request is NOT an error — the typed decision is the
// answer; the error return is reserved for a commit that failed after a
// positive probe (which would be a bug, since both run under the same
// single-threaded engine).
func Admit(n *core.Network, c spec.Connection, opts Options) (Decision, error) {
	d := Probe(n, c, opts)
	if !d.Admissible {
		return d, nil
	}
	if err := n.OpenConnectionAvoiding(c, opts.Avoid); err != nil {
		return classify(c.ID, err), fmt.Errorf("admission: probe admitted connection %d but commit failed: %w", c.ID, err)
	}
	return d, nil
}

func decide(id phit.ConnID, r Reason, detail string) Decision {
	return Decision{Conn: id, Reason: r.String(), Detail: detail, reason: r}
}

// classify maps core's typed admission errors onto Reasons.
func classify(id phit.ConnID, err error) Decision {
	var placement *slots.PlacementError
	switch {
	case errors.Is(err, core.ErrNoRoute):
		return decide(id, NoPath, err.Error())
	case errors.Is(err, core.ErrNoSlots), errors.As(err, &placement):
		return decide(id, NoSlots, err.Error())
	case errors.Is(err, core.ErrInfeasible):
		return decide(id, BoundInfeasible, err.Error())
	case errors.Is(err, core.ErrDuplicate):
		return decide(id, DuplicateID, err.Error())
	case errors.Is(err, core.ErrUnknownEndpoint):
		return decide(id, UnknownEndpoint, err.Error())
	case errors.Is(err, core.ErrSharedNI):
		return decide(id, SharedNI, err.Error())
	case errors.Is(err, core.ErrModeUnsupported):
		return decide(id, ModeUnsupported, err.Error())
	case errors.Is(err, core.ErrQueueExhausted):
		return decide(id, QueueExhausted, err.Error())
	default:
		return decide(id, Internal, err.Error())
	}
}
