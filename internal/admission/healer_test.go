package admission

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TestHealerReroutesAroundQuarantine: a router-to-router link dropping
// every flit quarantines the connections riding it; the healer closes
// each victim and re-admits it over links clear of the dead path,
// reporting the recovery latency, and the metrics sink folds the reroute
// into the origin connection's account.
func TestHealerReroutesAroundQuarantine(t *testing.T) {
	col := fault.NewCollector()
	n, uc := buildNet(t, core.Mesochronous, true, col)
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	h := NewHealer(n, bus)

	// Pick the faulty link off a live path so at least one connection is
	// guaranteed to quarantine.
	victim, _ := crossingConnection(t, n, uc)
	links, err := n.ConnectionLinks(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	var faulty topology.LinkID = -1
	for _, l := range links {
		lk := n.Mesh.Link(l)
		if n.Mesh.Node(lk.From).Kind == topology.Router && n.Mesh.Node(lk.To).Kind == topology.Router {
			faulty = l
			break
		}
	}
	if faulty < 0 {
		t.Fatal("crossing connection has no router-to-router link")
	}
	plan := &fault.Plan{Seed: 5, Rates: []fault.RateRule{{Target: fmt.Sprintf("l%d.", faulty), Drop: 1}}}
	if err := fault.NewCampaign(plan, col).Arm(n.Engine(), n.FaultTargets()); err != nil {
		t.Fatalf("Arm: %v", err)
	}

	heal := func(*core.Network) error { _, err := h.Heal(); return err }
	if _, err := n.RunTimed(0, 40000, []core.TimedAction{
		{AtNs: 10000, Do: heal},
		{AtNs: 20000, Do: heal},
		{AtNs: 30000, Do: heal},
	}); err != nil {
		t.Fatalf("RunTimed: %v", err)
	}
	if _, err := h.Heal(); err != nil {
		t.Fatalf("final Heal: %v", err)
	}

	reroutes := 0
	for _, r := range h.Reports() {
		if _, err := n.Info(r.Victim); err == nil {
			t.Errorf("victim %d still open after healing", r.Victim)
		}
		if r.Degraded {
			if r.Replacement != phit.None {
				t.Errorf("degraded victim %d has replacement %d", r.Victim, r.Replacement)
			}
			continue
		}
		if !r.Rerouted {
			t.Errorf("victim %d neither rerouted nor degraded", r.Victim)
			continue
		}
		reroutes++
		if r.RecoveryNs <= 0 {
			t.Errorf("reroute of %d has recovery latency %.1f ns", r.Victim, r.RecoveryNs)
		}
		// The replacement must be clear of the dead link in both
		// directions.
		rl, err := n.ConnectionLinks(r.Replacement)
		if err != nil {
			t.Fatalf("ConnectionLinks(replacement %d): %v", r.Replacement, err)
		}
		for _, l := range rl {
			if l == faulty {
				t.Errorf("replacement %d of victim %d still rides the dead link", r.Replacement, r.Victim)
			}
		}
		if cm := mx.Conn(r.Origin); cm.Reroutes < 1 {
			t.Errorf("metrics count %d reroutes for origin %d", cm.Reroutes, r.Origin)
		}
	}
	if reroutes == 0 {
		t.Fatal("hard fault on a live path triggered no reroute")
	}
}
