package admission

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/phit"
	"repro/internal/topology"
	"repro/internal/trace"
)

// A HealReport records how one quarantine was handled: an automatic
// reroute (close + re-admission over links clear of the failed path), or
// a graceful degradation when no admissible alternative exists.
type HealReport struct {
	// Victim is the quarantined connection that was closed; Origin is the
	// first connection of its lineage (equal to Victim unless the victim
	// was itself a replacement).
	Victim phit.ConnID `json:"victim"`
	Origin phit.ConnID `json:"origin"`
	// Replacement is the fresh id carrying the service after the reroute
	// (phit.None when degraded).
	Replacement phit.ConnID `json:"replacement"`

	QuarantinedAt clock.Time `json:"quarantined_at_ps"`
	HealedAt      clock.Time `json:"healed_at_ps"`
	// RecoveryNs is the service interruption: quarantine instant to the
	// instant the replacement was admitted (zero when degraded).
	RecoveryNs float64 `json:"recovery_ns"`

	Rerouted bool `json:"rerouted"`
	// Degraded: the connection could not be re-admitted (no admissible
	// alternative, or the lineage exhausted its reroute attempts); it was
	// closed and its service is gone — gracefully, without touching
	// anyone else's guarantees.
	Degraded bool `json:"degraded"`

	// Decision is the admission answer for the replacement request.
	Decision Decision `json:"decision"`
}

// A Healer turns hard faults into bounded service interruptions: it
// consumes the quarantine transitions the reliability layer records and,
// for each victim, closes the dead connection and re-admits its spec
// under a fresh id over paths that avoid every router-to-router link the
// victim rode. Quarantine fires inside the engine's event processing, so
// the Healer must run *between* engine runs — after Network.Run /
// RunTimed segments, or periodically from a driver loop.
type Healer struct {
	n  *core.Network
	tr *trace.Emitter

	// MaxAttempts bounds reroutes per lineage: a replacement that itself
	// quarantines is rerouted again at most MaxAttempts-1 times before
	// the lineage is declared degraded.
	MaxAttempts int

	attempts map[phit.ConnID]int         // reroutes already spent, by current id
	origin   map[phit.ConnID]phit.ConnID // current id -> first id of lineage
	reports  []HealReport
}

// NewHealer builds a healer for the network. bus may be nil; with a bus,
// every reroute emits a trace.Reroute event (on the origin connection id,
// Arg = recovery latency in ps) that the metrics sink folds into the
// connection's recovery histogram.
func NewHealer(n *core.Network, bus *trace.Bus) *Healer {
	h := &Healer{
		n:           n,
		MaxAttempts: 2,
		attempts:    make(map[phit.ConnID]int),
		origin:      make(map[phit.ConnID]phit.ConnID),
	}
	if bus != nil {
		h.tr = bus.Emitter("healer")
	}
	return h
}

// Heal drains every pending quarantine and handles each, looping until no
// new quarantine is recorded (closing one victim advances simulated time,
// which can quarantine another). It returns the reports for this batch.
func (h *Healer) Heal() ([]HealReport, error) {
	var out []HealReport
	for {
		evs := h.n.TakeQuarantined()
		if len(evs) == 0 {
			break
		}
		for _, ev := range evs {
			r, err := h.healOne(ev)
			if err != nil {
				return out, err
			}
			out = append(out, r)
		}
	}
	h.reports = append(h.reports, out...)
	return out, nil
}

// Reports returns every heal handled over the healer's lifetime.
func (h *Healer) Reports() []HealReport {
	return append([]HealReport(nil), h.reports...)
}

func (h *Healer) healOne(ev core.QuarantineEvent) (HealReport, error) {
	victim := ev.Conn
	origin := victim
	if o, ok := h.origin[victim]; ok {
		origin = o
	}
	rep := HealReport{Victim: victim, Origin: origin, Replacement: phit.None, QuarantinedAt: ev.Time}

	sc, err := h.n.SpecOf(victim)
	if err != nil {
		// Already closed (e.g. by the scenario itself): nothing to heal.
		rep.Degraded = true
		rep.Decision = decide(victim, Internal, err.Error())
		return rep, nil
	}
	// The avoid set is the victim's own path — but only the links that
	// have alternatives. The NI injection and ejection links are on every
	// candidate path of this endpoint pair; avoiding them would reject
	// every reroute even when the fault sits mid-mesh.
	links, err := h.n.ConnectionLinks(victim)
	if err != nil {
		return rep, err
	}
	avoid := routerLinks(h.n, links)

	if err := h.n.CloseConnection(victim); err != nil {
		return rep, fmt.Errorf("admission: healing connection %d: %w", victim, err)
	}
	spent := h.attempts[victim]
	if spent >= h.MaxAttempts {
		rep.Degraded = true
		rep.Decision = decide(victim, Internal,
			fmt.Sprintf("lineage of connection %d exhausted %d reroute attempts", origin, h.MaxAttempts))
		return rep, nil
	}

	nc := sc
	nc.ID = h.n.FreshConnID()
	d, err := Admit(h.n, nc, Options{Avoid: avoid})
	rep.Decision = d
	if err != nil {
		return rep, err
	}
	if !d.Admissible {
		rep.Degraded = true
		return rep, nil
	}
	rep.Rerouted = true
	rep.Replacement = nc.ID
	rep.HealedAt = h.n.Engine().Now()
	rep.RecoveryNs = float64(rep.HealedAt-ev.Time) / float64(clock.Nanosecond)
	h.attempts[nc.ID] = spent + 1
	h.origin[nc.ID] = origin
	if h.tr != nil {
		h.tr.Emit(trace.Event{
			Time: rep.HealedAt, Ref: ev.Time, Kind: trace.Reroute,
			Conn: origin, Arg: int64(rep.HealedAt - ev.Time), Slot: trace.NoSlot,
		})
	}
	return rep, nil
}

// routerLinks keeps only the router-to-router links of a set — the links
// an alternate route can actually steer around.
func routerLinks(n *core.Network, ls []topology.LinkID) []topology.LinkID {
	var out []topology.LinkID
	for _, l := range ls {
		lk := n.Mesh.Link(l)
		if n.Mesh.Node(lk.From).Kind == topology.Router && n.Mesh.Node(lk.To).Kind == topology.Router {
			out = append(out, l)
		}
	}
	return out
}
