package audit

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// buildNet assembles a small 2x1-mesh workload. The component-level fault
// reporter is always a collector so fabric checks degrade gracefully and
// the auditor's verdict stays separable.
func buildNet(t *testing.T, mode core.Mode, probes bool) (*core.Network, *fault.Collector) {
	t.Helper()
	m := topology.NewMesh(2, 1, 2)
	uc := spec.Random(spec.RandomConfig{
		Name: "audit", Seed: 3, IPs: 4, Apps: 2, Conns: 3,
		MinRateMBps: 20, MaxRateMBps: 80,
		MinLatencyNs: 300, MaxLatencyNs: 900,
	})
	spec.MapIPsByTraffic(uc, m)
	col := fault.NewCollector()
	cfg := core.Config{Mode: mode, Probes: probes, FaultReporter: col}
	core.PrepareTopology(m, cfg)
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, col
}

func TestCleanRunHasNoViolations(t *testing.T) {
	for _, mode := range []core.Mode{core.Synchronous, core.Mesochronous, core.Asynchronous} {
		t.Run(mode.String(), func(t *testing.T) {
			n, fabric := buildNet(t, mode, mode != core.Asynchronous)
			bus := trace.NewBus()
			n.AttachTracer(bus)
			audCol := fault.NewCollector()
			a := Attach(n, bus, audCol, Options{})
			n.Run(0, 20000)
			if a.Violations() != 0 {
				var b strings.Builder
				a.WriteSummary(&b)
				for _, v := range audCol.Violations() {
					t.Log(v)
				}
				t.Fatalf("clean %s run: %d audit violations\n%s", mode, a.Violations(), b.String())
			}
			if fabric.Total() != 0 {
				t.Fatalf("clean %s run: %d fabric violations", mode, fabric.Total())
			}
			var b strings.Builder
			a.WriteSummary(&b)
			if !strings.Contains(b.String(), "0 violations") || !strings.Contains(b.String(), "ok") {
				t.Errorf("summary:\n%s", b.String())
			}
			for _, id := range n.Connections() {
				if st := n.NIOf(mustInfo(t, n, id).DstNI).InStats(id); st.Delivered == 0 {
					t.Errorf("connection %d delivered nothing", id)
				}
			}
		})
	}
}

func mustInfo(t *testing.T, n *core.Network, id phit.ConnID) core.ConnectionInfo {
	t.Helper()
	info, err := n.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestAuditorCatchesCorruptedTable is the acceptance fixture: a slot
// reservation deliberately moved off its allocated position must surface
// as a one-line slot-ownership diagnostic.
func TestAuditorCatchesCorruptedTable(t *testing.T) {
	n, _ := buildNet(t, core.Synchronous, false)
	bus := trace.NewBus()
	n.AttachTracer(bus)
	audCol := fault.NewCollector()
	a := Attach(n, bus, audCol, Options{})
	victim := n.Connections()[0]
	n.NIOf(mustInfo(t, n, victim).SrcNI).CorruptSlotForTest(victim)
	n.Run(0, 20000)
	if a.ByKind()[fault.SlotOwnership] == 0 {
		t.Fatalf("mis-shifted slot table went undetected (violations: %v)", a.ByKind())
	}
	found := false
	for _, v := range audCol.Violations() {
		if v.Kind != fault.SlotOwnership {
			continue
		}
		found = true
		line := v.String()
		if strings.Contains(line, "\n") {
			t.Errorf("diagnostic is not one line: %q", line)
		}
		if !strings.Contains(line, "slot-ownership") {
			t.Errorf("diagnostic missing kind: %q", line)
		}
	}
	if !found {
		t.Fatal("no slot-ownership violation stored")
	}
}

// TestAuditorFlagsOversubscription pins the paper's oversubscription
// story: an 8x-hostile source is back-pressured at its own NI, its
// self-inflicted source backlog is reported as a single breach of
// contract (injection-rate) per connection, and — crucially — none of the
// resulting delay is misattributed to the fabric as a bound violation.
func TestAuditorFlagsOversubscription(t *testing.T) {
	n, _ := buildNet(t, core.Synchronous, true)
	bus := trace.NewBus()
	n.AttachTracer(bus)
	audCol := fault.NewCollector()
	a := Attach(n, bus, audCol, Options{})
	hostile := n.Connections()[0]
	n.Generator(hostile).SetRateMBps(mustInfo(t, n, hostile).RequiredMBps*8, 4)
	n.Run(0, 20000)
	if got := a.ByKind()[fault.InjectionRate]; got != 1 {
		t.Fatalf("hostile source flagged %d times, want 1 (%v)", got, a.ByKind())
	}
	if got := a.ByKind()[fault.LatencyBound]; got != 0 {
		t.Fatalf("self-inflicted backlog misattributed as %d bound violations", got)
	}
	// The same scenario with tolerance (a deliberate interference
	// experiment): nothing at all is reported.
	n2, _ := buildNet(t, core.Synchronous, true)
	bus2 := trace.NewBus()
	n2.AttachTracer(bus2)
	a2 := Attach(n2, bus2, fault.NewCollector(), Options{TolerateOversubscription: true})
	n2.Generator(hostile).SetRateMBps(mustInfo(t, n2, hostile).RequiredMBps*8, 4)
	n2.Run(0, 20000)
	if a2.Violations() != 0 {
		t.Fatalf("tolerated oversubscription still reported %d violations", a2.Violations())
	}
}

// TestSyntheticViolations feeds fabricated events straight into the sink
// to pin the delivery-order, latency-bound and exclusivity checks.
func TestSyntheticViolations(t *testing.T) {
	n, _ := buildNet(t, core.Synchronous, false)
	bus := trace.NewBus()
	comp := bus.Emitter("synthetic").Comp()
	audCol := fault.NewCollector()
	a := Attach(n, bus, audCol, Options{})
	conn := n.Connections()[0]

	// Out-of-order delivery: first word carries sequence 5.
	a.Event(trace.Event{Kind: trace.Eject, Conn: conn, Seq: 5, Time: 1000, Ref: 0, Comp: comp, Slot: trace.NoSlot})
	if a.ByKind()[fault.DeliveryOrder] != 1 {
		t.Fatalf("out-of-order delivery not flagged: %v", a.ByKind())
	}

	// Latency past the bound (1 s is past any bound on this fabric).
	a.Event(trace.Event{Kind: trace.Eject, Conn: conn, Seq: 6, Time: 1e12, Ref: 0, Comp: comp, Slot: trace.NoSlot})
	if a.ByKind()[fault.LatencyBound] != 1 {
		t.Fatalf("bound violation not flagged: %v", a.ByKind())
	}

	// Two connections on one resource within a flit cycle.
	c2 := n.Connections()[1]
	a.Event(trace.Event{Kind: trace.RouterForward, Conn: conn, Arg: 2, Time: 2000, Comp: comp, Slot: trace.NoSlot})
	a.Event(trace.Event{Kind: trace.RouterForward, Conn: c2, Arg: 2, Time: 2001, Comp: comp, Slot: trace.NoSlot})
	if a.ByKind()[fault.SlotContention] != 1 {
		t.Fatalf("slot contention not flagged: %v", a.ByKind())
	}

	// Word injection far past the guaranteed rate drains the bucket and
	// withdraws the connection's bound checks.
	for i := 0; i < 200; i++ {
		a.Event(trace.Event{Kind: trace.Inject, Conn: conn, Seq: int64(i), Time: clock.Time(3000 + i), Comp: comp, Slot: trace.NoSlot})
	}
	if a.ByKind()[fault.InjectionRate] == 0 {
		t.Fatalf("line-rate injection flood not flagged: %v", a.ByKind())
	}

	for _, v := range audCol.Violations() {
		if strings.Contains(v.String(), "\n") {
			t.Errorf("diagnostic is not one line: %q", v.String())
		}
	}
}

func TestIsolationDiff(t *testing.T) {
	base := Timelines{1: {100, 200}, 2: {150}}
	same := Timelines{1: {100, 200}, 2: {150}}
	if r := Diff(base, same); !r.Identical || r.Words != 3 || r.Conns != 2 {
		t.Fatalf("identical diff = %+v", r)
	}
	late := Timelines{1: {100, 201}, 2: {150}}
	if r := Diff(base, late); r.Identical || !strings.Contains(r.FirstDiff, "word 1") {
		t.Fatalf("late diff = %+v", r)
	}
	missing := Timelines{1: {100, 200}, 2: {}}
	if r := Diff(base, missing); r.Identical || !strings.Contains(r.FirstDiff, "words") {
		t.Fatalf("missing diff = %+v", r)
	}
}

// TestIsolationUnderInterference is the composability claim in
// miniature: doubling an interferer's offered load must not move a
// single delivery instant of the audited connection.
func TestIsolationUnderInterference(t *testing.T) {
	res, err := Isolation(2, func(perturbed bool) (Timelines, error) {
		n, _ := buildNet(t, core.Synchronous, true)
		watched := n.Connections()[0]
		interferer := n.Connections()[1]
		info := mustInfo(t, n, watched)
		n.NIOf(info.DstNI).RecordArrivals(watched, true)
		if perturbed {
			n.Generator(interferer).SetRateMBps(mustInfo(t, n, interferer).RequiredMBps*4, 4)
		}
		n.Run(0, 20000)
		return Timelines{watched: n.NIOf(info.DstNI).Arrivals(watched)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatalf("interference visible: %s", res.FirstDiff)
	}
	if res.Words == 0 {
		t.Fatal("no deliveries compared")
	}
}

var _ = clock.Time(0)
