package audit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
)

// CheckReconfigResidue scans a live network for leftovers of closed
// connections — the second half of the undisturbed-service proof. A
// correct CloseConnection surrenders every resource the connection held:
// its entry in the slot allocation, its ownership of every link slot
// along both the data and credit paths, and its slots in the live NI
// injection tables. Anything left behind is dead reservation that a
// later admission can never claim (a capacity leak) or, worse, a slot
// the hardware would still fire on (a ghost transmission hazard), so
// each finding is reported as a ReconfigResidue violation.
//
// closed lists every retired id to check — callers capture both the data
// id and its credit channel (via ReverseOf) before closing. The return
// value is the number of violations reported.
func CheckReconfigResidue(n *core.Network, closed []phit.ConnID, rep fault.Reporter) int {
	dead := make(map[phit.ConnID]bool, len(closed))
	for _, c := range closed {
		dead[c] = true
	}
	count := 0
	emit := func(component, detail string) {
		count++
		fault.Report(rep, fault.Violation{
			Kind:      fault.ReconfigResidue,
			Component: component,
			Slot:      fault.NoSlot,
			Detail:    detail,
		})
	}

	// Allocation bookkeeping: a closed id must not own an assignment.
	for _, c := range closed {
		if n.Alloc.ByConn[c] != nil {
			emit("alloc", fmt.Sprintf("closed connection %d still holds a slot assignment", c))
		}
	}

	// Link occupancy: no slot of any link may still name a closed id.
	for _, l := range n.Mesh.Links() {
		for s := 0; s < n.Alloc.TableSize; s++ {
			if o := n.Alloc.LinkOwner(l.ID, s); dead[o] {
				emit(fmt.Sprintf("link %s>%s", n.Mesh.Node(l.From).Name, n.Mesh.Node(l.To).Name),
					fmt.Sprintf("closed connection %d still owns slot %d", o, s))
			}
		}
	}

	// Live NI injection tables: the hardware-side schedule must be clear
	// of closed ids too — the allocation could be clean while a stale
	// table entry keeps firing flits.
	for _, nid := range n.Mesh.AllNIs() {
		t := n.InjectionTable(nid)
		if t == nil {
			continue
		}
		for s, o := range t.Slots {
			if dead[o] {
				emit(n.Mesh.Node(nid).Name,
					fmt.Sprintf("closed connection %d still programmed in injection-table slot %d", o, s))
			}
		}
	}
	return count
}
