package audit

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/reliable"
	"repro/internal/route"
	"repro/internal/trace"
)

// Options tunes an Auditor without weakening its defaults.
type Options struct {
	// TolerateOversubscription suppresses InjectionRate violations for
	// connections that offer more than their guarantee (used when the
	// scenario *deliberately* oversubscribes, e.g. a hostile-interferer
	// composability run). Oversubscribed connections still lose their
	// bound checks — the analytical bound does not cover them.
	TolerateOversubscription bool
	// SlackNs widens the latency check by a fixed margin. Zero (the
	// default) checks the analytical bound exactly.
	SlackNs float64
	// BucketWords overrides the injection token-bucket depth (default
	// 128 words, enough for the largest built-in burst of 64 words plus
	// scheduling margin).
	BucketWords int
	// MaxReports caps the violations reported per connection and kind
	// (default 8); the per-kind counters keep counting past the cap so
	// the summary stays exact while a pathological run cannot flood the
	// collector.
	MaxReports int
}

// connAudit is the per-connection contract plus running check state.
type connAudit struct {
	id      phit.ConnID
	srcName string
	dstName string

	boundPs       float64 // checked latency ceiling, ps (bound + allowance + slack)
	waitBudgetPs  float64 // source-NI wait past which the source is out of contract
	rawBoundNs    float64 // the analytical bound as built
	guaranteeMBps float64

	// Injection token bucket, in words.
	rate   float64 // refill, words per ps
	depth  float64
	tokens float64
	primed bool
	lastPs clock.Time

	unregulated bool // offered load exceeded the guarantee (sticky)
	quarantined bool // reliability layer gave up on this connection

	nextSeq   int64
	injected  int64
	delivered int64
	maxLatPs  clock.Time

	reported map[fault.Kind]int
}

// flitWindow counts one connection's flit starts inside the current
// table revolution (the network-side injection-regulation check).
type flitWindow struct {
	bucket int64
	count  int
}

// activity keys the slot-exclusivity check: one TDM resource is a
// component (NI, link stage) or a router output port.
type activity struct {
	comp trace.CompID
	port int64
}

type lastUse struct {
	time clock.Time
	conn phit.ConnID
}

// An Auditor checks every traced event against the analytical contracts
// of a built network. It implements trace.Sink.
type Auditor struct {
	rep  fault.Reporter
	bus  *trace.Bus
	opts Options

	conns map[phit.ConnID]*connAudit
	order []phit.ConnID

	// Allocation-side injection tables keyed by NI component name,
	// resolved lazily per CompID. Deliberately snapshotted from
	// Network.Alloc, not from the live NI tables, so corruption of the
	// latter is caught.
	allocTables map[string][]phit.ConnID
	ownership   map[trace.CompID][]phit.ConnID

	// Network-side injection regulation: per-connection slot quota
	// (data and reverse channels alike) and per-revolution flit counts.
	slotQuota    map[phit.ConnID]int
	flitWin      map[phit.ConnID]*flitWindow
	revolutionPs clock.Time

	last           map[activity]lastUse
	checkExclusive bool
	flitCyclePs    clock.Time

	total  int64
	byKind map[fault.Kind]int64
}

// Attach builds an Auditor for the network and subscribes it to the bus.
// The reporter receives every violation (nil = strict fail-fast); it
// should be a collector distinct from any fault-campaign collector, so
// expected campaign violations are never mixed with guarantee breaches.
func Attach(n *core.Network, bus *trace.Bus, rep fault.Reporter, opts Options) *Auditor {
	if opts.BucketWords <= 0 {
		opts.BucketWords = 128
	}
	if opts.MaxReports <= 0 {
		opts.MaxReports = 8
	}
	a := &Auditor{
		rep:  rep,
		bus:  bus,
		opts: opts,

		conns:       make(map[phit.ConnID]*connAudit),
		allocTables: make(map[string][]phit.ConnID),
		ownership:   make(map[trace.CompID][]phit.ConnID),
		slotQuota:   make(map[phit.ConnID]int),
		flitWin:     make(map[phit.ConnID]*flitWindow),
		last:        make(map[activity]lastUse),
		// Plesiochronous clocks make sub-flit-cycle spacing between
		// *different* resources' events legitimate; ownership checks
		// still run in every mode.
		checkExclusive: n.Cfg.Mode != core.Asynchronous,
		flitCyclePs:    clock.Time(phit.FlitWords) * clock.Time(clock.PeriodFromMHz(n.Cfg.FreqMHz)),
		byKind:         make(map[fault.Kind]int64),
	}

	a.snapshot(n)

	bus.Attach(a)
	return a
}

// snapshot (re)builds the auditor's view of the network's contracts:
// per-connection bounds and token buckets for connections it has not met
// yet, plus the allocation-side slot tables and quotas. Attach calls it
// once; Resync calls it again after run-time reconfiguration.
func (a *Auditor) snapshot(n *core.Network) {
	allowancePs := recoveryAllowancePs(n)
	// Plesiochronous drift stretches the wall-clock spacing of a
	// generator's nominally compliant injections.
	rateMargin := 1.0 + 1e-6
	if n.Cfg.Mode == core.Asynchronous {
		rateMargin += 2 * n.Cfg.PPM / 1e6
	}
	for _, id := range n.Connections() {
		if a.conns[id] != nil {
			continue
		}
		info, err := n.Info(id)
		if err != nil {
			continue
		}
		p := &route.Path{TotalShift: info.TotalShift}
		ca := &connAudit{
			id:            id,
			srcName:       n.Mesh.Node(info.SrcNI).Name,
			dstName:       n.Mesh.Node(info.DstNI).Name,
			rawBoundNs:    info.BoundNs,
			guaranteeMBps: info.GuaranteedMBps,
			boundPs:       (info.BoundNs+a.opts.SlackNs)*1e3 + allowancePs,
			waitBudgetPs:  analysis.SourceWaitBudgetNs(info.BoundNs+a.opts.SlackNs, p, n.Cfg.FreqMHz)*1e3 + allowancePs,
			rate:          info.GuaranteedMBps * 1e6 / float64(n.Cfg.WordBytes) / 1e12 * rateMargin,
			depth:         float64(a.opts.BucketWords),
			nextSeq:       0,
			reported:      make(map[fault.Kind]int),
		}
		ca.tokens = ca.depth
		a.conns[id] = ca
		a.order = append(a.order, id)
	}

	for _, nid := range n.Mesh.NIs() {
		name := n.Mesh.Node(nid).Name
		a.allocTables[name] = append([]phit.ConnID(nil), n.Alloc.NITable(nid).Slots...)
	}
	// Slot quotas are rebuilt from scratch: closed connections lose
	// theirs (a flit of a closed connection has no quota to hide under).
	a.slotQuota = make(map[phit.ConnID]int, len(n.Alloc.ByConn))
	for c, as := range n.Alloc.ByConn {
		a.slotQuota[c] = len(as.Slots)
	}
	a.revolutionPs = a.flitCyclePs * clock.Time(n.Alloc.TableSize)
}

// Resync refreshes the auditor after a run-time reconfiguration: newly
// admitted connections gain contracts (bound, token bucket, slot quota),
// closed connections lose their slot quotas, and the allocation-side
// injection-table snapshot — deliberately held apart from the live NI
// tables — is retaken so the slot-ownership check enforces the *new*
// schedule. Call it after every OpenConnection/CloseConnection batch; an
// auditor left stale would flag the new owner's legitimate slots as
// ownership violations.
func (a *Auditor) Resync(n *core.Network) {
	a.snapshot(n)
	// The lazily resolved CompID -> table cache points at the old
	// snapshots; drop it so the next event re-resolves.
	a.ownership = make(map[trace.CompID][]phit.ConnID)
}

// recoveryAllowancePs bounds the extra delivery delay the reliability
// shell may legitimately add before quarantine: every go-back-N round
// waits one timeout, the timeout doubles per silent round up to the
// backoff cap, and the budget bounds the rounds. Without Reliable the
// allowance is zero and the analytical bound is checked exactly.
func recoveryAllowancePs(n *core.Network) float64 {
	if !n.Cfg.Reliable {
		return 0
	}
	budget := n.Cfg.RetryBudget
	if budget <= 0 {
		budget = reliable.DefaultRetryBudget
	}
	var worstBound float64
	for _, id := range n.Connections() {
		if info, err := n.Info(id); err == nil {
			// Mirror core.wireReliable's timeout derivation.
			timeoutPs := info.BoundNs*1e3 +
				float64(info.AckRTSlots+n.Alloc.TableSize)*float64(phit.FlitWords)*float64(clock.PeriodFromMHz(n.Cfg.FreqMHz))
			backoff, sum := 1.0, 0.0
			for r := 0; r <= budget; r++ {
				sum += backoff
				if backoff < float64(reliable.DefaultBackoffCap) {
					backoff *= 2
				}
			}
			if w := timeoutPs * sum; w > worstBound {
				worstBound = w
			}
		}
	}
	return worstBound
}

// Event implements trace.Sink.
func (a *Auditor) Event(ev trace.Event) {
	switch ev.Kind {
	case trace.Inject:
		a.onInject(ev)
	case trace.Send:
		a.onSend(ev)
	case trace.Eject:
		a.onEject(ev)
	case trace.SlotStart:
		a.onSlotStart(ev)
		a.onActivity(ev, 0)
	case trace.RouterForward:
		a.onActivity(ev, ev.Arg)
	case trace.LinkForward:
		a.onActivity(ev, 0)
	case trace.Quarantine:
		if ca := a.conns[ev.Conn]; ca != nil {
			ca.quarantined = true
		}
	}
}

func (a *Auditor) onInject(ev trace.Event) {
	ca := a.conns[ev.Conn]
	if ca == nil {
		return
	}
	ca.injected++
	if !ca.primed {
		ca.primed = true
		ca.lastPs = ev.Time
	}
	ca.tokens += float64(ev.Time-ca.lastPs) * ca.rate
	ca.lastPs = ev.Time
	if ca.tokens > ca.depth {
		ca.tokens = ca.depth
	}
	ca.tokens--
	if ca.tokens < 0 && !ca.unregulated {
		ca.unregulated = true
		if !a.opts.TolerateOversubscription {
			a.report(ca, fault.Violation{
				Kind:      fault.InjectionRate,
				Component: a.bus.ComponentName(ev.Comp),
				Time:      ev.Time,
				Slot:      fault.NoSlot,
				Detail: fmt.Sprintf("connection %d offers more than its %.1f Mbyte/s guarantee (word %d overdraws the allocation bucket); its bounds are no longer checked",
					ca.id, ca.guaranteeMBps, ev.Seq),
			})
		}
	}
}

// onSend checks a word's dwell time at the source NI. A word of a
// compliant connection never waits longer than the bound minus the
// deterministic transit; a longer wait means the queue ahead of it could
// only have been offered out of contract, so the connection's bound
// checks are withdrawn (the paper's oversubscriber only slows itself
// down) and the breach of contract is reported once. Every e2e bound
// violation caused by source-side backlog trips this check at the word's
// Send, before its Eject — so it surfaces as injection-rate, while a
// delay inside the fabric still surfaces as latency-bound.
func (a *Auditor) onSend(ev trace.Event) {
	ca := a.conns[ev.Conn]
	if ca == nil || ca.unregulated || ca.quarantined {
		return
	}
	if wait := float64(ev.Time - ev.Ref); wait > ca.waitBudgetPs {
		ca.unregulated = true
		if !a.opts.TolerateOversubscription {
			a.report(ca, fault.Violation{
				Kind:      fault.InjectionRate,
				Component: a.bus.ComponentName(ev.Comp),
				Time:      ev.Time,
				Slot:      fault.NoSlot,
				Detail: fmt.Sprintf("connection %d word %d waited %.1f ns at the source NI (contract allows %.1f ns): offered load exceeds the allocation; bounds no longer checked",
					ca.id, ev.Seq, wait/1e3, ca.waitBudgetPs/1e3),
			})
		}
	}
}

func (a *Auditor) onEject(ev trace.Event) {
	ca := a.conns[ev.Conn]
	if ca == nil {
		return
	}
	ca.delivered++
	if ev.Seq != ca.nextSeq {
		a.report(ca, fault.Violation{
			Kind:      fault.DeliveryOrder,
			Component: a.bus.ComponentName(ev.Comp),
			Time:      ev.Time,
			Slot:      fault.NoSlot,
			Detail: fmt.Sprintf("connection %d delivered word %d, expected %d",
				ca.id, ev.Seq, ca.nextSeq),
		})
	}
	ca.nextSeq = ev.Seq + 1
	lat := ev.Time - ev.Ref
	if lat > ca.maxLatPs {
		ca.maxLatPs = lat
	}
	if float64(lat) > ca.boundPs && !ca.unregulated && !ca.quarantined {
		a.report(ca, fault.Violation{
			Kind:      fault.LatencyBound,
			Component: a.bus.ComponentName(ev.Comp),
			Time:      ev.Time,
			Slot:      fault.NoSlot,
			Detail: fmt.Sprintf("connection %d word %d took %.1f ns, analytical worst case %.1f ns",
				ca.id, ev.Seq, float64(lat)/1e3, ca.boundPs/1e3),
		})
	}
}

func (a *Auditor) onSlotStart(ev trace.Event) {
	if ev.Slot < 0 {
		return
	}
	table, ok := a.ownership[ev.Comp]
	if !ok {
		table = a.allocTables[a.bus.ComponentName(ev.Comp)]
		a.ownership[ev.Comp] = table
	}
	if table == nil {
		return
	}
	slot := int(ev.Slot) % len(table)
	if owner := table[slot]; owner != ev.Conn {
		a.report(a.conns[ev.Conn], fault.Violation{
			Kind:      fault.SlotOwnership,
			Component: a.bus.ComponentName(ev.Comp),
			Time:      ev.Time,
			Slot:      slot,
			Detail: fmt.Sprintf("connection %d sent in a slot the allocation assigns to %s",
				ev.Conn, ownerName(owner)),
		})
	}

	// Network-side injection regulation: a connection owning q slots can
	// start at most q flits per table revolution; one extra is tolerated
	// for bucket-boundary alignment (and plesiochronous drift).
	q := a.slotQuota[ev.Conn]
	if q == 0 || a.revolutionPs == 0 {
		return
	}
	w := a.flitWin[ev.Conn]
	if w == nil {
		w = &flitWindow{bucket: -1}
		a.flitWin[ev.Conn] = w
	}
	if b := int64(ev.Time / a.revolutionPs); b != w.bucket {
		w.bucket, w.count = b, 0
	}
	w.count++
	if w.count > q+1 {
		a.report(a.conns[ev.Conn], fault.Violation{
			Kind:      fault.InjectionRate,
			Component: a.bus.ComponentName(ev.Comp),
			Time:      ev.Time,
			Slot:      slot,
			Detail: fmt.Sprintf("connection %d started %d flits in one table revolution but owns %d slots",
				ev.Conn, w.count, q),
		})
	}
}

func ownerName(c phit.ConnID) string {
	if c == phit.None {
		return "no one"
	}
	return fmt.Sprintf("connection %d", c)
}

// onActivity enforces per-resource slot exclusivity: two different
// connections may not use the same NI, router output port, or link stage
// within one flit cycle (the TDM slot is reserved end to end).
func (a *Auditor) onActivity(ev trace.Event, port int64) {
	if !a.checkExclusive {
		return
	}
	key := activity{comp: ev.Comp, port: port}
	prev, ok := a.last[key]
	a.last[key] = lastUse{time: ev.Time, conn: ev.Conn}
	if !ok || prev.conn == ev.Conn {
		return
	}
	if ev.Time-prev.time < a.flitCyclePs-1 {
		a.report(a.conns[ev.Conn], fault.Violation{
			Kind:      fault.SlotContention,
			Component: a.bus.ComponentName(ev.Comp),
			Time:      ev.Time,
			Slot:      int(ev.Slot),
			Detail: fmt.Sprintf("connections %d and %d used the same resource %.1f ns apart (flit cycle %.1f ns)",
				prev.conn, ev.Conn, float64(ev.Time-prev.time)/1e3, float64(a.flitCyclePs)/1e3),
		})
	}
}

// report counts v and forwards it to the reporter unless the per-conn,
// per-kind cap is exhausted. ca may be nil (reverse channels have no
// audited word contract); the cap then does not apply.
func (a *Auditor) report(ca *connAudit, v fault.Violation) {
	a.total++
	a.byKind[v.Kind]++
	if ca != nil {
		if ca.reported[v.Kind] >= a.opts.MaxReports {
			return
		}
		ca.reported[v.Kind]++
	}
	fault.Report(a.rep, v)
}

// Violations returns the total number of violations detected (including
// any suppressed past the per-connection reporting cap).
func (a *Auditor) Violations() int64 { return a.total }

// ByKind returns the per-kind violation totals.
func (a *Auditor) ByKind() map[fault.Kind]int64 {
	out := make(map[fault.Kind]int64, len(a.byKind))
	for k, n := range a.byKind {
		out[k] = n
	}
	return out
}

// WriteSummary renders the per-connection audit verdicts and the
// violation totals, one line per connection, deterministically ordered.
func (a *Auditor) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "audit: %d connections, %d violations\n", len(a.order), a.total)
	fmt.Fprintf(w, "%6s %12s %10s %9s %9s %8s  %s\n",
		"conn", "route", "delivered", "maxlat", "bound", "margin", "verdict")
	for _, id := range a.order {
		ca := a.conns[id]
		verdict := "ok"
		switch {
		case ca.quarantined:
			verdict = "quarantined"
		case ca.unregulated:
			verdict = "oversubscribed"
		case len(ca.reported) > 0:
			verdict = "VIOLATED"
		}
		maxNs := float64(ca.maxLatPs) / 1e3
		boundNs := ca.boundPs / 1e3
		fmt.Fprintf(w, "%6d %12s %10d %8.1fn %8.1fn %7.1f%%  %s\n",
			id, ca.srcName+">"+ca.dstName, ca.delivered, maxNs, boundNs,
			100*(1-maxNs/boundNs), verdict)
	}
	if a.total > 0 {
		kinds := make([]fault.Kind, 0, len(a.byKind))
		for k := range a.byKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			fmt.Fprintf(w, "audit: %8d x %s\n", a.byKind[k], k)
		}
	}
}
