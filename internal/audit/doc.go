// Package audit closes the loop between the paper's two headline claims
// and what the simulator actually does.
//
// Aelite promises predictable services — a worst-case latency and a
// guaranteed throughput computable from nothing but the TDM slot
// reservation and the path (paper Section VII) — and composable services
// — one connection's observable behaviour is bit-independent of every
// other connection's traffic (Section III). Both claims live in
// internal/analysis as formulas; this package holds every simulated flit
// to them.
//
// An Auditor is a trace.Sink: attach it to the event bus of a built
// network and it derives each connection's contract (via
// analysis.ConnectionBounds, the same entry point Build itself uses, so
// the checked bound and the built bound cannot drift apart) and asserts,
// event by event:
//
//   - injection regulation: a token bucket at the connection's guaranteed
//     rate polices every Inject — the GS contract only binds the bounds
//     while the source stays inside its allocation, so an oversubscribing
//     connection is flagged once and its bound checks withdrawn (it only
//     ever slows itself down);
//   - bound compliance: every Eject's injection-to-delivery latency is
//     checked against the analytical worst case (plus the retransmission
//     allowance in reliable mode);
//   - in-order delivery: Eject sequence numbers must advance by exactly
//     one;
//   - slot conformance: every SlotStart must occur in a slot the
//     *allocation* assigns to that connection (catching live-table
//     corruption), and no two connections may use the same NI, router
//     output port, or link stage within one flit cycle.
//
// Violations flow through the fault.Reporter machinery: a nil reporter
// fails fast on the first violation (strict mode), a fault.Collector
// records them all with one-line diagnostics.
//
// The composability claim needs two runs, not one: Isolation re-executes
// a scenario with the *other* connections' traffic perturbed and diffs
// the audited connections' delivery timelines for byte identity, fanning
// the paired runs over internal/parallel.
package audit
