package audit

import (
	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/trace"
)

// A Contract is one connection's analytical guarantee in backend-neutral
// form: everything the auditor needs to judge the traced behaviour of a
// connection without knowing how the backend derived the numbers. The
// aelite path keeps using Attach (which snapshots a *core.Network
// directly); backends without a core.Network — the routerless ring
// overlay, and any future fabric with its own bound derivation — build
// Contracts from their own analysis and attach through AttachContracts.
type Contract struct {
	Conn    phit.ConnID
	SrcName string // source endpoint component name (for summaries)
	DstName string // destination endpoint component name

	// BoundNs is the backend's analytical worst-case end-to-end latency
	// for a compliant word, in nanoseconds. Options.SlackNs is added on
	// top by the auditor, exactly as in the aelite path.
	BoundNs float64
	// WaitBudgetNs is the source-side dwell budget at the raw bound: how
	// long a compliant word may sit in the source queue before its Send.
	// The auditor widens it by Options.SlackNs alongside the bound.
	WaitBudgetNs float64
	// GuaranteeMBps feeds the injection token bucket; zero disables rate
	// regulation for this connection.
	GuaranteeMBps float64
	// SlotQuota is the connection's owned slot count per table
	// revolution (the network-side injection-regulation check); zero
	// disables the per-revolution quota for this connection.
	SlotQuota int
}

// A ContractSet carries every contract of one built backend instance plus
// the fabric-wide facts the checks need.
type ContractSet struct {
	// FreqMHz is the fabric clock; it sizes the flit cycle used by the
	// slot-exclusivity check.
	FreqMHz float64
	// WordBytes converts bandwidth guarantees to words for the token
	// bucket.
	WordBytes int
	// TableSize is the slots-per-revolution of the fabric's schedule; it
	// sizes the per-revolution flit quota window. Zero disables the
	// quota check (e.g. when rings of different sizes coexist and no
	// single revolution is meaningful).
	TableSize int
	// CheckExclusive enables the per-resource slot-exclusivity check;
	// backends with legitimate sub-flit-cycle event spacing between
	// different connections (plesiochronous clocks) leave it off.
	CheckExclusive bool
	// RateMargin relaxes the token-bucket refill rate multiplicatively;
	// zero selects the default margin (1 + 1e-6) that absorbs rational
	// rate rounding.
	RateMargin float64

	Contracts []Contract

	// AllocTables are the allocation-side slot-ownership tables, keyed
	// by the component name that emits SlotStart events: table[slot] is
	// the connection owning that slot at that component (phit.None for
	// free slots). Nil tables disable the ownership check.
	AllocTables map[string][]phit.ConnID
}

// AttachContracts builds an Auditor from explicit backend contracts and
// subscribes it to the bus. It shares every check and reporting path with
// the aelite Attach — only contract construction differs — so a
// violation means the same thing regardless of which backend produced
// the trace.
func AttachContracts(set ContractSet, bus *trace.Bus, rep fault.Reporter, opts Options) *Auditor {
	if opts.BucketWords <= 0 {
		opts.BucketWords = 128
	}
	if opts.MaxReports <= 0 {
		opts.MaxReports = 8
	}
	a := &Auditor{
		rep:  rep,
		bus:  bus,
		opts: opts,

		conns:       make(map[phit.ConnID]*connAudit),
		allocTables: make(map[string][]phit.ConnID),
		ownership:   make(map[trace.CompID][]phit.ConnID),
		slotQuota:   make(map[phit.ConnID]int),
		flitWin:     make(map[phit.ConnID]*flitWindow),
		last:        make(map[activity]lastUse),

		checkExclusive: set.CheckExclusive,
		flitCyclePs:    clock.Time(phit.FlitWords) * clock.Time(clock.PeriodFromMHz(set.FreqMHz)),
		byKind:         make(map[fault.Kind]int64),
	}
	rateMargin := set.RateMargin
	if rateMargin == 0 {
		rateMargin = 1.0 + 1e-6
	}
	for _, c := range set.Contracts {
		if a.conns[c.Conn] != nil {
			continue
		}
		ca := &connAudit{
			id:            c.Conn,
			srcName:       c.SrcName,
			dstName:       c.DstName,
			rawBoundNs:    c.BoundNs,
			guaranteeMBps: c.GuaranteeMBps,
			boundPs:       (c.BoundNs + a.opts.SlackNs) * 1e3,
			waitBudgetPs:  (c.WaitBudgetNs + a.opts.SlackNs) * 1e3,
			rate:          c.GuaranteeMBps * 1e6 / float64(set.WordBytes) / 1e12 * rateMargin,
			depth:         float64(a.opts.BucketWords),
			reported:      make(map[fault.Kind]int),
		}
		ca.tokens = ca.depth
		a.conns[c.Conn] = ca
		a.order = append(a.order, c.Conn)
		if c.SlotQuota > 0 {
			a.slotQuota[c.Conn] = c.SlotQuota
		}
	}
	for name, table := range set.AllocTables {
		a.allocTables[name] = append([]phit.ConnID(nil), table...)
	}
	if set.TableSize > 0 {
		a.revolutionPs = a.flitCyclePs * clock.Time(set.TableSize)
	}
	bus.Attach(a)
	return a
}
