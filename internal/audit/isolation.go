package audit

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/phit"
)

// Timelines maps each audited connection to its per-word delivery
// instants (typically ni.Arrivals after a run with RecordArrivals on).
type Timelines map[phit.ConnID][]clock.Time

// IsolationResult is the outcome of one composability diff.
type IsolationResult struct {
	// Conns and Words count the compared connections and delivery
	// instants (of the baseline run).
	Conns int
	Words int
	// Identical is the composability verdict: every audited connection
	// delivered the same words at the same picoseconds in both runs.
	Identical bool
	// FirstDiff describes the earliest divergence when not identical.
	FirstDiff string
}

// Isolation runs the paired composability experiment: run(false) executes
// the scenario as given, run(true) executes it with the *interfering*
// connections' traffic perturbed, and the audited connections' delivery
// timelines are diffed for byte identity — the paper's composability
// claim is that the perturbation must be invisible. The two runs fan out
// over the parallel sweep runner; each call must build a private network
// and engine.
func Isolation(jobs int, run func(perturbed bool) (Timelines, error)) (IsolationResult, error) {
	outs, err := parallel.Map(parallel.Jobs(jobs), 2, func(i int) (Timelines, error) {
		return run(i == 1)
	})
	if err != nil {
		return IsolationResult{}, err
	}
	return Diff(outs[0], outs[1]), nil
}

// SurvivorTimelines filters a timeline set down to the given connections
// — the ones that stay open across a reconfiguration event and whose
// service must therefore be undisturbed.
func SurvivorTimelines(t Timelines, survivors []phit.ConnID) Timelines {
	out := make(Timelines, len(survivors))
	for _, id := range survivors {
		if tl, ok := t[id]; ok {
			out[id] = tl
		}
	}
	return out
}

// IsolationAcrossReconfig runs the paired undisturbed-service proof
// across a reconfiguration event: run(false) executes the scenario with
// the connection population fixed, run(true) executes the same scenario
// but opens and/or closes connections mid-run, and the *surviving*
// connections' delivery timelines are diffed for byte identity. This is
// the run-time extension of the paper's composability claim — reference
// [16]'s "undisrupted quality-of-service during reconfiguration of
// multiple applications": slot ownership is the only state connections
// share, a close only surrenders slots and an admission only claims free
// ones, so every survivor's flit timeline must be bit-identical whether
// or not the reconfiguration happened. Each call must build a private
// network and engine.
func IsolationAcrossReconfig(jobs int, survivors []phit.ConnID, run func(reconfig bool) (Timelines, error)) (IsolationResult, error) {
	outs, err := parallel.Map(parallel.Jobs(jobs), 2, func(i int) (Timelines, error) {
		return run(i == 1)
	})
	if err != nil {
		return IsolationResult{}, err
	}
	return Diff(SurvivorTimelines(outs[0], survivors), SurvivorTimelines(outs[1], survivors)), nil
}

// ReportReconfig converts a failed cross-reconfiguration diff into a
// ReconfigDisturbance fault on the reporter (strict mode: a nil reporter
// panics, failing the run fast). It returns the number of violations
// reported — 0 when the result is identical.
func ReportReconfig(res IsolationResult, rep fault.Reporter) int {
	if res.Identical {
		return 0
	}
	fault.Report(rep, fault.Violation{
		Kind:      fault.ReconfigDisturbance,
		Component: "audit.reconfig",
		Slot:      fault.NoSlot,
		Detail: fmt.Sprintf("surviving connection disturbed across reconfiguration: %s (%d connections, %d words compared)",
			res.FirstDiff, res.Conns, res.Words),
	})
	return 1
}

// Diff compares two delivery timelines for byte identity.
func Diff(base, perturbed Timelines) IsolationResult {
	ids := make([]phit.ConnID, 0, len(base))
	for id := range base {
		ids = append(ids, id)
	}
	for id := range perturbed {
		if _, ok := base[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	res := IsolationResult{Conns: len(ids), Identical: true}
	for _, id := range ids {
		b, p := base[id], perturbed[id]
		res.Words += len(b)
		if res.FirstDiff != "" {
			continue
		}
		if len(b) != len(p) {
			res.Identical = false
			res.FirstDiff = fmt.Sprintf("connection %d delivered %d words vs %d under perturbation", id, len(b), len(p))
			continue
		}
		for i := range b {
			if b[i] != p[i] {
				res.Identical = false
				res.FirstDiff = fmt.Sprintf("connection %d word %d arrived at %d ps vs %d ps under perturbation", id, i, b[i], p[i])
				break
			}
		}
	}
	return res
}
