// Package parallel is the sweep runner of the aelite reproduction: it fans
// independent simulation configurations — experiment points, fault-campaign
// plans, frequency and ablation scans — across a pool of worker goroutines
// while keeping every observable output deterministic.
//
// The simulation engine (package sim) is deterministic to the picosecond but
// strictly single-threaded: one engine, one goroutine. Design-space sweeps,
// however, are embarrassingly parallel — every point builds its own network
// and its own engine and shares nothing. This package exploits exactly that
// structure and nothing more:
//
//   - each worker invokes the point function for distinct indices; the
//     point function must build a private sim.Engine (and network, use case,
//     collector...) per call and must not touch shared mutable state;
//   - results are keyed by configuration index, never by completion order,
//     so a sweep's output is byte-identical whatever the worker count or
//     the OS scheduler's mood;
//   - errors are deterministic too: every point runs to completion and the
//     error of the lowest-indexed failed point is returned, so a sweep that
//     fails under -j 8 fails with the same diagnostic under -j 1.
//
// Usage sketch — an eight-point frequency scan on all CPUs:
//
//	points, err := parallel.Map(parallel.Jobs(0), len(freqs),
//		func(i int) (ScanPoint, error) {
//			return simulateOnPrivateEngine(freqs[i]) // builds its own engine
//		})
//
// Jobs(0) resolves to GOMAXPROCS; Map(1, ...) runs inline on the calling
// goroutine, which is the reference serial order every parallel run must
// reproduce.
//
// Everything rendered through Map — experiment sweeps, fault campaigns,
// the scale study — is part of the repository-wide determinism contract:
// byte-identical output at every worker count. Wall-clock measurements
// (e.g. allocator runtimes) are the only sanctioned exception and must be
// excluded from any byte-compared rendering.
package parallel
