package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 64} {
		got, err := Map(jobs, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != 100 {
			t.Fatalf("jobs=%d: len = %d", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: got[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapResultsIdenticalAcrossJobCounts(t *testing.T) {
	ref, err := Map(1, 37, func(i int) (string, error) {
		return fmt.Sprintf("point-%03d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 3, 8, 16} {
		got, err := Map(jobs, 37, func(i int) (string, error) {
			return fmt.Sprintf("point-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("jobs=%d: result %d = %q, want %q", jobs, i, got[i], ref[i])
			}
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	e3 := errors.New("point 3")
	e7 := errors.New("point 7")
	for _, jobs := range []int{1, 4, 16} {
		_, err := Map(jobs, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, e3
			case 7:
				return 0, e7
			}
			return i, nil
		})
		if err != e3 {
			t.Fatalf("jobs=%d: err = %v, want the lowest-indexed error %v", jobs, err, e3)
		}
	}
}

func TestMapRunsEveryPointDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 20, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("first point fails")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d points, want all 20 (a sweep is not a pipeline)", got)
	}
}

func TestMapInlineWhenSerial(t *testing.T) {
	// jobs<=1 must run on the calling goroutine, in index order: this is
	// the reference execution parallel runs are compared against.
	last := -1
	_, err := Map(1, 16, func(i int) (int, error) {
		if i != last+1 {
			t.Fatalf("out-of-order inline execution: %d after %d", i, last)
		}
		last = i
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(8, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(8, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
	wantErr := errors.New("boom")
	if err := ForEach(3, 5, func(i int) error {
		if i == 2 {
			return wantErr
		}
		return nil
	}); err != wantErr {
		t.Fatalf("err = %v", err)
	}
}

func TestJobs(t *testing.T) {
	if got := Jobs(4); got != 4 {
		t.Fatalf("Jobs(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, j := range []int{0, -1} {
		if got := Jobs(j); got != want {
			t.Fatalf("Jobs(%d) = %d, want GOMAXPROCS %d", j, got, want)
		}
	}
}

func TestMapRecoversPanicsIntoJobError(t *testing.T) {
	// A panicking point must not take down the sweep: the other points
	// still run, and the panic surfaces as the typed *JobError of the
	// lowest-indexed panicked point.
	for _, jobs := range []int{1, 4, 16} {
		var ran atomic.Int64
		_, err := Map(jobs, 20, func(i int) (int, error) {
			ran.Add(1)
			if i == 5 || i == 11 {
				panic(fmt.Sprintf("poisoned point %d", i))
			}
			return i, nil
		})
		if got := ran.Load(); got != 20 {
			t.Fatalf("jobs=%d: ran %d points, want all 20 despite panics", jobs, got)
		}
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("jobs=%d: err = %v (%T), want *JobError", jobs, err, err)
		}
		if je.Index != 5 {
			t.Fatalf("jobs=%d: JobError.Index = %d, want the lowest-indexed panic 5", jobs, je.Index)
		}
		if je.Recovered != "poisoned point 5" {
			t.Fatalf("jobs=%d: JobError.Recovered = %v", jobs, je.Recovered)
		}
		if len(je.Stack) == 0 {
			t.Fatalf("jobs=%d: JobError.Stack is empty", jobs)
		}
	}
}

func TestMapCtxCancellationSkipsUnstartedPoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	go func() {
		<-started // cancel as soon as the first point is in flight
		cancel()
	}()
	_, err := MapCtx(ctx, 2, 64, func(ctx context.Context, i int) (int, error) {
		once.Do(func() { close(started) })
		ran.Add(1)
		<-ctx.Done() // simulate a long point that observes cancellation
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 3 {
		t.Fatalf("%d points ran after cancellation, want at most the in-flight workers", got)
	}
}

func TestMapCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 8, 32, func(context.Context, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d points ran under a cancelled context, want 0", ran.Load())
	}
}

func TestMapCtxLeavesNoGoroutinesBehind(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, _ = MapCtx(ctx, 8, 1000, func(ctx context.Context, i int) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
			return i, nil
		}
	})
	// Workers must all have exited by return; allow the runtime a moment
	// to reap them before comparing.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancelled sweep", before, runtime.NumGoroutine())
}
