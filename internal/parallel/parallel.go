package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Jobs canonicalises a -j flag value: any value below 1 (the "pick for me"
// convention) resolves to GOMAXPROCS, the number of OS threads the Go
// runtime will actually execute on.
func Jobs(j int) int {
	if j < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// A JobError is a worker job that panicked. The panic is recovered on the
// worker goroutine and surfaced as the point's error, so one poisoned
// point reports itself instead of taking down the whole sweep (and the
// process): the sweep's other points still run and still return results.
// Recovered holds the panic value, Stack the worker's stack at the point
// of the panic.
type JobError struct {
	Index     int
	Recovered any
	Stack     []byte
}

func (e *JobError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v", e.Index, e.Recovered)
}

// call runs one point, converting a panic into a *JobError.
func call[T any](fn func(i int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &JobError{Index: i, Recovered: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map runs fn(i) for every i in [0, n) on up to jobs workers and returns
// the results in index order. fn must be safe to call from multiple
// goroutines for distinct indices; each call must own everything it
// mutates (in a simulation sweep: the engine, the network, the use case).
//
// Every point executes even when another point fails — n is a sweep, not a
// pipeline — and the error of the lowest-indexed failed point is returned,
// so failures are as reproducible as results. A panicking point is
// recovered into a typed *JobError rather than crashing the sweep. With
// jobs <= 1 (or n <= 1) the points run inline on the calling goroutine in
// index order.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), jobs, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cancellation: once ctx is done, points that have not
// yet started are skipped and report ctx.Err() as their error, while
// points already running finish (fn observes ctx itself for finer-grained
// cancellation). Workers always exit before MapCtx returns, so a
// cancelled sweep leaks no goroutines. With a never-cancelled ctx the
// semantics are exactly Map's.
func MapCtx[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	point := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = call(func(i int) (T, error) { return fn(ctx, i) }, i)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			point(i)
		}
		return finish(out, errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				point(i)
			}
		}()
	}
	wg.Wait()
	return finish(out, errs)
}

func finish[T any](out []T, errs []error) ([]T, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map without results: it runs fn(i) for every i in [0, n)
// across up to jobs workers and returns the error of the lowest-indexed
// failed point.
func ForEach(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachCtx is ForEach with MapCtx's cancellation semantics.
func ForEachCtx(ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapCtx(ctx, jobs, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
