package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs canonicalises a -j flag value: any value below 1 (the "pick for me"
// convention) resolves to GOMAXPROCS, the number of OS threads the Go
// runtime will actually execute on.
func Jobs(j int) int {
	if j < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs fn(i) for every i in [0, n) on up to jobs workers and returns
// the results in index order. fn must be safe to call from multiple
// goroutines for distinct indices; each call must own everything it
// mutates (in a simulation sweep: the engine, the network, the use case).
//
// Every point executes even when another point fails — n is a sweep, not a
// pipeline — and the error of the lowest-indexed failed point is returned,
// so failures are as reproducible as results. With jobs <= 1 (or n <= 1)
// the points run inline on the calling goroutine in index order.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return finish(out, errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return finish(out, errs)
}

func finish[T any](out []T, errs []error) ([]T, error) {
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map without results: it runs fn(i) for every i in [0, n)
// across up to jobs workers and returns the error of the lowest-indexed
// failed point.
func ForEach(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
