package experiments_test

// Randomized equivalence fuzzing for the fast-replay compiler over small
// meshes (2x2 up to 4x3), mixed clocking modes and random slot tables,
// plus the deopt test: a data-dependent fault armed in the middle of an
// engaged replay must deoptimise to cycle-accurate execution with a trace
// byte-identical to a run that never replayed at all.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/phit"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// buildSmallCBR builds a random small-mesh use case at replay-admissible
// quantised CBR rates. A PlacementError is returned to the caller (a
// random draw may simply not fit the table); any other error fails.
func buildSmallCBR(t *testing.T, seed int64, w, h, nisPer, tableSize int, mode core.Mode, fast bool) (*core.Network, error) {
	t.Helper()
	m := topology.NewMesh(w, h, nisPer)
	cfg := core.Config{Mode: mode, TableSize: tableSize, PhaseSeed: seed, FastReplay: fast}
	core.PrepareTopology(m, cfg)
	ips := w * h * nisPer
	uc := spec.Random(spec.RandomConfig{
		Name: fmt.Sprintf("fuzz-%d", seed), Seed: seed,
		IPs: ips, Apps: 2, Conns: ips + 2,
		MinRateMBps: 15, MaxRateMBps: 120,
		MinLatencyNs: 500, MaxLatencyNs: 2000,
	})
	spec.MapIPsRoundRobin(uc, m, seed)
	for i := range uc.Connections {
		uc.Connections[i].BandwidthMBps = experiments.Sec7QuantizeRateMBps(uc.Connections[i].BandwidthMBps)
	}
	if err := uc.Validate(); err != nil {
		t.Fatalf("seed %d: invalid use case: %v", seed, err)
	}
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		var pe *slots.PlacementError
		if errors.As(err, &pe) {
			return nil, err
		}
		t.Fatalf("seed %d: Build: %v", seed, err)
	}
	return n, nil
}

// tracedRun runs the network with a full event log attached and returns
// the rendered report + raw event stream, plus replay engagement count.
func tracedRun(t *testing.T, n *core.Network, warmNs, measNs float64) (obs []byte, engagements int64) {
	t.Helper()
	bus := trace.NewBus()
	log := &eventLog{}
	bus.Attach(log)
	n.AttachTracer(bus)
	rep := n.Run(warmNs, measNs)
	var buf bytes.Buffer
	rep.Write(&buf)
	buf.Write(log.buf.Bytes())
	if p := n.Replay(); p != nil {
		engagements = p.ProgStats().Engagements
	}
	return buf.Bytes(), engagements
}

func TestReplayFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20090808))
	meshes := [][3]int{{2, 2, 1}, {3, 2, 1}, {3, 2, 2}, {4, 3, 1}}
	tables := []int{8, 12, 16}
	modes := []core.Mode{core.Synchronous, core.Mesochronous}
	built, engaged := 0, 0
	for draw := 0; draw < 16 && built < 8; draw++ {
		msh := meshes[rng.Intn(len(meshes))]
		tbl := tables[rng.Intn(len(tables))]
		mode := modes[rng.Intn(len(modes))]
		seed := rng.Int63n(1 << 30)
		name := fmt.Sprintf("%dx%dx%d/t%d/%s/seed%d", msh[0], msh[1], msh[2], tbl, mode, seed)

		slow, err := buildSmallCBR(t, seed, msh[0], msh[1], msh[2], tbl, mode, false)
		if err != nil {
			continue // this draw does not fit its slot table
		}
		fast, err := buildSmallCBR(t, seed, msh[0], msh[1], msh[2], tbl, mode, true)
		if err != nil {
			t.Fatalf("%s: fast build failed where slow succeeded: %v", name, err)
		}
		sObs, _ := tracedRun(t, slow, 4000, 16000)
		fObs, eng := tracedRun(t, fast, 4000, 16000)
		if !bytes.Equal(sObs, fObs) {
			assertIdentical(t, name, sObs, fObs)
		}
		if len(fObs) == 0 {
			t.Fatalf("%s: no observable output", name)
		}
		built++
		if eng > 0 {
			engaged++
		}
	}
	if built < 4 {
		t.Fatalf("only %d random draws were placeable; the fuzz is too thin", built)
	}
	if engaged == 0 {
		t.Fatal("no fuzz draw ever engaged the fast path; the equivalence is vacuous")
	}
	t.Logf("%d draws compared byte-identical, %d with the fast path engaged", built, engaged)
}

// TestReplayDeoptMidRun arms a data-dependent fault (a wire intercept
// dropping three phits) via an engine timer that fires while the fast
// path is engaged and replaying recorded epochs. The replay must stop at
// the timer horizon, materialise the architectural state, resume
// cycle-accurately through the fault, and never re-engage while the hook
// is armed — producing an event stream byte-identical to a run that never
// replayed anything.
func TestReplayDeoptMidRun(t *testing.T) {
	const seed = 7
	run := func(fast bool) ([]byte, int64, int64) {
		n, err := buildSmallCBR(t, seed, 3, 2, 1, 16, core.Synchronous, fast)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		bus := trace.NewBus()
		log := &eventLog{}
		bus.Attach(log)
		n.AttachTracer(bus)
		eng := n.Engine()
		links := n.FaultTargets().Links
		if len(links) == 0 {
			t.Fatal("no faultable links")
		}
		w := links[0].Wire
		drops := 0
		eng.At(12000*clock.Nanosecond, func() {
			w.SetIntercept(func(v phit.Phit, driven bool) phit.Phit {
				if driven && v.Valid && drops < 3 {
					drops++
					return phit.IdlePhit
				}
				return v
			})
		})
		eng.Run(24000 * clock.Nanosecond)
		if drops == 0 {
			t.Fatal("the armed fault never dropped anything; the deopt is untested")
		}
		var engagements, deopts int64
		if p := n.Replay(); p != nil {
			st := p.ProgStats()
			engagements, deopts = st.Engagements, st.Deopts
		}
		return log.buf.Bytes(), engagements, deopts
	}
	slowEv, _, _ := run(false)
	fastEv, engagements, deopts := run(true)
	assertIdentical(t, "deopt event stream", slowEv, fastEv)
	if engagements == 0 {
		t.Fatal("fast path never engaged before the fault; the deopt is untested")
	}
	if deopts == 0 {
		t.Fatal("fast path never deoptimised despite the mid-replay fault")
	}
}
