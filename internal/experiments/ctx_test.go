package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCtxCancelledUpFront pins the contract shared by every Ctx entry
// point: a context that is already done yields the context's error and no
// work.
func TestCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ScaleStudyCtx(ctx, SmokeScaleConfig(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScaleStudyCtx err = %v, want context.Canceled", err)
	}
	if _, err := RecoverySweepCtx(ctx, DefaultRecoveryConfig(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecoverySweepCtx err = %v, want context.Canceled", err)
	}
	if _, err := ConformanceSweepCtx(ctx, DefaultConformanceConfig(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ConformanceSweepCtx err = %v, want context.Canceled", err)
	}
	if _, err := ReconfigStudyCtx(ctx, DefaultReconfigConfig(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReconfigStudyCtx err = %v, want context.Canceled", err)
	}
}

// TestCtxMidFlightCancelLeaksNoGoroutines cancels a conformance sweep
// while its points are in flight and verifies the call returns the
// context error with every worker goroutine reaped — the long-campaign
// cancellation path aelite-serve's per-job deadlines ride on.
func TestCtxMidFlightCancelLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := DefaultConformanceConfig()
	cfg.TableSizes = []int{8, 16, 32, 64}
	cfg.Modes = []core.Mode{core.Synchronous, core.Mesochronous, core.Asynchronous}
	cfg.MeasureNs = 4000

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ConformanceSweepCtx(ctx, cfg, 2)
		done <- err
	}()
	// Let the first points start, then cancel mid-flight.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// In-flight points run to completion; a cancelled sweep reports
		// either the context error (a skipped point was lowest-indexed) or,
		// rarely, every point finished before the cancel landed.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("cancelled sweep did not return")
	}

	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancelled sweep", before, runtime.NumGoroutine())
}
