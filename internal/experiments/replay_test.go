package experiments_test

// Equivalence gate for the fast-replay hyperperiod compiler: a run with
// core.Config.FastReplay must be byte-identical — connection report,
// metrics JSON, and the raw trace event stream — to the cycle-accurate
// run of the same build, across the Section VII workload in all three
// clocking modes, with the guarantee-conformance auditor attached in
// strict (halt-on-violation) mode. Where the compiler cannot engage
// (asynchronous clocking, transactional traffic) it must fall back
// without observable effect.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// eventLog retains the raw event stream as rendered bytes; any field of
// any event diverging between two runs diverges the bytes.
type eventLog struct{ buf bytes.Buffer }

func (l *eventLog) Event(ev trace.Event) {
	fmt.Fprintf(&l.buf, "%d %d %d %d %d %d %d %s\n",
		ev.Time, ev.Ref, ev.Seq, ev.Arg, ev.Conn, ev.Comp, ev.Slot, ev.Kind)
}

// sec7Observables runs one fully instrumented Section VII CBR simulation
// and returns every observable byte stream plus the replay engagement
// count (0 when the program never engaged or was never installed).
func sec7Observables(t *testing.T, mode core.Mode, fast bool) (report, metricsJSON, events []byte, engagements int64) {
	t.Helper()
	n, _, err := experiments.BuildSec7CBR(experiments.Sec7Seed, mode, fast)
	if err != nil {
		t.Fatal(err)
	}
	bus := trace.NewBus()
	met := trace.NewMetrics(bus)
	log := &eventLog{}
	bus.Attach(log)
	audit.Attach(n, bus, nil, audit.Options{}) // nil reporter: halt on any violation
	n.AttachTracer(bus)

	rep := n.Run(10000, 30000)

	var rbuf bytes.Buffer
	rep.Write(&rbuf)
	mj, err := json.MarshalIndent(met.Report(0, int64(n.BaseClock().Period)), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if p := n.Replay(); p != nil {
		engagements = p.ProgStats().Engagements
	}
	return rbuf.Bytes(), mj, log.buf.Bytes(), engagements
}

func assertIdentical(t *testing.T, name string, slow, fast []byte) {
	t.Helper()
	if bytes.Equal(slow, fast) {
		return
	}
	// Locate the first diverging line for a usable failure message.
	sl, fl := bytes.Split(slow, []byte("\n")), bytes.Split(fast, []byte("\n"))
	for i := 0; i < len(sl) && i < len(fl); i++ {
		if !bytes.Equal(sl[i], fl[i]) {
			t.Fatalf("%s diverges at line %d:\n  slow: %s\n  fast: %s", name, i+1, sl[i], fl[i])
		}
	}
	t.Fatalf("%s diverges in length: %d vs %d lines", name, len(sl), len(fl))
}

func TestReplayEquivalenceSec7(t *testing.T) {
	for _, tc := range []struct {
		mode   core.Mode
		engage bool // must the compiler actually engage?
	}{
		{core.Synchronous, true},
		{core.Mesochronous, true},
		{core.Asynchronous, false}, // plesiochronous drift: no hyperperiod, must fall back
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			sRep, sMet, sEv, _ := sec7Observables(t, tc.mode, false)
			fRep, fMet, fEv, eng := sec7Observables(t, tc.mode, true)
			assertIdentical(t, "connection report", sRep, fRep)
			assertIdentical(t, "metrics JSON", sMet, fMet)
			assertIdentical(t, "event stream", sEv, fEv)
			if len(fEv) == 0 {
				t.Fatal("no events traced; the equivalence is vacuous")
			}
			if tc.engage && eng == 0 {
				t.Fatal("fast replay never engaged; the equivalence is vacuous")
			}
			if !tc.engage && eng != 0 {
				t.Fatalf("fast replay engaged %d times in a mode with no hyperperiod", eng)
			}
		})
	}
}

// TestReplayFallbackTransactional pins the honest fallback: the paper's
// transactional Section VII traffic is rate-exact (byte-per-second
// requirements reduce to pattern periods of up to 2e9 cycles), so the
// compiler classifies the network aperiodic and stays out of the way.
func TestReplayFallbackTransactional(t *testing.T) {
	experiments.FastReplay = true
	defer func() { experiments.FastReplay = false }()
	n, _, _, err := experiments.BuildSec7(experiments.Sec7Seed, 500, core.Synchronous, false)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Replay()
	if p == nil {
		t.Fatal("FastReplay build installed no program")
	}
	rep := n.Run(10000, 20000)
	if inert, why := p.Inert(); !inert {
		t.Fatalf("transactional Sec7 should be inert (aperiodic), got active (hyperperiod %d)", p.Hyperperiod())
	} else if why == "" {
		t.Fatal("inert with no recorded reason")
	}
	if got := p.ProgStats().Engagements; got != 0 {
		t.Fatalf("inert program engaged %d times", got)
	}
	if !rep.AllMet() {
		t.Fatal("fallback run missed a requirement the cycle-accurate run meets")
	}
}
