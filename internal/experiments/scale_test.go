package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// allocOnlyScaleConfig is a cheap study for tests: every family and both
// allocators on one small allocation-only mesh.
func allocOnlyScaleConfig() ScaleConfig {
	return ScaleConfig{
		Seed:       Sec7Seed,
		Families:   scenario.Families(),
		Meshes:     []ScaleMesh{{Cols: 4, Rows: 4, Conns: 60}},
		Allocators: []string{"greedy", "ripup"},
		WarmupNs:   2000,
		MeasureNs:  4000,
	}
}

// TestScaleStudyDeterministic runs the same study at 1 and 4 workers and
// requires the deterministic rendering (everything but wall-clock
// allocator runtime) to be byte-identical.
func TestScaleStudyDeterministic(t *testing.T) {
	render := func(jobs int) []byte {
		rep, err := ScaleStudy(allocOnlyScaleConfig(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.RenderDeterministic(&buf)
		return buf.Bytes()
	}
	serial, wide := render(1), render(4)
	if !bytes.Equal(serial, wide) {
		t.Errorf("study rendering differs between 1 and 4 workers:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", serial, wide)
	}
}

// TestScaleStudyVerify runs the cheap study end to end and checks the
// acceptance contract holds: rip-up never below greedy, full placement on
// the small mesh.
func TestScaleStudyVerify(t *testing.T) {
	rep, err := ScaleStudy(allocOnlyScaleConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Points); got != 2*len(scenario.Families()) {
		t.Fatalf("%d points, want %d", got, 2*len(scenario.Families()))
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	for _, p := range rep.Points {
		// Plan outcomes are per data connection (each with its paired
		// credit channel folded in).
		if p.Placed+p.Failed != p.Conns {
			t.Errorf("%s/%s: %d outcomes for %d requested connections",
				p.Family, p.Allocator, p.Placed+p.Failed, p.Conns)
		}
	}
}

// TestScaleVerifyCatchesRegression feeds Verify a hand-built report where
// rip-up lost to greedy and where a simulated point broke a bound.
func TestScaleVerifyCatchesRegression(t *testing.T) {
	rep := &ScaleReport{Points: []ScalePoint{
		{Family: "uniform", Cols: 4, Rows: 4, Allocator: "greedy", SuccessRate: 0.9},
		{Family: "uniform", Cols: 4, Rows: 4, Allocator: "ripup", SuccessRate: 0.8},
	}}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "below greedy") {
		t.Errorf("Verify missed the ripup regression: %v", err)
	}
	rep = &ScaleReport{Points: []ScalePoint{
		{Family: "uniform", Cols: 4, Rows: 4, Allocator: "greedy", SuccessRate: 1, Simulated: true, AuditViolations: 3},
	}}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "violations") {
		t.Errorf("Verify missed the audit violations: %v", err)
	}
	rep = &ScaleReport{Points: []ScalePoint{
		{Family: "uniform", Cols: 4, Rows: 4, Allocator: "greedy", SuccessRate: 1, Simulated: true, AllWithinBound: false},
	}}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("Verify missed the bound excess: %v", err)
	}
}
