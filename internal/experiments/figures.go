package experiments

import (
	"fmt"
	"io"

	"repro/internal/area"
)

// Fig5Row is one point of the frequency/area trade-off (Fig. 5).
type Fig5Row struct {
	TargetMHz float64
	AreaUm2   float64
}

// Fig5 sweeps the synthesis target frequency for the arity-5, 32-bit
// router, as in Fig. 5 (500-900 MHz).
func Fig5() []Fig5Row {
	var rows []Fig5Row
	for f := 500.0; f <= 900; f += 25 {
		rows = append(rows, Fig5Row{TargetMHz: f, AreaUm2: area.RouterArea(5, 32, f)})
	}
	return rows
}

// WriteFig5 renders the sweep.
func WriteFig5(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5 — frequency/area trade-off, arity-5 router, 32-bit data width")
	fmt.Fprintf(w, "%12s %14s\n", "target (MHz)", "cell area (µm²)")
	for _, r := range Fig5() {
		fmt.Fprintf(w, "%12.0f %14.0f\n", r.TargetMHz, r.AreaUm2)
	}
	fmt.Fprintf(w, "fmax(5,32) = %.0f MHz; area saturates at %.0f µm²\n",
		area.RouterFmaxMHz(5, 32), area.RouterMaxArea(5, 32))
}

// Fig6Row is one point of the arity or width sweep (Fig. 6).
type Fig6Row struct {
	Arity     int
	WidthBits int
	AreaUm2   float64
	FmaxMHz   float64
}

// Fig6a sweeps router arity at 32-bit width, synthesised for maximum
// frequency.
func Fig6a() []Fig6Row {
	var rows []Fig6Row
	for p := 2; p <= 7; p++ {
		rows = append(rows, Fig6Row{
			Arity: p, WidthBits: 32,
			AreaUm2: area.RouterMaxArea(p, 32),
			FmaxMHz: area.RouterFmaxMHz(p, 32),
		})
	}
	return rows
}

// Fig6b sweeps data width for the arity-6 router, synthesised for maximum
// frequency.
func Fig6b() []Fig6Row {
	var rows []Fig6Row
	for w := 32; w <= 256; w += 32 {
		rows = append(rows, Fig6Row{
			Arity: 6, WidthBits: w,
			AreaUm2: area.RouterMaxArea(6, w),
			FmaxMHz: area.RouterFmaxMHz(6, w),
		})
	}
	return rows
}

// WriteFig6a renders the arity sweep.
func WriteFig6a(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6(a) — cell area and maximum frequency vs arity, 32-bit data width")
	fmt.Fprintf(w, "%6s %14s %11s\n", "arity", "area (µm²)", "fmax (MHz)")
	for _, r := range Fig6a() {
		fmt.Fprintf(w, "%6d %14.0f %11.0f\n", r.Arity, r.AreaUm2, r.FmaxMHz)
	}
}

// WriteFig6b renders the width sweep.
func WriteFig6b(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6(b) — cell area and maximum frequency vs data width, arity-6 router")
	fmt.Fprintf(w, "%12s %14s %11s\n", "width (bits)", "area (µm²)", "fmax (MHz)")
	for _, r := range Fig6b() {
		fmt.Fprintf(w, "%12d %14.0f %11.0f\n", r.WidthBits, r.AreaUm2, r.FmaxMHz)
	}
}

// LinkRow is one line of the Section V area comparison.
type LinkRow struct {
	Item    string
	AreaUm2 float64
}

// LinkTable reproduces the Section V / VII area comparison around the
// mesochronous link pipeline stages.
func LinkTable() []LinkRow {
	return []LinkRow{
		{"4-word 32-bit bi-sync FIFO, custom cells [18]", area.FIFOArea(4, 32, true)},
		{"4-word 32-bit bi-sync FIFO, standard cells [4]", area.FIFOArea(4, 32, false)},
		{"link pipeline stage (FIFO + FSM), standard cells", area.LinkStageArea(32, false)},
		{"aelite arity-5 router, 32-bit, 600 MHz", area.RouterArea(5, 32, 600)},
		{"aelite arity-5 router + 5 mesochronous link stages", area.MesochronousRouterArea(5, 32, 600, false)},
		{"aelite ditto with custom FIFOs", area.MesochronousRouterArea(5, 32, 600, true)},
		{"mesochronous router of [4] (90 nm)", area.MesochronousRouterRef4},
		{"asynchronous router of [7] (scaled to 90 nm)", area.AsynchronousRouterRef7},
		{"Æthereal GS+BE router, 90 nm model", area.GSBERouterArea(5, 32)},
		{"Æthereal GS+BE router, 130 nm [8] scaled to 90 nm", area.ScaleArea(area.AethercalGSBE130Area, 130, 90)},
	}
}

// WriteLinkTable renders the comparison.
func WriteLinkTable(w io.Writer) {
	fmt.Fprintln(w, "Section V/VII — mesochronous link and router area comparison (90 nm cell area)")
	for _, r := range LinkTable() {
		fmt.Fprintf(w, "%-55s %10.0f µm² (%.4f mm²)\n", r.Item, r.AreaUm2, r.AreaUm2/1e6)
	}
	fmt.Fprintf(w, "GS-only vs GS+BE: %.1fx smaller, %.1fx faster\n",
		area.GSBERouterArea(5, 32)/area.RouterNominalArea(5, 32), area.GSBESpeedRatio)
}

// ThroughputRow is the E6 headline: raw throughput of high-arity routers.
type ThroughputRow struct {
	Arity, WidthBits int
	FmaxMHz          float64
	OneWayGBps       float64
	FullDuplexGBps   float64
	AreaUm2          float64
}

// Throughput computes the Section VII throughput-per-area claim for the
// arity-6, 64-bit router (and neighbours for context).
func Throughput() []ThroughputRow {
	var rows []ThroughputRow
	for _, c := range []struct{ p, w int }{{5, 32}, {6, 32}, {6, 64}, {6, 128}} {
		f := area.RouterFmaxMHz(c.p, c.w)
		one := area.RawThroughputGBps(c.p, c.w, f)
		rows = append(rows, ThroughputRow{
			Arity: c.p, WidthBits: c.w, FmaxMHz: f,
			OneWayGBps:     one,
			FullDuplexGBps: 2 * one,
			AreaUm2:        area.RouterArea(c.p, c.w, 600),
		})
	}
	return rows
}

// WriteThroughput renders the throughput table.
func WriteThroughput(w io.Writer) {
	fmt.Fprintln(w, "Section VII — raw router throughput at fmax (paper quotes 64 Gbyte/s at 0.03 mm² for arity-6, 64-bit)")
	fmt.Fprintf(w, "%6s %6s %10s %12s %12s %14s\n", "arity", "width", "fmax(MHz)", "1-way GB/s", "duplex GB/s", "area@600 (µm²)")
	for _, r := range Throughput() {
		fmt.Fprintf(w, "%6d %6d %10.0f %12.1f %12.1f %14.0f\n",
			r.Arity, r.WidthBits, r.FmaxMHz, r.OneWayGBps, r.FullDuplexGBps, r.AreaUm2)
	}
}
