package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ReconfigConfig parameterises the online-reconfiguration study: one
// fixed workload taken through the three claims of run-time
// reconfiguration — (1) closing and admitting connections mid-run leaves
// every survivor's delivery timeline byte-identical, (2) inadmissible
// requests are rejected with typed reasons and change nothing, (3) a
// hard link fault quarantines the connections crossing it and the
// self-healing layer reroutes them over admissible alternate paths,
// with the recovery latency measured.
type ReconfigConfig struct {
	Seed        int64   // workload seed
	WarmupNs    float64 // warmup before the measurement window
	MeasureNs   float64 // measurement window per run
	SwitchAtNs  float64 // reconfiguration instant inside the window
	HealEveryNs float64 // healer cadence in the self-healing phase
}

// DefaultReconfigConfig is the documented study.
func DefaultReconfigConfig() ReconfigConfig {
	return ReconfigConfig{
		Seed:        Sec7Seed,
		WarmupNs:    4000,
		MeasureNs:   40000,
		SwitchAtNs:  12000,
		HealEveryNs: 8000,
	}
}

// RejectionCase is one typed-rejection probe of the admission phase.
type RejectionCase struct {
	Label    string             `json:"label"`
	Want     string             `json:"want"`
	Decision admission.Decision `json:"decision"`
}

// ReconfigIsolation is the undisturbed-service phase's verdict.
type ReconfigIsolation struct {
	Survivors  int         `json:"survivors"`
	Words      int         `json:"words"`
	Identical  bool        `json:"identical"`
	FirstDiff  string      `json:"first_diff,omitempty"`
	ClosedConn phit.ConnID `json:"closed_conn"`
	NewConn    phit.ConnID `json:"new_conn"`
	// AuditViolations counts guarantee breaches in the baseline and the
	// reconfigured run (both must be zero).
	AuditViolations [2]int64 `json:"audit_violations"`
	// Residue counts closed-connection leftovers found after the switch
	// (slot-table entries, link occupancy, allocation bookkeeping).
	Residue int `json:"residue"`
}

// ReconfigSummary is the study's machine-readable artefact (the CI gate
// consumes the JSON form).
type ReconfigSummary struct {
	Seed       int64                  `json:"seed"`
	Isolation  ReconfigIsolation      `json:"isolation"`
	Rejections []RejectionCase        `json:"rejections"`
	FaultyLink string                 `json:"faulty_link"`
	Heals      []admission.HealReport `json:"heals"`
	Reroutes   int                    `json:"reroutes"`
	Degraded   int                    `json:"degraded"`
	// Violations counts every gate failure across the three phases; the
	// study passes iff it is zero.
	Violations int      `json:"violations"`
	Failures   []string `json:"failures,omitempty"`
}

// reconfigSpec builds the study's workload: light enough that a closed
// connection's capacity re-admits, busy enough that every link of
// interest carries traffic.
func reconfigSpec(seed int64) *spec.UseCase {
	return spec.Random(spec.RandomConfig{
		Name: "reconfig", Seed: seed, IPs: 10, Apps: 2, Conns: 8,
		MinRateMBps: 20, MaxRateMBps: 80,
		MinLatencyNs: 400, MaxLatencyNs: 1200,
	})
}

// reconfigNetwork builds the study's network over a private mesh.
func reconfigNetwork(seed int64, reliable bool, retry int, col *fault.Collector) (*core.Network, error) {
	m := topology.NewMesh(3, 2, 2)
	uc := reconfigSpec(seed)
	spec.MapIPsByTraffic(uc, m)
	ncfg := core.Config{
		Mode: core.Mesochronous, Probes: true,
		Reliable: reliable, RetryBudget: retry, FaultReporter: col,
	}
	core.PrepareTopology(m, ncfg)
	return core.Build(m, uc, ncfg)
}

// reconfigIsolation runs the paired undisturbed-service proof: a baseline
// run with the population fixed against a run that closes the victim
// connection mid-window and admits a replacement requirement, with every
// flit audited, the auditor resynchronised across the switch, and the
// closed ids swept for residue. The survivors' timelines must be
// byte-identical.
func reconfigIsolation(cfg ReconfigConfig, jobs int) (ReconfigIsolation, error) {
	// The victim is the highest-id connection of the (deterministic)
	// workload; everyone else must not notice the switch.
	uc := reconfigSpec(cfg.Seed)
	victim := uc.Connections[0].ID
	for _, c := range uc.Connections {
		if c.ID > victim {
			victim = c.ID
		}
	}
	var survivors []phit.ConnID
	for _, c := range uc.Connections {
		if c.ID != victim {
			survivors = append(survivors, c.ID)
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })

	out := ReconfigIsolation{Survivors: len(survivors), ClosedConn: victim}
	var audViol [2]int64
	var residue [2]int
	var newConn [2]phit.ConnID
	res, err := audit.IsolationAcrossReconfig(jobs, survivors, func(reconfig bool) (audit.Timelines, error) {
		audCol := fault.NewCollector()
		n, err := reconfigNetwork(cfg.Seed, false, 0, fault.NewCollector())
		if err != nil {
			return nil, err
		}
		bus := trace.NewBus()
		n.AttachTracer(bus)
		a := audit.Attach(n, bus, audCol, audit.Options{})

		for _, id := range survivors {
			info, err := n.Info(id)
			if err != nil {
				return nil, err
			}
			n.NIOf(info.DstNI).RecordArrivals(id, true)
		}

		idx := 0
		var actions []core.TimedAction
		if reconfig {
			idx = 1
			actions = append(actions, core.TimedAction{AtNs: cfg.SwitchAtNs, Do: func(n *core.Network) error {
				sc, err := n.SpecOf(victim)
				if err != nil {
					return err
				}
				rev, err := n.ReverseOf(victim)
				if err != nil {
					return err
				}
				if err := n.CloseConnection(victim); err != nil {
					return err
				}
				nc := sc
				nc.ID = n.FreshConnID()
				d, err := admission.Admit(n, nc, admission.Options{})
				if err != nil {
					return err
				}
				if !d.Admissible {
					return fmt.Errorf("reconfig: freed capacity did not re-admit: %s (%s)", d.Reason, d.Detail)
				}
				newConn[1] = nc.ID
				a.Resync(n)
				residue[1] = audit.CheckReconfigResidue(n, []phit.ConnID{victim, rev}, audCol)
				return nil
			}})
		}
		if _, err := n.RunTimed(cfg.WarmupNs, cfg.MeasureNs, actions); err != nil {
			return nil, err
		}
		audViol[idx] = a.Violations() + int64(audCol.CountByKind()[fault.ReconfigResidue])

		t := make(audit.Timelines, len(survivors))
		for _, id := range survivors {
			info, err := n.Info(id)
			if err != nil {
				return nil, err
			}
			t[id] = n.NIOf(info.DstNI).Arrivals(id)
		}
		return t, nil
	})
	if err != nil {
		return out, err
	}
	out.Words = res.Words
	out.Identical = res.Identical
	out.FirstDiff = res.FirstDiff
	out.AuditViolations = audViol
	out.Residue = residue[1]
	out.NewConn = newConn[1]
	return out, nil
}

// reconfigRejections probes the admission controller with requests that
// must each fail for a specific typed reason — and verifies the probes
// left the network untouched (same free-slot picture before and after).
func reconfigRejections(cfg ReconfigConfig) ([]RejectionCase, error) {
	n, err := reconfigNetwork(cfg.Seed, false, 0, fault.NewCollector())
	if err != nil {
		return nil, err
	}
	uc := reconfigSpec(cfg.Seed)
	c0 := uc.Connections[0]
	fresh := n.FreshConnID()
	// A slot carries 2 payload words per 3-word flit: link payload
	// capacity is 2/3 of the raw word rate.
	capacityMBps := n.Cfg.FreqMHz * float64(n.Cfg.WordBytes) * 2 / 3

	var allRouterLinks []topology.LinkID
	for _, l := range n.Mesh.Links() {
		if n.Mesh.Node(l.From).Kind == topology.Router && n.Mesh.Node(l.To).Kind == topology.Router {
			allRouterLinks = append(allRouterLinks, l.ID)
		}
	}
	// The avoid probe needs endpoints on different routers — a pair on
	// one router never touches a router-to-router link.
	crossing := c0
	for _, c := range uc.Connections {
		links, err := n.ConnectionLinks(c.ID)
		if err != nil {
			return nil, err
		}
		hasRR := false
		for _, l := range links {
			lk := n.Mesh.Link(l)
			if n.Mesh.Node(lk.From).Kind == topology.Router && n.Mesh.Node(lk.To).Kind == topology.Router {
				hasRR = true
				break
			}
		}
		if hasRR {
			crossing = c
			break
		}
	}

	mk := func(bw, lat float64) spec.Connection {
		return spec.Connection{ID: fresh, App: c0.App, Src: c0.Src, Dst: c0.Dst, BandwidthMBps: bw, MaxLatencyNs: lat}
	}
	type probe struct {
		label string
		conn  spec.Connection
		opts  admission.Options
		want  admission.Reason
	}
	probes := []probe{
		{"duplicate id", c0, admission.Options{}, admission.DuplicateID},
		{"unknown endpoint", spec.Connection{ID: fresh, Src: spec.IPID(999), Dst: c0.Dst, BandwidthMBps: 40, MaxLatencyNs: 1000}, admission.Options{}, admission.UnknownEndpoint},
		{"rate above link capacity", mk(capacityMBps*1.25, 5000), admission.Options{}, admission.BoundInfeasible},
		{"latency below path delay", mk(40, 1), admission.Options{}, admission.BoundInfeasible},
		{"every route avoided", spec.Connection{ID: fresh, App: crossing.App, Src: crossing.Src, Dst: crossing.Dst,
			BandwidthMBps: 40, MaxLatencyNs: 1000}, admission.Options{Avoid: allRouterLinks}, admission.NoPath},
		{"table-filling request", mk(capacityMBps*0.97, 60000), admission.Options{}, admission.NoSlots},
	}

	before := n.Alloc.Conns()
	var out []RejectionCase
	for _, p := range probes {
		d := admission.Probe(n, p.conn, p.opts)
		if d.Admissible {
			return nil, fmt.Errorf("reconfig: probe %q was admitted, want rejection %s", p.label, p.want)
		}
		if d.Why() != p.want {
			return nil, fmt.Errorf("reconfig: probe %q rejected as %s, want %s (%s)", p.label, d.Reason, p.want, d.Detail)
		}
		out = append(out, RejectionCase{Label: p.label, Want: p.want.String(), Decision: d})
	}
	after := n.Alloc.Conns()
	if len(before) != len(after) {
		return nil, fmt.Errorf("reconfig: rejection probes changed the live allocation (%d -> %d owners)", len(before), len(after))
	}
	return out, nil
}

// reconfigHealing arms a hard fault (one router-to-router link dropping
// every flit) on a reliable build with a tight retry budget, runs the
// healer between engine segments, and reports how each quarantined
// connection was rerouted (or gracefully degraded) and how long the
// service interruption lasted.
func reconfigHealing(cfg ReconfigConfig) (string, []admission.HealReport, *core.Network, *trace.Metrics, *core.Report, error) {
	col := fault.NewCollector()
	n, err := reconfigNetwork(cfg.Seed, true, 2, col)
	if err != nil {
		return "", nil, nil, nil, nil, err
	}
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	h := admission.NewHealer(n, bus)

	// Fault the first router-to-router link any connection rides: every
	// connection crossing it (data or credit direction) will exhaust its
	// retry budget and quarantine.
	var faulty topology.LinkID
	var faultyName string
	for _, id := range n.Connections() {
		links, err := n.ConnectionLinks(id)
		if err != nil {
			return "", nil, nil, nil, nil, err
		}
		for _, l := range links {
			lk := n.Mesh.Link(l)
			if n.Mesh.Node(lk.From).Kind == topology.Router && n.Mesh.Node(lk.To).Kind == topology.Router {
				faulty = l
				faultyName = fmt.Sprintf("l%d.%s>%s", l, n.Mesh.Node(lk.From).Name, n.Mesh.Node(lk.To).Name)
				break
			}
		}
		if faultyName != "" {
			break
		}
	}
	if faultyName == "" {
		return "", nil, nil, nil, nil, fmt.Errorf("reconfig: no connection rides a router-to-router link")
	}
	plan := &fault.Plan{Seed: cfg.Seed, Rates: []fault.RateRule{
		{Target: fmt.Sprintf("l%d.", faulty), Drop: 1},
	}}
	campaign := fault.NewCampaign(plan, col)
	if err := campaign.Arm(n.Engine(), n.FaultTargets()); err != nil {
		return "", nil, nil, nil, nil, err
	}

	// The healer must run between engine segments (quarantine fires
	// inside event processing); RunTimed's actions are exactly that.
	var actions []core.TimedAction
	for at := cfg.HealEveryNs; at < cfg.MeasureNs; at += cfg.HealEveryNs {
		actions = append(actions, core.TimedAction{AtNs: at, Do: func(n *core.Network) error {
			_, err := h.Heal()
			return err
		}})
	}
	rep, err := n.RunTimed(0, cfg.MeasureNs, actions)
	if err != nil {
		return "", nil, nil, nil, nil, err
	}
	if _, err := h.Heal(); err != nil {
		return "", nil, nil, nil, nil, err
	}
	return faultyName, h.Reports(), n, mx, rep, nil
}

// ReconfigStudy runs all three phases and renders the verdict.
func ReconfigStudy(cfg ReconfigConfig, jobs int) (*ReconfigSummary, error) {
	return ReconfigStudyCtx(context.Background(), cfg, jobs)
}

// ReconfigStudyCtx is ReconfigStudy with cancellation, observed at the
// three phase boundaries (each phase is one bounded simulation): once ctx
// is done, the next phase never starts and the study returns ctx's error.
func ReconfigStudyCtx(ctx context.Context, cfg ReconfigConfig, jobs int) (*ReconfigSummary, error) {
	sum := &ReconfigSummary{Seed: cfg.Seed}
	fail := func(format string, args ...any) {
		sum.Violations++
		sum.Failures = append(sum.Failures, fmt.Sprintf(format, args...))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	iso, err := reconfigIsolation(cfg, jobs)
	if err != nil {
		return nil, err
	}
	sum.Isolation = iso
	if !iso.Identical {
		fail("survivor timelines diverged: %s", iso.FirstDiff)
	}
	if iso.Words == 0 {
		fail("survivors delivered nothing")
	}
	for i, label := range []string{"baseline", "reconfig"} {
		if iso.AuditViolations[i] != 0 {
			fail("%s run broke %d audited guarantees", label, iso.AuditViolations[i])
		}
	}
	if iso.Residue != 0 {
		fail("close left %d residues behind", iso.Residue)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rej, err := reconfigRejections(cfg)
	if err != nil {
		return nil, err
	}
	sum.Rejections = rej

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	faulty, heals, n, mx, rep, err := reconfigHealing(cfg)
	if err != nil {
		return nil, err
	}
	sum.FaultyLink = faulty
	sum.Heals = heals
	for _, h := range heals {
		if h.Rerouted {
			sum.Reroutes++
			if h.RecoveryNs <= 0 {
				fail("reroute of connection %d has no recovery latency", h.Victim)
			}
			if cm := mx.Conn(h.Origin); cm.Reroutes == 0 {
				fail("reroute of connection %d missing from the trace metrics", h.Victim)
			}
		}
		if h.Degraded {
			sum.Degraded++
		}
	}
	if sum.Reroutes == 0 {
		fail("hard fault on %s triggered no reroute", faulty)
	}
	// Every replacement must actually carry payload after the reroute.
	delivered := make(map[phit.ConnID]int64)
	for _, c := range rep.Conns {
		delivered[c.Conn] = c.Delivered
	}
	for _, h := range heals {
		if h.Rerouted && delivered[h.Replacement] == 0 {
			// A replacement admitted in the final healer pass, after the
			// last engine segment, never got simulated time to deliver;
			// anything earlier must carry payload.
			if float64(h.HealedAt) < cfg.MeasureNs*0.9*1e3 {
				fail("replacement %d of connection %d delivered nothing", h.Replacement, h.Victim)
			}
		}
	}
	_ = n
	return sum, nil
}

// WriteReconfig runs the study and renders the human-readable report; a
// non-zero violation count is returned as an error (the CI gate).
func WriteReconfig(w io.Writer, cfg ReconfigConfig, jobs int) error {
	sum, err := ReconfigStudy(cfg, jobs)
	if err != nil {
		return err
	}
	io.WriteString(w, RenderReconfig(sum))
	if sum.Violations > 0 {
		return fmt.Errorf("reconfig: %d violations: %s", sum.Violations, strings.Join(sum.Failures, "; "))
	}
	return nil
}

// RenderReconfig renders the study summary as text.
func RenderReconfig(sum *ReconfigSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- online reconfiguration study (seed %d) --\n", sum.Seed)
	iso := sum.Isolation
	verdict := "IDENTICAL"
	if !iso.Identical {
		verdict = "DIVERGED: " + iso.FirstDiff
	}
	fmt.Fprintf(&b, "undisturbed service: %d survivors, %d delivery instants across close(%d)+admit(%d): %s\n",
		iso.Survivors, iso.Words, iso.ClosedConn, iso.NewConn, verdict)
	fmt.Fprintf(&b, "                     audit violations baseline=%d reconfig=%d, close residues=%d\n",
		iso.AuditViolations[0], iso.AuditViolations[1], iso.Residue)
	fmt.Fprintf(&b, "admission control:   %d inadmissible requests, each rejected with its typed reason:\n", len(sum.Rejections))
	for _, r := range sum.Rejections {
		fmt.Fprintf(&b, "  %-26s -> %-16s %s\n", r.Label, r.Decision.Reason, r.Decision.Detail)
	}
	fmt.Fprintf(&b, "self-healing:        %s dropping every flit: %d reroutes, %d degraded\n",
		sum.FaultyLink, sum.Reroutes, sum.Degraded)
	for _, h := range sum.Heals {
		switch {
		case h.Rerouted:
			fmt.Fprintf(&b, "  conn %d quarantined at %.1f ns -> rerouted as conn %d, recovery %.1f ns\n",
				h.Victim, float64(h.QuarantinedAt)/1e3, h.Replacement, h.RecoveryNs)
		default:
			fmt.Fprintf(&b, "  conn %d quarantined at %.1f ns -> degraded gracefully (%s)\n",
				h.Victim, float64(h.QuarantinedAt)/1e3, h.Decision.Reason)
		}
	}
	if sum.Violations == 0 {
		fmt.Fprintf(&b, "verdict: PASS (0 violations)\n")
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d violations)\n", sum.Violations)
		for _, f := range sum.Failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	return b.String()
}

// WriteReconfigJSON writes the machine-readable summary (the CI
// artifact).
func WriteReconfigJSON(w io.Writer, sum *ReconfigSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}
