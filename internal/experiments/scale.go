package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/phit"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// A ScaleMesh is one mesh size in a scale study.
type ScaleMesh struct {
	Cols, Rows int
	Conns      int
	// Simulate additionally builds and cycle-accurately simulates every
	// fully-allocated point at this size, with the conformance auditor
	// attached and the replay fast path armed. Meant for the smallest
	// meshes: simulation cost grows with mesh area times window, while
	// allocation-only points stay cheap at any size.
	Simulate bool
}

// ScaleConfig parameterises a scale study: the cross product of
// generator families, mesh sizes and allocators.
type ScaleConfig struct {
	Seed       int64
	Families   []scenario.Family
	Meshes     []ScaleMesh
	Allocators []string
	// TableSize overrides the scenario default (0 keeps it: 64 up to
	// 8x8, 128 beyond).
	TableSize int
	// WarmupNs and MeasureNs size the simulated points' windows. The
	// defaults give the replay recorder several hyperperiods to record,
	// verify and engage.
	WarmupNs, MeasureNs float64
}

// DefaultScaleConfig is the published study: all five families on 8x8
// (simulated), 16x16 and 32x32 meshes, both allocators. The 16x16 points
// carry 1200 connections over 512 IPs; the 32x32 points 2400 over 2048.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Seed:     Sec7Seed,
		Families: scenario.Families(),
		Meshes: []ScaleMesh{
			{Cols: 8, Rows: 8, Conns: 300, Simulate: true},
			{Cols: 16, Rows: 16, Conns: 1200},
			{Cols: 32, Rows: 32, Conns: 2400},
		},
		Allocators: []string{"greedy", "ripup"},
		WarmupNs:   10000,
		MeasureNs:  20000,
	}
}

// SmokeScaleConfig is the CI gate: one small simulated mesh, every
// family, both allocators — minutes, not hours.
func SmokeScaleConfig() ScaleConfig {
	cfg := DefaultScaleConfig()
	cfg.Meshes = []ScaleMesh{{Cols: 8, Rows: 8, Conns: 200, Simulate: true}}
	return cfg
}

// A ScalePoint is one (family, mesh, allocator) outcome.
type ScalePoint struct {
	Family    string `json:"family"`
	Cols      int    `json:"cols"`
	Rows      int    `json:"rows"`
	Conns     int    `json:"conns"`
	Allocator string `json:"allocator"`
	TableSize int    `json:"table_size"`

	// Allocation outcome (every point).
	Placed      int     `json:"placed"`
	Failed      int     `json:"failed"`
	RipUps      int     `json:"ripups"`
	SuccessRate float64 `json:"success_rate"`
	// AllocMs is wall-clock allocator runtime. It is the one
	// non-deterministic field: determinism comparisons must exclude it
	// (see RenderDeterministic).
	AllocMs float64 `json:"alloc_ms"`

	// Simulated sample (Simulate meshes with full allocation only).
	Simulated        bool    `json:"simulated,omitempty"`
	BoundTightness   float64 `json:"bound_tightness,omitempty"` // mean latMax/bound
	AllWithinBound   bool    `json:"all_within_bound,omitempty"`
	AuditViolations  int64   `json:"audit_violations"`
	ReplayEngaged    bool    `json:"replay_engaged,omitempty"`
	ReplayedInstants int64   `json:"replayed_instants,omitempty"`
}

// A ScaleReport is a finished study.
type ScaleReport struct {
	Cfg    ScaleConfig  `json:"config"`
	Points []ScalePoint `json:"points"`
}

// scalePoint runs one cell of the cross product. ctx is observed at the
// two expensive stage boundaries (before allocation and before the
// simulated sample), the granularity at which a cancelled study stops
// doing new work.
func scalePoint(ctx context.Context, cfg ScaleConfig, fam scenario.Family, mesh ScaleMesh, alloc string) (ScalePoint, error) {
	if err := ctx.Err(); err != nil {
		return ScalePoint{}, err
	}
	scfg := scenario.Default(fam, mesh.Cols, mesh.Rows, mesh.Conns, cfg.Seed)
	if cfg.TableSize != 0 {
		scfg.TableSize = cfg.TableSize
	}
	ncfg := core.Config{FreqMHz: scfg.FreqMHz, TableSize: scfg.TableSize, Allocator: alloc, FastReplay: true}
	// Pick the header layout the mesh diameter needs: the worst minimal
	// route visits cols+rows-1 routers (one port each). Past the paper's
	// 32-bit layout, the wide 64-bit instance takes over (8-byte words so
	// the header still fills one link word); past even that, planning
	// proceeds with the path cap lifted — allocation-only territory.
	ports := mesh.Cols + mesh.Rows - 1
	if ports > phit.DefaultLayout.MaxHops() {
		ncfg.Layout = phit.WideLayout
		ncfg.WordBytes = 8
		scfg.WordBytes = 8
	}
	if ports > phit.WideLayout.MaxHops() {
		ncfg.UncappedPaths = true
	}
	s, err := scenario.Generate(scfg)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %s %dx%d %s: %w", fam, mesh.Cols, mesh.Rows, alloc, err)
	}
	pt := ScalePoint{
		Family: string(fam), Cols: mesh.Cols, Rows: mesh.Rows, Conns: mesh.Conns,
		Allocator: alloc, TableSize: scfg.TableSize,
	}
	m := s.Mesh()
	core.PrepareTopology(m, ncfg)
	start := time.Now()
	plan, err := core.PlanAllocation(m, s.UseCase, ncfg)
	pt.AllocMs = float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %s %dx%d %s: %w", fam, mesh.Cols, mesh.Rows, alloc, err)
	}
	pt.Placed = len(plan.Placed)
	pt.Failed = len(plan.Failed)
	pt.RipUps = plan.RipUps
	pt.SuccessRate = stats.Finite(plan.SuccessRate())
	if !mesh.Simulate || pt.Failed > 0 {
		return pt, nil
	}
	if err := ctx.Err(); err != nil {
		return ScalePoint{}, err
	}

	// Simulated sample: regenerate the scenario (a use case must never be
	// shared across builds) and rebuild on a fresh mesh with the
	// conformance auditor attached, then measure how tight the analytical
	// bounds are against observed worst cases.
	s2, err := scenario.Generate(scfg)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %s %dx%d %s: %w", fam, mesh.Cols, mesh.Rows, alloc, err)
	}
	m = s2.Mesh()
	core.PrepareTopology(m, ncfg)
	n, err := core.Build(m, s2.UseCase, ncfg)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("scale %s %dx%d %s: simulated build: %w", fam, mesh.Cols, mesh.Rows, alloc, err)
	}
	bus := trace.NewBus()
	n.AttachTracer(bus)
	a := audit.Attach(n, bus, fault.NewCollector(), audit.Options{})
	rep := n.Run(cfg.WarmupNs, cfg.MeasureNs)
	pt.Simulated = true
	pt.AuditViolations = a.Violations()
	pt.AllWithinBound = rep.AllWithinBound()
	var sum float64
	var cnt int
	for _, c := range rep.Conns {
		if c.Delivered > 0 && c.BoundNs > 0 {
			sum += c.LatMaxNs / c.BoundNs
			cnt++
		}
	}
	if cnt > 0 {
		// Finite: a zero bound or empty span would put NaN/Inf into the
		// JSON artifact, which encoding/json rejects outright.
		pt.BoundTightness = stats.Finite(sum / float64(cnt))
	}
	if p := n.Replay(); p != nil {
		// Engagement is momentary (a window-end timer deopts it), so the
		// metric is cumulative: did the program ever engage, and how many
		// instants did it serve from the compiled hyperperiod.
		st := p.ProgStats()
		pt.ReplayEngaged = st.Engagements > 0
		pt.ReplayedInstants = st.ReplayedInstants
	}
	return pt, nil
}

// ScaleStudy runs the full cross product, fanning points across up to
// jobs workers. Point order — and every field except AllocMs — is
// deterministic at any worker count.
func ScaleStudy(cfg ScaleConfig, jobs int) (*ScaleReport, error) {
	return ScaleStudyCtx(context.Background(), cfg, jobs)
}

// ScaleStudyCtx is ScaleStudy with cancellation: once ctx is done,
// unstarted points are skipped and the study returns ctx's error. Points
// already past their last ctx check finish (a single point is bounded
// work), and no worker goroutines outlive the call.
func ScaleStudyCtx(ctx context.Context, cfg ScaleConfig, jobs int) (*ScaleReport, error) {
	type cell struct {
		fam   scenario.Family
		mesh  ScaleMesh
		alloc string
	}
	var cells []cell
	for _, fam := range cfg.Families {
		for _, mesh := range cfg.Meshes {
			for _, alloc := range cfg.Allocators {
				cells = append(cells, cell{fam, mesh, alloc})
			}
		}
	}
	points, err := parallel.MapCtx(ctx, parallel.Jobs(jobs), len(cells), func(ctx context.Context, i int) (ScalePoint, error) {
		return scalePoint(ctx, cfg, cells[i].fam, cells[i].mesh, cells[i].alloc)
	})
	if err != nil {
		return nil, err
	}
	return &ScaleReport{Cfg: cfg, Points: points}, nil
}

// Verify checks the study's acceptance contract: on every (family, mesh)
// pair the rip-up allocator's success rate is at least the greedy one's,
// and no simulated point broke a guarantee or exceeded a bound.
func (r *ScaleReport) Verify() error {
	greedy := make(map[string]float64)
	key := func(p ScalePoint) string { return fmt.Sprintf("%s/%dx%d", p.Family, p.Cols, p.Rows) }
	for _, p := range r.Points {
		if p.Allocator == "greedy" {
			greedy[key(p)] = p.SuccessRate
		}
	}
	for _, p := range r.Points {
		if p.Allocator == "ripup" {
			if g, ok := greedy[key(p)]; ok && p.SuccessRate < g {
				return fmt.Errorf("scale %s: ripup success %.4f below greedy %.4f", key(p), p.SuccessRate, g)
			}
		}
		if p.Simulated {
			if p.AuditViolations != 0 {
				return fmt.Errorf("scale %s/%s: auditor recorded %d violations", key(p), p.Allocator, p.AuditViolations)
			}
			if !p.AllWithinBound {
				return fmt.Errorf("scale %s/%s: a measured latency exceeded its analytical bound", key(p), p.Allocator)
			}
		}
	}
	return nil
}

func (p ScalePoint) renderRow(w io.Writer, withAllocMs bool) {
	sim := "-"
	if p.Simulated {
		engaged := "inert"
		if p.ReplayEngaged {
			engaged = fmt.Sprintf("replay %d inst", p.ReplayedInstants)
		}
		sim = fmt.Sprintf("tight %.2f, %d viol, %s", p.BoundTightness, p.AuditViolations, engaged)
	}
	ms := ""
	if withAllocMs {
		ms = fmt.Sprintf(" %8.1fms", p.AllocMs)
	}
	fmt.Fprintf(w, "%-11s %2dx%-2d %5d %-7s tbl %3d  %5d/%-5d %5.1f%% %3d ripups%s  %s\n",
		p.Family, p.Cols, p.Rows, p.Conns, p.Allocator, p.TableSize,
		p.Placed, p.Placed+p.Failed, p.SuccessRate*100, p.RipUps, ms, sim)
}

// Render writes the human-readable study table, including wall-clock
// allocator runtimes.
func (r *ScaleReport) Render(w io.Writer) {
	fmt.Fprintf(w, "scale study: seed %d, %d families x %d meshes x %d allocators\n\n",
		r.Cfg.Seed, len(r.Cfg.Families), len(r.Cfg.Meshes), len(r.Cfg.Allocators))
	for _, p := range r.Points {
		p.renderRow(w, true)
	}
}

// RenderDeterministic writes the table without the wall-clock column —
// the rendering determinism tests compare byte-for-byte across worker
// counts, and allocator runtime is the one field that legitimately
// varies run to run.
func (r *ScaleReport) RenderDeterministic(w io.Writer) {
	for _, p := range r.Points {
		p.renderRow(w, false)
	}
}

// WriteJSON writes the machine-readable study artifact.
func (r *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
