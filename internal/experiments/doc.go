// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII plus Figs. 5 and 6). Each experiment returns
// structured rows and can render itself as text; cmd/aelite-exp and the
// top-level benchmarks are thin wrappers around this package.
//
// The two simulation-backed experiments take a jobs parameter and fan
// their independent points across workers with internal/parallel; results
// are keyed by point index, so any worker count renders byte-identically:
//
//	cmp, gs, be, err := experiments.Compare(experiments.Sec7Seed, 500, 60000, jobs)
//	if err != nil { ... }
//	experiments.WriteComparison(os.Stdout, cmp)
//
//	points, crossover, err := experiments.FrequencyScan(
//		experiments.Sec7Seed, nil, 60000, jobs) // nil = default frequency grid
//
// The synthesis-model figures (WriteFig5, WriteFig6a, WriteFig6b,
// WriteLinkTable, WriteThroughput) are closed-form and run serially.
package experiments
