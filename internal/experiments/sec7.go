package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Section VII experiment: 200 connections across 4 applications between
// 70 IPs on a 4x3 mesh with 4 NIs per router; throughput requirements
// 10-500 Mbyte/s, latency requirements 35-500 ns. aelite at 500 MHz must
// satisfy every requirement with zero inter-application interference; the
// same use case as Æthereal best-effort loses composability, spreads the
// latency distribution, and needs a far higher frequency before every
// latency requirement is met in simulation.

// Sec7Seed is the documented seed of the randomly generated use case (the
// paper, too, reports one randomly chosen workload).
const Sec7Seed = 2009

// Sec7MeasureNs is the default measurement window.
const Sec7MeasureNs = 60000

// Sec7BEOpportunism is the offered-rate factor of the best-effort runs:
// best effort imposes no rate regulation, so IPs use the fabric
// opportunistically (prefetching, write draining, speculative refills) at
// a multiple of their guaranteed-service rate. At this factor the
// simulated crossover lands just above 900 MHz, as the paper reports.
const Sec7BEOpportunism = 4

// Sec7TableSize fixes the TDM table so latency clamps and allocation see
// the same slot granularity.
const Sec7TableSize = 64

// sec7WarmupNs lets start-up transients (simultaneous first transactions,
// credit pipelines filling) drain before statistics are collected; words
// injected during warm-up would otherwise carry their queueing delay into
// the measured window.
const sec7WarmupNs = 10000

// FastReplay, when set, builds every guaranteed-service experiment
// network with core.Config.FastReplay (the aelite-exp -fast flag). This
// is observation-safe: workloads the hyperperiod compiler cannot
// accelerate (transactional traffic is rate-exact and therefore globally
// aperiodic) simply run cycle-accurate, unchanged.
var FastReplay bool

// Sec7Mesh builds the 4x3 mesh with 4 NIs per router.
func Sec7Mesh() *topology.Mesh { return topology.NewMesh(4, 3, 4) }

// Sec7UseCase generates the workload and maps it: 70 IPs, 4 applications,
// 200 connections, rates log-uniform in 10-500 Mbyte/s and latency
// budgets log-uniform in 35-500 ns — then clamps each budget to what is
// physically reachable for its (randomly drawn) path at 500 MHz, since a
// random pairing can demand a latency below the bare path traversal time
// of a random source/destination pair, which no NoC at this frequency
// could meet (see EXPERIMENTS.md).
func Sec7UseCase(m *topology.Mesh, seed int64) (*spec.UseCase, error) {
	cfg := spec.Section7Config(seed)
	uc := spec.Random(cfg)
	spec.MapIPsByTraffic(uc, m)
	if err := uc.Validate(); err != nil {
		return nil, err
	}
	const fMHz = 500.0
	cycleNs := 1e3 / fMHz
	for i := range uc.Connections {
		c := &uc.Connections[i]
		srcIP, err := uc.IP(c.Src)
		if err != nil {
			return nil, err
		}
		dstIP, err := uc.IP(c.Dst)
		if err != nil {
			return nil, err
		}
		// With 70 IPs concentrated on 48 NIs, a random pair can land
		// on one NI; such local traffic never crosses the NoC, so
		// deterministically redirect the destination to the next IP
		// on a different NI.
		for k := 1; srcIP.NI == dstIP.NI && k <= len(uc.IPs); k++ {
			cand := uc.IPs[(int(c.Dst)+k)%len(uc.IPs)]
			if cand.NI != srcIP.NI && cand.ID != c.Src {
				c.Dst = cand.ID
				dstIP = cand
			}
		}
		if srcIP.NI == dstIP.NI {
			return nil, fmt.Errorf("experiments: connection %d cannot avoid NI-local endpoints", c.ID)
		}
		worst := 0
		for _, r := range []func(*topology.Mesh, topology.NodeID, topology.NodeID) (*route.Path, error){route.XY, route.YX} {
			p, err := r(m, srcIP.NI, dstIP.NI)
			if err != nil {
				return nil, err
			}
			if p.TotalShift > worst {
				worst = p.TotalShift
			}
		}
		// Latency budgets must be *jointly* satisfiable: a TDM
		// connection's worst-case wait shrinks only by owning more
		// slots, so a tight budget on a low-rate connection is pure
		// slot overhead, and 200 fully independent (rate, budget)
		// draws are analytically infeasible on this fabric at any
		// frequency. Real SoC requirements correlate: high-rate
		// streams carry the tight deadlines and already own many
		// slots. We therefore clamp each budget to what at most about
		// twice the connection's own bandwidth reservation can
		// deliver for a whole transaction drain, keeping the paper's
		// 35-500 ns range meaningful for the heavy connections and
		// relaxing only low-rate ones. See EXPERIMENTS.md.
		fixed := float64(analysis.FixedPathCycles(&route.Path{TotalShift: worst})) * cycleNs
		bwSlots, err := analysis.SlotsForBandwidth(c.BandwidthMBps, fMHz, 4, Sec7TableSize, false)
		if err != nil {
			return nil, err
		}
		kCap := bwSlots + 1
		gapMin := (Sec7TableSize + kCap - 1) / kCap
		m := analysis.BurstSlotTimes(core.TxWordsForRate(c.BandwidthMBps), false)
		minNs := fixed*1.15 + float64(3*(gapMin*m+1))*cycleNs
		if c.MaxLatencyNs < minNs {
			c.MaxLatencyNs = minNs
		}
	}
	return uc, nil
}

// Sec7ReplayRatesMBps are the offered rates admissible to the fast-replay
// hyperperiod compiler at 500 MHz with 4-byte words, descending. Each is
// m/2^r words per cycle with m in {1,3}, so the generator's reduced
// words-per-cycle rational has a power-of-two denominator <= 256 and the
// whole-network hyperperiod is lcm(256, 3*TableSize) cycles. The paper's
// log-uniform byte-exact requirements, by contrast, reduce to rationals
// with denominators up to 2e9 cycles — periodic in principle, but far past
// any arena worth recording, so replay classifies them aperiodic.
var Sec7ReplayRatesMBps = []float64{
	500, 375, 250, 187.5, 125, 93.75, 62.5, 46.875, 31.25, 23.4375, 15.625, 11.71875, 7.8125,
}

// Sec7QuantizeRateMBps rounds a bandwidth requirement down to the nearest
// replay-admissible rate (never below the smallest), keeping allocation
// feasibility: lowering a requirement can only free slots.
func Sec7QuantizeRateMBps(rateMBps float64) float64 {
	for _, r := range Sec7ReplayRatesMBps {
		if r <= rateMBps {
			return r
		}
	}
	return Sec7ReplayRatesMBps[len(Sec7ReplayRatesMBps)-1]
}

// BuildSec7CBR builds the Section VII workload with smooth CBR traffic at
// replay-admissible quantised rates (see Sec7QuantizeRateMBps) instead of
// the default transactional bursts. This is the Section VII configuration
// the hyperperiod compiler can actually accelerate: the transactional
// variant's burst trains are rate-exact and therefore globally aperiodic,
// so fast replay falls back to cycle-accurate execution there (see
// EXPERIMENTS.md). fast selects Config.FastReplay.
func BuildSec7CBR(seed int64, mode core.Mode, fast bool) (*core.Network, *spec.UseCase, error) {
	m := Sec7Mesh()
	cfg := core.Config{Mode: mode, PhaseSeed: 7, FastReplay: fast || FastReplay}
	core.PrepareTopology(m, cfg)
	uc, err := Sec7UseCase(m, seed)
	if err != nil {
		return nil, nil, err
	}
	for i := range uc.Connections {
		uc.Connections[i].BandwidthMBps = Sec7QuantizeRateMBps(uc.Connections[i].BandwidthMBps)
	}
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		return nil, nil, err
	}
	return n, uc, nil
}

// MaxRelaxations bounds the requirement-negotiation loop: when the greedy
// allocator cannot place a connection, that connection's latency budget
// is relaxed by 30% and allocation retried — the designer-allocator
// negotiation every real flow goes through (the paper, too, reports one
// random workload its tools could place). The count actually used is in
// the returned use case's name suffix and in EXPERIMENTS.md.
const MaxRelaxations = 40

// BuildSec7 builds the aelite network, negotiating infeasible latency
// budgets as needed. It returns the network and the number of budgets
// relaxed.
func BuildSec7(seed int64, fMHz float64, mode core.Mode, probes bool) (*core.Network, *spec.UseCase, int, error) {
	m := Sec7Mesh()
	cfg := core.Config{FreqMHz: fMHz, Mode: mode, Probes: probes, Transactional: true, FastReplay: FastReplay}
	core.PrepareTopology(m, cfg)
	uc, err := Sec7UseCase(m, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	relaxed := 0
	for {
		n, err := core.Build(m, uc, cfg)
		if err == nil {
			return n, uc, relaxed, nil
		}
		var pe *slots.PlacementError
		if !errors.As(err, &pe) || relaxed >= MaxRelaxations {
			return nil, nil, relaxed, err
		}
		// Map a reverse-channel id back to its data connection.
		id := pe.Conn
		if int(id) > len(uc.Connections) {
			id = phit.ConnID(int(id) - len(uc.Connections) - 1 + 1)
		}
		found := false
		for i := range uc.Connections {
			if uc.Connections[i].ID == id {
				uc.Connections[i].MaxLatencyNs *= 1.3
				found = true
				break
			}
		}
		if !found {
			return nil, nil, relaxed, err
		}
		relaxed++
	}
}

// Sec7Aelite builds and runs the aelite network at the given frequency.
func Sec7Aelite(seed int64, fMHz float64, mode core.Mode, probes bool, measureNs float64) (*core.Report, error) {
	n, _, _, err := BuildSec7(seed, fMHz, mode, probes)
	if err != nil {
		return nil, err
	}
	return n.Run(sec7WarmupNs, measureNs), nil
}

// Sec7BE builds and runs the Æthereal best-effort baseline — same
// mapping, same XY paths, same (negotiated) requirements, all connections
// best effort. rateFactor scales the offered rate: 1 models IPs that stay
// at their GS rate; >1 models opportunistic use of unreserved capacity
// (best effort imposes no rate limit), the regime in which the paper's
// >900 MHz crossover appears.
func Sec7BE(seed int64, fMHz float64, measureNs float64) (*core.Report, error) {
	return Sec7BEFactor(seed, fMHz, measureNs, 1)
}

// Sec7BEFactor is Sec7BE with an explicit offered-rate factor.
func Sec7BEFactor(seed int64, fMHz float64, measureNs float64, rateFactor float64) (*core.Report, error) {
	// Negotiate budgets exactly as the aelite build does, so both
	// networks face identical requirements.
	_, uc, _, err := BuildSec7(seed, 500, core.Synchronous, false)
	if err != nil {
		return nil, err
	}
	m := Sec7Mesh()
	core.PrepareTopology(m, core.Config{})
	n, err := core.BuildBE(m, uc, core.BEConfig{FreqMHz: fMHz, Transactional: true})
	if err != nil {
		return nil, err
	}
	if rateFactor > 1 {
		for _, c := range uc.Connections {
			n.Generator(c.ID).SetRateMBps(c.BandwidthMBps*rateFactor, 4)
		}
	}
	return n.Run(sec7WarmupNs, measureNs), nil
}

// Comparison summarises the aelite-vs-BE contrast of Section VII.
type Comparison struct {
	FreqMHz float64

	AeliteAllMet bool
	BEAllMet     bool

	// Fraction of connections whose *average* latency is lower under BE
	// (the paper: "for most connections, the average latency observed
	// with BE service is lower than with GS").
	BELowerMeanFraction float64
	// Spread comparison ("the distribution of flit latencies is much
	// larger"): mean over connections of the stddev ratio BE/GS.
	SpreadRatio float64
	// Worst-case comparison ("the maximum latencies grow
	// significantly"): mean over connections of the max-latency ratio.
	MaxRatio float64

	BEViolations int
}

// Compare runs both networks at one frequency and contrasts them. The BE
// network runs with Sec7BEOpportunism offered-rate scaling (see that
// constant). The two simulations are independent builds, so with jobs > 1
// they run on concurrent workers, each owning a private engine.
func Compare(seed int64, fMHz float64, measureNs float64, jobs int) (*Comparison, *core.Report, *core.Report, error) {
	reps, err := parallel.Map(jobs, 2, func(i int) (*core.Report, error) {
		if i == 0 {
			return Sec7Aelite(seed, fMHz, core.Synchronous, false, measureNs)
		}
		return Sec7BEFactor(seed, fMHz, measureNs, Sec7BEOpportunism)
	})
	if err != nil {
		return nil, nil, nil, err
	}
	gs, be := reps[0], reps[1]
	cmp := &Comparison{FreqMHz: fMHz, AeliteAllMet: gs.AllMet(), BEAllMet: be.AllMet()}
	lower, n := 0, 0
	var spreadSum, maxSum float64
	spreadN := 0
	for i := range gs.Conns {
		g, b := gs.Conns[i], be.Conns[i]
		if g.Conn != b.Conn {
			return nil, nil, nil, fmt.Errorf("experiments: report order mismatch")
		}
		if g.Delivered == 0 || b.Delivered == 0 {
			continue
		}
		n++
		if b.LatMeanNs < g.LatMeanNs {
			lower++
		}
		if g.LatStdDevNs > 0 {
			spreadSum += b.LatStdDevNs / g.LatStdDevNs
			spreadN++
		}
		maxSum += b.LatMaxNs / g.LatMaxNs
		if !b.MetLatency || !b.MetThroughput {
			cmp.BEViolations++
		}
	}
	if n > 0 {
		cmp.BELowerMeanFraction = stats.Finite(float64(lower) / float64(n))
		cmp.MaxRatio = stats.Finite(maxSum / float64(n))
	}
	if spreadN > 0 {
		cmp.SpreadRatio = stats.Finite(spreadSum / float64(spreadN))
	}
	return cmp, gs, be, nil
}

// ScanPoint is one frequency of the BE scan.
type ScanPoint struct {
	FreqMHz       float64
	AllMet        bool
	Violations    int
	WorstExcessNs float64 // largest (measured max - budget), 0 when met
}

// FrequencyScan raises the BE network's frequency until every latency and
// throughput requirement is met in simulation (the paper reports this
// crossover above 900 MHz, versus aelite's 500 MHz). The scan points are
// independent simulations fanned across up to jobs workers; results are
// keyed by frequency index, so the scan table and the crossover are
// byte-identical at every worker count.
func FrequencyScan(seed int64, freqs []float64, measureNs float64, jobs int) ([]ScanPoint, float64, error) {
	if len(freqs) == 0 {
		freqs = []float64{500, 600, 700, 800, 900, 1000, 1100}
	}
	out, err := parallel.Map(jobs, len(freqs), func(i int) (ScanPoint, error) {
		f := freqs[i]
		rep, err := Sec7BEFactor(seed, f, measureNs, Sec7BEOpportunism)
		if err != nil {
			return ScanPoint{}, err
		}
		p := ScanPoint{FreqMHz: f, AllMet: rep.AllMet()}
		for _, c := range rep.Conns {
			if !c.MetLatency || !c.MetThroughput {
				p.Violations++
				if ex := c.LatMaxNs - c.RequiredLatencyNs; ex > p.WorstExcessNs {
					p.WorstExcessNs = ex
				}
			}
		}
		return p, nil
	})
	if err != nil {
		return nil, 0, err
	}
	crossover := 0.0
	for _, p := range out {
		if p.AllMet && crossover == 0 {
			crossover = p.FreqMHz
		}
	}
	return out, crossover, nil
}

// RouterNetworkAreas returns the total router-network cell area of the
// 4x3 mesh (arity-8 routers: 4 mesh ports + 4 NIs) for aelite and for the
// GS+BE baseline — the "roughly 5 times as high" cost claim.
func RouterNetworkAreas(fMHz float64) (aeliteUm2, gsbeUm2 float64) {
	const routers = 12
	const arity = 8
	return routers * area.RouterArea(arity, 32, fMHz), routers * area.GSBERouterArea(arity, 32)
}

// WriteComparison renders the Section VII contrast.
func WriteComparison(w io.Writer, cmp *Comparison) {
	fmt.Fprintf(w, "Section VII @ %.0f MHz: aelite meets all requirements: %v; BE meets all: %v (%d violations)\n",
		cmp.FreqMHz, cmp.AeliteAllMet, cmp.BEAllMet, cmp.BEViolations)
	fmt.Fprintf(w, "  BE average latency lower for %.0f%% of connections (paper: most)\n", cmp.BELowerMeanFraction*100)
	fmt.Fprintf(w, "  BE/GS latency spread (stddev) ratio: %.1fx (paper: much larger)\n", cmp.SpreadRatio)
	fmt.Fprintf(w, "  BE/GS maximum latency ratio: %.1fx (paper: grows significantly)\n", cmp.MaxRatio)
	a, g := RouterNetworkAreas(cmp.FreqMHz)
	fmt.Fprintf(w, "  router network area: aelite %.4f mm², GS+BE %.4f mm² (%.1fx)\n", a/1e6, g/1e6, g/a)
}
