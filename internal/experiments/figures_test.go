package experiments

import (
	"strings"
	"testing"
)

func TestFig5Shape(t *testing.T) {
	rows := Fig5()
	if len(rows) < 10 {
		t.Fatalf("Fig5 has %d rows", len(rows))
	}
	if rows[0].TargetMHz != 500 {
		t.Errorf("sweep starts at %.0f MHz", rows[0].TargetMHz)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AreaUm2 < rows[i-1].AreaUm2 {
			t.Errorf("area decreased at %.0f MHz", rows[i].TargetMHz)
		}
	}
	// Flat start, saturated end.
	first, last := rows[0].AreaUm2, rows[len(rows)-1].AreaUm2
	if last/first < 1.2 || last/first > 1.35 {
		t.Errorf("total growth %.2fx, expected ~1.26x saturation", last/first)
	}
}

func TestFig6Shapes(t *testing.T) {
	a := Fig6a()
	if len(a) != 6 || a[0].Arity != 2 || a[5].Arity != 7 {
		t.Fatalf("Fig6a sweep malformed: %+v", a)
	}
	for i := 1; i < len(a); i++ {
		if a[i].AreaUm2 <= a[i-1].AreaUm2 {
			t.Error("Fig6a area not increasing with arity")
		}
		if a[i].FmaxMHz >= a[i-1].FmaxMHz {
			t.Error("Fig6a fmax not decreasing with arity")
		}
	}
	b := Fig6b()
	if len(b) != 8 || b[0].WidthBits != 32 || b[7].WidthBits != 256 {
		t.Fatalf("Fig6b sweep malformed: %+v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i].AreaUm2 <= b[i-1].AreaUm2 {
			t.Error("Fig6b area not increasing with width")
		}
		if b[i].FmaxMHz >= b[i-1].FmaxMHz {
			t.Error("Fig6b fmax not decreasing with width")
		}
	}
}

func TestLinkTableAndWriters(t *testing.T) {
	rows := LinkTable()
	if len(rows) < 8 {
		t.Fatalf("LinkTable has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.AreaUm2 <= 0 {
			t.Errorf("%s has non-positive area", r.Item)
		}
	}
	var b strings.Builder
	WriteFig5(&b)
	WriteFig6a(&b)
	WriteFig6b(&b)
	WriteLinkTable(&b)
	WriteThroughput(&b)
	out := b.String()
	for _, want := range []string{"Fig. 5", "Fig. 6(a)", "Fig. 6(b)", "bi-sync FIFO", "64 Gbyte/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestThroughputRows(t *testing.T) {
	rows := Throughput()
	found := false
	for _, r := range rows {
		if r.Arity == 6 && r.WidthBits == 64 {
			found = true
			if r.OneWayGBps < 35 || r.FullDuplexGBps < 70 {
				t.Errorf("arity-6 64-bit throughput too low: %+v", r)
			}
			if r.AreaUm2 > 36000 {
				t.Errorf("arity-6 64-bit area %.0f exceeds ~0.03 mm² ballpark", r.AreaUm2)
			}
		}
	}
	if !found {
		t.Error("no arity-6 64-bit row")
	}
}
