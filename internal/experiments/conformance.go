package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ConformanceConfig parameterises the guarantee-conformance sweep: one
// fixed workload audited under every combination of slot-table size and
// clocking mode, each point paired with a perturbed re-execution that
// oversubscribes every interfering connection and diffs the watched
// connection's delivery timeline for byte identity — the paper's
// composability and worst-case-bound claims checked against every
// simulated flit.
type ConformanceConfig struct {
	Seed          int64       // workload seed
	TableSizes    []int       // TDM slot-table sizes to sweep
	Modes         []core.Mode // clocking modes to sweep
	MeasureNs     float64     // simulated time per run
	PerturbFactor float64     // interferer offered-load multiplier in the paired run
}

// DefaultConformanceConfig is the documented sweep: tables 8, 16 and 32
// under all three clocking modes, interferers pushed to 8x their
// reservation in the paired run.
func DefaultConformanceConfig() ConformanceConfig {
	return ConformanceConfig{
		Seed:          Sec7Seed,
		TableSizes:    []int{8, 16, 32},
		Modes:         []core.Mode{core.Synchronous, core.Mesochronous, core.Asynchronous},
		MeasureNs:     20000,
		PerturbFactor: 8,
	}
}

// conformanceRun is one audited execution's verdict.
type conformanceRun struct {
	violations int64
	byKind     map[fault.Kind]int64
	summary    string
	watchedRx  int64
}

// conformancePoint audits one (table size, mode) combination: a baseline
// run with every check armed, a perturbed run with the interferers
// oversubscribed (tolerated, since the perturbation is deliberate), and a
// byte-identity diff of the watched connection's delivery instants. It
// returns a one-line verdict, or an error naming the first broken
// guarantee.
func conformancePoint(cfg ConformanceConfig, tableSize int, mode core.Mode) (string, error) {
	var runs [2]conformanceRun
	res, err := audit.Isolation(2, func(perturbed bool) (audit.Timelines, error) {
		m := topology.NewMesh(3, 2, 2)
		uc := spec.Random(spec.RandomConfig{
			Name: "conformance", Seed: cfg.Seed, IPs: 8, Apps: 2, Conns: 6,
			MinRateMBps: 10, MaxRateMBps: 60,
			MinLatencyNs: 500, MaxLatencyNs: 1500,
		})
		spec.MapIPsByTraffic(uc, m)
		col := fault.NewCollector()
		ncfg := core.Config{
			Mode: mode, TableSize: tableSize,
			Probes: mode != core.Asynchronous, FaultReporter: col,
		}
		core.PrepareTopology(m, ncfg)
		n, err := core.Build(m, uc, ncfg)
		if err != nil {
			return nil, err
		}
		bus := trace.NewBus()
		n.AttachTracer(bus)
		audCol := fault.NewCollector()
		a := audit.Attach(n, bus, audCol, audit.Options{TolerateOversubscription: perturbed})

		watched := n.Connections()[0]
		info, err := n.Info(watched)
		if err != nil {
			return nil, err
		}
		n.NIOf(info.DstNI).RecordArrivals(watched, true)
		if perturbed {
			for _, id := range n.Connections()[1:] {
				other, err := n.Info(id)
				if err != nil {
					return nil, err
				}
				n.Generator(id).SetRateMBps(other.RequiredMBps*cfg.PerturbFactor, 4)
			}
		}
		n.Run(0, cfg.MeasureNs)

		idx := 0
		if perturbed {
			idx = 1
		}
		var b strings.Builder
		a.WriteSummary(&b)
		runs[idx] = conformanceRun{
			violations: a.Violations(),
			byKind:     a.ByKind(),
			summary:    b.String(),
			watchedRx:  int64(len(n.NIOf(info.DstNI).Arrivals(watched))),
		}
		return audit.Timelines{watched: n.NIOf(info.DstNI).Arrivals(watched)}, nil
	})
	if err != nil {
		return "", fmt.Errorf("conformance table %d %s: %w", tableSize, mode, err)
	}
	for i, label := range []string{"baseline", "perturbed"} {
		if runs[i].violations != 0 {
			return "", fmt.Errorf("conformance table %d %s: %s run broke %d guarantees (%v)\n%s",
				tableSize, mode, label, runs[i].violations, runs[i].byKind, runs[i].summary)
		}
	}
	if runs[0].watchedRx == 0 {
		return "", fmt.Errorf("conformance table %d %s: watched connection delivered nothing", tableSize, mode)
	}
	if !res.Identical {
		return "", fmt.Errorf("conformance table %d %s: composability breach: %s",
			tableSize, mode, res.FirstDiff)
	}
	return fmt.Sprintf("conformance table %2d %-12s: 0 violations, timelines identical under %gx interference (%d delivery instants)\n",
		tableSize, mode, cfg.PerturbFactor, res.Words), nil
}

// ConformanceSweep fans every (table size, mode) point across up to jobs
// workers and returns the rendered verdicts in sweep order — byte-identical
// at every worker count. Any broken guarantee aborts the sweep with an
// error naming the point and the first diagnostic.
func ConformanceSweep(cfg ConformanceConfig, jobs int) ([]string, error) {
	return ConformanceSweepCtx(context.Background(), cfg, jobs)
}

// ConformanceSweepCtx is ConformanceSweep with cancellation: once ctx is
// done, unstarted points are skipped and the sweep returns ctx's error
// without leaking worker goroutines.
func ConformanceSweepCtx(ctx context.Context, cfg ConformanceConfig, jobs int) ([]string, error) {
	type point struct {
		table int
		mode  core.Mode
	}
	var pts []point
	for _, s := range cfg.TableSizes {
		for _, m := range cfg.Modes {
			pts = append(pts, point{s, m})
		}
	}
	return parallel.MapCtx(ctx, jobs, len(pts), func(ctx context.Context, i int) (string, error) {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		return conformancePoint(cfg, pts[i].table, pts[i].mode)
	})
}

// WriteConformance runs the sweep and writes the concatenated verdicts —
// the conformance artefact recorded in EXPERIMENTS.md and gated in CI.
func WriteConformance(w io.Writer, cfg ConformanceConfig, jobs int) error {
	lines, err := ConformanceSweep(cfg, jobs)
	if err != nil {
		return err
	}
	for _, s := range lines {
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	return nil
}
