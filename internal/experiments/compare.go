package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CompareConfig parameterises the N-backend comparison study: the cross
// product of scenario families and registered backends, every cell fed
// the identical generated workload.
type CompareConfig struct {
	Seed     int64             `json:"seed"`
	Families []scenario.Family `json:"families"`
	Cols     int               `json:"cols"`
	Rows     int               `json:"rows"`
	Conns    int               `json:"conns"`
	// Backends are registry names; empty means every registered backend.
	Backends []string `json:"backends,omitempty"`
	// TableSize overrides the scenario default (aelite only; the other
	// backends have no slot table).
	TableSize int `json:"table_size,omitempty"`

	WarmupNs  float64 `json:"warmup_ns"`
	MeasureNs float64 `json:"measure_ns"`
}

// DefaultCompareConfig is the published study: three traffic shapes on a
// 4x4 mesh through every registered backend.
func DefaultCompareConfig() CompareConfig {
	return CompareConfig{
		Seed:     Sec7Seed,
		Families: []scenario.Family{scenario.Uniform, scenario.Hotspot, scenario.Transpose},
		Cols:     4, Rows: 4, Conns: 24,
		WarmupNs: 4000, MeasureNs: 20000,
	}
}

// SmokeCompareConfig is the CI gate: two families on a 3x3 mesh, still
// through every registered backend — seconds, not minutes.
func SmokeCompareConfig() CompareConfig {
	cfg := DefaultCompareConfig()
	cfg.Families = []scenario.Family{scenario.Uniform, scenario.Hotspot}
	cfg.Cols, cfg.Rows = 3, 3
	cfg.Conns = 8
	cfg.MeasureNs = 10000
	return cfg
}

// normalize fills defaulted fields; it runs in the study entry points so
// explicit-default configs render identical artifacts.
func (c *CompareConfig) normalize() {
	if len(c.Backends) == 0 {
		c.Backends = backend.Names()
	}
	if len(c.Families) == 0 {
		c.Families = []scenario.Family{scenario.Uniform, scenario.Hotspot}
	}
}

// A ComparePoint is one (family, backend) outcome. Every field is
// deterministic in (config, seed) — there are no wall-clock columns —
// and every float is sanitised finite, so the JSON artifact is always
// encodable and byte-stable.
type ComparePoint struct {
	Family  string `json:"family"`
	Backend string `json:"backend"`
	Conns   int    `json:"conns"`
	// HasBounds mirrors the backend's claim: bounds-carrying backends
	// run under the conformance auditor and are gated by Verify.
	HasBounds bool `json:"has_bounds"`

	Delivered  int64   `json:"delivered"`
	TotalMBps  float64 `json:"total_mbps"`
	MeanLatNs  float64 `json:"mean_lat_ns"`
	WorstLatNs float64 `json:"worst_lat_ns"`
	// MeanBoundNs averages the analytical bounds (0 for best effort).
	MeanBoundNs float64 `json:"mean_bound_ns,omitempty"`

	AllMetThroughput bool  `json:"all_met_throughput"`
	AllWithinBound   bool  `json:"all_within_bound"`
	AuditViolations  int64 `json:"audit_violations"`

	// AreaUm2 is the fabric cost from the paper's area model.
	AreaUm2 float64 `json:"area_um2"`
}

// A CompareReport is a finished comparison study.
type CompareReport struct {
	Cfg    CompareConfig  `json:"config"`
	Points []ComparePoint `json:"points"`
}

// comparePoint runs one cell: generate the family's scenario at the
// study seed (identical bytes for every backend in the row), build the
// backend through the seam, attach the shared trace bus and — where the
// backend carries bounds — the conformance auditor, then measure.
func comparePoint(ctx context.Context, cfg CompareConfig, fam scenario.Family, name string) (ComparePoint, error) {
	if err := ctx.Err(); err != nil {
		return ComparePoint{}, err
	}
	b, err := backend.ByName(name)
	if err != nil {
		return ComparePoint{}, err
	}
	scfg := scenario.Default(fam, cfg.Cols, cfg.Rows, cfg.Conns, cfg.Seed)
	if cfg.TableSize != 0 {
		scfg.TableSize = cfg.TableSize
	}
	s, err := scenario.Generate(scfg)
	if err != nil {
		return ComparePoint{}, fmt.Errorf("compare %s/%s: %w", fam, name, err)
	}
	m := s.Mesh()
	inst, err := b.Build(m, s.UseCase, backend.Params{
		FreqMHz:    scfg.FreqMHz,
		WordBytes:  scfg.WordBytes,
		TableSize:  scfg.TableSize,
		Mode:       core.Synchronous,
		FastReplay: true,
	})
	if err != nil {
		return ComparePoint{}, fmt.Errorf("compare %s/%s: build: %w", fam, name, err)
	}
	bus := trace.NewBus()
	inst.AttachTracer(bus)
	var aud *audit.Auditor
	if b.HasBounds() {
		aud = inst.Audit(bus, fault.NewCollector(), audit.Options{})
	}
	rep := inst.Run(cfg.WarmupNs, cfg.MeasureNs)

	pt := ComparePoint{
		Family: string(fam), Backend: name, Conns: len(rep.Conns),
		HasBounds: b.HasBounds(), AllMetThroughput: true, AllWithinBound: true,
		AreaUm2: stats.Finite(inst.AreaUm2()),
	}
	if aud != nil {
		pt.AuditViolations = aud.Violations()
	}
	var latSum, boundSum float64
	var latN, boundN int
	for _, c := range rep.Conns {
		pt.Delivered += c.Delivered
		pt.TotalMBps += stats.Finite(c.MeasuredMBps)
		if c.LatMaxNs > pt.WorstLatNs {
			pt.WorstLatNs = stats.Finite(c.LatMaxNs)
		}
		if c.Delivered > 0 {
			latSum += stats.Finite(c.LatMeanNs)
			latN++
		}
		if c.BoundNs > 0 {
			boundSum += c.BoundNs
			boundN++
		}
		if !c.MetThroughput {
			pt.AllMetThroughput = false
		}
		if !c.WithinBound {
			pt.AllWithinBound = false
		}
	}
	if latN > 0 {
		pt.MeanLatNs = stats.Finite(latSum / float64(latN))
	}
	if boundN > 0 {
		pt.MeanBoundNs = stats.Finite(boundSum / float64(boundN))
	}
	return pt, nil
}

// CompareStudy runs the full cross product, fanning cells across up to
// jobs workers. Point order and every field are deterministic at any
// worker count.
func CompareStudy(cfg CompareConfig, jobs int) (*CompareReport, error) {
	return CompareStudyCtx(context.Background(), cfg, jobs)
}

// CompareStudyCtx is CompareStudy with cancellation: once ctx is done,
// unstarted cells are skipped and the study returns ctx's error.
func CompareStudyCtx(ctx context.Context, cfg CompareConfig, jobs int) (*CompareReport, error) {
	cfg.normalize()
	type cell struct {
		fam     scenario.Family
		backend string
	}
	var cells []cell
	for _, fam := range cfg.Families {
		for _, b := range cfg.Backends {
			cells = append(cells, cell{fam, b})
		}
	}
	points, err := parallel.MapCtx(ctx, parallel.Jobs(jobs), len(cells), func(ctx context.Context, i int) (ComparePoint, error) {
		return comparePoint(ctx, cfg, cells[i].fam, cells[i].backend)
	})
	if err != nil {
		return nil, err
	}
	return &CompareReport{Cfg: cfg, Points: points}, nil
}

// Verify checks the study's acceptance contract: every bounds-carrying
// backend met its guaranteed throughputs, stayed within its analytical
// latency bounds, and ran under the auditor without a single violation.
// Best-effort backends are exempt — quantifying what they miss is the
// study's purpose, not a failure.
func (r *CompareReport) Verify() error {
	for _, p := range r.Points {
		if !p.HasBounds {
			continue
		}
		if p.AuditViolations != 0 {
			return fmt.Errorf("compare %s/%s: auditor recorded %d violations", p.Family, p.Backend, p.AuditViolations)
		}
		if !p.AllWithinBound {
			return fmt.Errorf("compare %s/%s: a measured latency exceeded its analytical bound", p.Family, p.Backend)
		}
		if !p.AllMetThroughput {
			return fmt.Errorf("compare %s/%s: a guaranteed throughput was missed", p.Family, p.Backend)
		}
	}
	return nil
}

// Render writes the human-readable comparison table. Everything in it is
// deterministic, so the rendering itself is the byte-identity artifact.
func (r *CompareReport) Render(w io.Writer) {
	fmt.Fprintf(w, "backend comparison: seed %d, %dx%d mesh, %d conns, %d families x %d backends\n\n",
		r.Cfg.Seed, r.Cfg.Cols, r.Cfg.Rows, r.Cfg.Conns, len(r.Cfg.Families), len(r.Cfg.Backends))
	for _, p := range r.Points {
		bound := "no bounds"
		if p.HasBounds {
			bound = fmt.Sprintf("bound %7.1f ns, within %-5v %2d viol", p.MeanBoundNs, p.AllWithinBound, p.AuditViolations)
		}
		fmt.Fprintf(w, "%-11s %-10s %3d conns %9.1f MB/s  lat mean %7.1f worst %8.1f ns  met %-5v  %s  area %9.0f um2\n",
			p.Family, p.Backend, p.Conns, p.TotalMBps, p.MeanLatNs, p.WorstLatNs,
			p.AllMetThroughput, bound, p.AreaUm2)
	}
}

// WriteJSON writes the machine-readable study artifact.
func (r *CompareReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
