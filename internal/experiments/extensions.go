package experiments

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/power"
	"repro/internal/spec"
	"repro/internal/topology"
)

// The paper's future-work items, built out as extensions (DESIGN.md):
// router sleep modes driven by the TDM schedule, and the dataflow (HSDF)
// model of the wrapped network for heterochronous performance analysis.

// PowerStudy runs the Section VII allocation through the power model and
// reports the network's clock power with and without schedule-driven
// router sleep.
func PowerStudy(seed int64, fMHz float64) (*power.NetworkReport, error) {
	n, _, _, err := BuildSec7(seed, fMHz, core.Synchronous, false)
	if err != nil {
		return nil, err
	}
	return power.Analyze(n.Mesh, n.Alloc, n.Cfg.WordBytes*8, fMHz), nil
}

// PowerStudyApp allocates only one of the four applications — the
// single-application operating points (standby, audio-only...) where
// sleep modes actually pay — and analyses its power.
func PowerStudyApp(seed int64, fMHz float64, app spec.AppID) (*power.NetworkReport, error) {
	// Use the same slot-table size as the full use case: the table is a
	// hardware parameter, not a per-operating-point choice, and a
	// smaller table would inflate every connection's slot share.
	full, _, _, err := BuildSec7(seed, fMHz, core.Synchronous, false)
	if err != nil {
		return nil, err
	}
	m := Sec7Mesh()
	cfg := core.Config{FreqMHz: fMHz, Transactional: true, TableSize: full.Cfg.TableSize}
	core.PrepareTopology(m, cfg)
	uc, err := Sec7UseCase(m, seed)
	if err != nil {
		return nil, err
	}
	only := *uc
	only.Connections = uc.ConnectionsOfApp(app)
	n, err := core.Build(m, &only, cfg)
	if err != nil {
		return nil, err
	}
	return power.Analyze(n.Mesh, n.Alloc, n.Cfg.WordBytes*8, fMHz), nil
}

// WritePower renders the power study.
func WritePower(w io.Writer, rep *power.NetworkReport) {
	fmt.Fprintln(w, "Extension (paper Section VI-A future work) — schedule-driven router sleep")
	fmt.Fprintf(w, "%-8s %8s %10s %10s %10s\n", "router", "awake", "idle µW", "sleep µW", "dyn µW")
	for _, r := range rep.Routers {
		fmt.Fprintf(w, "%-8s %7.0f%% %10.1f %10.1f %10.1f\n",
			r.Name, r.AwakeFraction*100, r.IdleUW, r.SleepUW, r.DynamicUW)
	}
	fmt.Fprintln(w, rep.String())
	fmt.Fprintln(w, "TDM makes sleep trivial: the schedule itself says when a router can gate its clock.")
}

// HeterochronousStudy builds the HSDF model of the wrapped Section VII
// mesh with one deliberately slow element and compares the analytical
// iteration period (maximum cycle ratio) with the slowest element's flit
// cycle — the closed-form version of the paper's "only runs as fast as
// the slowest router or NI".
type HeterochronousResult struct {
	BasePeriodPs    float64 // flit cycle at the nominal clock
	SlowestPeriodPs float64 // flit cycle of the slowest element
	MCRPs           float64 // analytical iteration period
}

// Heterochronous analyses the wrapped 4x3 mesh with the given ppm
// slowdown applied to one router.
func Heterochronous(slowPPM float64) (*HeterochronousResult, error) {
	m := Sec7Mesh()
	base := clock.NewMHz("base", 500, 0)
	clocks := map[topology.NodeID]*clock.Clock{}
	slow := m.RouterAt(1, 1)
	clocks[slow] = clock.Plesiochronous(base, "slow", slowPPM, 0)
	g, _, err := dataflow.AeliteModel(m.Graph, clocks, base)
	if err != nil {
		return nil, err
	}
	mcr, err := g.MCR()
	if err != nil {
		return nil, err
	}
	return &HeterochronousResult{
		BasePeriodPs:    3 * float64(base.Period),
		SlowestPeriodPs: dataflow.SlowestElementPeriod(m.Graph, clocks, base),
		MCRPs:           mcr,
	}, nil
}

// WriteHeterochronous renders the analysis for a few slowdowns.
func WriteHeterochronous(w io.Writer) error {
	fmt.Fprintln(w, "Extension (paper Section VII footnote / VIII) — HSDF model of the wrapped NoC")
	fmt.Fprintf(w, "%12s %14s %14s %10s\n", "slowdown", "slowest (ps)", "MCR (ps)", "rate loss")
	for _, ppm := range []float64{0, 10000, 50000, 200000} {
		r, err := Heterochronous(ppm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%9.1f%% %14.0f %14.0f %9.1f%%\n",
			ppm/1e4, r.SlowestPeriodPs, r.MCRPs, (r.MCRPs/r.BasePeriodPs-1)*100)
	}
	fmt.Fprintln(w, "the analytical iteration period equals the slowest element's flit cycle:")
	fmt.Fprintln(w, "channel markings and capacities add no throttling — wrappers are rate-transparent")
	return nil
}
