package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSec7AeliteMeetsAt500 is the paper's first Section VII result: the
// 200-connection, 4-application workload is satisfied at 500 MHz, every
// measured latency stays within its analytical bound, and zero
// requirements are missed.
func TestSec7AeliteMeetsAt500(t *testing.T) {
	rep, err := Sec7Aelite(Sec7Seed, 500, core.Synchronous, false, 40000)
	if err != nil {
		t.Fatalf("Sec7Aelite: %v", err)
	}
	if len(rep.Conns) != 200 {
		t.Fatalf("got %d connections, want 200", len(rep.Conns))
	}
	if !rep.AllMet() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("requirements missed at 500 MHz:\n%s", b.String())
	}
	if !rep.AllWithinBound() {
		t.Error("a measured latency exceeded its analytical bound")
	}
	for _, c := range rep.Conns {
		if c.Delivered == 0 {
			t.Errorf("connection %d delivered nothing", c.Conn)
		}
	}
}

// TestSec7BEViolatesAt500 is the contrast: the same requirements under
// best effort (with opportunistic offered rates) are widely violated at
// 500 MHz.
func TestSec7BEViolatesAt500(t *testing.T) {
	rep, err := Sec7BEFactor(Sec7Seed, 500, 40000, Sec7BEOpportunism)
	if err != nil {
		t.Fatalf("Sec7BE: %v", err)
	}
	v := rep.Violations()
	if len(v) < 20 {
		t.Errorf("only %d BE violations at 500 MHz; expected widespread latency misses", len(v))
	}
}

// TestSec7Comparison checks the qualitative contrasts of Section VII:
// BE's latency spread and maxima grow dramatically while aelite holds
// every bound, and the GS+BE router network costs roughly 5x.
func TestSec7Comparison(t *testing.T) {
	cmp, gs, be, err := Compare(Sec7Seed, 500, 40000, 2)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !cmp.AeliteAllMet {
		t.Error("aelite missed a requirement")
	}
	if cmp.BEAllMet {
		t.Error("BE met everything at 500 MHz; the comparison shows no contrast")
	}
	if cmp.SpreadRatio < 1.5 {
		t.Errorf("BE/GS spread ratio %.2f; paper reports a much larger distribution", cmp.SpreadRatio)
	}
	if cmp.MaxRatio < 2 {
		t.Errorf("BE/GS max-latency ratio %.2f; paper reports significant growth", cmp.MaxRatio)
	}
	a, g := RouterNetworkAreas(500)
	if ratio := g / a; ratio < 4 || ratio > 6 {
		t.Errorf("router network area ratio %.1f outside 'roughly 5 times'", ratio)
	}
	_ = gs
	_ = be
}

// TestSec7FrequencyScan reproduces the headline: the BE network needs
// more than 900 MHz before simulation meets every requirement, versus
// aelite's 500 MHz.
func TestSec7FrequencyScan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-frequency scan is slow")
	}
	points, crossover, err := FrequencyScan(Sec7Seed, []float64{500, 900, 1000}, 40000, 0)
	if err != nil {
		t.Fatalf("FrequencyScan: %v", err)
	}
	if points[0].AllMet {
		t.Error("BE met everything at 500 MHz")
	}
	if points[1].AllMet {
		t.Error("BE met everything at 900 MHz; the paper's crossover is above 900")
	}
	if !points[2].AllMet {
		t.Error("BE still violating at 1000 MHz; crossover should be between 900 and 1000")
	}
	if crossover != 1000 {
		t.Errorf("crossover at %.0f MHz, want 1000 in this scan", crossover)
	}
}

// TestSec7Mesochronous re-runs the aelite workload on mesochronous links:
// same guarantees, arbitrary tile phases.
func TestSec7Mesochronous(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep, err := Sec7Aelite(Sec7Seed, 500, core.Mesochronous, false, 30000)
	if err != nil {
		t.Fatalf("Sec7Aelite mesochronous: %v", err)
	}
	if !rep.AllMet() {
		var b strings.Builder
		rep.Write(&b)
		t.Fatalf("requirements missed on mesochronous aelite:\n%s", b.String())
	}
}
