package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// RecoveryConfig parameterises the bit-flip recovery campaign: a sweep of
// independent fault-injection points over one fixed workload with the
// end-to-end reliability shell enabled. Each point arms seeded per-link
// bit-flip and flit-drop processes (fault seed = Seed + point index) and
// measures how the retransmission machinery heals the losses.
type RecoveryConfig struct {
	Seed      int64   // workload seed; point i uses fault seed Seed+i
	Points    int     // independent campaign points
	BitFlip   float64 // per-phit bit-flip probability on every link
	Drop      float64 // per-flit drop probability on every link
	MeasureNs float64 // simulated time per point
}

// DefaultRecoveryConfig is the documented campaign: four points at a 1%
// phit corruption rate (roughly 2% of flits, each flit exposing two
// corruptible phits) plus a light flit-drop process.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{Seed: Sec7Seed, Points: 4, BitFlip: 0.01, Drop: 0.001, MeasureNs: 40000}
}

// recoveryPoint builds the workload, arms point i's fault processes, runs
// the campaign and renders its summary. The render is fully determined by
// the configuration: the simulation is single-threaded and seeded, so the
// same point yields byte-identical text at every sweep worker count.
func recoveryPoint(cfg RecoveryConfig, i int) (string, error) {
	m := topology.NewMesh(3, 2, 2)
	uc := spec.Random(spec.RandomConfig{
		Name: "recovery", Seed: cfg.Seed, IPs: 10, Apps: 2, Conns: 10,
		MinRateMBps: 20, MaxRateMBps: 120,
		MinLatencyNs: 300, MaxLatencyNs: 900,
	})
	spec.MapIPsByTraffic(uc, m)
	col := fault.NewCollector()
	ncfg := core.Config{Mode: core.Mesochronous, Probes: true, Reliable: true, FaultReporter: col}
	core.PrepareTopology(m, ncfg)
	n, err := core.Build(m, uc, ncfg)
	if err != nil {
		return "", err
	}
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	n.AttachTracer(bus)

	plan := &fault.Plan{Seed: cfg.Seed + int64(i), Rates: []fault.RateRule{
		{BitFlip: cfg.BitFlip, Drop: cfg.Drop},
	}}
	campaign := fault.NewCampaign(plan, col)
	if err := campaign.Arm(n.Engine(), n.FaultTargets()); err != nil {
		return "", err
	}
	rep := n.Run(0, cfg.MeasureNs)

	var b strings.Builder
	fmt.Fprintf(&b, "-- recovery point %d: bitflip %.4f drop %.4f fault seed %d --\n",
		i, cfg.BitFlip, cfg.Drop, cfg.Seed+int64(i))
	var flips, drops int64
	for _, o := range campaign.Summarize().RateLinks {
		flips += o.BitsFlipped
		drops += o.FlitsDropped
	}
	fmt.Fprintf(&b, "faults injected: %d bits flipped, %d flits dropped; violations: %d\n",
		flips, drops, col.Total())
	fmt.Fprintf(&b, "%6s %6s %9s %5s %6s %5s %5s %4s %9s %9s %9s  %s\n",
		"conn", "sent", "delivered", "crc", "rexmit", "acks", "rec", "quar",
		"recMinNs", "recMeanNs", "recMaxNs", "payload")
	for _, c := range rep.Conns {
		tx, ok := n.ReliableTxStats(c.Conn)
		if !ok {
			return "", fmt.Errorf("recovery: connection %d has no reliability shell", c.Conn)
		}
		cm := mx.Conn(c.Conn)
		quar := 0
		if tx.Quarantined {
			quar = 1
		}
		// Acceptance check per connection: every sent word is delivered
		// or still awaiting (re)transmission in the go-back-N window.
		payload := "complete"
		if missing := cm.Sent - c.Delivered; quar == 1 {
			payload = "quarantined"
		} else if missing < 0 || missing > int64(tx.OutstandingWords) {
			payload = fmt.Sprintf("LOST %d words", missing)
		}
		recMin, recMean, recMax := 0.0, 0.0, 0.0
		if cm.Recovery.N() > 0 {
			recMin, recMean, recMax = cm.Recovery.Min(), cm.Recovery.Mean(), cm.Recovery.Max()
		}
		fmt.Fprintf(&b, "%6d %6d %9d %5d %6d %5d %5d %4d %9.1f %9.1f %9.1f  %s\n",
			c.Conn, cm.Sent, c.Delivered, cm.CRCDrops, cm.Retransmits, cm.Acks,
			cm.Recovery.N(), quar, recMin, recMean, recMax, payload)
	}
	return b.String(), nil
}

// RecoverySweep fans cfg.Points independent campaign points across up to
// jobs workers and returns the rendered summaries keyed by point index —
// byte-identical at every worker count.
func RecoverySweep(cfg RecoveryConfig, jobs int) ([]string, error) {
	return RecoverySweepCtx(context.Background(), cfg, jobs)
}

// RecoverySweepCtx is RecoverySweep with cancellation: once ctx is done,
// unstarted points are skipped and the sweep returns ctx's error without
// leaking worker goroutines.
func RecoverySweepCtx(ctx context.Context, cfg RecoveryConfig, jobs int) ([]string, error) {
	return parallel.MapCtx(ctx, jobs, cfg.Points, func(ctx context.Context, i int) (string, error) {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		return recoveryPoint(cfg, i)
	})
}

// WriteRecovery runs the sweep and writes the concatenated point
// summaries — the recovery-campaign artefact recorded in EXPERIMENTS.md.
func WriteRecovery(w io.Writer, cfg RecoveryConfig, jobs int) error {
	summaries, err := RecoverySweep(cfg, jobs)
	if err != nil {
		return err
	}
	for _, s := range summaries {
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	return nil
}
