package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestConformancePoint runs one sweep point end to end: zero violations,
// byte-identical timelines under 8x interference.
func TestConformancePoint(t *testing.T) {
	cfg := DefaultConformanceConfig()
	line, err := conformancePoint(cfg, 16, core.Synchronous)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "0 violations") || !strings.Contains(line, "identical") {
		t.Errorf("verdict line = %q", line)
	}
}

// TestConformanceSweepDeterministic: the full sweep passes and renders
// byte-identically at every worker count.
func TestConformanceSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full 9-point sweep")
	}
	cfg := DefaultConformanceConfig()
	serial, err := ConformanceSweep(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cfg.TableSizes)*len(cfg.Modes) {
		t.Fatalf("sweep returned %d points", len(serial))
	}
	par, err := ConformanceSweep(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("point %d diverges across worker counts:\n%q\n%q", i, serial[i], par[i])
		}
	}
}
