package experiments

import (
	"strings"
	"testing"
)

// TestCompareSmokeVerifies: the CI-sized study runs every registered
// backend clean — zero auditor violations, every bound held, every
// guarantee met.
func TestCompareSmokeVerifies(t *testing.T) {
	rep, err := CompareStudy(SmokeCompareConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3; len(rep.Points) != want {
		t.Fatalf("study produced %d points, want %d (2 families x 3 backends)", len(rep.Points), want)
	}
	backends := map[string]bool{}
	for _, p := range rep.Points {
		backends[p.Backend] = true
		if p.Delivered == 0 {
			t.Errorf("%s/%s delivered nothing", p.Family, p.Backend)
		}
	}
	for _, b := range []string{"aelite", "aethereal", "routerless"} {
		if !backends[b] {
			t.Errorf("backend %s missing from the study", b)
		}
	}
}

// TestCompareDeterministic: the rendered table and the JSON artifact are
// byte-identical across worker counts — the same-seed identity contract.
func TestCompareDeterministic(t *testing.T) {
	cfg := SmokeCompareConfig()
	cfg.MeasureNs = 4000
	run := func(jobs int) (string, string) {
		rep, err := CompareStudy(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var table, art strings.Builder
		rep.Render(&table)
		if err := rep.WriteJSON(&art); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return table.String(), art.String()
	}
	t1, a1 := run(1)
	t2, a2 := run(4)
	if t1 != t2 {
		t.Errorf("tables diverge across worker counts:\n%s\n---\n%s", t1, t2)
	}
	if a1 != a2 {
		t.Error("JSON artifacts diverge across worker counts")
	}
	if !strings.Contains(a1, "\"audit_violations\": 0") {
		t.Errorf("artifact carries no clean audit column:\n%s", a1)
	}
}

// TestCompareRejectsUnknownBackend: a bad registry name fails the study
// with the name list in the error, not a panic mid-run.
func TestCompareRejectsUnknownBackend(t *testing.T) {
	cfg := SmokeCompareConfig()
	cfg.Backends = []string{"warp-drive"}
	if _, err := CompareStudy(cfg, 1); err == nil {
		t.Fatal("study accepted an unregistered backend")
	} else if !strings.Contains(err.Error(), "aelite") {
		t.Errorf("error does not list valid backends: %v", err)
	}
}
