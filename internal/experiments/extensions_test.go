package experiments

import (
	"strings"
	"testing"
)

func TestPowerStudy(t *testing.T) {
	rep, err := PowerStudy(Sec7Seed, 500)
	if err != nil {
		t.Fatalf("PowerStudy: %v", err)
	}
	if len(rep.Routers) != 12 {
		t.Fatalf("routers = %d", len(rep.Routers))
	}
	if rep.IdleUW <= 0 || rep.DynamicUW <= 0 {
		t.Errorf("degenerate totals: %+v", rep)
	}
	// The full 200-connection workload keeps the fabric essentially
	// always awake; the single-app point must sleep strictly more.
	single, err := PowerStudyApp(Sec7Seed, 500, 1)
	if err != nil {
		t.Fatalf("PowerStudyApp: %v", err)
	}
	if single.SleepUW >= rep.SleepUW {
		t.Errorf("single-app clock power %v not below full workload %v", single.SleepUW, rep.SleepUW)
	}
	if single.DynamicUW >= rep.DynamicUW {
		t.Errorf("single-app dynamic power %v not below full workload %v", single.DynamicUW, rep.DynamicUW)
	}
	var b strings.Builder
	WritePower(&b, single)
	if !strings.Contains(b.String(), "sleep") {
		t.Error("WritePower output incomplete")
	}
}

func TestHeterochronous(t *testing.T) {
	for _, ppm := range []float64{0, 50000} {
		r, err := Heterochronous(ppm)
		if err != nil {
			t.Fatalf("Heterochronous(%v): %v", ppm, err)
		}
		// The MCR must equal the slowest element's flit cycle: the
		// wrapped network is rate-transparent.
		if d := r.MCRPs - r.SlowestPeriodPs; d > 1 || d < -1 {
			t.Errorf("ppm %v: MCR %v vs slowest %v", ppm, r.MCRPs, r.SlowestPeriodPs)
		}
		if ppm > 0 && r.MCRPs <= r.BasePeriodPs {
			t.Errorf("ppm %v: slowdown did not propagate", ppm)
		}
	}
	var b strings.Builder
	if err := WriteHeterochronous(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MCR") {
		t.Error("WriteHeterochronous output incomplete")
	}
}
