package slots

import (
	"fmt"
	"sort"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/topology"
)

// A Table is one NI's injection slot table: Slots[s] names the connection
// that may inject a flit in slot s, or phit.None.
type Table struct {
	Slots []phit.ConnID
}

// NewTable returns an all-idle table of the given size.
func NewTable(size int) *Table {
	if size <= 0 {
		panic(fmt.Sprintf("slots: table size %d must be positive", size))
	}
	return &Table{Slots: make([]phit.ConnID, size)}
}

// Size returns the table period in slots.
func (t *Table) Size() int { return len(t.Slots) }

// Owner returns the connection owning slot s (taken modulo the size).
func (t *Table) Owner(s int) phit.ConnID {
	return t.Slots[s%len(t.Slots)]
}

// SlotsOf returns the slots owned by the given connection, in order.
func (t *Table) SlotsOf(c phit.ConnID) []int {
	var out []int
	for s, owner := range t.Slots {
		if owner == c {
			out = append(out, s)
		}
	}
	return out
}

// A Request asks the allocator for slot reservations for one connection.
type Request struct {
	Conn phit.ConnID
	// Paths lists candidate routes in preference order; the allocator
	// uses the first one on which it can find enough free slots.
	Paths []*route.Path
	// Count is the number of slots required per table revolution.
	Count int
	// GapTarget, when positive, is the largest tolerable service
	// window, in slots: the worst sum of WindowSlots consecutive
	// reservation gaps must not exceed it (the latency requirement in
	// slot form). If the evenly-spread ideal cannot be realised on the
	// loaded table, the allocator adds slots until the realised window
	// meets the target.
	GapTarget int
	// WindowSlots is the number of consecutive owned slots a whole
	// transaction needs (1 for single-word latency requirements).
	WindowSlots int
}

// An Assignment is the allocator's answer for one connection. Different
// slots may ride different (equal-length, equal-shift) minimal paths —
// the freedom the Æthereal allocation tools exploit to defeat slot
// fragmentation on loaded meshes. Because every candidate path has the
// same TotalShift, per-slot path mixing preserves in-order delivery.
type Assignment struct {
	Conn  phit.ConnID
	Path  *route.Path // primary (first) path, for reporting
	Slots []int       // injection slots at the source NI, ascending
	// PathOf gives the path each slot was reserved on.
	PathOf map[int]*route.Path
}

// An Allocation is a complete, contention-free set of assignments over a
// topology.
type Allocation struct {
	TableSize int
	ByConn    map[phit.ConnID]*Assignment
	// linkOcc[link][slot] is the connection occupying that link in that
	// slot.
	linkOcc map[topology.LinkID][]phit.ConnID
}

// NewAllocation returns an empty allocation with the given table size.
func NewAllocation(tableSize int) *Allocation {
	if tableSize <= 0 {
		panic(fmt.Sprintf("slots: table size %d must be positive", tableSize))
	}
	return &Allocation{
		TableSize: tableSize,
		ByConn:    make(map[phit.ConnID]*Assignment),
		linkOcc:   make(map[topology.LinkID][]phit.ConnID),
	}
}

func (a *Allocation) occ(l topology.LinkID) []phit.ConnID {
	o := a.linkOcc[l]
	if o == nil {
		o = make([]phit.ConnID, a.TableSize)
		a.linkOcc[l] = o
	}
	return o
}

// SlotFree reports whether injection slot s is free on every link of path p.
func (a *Allocation) SlotFree(p *route.Path, s int) bool {
	for k, lid := range p.Links {
		if a.occ(lid)[(s+p.Shift[k])%a.TableSize] != phit.None {
			return false
		}
	}
	return true
}

// Claim reserves injection slot s on every link of p for connection c. It
// panics if the slot is taken: callers must check SlotFree first, and a
// violation means the allocator itself is broken.
func (a *Allocation) Claim(c phit.ConnID, p *route.Path, s int) {
	for k, lid := range p.Links {
		slot := (s + p.Shift[k]) % a.TableSize
		o := a.occ(lid)
		if o[slot] != phit.None {
			panic(fmt.Sprintf("slots: link %d slot %d already owned by connection %d", lid, slot, o[slot]))
		}
		o[slot] = c
	}
}

// LinkOwner returns the connection occupying the link in the given slot.
func (a *Allocation) LinkOwner(l topology.LinkID, slot int) phit.ConnID {
	o := a.linkOcc[l]
	if o == nil {
		return phit.None
	}
	return o[slot%a.TableSize]
}

// LinkUtilisation returns the fraction of slots occupied on the link.
func (a *Allocation) LinkUtilisation(l topology.LinkID) float64 {
	o := a.linkOcc[l]
	if o == nil {
		return 0
	}
	used := 0
	for _, c := range o {
		if c != phit.None {
			used++
		}
	}
	return float64(used) / float64(a.TableSize)
}

// NITable builds the injection slot table for the given source NI from the
// assignments in the allocation.
func (a *Allocation) NITable(ni topology.NodeID) *Table {
	t := NewTable(a.TableSize)
	for _, as := range a.ByConn {
		if as.Path.Src != ni {
			continue
		}
		for _, s := range as.Slots {
			if t.Slots[s] != phit.None {
				panic(fmt.Sprintf("slots: NI %d slot %d doubly assigned (%d and %d)", ni, s, t.Slots[s], as.Conn))
			}
			t.Slots[s] = as.Conn
		}
	}
	return t
}

// Verify recomputes link occupancy from scratch and reports any
// double-booking; it is the structural contention-freedom check.
func (a *Allocation) Verify() error {
	occ := make(map[topology.LinkID][]phit.ConnID)
	conns := make([]phit.ConnID, 0, len(a.ByConn))
	for c := range a.ByConn {
		conns = append(conns, c)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i] < conns[j] })
	for _, c := range conns {
		as := a.ByConn[c]
		if len(as.Slots) == 0 {
			return fmt.Errorf("slots: connection %d has no slots", c)
		}
		for _, s := range as.Slots {
			if s < 0 || s >= a.TableSize {
				return fmt.Errorf("slots: connection %d slot %d out of range", c, s)
			}
			p := as.PathOf[s]
			if p == nil {
				p = as.Path
			}
			for k, lid := range p.Links {
				slot := (s + p.Shift[k]) % a.TableSize
				o := occ[lid]
				if o == nil {
					o = make([]phit.ConnID, a.TableSize)
					occ[lid] = o
				}
				if o[slot] != phit.None {
					return fmt.Errorf("slots: contention on link %d slot %d between connections %d and %d",
						lid, slot, o[slot], c)
				}
				o[slot] = c
			}
		}
	}
	return nil
}

// Release frees every claim of a connection, making its slots available
// to future AllocateInto calls — one half of use-case reconfiguration
// (Hansson et al., DATE 2007 [16]: applications are added and removed
// without disrupting the others, because slot ownership is the only
// shared state).
func (a *Allocation) Release(c phit.ConnID) {
	asg := a.ByConn[c]
	if asg == nil {
		panic(fmt.Sprintf("slots: release of unknown connection %d", c))
	}
	for _, s := range asg.Slots {
		p := asg.PathOf[s]
		if p == nil {
			p = asg.Path
		}
		for k, lid := range p.Links {
			slot := (s + p.Shift[k]) % a.TableSize
			o := a.occ(lid)
			if o[slot] != c {
				panic(fmt.Sprintf("slots: link %d slot %d owned by %d, not releasing connection %d",
					lid, slot, o[slot], c))
			}
			o[slot] = phit.None
		}
	}
	delete(a.ByConn, c)
}

// ReleaseAll frees every claim of the given connections as one atomic
// reconfiguration step: all of them are validated as live owners before
// any slot changes hands, so a bad id leaves the allocation untouched
// instead of half-released. This is how CloseConnection retires a data
// connection and its credit channel together — the table never passes
// through a state where one direction is free and the other still owned.
func (a *Allocation) ReleaseAll(cs ...phit.ConnID) {
	for _, c := range cs {
		if a.ByConn[c] == nil {
			panic(fmt.Sprintf("slots: release of unknown connection %d", c))
		}
	}
	for _, c := range cs {
		a.Release(c)
	}
}

// Clone deep-copies the allocation: the scratchpad on which admission
// control runs trial placements without touching the live table. Paths
// are shared (they are immutable once routed); slot sets and link
// occupancy are copied.
func (a *Allocation) Clone() *Allocation {
	c := &Allocation{
		TableSize: a.TableSize,
		ByConn:    make(map[phit.ConnID]*Assignment, len(a.ByConn)),
		linkOcc:   make(map[topology.LinkID][]phit.ConnID, len(a.linkOcc)),
	}
	for id, asg := range a.ByConn {
		na := &Assignment{
			Conn:   asg.Conn,
			Path:   asg.Path,
			Slots:  append([]int(nil), asg.Slots...),
			PathOf: make(map[int]*route.Path, len(asg.PathOf)),
		}
		for s, p := range asg.PathOf {
			na.PathOf[s] = p
		}
		c.ByConn[id] = na
	}
	for l, occ := range a.linkOcc {
		c.linkOcc[l] = append([]phit.ConnID(nil), occ...)
	}
	return c
}

// Conns returns the ids of every live owner, ascending — the iteration
// surface of the release-overlap property check.
func (a *Allocation) Conns() []phit.ConnID {
	out := make([]phit.ConnID, 0, len(a.ByConn))
	for c := range a.ByConn {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Allocate performs greedy slot allocation: requests are served in
// descending slot-count order (heaviest first, longest path breaking
// ties), and each request takes, among its candidate paths with enough
// jointly free slots, the one whose hottest link is least utilised —
// load-balancing the mesh as the Æthereal allocation tools [16] do.
// Within a path, slots are chosen spread as evenly as possible across the
// table (staggered per connection), which minimises the worst-case
// waiting time in the NI (paper Section VII ties latency to the slot
// spacing).
//
// It returns an error naming the first connection that cannot be placed;
// callers typically retry with a larger table or a different seed.
func Allocate(tableSize int, requests []Request) (*Allocation, error) {
	a := NewAllocation(tableSize)
	if err := AllocateInto(a, requests); err != nil {
		return nil, err
	}
	return a, nil
}

// AllocateInto places additional requests into an existing allocation —
// the other half of reconfiguration: connections of a newly started
// application claim only slots that are currently free, so running
// applications are untouched by construction. It is the greedy strategy;
// Allocator (allocator.go) is the seam for alternatives.
func AllocateInto(a *Allocation, requests []Request) error {
	_, err := Greedy{}.Place(a, requests, false)
	return err
}

// requestOrder returns the deterministic service order of the requests:
// tightest gap targets first (they need regular combs, which only an
// empty table offers; requests without a target sort last), then heaviest
// slot counts, then longest primary paths, ties by connection id.
func requestOrder(requests []Request) []int {
	order := make([]int, len(requests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := requests[order[i]], requests[order[j]]
		gi, gj := ri.GapTarget, rj.GapTarget
		if gi <= 0 {
			gi = 1 << 30
		}
		if gj <= 0 {
			gj = 1 << 30
		}
		if gi != gj {
			return gi < gj
		}
		if ri.Count != rj.Count {
			return ri.Count > rj.Count
		}
		hi, hj := len(ri.Paths[0].Links), len(rj.Paths[0].Links)
		if hi != hj {
			return hi > hj
		}
		return ri.Conn < rj.Conn
	})
	return order
}

// checkRequest rejects malformed requests — misuse, as opposed to a
// legitimate placement failure, so these abort even best-effort passes.
func checkRequest(a *Allocation, req Request) error {
	if req.Count <= 0 {
		return fmt.Errorf("slots: connection %d requests %d slots", req.Conn, req.Count)
	}
	if req.Count > a.TableSize {
		return fmt.Errorf("slots: connection %d needs %d slots, table has %d", req.Conn, req.Count, a.TableSize)
	}
	if _, dup := a.ByConn[req.Conn]; dup {
		return fmt.Errorf("slots: duplicate request for connection %d", req.Conn)
	}
	return nil
}

// placeRequest finds a placement for one (pre-checked) request on the
// current allocation, or nil when none exists. It does not claim slots;
// commitAssignment does.
func placeRequest(a *Allocation, req Request) *Assignment {
	tableSize := a.TableSize
	// Stagger each connection's ideal slot positions so that
	// equal-count connections do not all fight for the same
	// comb (0, S/k, 2S/k, ...), which fragments the joint
	// free-slot sets of multi-hop paths.
	offset := int(uint32(req.Conn)*2654435761) % tableSize
	// Per-slot path mixing is only valid between paths of equal
	// TotalShift (words would reorder otherwise), so group the
	// candidates by shift — minimal routes first, detours after —
	// and take the first group that fits. Within a group, prefer
	// the path whose hottest link is coolest.
	score := func(p *route.Path) float64 {
		worst := 0.0
		for _, lid := range p.Links {
			if u := a.LinkUtilisation(lid); u > worst {
				worst = u
			}
		}
		return worst
	}
	var groups [][]*route.Path
	for _, p := range req.Paths {
		placed := false
		for gi := range groups {
			if groups[gi][0].TotalShift == p.TotalShift {
				groups[gi] = append(groups[gi], p)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []*route.Path{p})
		}
	}
	for _, g := range groups {
		paths := append([]*route.Path(nil), g...)
		sort.SliceStable(paths, func(i, j int) bool { return score(paths[i]) < score(paths[j]) })
		ws := req.WindowSlots
		if ws < 1 {
			ws = 1
		}
		if asg := pickSlotsMultiPath(a, paths, req.Count, req.GapTarget, ws, offset); asg != nil {
			return asg
		}
	}
	return nil
}

// commitAssignment claims the chosen slots and records the assignment.
func commitAssignment(a *Allocation, req Request, asg *Assignment) {
	for _, s := range asg.Slots {
		a.Claim(req.Conn, asg.PathOf[s], s)
	}
	asg.Conn = req.Conn
	asg.Path = req.Paths[0]
	a.ByConn[req.Conn] = asg
}

// placementError builds the diagnostic for an unplaceable request: per
// candidate path, the joint-free slot count and the hottest link.
func placementError(a *Allocation, req Request) *PlacementError {
	tableSize := a.TableSize
	detail := ""
	for pi, p := range req.Paths {
		free := 0
		for s := 0; s < tableSize; s++ {
			if a.SlotFree(p, s) {
				free++
			}
		}
		worstLink, worstUtil := topology.LinkID(-1), 0.0
		for _, lid := range p.Links {
			if u := a.LinkUtilisation(lid); u > worstUtil {
				worstLink, worstUtil = lid, u
			}
		}
		detail += fmt.Sprintf("; path %d: %d joint-free slots, hottest link %d at %.0f%%",
			pi, free, worstLink, worstUtil*100)
	}
	return &PlacementError{Conn: req.Conn, Needed: req.Count, GapTarget: req.GapTarget,
		Table: tableSize, Detail: detail}
}

// pickSlotsMultiPath chooses at least count injection slots where each
// slot may be reserved on any of the candidate paths (tried in the given
// preference order). When gapTarget is positive the chosen set's cyclic
// MaxGap must not exceed it; a greedy furthest-within-target cover is
// computed first and then topped up to count. It returns nil when the
// free-slot union cannot satisfy the request.
func pickSlotsMultiPath(a *Allocation, paths []*route.Path, count, windowTarget, windowSlots, offset int) *Assignment {
	// pathFor[s] is the first candidate path with slot s free, or nil.
	pathFor := make([]*route.Path, a.TableSize)
	free := make([]int, 0, a.TableSize)
	for s := 0; s < a.TableSize; s++ {
		for _, p := range paths {
			if a.SlotFree(p, s) {
				pathFor[s] = p
				free = append(free, s)
				break
			}
		}
	}
	if len(free) < count {
		return nil
	}
	taken := make([]bool, a.TableSize)
	chosen := make([]int, 0, count)
	take := func(s int) {
		if !taken[s] {
			taken[s] = true
			chosen = append(chosen, s)
		}
	}
	// Choose count slots near evenly spread ideals.
	for i := 0; len(chosen) < count && i < count; i++ {
		ideal := (i*a.TableSize/count + offset) % a.TableSize
		best, bestDist := -1, a.TableSize+1
		for _, s := range free {
			if taken[s] {
				continue
			}
			d := s - ideal
			if d < 0 {
				d = -d
			}
			if wrap := a.TableSize - d; wrap < d {
				d = wrap
			}
			if d < bestDist {
				best, bestDist = s, d
			}
		}
		if best < 0 {
			return nil
		}
		take(best)
	}
	if len(chosen) < count {
		return nil
	}
	sort.Ints(chosen)
	// Repair the window constraint: while the worst windowSlots-gap
	// window exceeds the target, add a free slot inside its largest
	// gap. Each addition strictly shrinks some gap, so this terminates.
	if windowTarget > 0 {
		for {
			w, at := maxGapWindowAt(chosen, a.TableSize, windowSlots)
			if w <= windowTarget {
				break
			}
			// The offending window spans gaps starting at chosen
			// index at; find its largest gap and a free slot
			// inside.
			bestSlot, bestGap := -1, 0
			for j := 0; j < windowSlots && j < len(chosen); j++ {
				i0 := (at + j) % len(chosen)
				from := chosen[i0]
				to := chosen[(i0+1)%len(chosen)]
				gap := to - from
				if gap <= 0 {
					gap += a.TableSize
				}
				if gap <= bestGap {
					continue
				}
				// Free slot nearest the gap's middle.
				mid := (from + gap/2) % a.TableSize
				for d := 0; d < gap/2+1; d++ {
					for _, cand := range []int{(mid + d) % a.TableSize, (mid - d + a.TableSize) % a.TableSize} {
						if !taken[cand] && pathFor[cand] != nil && inGap(from, gap, cand, a.TableSize) {
							bestSlot, bestGap = cand, gap
							break
						}
					}
					if bestGap == gap {
						break
					}
				}
			}
			if bestSlot < 0 {
				return nil // no free slot can shrink the window
			}
			take(bestSlot)
			sort.Ints(chosen)
		}
	}
	asg := &Assignment{Slots: chosen, PathOf: make(map[int]*route.Path, len(chosen))}
	for _, s := range chosen {
		asg.PathOf[s] = pathFor[s]
	}
	return asg
}

// inGap reports whether slot cand lies strictly inside the cyclic gap
// starting at from with the given length.
func inGap(from, gap, cand, tableSize int) bool {
	d := cand - from
	if d < 0 {
		d += tableSize
	}
	return d > 0 && d < gap
}

// maxGapWindowAt returns the worst sum of m consecutive cyclic gaps and
// the index of the chosen slot where that window starts. When m exceeds
// the slot count, the services wrap around whole table revolutions: k
// slots deliver k services per revolution, so m services cost
// floor(m/k) full revolutions plus the worst (m mod k)-gap window.
func maxGapWindowAt(sorted []int, tableSize, m int) (int, int) {
	if len(sorted) == 0 {
		return tableSize * m, 0
	}
	k := len(sorted)
	full := (m / k) * tableSize
	rem := m % k
	if rem == 0 {
		// The worst case still starts just after the least
		// convenient slot; a full multiple of revolutions is
		// position-independent.
		return full, 0
	}
	gaps := make([]int, k)
	for i := range sorted {
		g := sorted[(i+1)%k] - sorted[i]
		if g <= 0 {
			g += tableSize
		}
		gaps[i] = g
	}
	best, at := 0, 0
	for i := range gaps {
		sum := 0
		for j := 0; j < rem; j++ {
			sum += gaps[(i+j)%k]
		}
		if sum > best {
			best, at = sum, i
		}
	}
	return full + best, at
}

// A PlacementError reports the first connection the greedy allocator
// could not place; callers can relax that connection's requirement (more
// table sizes, a looser latency budget) and retry.
type PlacementError struct {
	Conn      phit.ConnID
	Needed    int
	GapTarget int
	Table     int
	Detail    string
}

func (e *PlacementError) Error() string {
	return fmt.Sprintf("slots: no feasible slots for connection %d (%d needed, gap target %d, table %d)%s",
		e.Conn, e.Needed, e.GapTarget, e.Table, e.Detail)
}

// MaxGapWindow returns the largest sum of m consecutive cyclic gaps of
// the slot set — the worst-case time, in slots, to obtain m services
// starting from an arbitrary instant. It drives the transactional latency
// bound.
func MaxGapWindow(slotSet []int, tableSize, m int) int {
	sorted := append([]int(nil), slotSet...)
	sort.Ints(sorted)
	w, _ := maxGapWindowAt(sorted, tableSize, m)
	return w
}

// MaxGap returns the largest distance, in slots, from one owned slot to
// the next (cyclically). A connection injecting a word just after missing
// its slot waits at most MaxGap slots; this drives the worst-case latency
// bound.
func MaxGap(slots []int, tableSize int) int {
	if len(slots) == 0 {
		return tableSize
	}
	sorted := append([]int(nil), slots...)
	sort.Ints(sorted)
	max := 0
	for i := range sorted {
		next := sorted[(i+1)%len(sorted)]
		gap := next - sorted[i]
		if gap <= 0 {
			gap += tableSize
		}
		if gap > max {
			max = gap
		}
	}
	return max
}
