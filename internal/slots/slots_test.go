package slots

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/topology"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable(8)
	if tb.Size() != 8 {
		t.Fatalf("Size = %d", tb.Size())
	}
	tb.Slots[2] = 5
	tb.Slots[6] = 5
	tb.Slots[3] = 9
	if tb.Owner(2) != 5 || tb.Owner(10) != 5 {
		t.Error("Owner modulo failed")
	}
	got := tb.SlotsOf(5)
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Errorf("SlotsOf = %v", got)
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero size")
		}
	}()
	NewTable(0)
}

func TestMaxGap(t *testing.T) {
	cases := []struct {
		slots []int
		size  int
		want  int
	}{
		{[]int{0, 4}, 8, 4},
		{[]int{0, 1}, 8, 7},
		{[]int{3}, 8, 8},
		{nil, 8, 8},
		{[]int{0, 2, 4, 6}, 8, 2},
	}
	for _, c := range cases {
		if got := MaxGap(c.slots, c.size); got != c.want {
			t.Errorf("MaxGap(%v, %d) = %d, want %d", c.slots, c.size, got, c.want)
		}
	}
}

func TestMaxGapWindow(t *testing.T) {
	// Slots 0,2,5 in table 8: gaps 2,3,3.
	s := []int{0, 2, 5}
	if got := MaxGapWindow(s, 8, 1); got != 3 {
		t.Errorf("window(1) = %d", got)
	}
	if got := MaxGapWindow(s, 8, 2); got != 6 {
		t.Errorf("window(2) = %d", got)
	}
	if got := MaxGapWindow(s, 8, 3); got != 8 {
		t.Errorf("window(3) = %d", got)
	}
	// m beyond the slot count wraps whole revolutions: 9 services on 3
	// slots cost 3 full revolutions.
	if got := MaxGapWindow(s, 8, 9); got != 24 {
		t.Errorf("window(9) = %d", got)
	}
	// 4 services: one revolution plus the worst single gap.
	if got := MaxGapWindow(s, 8, 4); got != 8+3 {
		t.Errorf("window(4) = %d", got)
	}
	if got := MaxGapWindow(nil, 8, 2); got != 16 {
		t.Errorf("window on empty = %d", got)
	}
}

func meshPaths(t *testing.T, m *topology.Mesh, a, b topology.NodeID) []*route.Path {
	t.Helper()
	paths, err := route.Candidates(m, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Only same-shift (minimal) candidates for these tests.
	var out []*route.Path
	for _, p := range paths {
		if p.TotalShift == paths[0].TotalShift {
			out = append(out, p)
		}
	}
	return out
}

func TestAllocateSimple(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	a, b := m.NIAt(0, 0, 0), m.NIAt(1, 1, 0)
	c, d := m.NIAt(1, 0, 0), m.NIAt(0, 1, 0)
	reqs := []Request{
		{Conn: 1, Paths: meshPaths(t, m, a, b), Count: 3},
		{Conn: 2, Paths: meshPaths(t, m, c, d), Count: 2},
		{Conn: 3, Paths: meshPaths(t, m, b, a), Count: 1},
	}
	alloc, err := Allocate(8, reqs)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for id, want := range map[phit.ConnID]int{1: 3, 2: 2, 3: 1} {
		if got := len(alloc.ByConn[id].Slots); got != want {
			t.Errorf("conn %d got %d slots, want %d", id, got, want)
		}
	}
	// NI tables reflect assignments.
	tb := alloc.NITable(a)
	if got := len(tb.SlotsOf(1)); got != 3 {
		t.Errorf("NI table has %d slots for conn 1", got)
	}
}

func TestAllocateRespectsGapTarget(t *testing.T) {
	m := topology.NewMesh(2, 1, 1)
	a, b := m.NIAt(0, 0, 0), m.NIAt(1, 0, 0)
	reqs := []Request{
		{Conn: 1, Paths: meshPaths(t, m, a, b), Count: 2, GapTarget: 4, WindowSlots: 1},
	}
	alloc, err := Allocate(16, reqs)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	asg := alloc.ByConn[1]
	if got := MaxGap(asg.Slots, 16); got > 4 {
		t.Errorf("MaxGap = %d exceeds target 4 (slots %v)", got, asg.Slots)
	}
	// Meeting gap 4 on a 16-slot table needs at least 4 slots.
	if len(asg.Slots) < 4 {
		t.Errorf("only %d slots cannot give gap <= 4", len(asg.Slots))
	}
}

func TestAllocateErrors(t *testing.T) {
	m := topology.NewMesh(2, 1, 1)
	a, b := m.NIAt(0, 0, 0), m.NIAt(1, 0, 0)
	paths := meshPaths(t, m, a, b)
	if _, err := Allocate(4, []Request{{Conn: 1, Paths: paths, Count: 0}}); err == nil {
		t.Error("accepted zero count")
	}
	if _, err := Allocate(4, []Request{{Conn: 1, Paths: paths, Count: 5}}); err == nil {
		t.Error("accepted count above table size")
	}
	if _, err := Allocate(4, []Request{
		{Conn: 1, Paths: paths, Count: 1},
		{Conn: 1, Paths: paths, Count: 1},
	}); err == nil {
		t.Error("accepted duplicate connection")
	}
	// Saturate the link, then ask for more.
	_, err := Allocate(4, []Request{
		{Conn: 1, Paths: paths, Count: 4},
		{Conn: 2, Paths: paths, Count: 1},
	})
	var pe *PlacementError
	if !errors.As(err, &pe) {
		t.Fatalf("want PlacementError, got %v", err)
	}
	if pe.Conn != 2 {
		t.Errorf("PlacementError.Conn = %d", pe.Conn)
	}
}

// TestContentionFreedomQuick is the core invariant: for random workloads
// that allocate successfully, Verify (an independent recomputation of
// per-link, per-slot occupancy) never finds a double booking, and the
// per-slot shift arithmetic never wraps incorrectly.
func TestContentionFreedomQuick(t *testing.T) {
	m := topology.NewMesh(3, 3, 2)
	nis := m.AllNIs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		var reqs []Request
		for i := 0; i < n; i++ {
			a := nis[rng.Intn(len(nis))]
			b := nis[rng.Intn(len(nis))]
			if a == b || m.Node(a).Router == m.Node(b).Router {
				continue
			}
			paths, err := route.Candidates(m, a, b, 4)
			if err != nil {
				return false
			}
			reqs = append(reqs, Request{
				Conn:  phit.ConnID(i + 1),
				Paths: paths,
				Count: 1 + rng.Intn(4),
			})
		}
		alloc, err := Allocate(32, reqs)
		if err != nil {
			return true // infeasible workloads are fine; we check placed ones
		}
		return alloc.Verify() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLinkOwnerAndUtilisation(t *testing.T) {
	m := topology.NewMesh(2, 1, 1)
	a, b := m.NIAt(0, 0, 0), m.NIAt(1, 0, 0)
	paths := meshPaths(t, m, a, b)
	alloc, err := Allocate(8, []Request{{Conn: 7, Paths: paths, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	p := alloc.ByConn[7].Path
	s0 := alloc.ByConn[7].Slots[0]
	for k, lid := range p.Links {
		slot := (s0 + p.Shift[k]) % 8
		if got := alloc.LinkOwner(lid, slot); got != 7 {
			t.Errorf("link %d slot %d owner = %d", lid, slot, got)
		}
		if got := alloc.LinkUtilisation(lid); got != 0.25 {
			t.Errorf("utilisation = %v", got)
		}
	}
	if got := alloc.LinkOwner(p.Links[0], (s0+1)%8); got == 7 && len(alloc.ByConn[7].Slots) == 2 &&
		alloc.ByConn[7].Slots[1] != (s0+1)%8 {
		t.Error("unclaimed slot reported owned")
	}
	// A link never allocated.
	var unused topology.LinkID = -1
	for _, l := range m.Links() {
		if alloc.LinkUtilisation(l.ID) == 0 {
			unused = l.ID
			break
		}
	}
	if unused != -1 && alloc.LinkOwner(unused, 0) != phit.None {
		t.Error("unused link has an owner")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	m := topology.NewMesh(2, 1, 1)
	a, b := m.NIAt(0, 0, 0), m.NIAt(1, 0, 0)
	paths := meshPaths(t, m, a, b)
	alloc, err := Allocate(8, []Request{{Conn: 1, Paths: paths, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Inject a second connection claiming the same slot behind the
	// allocator's back.
	asg := alloc.ByConn[1]
	alloc.ByConn[2] = &Assignment{Conn: 2, Path: asg.Path, Slots: append([]int(nil), asg.Slots...),
		PathOf: map[int]*route.Path{asg.Slots[0]: asg.Path}}
	if err := alloc.Verify(); err == nil {
		t.Error("Verify missed a double booking")
	}
}
