package slots

import (
	"fmt"
	"sort"

	"repro/internal/phit"
)

// An Allocator turns a batch of slot requests into claims on an
// Allocation. Implementations share the request ordering, the per-request
// placement machinery (candidate-path grouping by TotalShift, per-slot
// path mixing, even-spread slot picking with window repair) and the
// structural invariant that only currently-free slots are ever claimed —
// so any allocator is safe for online reconfiguration by construction.
// They differ in what happens when a request does not fit.
type Allocator interface {
	// Name identifies the strategy ("greedy", "ripup") in CLIs, studies
	// and reports.
	Name() string
	// Place serves the requests into a. In strict mode (bestEffort
	// false) the first unplaceable request aborts with a
	// *PlacementError; connections placed before the failure stay
	// claimed, as AllocateInto always behaved. With bestEffort, an
	// unplaceable request is recorded in Result.Failed and the pass
	// continues — the mode large-scale studies use to measure success
	// rates. Malformed requests (zero count, duplicates, counts past the
	// table) abort either mode.
	Place(a *Allocation, requests []Request, bestEffort bool) (Result, error)
}

// A Result summarises one allocation pass.
type Result struct {
	// Placed lists the connections that got slots, in placement order
	// (rip-up repairs append after the first pass).
	Placed []phit.ConnID
	// Failed lists the requests that could not be placed (best-effort
	// mode only; strict mode aborts at the first).
	Failed []Failure
	// RipUps counts successful rip-up-and-reroute repairs (zero for the
	// greedy allocator).
	RipUps int
}

// SuccessRate is the fraction of requests placed.
func (r *Result) SuccessRate() float64 {
	n := len(r.Placed) + len(r.Failed)
	if n == 0 {
		return 1
	}
	return float64(len(r.Placed)) / float64(n)
}

// A Failure names one unplaceable request.
type Failure struct {
	Conn phit.ConnID
	Err  *PlacementError
}

// Greedy is the baseline allocator: requests in requestOrder, each taking
// the first candidate-path group with enough jointly free slots, never
// revisiting an earlier decision (the strategy the Æthereal allocation
// tools [16] ship and Allocate has always used).
type Greedy struct{}

// Name implements Allocator.
func (Greedy) Name() string { return "greedy" }

// Place implements Allocator.
func (Greedy) Place(a *Allocation, requests []Request, bestEffort bool) (Result, error) {
	var res Result
	for _, idx := range requestOrder(requests) {
		req := requests[idx]
		if err := checkRequest(a, req); err != nil {
			return res, err
		}
		asg := placeRequest(a, req)
		if asg == nil {
			pe := placementError(a, req)
			if !bestEffort {
				return res, pe
			}
			res.Failed = append(res.Failed, Failure{Conn: req.Conn, Err: pe})
			continue
		}
		commitAssignment(a, req, asg)
		res.Placed = append(res.Placed, req.Conn)
	}
	return res, nil
}

// RipUp is the Even & Fais-style allocator ("Algorithms for
// Network-on-Chip Design with Guaranteed QoS"): the same greedy ordering,
// but a request that does not fit triggers bounded rip-up-and-reroute —
// the connections blocking the most of its candidate slots are released,
// the blocked request placed, and the victims re-placed on whatever
// capacity remains (their own candidate paths and per-slot path mixing
// give them room the first pass did not need). A repair that cannot
// re-place every victim is rolled back wholesale, so the allocation never
// degrades: everything the greedy allocator places, RipUp places too, and
// the repairs only add placements on top.
//
// Only connections placed in the same Place call are ripped: requests
// already living in the allocation (a running application, during
// reconfiguration) are never disturbed.
type RipUp struct {
	// MaxVictims bounds the victim set tried per blocked request
	// (default 3). Victim sets grow cumulatively — top blocker, top two,
	// ... — so cost is linear in the bound.
	MaxVictims int
	// MaxRepairs bounds the total successful repairs per pass (default:
	// no bound). Studies use it to cap worst-case runtime.
	MaxRepairs int
}

// Name implements Allocator.
func (RipUp) Name() string { return "ripup" }

// Place implements Allocator.
//
// In best-effort mode the repairs run as a second pass after the whole
// greedy pass has finished. The ordering matters for the never-worse
// guarantee: an inline repair mutates state that every later placement
// depends on, so it can trade one early success for several later
// failures. A post-pass repair starts from exactly the greedy outcome and
// every adopted repair adds a placement while keeping all victims placed,
// so the placed set only ever grows from the greedy baseline.
func (r RipUp) Place(a *Allocation, requests []Request, bestEffort bool) (Result, error) {
	maxVictims := r.MaxVictims
	if maxVictims <= 0 {
		maxVictims = 3
	}
	var res Result
	reqOf := make(map[phit.ConnID]Request, len(requests))
	placedHere := make(map[phit.ConnID]bool, len(requests))
	adopt := func(req Request) {
		reqOf[req.Conn] = req
		placedHere[req.Conn] = true
		res.Placed = append(res.Placed, req.Conn)
	}
	var failed []Request
	for _, idx := range requestOrder(requests) {
		req := requests[idx]
		if err := checkRequest(a, req); err != nil {
			return res, err
		}
		if asg := placeRequest(a, req); asg != nil {
			commitAssignment(a, req, asg)
			adopt(req)
			continue
		}
		if !bestEffort {
			// Strict mode is all-or-nothing anyway, so repair inline and
			// abort on the first request that stays unplaceable.
			if (r.MaxRepairs == 0 || res.RipUps < r.MaxRepairs) &&
				ripUpRepair(a, req, reqOf, placedHere, maxVictims) {
				res.RipUps++
				adopt(req)
				continue
			}
			return res, placementError(a, req)
		}
		failed = append(failed, req)
	}
	for _, req := range failed {
		if (r.MaxRepairs == 0 || res.RipUps < r.MaxRepairs) &&
			ripUpRepair(a, req, reqOf, placedHere, maxVictims) {
			res.RipUps++
			adopt(req)
			continue
		}
		res.Failed = append(res.Failed, Failure{Conn: req.Conn, Err: placementError(a, req)})
	}
	return res, nil
}

// ripUpRepair tries to place the blocked request by releasing up to
// maxVictims of the connections blocking its candidate slots and
// re-placing them afterwards. Victim sets grow cumulatively from the top
// blocker; each trial runs on a clone and is adopted only when the blocked
// request and every victim land, so failure leaves a untouched. Returns
// whether a repair was adopted.
func ripUpRepair(a *Allocation, req Request, reqOf map[phit.ConnID]Request, rippable map[phit.ConnID]bool, maxVictims int) bool {
	victims := blockers(a, req, rippable)
	if len(victims) == 0 {
		return false
	}
	if len(victims) > maxVictims {
		victims = victims[:maxVictims]
	}
	for k := 1; k <= len(victims); k++ {
		set := victims[:k]
		trial := a.Clone()
		for _, v := range set {
			trial.Release(v)
		}
		asg := placeRequest(trial, req)
		if asg == nil {
			continue
		}
		commitAssignment(trial, req, asg)
		ok := true
		for _, v := range set {
			vreq := reqOf[v]
			vasg := placeRequest(trial, vreq)
			if vasg == nil {
				ok = false
				break
			}
			commitAssignment(trial, vreq, vasg)
		}
		if !ok {
			continue
		}
		// Adopt the repaired clone: same table size, rebuilt claims.
		a.ByConn = trial.ByConn
		a.linkOcc = trial.linkOcc
		return true
	}
	return false
}

// blockers ranks the rippable connections occupying the blocked request's
// candidate slots, most-blocking first (ties by connection id). A
// connection is counted once per injection slot it denies on the
// best-covered candidate path.
func blockers(a *Allocation, req Request, rippable map[phit.ConnID]bool) []phit.ConnID {
	count := make(map[phit.ConnID]int)
	for _, p := range req.Paths {
		for s := 0; s < a.TableSize; s++ {
			for k, lid := range p.Links {
				owner := a.LinkOwner(lid, s+p.Shift[k])
				if owner != phit.None && rippable[owner] {
					count[owner]++
				}
			}
		}
	}
	out := make([]phit.ConnID, 0, len(count))
	for c := range count {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if count[out[i]] != count[out[j]] {
			return count[out[i]] > count[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Allocators returns every registered strategy, baseline first.
func Allocators() []Allocator { return []Allocator{Greedy{}, RipUp{}} }

// ByName resolves an allocator by name; the empty string selects the
// greedy baseline.
func ByName(name string) (Allocator, error) {
	switch name {
	case "", "greedy":
		return Greedy{}, nil
	case "ripup":
		return RipUp{}, nil
	default:
		return nil, fmt.Errorf("slots: unknown allocator %q (greedy | ripup)", name)
	}
}

// AllocateWith runs one strict allocation pass with the given strategy on
// a fresh table.
func AllocateWith(al Allocator, tableSize int, requests []Request) (*Allocation, error) {
	a := NewAllocation(tableSize)
	if _, err := al.Place(a, requests, false); err != nil {
		return nil, err
	}
	return a, nil
}
