package slots

import (
	"math/rand"
	"testing"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/topology"
)

func TestByName(t *testing.T) {
	for name, want := range map[string]string{"": "greedy", "greedy": "greedy", "ripup": "ripup"} {
		al, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if al.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", name, al.Name(), want)
		}
	}
	if _, err := ByName("anneal"); err == nil {
		t.Error("ByName accepted an unknown strategy")
	}
}

// TestRipUpBeatsGreedyContrived builds the minimal workload where rip-up
// provably wins: a 2-slot table, a heavy connection B whose preferred
// (lower-shift) path fully claims the shared link L2 but whose detour
// path over L3 is wide open, and a light connection A whose only path is
// L2. Greedy serves B first (heavier), saturates L2 and fails A; rip-up
// releases B, places A on L2 and re-places B on the detour.
func TestRipUpBeatsGreedyContrived(t *testing.T) {
	const l2, l3 = topology.LinkID(2), topology.LinkID(3)
	pathA := &route.Path{Src: 10, Dst: 11, Links: []topology.LinkID{l2}, Shift: []int{1}, TotalShift: 1}
	pathB2 := &route.Path{Src: 12, Dst: 13, Links: []topology.LinkID{l2}, Shift: []int{1}, TotalShift: 1}
	pathB3 := &route.Path{Src: 12, Dst: 13, Links: []topology.LinkID{l3}, Shift: []int{2}, TotalShift: 2}
	reqs := []Request{
		{Conn: 1, Paths: []*route.Path{pathA}, Count: 1},
		{Conn: 2, Paths: []*route.Path{pathB2, pathB3}, Count: 2},
	}

	ag := NewAllocation(2)
	gres, err := (Greedy{}).Place(ag, reqs, true)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if len(gres.Placed) != 1 || gres.Placed[0] != 2 || len(gres.Failed) != 1 || gres.Failed[0].Conn != 1 {
		t.Fatalf("greedy placed %v failed %+v; want B placed, A failed", gres.Placed, gres.Failed)
	}

	ar := NewAllocation(2)
	rres, err := (RipUp{}).Place(ar, reqs, true)
	if err != nil {
		t.Fatalf("ripup: %v", err)
	}
	if len(rres.Placed) != 2 || len(rres.Failed) != 0 {
		t.Fatalf("ripup placed %v failed %+v; want both placed", rres.Placed, rres.Failed)
	}
	if rres.RipUps != 1 {
		t.Errorf("RipUps = %d, want 1", rres.RipUps)
	}
	if err := ar.Verify(); err != nil {
		t.Fatalf("repaired allocation fails Verify: %v", err)
	}
	// B must have moved to the detour: L2 carries A now.
	onL3 := false
	for s := 0; s < 2; s++ {
		if ar.LinkOwner(l3, s) == 2 {
			onL3 = true
		}
	}
	if !onL3 {
		t.Error("connection B was not re-placed on the detour link")
	}
}

// randomRequests draws a reproducible contended workload on a 4x4 mesh.
func randomRequests(t *testing.T, seed int64, n int) []Request {
	t.Helper()
	m := topology.NewMesh(4, 4, 1)
	rng := rand.New(rand.NewSource(seed))
	var reqs []Request
	for i := 0; i < n; i++ {
		sx, sy := rng.Intn(4), rng.Intn(4)
		dx, dy := rng.Intn(4), rng.Intn(4)
		if sx == dx && sy == dy {
			dx = (dx + 1) % 4
		}
		paths, err := route.Candidates(m, m.NIAt(sx, sy, 0), m.NIAt(dx, dy, 0), 4)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{
			Conn:  phit.ConnID(i + 1),
			Paths: paths,
			Count: 1 + rng.Intn(3),
		})
	}
	return reqs
}

// TestRipUpNeverWorseThanGreedy is the structural guarantee the scale
// study's Verify leans on: because best-effort rip-up repairs run as a
// post-pass over the unchanged greedy outcome, the placed set is a
// superset of greedy's on every workload.
func TestRipUpNeverWorseThanGreedy(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		reqs := randomRequests(t, seed, 40)

		ag := NewAllocation(8)
		gres, err := (Greedy{}).Place(ag, reqs, true)
		if err != nil {
			t.Fatalf("seed %d greedy: %v", seed, err)
		}
		ar := NewAllocation(8)
		rres, err := (RipUp{}).Place(ar, reqs, true)
		if err != nil {
			t.Fatalf("seed %d ripup: %v", seed, err)
		}

		placed := make(map[phit.ConnID]bool, len(rres.Placed))
		for _, c := range rres.Placed {
			placed[c] = true
		}
		for _, c := range gres.Placed {
			if !placed[c] {
				t.Errorf("seed %d: greedy placed connection %d but ripup did not", seed, c)
			}
		}
		if rres.SuccessRate() < gres.SuccessRate() {
			t.Errorf("seed %d: ripup success %.3f below greedy %.3f",
				seed, rres.SuccessRate(), gres.SuccessRate())
		}
		if err := ag.Verify(); err != nil {
			t.Errorf("seed %d greedy Verify: %v", seed, err)
		}
		if err := ar.Verify(); err != nil {
			t.Errorf("seed %d ripup Verify: %v", seed, err)
		}
	}
}

// TestAllocateWithStrict checks the strict path of both strategies:
// whatever greedy can place in full, rip-up places too, and both reject
// malformed requests outright.
func TestAllocateWithStrict(t *testing.T) {
	reqs := randomRequests(t, 3, 10)
	for _, al := range Allocators() {
		a, err := AllocateWith(al, 16, reqs)
		if err != nil {
			t.Fatalf("%s strict: %v", al.Name(), err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("%s Verify: %v", al.Name(), err)
		}
		bad := []Request{{Conn: 99, Paths: reqs[0].Paths, Count: 0}}
		if _, err := AllocateWith(al, 16, bad); err == nil {
			t.Errorf("%s accepted a zero-count request", al.Name())
		}
	}
}
