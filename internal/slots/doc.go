// Package slots implements the TDM machinery at the heart of aelite's
// contention-free routing (paper Section III).
//
// Time is divided into slots of one flit cycle (3 cycles) each; slot
// tables of a common size S repeat forever. A connection that owns
// injection slot s at its source NI occupies link k of its path during
// slot (s + shift_k) mod S, where shift_k grows by one per router hop and
// by one per mesochronous link pipeline stage. An allocation is
// contention-free when no link is claimed by two connections in the same
// slot; the network then needs no arbiters at all.
//
// The Allocator interface is the strategy seam: Greedy is the baseline
// first-fit pass, RipUp the Even & Fais-style bounded
// rip-up-and-reroute, and ByName resolves CLI/config names. Allocation
// is the shared claim store either strategy fills; Verify re-checks the
// contention-free invariant after every pass, and core/admission consume
// the result. Claims are only ever made on free slots, which is what
// makes online reconfiguration composable.
package slots
