package dataflow

import (
	"fmt"
	"math"
)

// ActorID indexes an actor in a Graph.
type ActorID int

// An Actor fires with a fixed duration (any time unit; picoseconds when
// modelling aelite).
type Actor struct {
	Name     string
	Duration float64
}

// An Edge is a channel from Src to Dst carrying Tokens initial tokens and
// an optional extra latency (transfer delay).
type Edge struct {
	Src, Dst ActorID
	Tokens   int
	Latency  float64
}

// A Graph is an HSDF graph.
type Graph struct {
	actors []Actor
	edges  []Edge
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddActor appends an actor and returns its id.
func (g *Graph) AddActor(name string, duration float64) ActorID {
	if duration < 0 {
		panic(fmt.Sprintf("dataflow: actor %q has negative duration", name))
	}
	g.actors = append(g.actors, Actor{Name: name, Duration: duration})
	return ActorID(len(g.actors) - 1)
}

// AddEdge appends a channel. Tokens must be non-negative.
func (g *Graph) AddEdge(src, dst ActorID, tokens int, latency float64) {
	if tokens < 0 || latency < 0 {
		panic("dataflow: negative tokens or latency")
	}
	g.check(src)
	g.check(dst)
	g.edges = append(g.edges, Edge{Src: src, Dst: dst, Tokens: tokens, Latency: latency})
}

// AddChannel models a bounded FIFO of the given capacity between two
// actors: a forward edge with the initial tokens plus the standard
// back-pressure edge carrying the remaining capacity.
func (g *Graph) AddChannel(src, dst ActorID, initialTokens, capacity int, latency float64) {
	if capacity < initialTokens {
		panic("dataflow: channel capacity below initial marking")
	}
	g.AddEdge(src, dst, initialTokens, latency)
	g.AddEdge(dst, src, capacity-initialTokens, 0)
}

func (g *Graph) check(a ActorID) {
	if a < 0 || int(a) >= len(g.actors) {
		panic(fmt.Sprintf("dataflow: no actor %d", a))
	}
}

// NumActors returns the actor count.
func (g *Graph) NumActors() int { return len(g.actors) }

// Actor returns an actor by id.
func (g *Graph) Actor(id ActorID) Actor {
	g.check(id)
	return g.actors[id]
}

// MCR computes the maximum cycle ratio — the steady-state iteration
// period — by parametric binary search: a candidate period P is feasible
// iff the graph with edge weights (duration(src) + latency - P*tokens)
// has no positive cycle, which Bellman-Ford detects. It returns an error
// if some actor lies on no token-carrying cycle (the graph would run
// unboundedly fast or deadlock, depending on direction).
func (g *Graph) MCR() (float64, error) {
	if len(g.actors) == 0 {
		return 0, fmt.Errorf("dataflow: empty graph")
	}
	// A cycle with zero tokens deadlocks (or, for weight purposes,
	// makes every period infeasible). Detect via feasibility of a huge
	// period: if even that has a positive cycle, a token-free cycle
	// with positive duration exists.
	lo, hi := 0.0, 0.0
	for _, e := range g.edges {
		hi += g.actors[e.Src].Duration + e.Latency
	}
	for _, a := range g.actors {
		hi += a.Duration
	}
	if hi == 0 {
		return 0, nil
	}
	if g.positiveCycle(hi * 2) {
		return 0, fmt.Errorf("dataflow: token-free cycle (deadlock)")
	}
	if !g.positiveCycle(0) {
		// No cycle constrains the period at all.
		return 0, fmt.Errorf("dataflow: no token-carrying cycle bounds the rate")
	}
	for i := 0; i < 60 && hi-lo > 1e-9*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		if g.positiveCycle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// positiveCycle reports whether, at candidate period p, some cycle has
// total (duration + latency - p*tokens) > 0, i.e. the period is
// infeasible (too fast).
func (g *Graph) positiveCycle(p float64) bool {
	n := len(g.actors)
	dist := make([]float64, n)
	// Longest-path relaxation from all sources simultaneously (dist
	// starts at 0 for every node, which is equivalent to a virtual
	// source connected everywhere).
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.edges {
			w := g.actors[e.Src].Duration + e.Latency - p*float64(e.Tokens)
			if d := dist[e.Src] + w; d > dist[e.Dst]+1e-12 {
				dist[e.Dst] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// Still relaxing after n rounds: positive cycle.
	for _, e := range g.edges {
		w := g.actors[e.Src].Duration + e.Latency - p*float64(e.Tokens)
		if dist[e.Src]+w > dist[e.Dst]+1e-12 {
			return true
		}
	}
	return false
}

// ThroughputHz returns the steady-state firing rate 1/MCR (when durations
// are in seconds; for picosecond durations the unit is fires per
// picosecond).
func (g *Graph) ThroughputHz() (float64, error) {
	p, err := g.MCR()
	if err != nil {
		return 0, err
	}
	if p == 0 {
		return math.Inf(1), nil
	}
	return 1 / p, nil
}
