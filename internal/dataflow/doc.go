// Package dataflow implements homogeneous synchronous dataflow (HSDF)
// graph analysis — the formal model the paper designates as future work
// for reasoning about wrapped (plesiochronous/heterochronous) aelite
// networks: "performance analysis of a heterochronous aelite
// implementation is possible by modelling the links, NIs and routers in a
// dataflow graph" (Section VII, footnote) and "include the asynchronous
// wrappers in the formal models of the NoC" (Section VIII).
//
// An HSDF graph has actors with fixed firing durations and directed
// channels carrying initial tokens; an actor fires when every input
// channel holds a token, consuming one per input and producing one per
// output after its duration. The steady-state iteration period of such a
// graph is its maximum cycle ratio (MCR):
//
//	period = max over cycles C of  (sum of durations in C) / (tokens in C)
//
// Wrapped aelite maps onto HSDF directly: every wrapper is an actor whose
// duration is one local flit cycle, every token channel an edge marked
// with wrapper.InitialTokens tokens (plus a reverse capacity edge), and
// the network's sustainable flit rate is 1/MCR — the formal version of
// "the aelite NoC only runs as fast as the slowest router or NI".
//
// Besides the wrapper analysis (aelite-exp hetero), internal/scenario
// derives its dataflow-family workload rates from these graphs: each
// connection's bandwidth is the ring's 1/MCR throughput times the words
// it moves per iteration.
package dataflow
