package dataflow

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/topology"
	"repro/internal/wrapper"
)

// AeliteModel builds the HSDF model of a wrapped (asynchronous-mode)
// aelite network: one actor per router and NI with a firing duration of
// one local flit cycle (3 local clock periods, in picoseconds), and one
// bounded channel per link with the wrapper's initial marking, capacity
// and transfer latency. clocks gives each node's local clock; nodes
// missing from the map run at base.
//
// The model answers, in closed form, the question the paper's Section VI-A
// states informally: at what rate does a plesiochronous (or fully
// heterochronous) aelite network iterate? MCR() of the returned graph is
// the steady-state flit-cycle period in picoseconds.
func AeliteModel(g *topology.Graph, clocks map[topology.NodeID]*clock.Clock, base *clock.Clock) (*Graph, map[topology.NodeID]ActorID, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("dataflow: nil base clock")
	}
	df := New()
	actorOf := make(map[topology.NodeID]ActorID, g.NumNodes())
	for _, n := range g.Nodes() {
		ck := clocks[n.ID]
		if ck == nil {
			ck = base
		}
		dur := float64(phit.FlitWords) * float64(ck.Period)
		id := df.AddActor(n.Name, dur)
		actorOf[n.ID] = id
		// A wrapper cannot overlap its own flit cycles: the standard
		// HSDF one-token self-loop makes firings sequential.
		df.AddEdge(id, id, 1, 0)
	}
	// The wrapper pushes a token with a transfer delay of two nominal
	// cycles (the registered fire); channel capacity and initial
	// marking come from the wrapper package so model and simulator
	// cannot drift apart.
	latency := 2 * float64(base.Period)
	for _, l := range g.Links() {
		df.AddChannel(actorOf[l.From], actorOf[l.To], wrapper.InitialTokens, wrapper.ChannelCapacity, latency)
	}
	return df, actorOf, nil
}

// SlowestElementPeriod returns the naive lower bound on the iteration
// period — the slowest element's flit cycle — against which MCR shows
// whether channel markings, capacities or latencies throttle the network
// below the paper's "only runs as fast as the slowest router or NI".
func SlowestElementPeriod(g *topology.Graph, clocks map[topology.NodeID]*clock.Clock, base *clock.Clock) float64 {
	worst := float64(phit.FlitWords) * float64(base.Period)
	for _, n := range g.Nodes() {
		if ck := clocks[n.ID]; ck != nil {
			if d := float64(phit.FlitWords) * float64(ck.Period); d > worst {
				worst = d
			}
		}
	}
	return worst
}
