package dataflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/topology"
	"repro/internal/wrapper"
)

func TestMCRSelfLoop(t *testing.T) {
	g := New()
	a := g.AddActor("a", 10)
	g.AddEdge(a, a, 1, 0)
	p, err := g.MCR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-10) > 1e-6 {
		t.Errorf("MCR = %v, want 10", p)
	}
}

func TestMCRTwoActorRing(t *testing.T) {
	// a(10) -> b(30) -> a, one token each direction:
	// cycle duration 40 over 2 tokens = 20 per iteration.
	g := New()
	a := g.AddActor("a", 10)
	b := g.AddActor("b", 30)
	g.AddEdge(a, b, 1, 0)
	g.AddEdge(b, a, 1, 0)
	p, err := g.MCR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 1e-6 {
		t.Errorf("MCR = %v, want 20", p)
	}
	// With 2 tokens on each edge the ring decouples: the slow actor
	// alone binds (self-limit via... no self loop: cycle 40/4 = 10; the
	// per-actor rate is then bounded only by the cycle).
	g2 := New()
	a2 := g2.AddActor("a", 10)
	b2 := g2.AddActor("b", 30)
	g2.AddEdge(a2, b2, 2, 0)
	g2.AddEdge(b2, a2, 2, 0)
	g2.AddEdge(b2, b2, 1, 0) // b cannot overlap its own firings
	p2, err := g2.MCR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-30) > 1e-6 {
		t.Errorf("decoupled MCR = %v, want 30 (slowest actor)", p2)
	}
}

func TestMCRLatency(t *testing.T) {
	g := New()
	a := g.AddActor("a", 10)
	b := g.AddActor("b", 10)
	g.AddEdge(a, b, 1, 5)
	g.AddEdge(b, a, 1, 5)
	p, err := g.MCR()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-15) > 1e-6 {
		t.Errorf("MCR with latency = %v, want 15", p)
	}
}

func TestMCRDeadlock(t *testing.T) {
	g := New()
	a := g.AddActor("a", 10)
	b := g.AddActor("b", 10)
	g.AddEdge(a, b, 0, 0)
	g.AddEdge(b, a, 0, 0)
	if _, err := g.MCR(); err == nil {
		t.Error("token-free cycle not detected")
	}
}

func TestMCRUnbounded(t *testing.T) {
	g := New()
	a := g.AddActor("a", 10)
	b := g.AddActor("b", 10)
	g.AddEdge(a, b, 1, 0) // acyclic: nothing bounds the source rate
	if _, err := g.MCR(); err == nil {
		t.Error("rate-unbounded graph not flagged")
	}
}

func TestAddChannel(t *testing.T) {
	g := New()
	a := g.AddActor("a", 3)
	b := g.AddActor("b", 3)
	g.AddChannel(a, b, 2, 4, 0)
	// forward 2 tokens, backward 2 (capacity - initial).
	p, err := g.MCR()
	if err != nil {
		t.Fatal(err)
	}
	// Ring: duration 6 over 4 tokens = 1.5, but an actor cannot fire
	// faster than... there is no self-loop, so the binding cycle is the
	// ring: 1.5.
	if math.Abs(p-1.5) > 1e-6 {
		t.Errorf("MCR = %v", p)
	}
}

// TestMCRQuick: for random strongly-cyclic graphs, the MCR is at least
// the largest single-actor duration on any 1-token self-loop and the
// binary search agrees with direct evaluation of each simple cycle on
// small rings.
func TestMCRQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		g := New()
		ids := make([]ActorID, n)
		durs := make([]float64, n)
		for i := 0; i < n; i++ {
			durs[i] = float64(1 + rng.Intn(20))
			ids[i] = g.AddActor("a", durs[i])
		}
		// A ring with random tokens >= 1 per edge.
		total, tokens := 0.0, 0
		for i := 0; i < n; i++ {
			tk := 1 + rng.Intn(3)
			g.AddEdge(ids[i], ids[(i+1)%n], tk, 0)
			total += durs[i]
			tokens += tk
		}
		// Self-loops force non-overlapping firings.
		for i := 0; i < n; i++ {
			g.AddEdge(ids[i], ids[i], 1, 0)
		}
		p, err := g.MCR()
		if err != nil {
			return false
		}
		want := total / float64(tokens)
		for _, d := range durs {
			if d > want {
				want = d
			}
		}
		return math.Abs(p-want) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAeliteModelPredictsSlowestClock: the HSDF model of a wrapped mesh
// predicts an iteration period equal to the slowest element's flit cycle
// — the paper's Section VI-A claim in closed form.
func TestAeliteModelPredictsSlowestClock(t *testing.T) {
	m := topology.NewMesh(3, 2, 2)
	base := clock.NewMHz("base", 500, 0)
	clocks := map[topology.NodeID]*clock.Clock{}
	// One slow router: 2% slow.
	slow := m.RouterAt(1, 1)
	clocks[slow] = clock.Plesiochronous(base, "slow", 20000, 0)
	df, _, err := AeliteModel(m.Graph, clocks, base)
	if err != nil {
		t.Fatal(err)
	}
	p, err := df.MCR()
	if err != nil {
		t.Fatal(err)
	}
	want := SlowestElementPeriod(m.Graph, clocks, base)
	if math.Abs(p-want)/want > 0.01 {
		t.Errorf("MCR %v ps vs slowest flit cycle %v ps — markings/capacities throttle the network", p, want)
	}
	if want <= float64(3*base.Period) {
		t.Fatal("test setup: slow clock not slower")
	}
}

// TestAeliteModelMatchesSimulation cross-validates the analytical model
// against the actual wrapper simulation: predicted iteration period vs
// measured fire rate.
func TestAeliteModelMatchesSimulation(t *testing.T) {
	// Reuse the wrapper package's ring shape: NI-R-NI with InitialTokens
	// markings; here via the model only (simulation cross-check lives in
	// the wrapper tests; this test checks the model's composition path).
	g := topology.New()
	r := g.AddNode(topology.Router, "R", 2)
	a := g.AddNode(topology.NI, "A", 1)
	b := g.AddNode(topology.NI, "B", 1)
	// Attach NIs for Validate-compatibility (not used here).
	g.ConnectBidir(a, 0, r, 0)
	g.ConnectBidir(b, 0, r, 1)
	base := clock.NewMHz("base", 500, 0)
	df, actorOf, err := AeliteModel(g, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(actorOf) != 3 {
		t.Fatalf("actors = %d", len(actorOf))
	}
	p, err := df.MCR()
	if err != nil {
		t.Fatal(err)
	}
	// All elements at 500 MHz: flit cycle 6000 ps; with InitialTokens=2
	// and 2-cycle latencies the ring must not throttle below that.
	if math.Abs(p-6000) > 1 {
		t.Errorf("MCR = %v ps, want 6000 (full rate at the common clock)", p)
	}
	_ = wrapper.InitialTokens
}
