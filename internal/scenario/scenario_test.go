package scenario

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parallel"
)

func TestFamiliesParse(t *testing.T) {
	for _, f := range Families() {
		got, err := ParseFamily(string(f))
		if err != nil || got != f {
			t.Errorf("ParseFamily(%q) = %q, %v", f, got, err)
		}
	}
	if _, err := ParseFamily("tornado"); err == nil {
		t.Error("ParseFamily accepted an unknown family")
	}
}

// TestDeterministicFingerprint is the core determinism contract: the same
// config yields a byte-identical scenario, run to run and at any
// parallel.Map worker count.
func TestDeterministicFingerprint(t *testing.T) {
	for _, f := range Families() {
		cfg := Default(f, 4, 4, 40, 77)
		s1, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		s2, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !bytes.Equal(s1.Fingerprint(), s2.Fingerprint()) {
			t.Errorf("%s: two generations of the same config differ", f)
		}
	}

	// Across worker counts: generate every family through parallel.Map at
	// 1 and 4 workers and compare fingerprints position by position.
	gen := func(jobs int) [][]byte {
		fams := Families()
		fps, err := parallel.Map(jobs, len(fams), func(i int) ([]byte, error) {
			s, err := Generate(Default(fams[i], 4, 4, 40, 77))
			if err != nil {
				return nil, err
			}
			return s.Fingerprint(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fps
	}
	serial, wide := gen(1), gen(4)
	for i := range serial {
		if !bytes.Equal(serial[i], wide[i]) {
			t.Errorf("family %s: fingerprint differs between 1 and 4 workers", Families()[i])
		}
	}
}

// TestGeneratedConnectionsFeasible is the property test behind the
// generator contract: every emitted connection has a replay-admissible
// rate within link capacity and a latency budget the clamp pass deems
// analytically reachable, in every family.
func TestGeneratedConnectionsFeasible(t *testing.T) {
	for _, f := range Families() {
		cfg := Default(f, 6, 6, 150, 42)
		s, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got := s.Cfg // post-default config
		if len(s.UseCase.Connections) != cfg.Conns {
			t.Errorf("%s: %d connections, want %d", f, len(s.UseCase.Connections), cfg.Conns)
		}
		if err := s.UseCase.Validate(); err != nil {
			t.Errorf("%s: generated use case invalid: %v", f, err)
		}
		for _, c := range s.UseCase.Connections {
			// Replay-admissible: quantisation is idempotent exactly on
			// admissible rates.
			if q := QuantizeRateMBps(c.BandwidthMBps, got.FreqMHz, got.WordBytes); q != c.BandwidthMBps {
				t.Errorf("%s conn %d: rate %.4f MB/s not replay-admissible (quantises to %.4f)",
					f, c.ID, c.BandwidthMBps, q)
			}
			// Within link capacity: the rate's slot need fits the table.
			slots, err := analysis.SlotsForBandwidth(c.BandwidthMBps, got.FreqMHz, got.WordBytes, got.TableSize, false)
			if err != nil {
				t.Errorf("%s conn %d: rate %.2f MB/s exceeds link capacity: %v", f, c.ID, c.BandwidthMBps, err)
			} else if slots > got.TableSize {
				t.Errorf("%s conn %d: needs %d slots, table has %d", f, c.ID, slots, got.TableSize)
			}
			if c.BandwidthMBps < got.MinRateMBps/2 {
				t.Errorf("%s conn %d: rate %.2f far below the configured band min %.2f",
					f, c.ID, c.BandwidthMBps, got.MinRateMBps)
			}
			if c.MaxLatencyNs <= 0 {
				t.Errorf("%s conn %d: nonpositive latency budget", f, c.ID)
			}
		}
	}
}

// TestSeedsDiffer guards against a degenerate generator: different seeds
// must produce different workloads.
func TestSeedsDiffer(t *testing.T) {
	a, err := Generate(Default(Uniform, 4, 4, 30, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(Uniform, 4, 4, 30, 2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Fingerprint(), b.Fingerprint()) {
		t.Error("seeds 1 and 2 produced identical scenarios")
	}
}

func TestQuantizeAdmissible(t *testing.T) {
	rates := AdmissibleRatesMBps(500, 4)
	if len(rates) == 0 {
		t.Fatal("no admissible rates")
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] >= rates[i-1] {
			t.Fatalf("admissible rates not strictly descending at %d: %v", i, rates[:i+1])
		}
	}
	for _, r := range rates {
		if q := QuantizeRateMBps(r, 500, 4); q != r {
			t.Errorf("admissible rate %.4f quantises to %.4f", r, q)
		}
	}
	// Rounding is downward onto a member, floored at the smallest.
	for _, in := range []float64{rates[0] * 2, (rates[0] + rates[1]) / 2, rates[len(rates)-1] / 3, 0.0001} {
		q := QuantizeRateMBps(in, 500, 4)
		found := false
		for _, r := range rates {
			if q == r {
				found = true
			}
		}
		if !found {
			t.Errorf("QuantizeRateMBps(%.4f) = %.4f, not an admissible rate", in, q)
		}
		if q > in && in >= rates[len(rates)-1] {
			t.Errorf("QuantizeRateMBps(%.4f) = %.4f rounded up", in, q)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Family: "tornado", Cols: 4, Rows: 4, Conns: 10}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Generate(Config{Family: Uniform, Cols: 1, Rows: 1, Conns: 10}); err == nil {
		t.Error("degenerate mesh accepted")
	}
}
