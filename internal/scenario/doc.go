// Package scenario generates large-scale, seed-parameterised workloads —
// the growth path past the paper's Section VII use case (4x3 mesh, 70
// IPs, 200 connections) towards 16x16/32x32 meshes with thousands of
// connections.
//
// Five generator families cover the standard NoC evaluation traffic
// patterns (Indrusiak & Burns, "Real-Time Guarantees in Routerless
// Networks-on-Chip", motivates the synthetic set; the dataflow family
// derives rates from internal/dataflow HSDF models):
//
//   - Uniform: endpoints drawn uniformly at random, the classic
//     uniform-random benchmark.
//   - Hotspot: a fraction of the traffic converges on a few hotspot IPs
//     (shared memories, DRAM controllers).
//   - Transpose: the IP at tile (x, y) talks to the IP at (y, x), the
//     adversarial pattern for dimension-ordered routing.
//   - Multimedia: pipelines of heavy streaming connections (producer to
//     consumer chains) plus low-rate control channels, the bursty
//     multimedia SoC shape of the paper's application domain.
//   - Dataflow: connections are the edges of per-application HSDF graphs;
//     each rate follows from the graph's steady-state throughput (its
//     maximum cycle ratio) times the tokens it moves per iteration.
//
// Every family is deterministic in (Config.Seed, parameters): the same
// config yields a byte-identical use case on any machine and at any
// worker count (there is no map iteration and a single rand stream per
// generation). Two post-passes keep the output usable at scale:
//
//   - Rate quantisation (QuantizeRateMBps) rounds every bandwidth
//     requirement down to a replay-admissible rate — m/2^r words per
//     cycle, denominator at most MaxReplayDenominator — generalising the
//     Section VII quantiser (experiments.Sec7QuantizeRateMBps) to any
//     frequency and word width, so generated CBR sweeps engage the
//     hyperperiod replay fast path (internal/replay).
//   - Latency clamping (ClampLatencyBudgets) raises each budget to what
//     the connection's own bandwidth reservation can physically deliver
//     on its worst minimal route, keeping thousands of independent draws
//     jointly allocatable (the same negotiation Section VII documents).
//
// The output is a plain *spec.UseCase with IPs pre-mapped one-per-NI, so
// everything downstream — allocation (internal/slots), construction
// (internal/core), auditing (internal/audit) — consumes scenarios exactly
// like hand-written specs.
package scenario
