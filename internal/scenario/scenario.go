package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/spec"
	"repro/internal/topology"
)

// A Family names one generator.
type Family string

// The generator families. See the package comment for what each models.
const (
	Uniform    Family = "uniform"
	Hotspot    Family = "hotspot"
	Transpose  Family = "transpose"
	Multimedia Family = "multimedia"
	Dataflow   Family = "dataflow"
)

// Families returns every generator family, in documentation order.
func Families() []Family {
	return []Family{Uniform, Hotspot, Transpose, Multimedia, Dataflow}
}

// ParseFamily resolves a family name.
func ParseFamily(s string) (Family, error) {
	for _, f := range Families() {
		if string(f) == s {
			return f, nil
		}
	}
	return "", fmt.Errorf("scenario: unknown family %q (uniform | hotspot | transpose | multimedia | dataflow)", s)
}

// Config parameterises Generate. Zero-valued fields are filled by
// sensible scale-dependent defaults (see applyDefaults); Family, Cols,
// Rows, Conns and Seed are the required knobs.
type Config struct {
	Family Family `json:"family"`
	Name   string `json:"name"` // default "<family>-<cols>x<rows>-s<seed>"
	Seed   int64  `json:"seed"`

	Cols         int `json:"cols,omitempty"` // mesh dimensions
	Rows         int `json:"rows,omitempty"`
	NIsPerRouter int `json:"nis_per_router,omitempty"`
	Apps         int `json:"apps,omitempty"`
	Conns        int `json:"conns,omitempty"`

	// FreqMHz, WordBytes and TableSize are the network parameters the
	// generated requirements must be feasible against (rate quantisation
	// and latency clamping are computed for exactly these values).
	FreqMHz   float64 `json:"freq_mhz,omitempty"`
	WordBytes int     `json:"word_bytes,omitempty"`
	TableSize int     `json:"table_size,omitempty"`

	// Rates are drawn log-uniformly in [MinRateMBps, MaxRateMBps], with
	// a HeavyFraction of the connections drawn from the upper half of
	// the band (the many-modest-channels-plus-few-heavy-streams shape of
	// real SoC traffic; see spec.RandomConfig).
	MinRateMBps   float64 `json:"min_rate_mbps,omitempty"`
	MaxRateMBps   float64 `json:"max_rate_mbps,omitempty"`
	HeavyFraction float64 `json:"heavy_fraction,omitempty"`

	// HotspotCount and HotspotFraction shape the Hotspot family: the
	// fraction of connections whose destination is one of the count
	// hotspot IPs.
	HotspotCount    int     `json:"hotspot_count,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`

	// StreamLength is the Multimedia pipeline depth and the Dataflow
	// ring size.
	StreamLength int `json:"stream_length,omitempty"`

	// Latency budgets are drawn log-uniformly in
	// [MinLatencyNs, MaxLatencyNs] before clamping.
	MinLatencyNs float64 `json:"min_latency_ns,omitempty"`
	MaxLatencyNs float64 `json:"max_latency_ns,omitempty"`

	// Quantize rounds every rate down to a replay-admissible value
	// (QuantizeRateMBps) so CBR simulations of the scenario engage the
	// hyperperiod replay fast path. Default on (disable with
	// NoQuantize).
	NoQuantize bool `json:"no_quantize,omitempty"`
	// NoClampLatency skips raising infeasible latency budgets
	// (ClampLatencyBudgets). Default on; disabling it makes large
	// scenarios analytically unallocatable with high probability.
	NoClampLatency bool `json:"no_clamp_latency,omitempty"`
}

// Default returns the documented configuration of a family at the given
// scale: one IP per NI (2 NIs per router), 4 applications, a 10-100
// Mbyte/s rate band with a 10% heavy tail, 500 MHz, 4-byte words, and a
// table of 64 slots (128 for meshes beyond 8x8, where finer bandwidth
// granularity is what lets a thousand small requirements co-exist).
func Default(f Family, cols, rows, conns int, seed int64) Config {
	cfg := Config{Family: f, Seed: seed, Cols: cols, Rows: rows, Conns: conns}
	cfg.applyDefaults()
	return cfg
}

func (c *Config) applyDefaults() {
	if c.NIsPerRouter == 0 {
		c.NIsPerRouter = 2
	}
	if c.Apps == 0 {
		c.Apps = 4
	}
	if c.FreqMHz == 0 {
		c.FreqMHz = 500
	}
	if c.WordBytes == 0 {
		c.WordBytes = 4
	}
	if c.TableSize == 0 {
		if c.Cols*c.Rows > 64 {
			c.TableSize = 128
		} else {
			c.TableSize = 64
		}
	}
	if c.MinRateMBps == 0 {
		c.MinRateMBps = 10
	}
	if c.MaxRateMBps == 0 {
		c.MaxRateMBps = 100
	}
	if c.HeavyFraction == 0 {
		c.HeavyFraction = 0.1
	}
	if c.HotspotCount == 0 {
		n := c.Cols * c.Rows * c.NIsPerRouter / 64
		if n < 2 {
			n = 2
		}
		c.HotspotCount = n
	}
	if c.HotspotFraction == 0 {
		c.HotspotFraction = 0.3
	}
	if c.StreamLength == 0 {
		c.StreamLength = 4
	}
	if c.MinLatencyNs == 0 {
		c.MinLatencyNs = 500
	}
	if c.MaxLatencyNs == 0 {
		c.MaxLatencyNs = 5000
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s-%dx%d-s%d", c.Family, c.Cols, c.Rows, c.Seed)
	}
}

func (c *Config) validate() error {
	if c.Cols < 2 || c.Rows < 2 {
		return fmt.Errorf("scenario: mesh %dx%d is below the 2x2 minimum", c.Cols, c.Rows)
	}
	if c.Conns < 1 {
		return fmt.Errorf("scenario: %d connections requested", c.Conns)
	}
	if _, err := ParseFamily(string(c.Family)); err != nil {
		return err
	}
	if c.MinRateMBps <= 0 || c.MaxRateMBps < c.MinRateMBps {
		return fmt.Errorf("scenario: bad rate band [%g, %g]", c.MinRateMBps, c.MaxRateMBps)
	}
	if c.MinLatencyNs <= 0 || c.MaxLatencyNs < c.MinLatencyNs {
		return fmt.Errorf("scenario: bad latency band [%g, %g]", c.MinLatencyNs, c.MaxLatencyNs)
	}
	return nil
}

// A Scenario is one generated workload plus the parameters it was
// generated against. The use case's IPs are already mapped one-per-NI.
type Scenario struct {
	Cfg     Config
	UseCase *spec.UseCase
}

// Mesh builds a fresh mesh of the scenario's dimensions. Callers own it
// (core.PrepareTopology mutates pipeline-stage counts per clocking mode),
// so every build gets its own.
func (s *Scenario) Mesh() *topology.Mesh {
	return topology.NewMesh(s.Cfg.Cols, s.Cfg.Rows, s.Cfg.NIsPerRouter)
}

// Fingerprint returns a canonical byte encoding of the scenario — the
// determinism contract: equal configs yield equal fingerprints on any
// machine at any worker count.
func (s *Scenario) Fingerprint() []byte {
	b, err := json.Marshal(struct {
		Cfg     Config
		UseCase *spec.UseCase
	}{s.Cfg, s.UseCase})
	if err != nil {
		panic(fmt.Sprintf("scenario: fingerprint marshal: %v", err)) // struct marshal cannot fail
	}
	return b
}

// Generate produces the scenario for the config: endpoints and rates per
// the family, replay-admissible rate quantisation, latency-budget
// clamping, and a full feasibility check (every rate within link
// capacity, every budget analytically reachable).
func Generate(cfg Config) (*Scenario, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := topology.NewMesh(cfg.Cols, cfg.Rows, cfg.NIsPerRouter)
	uc := &spec.UseCase{Name: cfg.Name, Apps: cfg.Apps}
	for x := 0; x < cfg.Cols; x++ {
		for y := 0; y < cfg.Rows; y++ {
			for k := 0; k < cfg.NIsPerRouter; k++ {
				uc.IPs = append(uc.IPs, spec.IP{
					ID:   spec.IPID(len(uc.IPs)),
					Name: fmt.Sprintf("ip%d.%d.%d", x, y, k),
					NI:   m.NIAt(x, y, k),
				})
			}
		}
	}
	g := &gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), uc: uc}
	var err error
	switch cfg.Family {
	case Uniform:
		err = g.uniform()
	case Hotspot:
		err = g.hotspot()
	case Transpose:
		err = g.transpose()
	case Multimedia:
		err = g.multimedia()
	case Dataflow:
		err = g.dataflow()
	}
	if err != nil {
		return nil, err
	}
	if !cfg.NoQuantize {
		for i := range uc.Connections {
			uc.Connections[i].BandwidthMBps = QuantizeRateMBps(uc.Connections[i].BandwidthMBps, cfg.FreqMHz, cfg.WordBytes)
		}
	}
	if !cfg.NoClampLatency {
		if err := ClampLatencyBudgets(uc, m, cfg.FreqMHz, cfg.WordBytes, cfg.TableSize); err != nil {
			return nil, err
		}
	}
	if err := uc.Validate(); err != nil {
		return nil, err
	}
	// Feasibility: every rate must fit the link (and slot-table) capacity.
	for _, c := range uc.Connections {
		if _, err := analysis.SlotsForBandwidth(c.BandwidthMBps, cfg.FreqMHz, cfg.WordBytes, cfg.TableSize, false); err != nil {
			return nil, fmt.Errorf("scenario: connection %d: %w", c.ID, err)
		}
	}
	return &Scenario{Cfg: cfg, UseCase: uc}, nil
}

// gen carries the single rand stream one generation uses — the package's
// determinism hinges on every draw coming from here, in program order.
type gen struct {
	cfg Config
	rng *rand.Rand
	uc  *spec.UseCase
}

func (g *gen) logUniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return math.Exp(math.Log(lo) + g.rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// drawRate draws from the configured band: a HeavyFraction of draws from
// the upper half, the rest from the lower.
func (g *gen) drawRate() float64 {
	mid := math.Sqrt(g.cfg.MinRateMBps * g.cfg.MaxRateMBps)
	if g.rng.Float64() < g.cfg.HeavyFraction {
		return g.logUniform(mid, g.cfg.MaxRateMBps)
	}
	return g.logUniform(g.cfg.MinRateMBps, mid)
}

func (g *gen) drawLatency() float64 {
	return g.logUniform(g.cfg.MinLatencyNs, g.cfg.MaxLatencyNs)
}

// add appends one connection with the next id and the given endpoints.
func (g *gen) add(src, dst spec.IPID, app spec.AppID, rate, latNs float64) {
	g.uc.Connections = append(g.uc.Connections, spec.Connection{
		ID:            phit.ConnID(len(g.uc.Connections) + 1),
		App:           app,
		Src:           src,
		Dst:           dst,
		BandwidthMBps: rate,
		MaxLatencyNs:  latNs,
	})
}

// pair draws a uniform random (src, dst) with src != dst.
func (g *gen) pair() (spec.IPID, spec.IPID) {
	n := len(g.uc.IPs)
	src := g.rng.Intn(n)
	dst := g.rng.Intn(n - 1)
	if dst >= src {
		dst++
	}
	return spec.IPID(src), spec.IPID(dst)
}

func (g *gen) uniform() error {
	for i := 0; i < g.cfg.Conns; i++ {
		src, dst := g.pair()
		g.add(src, dst, spec.AppID(g.rng.Intn(g.cfg.Apps)), g.drawRate(), g.drawLatency())
	}
	return nil
}

func (g *gen) hotspot() error {
	n := len(g.uc.IPs)
	hot := g.rng.Perm(n)[:g.cfg.HotspotCount]
	for i := 0; i < g.cfg.Conns; i++ {
		var src, dst spec.IPID
		if g.rng.Float64() < g.cfg.HotspotFraction {
			dst = spec.IPID(hot[g.rng.Intn(len(hot))])
			s := g.rng.Intn(n - 1)
			if s >= int(dst) {
				s++
			}
			src = spec.IPID(s)
		} else {
			src, dst = g.pair()
		}
		g.add(src, dst, spec.AppID(g.rng.Intn(g.cfg.Apps)), g.drawRate(), g.drawLatency())
	}
	return nil
}

// transpose pairs the IP at tile (x, y) with the IP at (y mod cols,
// x mod rows), preserving the NI index — the adversarial pattern for
// dimension-ordered routing (all traffic crosses the diagonal). Tiles
// that map to themselves are skipped; connection count past one full
// sweep of the IPs wraps around with fresh rate draws.
func (g *gen) transpose() error {
	cfg := g.cfg
	partner := func(id int) int {
		k := id % cfg.NIsPerRouter
		tile := id / cfg.NIsPerRouter
		y := tile % cfg.Rows
		x := tile / cfg.Rows
		tx, ty := y%cfg.Cols, x%cfg.Rows
		return (tx*cfg.Rows+ty)*cfg.NIsPerRouter + k
	}
	usable := 0
	for id := range g.uc.IPs {
		if partner(id) != id {
			usable++
		}
	}
	if usable == 0 {
		return fmt.Errorf("scenario: transpose on %dx%d maps every IP to itself", cfg.Cols, cfg.Rows)
	}
	for id := 0; len(g.uc.Connections) < cfg.Conns; id = (id + 1) % len(g.uc.IPs) {
		p := partner(id)
		if p == id {
			continue
		}
		g.add(spec.IPID(id), spec.IPID(p), spec.AppID(g.rng.Intn(cfg.Apps)), g.drawRate(), g.drawLatency())
	}
	return nil
}

// multimedia emits producer-consumer pipelines: chains of StreamLength
// distinct IPs joined by heavy streaming connections (upper half of the
// rate band), each chain closed by a low-rate control channel from sink
// back to source. Each chain belongs to one application.
func (g *gen) multimedia() error {
	cfg := g.cfg
	mid := math.Sqrt(cfg.MinRateMBps * cfg.MaxRateMBps)
	chain := 0
	for len(g.uc.Connections) < cfg.Conns {
		ips := g.distinctIPs(cfg.StreamLength)
		app := spec.AppID(chain % cfg.Apps)
		for i := 0; i+1 < len(ips) && len(g.uc.Connections) < cfg.Conns; i++ {
			g.add(ips[i], ips[i+1], app, g.logUniform(mid, cfg.MaxRateMBps), g.drawLatency())
		}
		if len(g.uc.Connections) < cfg.Conns {
			g.add(ips[len(ips)-1], ips[0], app, g.logUniform(cfg.MinRateMBps, mid), g.drawLatency())
		}
		chain++
	}
	return nil
}

// dataflow derives connections from per-application HSDF rings
// (internal/dataflow): StreamLength actors with log-uniform firing
// durations, single-token channels of capacity 2 between neighbours. The
// ring's steady-state throughput is its maximum cycle ratio; every edge
// moves a drawn number of words per iteration, so its rate is
// throughput x words x word width — requirements that follow from a
// formal model rather than a distribution.
func (g *gen) dataflow() error {
	cfg := g.cfg
	ring := 0
	for len(g.uc.Connections) < cfg.Conns {
		n := cfg.StreamLength
		df := dataflow.New()
		actors := make([]dataflow.ActorID, n)
		for i := range actors {
			// Durations in ns, sized so ring throughput lands the edge
			// rates inside the configured band for typical word counts.
			actors[i] = df.AddActor(fmt.Sprintf("a%d", i), g.logUniform(50, 400))
		}
		for i := range actors {
			df.AddChannel(actors[i], actors[(i+1)%n], 1, 2, 0)
		}
		thrPerNs, err := df.ThroughputHz() // fires per ns (durations are ns)
		if err != nil {
			return fmt.Errorf("scenario: dataflow ring: %w", err)
		}
		ips := g.distinctIPs(n)
		app := spec.AppID(ring % cfg.Apps)
		for i := range actors {
			if len(g.uc.Connections) >= cfg.Conns {
				break
			}
			// Words per iteration is the integer that lands the edge's
			// model-derived rate nearest a fresh draw from the band — the
			// rate follows from the ring's throughput, the band only picks
			// the token granularity.
			perWord := thrPerNs * 1e3 * float64(cfg.WordBytes)
			words := int(g.drawRate()/perWord + 0.5)
			if words < 1 {
				words = 1
			}
			rate := perWord * float64(words)
			if rate < cfg.MinRateMBps {
				rate = cfg.MinRateMBps
			}
			if rate > cfg.MaxRateMBps {
				rate = cfg.MaxRateMBps
			}
			g.add(ips[i], ips[(i+1)%n], app, rate, g.drawLatency())
		}
		ring++
	}
	return nil
}

// distinctIPs draws count distinct IP ids (count is capped at the IP
// population).
func (g *gen) distinctIPs(count int) []spec.IPID {
	n := len(g.uc.IPs)
	if count > n {
		count = n
	}
	seen := make([]bool, n)
	out := make([]spec.IPID, 0, count)
	for len(out) < count {
		id := g.rng.Intn(n)
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, spec.IPID(id))
	}
	return out
}

// ClampLatencyBudgets raises each connection's latency budget to the
// minimum its own bandwidth reservation can deliver on its worst minimal
// route (XY or YX) — the generalisation of the Section VII budget
// negotiation (see experiments.Sec7UseCase): a TDM connection's
// worst-case wait shrinks only by owning more slots, so thousands of
// independent (rate, budget) draws are jointly allocatable only when
// tight budgets ride connections that already own slots. The clamp allows
// roughly twice the bandwidth reservation (kCap = bwSlots+1) plus a 15%
// path margin, word-level service (CBR).
func ClampLatencyBudgets(uc *spec.UseCase, m *topology.Mesh, fMHz float64, wordBytes, tableSize int) error {
	cycleNs := 1e3 / fMHz
	for i := range uc.Connections {
		c := &uc.Connections[i]
		srcIP, err := uc.IP(c.Src)
		if err != nil {
			return err
		}
		dstIP, err := uc.IP(c.Dst)
		if err != nil {
			return err
		}
		worst := 0
		for _, r := range []func(*topology.Mesh, topology.NodeID, topology.NodeID) (*route.Path, error){route.XY, route.YX} {
			p, err := r(m, srcIP.NI, dstIP.NI)
			if err != nil {
				return err
			}
			if p.TotalShift > worst {
				worst = p.TotalShift
			}
		}
		fixed := float64(analysis.FixedPathCycles(&route.Path{TotalShift: worst})) * cycleNs
		bwSlots, err := analysis.SlotsForBandwidth(c.BandwidthMBps, fMHz, wordBytes, tableSize, false)
		if err != nil {
			return fmt.Errorf("scenario: connection %d: %w", c.ID, err)
		}
		kCap := bwSlots + 1
		gapMin := (tableSize + kCap - 1) / kCap
		minNs := fixed*1.15 + float64(phit.FlitWords*(gapMin+1))*cycleNs
		if c.MaxLatencyNs < minNs {
			c.MaxLatencyNs = minNs
		}
	}
	return nil
}
