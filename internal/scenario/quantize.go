package scenario

import (
	"sort"

	"repro/internal/phit"
)

// MaxReplayDenominator is the largest power-of-two denominator of the
// words-per-cycle rational a quantised rate may reduce to. The
// whole-network hyperperiod of a CBR workload is lcm over generators of
// their pattern periods and the slot revolution; capping the denominator
// at 256 keeps that hyperperiod at lcm(256, FlitWords*TableSize) cycles —
// small enough for the replay recorder's arena at any supported table
// size (the Section VII quantiser uses the same bound).
const MaxReplayDenominator = 256

// AdmissibleRatesMBps returns, descending, the replay-admissible CBR
// rates at the given frequency and word width: every rate whose
// words-per-cycle value is m/2^r with m in {1, 3} and 2^r at most
// MaxReplayDenominator, capped at the guaranteed payload capacity of a
// fully-owned link (PayloadWordsPerSlot of every FlitWords-word flit).
// Arbitrary byte-exact rates, by contrast, reduce to rationals with
// denominators of billions of cycles — periodic in principle but far past
// any arena worth recording, so the replay compiler classifies them
// aperiodic and falls back to cycle-accurate execution.
func AdmissibleRatesMBps(fMHz float64, wordBytes int) []float64 {
	cap := float64(phit.FlitWords-1) / float64(phit.FlitWords) // payload words per cycle
	var out []float64
	for den := 1; den <= MaxReplayDenominator; den *= 2 {
		for _, m := range []float64{1, 3} {
			wpc := m / float64(den)
			if wpc > cap {
				continue
			}
			out = append(out, wpc*fMHz*float64(wordBytes))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	// m/2^r values never collide across (m, r) pairs, so no dedup needed.
	return out
}

// QuantizeRateMBps rounds a bandwidth requirement down to the nearest
// replay-admissible rate at the given frequency and word width (never
// below the smallest admissible rate). Rounding down preserves allocation
// feasibility: lowering a requirement can only free slots. This is the
// per-frequency generalisation of experiments.Sec7QuantizeRateMBps (which
// is the 500 MHz / 4-byte instance).
func QuantizeRateMBps(rateMBps, fMHz float64, wordBytes int) float64 {
	rates := AdmissibleRatesMBps(fMHz, wordBytes)
	for _, r := range rates {
		if r <= rateMBps {
			return r
		}
	}
	return rates[len(rates)-1]
}
