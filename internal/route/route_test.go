package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mesh(t *testing.T) *topology.Mesh {
	t.Helper()
	return topology.NewMesh(4, 3, 2)
}

func TestXYBasics(t *testing.T) {
	m := mesh(t)
	src := m.NIAt(0, 0, 0)
	dst := m.NIAt(2, 2, 1)
	p, err := XY(m, src, dst)
	if err != nil {
		t.Fatalf("XY: %v", err)
	}
	if err := Validate(m.Graph, p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// NI -> R(0,0) -> R(1,0) -> R(2,0) -> R(2,1) -> R(2,2) -> NI:
	// 6 links, 5 routers.
	if len(p.Links) != 6 || p.Hops() != 5 {
		t.Fatalf("links=%d hops=%d", len(p.Links), p.Hops())
	}
	// X moves first.
	if p.Ports[0] != topology.East || p.Ports[1] != topology.East {
		t.Errorf("XY did not move east first: %v", p.Ports)
	}
	if p.Ports[2] != topology.South || p.Ports[3] != topology.South {
		t.Errorf("XY did not then move south: %v", p.Ports)
	}
	// Shifts: one per router hop with no pipeline stages.
	for k, s := range p.Shift {
		if s != k {
			t.Errorf("Shift[%d] = %d, want %d", k, s, k)
		}
	}
	if p.TotalShift != 5 {
		t.Errorf("TotalShift = %d, want 5", p.TotalShift)
	}
}

func TestYXDiffersFromXY(t *testing.T) {
	m := mesh(t)
	src, dst := m.NIAt(0, 0, 0), m.NIAt(2, 2, 0)
	xy, _ := XY(m, src, dst)
	yx, err := YX(m, src, dst)
	if err != nil {
		t.Fatalf("YX: %v", err)
	}
	if err := Validate(m.Graph, yx); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if yx.Ports[0] != topology.South {
		t.Errorf("YX did not move south first: %v", yx.Ports)
	}
	if len(xy.Links) != len(yx.Links) {
		t.Error("XY and YX lengths differ")
	}
	same := true
	for i := range xy.Links {
		if xy.Links[i] != yx.Links[i] {
			same = false
		}
	}
	if same {
		t.Error("XY and YX identical for a diagonal pair")
	}
}

func TestRouteErrors(t *testing.T) {
	m := mesh(t)
	ni := m.NIAt(0, 0, 0)
	r := m.RouterAt(0, 0)
	if _, err := XY(m, ni, ni); err == nil {
		t.Error("XY accepted equal endpoints")
	}
	if _, err := XY(m, r, ni); err == nil {
		t.Error("XY accepted a router endpoint")
	}
	if _, err := BFS(m.Graph, ni, ni); err == nil {
		t.Error("BFS accepted equal endpoints")
	}
}

func TestBFSMatchesXYLength(t *testing.T) {
	m := mesh(t)
	src, dst := m.NIAt(0, 2, 1), m.NIAt(3, 0, 0)
	xy, _ := XY(m, src, dst)
	bfs, err := BFS(m.Graph, src, dst)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if err := Validate(m.Graph, bfs); err != nil {
		t.Fatalf("Validate BFS: %v", err)
	}
	if len(bfs.Links) != len(xy.Links) {
		t.Errorf("BFS %d links vs XY %d", len(bfs.Links), len(xy.Links))
	}
}

// TestRoutingQuick: for random NI pairs, XY, YX, BFS and all staircases
// are valid, minimal, and have correct shifts.
func TestRoutingQuick(t *testing.T) {
	m := mesh(t)
	nis := m.AllNIs()
	f := func(a, b uint8) bool {
		src := nis[int(a)%len(nis)]
		dst := nis[int(b)%len(nis)]
		if src == dst {
			return true
		}
		want := -1
		routes := []func() (*Path, error){
			func() (*Path, error) { return XY(m, src, dst) },
			func() (*Path, error) { return YX(m, src, dst) },
			func() (*Path, error) { return BFS(m.Graph, src, dst) },
		}
		for _, rf := range routes {
			p, err := rf()
			if err != nil {
				return false
			}
			if Validate(m.Graph, p) != nil {
				return false
			}
			if want == -1 {
				want = len(p.Links)
			} else if len(p.Links) != want {
				return false
			}
			if p.TotalShift != len(p.Links)-1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedShift(t *testing.T) {
	m := mesh(t)
	m.SetMeshPipelineStages(1)
	src, dst := m.NIAt(0, 0, 0), m.NIAt(2, 0, 0)
	p, err := XY(m, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Path: NI->R0 (0 stages), R0->R1 (1), R1->R2 (1), R2->NI (0).
	// Shifts: 0, 1, 3, 5; arrival shift 5.
	want := []int{0, 1, 3, 5}
	for k, s := range p.Shift {
		if s != want[k] {
			t.Errorf("Shift[%d] = %d, want %d", k, s, want[k])
		}
	}
	if p.TotalShift != 5 {
		t.Errorf("TotalShift = %d, want 5", p.TotalShift)
	}
}

func TestCandidatesDistinctAndValid(t *testing.T) {
	m := mesh(t)
	src, dst := m.NIAt(0, 0, 0), m.NIAt(3, 2, 1)
	cands, err := Candidates(m, src, dst, 6)
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	if len(cands) < 4 {
		t.Fatalf("only %d candidates for a diagonal pair", len(cands))
	}
	seen := map[string]bool{}
	minimal := len(cands[0].Links)
	for _, p := range cands {
		if err := Validate(m.Graph, p); err != nil {
			t.Errorf("candidate invalid: %v", err)
		}
		key := ""
		for _, l := range p.Links {
			key += string(rune(l)) + ","
		}
		if seen[key] {
			t.Error("duplicate candidate")
		}
		seen[key] = true
		if len(p.Links) != minimal && len(p.Links) != minimal+2 {
			t.Errorf("candidate length %d; want %d (minimal) or %d (detour)",
				len(p.Links), minimal, minimal+2)
		}
	}
}

func TestCandidatesSameColumnGetDetours(t *testing.T) {
	m := mesh(t)
	src, dst := m.NIAt(1, 0, 0), m.NIAt(1, 2, 0) // same column
	cands, err := Candidates(m, src, dst, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Fatalf("same-column pair got %d candidates; want minimal + 2 detours", len(cands))
	}
	if len(cands[1].Links) != len(cands[0].Links)+2 {
		t.Errorf("detour length %d vs minimal %d", len(cands[1].Links), len(cands[0].Links))
	}
}

func TestDetourErrors(t *testing.T) {
	m := mesh(t)
	if _, err := Detour(m, m.NIAt(0, 0, 0), m.NIAt(0, 0, 1), topology.East); err == nil {
		t.Error("Detour accepted same-router NIs")
	}
	if _, err := Detour(m, m.NIAt(0, 0, 0), m.NIAt(1, 0, 0), 7); err == nil {
		t.Error("Detour accepted a non-mesh direction")
	}
}

func TestValidateRejects(t *testing.T) {
	m := mesh(t)
	p, _ := XY(m, m.NIAt(0, 0, 0), m.NIAt(1, 1, 0))
	bad := *p
	bad.Links = bad.Links[:1]
	if err := Validate(m.Graph, &bad); err == nil {
		t.Error("Validate accepted a truncated path")
	}
	bad2 := *p
	bad2.Ports = append([]int(nil), p.Ports...)
	bad2.Ports[0] = 7
	if err := Validate(m.Graph, &bad2); err == nil {
		t.Error("Validate accepted a wrong port")
	}
}
