// Package route computes source routes through a NoC topology.
//
// aelite uses source routing: the whole route is decided at the source NI
// and encoded in the packet header as a sequence of output-port indices,
// one per router (paper Section III/IV). This package produces Path values
// that carry everything the rest of the system needs:
//
//   - the ordered links the flit occupies (for TDM slot accounting);
//   - the per-router output ports (for header encoding);
//   - the per-link TDM slot shift. A flit injected in slot s occupies link
//     k of its path in slot s + Shift[k]: every router adds one slot (its
//     3-cycle flit cycle) and every mesochronous link pipeline stage adds
//     one more (paper Section V).
//
// Cross-package contract: Candidates feeds the slots allocators their
// per-request path choices, and Shift/TotalShift must agree with the slot
// arithmetic in internal/slots and the fixed-latency terms in
// internal/analysis — the three packages share one shift convention.
package route
