package route

import (
	"fmt"

	"repro/internal/topology"
)

// A Path is a source route from a source NI to a destination NI.
type Path struct {
	Src, Dst topology.NodeID

	// Links lists the links traversed: NI->router, router->router...,
	// router->NI.
	Links []topology.LinkID

	// Ports lists the output-port index consumed at each router along
	// the way (len(Links)-1 entries); this is what the header encodes.
	Ports []int

	// Shift lists, per link, the TDM slot offset relative to the
	// injection slot at which the flit enters that link.
	Shift []int

	// TotalShift is the slot offset at which the flit arrives at the
	// destination NI: the last link's entry shift plus its pipeline
	// stages.
	TotalShift int
}

// Hops returns the number of routers traversed.
func (p *Path) Hops() int { return len(p.Ports) }

func (p *Path) String() string {
	return fmt.Sprintf("path(%d->%d, %d routers, shift %d)", p.Src, p.Dst, p.Hops(), p.TotalShift)
}

// finish derives Ports, Shift and TotalShift from Links.
func finish(g *topology.Graph, p *Path) *Path {
	p.Ports = p.Ports[:0]
	p.Shift = make([]int, len(p.Links))
	shift := 0
	for i, lid := range p.Links {
		l := g.Link(lid)
		if i > 0 {
			p.Ports = append(p.Ports, l.FromPort)
		}
		p.Shift[i] = shift
		shift += 1 + l.PipelineStages // router flit cycle + pipeline stages
	}
	// The final "+1" counted the destination NI as if it were a router
	// hop; arrival happens when the flit exits the last link's pipeline.
	last := g.Link(p.Links[len(p.Links)-1])
	p.TotalShift = p.Shift[len(p.Links)-1] + last.PipelineStages
	return p
}

// XY computes the dimension-ordered route (X first, then Y) between two
// NIs on a mesh. It is deterministic and deadlock-free, and is the routing
// used for the paper's Section VII experiment.
func XY(m *topology.Mesh, src, dst topology.NodeID) (*Path, error) {
	return dimensionOrder(m, src, dst, true)
}

// YX computes the Y-first dimension-ordered route; together with XY it
// gives the allocator a fallback path when slots on the XY route are
// exhausted.
func YX(m *topology.Mesh, src, dst topology.NodeID) (*Path, error) {
	return dimensionOrder(m, src, dst, false)
}

func dimensionOrder(m *topology.Mesh, src, dst topology.NodeID, xFirst bool) (*Path, error) {
	s, d := m.Node(src), m.Node(dst)
	if s.Kind != topology.NI || d.Kind != topology.NI {
		return nil, fmt.Errorf("route: endpoints must be NIs (got %s, %s)", s.Kind, d.Kind)
	}
	if src == dst {
		return nil, fmt.Errorf("route: source and destination NI are the same (%s)", s.Name)
	}
	p := &Path{Src: src, Dst: dst}
	p.Links = append(p.Links, m.OutLink(src, 0))

	cur := s.Router
	target := d.Router
	step := func(port int) error {
		l := m.OutLink(cur, port)
		if l == topology.Invalid {
			return fmt.Errorf("route: %s has no link on port %d", m.Node(cur).Name, port)
		}
		p.Links = append(p.Links, l)
		cur = m.Link(l).To
		return nil
	}
	moveX := func() error {
		for m.Node(cur).X != m.Node(target).X {
			port := topology.East
			if m.Node(cur).X > m.Node(target).X {
				port = topology.West
			}
			if err := step(port); err != nil {
				return err
			}
		}
		return nil
	}
	moveY := func() error {
		for m.Node(cur).Y != m.Node(target).Y {
			port := topology.South
			if m.Node(cur).Y > m.Node(target).Y {
				port = topology.North
			}
			if err := step(port); err != nil {
				return err
			}
		}
		return nil
	}
	var err error
	if xFirst {
		err = moveX()
		if err == nil {
			err = moveY()
		}
	} else {
		err = moveY()
		if err == nil {
			err = moveX()
		}
	}
	if err != nil {
		return nil, err
	}
	// Final hop: router port to the destination NI.
	niLink := m.InLink(dst, 0)
	if niLink == topology.Invalid {
		return nil, fmt.Errorf("route: NI %s has no input link", d.Name)
	}
	l := m.Link(niLink)
	if l.From != cur {
		return nil, fmt.Errorf("route: dimension-order route ended at %s, but %s attaches to %s",
			m.Node(cur).Name, d.Name, m.Node(l.From).Name)
	}
	p.Links = append(p.Links, niLink)
	return finish(m.Graph, p), nil
}

// BFS computes a minimal-hop route between two NIs on an arbitrary graph.
// Ties are broken by link id, so the result is deterministic.
func BFS(g *topology.Graph, src, dst topology.NodeID) (*Path, error) {
	s, d := g.Node(src), g.Node(dst)
	if s.Kind != topology.NI || d.Kind != topology.NI {
		return nil, fmt.Errorf("route: endpoints must be NIs (got %s, %s)", s.Kind, d.Kind)
	}
	if src == dst {
		return nil, fmt.Errorf("route: source and destination NI are the same (%s)", s.Name)
	}
	// Breadth-first search over nodes, tracking the inbound link.
	prev := make(map[topology.NodeID]topology.LinkID, g.NumNodes())
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []topology.NodeID{src}
	for len(queue) > 0 && !visited[dst] {
		n := queue[0]
		queue = queue[1:]
		node := g.Node(n)
		// NIs other than src/dst do not forward traffic.
		if node.Kind == topology.NI && n != src {
			continue
		}
		for port := 0; port < node.Ports; port++ {
			lid := g.OutLink(n, port)
			if lid == topology.Invalid {
				continue
			}
			to := g.Link(lid).To
			if !visited[to] {
				visited[to] = true
				prev[to] = lid
				queue = append(queue, to)
			}
		}
	}
	if !visited[dst] {
		return nil, fmt.Errorf("route: no path from %s to %s", s.Name, d.Name)
	}
	var rev []topology.LinkID
	for n := dst; n != src; {
		l := prev[n]
		rev = append(rev, l)
		n = g.Link(l).From
	}
	p := &Path{Src: src, Dst: dst}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Links = append(p.Links, rev[i])
	}
	return finish(g, p), nil
}

// Validate checks that a path is well-formed over the given graph:
// contiguous links, NI endpoints, and ports matching the links.
func Validate(g *topology.Graph, p *Path) error {
	if len(p.Links) < 2 {
		return fmt.Errorf("route: path needs at least 2 links, has %d", len(p.Links))
	}
	first, last := g.Link(p.Links[0]), g.Link(p.Links[len(p.Links)-1])
	if first.From != p.Src {
		return fmt.Errorf("route: path starts at node %d, want src %d", first.From, p.Src)
	}
	if last.To != p.Dst {
		return fmt.Errorf("route: path ends at node %d, want dst %d", last.To, p.Dst)
	}
	for i := 1; i < len(p.Links); i++ {
		a, b := g.Link(p.Links[i-1]), g.Link(p.Links[i])
		if a.To != b.From {
			return fmt.Errorf("route: links %d and %d are not contiguous", a.ID, b.ID)
		}
		if g.Node(a.To).Kind != topology.Router {
			return fmt.Errorf("route: intermediate node %s is not a router", g.Node(a.To).Name)
		}
		if p.Ports[i-1] != b.FromPort {
			return fmt.Errorf("route: port %d at hop %d does not match link port %d",
				p.Ports[i-1], i-1, b.FromPort)
		}
	}
	return nil
}
