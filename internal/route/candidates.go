package route

import (
	"fmt"

	"repro/internal/topology"
)

// Staircase computes a minimal route that travels turnAfter hops in the X
// dimension, then all of Y, then the remaining X — a family that
// interpolates between XY (turnAfter = full X distance) and YX
// (turnAfter = 0). All staircase routes are minimal; offering several to
// the slot allocator defeats the alignment fragmentation that a single
// dimension-ordered path suffers on loaded meshes.
//
// Note: unlike pure XY/YX, mixed staircases are not deadlock-free under
// wormhole routing — but aelite needs no such guarantee: contention-free
// TDM never blocks in-network, so any minimal route is safe (one more
// freedom the GS-only architecture buys).
func Staircase(m *topology.Mesh, src, dst topology.NodeID, turnAfter int) (*Path, error) {
	s, d := m.Node(src), m.Node(dst)
	if s.Kind != topology.NI || d.Kind != topology.NI {
		return nil, fmt.Errorf("route: endpoints must be NIs (got %s, %s)", s.Kind, d.Kind)
	}
	if src == dst {
		return nil, fmt.Errorf("route: source and destination NI are the same (%s)", s.Name)
	}
	p := &Path{Src: src, Dst: dst}
	p.Links = append(p.Links, m.OutLink(src, 0))
	cur := s.Router
	target := d.Router

	step := func(port int) error {
		l := m.OutLink(cur, port)
		if l == topology.Invalid {
			return fmt.Errorf("route: %s has no link on port %d", m.Node(cur).Name, port)
		}
		p.Links = append(p.Links, l)
		cur = m.Link(l).To
		return nil
	}
	xPort := func() int {
		if m.Node(cur).X < m.Node(target).X {
			return topology.East
		}
		return topology.West
	}
	yPort := func() int {
		if m.Node(cur).Y < m.Node(target).Y {
			return topology.South
		}
		return topology.North
	}
	for i := 0; i < turnAfter && m.Node(cur).X != m.Node(target).X; i++ {
		if err := step(xPort()); err != nil {
			return nil, err
		}
	}
	for m.Node(cur).Y != m.Node(target).Y {
		if err := step(yPort()); err != nil {
			return nil, err
		}
	}
	for m.Node(cur).X != m.Node(target).X {
		if err := step(xPort()); err != nil {
			return nil, err
		}
	}
	niLink := m.InLink(dst, 0)
	l := m.Link(niLink)
	if l.From != cur {
		return nil, fmt.Errorf("route: staircase ended at %s, but %s attaches to %s",
			m.Node(cur).Name, d.Name, m.Node(l.From).Name)
	}
	p.Links = append(p.Links, niLink)
	return finish(m.Graph, p), nil
}

// Detour computes a non-minimal route that first side-steps one hop
// through firstPort (any mesh direction), then routes dimension-ordered
// to the destination — Y-first after an X side-step, X-first after a Y
// side-step, so the side-step is not immediately undone. Detours rescue
// connections whose only minimal route crosses a saturated link —
// harmless in aelite because contention-free TDM cannot deadlock, at the
// price of two extra slots of shift.
func Detour(m *topology.Mesh, src, dst topology.NodeID, firstPort int) (*Path, error) {
	s, d := m.Node(src), m.Node(dst)
	if s.Kind != topology.NI || d.Kind != topology.NI {
		return nil, fmt.Errorf("route: endpoints must be NIs (got %s, %s)", s.Kind, d.Kind)
	}
	if src == dst {
		return nil, fmt.Errorf("route: source and destination NI are the same (%s)", s.Name)
	}
	if firstPort < topology.North || firstPort > topology.West {
		return nil, fmt.Errorf("route: detour side must be a mesh direction")
	}
	if s.Router == d.Router {
		return nil, fmt.Errorf("route: detour between NIs on one router is pointless")
	}
	p := &Path{Src: src, Dst: dst}
	p.Links = append(p.Links, m.OutLink(src, 0))
	cur := s.Router
	target := d.Router
	step := func(port int) error {
		l := m.OutLink(cur, port)
		if l == topology.Invalid {
			return fmt.Errorf("route: %s has no link on port %d", m.Node(cur).Name, port)
		}
		p.Links = append(p.Links, l)
		cur = m.Link(l).To
		return nil
	}
	if err := step(firstPort); err != nil {
		return nil, err
	}
	moveX := func() error {
		for m.Node(cur).X != m.Node(target).X {
			port := topology.East
			if m.Node(cur).X > m.Node(target).X {
				port = topology.West
			}
			if err := step(port); err != nil {
				return err
			}
		}
		return nil
	}
	moveY := func() error {
		for m.Node(cur).Y != m.Node(target).Y {
			port := topology.South
			if m.Node(cur).Y > m.Node(target).Y {
				port = topology.North
			}
			if err := step(port); err != nil {
				return err
			}
		}
		return nil
	}
	var err error
	if firstPort == topology.East || firstPort == topology.West {
		if err = moveY(); err == nil {
			err = moveX()
		}
	} else {
		if err = moveX(); err == nil {
			err = moveY()
		}
	}
	if err != nil {
		return nil, err
	}
	niLink := m.InLink(dst, 0)
	if m.Link(niLink).From != cur {
		return nil, fmt.Errorf("route: detour did not reach %s", d.Name)
	}
	p.Links = append(p.Links, niLink)
	return finish(m.Graph, p), nil
}

// Candidates returns up to max distinct routes between two NIs: every
// minimal staircase (XY towards YX), followed by one-hop X side-step
// detours when the minimal family is smaller than max. Duplicate link
// sequences (straight-line routes have only one minimal path) are
// collapsed.
func Candidates(m *topology.Mesh, src, dst topology.NodeID, max int) ([]*Path, error) {
	if max < 1 {
		max = 1
	}
	sr := m.Node(m.Node(src).Router)
	dr := m.Node(m.Node(dst).Router)
	dx := sr.X - dr.X
	if dx < 0 {
		dx = -dx
	}
	var out []*Path
	seen := make(map[string]bool)
	add := func(p *Path) {
		key := fmt.Sprint(p.Links)
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	for turn := dx; turn >= 0 && len(out) < max; turn-- {
		p, err := Staircase(m, src, dst, turn)
		if err != nil {
			return nil, err
		}
		add(p)
	}
	if len(out) < max && sr.ID != dr.ID {
		for _, side := range []int{topology.East, topology.West, topology.North, topology.South} {
			if len(out) >= max {
				break
			}
			if p, err := Detour(m, src, dst, side); err == nil {
				add(p)
			}
		}
	}
	return out, nil
}
