package link

// Hyperperiod replay support: both engine components of a mesochronous
// stage implement replay.Periodic. The writer tap owns the stage's
// bi-synchronous FIFO state (contents plus push/visibility instants) and
// the traced occupancy ratchet; the reader FSM owns the flit-alignment
// state, whose behaviour depends on the edge index modulo FlitWords.

import (
	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/replay"
	"repro/internal/sim"
)

// InWire returns the writer-domain wire the stage samples.
func (s *Stage) InWire() *sim.Wire[phit.Phit] { return s.tap.in }

// OutWire returns the reader-domain wire the stage drives.
func (s *Stage) OutWire() *sim.Wire[phit.Phit] { return s.fsm.out }

// ReplayOK implements replay.Periodic.
func (t *writerTap) ReplayOK() bool { return true }

// ReplayPeriod implements replay.Periodic: the tap's behaviour repeats
// every cycle (given identical wire and FIFO state).
func (t *writerTap) ReplayPeriod() clock.Duration { return t.clk.Period }

// ReplayMark implements replay.Periodic.
func (t *writerTap) ReplayMark(now clock.Time) bool {
	s := t.stage
	first := !s.rmValid
	clean := !first
	if s.maxOcc != s.mMaxOcc {
		// The traced FIFO high-water mark rose during the epoch; its
		// Occupancy event would not recur in a real run.
		clean = false
	}
	s.mMaxOcc = s.maxOcc
	s.rmValid = true
	return clean
}

// ReplayFingerprint implements replay.Periodic: the FIFO contents with
// their push and visibility instants, normalised to the boundary.
func (t *writerTap) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	s := t.stage
	buf = replay.AppendI64(buf, int64(s.fifo.Len()))
	s.fifo.Scan(func(p phit.Phit, pushed, visible clock.Time) {
		buf = replay.AppendPhit(buf, p, ctx)
		buf = replay.AppendTime(buf, pushed, ctx)
		buf = replay.AppendTime(buf, visible, ctx)
	})
	return buf
}

// ReplayShift implements replay.Periodic.
func (t *writerTap) ReplayShift(sh *replay.Shift) {
	s := t.stage
	s.fifo.Adjust(func(p phit.Phit, pushed, visible clock.Time) (phit.Phit, clock.Time, clock.Time) {
		return replay.ShiftPhit(p, sh), pushed + clock.Time(sh.DT), visible + clock.Time(sh.DT)
	})
	s.rmValid = false
}

// ReplayOK implements replay.Periodic.
func (f *readerFSM) ReplayOK() bool { return true }

// ReplayPeriod implements replay.Periodic: the FSM decodes the edge index
// modulo FlitWords, so its pattern repeats each flit cycle.
func (f *readerFSM) ReplayPeriod() clock.Duration {
	return phit.FlitWords * f.clk.Period
}

// ReplayMark implements replay.Periodic.
func (f *readerFSM) ReplayMark(now clock.Time) bool {
	first := !f.rmValid
	f.dFlits = f.flits - f.mFlits
	f.mFlits = f.flits
	f.rmValid = true
	return !first
}

// ReplayFingerprint implements replay.Periodic.
func (f *readerFSM) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	var fw int64
	if f.forwarding {
		fw = 1
	}
	return replay.AppendI64(buf, fw)
}

// ReplayShift implements replay.Periodic.
func (f *readerFSM) ReplayShift(s *replay.Shift) {
	f.flits += s.Epochs * f.dFlits
	f.rmValid = false
}
