package link

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/sim"
)

// TestSkewBoundaryInclusive locks the envelope edge: "at most half a clock
// cycle" (paper Section V) is an inclusive bound, so skew of exactly
// Period/2 must build and run cleanly in strict mode, while the very first
// picosecond beyond it is rejected.
func TestSkewBoundaryInclusive(t *testing.T) {
	const period = 2000
	build := func(skew clock.Duration, rep fault.Reporter) *Stage {
		wclk := clock.New("w", period, 0)
		rclk := clock.New("r", period, skew)
		in := sim.NewWire[phit.Phit]("in")
		out := sim.NewWire[phit.Phit]("out")
		return NewStageWith("st", in, out, wclk, rclk, period, rep)
	}

	// Exactly half a period: legal, strict mode must not panic.
	if st := build(period/2, nil); st == nil {
		t.Fatal("stage not built at skew == period/2")
	}

	// Half a period plus one picosecond: strict mode fails fast...
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic at skew == period/2 + 1 in strict mode")
			}
		}()
		build(period/2+1, nil)
	}()

	// ...and collecting mode records exactly one SkewBound violation but
	// still builds the (deliberately out-of-envelope) stage.
	col := fault.NewCollector()
	st := build(period/2+1, col)
	if st == nil {
		t.Fatal("collecting mode refused to build an out-of-envelope stage")
	}
	if col.Total() != 1 || col.Violations()[0].Kind != fault.SkewBound {
		t.Fatalf("collected %v, want one skew-bound violation", col.Violations())
	}
}

// runFaultyStage builds source -> stage -> sink with a reporter and a
// mid-run perturbation, and returns the collector (collecting mode) after
// the run. In strict mode it runs with a nil reporter so the violation
// panics out of eng.Run.
func runFaultyStage(t *testing.T, rep fault.Reporter, partial bool, stretch clock.Duration) {
	t.Helper()
	eng := sim.New()
	wclk := clock.New("w", 2000, 0)
	rclk := clock.New("r", 2000, 500)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	eng.AddWire(in)
	eng.AddWire(out)
	st := NewStageWith("st", in, out, wclk, rclk, 2000, rep)
	for _, c := range st.Components() {
		eng.Add(c)
	}
	if partial {
		eng.Add(&partialSource{clk: wclk, out: in})
	} else {
		eng.Add(&flitSource{name: "src", clk: wclk, out: in, sendIn: []bool{true}})
	}
	if stretch > 0 {
		eng.At(20*2000, func() { st.StretchForwardDelay(stretch) })
	}
	eng.Run(120 * 2000)
}

// TestLinkViolations drives the stage's runtime envelope checks in both
// modes: partial flits underflow the FIFO, and a stretched synchroniser
// first overflows the (never-handshaked) FIFO and then breaks the
// one-flit-cycle latency claim.
func TestLinkViolations(t *testing.T) {
	cases := []struct {
		name    string
		kinds   []fault.Kind // any of these counts as detection
		partial bool
		stretch clock.Duration
	}{
		{name: "underflow-on-partial-flit", kinds: []fault.Kind{fault.FIFOUnderflow}, partial: true},
		{name: "stretched-synchroniser", kinds: []fault.Kind{fault.FIFOOverflow, fault.LinkLatency}, stretch: 9000},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/strict", func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic in strict mode")
				}
			}()
			runFaultyStage(t, nil, tc.partial, tc.stretch)
		})
		t.Run(tc.name+"/collect", func(t *testing.T) {
			col := fault.NewCollector()
			runFaultyStage(t, col, tc.partial, tc.stretch)
			if col.Total() == 0 {
				t.Fatal("no violations collected")
			}
			counts := col.CountByKind()
			found := false
			for _, k := range tc.kinds {
				if counts[k] > 0 {
					found = true
				}
			}
			if !found {
				t.Errorf("kinds %v missing from %v", tc.kinds, counts)
			}
		})
	}
}
