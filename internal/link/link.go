package link

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FIFODepth is the bi-synchronous FIFO depth in words; the paper sizes it
// at 4 so that it can never fill under the skew bound.
const FIFODepth = 4

// A Stage is one mesochronous link pipeline stage. Construct with
// NewStage, then register both returned components with the engine.
type Stage struct {
	name string
	fifo *sim.Bisync[phit.Phit]
	rep  fault.Reporter

	// tr, when non-nil, receives LinkForward events (one per forwarded
	// flit, from the reader FSM) and Occupancy events (FIFO fill
	// high-water marks, from the writer tap). maxOcc ratchets the traced
	// mark so steady-state traffic emits nothing.
	tr     *trace.Emitter
	maxOcc int

	// Hyperperiod-boundary snapshot of maxOcc (see replay.go).
	mMaxOcc int
	rmValid bool

	// buildDelay is the construction-time forwarding delay; the in-envelope
	// bound of the one-flit-cycle latency check (faults may stretch the
	// live delay).
	buildDelay clock.Duration

	tap *writerTap
	fsm *readerFSM
}

// NewStage builds a stage between a writer-domain wire and a reader-domain
// wire.
//
//	in:  driven by the upstream element (router or NI) in writerClk's
//	     domain; writerClk is the source-synchronous clock that travels
//	     with the data.
//	out: read by the downstream element in readerClk's domain.
//
// forwardDelay is the FIFO's synchroniser forwarding delay (the paper
// assumes one to two cycles; pass e.g. readerClk.Period for one cycle).
// The writer/reader skew is |writerClk.Phase - readerClk.Phase| and must
// be at most half a period — the bound is inclusive: skew of exactly
// Period/2 is legal.
func NewStage(name string, in *sim.Wire[phit.Phit], out *sim.Wire[phit.Phit],
	writerClk, readerClk *clock.Clock, forwardDelay clock.Duration) *Stage {
	return NewStageWith(name, in, out, writerClk, readerClk, forwardDelay, nil)
}

// NewStageWith is NewStage with an explicit violation reporter: nil keeps
// the fail-fast panics; a collector turns the construction-time envelope
// checks (skew bound, alignment feasibility) into fault.Violation records
// and builds the stage anyway, deliberately out of envelope, so that fault
// campaigns can observe how it misbehaves.
func NewStageWith(name string, in *sim.Wire[phit.Phit], out *sim.Wire[phit.Phit],
	writerClk, readerClk *clock.Clock, forwardDelay clock.Duration, rep fault.Reporter) *Stage {
	if writerClk.Period != readerClk.Period {
		panic(fmt.Sprintf("link %s: mesochronous stage requires equal periods (writer %d ps, reader %d ps); use the asynchronous wrapper for plesiochronous operation",
			name, writerClk.Period, readerClk.Period))
	}
	skew := writerClk.Phase - readerClk.Phase
	if skew < 0 {
		skew = -skew
	}
	if 2*skew > writerClk.Period {
		fault.Report(rep, fault.Violation{
			Kind: fault.SkewBound, Component: "link " + name, Slot: fault.NoSlot,
			Detail: fmt.Sprintf("skew %d ps exceeds half a period (%d ps) — outside the paper's mesochronous operating assumption",
				skew, writerClk.Period/2),
		})
	}
	if forwardDelay <= 0 {
		panic(fmt.Sprintf("link %s: non-positive FIFO forwarding delay", name))
	}
	// Alignment feasibility: a flit's first word is pushed one writer
	// cycle after the driving edge and becomes visible forwardDelay
	// later; the FSM must catch it at the *next* reader flit boundary,
	// at most two reader cycles on, for the uniform +1-slot TDM shift to
	// hold on every link. Hence forwardDelay + (writer phase - reader
	// phase) <= 2 cycles. A 2-cycle FIFO therefore tolerates no adverse
	// skew; the paper's full half-cycle skew budget needs a forwarding
	// delay of at most 1.5 cycles.
	if forwardDelay+(writerClk.Phase-readerClk.Phase) > 2*writerClk.Period {
		fault.Report(rep, fault.Violation{
			Kind: fault.AlignBound, Component: "link " + name, Slot: fault.NoSlot,
			Detail: fmt.Sprintf("forwarding delay %d ps plus adverse skew %d ps exceeds two cycles — flits would mis-align by a whole slot and break the TDM schedule",
				forwardDelay, writerClk.Phase-readerClk.Phase),
		})
	}
	s := &Stage{
		name:       name,
		fifo:       sim.NewBisync[phit.Phit](name+".fifo", FIFODepth, forwardDelay),
		rep:        rep,
		buildDelay: forwardDelay,
	}
	s.tap = &writerTap{stage: s, clk: writerClk, in: in}
	s.fsm = &readerFSM{stage: s, clk: readerClk, out: out}
	return s
}

// SetReporter routes this stage's runtime envelope checks to r (nil
// restores fail-fast panics).
func (s *Stage) SetReporter(r fault.Reporter) { s.rep = r }

// SetTracer installs the stage's lifecycle-event emitter; nil disables
// tracing.
func (s *Stage) SetTracer(e *trace.Emitter) { s.tr = e }

// StretchForwardDelay adds delta to the FIFO's forwarding delay — the
// fault model of a slow or metastable synchroniser.
func (s *Stage) StretchForwardDelay(delta clock.Duration) {
	s.fifo.SetForwardDelay(s.fifo.ForwardDelay() + delta)
}

// Name returns the stage's name.
func (s *Stage) Name() string { return s.name }

// FIFOName returns the diagnostic name of the stage's bi-synchronous FIFO.
func (s *Stage) FIFOName() string { return s.fifo.Name() }

// Components returns the two engine components of the stage (writer tap
// and reader FSM); register both with Engine.Add.
func (s *Stage) Components() []sim.Component {
	return []sim.Component{s.tap, s.fsm}
}

// MaxFIFOOccupancy reports the FIFO's high-water mark; the Section V
// invariant is that it never exceeds FIFODepth (enforced by panic) and in
// fact stays below it under the stated assumptions.
func (s *Stage) MaxFIFOOccupancy() int { return s.fifo.MaxOccupancy() }

// Forwarded reports how many flits the FSM has forwarded.
func (s *Stage) Forwarded() int64 { return s.fsm.flits }

// writerTap samples the upstream wire on the source-synchronous clock and
// pushes valid words into the bi-synchronous FIFO.
type writerTap struct {
	stage   *Stage
	clk     *clock.Clock
	in      *sim.Wire[phit.Phit]
	sampled phit.Phit
}

func (t *writerTap) Name() string          { return t.stage.name + ".tap" }
func (t *writerTap) Clock() *clock.Clock   { return t.clk }
func (t *writerTap) Sample(now clock.Time) { t.sampled = t.in.Read() }

func (t *writerTap) Update(now clock.Time) {
	if t.sampled.Valid {
		// aelite sizes the FIFO to never fill under the skew assumption,
		// so a full FIFO is an envelope violation; the word is lost, as
		// it would be in hardware (there is no full/accept handshake,
		// by design).
		if !t.stage.fifo.CanPush() {
			fault.Report(t.stage.rep, fault.Violation{
				Kind: fault.FIFOOverflow, Component: "link " + t.stage.name, Time: now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("bi-synchronous FIFO overflow (capacity %d), word dropped", FIFODepth),
			})
			return
		}
		t.stage.fifo.Push(now, t.sampled)
		if t.stage.tr != nil {
			if l := t.stage.fifo.Len(); l > t.stage.maxOcc {
				t.stage.maxOcc = l
				t.stage.tr.Emit(trace.Event{Time: now, Kind: trace.Occupancy,
					Arg: int64(l), Slot: trace.NoSlot})
			}
		}
	}
}

// readerFSM re-aligns flits to the reader's flit-cycle boundaries.
type readerFSM struct {
	stage *Stage
	clk   *clock.Clock
	out   *sim.Wire[phit.Phit]

	forwarding bool
	flits      int64

	// Hyperperiod-boundary snapshot and per-epoch delta (see replay.go).
	mFlits, dFlits int64
	rmValid        bool
}

func (f *readerFSM) Name() string          { return f.stage.name + ".fsm" }
func (f *readerFSM) Clock() *clock.Clock   { return f.clk }
func (f *readerFSM) Sample(now clock.Time) {}

func (f *readerFSM) Update(now clock.Time) {
	n, ok := f.clk.EdgeIndex(now)
	if !ok {
		panic(fmt.Sprintf("link %s: update off-edge at %d ps", f.stage.name, now))
	}
	state := int(n % phit.FlitWords)
	if state == 0 {
		f.forwarding = f.stage.fifo.Valid(now)
		if f.forwarding {
			f.flits++
			// Section V's latency claim: a stage adds exactly one flit
			// cycle. In envelope, the head word waits at most the
			// forwarding delay plus one flit cycle before the FSM picks
			// it up; a longer wait means the alignment slipped a slot
			// (stretched synchroniser, clock drift) and the TDM
			// reservation downstream no longer matches.
			bound := f.stage.buildDelay + phit.FlitWords*f.clk.Period
			if age := f.stage.fifo.HeadAge(now); age > bound {
				fault.Report(f.stage.rep, fault.Violation{
					Kind: fault.LinkLatency, Component: "link " + f.stage.name, Time: now, Slot: fault.NoSlot,
					Detail: fmt.Sprintf("head word waited %d ps, above the one-flit-cycle bound of %d ps", age, bound),
				})
			}
		}
	}
	if !f.forwarding {
		f.out.Drive(phit.IdlePhit)
		return
	}
	// Accept is high: pop one word this cycle. An empty FIFO mid-flit
	// violates the nominal one-word-per-cycle rate assumption (a used
	// slot must carry a whole flit); the flit is truncated and the FSM
	// resynchronises at the next flit boundary.
	if !f.stage.fifo.Valid(now) {
		fault.Report(f.stage.rep, fault.Violation{
			Kind: fault.FIFOUnderflow, Component: "link " + f.stage.name, Time: now, Slot: fault.NoSlot,
			Detail: fmt.Sprintf("FIFO underflow in flit state %d — writer sent a partial flit", state),
		})
		f.forwarding = false
		f.out.Drive(phit.IdlePhit)
		return
	}
	p := f.stage.fifo.Pop(now)
	f.out.Drive(p)
	if f.stage.tr != nil && state == 0 {
		f.stage.tr.Emit(trace.Event{Time: now, Kind: trace.LinkForward,
			Conn: p.Meta.Conn, Seq: p.Meta.Seq, Slot: trace.NoSlot})
	}
	if state == phit.FlitWords-1 {
		f.forwarding = false
	}
}

// Pipeline builds n mesochronous stages in series between in and out.
// stageClks lists the local clock of each stage (the first stage's writer
// clock is writerClk; stage i's writer clock is stage i-1's local clock).
// It returns the stages; register all their components and the
// intermediate wires it creates via the provided engine.
func Pipeline(name string, eng *sim.Engine, in *sim.Wire[phit.Phit], out *sim.Wire[phit.Phit],
	writerClk *clock.Clock, stageClks []*clock.Clock, forwardDelay clock.Duration) []*Stage {
	return PipelineWith(name, eng, in, out, writerClk, stageClks, forwardDelay, nil)
}

// PipelineWith is Pipeline with an explicit violation reporter for every
// stage (see NewStageWith).
func PipelineWith(name string, eng *sim.Engine, in *sim.Wire[phit.Phit], out *sim.Wire[phit.Phit],
	writerClk *clock.Clock, stageClks []*clock.Clock, forwardDelay clock.Duration, rep fault.Reporter) []*Stage {
	if len(stageClks) == 0 {
		panic(fmt.Sprintf("link %s: pipeline needs at least one stage", name))
	}
	stages := make([]*Stage, len(stageClks))
	cur := in
	w := writerClk
	for i, ck := range stageClks {
		var next *sim.Wire[phit.Phit]
		if i == len(stageClks)-1 {
			next = out
		} else {
			next = sim.NewWire[phit.Phit](fmt.Sprintf("%s.w%d", name, i))
			// Stage i's reader FSM drives this wire on its local clock.
			eng.AddWireClocked(next, ck)
		}
		st := NewStageWith(fmt.Sprintf("%s.s%d", name, i), cur, next, w, ck, forwardDelay, rep)
		for _, c := range st.Components() {
			eng.Add(c)
		}
		stages[i] = st
		cur = next
		w = ck
	}
	return stages
}
