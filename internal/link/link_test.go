package link

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

// flitSource emits whole 3-word flits in designated slots of its local
// flit cycle, driving its wire like an aelite NI or router output would.
type flitSource struct {
	name string
	clk  *clock.Clock
	out  *sim.Wire[phit.Phit]
	// sendIn[s] == true makes slot s (mod len) carry a flit.
	sendIn  []bool
	sent    int64
	started bool
}

func (f *flitSource) Name() string          { return f.name }
func (f *flitSource) Clock() *clock.Clock   { return f.clk }
func (f *flitSource) Sample(now clock.Time) {}
func (f *flitSource) Update(now clock.Time) {
	n, _ := f.clk.EdgeIndex(now)
	w := int(n % phit.FlitWords)
	slot := int(n / phit.FlitWords)
	// The engine starts strictly after t=0, so the first executed edge
	// may fall mid-flit; like a real NI, only open flits at phase 0.
	if w == 0 {
		f.started = true
	}
	if !f.started || !f.sendIn[slot%len(f.sendIn)] {
		f.out.Drive(phit.IdlePhit)
		return
	}
	p := phit.Phit{Valid: true, Kind: phit.Payload,
		Meta: phit.Meta{Seq: int64(slot*phit.FlitWords + w)}}
	if w == 0 {
		f.sent++
	}
	f.out.Drive(p)
}

// flitChecker verifies that arriving words are flit-aligned in its own
// clock domain: a flit's word 0 arrives at local phase 1 (the cycle after
// the driver's phase-0 drive), words contiguous.
type flitChecker struct {
	name    string
	clk     *clock.Clock
	in      *sim.Wire[phit.Phit]
	t       *testing.T
	got     int64
	lastSeq int64
	inFlit  int        // words seen in current flit
	first   clock.Time // sample instant of the first valid word
}

func (c *flitChecker) Name() string        { return c.name }
func (c *flitChecker) Clock() *clock.Clock { return c.clk }
func (c *flitChecker) Sample(now clock.Time) {
	p := c.in.Read()
	n, _ := c.clk.EdgeIndex(now)
	w := int(n % phit.FlitWords)
	if p.Valid {
		// Word w of a flit driven at the driver's phase (w-1+3)%3 is
		// sampled at our phase w+... the FSM drives word 0 at its
		// phase 0, so we sample it at phase 1.
		want := (c.inFlit + 1) % phit.FlitWords
		if w != want {
			c.t.Errorf("%s: word %d of flit sampled at phase %d, want %d (t=%d)",
				c.name, c.inFlit, w, want, now)
		}
		c.inFlit = (c.inFlit + 1) % phit.FlitWords
		if c.got == 0 {
			c.first = now
		}
		c.got++
		c.lastSeq = p.Meta.Seq
	} else if c.inFlit != 0 {
		c.t.Errorf("%s: flit interrupted after %d words (t=%d)", c.name, c.inFlit, now)
		c.inFlit = 0
	}
}
func (c *flitChecker) Update(now clock.Time) {}

// runStage wires source -> stage -> checker with the given skew and FIFO
// forwarding delay and runs it.
func runStage(t *testing.T, skew, fwdDelay clock.Duration, pattern []bool, cycles int64) (*Stage, *flitChecker) {
	t.Helper()
	eng := sim.New()
	wclk := clock.New("w", 2000, 0)
	rclk := clock.New("r", 2000, skew)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	eng.AddWire(in)
	eng.AddWire(out)
	st := NewStage("st", in, out, wclk, rclk, fwdDelay)
	for _, c := range st.Components() {
		eng.Add(c)
	}
	src := &flitSource{name: "src", clk: wclk, out: in, sendIn: pattern}
	chk := &flitChecker{name: "chk", clk: rclk, in: out, t: t}
	eng.Add(src)
	eng.Add(chk)
	eng.Run(clock.Time(cycles) * 2000)
	return st, chk
}

func TestStageAlignsForAnySkew(t *testing.T) {
	pattern := []bool{true, false, true, true, false, false, true, false}
	for _, skew := range []clock.Duration{0, 1, 250, 500, 999, 1000} {
		t.Run(fmt.Sprint(skew), func(t *testing.T) {
			// 600 cycles = 200 slots, half carrying flits: ~300
			// words minus pipeline fill and the flit cut off by
			// simulation end.
			st, chk := runStage(t, skew, 2000, pattern, 600)
			if chk.got < 280 {
				t.Errorf("skew %d: only %d words delivered", skew, chk.got)
			}
			if st.MaxFIFOOccupancy() > FIFODepth {
				t.Errorf("skew %d: FIFO occupancy %d exceeded depth", skew, st.MaxFIFOOccupancy())
			}
			if d := st.Forwarded() - chk.got/3; d < 0 || d > 1 {
				t.Errorf("forwarded %d flits, checker saw %d words", st.Forwarded(), chk.got)
			}
		})
	}
}

// TestStageExactlyOneFlitCycle: with one-cycle FIFO delay and any legal
// skew, a flit entering the link in slot s reaches the downstream sampler
// exactly one flit cycle later than a direct wire would deliver it —
// the +1 slot shift the allocator assumes.
func TestStageExactlyOneFlitCycle(t *testing.T) {
	eng := sim.New()
	wclk := clock.New("w", 2000, 0)
	rclk := clock.New("r", 2000, 900)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	eng.AddWire(in)
	eng.AddWire(out)
	st := NewStage("st", in, out, wclk, rclk, 2000)
	for _, c := range st.Components() {
		eng.Add(c)
	}
	src := &flitSource{name: "src", clk: wclk, out: in, sendIn: []bool{true, false, false, false}}
	eng.Add(src)

	probe := &flitChecker{name: "chk", clk: rclk, in: out, t: t}
	eng.Add(probe)
	eng.Run(50000)
	if probe.got == 0 {
		t.Fatal("nothing delivered")
	}
	firstArrival := probe.first
	// The source opens its first flit in slot 4 (the engine's first
	// executed edge falls mid-flit, so slots 0 and the pattern's
	// off-slots pass idle): word 0 driven at writer edge 12 (t=24000),
	// tapped at edge 13, visible at t=28000, re-aligned to the reader's
	// next flit boundary (edge 15, t=30900) and sampled downstream at
	// edge 16 (t=32900) — exactly the +1 slot (slot 5) the TDM
	// allocation assumes for one link pipeline stage.
	if firstArrival != 32900 {
		t.Errorf("first arrival at %d ps; want 32900 (one slot after link entry)", firstArrival)
	}
}

func TestStagePanicsOnExcessSkew(t *testing.T) {
	wclk := clock.New("w", 2000, 0)
	rclk := clock.New("r", 2000, 1400) // skew 1400 > T/2... phase diff measured directly
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	defer func() {
		if recover() == nil {
			t.Error("no panic for skew above half a period")
		}
	}()
	NewStage("st", in, out, wclk, rclk, 2000)
}

func TestStagePanicsOnPeriodMismatch(t *testing.T) {
	wclk := clock.New("w", 2000, 0)
	rclk := clock.New("r", 2200, 0)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	defer func() {
		if recover() == nil {
			t.Error("no panic for plesiochronous clocks on a mesochronous stage")
		}
	}()
	NewStage("st", in, out, wclk, rclk, 2000)
}

func TestStagePanicsOnPartialFlit(t *testing.T) {
	// A writer that sends only 2 valid words per flit violates the
	// nominal-rate assumption; the FSM must detect the underflow.
	eng := sim.New()
	wclk := clock.New("w", 2000, 0)
	rclk := clock.New("r", 2000, 0)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	eng.AddWire(in)
	eng.AddWire(out)
	st := NewStage("st", in, out, wclk, rclk, 2000)
	for _, c := range st.Components() {
		eng.Add(c)
	}
	bad := &partialSource{clk: wclk, out: in}
	eng.Add(bad)
	defer func() {
		if recover() == nil {
			t.Error("no panic for a partial flit")
		}
	}()
	eng.Run(40 * 2000)
}

type partialSource struct {
	clk *clock.Clock
	out *sim.Wire[phit.Phit]
}

func (p *partialSource) Name() string          { return "bad" }
func (p *partialSource) Clock() *clock.Clock   { return p.clk }
func (p *partialSource) Sample(now clock.Time) {}
func (p *partialSource) Update(now clock.Time) {
	n, _ := p.clk.EdgeIndex(now)
	// Valid on phases 0 and 1 only: a 2-word "flit".
	if n%3 != 2 {
		p.out.Drive(phit.Phit{Valid: true, Kind: phit.Payload})
	} else {
		p.out.Drive(phit.IdlePhit)
	}
}

func TestPipelineMultipleStages(t *testing.T) {
	eng := sim.New()
	base := clock.New("b", 2000, 0)
	c1 := clock.Mesochronous(base, "c1", 300)
	c2 := clock.Mesochronous(base, "c2", 800)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	eng.AddWire(in)
	eng.AddWire(out)
	stages := Pipeline("pl", eng, in, out, base, []*clock.Clock{c1, c2}, 2000)
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	src := &flitSource{name: "src", clk: base, out: in, sendIn: []bool{true, true, false, false}}
	chk := &flitChecker{name: "chk", clk: c2, in: out, t: t}
	eng.Add(src)
	eng.Add(chk)
	eng.Run(400 * 2000)
	// 400 cycles = ~133 slots, half carrying flits: ~190 words minus
	// two stages of pipeline fill.
	if chk.got < 180 {
		t.Errorf("only %d words through a 2-stage pipeline", chk.got)
	}
}

func TestPipelinePanicsWithoutStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty pipeline")
		}
	}()
	Pipeline("p", sim.New(), nil, nil, clock.New("c", 1000, 0), nil, 1000)
}

func TestStagePanicsOnBadDelay(t *testing.T) {
	wclk := clock.New("w", 2000, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-positive forwarding delay")
		}
	}()
	NewStage("st", nil, nil, wclk, wclk, 0)
}
