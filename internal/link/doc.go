// Package link models aelite's links: plain synchronous wires and the
// mesochronous link pipeline stage of paper Section V.
//
// A mesochronous stage decouples the phase (not the frequency) of writer
// and reader. It consists of:
//
//   - a bi-synchronous FIFO written with the clock that travels with the
//     data (source-synchronous), 4 words deep — deep enough, under the
//     paper's assumptions, to never fill, so it needs no full/accept
//     handshake back to the writer;
//   - an FSM in the reader clock domain tracking the position within the
//     current flit (states 0, 1, 2). When a new flit cycle begins (state
//     0) and the FIFO holds at least one word, the FSM asserts valid
//     toward the router and accept toward the FIFO for the succeeding
//     three cycles, forwarding exactly one flit.
//
// The re-alignment makes a link traversal take exactly one flit cycle in
// the reader's clock, so TDM reservations shift by one slot per stage —
// the same shift a router adds — and the whole NoC can be reasoned about
// as globally flit-synchronous.
//
// The paper's operating assumptions are checked, not assumed: skew at most
// half a clock cycle — the bound is inclusive, skew of exactly half a
// period is the largest legal value ("at most half a clock cycle", Section
// V) — FIFO forwarding delay of 1-2 cycles with skew+delay small enough to
// make the alignment land one flit cycle downstream, and a nominal rate of
// one word per cycle (used slots carry whole 3-word flits).
//
// A violated assumption is reported through a fault.Reporter: with a nil
// reporter (NewStage, the default) it panics, because silently mis-aligned
// hardware would corrupt the TDM schedule; with a collector
// (NewStageWith), the stage records a structured fault.Violation and keeps
// running out of envelope so campaigns can observe the failure mode.
package link
