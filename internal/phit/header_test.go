package phit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDefaultLayoutValid(t *testing.T) {
	if err := DefaultLayout.Validate(); err != nil {
		t.Fatalf("DefaultLayout invalid: %v", err)
	}
	if got, want := DefaultLayout.MaxHops(), 7; got != want {
		t.Errorf("MaxHops = %d, want %d", got, want)
	}
	if got, want := DefaultLayout.MaxPort(), 7; got != want {
		t.Errorf("MaxPort = %d, want %d", got, want)
	}
	if got, want := DefaultLayout.MaxQID(), 31; got != want {
		t.Errorf("MaxQID = %d, want %d", got, want)
	}
	if got, want := DefaultLayout.MaxCredits(), 31; got != want {
		t.Errorf("MaxCredits = %d, want %d", got, want)
	}
}

func TestLayoutValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		l    HeaderLayout
	}{
		{"zero word", HeaderLayout{WordBits: 0, PortBits: 3, PathBits: 21}},
		{"wide word", HeaderLayout{WordBits: 65, PortBits: 3, PathBits: 21}},
		{"zero port", HeaderLayout{WordBits: 32, PortBits: 0, PathBits: 21}},
		{"path narrower than hop", HeaderLayout{WordBits: 32, PortBits: 4, PathBits: 3}},
		{"path not multiple", HeaderLayout{WordBits: 32, PortBits: 3, PathBits: 20}},
		{"overflow word", HeaderLayout{WordBits: 32, PortBits: 3, PathBits: 27, QIDBits: 5, CreditBits: 5}},
		{"negative field", HeaderLayout{WordBits: 32, PortBits: 3, PathBits: 21, QIDBits: -1}},
	}
	for _, c := range cases {
		if err := c.l.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid layout %+v", c.name, c.l)
		}
	}
}

func TestEncodeDecodeExample(t *testing.T) {
	// Fig. 1 of the paper: a 2-router path. Ports chosen arbitrarily.
	path := []int{2, 5, 1}
	w, err := DefaultLayout.Encode(path, 7, 3)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := DefaultLayout.QID(w); got != 7 {
		t.Errorf("QID = %d, want 7", got)
	}
	if got := DefaultLayout.Credits(w); got != 3 {
		t.Errorf("Credits = %d, want 3", got)
	}
	cur := w
	for i, want := range path {
		var port int
		port, cur = DefaultLayout.NextPort(cur)
		if port != want {
			t.Errorf("hop %d: port = %d, want %d", i, port, want)
		}
		// qid/credits must survive path shifting.
		if got := DefaultLayout.QID(cur); got != 7 {
			t.Errorf("hop %d: QID corrupted to %d", i, got)
		}
		if got := DefaultLayout.Credits(cur); got != 3 {
			t.Errorf("hop %d: Credits corrupted to %d", i, got)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	l := DefaultLayout
	if _, err := l.Encode(make([]int, l.MaxHops()+1), 0, 0); err == nil {
		t.Error("Encode accepted over-long path")
	}
	if _, err := l.Encode([]int{8}, 0, 0); err == nil {
		t.Error("Encode accepted out-of-range port")
	}
	if _, err := l.Encode([]int{-1}, 0, 0); err == nil {
		t.Error("Encode accepted negative port")
	}
	if _, err := l.Encode(nil, l.MaxQID()+1, 0); err == nil {
		t.Error("Encode accepted out-of-range qid")
	}
	if _, err := l.Encode(nil, 0, l.MaxCredits()+1); err == nil {
		t.Error("Encode accepted out-of-range credits")
	}
	if _, err := l.Encode(nil, -1, 0); err == nil {
		t.Error("Encode accepted negative qid")
	}
}

func TestWithCredits(t *testing.T) {
	w, err := DefaultLayout.Encode([]int{1, 2, 3}, 9, 0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	w2, err := DefaultLayout.WithCredits(w, 17)
	if err != nil {
		t.Fatalf("WithCredits: %v", err)
	}
	if got := DefaultLayout.Credits(w2); got != 17 {
		t.Errorf("Credits = %d, want 17", got)
	}
	if got := DefaultLayout.QID(w2); got != 9 {
		t.Errorf("QID clobbered: %d, want 9", got)
	}
	if got := DefaultLayout.DecodePath(w2, 3); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("path clobbered: %v", got)
	}
	if _, err := DefaultLayout.WithCredits(w, DefaultLayout.MaxCredits()+1); err == nil {
		t.Error("WithCredits accepted overflow")
	}
}

// TestHeaderRoundTripQuick property-tests the codec: for random paths,
// qids and credit counts, encoding and walking the path hop by hop
// recovers exactly the encoded values, and the fixed fields are invariant
// under shifting.
func TestHeaderRoundTripQuick(t *testing.T) {
	l := DefaultLayout
	f := func(rawPath []uint8, rawQID, rawCredits uint16) bool {
		n := len(rawPath) % (l.MaxHops() + 1)
		path := make([]int, n)
		for i := range path {
			path[i] = int(rawPath[i]) % (l.MaxPort() + 1)
		}
		qid := int(rawQID) % (l.MaxQID() + 1)
		credits := int(rawCredits) % (l.MaxCredits() + 1)
		w, err := l.Encode(path, qid, credits)
		if err != nil {
			return false
		}
		cur := w
		for _, want := range path {
			var port int
			port, cur = l.NextPort(cur)
			if port != want || l.QID(cur) != qid || l.Credits(cur) != credits {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowLayoutQuick exercises a non-default layout (16-bit words,
// 2-bit ports) to make sure nothing assumes the default field widths.
func TestNarrowLayoutQuick(t *testing.T) {
	l := HeaderLayout{WordBits: 16, PortBits: 2, PathBits: 8, QIDBits: 3, CreditBits: 4}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	f := func(rawPath []uint8, rawQID, rawCredits uint16) bool {
		n := len(rawPath) % (l.MaxHops() + 1)
		path := make([]int, n)
		for i := range path {
			path[i] = int(rawPath[i]) % (l.MaxPort() + 1)
		}
		qid := int(rawQID) % (l.MaxQID() + 1)
		credits := int(rawCredits) % (l.MaxCredits() + 1)
		w, err := l.Encode(path, qid, credits)
		if err != nil {
			return false
		}
		got := l.DecodePath(w, n)
		for i := range path {
			if got[i] != path[i] {
				return false
			}
		}
		return l.QID(w) == qid && l.Credits(w) == credits
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFlitEmpty(t *testing.T) {
	var f Flit
	if !f.Empty() {
		t.Error("zero flit should be empty")
	}
	f[1].Valid = true
	if f.Empty() {
		t.Error("flit with a valid phit should not be empty")
	}
}

func TestPhitString(t *testing.T) {
	if got := IdlePhit.String(); got != "idle" {
		t.Errorf("IdlePhit.String() = %q", got)
	}
	p := Phit{Valid: true, EoP: true, Kind: Payload, Data: 0xab, Meta: Meta{Conn: 3, Seq: 9}}
	if got := p.String(); got != "payload(c3 #9 0xab|eop)" {
		t.Errorf("String() = %q", got)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}
