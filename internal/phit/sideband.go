package phit

// The reliability sideband (one extra word of link wiring, modelled by
// Phit.SB) carries everything the end-to-end reliability layer of
// internal/reliable needs per flit:
//
//	bit  63     present (distinguishes a stamped flit from SB == 0)
//	bits 56     ack-valid
//	bits 32..55 cumulative ack: count of in-order flits accepted, mod 2^24
//	bits  8..31 flit sequence number, mod 2^24
//	bits  0..7  CRC-8 over the flit's three phits and the seq/ack fields
//
// Sequence numbers and acks use 24-bit serial-number arithmetic
// (SeqDelta), so they never overflow in practice and compare correctly
// across the wrap. The CRC is CRC-8/ATM (polynomial x^8+x^2+x+1, 0x07),
// computed over each phit's data word and control bits plus the sideband's
// own sequence and ack fields — a corrupted data bit, control bit or a
// flit truncated by a dropped phit all fail the check.

// SeqMask bounds the sideband's sequence and ack fields.
const SeqMask uint32 = 1<<24 - 1

const (
	sbPresent  Word = 1 << 63
	sbAckValid Word = 1 << 56
)

// A Sideband is the decoded reliability sideband of one flit.
type Sideband struct {
	Seq      uint32 // flit sequence number, 24 bits
	Ack      uint32 // cumulative in-order flits accepted, 24 bits
	AckValid bool
}

// crcTable is the CRC-8/ATM lookup table (polynomial 0x07).
var crcTable = func() (t [256]uint8) {
	for i := range t {
		c := uint8(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x07
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return
}()

func crcWord(crc uint8, w Word) uint8 {
	for shift := 56; shift >= 0; shift -= 8 {
		crc = crcTable[crc^uint8(w>>uint(shift))]
	}
	return crc
}

// FlitCRC computes the CRC-8 protecting a stamped flit: every phit's
// control bits (valid, EoP, kind), every payload and padding phit's data
// word, and the sideband's sequence and ack fields. Header and
// credit-only phits contribute only their control bits: routers shift the
// consumed hop out of the path field at every stage, so the header word
// the destination sees legitimately differs from the one the source
// stamped. (The fault model spares header words for the same reason — a
// flipped route is a misroute, detected by the slot checkers, not a data
// error.) Meta is simulation bookkeeping and excluded; so is the SB word
// itself (it carries the result).
func FlitCRC(f *Flit, sb Sideband) uint8 {
	var crc uint8
	for i := range f {
		if f[i].Kind != Header && f[i].Kind != CreditOnly {
			crc = crcWord(crc, f[i].Data)
		}
		flags := uint8(f[i].Kind) & 0x0f
		if f[i].Valid {
			flags |= 0x10
		}
		if f[i].EoP {
			flags |= 0x20
		}
		crc = crcTable[crc^flags]
	}
	crc = crcWord(crc, Word(sb.Seq&SeqMask))
	av := Word(sb.Ack & SeqMask)
	if sb.AckValid {
		av |= 1 << 24
	}
	return crcWord(crc, av)
}

// StampSideband computes the flit's CRC and packs sb into the first phit's
// sideband word.
func StampSideband(f *Flit, sb Sideband) {
	w := sbPresent |
		Word(sb.Seq&SeqMask)<<8 |
		Word(sb.Ack&SeqMask)<<32 |
		Word(FlitCRC(f, sb))
	if sb.AckValid {
		w |= sbAckValid
	}
	f[0].SB = w
}

// SidebandOf decodes the first phit's sideband word. present is false when
// the flit was never stamped (a sender outside the reliability layer).
func SidebandOf(f *Flit) (sb Sideband, present bool) {
	w := f[0].SB
	if w&sbPresent == 0 {
		return Sideband{}, false
	}
	return Sideband{
		Seq:      uint32(w>>8) & SeqMask,
		Ack:      uint32(w>>32) & SeqMask,
		AckValid: w&sbAckValid != 0,
	}, true
}

// CheckSideband decodes and verifies a flit's sideband. ok is true only
// when the sideband is present and the stored CRC matches the flit's
// contents.
func CheckSideband(f *Flit) (sb Sideband, present, ok bool) {
	sb, present = SidebandOf(f)
	if !present {
		return sb, false, false
	}
	return sb, true, uint8(f[0].SB) == FlitCRC(f, sb)
}

// SeqDelta returns the signed serial-number distance a-b of two 24-bit
// sequence values: positive when a is ahead of b, negative when behind.
func SeqDelta(a, b uint32) int32 {
	return int32(((a-b)&SeqMask)<<8) >> 8
}
