package phit

import (
	"errors"
	"fmt"
)

// A HeaderLayout describes how the first word of a packet packs the source
// route, the destination queue id and the piggybacked credits:
//
//	bit 0                                        WordBits-1
//	| path (PathBits)                | qid | credits | unused |
//
// The path field holds up to MaxHops() output-port indices of PortBits
// each, least-significant hop first. Every router consumes the low PortBits
// and shifts the remaining path down, so the port for the *current* hop is
// always in the low bits — exactly the hardware behaviour of the aelite
// Header Parsing Unit, which therefore needs no per-hop counter. The qid
// and credit fields sit at fixed positions above the path field and are
// untouched by routers; only the destination NI reads them.
type HeaderLayout struct {
	WordBits   int // link data width; path+qid+credits must fit
	PortBits   int // bits per hop in the path field
	PathBits   int // total width of the path field
	QIDBits    int // destination queue id width
	CreditBits int // piggybacked credit counter width
}

// DefaultLayout is sized for the paper's experiments: 32-bit words, routers
// up to arity 8 (3 bits per hop), up to 7 hops, 32 queues per NI and up to
// 31 credits per header.
var DefaultLayout = HeaderLayout{
	WordBits:   32,
	PortBits:   3,
	PathBits:   21,
	QIDBits:    5,
	CreditBits: 5,
}

// WideLayout is the scaled-up instance for large meshes: 64-bit links,
// the same arity-8 routers, up to 16 hops (enough for minimal routes on
// meshes up to diameter 14, e.g. 8x8), 64 queues per NI and up to 127
// credits per header. Scale studies pair it with 8-byte words so the
// header still occupies exactly one link word.
var WideLayout = HeaderLayout{
	WordBits:   64,
	PortBits:   3,
	PathBits:   48,
	QIDBits:    6,
	CreditBits: 7,
}

// Validate checks internal consistency of the layout.
func (l HeaderLayout) Validate() error {
	switch {
	case l.WordBits <= 0 || l.WordBits > 64:
		return fmt.Errorf("phit: word width %d out of range (1..64)", l.WordBits)
	case l.PortBits <= 0 || l.PortBits > 8:
		return fmt.Errorf("phit: port bits %d out of range (1..8)", l.PortBits)
	case l.PathBits < l.PortBits:
		return fmt.Errorf("phit: path field (%d bits) narrower than one hop (%d bits)", l.PathBits, l.PortBits)
	case l.PathBits%l.PortBits != 0:
		return fmt.Errorf("phit: path field (%d bits) not a multiple of port bits (%d)", l.PathBits, l.PortBits)
	case l.QIDBits < 0 || l.CreditBits < 0:
		return errors.New("phit: negative field width")
	case l.PathBits+l.QIDBits+l.CreditBits > l.WordBits:
		return fmt.Errorf("phit: fields (%d+%d+%d bits) exceed word width %d",
			l.PathBits, l.QIDBits, l.CreditBits, l.WordBits)
	}
	return nil
}

// MaxHops returns the longest source route the path field can hold.
func (l HeaderLayout) MaxHops() int { return l.PathBits / l.PortBits }

// MaxPort returns the largest encodable output-port index.
func (l HeaderLayout) MaxPort() int { return 1<<l.PortBits - 1 }

// MaxQID returns the largest encodable queue id.
func (l HeaderLayout) MaxQID() int { return 1<<l.QIDBits - 1 }

// MaxCredits returns the largest credit count one header can carry.
func (l HeaderLayout) MaxCredits() int { return 1<<l.CreditBits - 1 }

func (l HeaderLayout) pathMask() Word   { return 1<<l.PathBits - 1 }
func (l HeaderLayout) portMask() Word   { return 1<<l.PortBits - 1 }
func (l HeaderLayout) qidShift() int    { return l.PathBits }
func (l HeaderLayout) creditShift() int { return l.PathBits + l.QIDBits }

// Encode packs a source route, queue id and credit count into a header
// word. The path lists the output-port index consumed at each successive
// router, first hop first.
func (l HeaderLayout) Encode(path []int, qid, credits int) (Word, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if len(path) > l.MaxHops() {
		return 0, fmt.Errorf("phit: path of %d hops exceeds layout maximum %d", len(path), l.MaxHops())
	}
	if qid < 0 || qid > l.MaxQID() {
		return 0, fmt.Errorf("phit: qid %d out of range (0..%d)", qid, l.MaxQID())
	}
	if credits < 0 || credits > l.MaxCredits() {
		return 0, fmt.Errorf("phit: credits %d out of range (0..%d)", credits, l.MaxCredits())
	}
	var w Word
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		if p < 0 || p > l.MaxPort() {
			return 0, fmt.Errorf("phit: port %d at hop %d out of range (0..%d)", p, i, l.MaxPort())
		}
		w = w<<l.PortBits | Word(p)
	}
	w |= Word(qid) << l.qidShift()
	w |= Word(credits) << l.creditShift()
	return w, nil
}

// NextPort extracts the output port for the current hop and returns the
// header with the path shifted down by one hop, as the aelite HPU does in
// hardware.
func (l HeaderLayout) NextPort(w Word) (port int, shifted Word) {
	port = int(w & l.portMask())
	path := (w & l.pathMask()) >> l.PortBits
	shifted = (w &^ l.pathMask()) | path
	return port, shifted
}

// QID extracts the destination queue id.
func (l HeaderLayout) QID(w Word) int {
	return int(w>>l.qidShift()) & l.MaxQID()
}

// Credits extracts the piggybacked credit count.
func (l HeaderLayout) Credits(w Word) int {
	return int(w>>l.creditShift()) & l.MaxCredits()
}

// WithCredits returns the header word with its credit field replaced.
func (l HeaderLayout) WithCredits(w Word, credits int) (Word, error) {
	if credits < 0 || credits > l.MaxCredits() {
		return 0, fmt.Errorf("phit: credits %d out of range (0..%d)", credits, l.MaxCredits())
	}
	mask := Word(l.MaxCredits()) << l.creditShift()
	return (w &^ mask) | Word(credits)<<l.creditShift(), nil
}

// DecodePath recovers the remaining path (up to maxHops entries, or until
// the field is exhausted) from a header word. It is primarily a test and
// diagnostics helper: hardware never decodes the whole path at once.
func (l HeaderLayout) DecodePath(w Word, hops int) []int {
	if hops > l.MaxHops() {
		hops = l.MaxHops()
	}
	out := make([]int, 0, hops)
	path := w & l.pathMask()
	for i := 0; i < hops; i++ {
		out = append(out, int(path&l.portMask()))
		path >>= l.PortBits
	}
	return out
}
