// Package phit defines the data units of the aelite network on chip.
//
// Terminology follows the paper (Hansson et al., DATE 2009):
//
//   - a word, or physical digit (phit), is what a link transfers per cycle;
//   - a flit (flow control digit) is the unit of TDM arbitration and is
//     FlitWords words long (3 throughout the paper);
//   - a packet is a header word followed by payload words, terminated by an
//     End-of-Packet (EoP) marker. In aelite the valid and EoP bits are
//     explicit sideband control signals, not encoded in the data word,
//     which keeps the Header Parsing Unit off the critical path.
//
// The package also implements the bit-exact header codec: the source route
// (a sequence of output-port indices), the destination queue id and the
// piggybacked end-to-end flow-control credits are packed into the first
// word of a packet.
//
// Cross-package contract: HeaderLayout is the single source of truth for
// header packing. NIs encode with it, router Header Parsing Units shift
// with NextPort, and core.buildRequests rejects candidate routes longer
// than MaxHops(). DefaultLayout is the paper's 32-bit instance;
// WideLayout is the 64-bit scaled-up instance large-mesh studies use.
package phit
