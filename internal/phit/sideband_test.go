package phit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testFlit() Flit {
	return Flit{
		{Valid: true, Kind: Header, Data: 0x1234, Meta: Meta{Conn: 3}},
		{Valid: true, Kind: Payload, Data: 42, Meta: Meta{Conn: 3, Seq: 42}},
		{Valid: true, Kind: Payload, Data: 43, EoP: true, Meta: Meta{Conn: 3, Seq: 43}},
	}
}

func TestSidebandRoundTrip(t *testing.T) {
	f := testFlit()
	in := Sideband{Seq: 0xabcdef, Ack: 0x123456, AckValid: true}
	StampSideband(&f, in)
	sb, present, ok := CheckSideband(&f)
	if !present || !ok {
		t.Fatalf("stamped flit: present=%v ok=%v", present, ok)
	}
	if sb != in {
		t.Fatalf("round trip: got %+v want %+v", sb, in)
	}
}

func TestSidebandAbsent(t *testing.T) {
	f := testFlit()
	if _, present, _ := CheckSideband(&f); present {
		t.Fatal("unstamped flit reported a sideband")
	}
}

// TestSidebandDetectsCorruption: any single-bit payload flip, control-bit
// flip or phit truncation must fail the CRC check. The header word is
// exempt — routers rewrite it in flight (see FlitCRC).
func TestSidebandDetectsCorruption(t *testing.T) {
	stamped := testFlit()
	StampSideband(&stamped, Sideband{Seq: 7})
	for w := 0; w < FlitWords; w++ {
		for bit := 0; bit < 64; bit++ {
			f := stamped
			f[w].Data ^= Word(1) << uint(bit)
			_, _, ok := CheckSideband(&f)
			if header := f[w].Kind == Header; ok != header {
				t.Fatalf("flip of word %d bit %d: ok=%v (header=%v)", w, bit, ok, header)
			}
		}
		f := stamped
		f[w].EoP = !f[w].EoP
		if _, _, ok := CheckSideband(&f); ok {
			t.Fatalf("EoP flip on word %d went undetected", w)
		}
		f = stamped
		f[w] = IdlePhit
		f[0].SB = stamped[0].SB
		if _, _, ok := CheckSideband(&f); ok {
			t.Fatalf("truncation at word %d went undetected", w)
		}
	}
}

func TestSeqDelta(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int32
	}{
		{5, 5, 0},
		{6, 5, 1},
		{5, 6, -1},
		{0, SeqMask, 1},  // wraparound forward
		{SeqMask, 0, -1}, // wraparound backward
		{100, 0, 100},
		{0, 100, -100},
	}
	for _, c := range cases {
		if got := SeqDelta(c.a, c.b); got != c.want {
			t.Errorf("SeqDelta(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestSeqDeltaQuick: for any base and any in-window distance, stepping the
// base by d and comparing against the original recovers d exactly — in
// particular across the 2^24 wrap, where unsigned subtraction alone would
// report a distance of millions.
func TestSeqDeltaQuick(t *testing.T) {
	const half = int32(1) << 23 // serial-number comparison window
	f := func(base uint32, raw int32) bool {
		b := base & SeqMask
		d := raw % half // any representable forward/backward distance
		a := uint32(int64(b)+int64(d)) & SeqMask
		return SeqDelta(a, b) == d
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(24))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSidebandSeqWrap walks the sequence number across the SeqMask
// boundary: each stamped value must round-trip unmasked bits away, and
// consecutive steps must always compare as exactly one apart.
func TestSidebandSeqWrap(t *testing.T) {
	prev := SeqMask - 3
	for i := uint32(0); i < 8; i++ {
		seq := (SeqMask - 3 + i) & SeqMask
		f := testFlit()
		StampSideband(&f, Sideband{Seq: seq, Ack: seq, AckValid: true})
		sb, present, ok := CheckSideband(&f)
		if !present || !ok {
			t.Fatalf("seq %#x: present=%v ok=%v", seq, present, ok)
		}
		if sb.Seq != seq || sb.Ack != seq {
			t.Fatalf("seq %#x round-tripped as %#x/%#x", seq, sb.Seq, sb.Ack)
		}
		if i > 0 {
			if d := SeqDelta(sb.Seq, prev); d != 1 {
				t.Fatalf("step %#x -> %#x compared as %d, want 1", prev, sb.Seq, d)
			}
		}
		prev = sb.Seq
	}
	// Bits above the 24-bit field are masked off at stamp time, so an
	// unmasked counter wraps identically to a masked one.
	f := testFlit()
	StampSideband(&f, Sideband{Seq: SeqMask + 5})
	if sb, _, _ := CheckSideband(&f); sb.Seq != 4 {
		t.Fatalf("overflowed seq stamped as %#x, want 4", sb.Seq)
	}
}
