package phit

import "testing"

func testFlit() Flit {
	return Flit{
		{Valid: true, Kind: Header, Data: 0x1234, Meta: Meta{Conn: 3}},
		{Valid: true, Kind: Payload, Data: 42, Meta: Meta{Conn: 3, Seq: 42}},
		{Valid: true, Kind: Payload, Data: 43, EoP: true, Meta: Meta{Conn: 3, Seq: 43}},
	}
}

func TestSidebandRoundTrip(t *testing.T) {
	f := testFlit()
	in := Sideband{Seq: 0xabcdef, Ack: 0x123456, AckValid: true}
	StampSideband(&f, in)
	sb, present, ok := CheckSideband(&f)
	if !present || !ok {
		t.Fatalf("stamped flit: present=%v ok=%v", present, ok)
	}
	if sb != in {
		t.Fatalf("round trip: got %+v want %+v", sb, in)
	}
}

func TestSidebandAbsent(t *testing.T) {
	f := testFlit()
	if _, present, _ := CheckSideband(&f); present {
		t.Fatal("unstamped flit reported a sideband")
	}
}

// TestSidebandDetectsCorruption: any single-bit payload flip, control-bit
// flip or phit truncation must fail the CRC check. The header word is
// exempt — routers rewrite it in flight (see FlitCRC).
func TestSidebandDetectsCorruption(t *testing.T) {
	stamped := testFlit()
	StampSideband(&stamped, Sideband{Seq: 7})
	for w := 0; w < FlitWords; w++ {
		for bit := 0; bit < 64; bit++ {
			f := stamped
			f[w].Data ^= Word(1) << uint(bit)
			_, _, ok := CheckSideband(&f)
			if header := f[w].Kind == Header; ok != header {
				t.Fatalf("flip of word %d bit %d: ok=%v (header=%v)", w, bit, ok, header)
			}
		}
		f := stamped
		f[w].EoP = !f[w].EoP
		if _, _, ok := CheckSideband(&f); ok {
			t.Fatalf("EoP flip on word %d went undetected", w)
		}
		f = stamped
		f[w] = IdlePhit
		f[0].SB = stamped[0].SB
		if _, _, ok := CheckSideband(&f); ok {
			t.Fatalf("truncation at word %d went undetected", w)
		}
	}
}

func TestSeqDelta(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int32
	}{
		{5, 5, 0},
		{6, 5, 1},
		{5, 6, -1},
		{0, SeqMask, 1},  // wraparound forward
		{SeqMask, 0, -1}, // wraparound backward
		{100, 0, 100},
		{0, 100, -100},
	}
	for _, c := range cases {
		if got := SeqDelta(c.a, c.b); got != c.want {
			t.Errorf("SeqDelta(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
