package phit

import (
	"fmt"

	"repro/internal/clock"
)

// FlitWords is the flit size in words. The paper fixes it to 3: the router
// has a 3-stage pipeline and the TDM slot, the flit and the router
// forwarding delay all coincide at 3 cycles.
const FlitWords = 3

// A Word is the bit-exact content of one phit. Widths above 64 bits appear
// only in the area model, never on simulated links, so uint64 suffices.
type Word uint64

// A ConnID identifies a connection (a unidirectional channel between two IP
// ports). The zero value means "no connection".
type ConnID int32

// None is the absent connection.
const None ConnID = 0

// Kind distinguishes the roles a valid phit can play.
type Kind uint8

const (
	// Idle marks an invalid phit (valid bit low).
	Idle Kind = iota
	// Header is the first word of a packet: path, queue id, credits.
	Header
	// Payload is user data.
	Payload
	// CreditOnly marks a header whose packet carries no payload; it
	// exists purely to return end-to-end credits on an otherwise idle
	// reverse channel.
	CreditOnly
	// Padding fills a TDM slot up to the full flit size. aelite links
	// always carry whole 3-word flits in used slots so the mesochronous
	// link FSM (paper Section V) can forward exactly FlitWords words per
	// flit cycle; padding words are part of the packet (they may carry
	// the EoP marker) and are discarded by the destination NI.
	Padding
)

func (k Kind) String() string {
	switch k {
	case Idle:
		return "idle"
	case Header:
		return "header"
	case Payload:
		return "payload"
	case CreditOnly:
		return "credit"
	case Padding:
		return "pad"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Meta is simulation-side bookkeeping attached to a phit. It has no
// hardware counterpart; it exists so that measurement (latency per word,
// per-connection accounting) and invariant checks do not have to re-derive
// identity from bit patterns.
type Meta struct {
	Conn     ConnID
	Seq      int64      // payload word sequence number within the connection
	Injected clock.Time // when the word was accepted by the source NI queue
	Sent     clock.Time // when the word left the source NI onto the network
}

// A Phit is the value on a link during one cycle: sideband valid and EoP
// control bits plus one data word.
type Phit struct {
	Valid bool
	EoP   bool
	Kind  Kind
	Data  Word
	Meta  Meta
	// SB is the reliability sideband word (see sideband.go), carried on
	// the first phit of a flit when the end-to-end reliability layer is
	// active and zero otherwise. Like the valid and EoP bits it models
	// extra link wires: routers, link stages and wrappers forward it
	// untouched, and the transient-fault model never flips its bits (the
	// CRC it carries protects the data wires, and real deployments would
	// protect the sideband separately, e.g. with a stronger code or
	// triplication).
	SB Word
}

// IdlePhit is the value of an undriven link.
var IdlePhit = Phit{}

func (p Phit) String() string {
	if !p.Valid {
		return "idle"
	}
	eop := ""
	if p.EoP {
		eop = "|eop"
	}
	return fmt.Sprintf("%s(c%d #%d 0x%x%s)", p.Kind, p.Meta.Conn, p.Meta.Seq, uint64(p.Data), eop)
}

// A Flit is one TDM slot's worth of phits.
type Flit [FlitWords]Phit

// Empty reports whether no phit in the flit is valid. Empty flits are the
// "empty tokens" of the asynchronous wrapper (paper Section VI): they carry
// no data but synchronise neighbouring elements.
func (f Flit) Empty() bool {
	for _, p := range f {
		if p.Valid {
			return false
		}
	}
	return true
}
