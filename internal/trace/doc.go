// Package trace is the structured observability layer of the aelite
// reproduction: it records every flit's lifecycle — NI injection, per-hop
// router traversal, link stage forwarding, ejection — as typed events with
// exact picosecond timestamps.
//
// The paper's central claim is predictability: per-connection latency and
// throughput bounds that hold cycle-for-cycle. Proving that claim needs an
// instrument, not prints. This package replaces the simulator's historical
// stringly-typed trace hook with an event bus that
//
//   - costs nothing when no sink is attached (components hold a nil
//     *Emitter and skip emission on a single pointer test);
//   - is deterministic: events are emitted from the engine's exact-time
//     edge dispatch in component add order, so the same seed produces a
//     byte-identical event stream;
//   - aggregates into the measurements NoC evaluations live on: per-link
//     slot utilisation, per-connection latency histograms and buffer
//     occupancy high-water marks (Metrics), and
//   - exports Chrome trace-event JSON loadable in chrome://tracing or
//     Perfetto (Chrome), plus CSV/JSON metric dumps.
//
// Component names are interned into small integer ids at registration time
// so that emission never allocates or hashes strings.
//
// Typical use — attach a bus with a metrics sink before running, then
// render the aggregated report:
//
//	bus := trace.NewBus()
//	mx := trace.NewMetrics(bus)
//	net.AttachTracer(bus)
//	net.Run(warmupNs, measureNs)
//	rep := mx.Report(int64(net.Engine().Now()), int64(net.BaseClock().Period))
//	rep.WriteJSON(os.Stdout) // or rep.WriteCSV
//
// A Bus and its sinks belong to exactly one engine: they are as
// single-goroutine as the components that feed them. Parallel sweeps give
// each point its own bus (see internal/parallel).
package trace
