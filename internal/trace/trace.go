package trace

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/phit"
)

// Kind classifies one lifecycle event.
type Kind uint8

const (
	// Inject: a payload word was accepted into the source NI's IP-side
	// FIFO (the start of the latency span the paper's requirements cover).
	Inject Kind = iota
	// Send: a payload word left the source NI onto the network.
	// Ref holds the word's injection instant.
	Send
	// SlotStart: an NI began a flit in an owned TDM slot. Slot is the
	// table slot, Arg the number of payload words carried (0 for a
	// credit-only or padding flit).
	SlotStart
	// RouterForward: a router switched one flit to an output port
	// (Arg = output port index). Emitted at the flit's first word and
	// stamped with that word's connection and sequence.
	RouterForward
	// LinkForward: a mesochronous link stage FSM began forwarding one
	// flit toward its reader.
	LinkForward
	// Eject: a payload word was delivered at the destination NI.
	// Ref holds the word's injection instant, so Time-Ref is the
	// end-to-end latency.
	Eject
	// Credit: end-to-end credits returned to a sender (Conn is the
	// credited out-connection, Arg the credit count in words).
	Credit
	// Blocked: an owned slot carried no payload because the connection's
	// end-to-end credits were exhausted (the back-pressure signal of
	// paper Section IV.A).
	Blocked
	// Occupancy: a buffer's depth reached a new high-water mark
	// (Arg = words). Emitted only when the mark rises, so steady-state
	// traffic costs nothing; sinks keep the maximum.
	Occupancy
	// WrapperFire: an asynchronous wrapper completed one dataflow
	// iteration (Arg = cycles it spent stalled since the previous fire).
	WrapperFire
	// CRCDrop: the reliability layer discarded an arriving flit or phit
	// (Arg = drop reason, see reliable.Drop*; Seq = the flit's sideband
	// sequence number, or the phit count for truncation drops).
	CRCDrop
	// Retransmit: a windowed sender re-sent one unacked flit in a
	// go-back-N round (Seq = the flit's sequence number, Arg = the
	// consecutive timeout-round count).
	Retransmit
	// AckAdvance: a cumulative ack advanced a sender's retransmission
	// window (Seq = the new window base, Arg = payload words returned to
	// the credit counter).
	AckAdvance
	// Recovered: in-order delivery resumed on a tracked connection after
	// loss (Arg = the head-of-line stall in picoseconds — the recovery
	// latency the histograms aggregate).
	Recovered
	// Quarantine: a connection exhausted its retry budget and stopped
	// transmitting (Arg = flits left unacked).
	Quarantine
	// Reroute: a quarantined connection was closed and re-admitted over an
	// alternate path by the self-healing layer (Arg = recovery latency in
	// picoseconds, from the quarantine instant to the instant the
	// replacement connection was admitted; Ref = the quarantine instant).
	// Emitted with the *original* connection id, so its metrics show the
	// service interruption it survived.
	Reroute

	kindCount = int(Reroute) + 1
)

var kindNames = [kindCount]string{
	Inject:        "inject",
	Send:          "send",
	SlotStart:     "slot",
	RouterForward: "route",
	LinkForward:   "link",
	Eject:         "eject",
	Credit:        "credit",
	Blocked:       "blocked",
	Occupancy:     "occupancy",
	WrapperFire:   "fire",
	CRCDrop:       "crcdrop",
	Retransmit:    "rexmit",
	AckAdvance:    "ack",
	Recovered:     "recovered",
	Quarantine:    "quarantine",
	Reroute:       "reroute",
}

func (k Kind) String() string {
	if int(k) < kindCount {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// busyCycles is each kind's link-occupancy weight in clock cycles, used by
// Metrics for utilisation: every per-flit event occupies its output for a
// whole flit cycle (the TDM slot is reserved end to end regardless of how
// many words it carries).
var busyCycles = [kindCount]int64{
	SlotStart:     phit.FlitWords,
	RouterForward: phit.FlitWords,
	LinkForward:   phit.FlitWords,
	WrapperFire:   phit.FlitWords,
}

// NoSlot marks an event with no meaningful TDM slot.
const NoSlot int32 = -1

// A CompID is an interned component name (see Bus.Emitter).
type CompID int32

// An Event is one observation in a flit's lifecycle. Fields that do not
// apply to a Kind are zero (Slot is NoSlot where meaningless).
type Event struct {
	Time clock.Time  // exact simulation instant, ps
	Ref  clock.Time  // secondary instant (injection time on Send/Eject)
	Seq  int64       // payload word sequence number within the connection
	Arg  int64       // kind-specific argument (port, words, depth, cycles)
	Conn phit.ConnID // connection, or phit.None
	Comp CompID      // emitting component
	Slot int32       // TDM slot, or NoSlot
	Kind Kind
}

// A Sink receives every event emitted on a Bus.
type Sink interface {
	Event(ev Event)
}

// A Bus fans events out to sinks and interns component names. It is not
// safe for concurrent use; the simulation engine is single-threaded by
// construction.
type Bus struct {
	comps  []string
	byName map[string]CompID
	sinks  []Sink

	// silent suppresses delivery. The replay fast path mutes the bus
	// while it resimulates instants whose events were already emitted
	// from the recorded schedule, keeping deopt trace-invisible.
	silent bool
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{byName: make(map[string]CompID)}
}

// Attach adds a sink; every subsequent event is delivered to it.
func (b *Bus) Attach(s Sink) { b.sinks = append(b.sinks, s) }

// Component interns a component name, returning its stable id. Interning
// order is the registration order, which wiring code keeps deterministic.
func (b *Bus) Component(name string) CompID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := CompID(len(b.comps))
	b.comps = append(b.comps, name)
	b.byName[name] = id
	return id
}

// ComponentName returns the name behind an interned id.
func (b *Bus) ComponentName(id CompID) string {
	if int(id) < 0 || int(id) >= len(b.comps) {
		return fmt.Sprintf("comp(%d)", int32(id))
	}
	return b.comps[id]
}

// Components returns the interned component names in id order.
func (b *Bus) Components() []string {
	return append([]string(nil), b.comps...)
}

// Emit delivers one event to every attached sink.
func (b *Bus) Emit(ev Event) {
	if b.silent {
		return
	}
	for _, s := range b.sinks {
		s.Event(ev)
	}
}

// SetSilent suppresses (true) or restores (false) event delivery.
func (b *Bus) SetSilent(on bool) { b.silent = on }

// Emitter returns a per-component emission handle. Components store the
// handle (nil when tracing is disabled) and test it before building an
// Event, which keeps the disabled path to a single branch.
func (b *Bus) Emitter(name string) *Emitter {
	if b == nil {
		return nil
	}
	return &Emitter{bus: b, comp: b.Component(name)}
}

// An Emitter stamps events with its component id and forwards them to the
// bus. A nil *Emitter means tracing is disabled.
type Emitter struct {
	bus  *Bus
	comp CompID
}

// Emit stamps ev.Comp and delivers the event. Callers must nil-test the
// emitter first (the zero-cost contract); Emit on a nil emitter panics.
func (e *Emitter) Emit(ev Event) {
	if e.bus.silent {
		return
	}
	ev.Comp = e.comp
	for _, s := range e.bus.sinks {
		s.Event(ev)
	}
}

// Comp returns the emitter's interned component id.
func (e *Emitter) Comp() CompID { return e.comp }
