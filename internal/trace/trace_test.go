package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/phit"
)

func TestKindString(t *testing.T) {
	if Inject.String() != "inject" || Eject.String() != "eject" {
		t.Errorf("kind names: %v %v", Inject, Eject)
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestBusInterning(t *testing.T) {
	b := NewBus()
	a := b.Component("r0")
	if b.Component("r0") != a {
		t.Error("re-interning changed the id")
	}
	c := b.Component("r1")
	if c == a {
		t.Error("distinct names share an id")
	}
	if b.ComponentName(a) != "r0" || b.ComponentName(c) != "r1" {
		t.Error("name round-trip broken")
	}
	if got := b.ComponentName(CompID(99)); got != "comp(99)" {
		t.Errorf("out-of-range name = %q", got)
	}
	names := b.Components()
	if len(names) != 2 || names[0] != "r0" || names[1] != "r1" {
		t.Errorf("Components = %v", names)
	}
}

func TestNilBusEmitter(t *testing.T) {
	var b *Bus
	if b.Emitter("x") != nil {
		t.Error("nil bus produced a non-nil emitter")
	}
}

type sliceSink struct{ evs []Event }

func (s *sliceSink) Event(ev Event) { s.evs = append(s.evs, ev) }

func TestEmitterStampsComp(t *testing.T) {
	b := NewBus()
	s := &sliceSink{}
	b.Attach(s)
	em := b.Emitter("ni0")
	em.Emit(Event{Time: 10, Kind: Inject, Conn: 3, Slot: NoSlot})
	if len(s.evs) != 1 || s.evs[0].Comp != em.Comp() {
		t.Fatalf("events = %+v", s.evs)
	}
	if b.ComponentName(s.evs[0].Comp) != "ni0" {
		t.Error("component stamp wrong")
	}
}

func TestTsString(t *testing.T) {
	cases := []struct {
		ps   int64
		want string
	}{
		{0, "0.000000"},
		{1, "0.000001"},
		{1_000_000, "1.000000"},
		{1_234_567, "1.234567"},
		{-1, "-0.000001"},
	}
	for _, c := range cases {
		if got := tsString(c.ps); got != c.want {
			t.Errorf("tsString(%d) = %q, want %q", c.ps, got, c.want)
		}
	}
}

// chromeDoc is the subset of the Chrome trace-event format the tests
// decode.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string          `json:"ph"`
		Tid  int             `json:"tid"`
		Name string          `json:"name"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeOutput(t *testing.T) {
	b := NewBus()
	c := NewChrome(b)
	c.SetFlitCycle(6000)
	em := b.Emitter("ni.00")
	em.Emit(Event{Time: 1000, Kind: Inject, Conn: 1, Seq: 0, Slot: NoSlot})
	em.Emit(Event{Time: 4000, Kind: SlotStart, Conn: 1, Slot: 2, Arg: 2})
	em.Emit(Event{Time: 5000, Kind: Occupancy, Arg: 3, Slot: NoSlot})
	em.Emit(Event{Time: 9000, Ref: 1000, Kind: Eject, Conn: 1, Seq: 0, Slot: NoSlot})
	if c.Len() != 4 {
		t.Fatalf("buffered = %d", c.Len())
	}

	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo count %d != bytes %d", n, buf.Len())
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 thread_name metadata + 4 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("trace events = %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "thread_name" {
		t.Errorf("first event not metadata: %+v", doc.TraceEvents[0])
	}
	byName := map[string]string{}
	for _, ev := range doc.TraceEvents[1:] {
		byName[ev.Name] = ev.Ph
	}
	if byName["inject c1"] != "i" || byName["slot c1"] != "X" || byName["occupancy"] != "C" || byName["eject c1"] != "i" {
		t.Errorf("phase mapping = %v", byName)
	}

	// Same events again render byte-identically.
	var buf2 bytes.Buffer
	if _, err := c.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeated WriteTo not byte-identical")
	}
}

func TestChromeInstantWithoutFlitCycle(t *testing.T) {
	b := NewBus()
	c := NewChrome(b)
	b.Emitter("l0").Emit(Event{Time: 100, Kind: LinkForward, Conn: 2, Slot: NoSlot})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"i"`) || strings.Contains(buf.String(), `"ph":"X"`) {
		t.Errorf("flit event without SetFlitCycle rendered as span:\n%s", buf.String())
	}
}

func TestMetricsAggregation(t *testing.T) {
	b := NewBus()
	m := NewMetrics(b)
	ni := b.Emitter("ni.00")
	rt := b.Emitter("r.00")
	// Two words of connection 1: injected at 0/1000, ejected at 8000/9000.
	ni.Emit(Event{Time: 0, Kind: Inject, Conn: 1, Seq: 0, Slot: NoSlot})
	ni.Emit(Event{Time: 1000, Kind: Inject, Conn: 1, Seq: 1, Slot: NoSlot})
	ni.Emit(Event{Time: 3000, Kind: SlotStart, Conn: 1, Slot: 0, Arg: 2})
	rt.Emit(Event{Time: 6000, Kind: RouterForward, Conn: 1, Seq: 0, Arg: 2, Slot: NoSlot})
	ni.Emit(Event{Time: 8000, Ref: 0, Kind: Eject, Conn: 1, Seq: 0, Slot: NoSlot})
	ni.Emit(Event{Time: 9000, Ref: 1000, Kind: Eject, Conn: 1, Seq: 1, Slot: NoSlot})
	ni.Emit(Event{Time: 9000, Kind: Blocked, Conn: 2, Slot: 3})
	ni.Emit(Event{Time: 9500, Kind: Occupancy, Arg: 4, Slot: NoSlot})
	ni.Emit(Event{Time: 9600, Kind: Occupancy, Arg: 2, Slot: NoSlot})

	if m.Events() != 9 || m.Count(Inject) != 2 || m.Count(Eject) != 2 {
		t.Fatalf("counts: events=%d inject=%d eject=%d", m.Events(), m.Count(Inject), m.Count(Eject))
	}
	c1 := m.Conn(1)
	if c1 == nil || c1.Injected != 2 || c1.Delivered != 2 {
		t.Fatalf("conn 1 = %+v", c1)
	}
	if c1.Latency.Mean() != 8 { // both words took 8000 ps = 8 ns
		t.Errorf("latency mean = %v ns", c1.Latency.Mean())
	}
	if m.Conn(2).Blocked != 1 {
		t.Error("blocked not counted")
	}
	if m.Conn(phit.None) != nil {
		t.Error("conn 0 aggregated")
	}

	rep := m.Report(10000, 1000) // 10 cycles observed
	if rep.Events != 9 || len(rep.Conns) != 2 || len(rep.Comps) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	niRep := rep.Comps[0]
	if niRep.Component != "ni.00" || niRep.MaxOccupancy != 4 {
		t.Errorf("ni comp report = %+v", niRep)
	}
	// NI busy cycles: one SlotStart = FlitWords.
	if niRep.BusyCycles != int64(phit.FlitWords) {
		t.Errorf("ni busy = %d", niRep.BusyCycles)
	}
	if want := float64(phit.FlitWords) / 10; math.Abs(niRep.Utilisation-want) > 1e-12 {
		t.Errorf("ni utilisation = %v, want %v", niRep.Utilisation, want)
	}
	// Router: one per-flit RouterForward = FlitWords cycles.
	if rep.Comps[1].BusyCycles != int64(phit.FlitWords) {
		t.Errorf("router busy = %d", rep.Comps[1].BusyCycles)
	}

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if round.Events != rep.Events || len(round.Conns) != len(rep.Conns) {
		t.Error("JSON round-trip lost data")
	}

	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	// Header + 2 conns + header + 2 comps.
	if len(lines) != 6 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csvBuf.String())
	}
	// Connection 2 delivered nothing: its latency cells must be empty, not 0.
	if !strings.HasPrefix(lines[2], "conn,2,") || !strings.HasSuffix(lines[2], ",,,,") {
		t.Errorf("undelivered conn row = %q", lines[2])
	}
	// Connection 1 has real latency figures.
	if !strings.Contains(lines[1], "8.000") {
		t.Errorf("delivered conn row = %q", lines[1])
	}
}

// TestMetricsReportDegenerateInputsStayJSON force-feeds the aggregates
// the residue of degenerate runs — NaN from an empty span, infinities
// from a zero divisor — and requires the report to still marshal and
// round-trip as valid JSON. encoding/json rejects NaN/Inf outright, so
// before sanitisation one degenerate connection failed the entire
// report write.
func TestMetricsReportDegenerateInputsStayJSON(t *testing.T) {
	b := NewBus()
	m := NewMetrics(b)
	ni := b.Emitter("ni.00")
	ni.Emit(Event{Time: 1000, Ref: 0, Kind: Eject, Conn: 1, Seq: 0, Slot: NoSlot})
	cm := m.Conn(1)
	cm.Latency.Add(math.NaN())
	cm.Latency.Add(math.Inf(1))
	cm.Recovery.Add(math.Inf(-1))

	rep := m.Report(0, 1000)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("degenerate report failed to marshal: %v", err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	for _, c := range round.Conns {
		for name, v := range map[string]float64{
			"lat_min": c.LatMinNs, "lat_mean": c.LatMeanNs,
			"lat_p99": c.LatP99Ns, "lat_max": c.LatMaxNs,
			"rec_min": c.RecMinNs, "rec_mean": c.RecMeanNs,
			"rec_p99": c.RecP99Ns, "rec_max": c.RecMaxNs,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("conn %d %s = %v survived sanitisation", c.Conn, name, v)
			}
		}
	}
	// The CSV writer must swallow the same inputs.
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("degenerate report failed CSV render: %v", err)
	}
}

// TestCSVHostileComponentName round-trips a report whose component name
// contains every character CSV treats as structure. The row must parse
// back to exactly the original name without shifting any column.
func TestCSVHostileComponentName(t *testing.T) {
	hostile := `ni "a,b",x` + "\n" + `y`
	b := NewBus()
	m := NewMetrics(b)
	em := b.Emitter(hostile)
	em.Emit(Event{Time: 1000, Kind: SlotStart, Conn: 1, Slot: 0, Arg: 2})
	rep := m.Report(10000, 1000)

	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&csvBuf)
	rd.FieldsPerRecord = -1 // the two sections have different widths
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("CSV with hostile name unparseable: %v\n%s", err, csvBuf.String())
	}
	var comp []string
	for _, row := range rows {
		if row[0] == "comp" {
			comp = row
		}
	}
	if comp == nil {
		t.Fatalf("no comp row parsed:\n%s", csvBuf.String())
	}
	if len(comp) != 6 {
		t.Fatalf("hostile name shifted columns: %d cells %q", len(comp), comp)
	}
	if comp[1] != hostile {
		t.Errorf("name round-trip: got %q, want %q", comp[1], hostile)
	}
	if comp[2] != "1" {
		t.Errorf("events cell after hostile name = %q, want 1", comp[2])
	}

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatalf("JSON with hostile name invalid: %v", err)
	}
	if round.Comps[0].Component != hostile {
		t.Errorf("JSON name round-trip: got %q", round.Comps[0].Component)
	}
}

func TestMetricsWindowFallback(t *testing.T) {
	b := NewBus()
	m := NewMetrics(b)
	em := b.Emitter("x")
	em.Emit(Event{Time: 2000, Kind: SlotStart, Conn: 1, Slot: 0})
	em.Emit(Event{Time: 8000, Kind: SlotStart, Conn: 1, Slot: 0})
	rep := m.Report(0, 1000)
	if rep.WindowPs != 6000 {
		t.Errorf("window fallback = %d, want 6000 (event span)", rep.WindowPs)
	}
	// Utilisation is clamped to 1 even when flits straddle the window edge.
	if rep.Comps[0].Utilisation > 1 {
		t.Errorf("utilisation = %v, want clamped <= 1", rep.Comps[0].Utilisation)
	}
}
