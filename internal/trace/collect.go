package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/stats"
)

// Metrics is a streaming aggregation sink: it folds the event stream into
// per-connection latency histograms, per-component (link, router, NI,
// wrapper) slot-utilisation counters and buffer-occupancy high-water
// marks, without retaining the events themselves — so it is safe to leave
// attached for arbitrarily long runs.
type Metrics struct {
	bus *Bus
	// Both ids are small dense integers (connections are numbered from 1,
	// component ids are interned in registration order), so the per-event
	// hot path indexes grow-on-demand slices instead of hashing map keys.
	conns   []*ConnMetrics // indexed by ConnID; nil = never seen
	comps   []*CompMetrics // indexed by CompID; nil = never seen
	counts  [kindCount]int64
	firstPs clock.Time
	lastPs  clock.Time
	any     bool
}

// ConnMetrics aggregates one connection's lifecycle events.
type ConnMetrics struct {
	Injected  int64 // words accepted into the source NI FIFO
	Sent      int64 // words that left the source NI
	Delivered int64 // words ejected at the destination NI
	Blocked   int64 // owned slots lost to credit exhaustion
	Credits   int64 // credit words returned to this connection's sender
	// Latency is the inject-to-eject latency per delivered word, ns.
	Latency stats.Histogram

	// Reliability-layer aggregates (all zero without the shell).
	CRCDrops    int64 // flits/phits dropped by the receive-side checks
	Retransmits int64 // flits re-sent by go-back-N rounds
	Acks        int64 // cumulative-ack window advances
	Quarantined int64 // quarantine transitions (0 or 1 per run)
	Reroutes    int64 // self-healing re-admissions after quarantine
	// Recovery is the head-of-line stall per recovered loss, ns: the
	// span from the first drop to the in-order delivery that healed it.
	// Reroute events feed it too, with the quarantine-to-readmission
	// recovery latency.
	Recovery stats.Histogram
}

// CompMetrics aggregates one component's activity.
type CompMetrics struct {
	Events       int64 // events emitted by this component
	BusyCycles   int64 // clock cycles its output was occupied (see busyCycles)
	MaxOccupancy int64 // buffer-depth high-water mark, words
}

// NewMetrics builds a metrics sink and attaches it to the bus.
func NewMetrics(bus *Bus) *Metrics {
	m := &Metrics{bus: bus}
	bus.Attach(m)
	return m
}

// grow extends a metrics slice so index i is addressable.
func grow[T any](s []*T, i int) []*T {
	for i >= len(s) {
		s = append(s, nil)
	}
	return s
}

// Event implements Sink.
func (m *Metrics) Event(ev Event) {
	m.counts[ev.Kind]++
	if !m.any {
		m.any = true
		m.firstPs, m.lastPs = ev.Time, ev.Time
	} else if ev.Time > m.lastPs {
		m.lastPs = ev.Time
	} else if ev.Time < m.firstPs {
		m.firstPs = ev.Time
	}

	m.comps = grow(m.comps, int(ev.Comp))
	cp := m.comps[ev.Comp]
	if cp == nil {
		cp = &CompMetrics{}
		m.comps[ev.Comp] = cp
	}
	cp.Events++
	cp.BusyCycles += busyCycles[ev.Kind]
	if ev.Kind == Occupancy && ev.Arg > cp.MaxOccupancy {
		cp.MaxOccupancy = ev.Arg
	}

	if ev.Conn <= phit.None {
		return
	}
	m.conns = grow(m.conns, int(ev.Conn))
	cm := m.conns[ev.Conn]
	if cm == nil {
		cm = &ConnMetrics{}
		m.conns[ev.Conn] = cm
	}
	switch ev.Kind {
	case Inject:
		cm.Injected++
	case Send:
		cm.Sent++
	case Eject:
		cm.Delivered++
		cm.Latency.Add(float64(ev.Time-ev.Ref) / float64(clock.Nanosecond))
	case Blocked:
		cm.Blocked++
	case Credit:
		cm.Credits += ev.Arg
	case CRCDrop:
		cm.CRCDrops++
	case Retransmit:
		cm.Retransmits++
	case AckAdvance:
		cm.Acks++
	case Recovered:
		cm.Recovery.Add(float64(ev.Arg) / float64(clock.Nanosecond))
	case Quarantine:
		cm.Quarantined++
	case Reroute:
		cm.Reroutes++
		cm.Recovery.Add(float64(ev.Arg) / float64(clock.Nanosecond))
	}
}

// Conn returns the aggregate for one connection (nil if never seen).
func (m *Metrics) Conn(c phit.ConnID) *ConnMetrics {
	if c <= phit.None || int(c) >= len(m.conns) {
		return nil
	}
	return m.conns[c]
}

// Count returns how many events of the kind were observed.
func (m *Metrics) Count(k Kind) int64 { return m.counts[k] }

// Events returns the total observed event count.
func (m *Metrics) Events() int64 {
	var n int64
	for _, c := range m.counts {
		n += c
	}
	return n
}

// A Report is the rendered form of a Metrics aggregation over a known
// observation window.
type Report struct {
	WindowPs int64        `json:"window_ps"`
	PeriodPs int64        `json:"period_ps"`
	Events   int64        `json:"events"`
	Kinds    []KindCount  `json:"kinds"`
	Conns    []ConnReport `json:"connections"`
	Comps    []CompReport `json:"components"`
}

// KindCount is one event kind's total.
type KindCount struct {
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// ConnReport is one connection's aggregate.
type ConnReport struct {
	Conn      int32   `json:"conn"`
	Injected  int64   `json:"injected"`
	Sent      int64   `json:"sent"`
	Delivered int64   `json:"delivered"`
	Blocked   int64   `json:"blocked"`
	Credits   int64   `json:"credits"`
	LatMinNs  float64 `json:"lat_min_ns"`
	LatMeanNs float64 `json:"lat_mean_ns"`
	LatP99Ns  float64 `json:"lat_p99_ns"`
	LatMaxNs  float64 `json:"lat_max_ns"`

	// Reliability-layer fields (zero without the shell).
	CRCDrops    int64   `json:"crc_drops"`
	Retransmits int64   `json:"retransmits"`
	Acks        int64   `json:"acks"`
	Quarantined int64   `json:"quarantined"`
	Reroutes    int64   `json:"reroutes"`
	Recovered   int64   `json:"recovered"`
	RecMinNs    float64 `json:"rec_min_ns"`
	RecMeanNs   float64 `json:"rec_mean_ns"`
	RecP99Ns    float64 `json:"rec_p99_ns"`
	RecMaxNs    float64 `json:"rec_max_ns"`
}

// CompReport is one component's aggregate.
type CompReport struct {
	Component    string  `json:"component"`
	Events       int64   `json:"events"`
	BusyCycles   int64   `json:"busy_cycles"`
	Utilisation  float64 `json:"utilisation"`
	MaxOccupancy int64   `json:"max_occupancy"`
}

// Report renders the aggregation. windowPs is the observed simulation span
// and periodPs the nominal clock period; together they bound the cycles a
// component's output could have been busy, giving utilisation. A zero
// windowPs falls back to the span between the first and last event.
func (m *Metrics) Report(windowPs, periodPs int64) *Report {
	if windowPs <= 0 && m.any {
		windowPs = int64(m.lastPs - m.firstPs)
	}
	r := &Report{WindowPs: windowPs, PeriodPs: periodPs, Events: m.Events()}
	for k := 0; k < kindCount; k++ {
		if m.counts[k] > 0 {
			r.Kinds = append(r.Kinds, KindCount{Kind: Kind(k).String(), Count: m.counts[k]})
		}
	}
	for id, cm := range m.conns {
		if cm == nil {
			continue
		}
		cr := ConnReport{
			Conn: int32(id), Injected: cm.Injected, Sent: cm.Sent,
			Delivered: cm.Delivered, Blocked: cm.Blocked, Credits: cm.Credits,
		}
		// stats.Finite throughout: a degenerate window (zero delivered
		// flits, empty span) yields NaN/Inf aggregates, and one leaked NaN
		// makes encoding/json reject the whole report.
		if cm.Latency.N() > 0 {
			cr.LatMinNs = stats.Finite(cm.Latency.Min())
			cr.LatMeanNs = stats.Finite(cm.Latency.Mean())
			cr.LatP99Ns = stats.Finite(cm.Latency.Percentile(99))
			cr.LatMaxNs = stats.Finite(cm.Latency.Max())
		}
		cr.CRCDrops = cm.CRCDrops
		cr.Retransmits = cm.Retransmits
		cr.Acks = cm.Acks
		cr.Quarantined = cm.Quarantined
		cr.Reroutes = cm.Reroutes
		cr.Recovered = cm.Recovery.N()
		if cm.Recovery.N() > 0 {
			cr.RecMinNs = stats.Finite(cm.Recovery.Min())
			cr.RecMeanNs = stats.Finite(cm.Recovery.Mean())
			cr.RecP99Ns = stats.Finite(cm.Recovery.Percentile(99))
			cr.RecMaxNs = stats.Finite(cm.Recovery.Max())
		}
		r.Conns = append(r.Conns, cr)
	}
	totalCycles := float64(0)
	if periodPs > 0 {
		totalCycles = float64(windowPs) / float64(periodPs)
	}
	for id, cp := range m.comps {
		if cp == nil {
			continue
		}
		util := 0.0
		if totalCycles > 0 {
			util = stats.Finite(float64(cp.BusyCycles) / totalCycles)
			if util > 1 {
				util = 1 // edge flits straddling the window boundary
			}
		}
		r.Comps = append(r.Comps, CompReport{
			Component: m.bus.ComponentName(CompID(id)), Events: cp.Events,
			BusyCycles: cp.BusyCycles, Utilisation: util, MaxOccupancy: cp.MaxOccupancy,
		})
	}
	return r
}

// WriteJSON renders the report as indented JSON (stable field order).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV renders the report as two CSV sections: connections, then
// components. Latency and recovery-latency columns are empty (not 0) for
// connections that measured nothing, so an absent measurement cannot be
// mistaken for a real zero-nanosecond latency.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := &countWriter{w: w}
	cw.printf("section,conn,injected,sent,delivered,blocked,credits," +
		"lat_min_ns,lat_mean_ns,lat_p99_ns,lat_max_ns," +
		"crc_drops,retransmits,acks,quarantined,reroutes,recovered," +
		"rec_min_ns,rec_mean_ns,rec_p99_ns,rec_max_ns\n")
	for _, c := range r.Conns {
		lat := ",,," // four empty latency cells: no delivery, no measurement
		if c.Delivered > 0 {
			lat = fmt.Sprintf("%s,%s,%s,%s", csvF(c.LatMinNs), csvF(c.LatMeanNs), csvF(c.LatP99Ns), csvF(c.LatMaxNs))
		}
		rec := ",,," // likewise for recovery stalls: no recovery, no measurement
		if c.Recovered > 0 {
			rec = fmt.Sprintf("%s,%s,%s,%s", csvF(c.RecMinNs), csvF(c.RecMeanNs), csvF(c.RecP99Ns), csvF(c.RecMaxNs))
		}
		cw.printf("conn,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%s\n",
			c.Conn, c.Injected, c.Sent, c.Delivered, c.Blocked, c.Credits, lat,
			c.CRCDrops, c.Retransmits, c.Acks, c.Quarantined, c.Reroutes, c.Recovered, rec)
	}
	cw.printf("section,component,events,busy_cycles,utilisation,max_occupancy\n")
	for _, c := range r.Comps {
		cw.printf("comp,%s,%d,%d,%s,%d\n",
			csvCell(c.Component), c.Events, c.BusyCycles, csvF(c.Utilisation), c.MaxOccupancy)
	}
	return cw.err
}

// csvCell escapes a free-form string for one CSV cell (RFC 4180).
// Component names come straight from user specs, so a name containing a
// comma or quote must not shift every column after it.
func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// csvF formats a float deterministically for CSV cells.
func csvF(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.3f", v)
}
