package trace

import (
	"bufio"
	"fmt"
	"io"
)

// A Chrome sink buffers every event and renders the Chrome trace-event
// JSON format (the "JSON Array Format" with a traceEvents wrapper), which
// chrome://tracing and Perfetto load directly.
//
// Mapping:
//
//   - every component becomes a "thread" (tid = interned component id) of
//     one "process" (pid 0), named via thread_name metadata events;
//   - lifecycle events become instant events (ph "i", thread scope) named
//     "<kind> c<conn>";
//   - flit-granular events (SlotStart, LinkForward, WrapperFire) become
//     complete events (ph "X") spanning their flit cycle when the flit
//     cycle duration is known (SetFlitCycle), instant events otherwise;
//   - Occupancy events become counter events (ph "C") so Perfetto draws
//     buffer depth as a track.
//
// Timestamps are microseconds (the format's unit) rendered as a fixed
// six-decimal string from the exact picosecond instant, so output is
// byte-identical across runs of the same seed.
type Chrome struct {
	bus       *Bus
	events    []Event
	flitCycle int64 // ps; 0 renders flit events as instants
}

// NewChrome builds a Chrome sink and attaches it to the bus.
func NewChrome(bus *Bus) *Chrome {
	c := &Chrome{bus: bus}
	bus.Attach(c)
	return c
}

// SetFlitCycle tells the sink the flit cycle duration in picoseconds so
// flit-granular events render as spans of that length.
func (c *Chrome) SetFlitCycle(ps int64) { c.flitCycle = ps }

// Event implements Sink.
func (c *Chrome) Event(ev Event) { c.events = append(c.events, ev) }

// Len returns the number of buffered events.
func (c *Chrome) Len() int { return len(c.events) }

// tsString renders a picosecond instant as microseconds with exactly six
// decimals — deterministic, no float formatting involved.
func tsString(ps int64) string {
	if ps < 0 {
		return fmt.Sprintf("-%d.%06d", -ps/1e6, (-ps)%1e6)
	}
	return fmt.Sprintf("%d.%06d", ps/1e6, ps%1e6)
}

// WriteTo renders the buffered events. It implements io.WriterTo.
func (c *Chrome) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	cw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			cw.printf(",\n")
		} else {
			cw.printf("\n")
			first = false
		}
	}
	for id, name := range c.bus.comps {
		sep()
		cw.printf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%q}}`, id, name)
	}
	for _, ev := range c.events {
		sep()
		switch ev.Kind {
		case Occupancy:
			cw.printf(`{"ph":"C","pid":0,"tid":%d,"ts":%s,"name":"occupancy","args":{"words":%d}}`,
				ev.Comp, tsString(int64(ev.Time)), ev.Arg)
		case SlotStart, LinkForward, WrapperFire:
			if c.flitCycle > 0 {
				cw.printf(`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{%s}}`,
					ev.Comp, tsString(int64(ev.Time)), tsString(c.flitCycle), eventName(ev), eventArgs(ev))
			} else {
				cw.printf(`{"ph":"i","pid":0,"tid":%d,"ts":%s,"s":"t","name":%q,"args":{%s}}`,
					ev.Comp, tsString(int64(ev.Time)), eventName(ev), eventArgs(ev))
			}
		default:
			cw.printf(`{"ph":"i","pid":0,"tid":%d,"ts":%s,"s":"t","name":%q,"args":{%s}}`,
				ev.Comp, tsString(int64(ev.Time)), eventName(ev), eventArgs(ev))
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	cw.printf("\n]}\n")
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

func eventName(ev Event) string {
	if ev.Conn != 0 {
		return fmt.Sprintf("%s c%d", ev.Kind, ev.Conn)
	}
	return ev.Kind.String()
}

// eventArgs renders the kind-specific argument object body.
func eventArgs(ev Event) string {
	s := fmt.Sprintf(`"conn":%d`, ev.Conn)
	switch ev.Kind {
	case Send, Eject:
		s += fmt.Sprintf(`,"seq":%d,"lat_ps":%d`, ev.Seq, int64(ev.Time-ev.Ref))
	case SlotStart:
		s += fmt.Sprintf(`,"slot":%d,"words":%d`, ev.Slot, ev.Arg)
	case RouterForward:
		s += fmt.Sprintf(`,"seq":%d,"port":%d`, ev.Seq, ev.Arg)
	case Credit:
		s += fmt.Sprintf(`,"words":%d`, ev.Arg)
	case WrapperFire:
		s += fmt.Sprintf(`,"stalled":%d`, ev.Arg)
	case Inject:
		s += fmt.Sprintf(`,"seq":%d`, ev.Seq)
	case CRCDrop:
		s += fmt.Sprintf(`,"reason":%d,"seq":%d`, ev.Arg, ev.Seq)
	case Retransmit:
		s += fmt.Sprintf(`,"seq":%d,"round":%d`, ev.Seq, ev.Arg)
	case AckAdvance:
		s += fmt.Sprintf(`,"base":%d,"words":%d`, ev.Seq, ev.Arg)
	case Recovered:
		s += fmt.Sprintf(`,"stall_ps":%d`, ev.Arg)
	case Quarantine:
		s += fmt.Sprintf(`,"unacked":%d`, ev.Arg)
	}
	return s
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	n, err := fmt.Fprintf(c.w, format, args...)
	c.n += int64(n)
	c.err = err
}
