package analysis

import (
	"fmt"
	"math"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/slots"
)

// PayloadWordsPerSlot is the guaranteed payload capacity of one reserved
// slot under the baseline protocol (header + 2 payload words of the
// 3-word flit).
const PayloadWordsPerSlot = phit.FlitWords - 1

// PayloadWordsPerSlotReliable is the guaranteed payload capacity of one
// reserved slot with the reliability shell: the sideband word is counted
// in-band, so only one word per flit is guaranteed payload.
const PayloadWordsPerSlotReliable = phit.FlitWords - 2

// SlotPayloadWords returns the guaranteed payload words one reserved slot
// carries under the selected protocol shell.
func SlotPayloadWords(reliable bool) int {
	if reliable {
		return PayloadWordsPerSlotReliable
	}
	return PayloadWordsPerSlot
}

// SlotBandwidthMBps returns the guaranteed bandwidth, in Mbyte/s, of one
// reserved slot in a table of tableSize slots at fMHz with wordBytes-wide
// links: SlotPayloadWords(reliable) words every table revolution.
func SlotBandwidthMBps(fMHz float64, wordBytes, tableSize int, reliable bool) float64 {
	revolutionsPerSec := fMHz * 1e6 / float64(phit.FlitWords*tableSize)
	return revolutionsPerSec * float64(SlotPayloadWords(reliable)) * float64(wordBytes) / 1e6
}

// SlotsForBandwidth returns the number of slots needed to guarantee
// rateMBps. It returns an error when the rate exceeds the link capacity.
func SlotsForBandwidth(rateMBps, fMHz float64, wordBytes, tableSize int, reliable bool) (int, error) {
	per := SlotBandwidthMBps(fMHz, wordBytes, tableSize, reliable)
	n := int(math.Ceil(rateMBps / per))
	if n < 1 {
		n = 1
	}
	if n > tableSize {
		return 0, fmt.Errorf("analysis: %.1f Mbyte/s needs %d slots but the table has %d (link capacity %.1f Mbyte/s)",
			rateMBps, n, tableSize, per*float64(tableSize))
	}
	return n, nil
}

// Latency model constants, in cycles. See LatencyBoundNs for the
// decomposition.
const (
	// niInjectCycles covers acceptance into the IP-side bi-synchronous
	// FIFO (1 cycle visibility), the wait for the next flit-cycle
	// boundary (up to 2 cycles), and serialisation within the flit (the
	// word may be the second payload word: +2 cycles).
	niInjectCycles = 5
	// deliveryCycles covers the destination-side registration of the
	// payload word after the last link (sample + receive processing).
	deliveryCycles = 4
)

// FixedPathCycles returns the load-independent part of the latency: NI
// injection overhead plus the path traversal. Every router hop and every
// link pipeline stage adds one flit cycle (3 cycles) — the TotalShift of
// the route.
func FixedPathCycles(p *route.Path) int {
	return niInjectCycles + phit.FlitWords*p.TotalShift + deliveryCycles
}

// LatencyBoundNs returns the worst-case latency, in nanoseconds, for a
// word of a connection with the given slot assignment, assuming the
// connection's offered load does not exceed its allocated bandwidth (the
// paper's GS contract; an oversubscribing IP only slows itself down).
//
// Decomposition: a word that just misses a slot decision waits at most
// MaxGap slots for the next owned slot (3·MaxGap cycles), plus one slot of
// decision granularity, plus the fixed path delay. For a single-slot
// reservation MaxGap is the whole table revolution regardless of where the
// slot sits — a reservation at slot S-1 whose per-link shift wraps to slot
// 0 waits exactly as long as one at slot 0 (TestLatencyBoundBruteForce
// pins this against a cycle-level slot walk).
func LatencyBoundNs(p *route.Path, slotSet []int, tableSize int, fMHz float64) float64 {
	gap := slots.MaxGap(slotSet, tableSize)
	cycles := phit.FlitWords*(gap+1) + FixedPathCycles(p)
	return float64(cycles) * 1e3 / fMHz
}

// EvenSlots returns k slot positions spread as evenly as the table allows
// — the placement the inverse sizing functions assume.
func EvenSlots(k, tableSize int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i * tableSize / k
	}
	return out
}

// SlotsForLatency returns the minimum evenly-spread slot count that meets
// a latency budget (ns), or an error if the fixed path delay alone
// exceeds the budget (no slot count can help).
func SlotsForLatency(budgetNs float64, p *route.Path, tableSize int, fMHz float64) (int, error) {
	cycleNs := 1e3 / fMHz
	fixed := float64(FixedPathCycles(p)+phit.FlitWords) * cycleNs
	if fixed >= budgetNs {
		return 0, fmt.Errorf("analysis: fixed path delay %.1f ns exceeds budget %.1f ns (%d routers, %d total shift)",
			fixed, budgetNs, p.Hops(), p.TotalShift)
	}
	// Need 3*gap cycles <= budget - fixed. The tolerable gap is a whole
	// number of slots and must be floored: rounding the fractional gap up
	// (the historical behaviour) undercounted the revolution wait by up
	// to one flit cycle — evenly spread k = ceil(S/gap) slots realise a
	// MaxGap of ceil(S/k), which only stays within a *floored* gap.
	gap := int((budgetNs - fixed) / (float64(phit.FlitWords) * cycleNs))
	if gap < 1 {
		// Even a fully-owned table has a service gap of one slot; a
		// budget that tolerates less is infeasible at any slot count
		// (clamping here used to hide a bound violation of up to one
		// flit cycle).
		return 0, fmt.Errorf("analysis: budget %.1f ns tolerates under one slot of wait (fixed delay %.1f ns); infeasible at any slot count", budgetNs, fixed)
	}
	k := (tableSize + gap - 1) / gap
	if k < 1 {
		k = 1
	}
	// Defensive exactness: advance k until the realised even-spread bound
	// meets the budget (at most tableSize steps).
	for ; k <= tableSize; k++ {
		if slots.MaxGap(EvenSlots(k, tableSize), tableSize) <= gap {
			return k, nil
		}
	}
	return 0, fmt.Errorf("analysis: budget %.1f ns needs more than %d slots", budgetNs, tableSize)
}

// BurstSlotTimes returns the number of owned-slot service times a whole
// transaction of txWords words needs under the selected protocol shell
// (conservatively ignoring header elision).
func BurstSlotTimes(txWords int, reliable bool) int {
	per := SlotPayloadWords(reliable)
	m := (txWords + per - 1) / per
	if m < 1 {
		m = 1
	}
	return m
}

// LatencyBoundBurstNs bounds the latency of *any* word of a transaction
// of txWords words arriving to an empty queue: serving the whole
// transaction takes at most the worst window of BurstSlotTimes(txWords)
// consecutive reservation gaps (slots.MaxGapWindow), plus one slot of
// decision granularity and the fixed path delay.
func LatencyBoundBurstNs(p *route.Path, slotSet []int, tableSize int, fMHz float64, txWords int, reliable bool) float64 {
	w := slots.MaxGapWindow(slotSet, tableSize, BurstSlotTimes(txWords, reliable))
	cycles := phit.FlitWords*(w+1) + FixedPathCycles(p)
	return float64(cycles) * 1e3 / fMHz
}

// SlotsForBurstLatency returns the minimum evenly-spread slot count whose
// worst BurstSlotTimes-gap window meets the budget, or an error when even
// a full table cannot. The analytic seed k = ceil(m*S/w) assumes perfectly
// uniform gaps; real even spreads mix floor and ceil gaps, so the window
// is re-checked and k advanced until the realised placement fits —
// without the re-check the window could undercount by one flit cycle per
// uneven gap.
func SlotsForBurstLatency(budgetNs float64, txWords int, p *route.Path, tableSize int, fMHz float64, reliable bool) (int, error) {
	w, err := WindowSlotsForBudget(budgetNs, p, fMHz)
	if err != nil {
		return 0, err
	}
	m := BurstSlotTimes(txWords, reliable)
	k := (m*tableSize + w - 1) / w
	if k < 1 {
		k = 1
	}
	for ; k <= tableSize; k++ {
		if slots.MaxGapWindow(EvenSlots(k, tableSize), tableSize, m) <= w {
			return k, nil
		}
	}
	return 0, fmt.Errorf("analysis: burst budget %.1f ns needs more than %d slots", budgetNs, tableSize)
}

// SourceWaitBudgetNs splits a connection's latency bound at the source
// NI's output: the deterministic network transit (path shift plus
// delivery registration) is subtracted, leaving the longest a word may
// legitimately sit at the source — waiting for its slot and, in
// transactional mode, behind its own transaction. A word that waits
// longer was offered out of contract (the queue ahead of it could only
// build if the IP exceeded its allocation), which is how the conformance
// auditor tells self-inflicted queueing from a fabric fault.
func SourceWaitBudgetNs(boundNs float64, p *route.Path, fMHz float64) float64 {
	transit := float64(phit.FlitWords*p.TotalShift+deliveryCycles) * 1e3 / fMHz
	return boundNs - transit
}

// WindowSlotsForBudget converts a latency budget into the largest
// tolerable service window, in slots.
func WindowSlotsForBudget(budgetNs float64, p *route.Path, fMHz float64) (int, error) {
	cycleNs := 1e3 / fMHz
	fixed := float64(FixedPathCycles(p)+phit.FlitWords) * cycleNs
	if fixed >= budgetNs {
		return 0, fmt.Errorf("analysis: fixed path delay %.1f ns exceeds budget %.1f ns", fixed, budgetNs)
	}
	w := int((budgetNs - fixed) / (float64(phit.FlitWords) * cycleNs))
	if w < 1 {
		return 0, fmt.Errorf("analysis: budget %.1f ns tolerates under one slot of service window (fixed delay %.1f ns)", budgetNs, fixed)
	}
	return w, nil
}

// ThroughputGuaranteeMBps returns the guaranteed bandwidth of a slot
// assignment.
func ThroughputGuaranteeMBps(slotCount int, fMHz float64, wordBytes, tableSize int, reliable bool) float64 {
	return float64(slotCount) * SlotBandwidthMBps(fMHz, wordBytes, tableSize, reliable)
}

// Mode captures the protocol options that shape a connection's analytical
// contract.
type Mode struct {
	// Reliable selects the reliability shell's in-band sideband
	// accounting (1 guaranteed payload word per slot instead of 2).
	Reliable bool
	// Transactional selects the burst latency bound over the per-word
	// bound; TxWords is then the transaction size in words.
	Transactional bool
	TxWords       int
}

// Bounds is the derived worst-case contract of one connection: what the
// conformance auditor holds every simulated flit against.
type Bounds struct {
	// GuaranteeMBps is the guaranteed sustained throughput; measured
	// delivery of a saturating sender never falls below it.
	GuaranteeMBps float64
	// LatencyNs is the worst-case injection-to-delivery latency of any
	// word, valid while the connection's offered load stays within its
	// allocation.
	LatencyNs float64
	// MaxGapSlots is the reservation's worst service gap, in slots.
	MaxGapSlots int
	// SlotCount is the number of reserved slots.
	SlotCount int
}

// ConnectionBounds derives the full analytical contract of a connection
// from its slot reservation and path — the single entry point Build and
// the audit layer share, so the checked bound and the built bound cannot
// drift apart.
func ConnectionBounds(p *route.Path, slotSet []int, tableSize int, fMHz float64, wordBytes int, m Mode) Bounds {
	b := Bounds{
		GuaranteeMBps: ThroughputGuaranteeMBps(len(slotSet), fMHz, wordBytes, tableSize, m.Reliable),
		MaxGapSlots:   slots.MaxGap(slotSet, tableSize),
		SlotCount:     len(slotSet),
	}
	if m.Transactional {
		b.LatencyNs = LatencyBoundBurstNs(p, slotSet, tableSize, fMHz, m.TxWords, m.Reliable)
	} else {
		b.LatencyNs = LatencyBoundNs(p, slotSet, tableSize, fMHz)
	}
	return b
}

// CreditRoundTripSlots bounds, in slots, the time from a payload word
// being consumed at the destination to the freed credit being usable at
// the source: wait for the reverse connection's next slot (its MaxGap),
// the reverse path traversal, plus one slot of decision granularity at
// each end.
func CreditRoundTripSlots(revSlotSet []int, revPath *route.Path, tableSize int) int {
	return slots.MaxGap(revSlotSet, tableSize) + revPath.TotalShift + 2
}

// RecvCapacityWords sizes a receive queue (and thus the sender's initial
// credits) so that a connection can sustain its full allocated bandwidth:
// the words sent while one credit round-trip is in flight, plus two flits
// of slack (one for decision granularity, one because credits return in
// flit units and a sub-flit remainder waits at the receiver).
func RecvCapacityWords(dataSlots int, roundTripSlots, tableSize int) int {
	perRevolution := dataSlots * phit.FlitWords
	revolutions := float64(roundTripSlots)/float64(tableSize) + 1
	return int(math.Ceil(float64(perRevolution)*revolutions)) + 2*phit.FlitWords
}

// RevSlots returns the reverse (credit) connection's slot requirement.
// One header returns up to maxCredits flit-granular credits (FlitWords
// words each); the reverse channel must keep up with the data channel's
// worst-case consumption of FlitWords*dataSlots words per revolution.
func RevSlots(dataSlots, maxCredits int) int {
	n := int(math.Ceil(float64(dataSlots) / float64(maxCredits)))
	if n < 1 {
		n = 1
	}
	return n
}
