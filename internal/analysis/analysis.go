// Package analysis provides the analytical model of aelite's guaranteed
// services: the throughput and worst-case latency of a connection follow
// directly from its TDM slot reservation and path (paper Section VII,
// problem 3).
//
// Conventions: the clock period is T = 1/f; a slot is one flit cycle
// (3 cycles); a slot table of size S revolves every 3·S·T. A flit carries
// at most 2 payload words when it opens a packet (header + 2) and 3 when
// it extends one. All bandwidth math conservatively assumes 2 payload
// words per slot, so measured throughput with header elision can exceed
// the guarantee but never fall short.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/slots"
)

// PayloadWordsPerSlot is the guaranteed payload capacity of one reserved
// slot (header + 2 payload words of the 3-word flit).
const PayloadWordsPerSlot = phit.FlitWords - 1

// SlotBandwidthMBps returns the guaranteed bandwidth, in Mbyte/s, of one
// reserved slot in a table of tableSize slots at fMHz with wordBytes-wide
// links: 2 payload words every table revolution.
func SlotBandwidthMBps(fMHz float64, wordBytes, tableSize int) float64 {
	revolutionsPerSec := fMHz * 1e6 / float64(phit.FlitWords*tableSize)
	return revolutionsPerSec * PayloadWordsPerSlot * float64(wordBytes) / 1e6
}

// SlotsForBandwidth returns the number of slots needed to guarantee
// rateMBps. It returns an error when the rate exceeds the link capacity.
func SlotsForBandwidth(rateMBps, fMHz float64, wordBytes, tableSize int) (int, error) {
	per := SlotBandwidthMBps(fMHz, wordBytes, tableSize)
	n := int(math.Ceil(rateMBps / per))
	if n < 1 {
		n = 1
	}
	if n > tableSize {
		return 0, fmt.Errorf("analysis: %.1f Mbyte/s needs %d slots but the table has %d (link capacity %.1f Mbyte/s)",
			rateMBps, n, tableSize, per*float64(tableSize))
	}
	return n, nil
}

// Latency model constants, in cycles. See LatencyBoundNs for the
// decomposition.
const (
	// niInjectCycles covers acceptance into the IP-side bi-synchronous
	// FIFO (1 cycle visibility), the wait for the next flit-cycle
	// boundary (up to 2 cycles), and serialisation within the flit (the
	// word may be the second payload word: +2 cycles).
	niInjectCycles = 5
	// deliveryCycles covers the destination-side registration of the
	// payload word after the last link (sample + receive processing).
	deliveryCycles = 4
)

// FixedPathCycles returns the load-independent part of the latency: NI
// injection overhead plus the path traversal. Every router hop and every
// link pipeline stage adds one flit cycle (3 cycles) — the TotalShift of
// the route.
func FixedPathCycles(p *route.Path) int {
	return niInjectCycles + phit.FlitWords*p.TotalShift + deliveryCycles
}

// LatencyBoundNs returns the worst-case latency, in nanoseconds, for a
// word of a connection with the given slot assignment, assuming the
// connection's offered load does not exceed its allocated bandwidth (the
// paper's GS contract; an oversubscribing IP only slows itself down).
//
// Decomposition: a word that just misses a slot decision waits at most
// MaxGap slots for the next owned slot (3·MaxGap cycles), plus one slot of
// decision granularity, plus the fixed path delay.
func LatencyBoundNs(p *route.Path, slotSet []int, tableSize int, fMHz float64) float64 {
	gap := slots.MaxGap(slotSet, tableSize)
	cycles := phit.FlitWords*(gap+1) + FixedPathCycles(p)
	return float64(cycles) * 1e3 / fMHz
}

// SlotsForLatency returns the minimum evenly-spread slot count that meets
// a latency budget (ns), or an error if the fixed path delay alone
// exceeds the budget (no slot count can help).
func SlotsForLatency(budgetNs float64, p *route.Path, tableSize int, fMHz float64) (int, error) {
	cycleNs := 1e3 / fMHz
	fixed := float64(FixedPathCycles(p)+phit.FlitWords) * cycleNs
	if fixed >= budgetNs {
		return 0, fmt.Errorf("analysis: fixed path delay %.1f ns exceeds budget %.1f ns (%d routers, %d total shift)",
			fixed, budgetNs, p.Hops(), p.TotalShift)
	}
	// Need 3*gap cycles <= budget - fixed; evenly spread k slots give
	// gap <= ceil(S/k).
	maxGap := (budgetNs - fixed) / (float64(phit.FlitWords) * cycleNs)
	if maxGap < 1 {
		maxGap = 1
	}
	k := int(math.Ceil(float64(tableSize) / maxGap))
	if k < 1 {
		k = 1
	}
	if k > tableSize {
		return 0, fmt.Errorf("analysis: budget %.1f ns needs %d slots but the table has %d", budgetNs, k, tableSize)
	}
	return k, nil
}

// BurstSlotTimes returns the number of owned-slot service times a whole
// transaction of txWords words needs (header + 2 payload words per slot,
// conservatively ignoring header elision).
func BurstSlotTimes(txWords int) int {
	m := (txWords + PayloadWordsPerSlot - 1) / PayloadWordsPerSlot
	if m < 1 {
		m = 1
	}
	return m
}

// LatencyBoundBurstNs bounds the latency of *any* word of a transaction
// of txWords words arriving to an empty queue: serving the whole
// transaction takes at most the worst window of BurstSlotTimes(txWords)
// consecutive reservation gaps (slots.MaxGapWindow), plus one slot of
// decision granularity and the fixed path delay.
func LatencyBoundBurstNs(p *route.Path, slotSet []int, tableSize int, fMHz float64, txWords int) float64 {
	w := slots.MaxGapWindow(slotSet, tableSize, BurstSlotTimes(txWords))
	cycles := phit.FlitWords*(w+1) + FixedPathCycles(p)
	return float64(cycles) * 1e3 / fMHz
}

// SlotsForBurstLatency returns the minimum evenly-spread slot count whose
// worst BurstSlotTimes-gap window meets the budget, or an error when even
// a full table cannot.
func SlotsForBurstLatency(budgetNs float64, txWords int, p *route.Path, tableSize int, fMHz float64) (int, error) {
	w, err := WindowSlotsForBudget(budgetNs, p, fMHz)
	if err != nil {
		return 0, err
	}
	m := BurstSlotTimes(txWords)
	// Evenly spread k slots give an m-gap window of ~m*S/k.
	k := int(math.Ceil(float64(m*tableSize) / float64(w)))
	if k < 1 {
		k = 1
	}
	if k > tableSize {
		return 0, fmt.Errorf("analysis: burst budget %.1f ns needs %d slots but the table has %d", budgetNs, k, tableSize)
	}
	return k, nil
}

// WindowSlotsForBudget converts a latency budget into the largest
// tolerable service window, in slots.
func WindowSlotsForBudget(budgetNs float64, p *route.Path, fMHz float64) (int, error) {
	cycleNs := 1e3 / fMHz
	fixed := float64(FixedPathCycles(p)+phit.FlitWords) * cycleNs
	if fixed >= budgetNs {
		return 0, fmt.Errorf("analysis: fixed path delay %.1f ns exceeds budget %.1f ns", fixed, budgetNs)
	}
	w := int((budgetNs - fixed) / (float64(phit.FlitWords) * cycleNs))
	if w < 1 {
		w = 1
	}
	return w, nil
}

// ThroughputGuaranteeMBps returns the guaranteed bandwidth of a slot
// assignment.
func ThroughputGuaranteeMBps(slotCount int, fMHz float64, wordBytes, tableSize int) float64 {
	return float64(slotCount) * SlotBandwidthMBps(fMHz, wordBytes, tableSize)
}

// CreditRoundTripSlots bounds, in slots, the time from a payload word
// being consumed at the destination to the freed credit being usable at
// the source: wait for the reverse connection's next slot (its MaxGap),
// the reverse path traversal, plus one slot of decision granularity at
// each end.
func CreditRoundTripSlots(revSlotSet []int, revPath *route.Path, tableSize int) int {
	return slots.MaxGap(revSlotSet, tableSize) + revPath.TotalShift + 2
}

// RecvCapacityWords sizes a receive queue (and thus the sender's initial
// credits) so that a connection can sustain its full allocated bandwidth:
// the words sent while one credit round-trip is in flight, plus two flits
// of slack (one for decision granularity, one because credits return in
// flit units and a sub-flit remainder waits at the receiver).
func RecvCapacityWords(dataSlots int, roundTripSlots, tableSize int) int {
	perRevolution := dataSlots * phit.FlitWords
	revolutions := float64(roundTripSlots)/float64(tableSize) + 1
	return int(math.Ceil(float64(perRevolution)*revolutions)) + 2*phit.FlitWords
}

// RevSlots returns the reverse (credit) connection's slot requirement.
// One header returns up to maxCredits flit-granular credits (FlitWords
// words each); the reverse channel must keep up with the data channel's
// worst-case consumption of FlitWords*dataSlots words per revolution.
func RevSlots(dataSlots, maxCredits int) int {
	n := int(math.Ceil(float64(dataSlots) / float64(maxCredits)))
	if n < 1 {
		n = 1
	}
	return n
}
