package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/route"
	"repro/internal/slots"
)

func TestSlotBandwidth(t *testing.T) {
	// 500 MHz, 4-byte words, 32 slots: one slot = 2 words per
	// revolution of 96 cycles = 500e6/96 * 8 B ≈ 41.7 MB/s.
	got := SlotBandwidthMBps(500, 4, 32)
	if math.Abs(got-41.67) > 0.1 {
		t.Errorf("SlotBandwidthMBps = %v", got)
	}
	n, err := SlotsForBandwidth(500, 500, 4, 32)
	if err != nil || n != 12 {
		t.Errorf("SlotsForBandwidth(500) = %d, %v", n, err)
	}
	n, err = SlotsForBandwidth(1, 500, 4, 32)
	if err != nil || n != 1 {
		t.Errorf("SlotsForBandwidth(1) = %d, %v", n, err)
	}
	if _, err := SlotsForBandwidth(5000, 500, 4, 32); err == nil {
		t.Error("accepted a rate above link capacity")
	}
	if got := ThroughputGuaranteeMBps(12, 500, 4, 32); got < 500 {
		t.Errorf("guarantee for 12 slots = %v < 500", got)
	}
}

func TestLatencyBound(t *testing.T) {
	p := &route.Path{TotalShift: 3}
	// Slots {0, 8} in a 16-table: MaxGap 8.
	b := LatencyBoundNs(p, []int{0, 8}, 16, 500)
	// cycles = 3*(8+1) + 5 + 9 + 4 = 27+18 = 45 -> 90 ns.
	want := float64(3*(8+1)+FixedPathCycles(p)) * 2
	if b != want {
		t.Errorf("LatencyBoundNs = %v, want %v", b, want)
	}
}

func TestSlotsForLatencyInvertsBound(t *testing.T) {
	p := &route.Path{TotalShift: 4}
	for _, budget := range []float64{150, 250, 400} {
		k, err := SlotsForLatency(budget, p, 32, 500)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		// Evenly spread k slots: gap = ceil(32/k); bound must fit.
		gap := (32 + k - 1) / k
		slotsEven := make([]int, k)
		for i := range slotsEven {
			slotsEven[i] = i * 32 / k
		}
		_ = gap
		if got := LatencyBoundNs(p, slotsEven, 32, 500); got > budget {
			t.Errorf("budget %v: k=%d gives bound %v", budget, k, got)
		}
	}
	if _, err := SlotsForLatency(10, p, 32, 500); err == nil {
		t.Error("accepted a budget below the fixed path delay")
	}
}

func TestBurstSlotTimes(t *testing.T) {
	cases := []struct{ tx, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {16, 8}, {0, 1}}
	for _, c := range cases {
		if got := BurstSlotTimes(c.tx); got != c.want {
			t.Errorf("BurstSlotTimes(%d) = %d, want %d", c.tx, got, c.want)
		}
	}
}

func TestBurstBoundUsesWindow(t *testing.T) {
	p := &route.Path{TotalShift: 2}
	// Slots 0,2,5 in table 8: windows. For tx=4 words (m=2), worst
	// 2-gap window = 6.
	set := []int{0, 2, 5}
	b := LatencyBoundBurstNs(p, set, 8, 500, 4)
	want := float64(3*(6+1)+FixedPathCycles(p)) * 2
	if b != want {
		t.Errorf("burst bound = %v, want %v", b, want)
	}
	// m=1 matches the plain bound.
	if got, plain := LatencyBoundBurstNs(p, set, 8, 500, 2), LatencyBoundNs(p, set, 8, 500); got != plain {
		t.Errorf("m=1 burst bound %v != plain %v", got, plain)
	}
}

// TestBurstSizingQuick: the slot count returned by SlotsForBurstLatency,
// spread evenly, always satisfies the budget it was sized for.
func TestBurstSizingQuick(t *testing.T) {
	f := func(rawBudget uint16, rawTx, rawShift uint8) bool {
		p := &route.Path{TotalShift: 1 + int(rawShift%6)}
		tx := 1 + int(rawTx%32)
		budget := 100 + float64(rawBudget%2000)
		k, err := SlotsForBurstLatency(budget, tx, p, 64, 500)
		if err != nil {
			return true // infeasible budgets may error
		}
		even := make([]int, k)
		for i := range even {
			even[i] = i * 64 / k
		}
		return LatencyBoundBurstNs(p, even, 64, 500, tx) <= budget+1e-9
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSlotsForBudget(t *testing.T) {
	p := &route.Path{TotalShift: 2}
	w, err := WindowSlotsForBudget(200, p, 500)
	if err != nil {
		t.Fatal(err)
	}
	// fixed = (5+6+4+3)*2 = 36 ns; (200-36)/6 = 27.3 -> 27.
	if w != 27 {
		t.Errorf("window = %d, want 27", w)
	}
	if _, err := WindowSlotsForBudget(30, p, 500); err == nil {
		t.Error("accepted budget below fixed delay")
	}
}

func TestCreditMath(t *testing.T) {
	rp := &route.Path{TotalShift: 3}
	rt := CreditRoundTripSlots([]int{0, 16}, rp, 32)
	if rt != 16+3+2 {
		t.Errorf("round trip = %d", rt)
	}
	cap := RecvCapacityWords(4, rt, 32)
	// 12 words/rev * (21/32 + 1) + 6 = 12*1.656+6 = 25.9 -> 26.
	if cap < 24 || cap > 28 {
		t.Errorf("capacity = %d", cap)
	}
	if got := RevSlots(10, 31); got != 1 {
		t.Errorf("RevSlots(10) = %d", got)
	}
	if got := RevSlots(62, 31); got != 2 {
		t.Errorf("RevSlots(62) = %d", got)
	}
	if got := RevSlots(0, 31); got != 1 {
		t.Errorf("RevSlots(0) = %d", got)
	}
}

func TestMaxGapWindowConsistency(t *testing.T) {
	// MaxGapWindow(m=1) equals MaxGap for any set.
	sets := [][]int{{0}, {0, 5}, {1, 2, 9}, {0, 4, 8, 12}}
	for _, s := range sets {
		if a, b := slots.MaxGapWindow(s, 16, 1), slots.MaxGap(s, 16); a != b {
			t.Errorf("window(1)=%d maxgap=%d for %v", a, b, s)
		}
	}
}
