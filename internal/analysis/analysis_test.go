package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/slots"
)

func TestSlotBandwidth(t *testing.T) {
	// 500 MHz, 4-byte words, 32 slots: one slot = 2 words per
	// revolution of 96 cycles = 500e6/96 * 8 B ≈ 41.7 MB/s.
	got := SlotBandwidthMBps(500, 4, 32, false)
	if math.Abs(got-41.67) > 0.1 {
		t.Errorf("SlotBandwidthMBps = %v", got)
	}
	// Reliable accounting charges the sideband word: 1 payload word per
	// slot, exactly half the baseline guarantee.
	if rel := SlotBandwidthMBps(500, 4, 32, true); math.Abs(rel-got/2) > 1e-9 {
		t.Errorf("reliable SlotBandwidthMBps = %v, want %v", rel, got/2)
	}
	n, err := SlotsForBandwidth(500, 500, 4, 32, false)
	if err != nil || n != 12 {
		t.Errorf("SlotsForBandwidth(500) = %d, %v", n, err)
	}
	// The same rate under reliable accounting needs twice the slots.
	n, err = SlotsForBandwidth(500, 500, 4, 32, true)
	if err != nil || n != 24 {
		t.Errorf("reliable SlotsForBandwidth(500) = %d, %v", n, err)
	}
	n, err = SlotsForBandwidth(1, 500, 4, 32, false)
	if err != nil || n != 1 {
		t.Errorf("SlotsForBandwidth(1) = %d, %v", n, err)
	}
	if _, err := SlotsForBandwidth(5000, 500, 4, 32, false); err == nil {
		t.Error("accepted a rate above link capacity")
	}
	// A rate that fits baseline capacity can exceed reliable capacity.
	if _, err := SlotsForBandwidth(1200, 500, 4, 32, true); err == nil {
		t.Error("accepted a rate above reliable link capacity")
	}
	if got := ThroughputGuaranteeMBps(12, 500, 4, 32, false); got < 500 {
		t.Errorf("guarantee for 12 slots = %v < 500", got)
	}
	if base, rel := ThroughputGuaranteeMBps(12, 500, 4, 32, false), ThroughputGuaranteeMBps(12, 500, 4, 32, true); math.Abs(rel-base/2) > 1e-9 {
		t.Errorf("reliable guarantee = %v, want half of %v", rel, base)
	}
}

func TestLatencyBound(t *testing.T) {
	p := &route.Path{TotalShift: 3}
	// Slots {0, 8} in a 16-table: MaxGap 8.
	b := LatencyBoundNs(p, []int{0, 8}, 16, 500)
	// cycles = 3*(8+1) + 5 + 9 + 4 = 27+18 = 45 -> 90 ns.
	want := float64(3*(8+1)+FixedPathCycles(p)) * 2
	if b != want {
		t.Errorf("LatencyBoundNs = %v, want %v", b, want)
	}
}

// bruteForceWorstLatencyCycles walks every arrival cycle of one table
// revolution under the TDM service model — a word arriving at cycle a is
// visible to the slot decision at the next flit-cycle boundary strictly
// after a, departs at the start of the first owned slot from that
// boundary on, then pays up to 2 cycles of in-flit serialisation, the
// path shift, and the delivery registration — and returns the worst
// injection-to-delivery latency in cycles.
func bruteForceWorstLatencyCycles(set []int, tableSize int, p *route.Path) int {
	owned := make(map[int]bool, len(set))
	for _, s := range set {
		owned[s] = true
	}
	worst := 0
	for a := 0; a < phit.FlitWords*tableSize; a++ {
		d := a + 1
		if r := d % phit.FlitWords; r != 0 {
			d += phit.FlitWords - r
		}
		dep := d
		for !owned[(dep/phit.FlitWords)%tableSize] {
			dep += phit.FlitWords
		}
		lat := (dep - a) + 2 + phit.FlitWords*p.TotalShift + deliveryCycles
		if lat > worst {
			worst = lat
		}
	}
	return worst
}

// TestLatencyBoundBruteForce pins LatencyBoundNs against a cycle-level
// slot walk: the analytical bound must never undercount the worst
// arrival phase, for single-slot reservations at every table position
// (including slot S-1, whose per-hop shift wraps to slot 0), wrap pairs,
// and random sets.
func TestLatencyBoundBruteForce(t *testing.T) {
	const fMHz = 500
	cycleNs := 1e3 / fMHz
	rng := rand.New(rand.NewSource(7))
	check := func(set []int, tableSize int, p *route.Path) {
		t.Helper()
		brute := bruteForceWorstLatencyCycles(set, tableSize, p)
		bound := int(math.Round(LatencyBoundNs(p, set, tableSize, fMHz) / cycleNs))
		if bound < brute {
			t.Errorf("set %v table %d shift %d: bound %d cycles undercuts brute-force %d",
				set, tableSize, p.TotalShift, bound, brute)
		}
		// The model constants leave exactly two flit cycles of analytic
		// slack (decision granularity + injection margin); more would
		// mean the bound went soft.
		if bound-brute > 2*phit.FlitWords {
			t.Errorf("set %v table %d: bound %d cycles is %d above brute-force %d",
				set, tableSize, bound, bound-brute, brute)
		}
	}
	for _, tableSize := range []int{8, 16, 32} {
		for _, shift := range []int{1, 3, 6} {
			p := &route.Path{TotalShift: shift}
			for s := 0; s < tableSize; s++ {
				check([]int{s}, tableSize, p) // every position incl. S-1
			}
			check([]int{0, tableSize - 1}, tableSize, p) // wrap pair
			check([]int{tableSize - 2, tableSize - 1}, tableSize, p)
			for i := 0; i < 8; i++ {
				k := 1 + rng.Intn(tableSize-1)
				set := rng.Perm(tableSize)[:k]
				check(set, tableSize, p)
			}
		}
	}
}

func TestSlotsForLatencyInvertsBound(t *testing.T) {
	p := &route.Path{TotalShift: 4}
	for _, budget := range []float64{150, 250, 400} {
		k, err := SlotsForLatency(budget, p, 32, 500)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if got := LatencyBoundNs(p, EvenSlots(k, 32), 32, 500); got > budget {
			t.Errorf("budget %v: k=%d gives bound %v", budget, k, got)
		}
	}
	if _, err := SlotsForLatency(10, p, 32, 500); err == nil {
		t.Error("accepted a budget below the fixed path delay")
	}
}

// TestSlotsForLatencyFlooredGap is the regression for the revolution-wait
// undercount: with a fractional tolerable gap the historical sizing took
// k = ceil(S/gap) on the *fractional* gap, but an even spread of k slots
// realises a MaxGap of ceil(S/k), which can exceed the fractional gap and
// blow the budget by one flit cycle. Budget 37.2 ns on a one-shift path
// at S=8 tolerates gap 1.2: the old answer k=7 realises MaxGap 2
// (bound 42 ns > budget); the floored sizing returns k=8 (36 ns).
func TestSlotsForLatencyFlooredGap(t *testing.T) {
	p := &route.Path{TotalShift: 1}
	const budget = 37.2
	k, err := SlotsForLatency(budget, p, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if k != 8 {
		t.Errorf("SlotsForLatency(%v) = %d, want 8", budget, k)
	}
	if got := LatencyBoundNs(p, EvenSlots(k, 8), 8, 500); got > budget {
		t.Errorf("k=%d realises bound %v > budget %v", k, got, budget)
	}
	// The historical answer violates the budget — keep the counterexample
	// honest in case the constants drift.
	if old := LatencyBoundNs(p, EvenSlots(7, 8), 8, 500); old <= budget {
		t.Errorf("counterexample went stale: k=7 bound %v fits budget %v", old, budget)
	}
}

// TestSlotsForLatencyQuick: the slot count returned by SlotsForLatency,
// spread evenly, always satisfies the budget it was sized for — across
// small tables where fractional gaps bite hardest.
func TestSlotsForLatencyQuick(t *testing.T) {
	f := func(rawBudget uint16, rawShift, rawTable uint8) bool {
		tables := []int{4, 8, 12, 16, 32, 64}
		tableSize := tables[int(rawTable)%len(tables)]
		p := &route.Path{TotalShift: 1 + int(rawShift%6)}
		budget := 30 + float64(rawBudget%1000)/2
		k, err := SlotsForLatency(budget, p, tableSize, 500)
		if err != nil {
			return true // infeasible budgets may error
		}
		return LatencyBoundNs(p, EvenSlots(k, tableSize), tableSize, 500) <= budget+1e-9
	}
	cfg := &quick.Config{MaxCount: 4000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBurstSlotTimes(t *testing.T) {
	cases := []struct{ tx, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {16, 8}, {0, 1}}
	for _, c := range cases {
		if got := BurstSlotTimes(c.tx, false); got != c.want {
			t.Errorf("BurstSlotTimes(%d) = %d, want %d", c.tx, got, c.want)
		}
	}
	// Reliable: one payload word per slot, so slot times equal words.
	relCases := []struct{ tx, want int }{{1, 1}, {2, 2}, {4, 4}, {16, 16}, {0, 1}}
	for _, c := range relCases {
		if got := BurstSlotTimes(c.tx, true); got != c.want {
			t.Errorf("BurstSlotTimes(%d, reliable) = %d, want %d", c.tx, got, c.want)
		}
	}
}

func TestBurstBoundUsesWindow(t *testing.T) {
	p := &route.Path{TotalShift: 2}
	// Slots 0,2,5 in table 8: windows. For tx=4 words (m=2), worst
	// 2-gap window = 6.
	set := []int{0, 2, 5}
	b := LatencyBoundBurstNs(p, set, 8, 500, 4, false)
	want := float64(3*(6+1)+FixedPathCycles(p)) * 2
	if b != want {
		t.Errorf("burst bound = %v, want %v", b, want)
	}
	// m=1 matches the plain bound.
	if got, plain := LatencyBoundBurstNs(p, set, 8, 500, 2, false), LatencyBoundNs(p, set, 8, 500); got != plain {
		t.Errorf("m=1 burst bound %v != plain %v", got, plain)
	}
	// Reliable accounting widens the service window (4 words need 4
	// slot times, not 2), never narrows it.
	if rel := LatencyBoundBurstNs(p, set, 8, 500, 4, true); rel < b {
		t.Errorf("reliable burst bound %v < baseline %v", rel, b)
	}
}

// TestBurstSizingQuick: the slot count returned by SlotsForBurstLatency,
// spread evenly, always satisfies the budget it was sized for — in both
// accounting modes and down to small tables.
func TestBurstSizingQuick(t *testing.T) {
	f := func(rawBudget uint16, rawTx, rawShift, rawTable uint8) bool {
		tables := []int{8, 16, 32, 64}
		tableSize := tables[int(rawTable)%len(tables)]
		p := &route.Path{TotalShift: 1 + int(rawShift%6)}
		tx := 1 + int(rawTx%32)
		budget := 100 + float64(rawBudget%2000)
		reliable := rawTx%2 == 0
		k, err := SlotsForBurstLatency(budget, tx, p, tableSize, 500, reliable)
		if err != nil {
			return true // infeasible budgets may error
		}
		return LatencyBoundBurstNs(p, EvenSlots(k, tableSize), tableSize, 500, tx, reliable) <= budget+1e-9
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionBounds(t *testing.T) {
	p := &route.Path{TotalShift: 3}
	set := []int{0, 8}
	b := ConnectionBounds(p, set, 16, 500, 4, Mode{})
	if b.SlotCount != 2 || b.MaxGapSlots != 8 {
		t.Errorf("bounds = %+v", b)
	}
	if want := LatencyBoundNs(p, set, 16, 500); b.LatencyNs != want {
		t.Errorf("LatencyNs = %v, want %v", b.LatencyNs, want)
	}
	if want := ThroughputGuaranteeMBps(2, 500, 4, 16, false); b.GuaranteeMBps != want {
		t.Errorf("GuaranteeMBps = %v, want %v", b.GuaranteeMBps, want)
	}
	// Transactional mode uses the window bound; reliable mode halves
	// the guarantee.
	tb := ConnectionBounds(p, set, 16, 500, 4, Mode{Transactional: true, TxWords: 4})
	if want := LatencyBoundBurstNs(p, set, 16, 500, 4, false); tb.LatencyNs != want {
		t.Errorf("transactional LatencyNs = %v, want %v", tb.LatencyNs, want)
	}
	rb := ConnectionBounds(p, set, 16, 500, 4, Mode{Reliable: true})
	if math.Abs(rb.GuaranteeMBps-b.GuaranteeMBps/2) > 1e-9 {
		t.Errorf("reliable GuaranteeMBps = %v, want half of %v", rb.GuaranteeMBps, b.GuaranteeMBps)
	}
}

func TestWindowSlotsForBudget(t *testing.T) {
	p := &route.Path{TotalShift: 2}
	w, err := WindowSlotsForBudget(200, p, 500)
	if err != nil {
		t.Fatal(err)
	}
	// fixed = (5+6+4+3)*2 = 36 ns; (200-36)/6 = 27.3 -> 27.
	if w != 27 {
		t.Errorf("window = %d, want 27", w)
	}
	if _, err := WindowSlotsForBudget(30, p, 500); err == nil {
		t.Error("accepted budget below fixed delay")
	}
}

func TestCreditMath(t *testing.T) {
	rp := &route.Path{TotalShift: 3}
	rt := CreditRoundTripSlots([]int{0, 16}, rp, 32)
	if rt != 16+3+2 {
		t.Errorf("round trip = %d", rt)
	}
	cap := RecvCapacityWords(4, rt, 32)
	// 12 words/rev * (21/32 + 1) + 6 = 12*1.656+6 = 25.9 -> 26.
	if cap < 24 || cap > 28 {
		t.Errorf("capacity = %d", cap)
	}
	if got := RevSlots(10, 31); got != 1 {
		t.Errorf("RevSlots(10) = %d", got)
	}
	if got := RevSlots(62, 31); got != 2 {
		t.Errorf("RevSlots(62) = %d", got)
	}
	if got := RevSlots(0, 31); got != 1 {
		t.Errorf("RevSlots(0) = %d", got)
	}
}

func TestMaxGapWindowConsistency(t *testing.T) {
	// MaxGapWindow(m=1) equals MaxGap for any set.
	sets := [][]int{{0}, {0, 5}, {1, 2, 9}, {0, 4, 8, 12}}
	for _, s := range sets {
		if a, b := slots.MaxGapWindow(s, 16, 1), slots.MaxGap(s, 16); a != b {
			t.Errorf("window(1)=%d maxgap=%d for %v", a, b, s)
		}
	}
}
