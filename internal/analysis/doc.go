// Package analysis provides the analytical model of aelite's guaranteed
// services: the throughput and worst-case latency of a connection follow
// directly from its TDM slot reservation and path (paper Section VII,
// problem 3).
//
// Conventions: the clock period is T = 1/f; a slot is one flit cycle
// (3 cycles); a slot table of size S revolves every 3·S·T. A flit carries
// at most 2 payload words when it opens a packet (header + 2) and 3 when
// it extends one. All bandwidth math conservatively assumes 2 payload
// words per slot, so measured throughput with header elision can exceed
// the guarantee but never fall short. With the end-to-end reliability
// shell the accounting is one word tighter still: the sideband word
// (sequence, cumulative ack, CRC) occupies one of the three link words in
// a hardware-faithful budget, leaving 1 guaranteed payload word per slot.
// The simulator carries the sideband on dedicated extra wires, so a
// reliable connection over-delivers against this guarantee — the
// conformance auditor (internal/audit) checks exactly that direction.
//
// Cross-package contract: the slot-shift convention here must equal the
// one route.Path.Shift records and internal/slots claims by (one slot per
// router hop, one per link pipeline stage), or bounds silently detach
// from the schedule. Every bound this package derives is enforced
// dynamically by internal/audit, and internal/scenario clamps generated
// latency budgets with these formulas so large workloads stay jointly
// allocatable.
package analysis
