package routerless

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// testCase builds a cols x rows mesh with one NI per router and a
// random mapped use case with modest rates.
func testCase(t *testing.T, cols, rows, conns int, seed int64) (*topology.Mesh, *spec.UseCase) {
	t.Helper()
	m := topology.NewMesh(cols, rows, 1)
	uc := spec.Random(spec.RandomConfig{
		Name: "rl", Seed: seed, IPs: cols * rows, Apps: 2, Conns: conns,
		MinRateMBps: 10, MaxRateMBps: 60,
		MinLatencyNs: 2000, MaxLatencyNs: 8000,
	})
	spec.MapIPsRoundRobin(uc, m, 3)
	if err := uc.Validate(); err != nil {
		t.Fatalf("use case invalid: %v", err)
	}
	return m, uc
}

func TestRouterlessMeetsGuarantees(t *testing.T) {
	m, uc := testCase(t, 3, 3, 8, 7)
	n, err := Build(m, uc, Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep := n.Run(4000, 20000)
	for _, c := range rep.Conns {
		if c.Delivered == 0 {
			t.Errorf("conn %d delivered nothing", c.Conn)
			continue
		}
		if !c.MetThroughput {
			t.Errorf("conn %d throughput %.1f below required %.1f MB/s",
				c.Conn, c.MeasuredMBps, c.RequiredMBps)
		}
		if !c.WithinBound {
			t.Errorf("conn %d latency max %.1f ns exceeds bound %.1f ns",
				c.Conn, c.LatMaxNs, c.BoundNs)
		}
		if c.GuaranteedMBps < c.RequiredMBps {
			t.Errorf("conn %d guarantee %.1f below requirement %.1f",
				c.Conn, c.GuaranteedMBps, c.RequiredMBps)
		}
	}
}

// TestRouterlessAuditClean: the shared conformance auditor, fed from the
// overlay's contracts, observes a full run without a single violation.
func TestRouterlessAuditClean(t *testing.T) {
	m, uc := testCase(t, 3, 3, 8, 7)
	n, err := Build(m, uc, Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bus := trace.NewBus()
	n.AttachTracer(bus)
	rep := fault.NewCollector()
	a := n.Audit(bus, rep, audit.Options{})
	n.Run(4000, 20000)
	if v := a.Violations(); v != 0 {
		var b strings.Builder
		a.WriteSummary(&b)
		t.Fatalf("auditor recorded %d violations:\n%s", v, b.String())
	}
}

// recSink records every event as a canonical line for byte comparison.
type recSink struct{ buf bytes.Buffer }

func (s *recSink) Event(ev trace.Event) {
	fmt.Fprintf(&s.buf, "%d %d %d %d %d %d %d %d\n",
		ev.Time, ev.Ref, ev.Seq, ev.Arg, ev.Conn, ev.Comp, ev.Slot, ev.Kind)
}

// TestRouterlessDeterministic: two same-seed builds produce
// byte-identical reports and byte-identical event streams.
func TestRouterlessDeterministic(t *testing.T) {
	run := func() (string, string) {
		m, uc := testCase(t, 3, 3, 8, 7)
		n, err := Build(m, uc, Config{})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		bus := trace.NewBus()
		sink := &recSink{}
		bus.Attach(sink)
		n.AttachTracer(bus)
		rep := n.Run(4000, 20000)
		var b strings.Builder
		rep.Write(&b)
		return b.String(), sink.buf.String()
	}
	r1, e1 := run()
	r2, e2 := run()
	if r1 != r2 {
		t.Errorf("reports diverge:\n%s\n---\n%s", r1, r2)
	}
	if e1 != e2 {
		t.Errorf("event streams diverge (%d vs %d bytes)", len(e1), len(e2))
	}
	if e1 == "" {
		t.Error("event stream is empty")
	}
}

// TestRouterlessRejectsInfeasible: a demand past every ring's capacity
// fails at build time with a placement error, not at run time.
func TestRouterlessRejectsInfeasible(t *testing.T) {
	m := topology.NewMesh(2, 2, 1)
	uc := &spec.UseCase{
		Name: "hog",
		Apps: 1,
		IPs: []spec.IP{
			{ID: 0, Name: "ip0", NI: m.NIAt(0, 0, 0)},
			{ID: 1, Name: "ip1", NI: m.NIAt(1, 0, 0)},
		},
		Connections: []spec.Connection{
			{ID: 1, App: 0, Src: 0, Dst: 1, BandwidthMBps: 1e6, MaxLatencyNs: 1e6},
		},
	}
	if err := uc.Validate(); err != nil {
		t.Fatalf("use case invalid: %v", err)
	}
	if _, err := Build(m, uc, Config{}); err == nil {
		t.Fatal("Build accepted a connection no ring can carry")
	}
}

// TestRouterlessBoundFormula: the bound grows with hops and with slot
// gap, and a single fully-owned slot set has gap S-1.
func TestRouterlessBoundFormula(t *testing.T) {
	b1 := BoundNs([]int{0}, 8, 2, 500)
	b2 := BoundNs([]int{0}, 8, 5, 500)
	if b2 <= b1 {
		t.Errorf("bound not monotonic in hops: %g vs %g", b1, b2)
	}
	b3 := BoundNs([]int{0, 4}, 8, 2, 500)
	if b3 >= b1 {
		t.Errorf("more slots must shrink the bound: %g vs %g", b3, b1)
	}
}

// TestRouterlessRingInventory: a 3x3 mesh gets 3 row rings, 3 column
// rings and one snake; a 1xN mesh gets only its row ring.
func TestRouterlessRingInventory(t *testing.T) {
	m, uc := testCase(t, 3, 3, 4, 3)
	n, err := Build(m, uc, Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := n.Rings(); got != 7 {
		t.Errorf("3x3 mesh built %d rings, want 7 (3 rows + 3 cols + snake)", got)
	}
	var b strings.Builder
	n.WriteRings(&b)
	if b.Len() == 0 {
		t.Error("WriteRings wrote nothing")
	}
}
