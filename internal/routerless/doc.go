// Package routerless models a routerless ring-overlay NoC in the style
// of Indrusiak & Burns, "Real-Time Guarantees in Routerless
// Networks-on-Chip": the tiles' network interfaces sit as stops on a set
// of unidirectional rings (one per mesh row, one per mesh column, plus a
// global snake ring), and flits ride rotating TDM slots around a ring
// instead of being switched by routers.
//
// Injection is interleaved by slot ownership: every connection owns a
// set of slot positions on exactly one ring, and its source stop may
// inject only when an owned slot rotates past. Because a flit travels
// strictly less than one revolution before its destination stop ejects
// it, an owned slot always returns to its owner empty — the schedule is
// contention-free by construction, exactly like aelite's slot tables,
// and the same MaxGap argument yields a per-connection worst-case
// latency bound (see BoundNs). The bounds are wired into internal/audit
// through audit.AttachContracts, so the shared conformance auditor
// judges this backend with the same checks it applies to aelite.
//
// The model deliberately mirrors the aelite flit format — three words
// per slot, one of them header-equivalent overhead — so a slot's
// bandwidth is directly comparable between the two fabrics.
package routerless
