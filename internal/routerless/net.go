package routerless

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Name implements sim.Component.
func (r *ring) Name() string { return "rl." + r.name }

// Clock implements sim.Component.
func (r *ring) Clock() *clock.Clock { return r.net.base }

// Sample implements sim.Component (rings exchange no wires).
func (r *ring) Sample(now clock.Time) {}

// Update implements sim.Component: on every flit-cycle boundary the
// wheel rotates one stop, arriving flits eject, and owning stops inject
// into their freshly arrived slots.
func (r *ring) Update(now clock.Time) {
	cycle := int64(now / r.net.base.Period)
	if cycle%int64(phit.FlitWords) != 0 {
		return
	}
	// Rotate: the entry at stop p moves to stop p+1 (slot ids ride along).
	last := r.wheel[r.S-1]
	copy(r.wheel[1:], r.wheel[:r.S-1])
	r.wheel[0] = last

	for p := 0; p < r.S; p++ {
		e := &r.wheel[p]
		// Ejection first: a slot frees the instant its flit arrives.
		if f := e.flit; f != nil && f.dstPos == p {
			ci := r.conns[f.conn]
			st := r.stops[p]
			for _, w := range f.words {
				ci.delivered++
				if st.tr != nil {
					st.tr.Emit(trace.Event{Time: now, Ref: w.injected, Kind: trace.Eject,
						Conn: f.conn, Seq: w.seq, Slot: trace.NoSlot})
				}
				ci.latNs.Add(float64(now-w.injected) / float64(clock.Nanosecond))
				ci.lastNs = float64(now) / float64(clock.Nanosecond)
				if ci.delivered == 1 {
					ci.firstNs = ci.lastNs
				}
			}
			e.flit = nil
		}
		// Injection: only the slot's owner, only at its source stop, and
		// only into an empty slot. A non-empty owned slot here would mean
		// a flit survived a full revolution — a protocol violation.
		owner := r.alloc[e.sid]
		if owner == phit.None {
			continue
		}
		ci := r.conns[owner]
		if ci.srcPos != p || len(ci.q) == 0 {
			continue
		}
		if e.flit != nil {
			panic(fmt.Sprintf("routerless %s: slot %d returned occupied to its owner (conn %d)", r.Name(), e.sid, owner))
		}
		k := len(ci.q)
		if k > PayloadWords {
			k = PayloadWords
		}
		words := make([]pending, k)
		copy(words, ci.q[:k])
		ci.q = ci.q[:copy(ci.q, ci.q[k:])]
		st := r.stops[p]
		if st.tr != nil {
			st.tr.Emit(trace.Event{Time: now, Kind: trace.SlotStart, Conn: owner,
				Slot: int32(e.sid), Arg: int64(k)})
			for _, w := range words {
				st.tr.Emit(trace.Event{Time: now, Ref: w.injected, Kind: trace.Send,
					Conn: owner, Seq: w.seq, Slot: int32(e.sid)})
			}
		}
		e.flit = &inFlight{conn: owner, dstPos: ci.dstPos, words: words}
	}
}

// Offer implements traffic.Port: the generator's word enters the
// connection's source queue (blocking-write semantics on a full queue).
func (r *ring) Offer(now clock.Time, conn phit.ConnID, meta phit.Meta) bool {
	ci := r.conns[conn]
	if ci == nil {
		panic(fmt.Sprintf("routerless %s: unknown connection %d", r.Name(), conn))
	}
	if len(ci.q) >= SendCapacity {
		return false
	}
	ci.q = append(ci.q, pending{seq: meta.Seq, injected: now})
	if st := r.stops[ci.srcPos]; st.tr != nil {
		st.tr.Emit(trace.Event{Time: now, Kind: trace.Inject, Conn: conn,
			Seq: meta.Seq, Slot: trace.NoSlot})
	}
	return true
}

// AttachTracer installs bus as the overlay's event bus and hands every
// stop its emitter. Stops are interned ring by ring in position order,
// so the same build gets the same component ids and a byte-identical
// same-seed event stream. Passing a nil bus detaches everything.
func (n *Network) AttachTracer(bus *trace.Bus) {
	n.eng.SetTracer(bus)
	for _, r := range n.rings {
		for _, st := range r.stops {
			if bus == nil {
				st.tr = nil
			} else {
				st.tr = bus.Emitter(st.name)
			}
		}
	}
}

// Audit subscribes the shared conformance auditor to the overlay's
// contracts: per-connection latency bounds and dwell budgets from the
// ring analysis, injection token buckets from the slot guarantees, and
// per-stop slot-ownership tables. The per-revolution quota check stays
// off — rings of different sizes share no single revolution.
func (n *Network) Audit(bus *trace.Bus, rep fault.Reporter, opts audit.Options) *audit.Auditor {
	set := audit.ContractSet{
		FreqMHz:        n.Cfg.FreqMHz,
		WordBytes:      n.Cfg.WordBytes,
		CheckExclusive: true,
		AllocTables:    make(map[string][]phit.ConnID),
	}
	for _, id := range n.Connections() {
		ci := n.conns[id]
		set.Contracts = append(set.Contracts, audit.Contract{
			Conn:          id,
			SrcName:       ci.ring.stops[ci.srcPos].name,
			DstName:       ci.ring.stops[ci.dstPos].name,
			BoundNs:       ci.boundNs,
			WaitBudgetNs:  waitBudgetNs(ci.boundNs, ci.hops, n.Cfg.FreqMHz),
			GuaranteeMBps: ci.guaranteeMBps,
		})
	}
	for _, r := range n.rings {
		for _, st := range r.stops {
			table := make([]phit.ConnID, r.S)
			sourced := false
			for sid, owner := range r.alloc {
				if owner != phit.None && r.conns[owner].srcPos == st.pos {
					table[sid] = owner
					sourced = true
				}
			}
			if sourced {
				set.AllocTables[st.name] = table
			}
		}
	}
	return audit.AttachContracts(set, bus, rep, opts)
}

// ResetStats clears measurements without touching protocol state.
func (n *Network) ResetStats() {
	for _, ci := range n.conns {
		ci.delivered = 0
		ci.latNs = stats.Histogram{}
		ci.firstNs = 0
		ci.lastNs = 0
	}
}

// Run simulates warm-up, clears statistics, measures, and reports in the
// shared core.Report shape so experiments treat every backend uniformly.
func (n *Network) Run(warmupNs, measureNs float64) *core.Report {
	warm := clock.Time(warmupNs * float64(clock.Nanosecond))
	meas := clock.Time(measureNs * float64(clock.Nanosecond))
	n.eng.Run(n.eng.Now() + warm)
	n.ResetStats()
	n.eng.Run(n.eng.Now() + meas)

	r := &core.Report{
		Name:       n.Spec.Name,
		FreqMHz:    n.Cfg.FreqMHz,
		Mode:       "routerless",
		MeasureNs:  measureNs,
		TotalEdges: n.eng.Edges(),
	}
	for _, id := range n.Connections() {
		ci := n.conns[id]
		cr := core.ConnReport{
			Conn:              id,
			App:               ci.spec.App,
			RequiredMBps:      ci.spec.BandwidthMBps,
			RequiredLatencyNs: ci.spec.MaxLatencyNs,
			Slots:             len(ci.slotSet),
			GuaranteedMBps:    ci.guaranteeMBps,
			BoundNs:           ci.boundNs,
			PathHops:          ci.hops,
			Delivered:         ci.delivered,
		}
		if ci.delivered > 0 {
			st := ni.ConnStats{Delivered: ci.delivered, FirstNs: ci.firstNs, LastNs: ci.lastNs}
			cr.MeasuredMBps = st.ThroughputMBps(n.Cfg.WordBytes)
			cr.LatMinNs = ci.latNs.Min()
			cr.LatMeanNs = ci.latNs.Mean()
			cr.LatMaxNs = ci.latNs.Max()
			cr.LatP99Ns = ci.latNs.Percentile(99)
			cr.LatStdDevNs = ci.latNs.StdDev()
		}
		cr.MetThroughput = cr.MeasuredMBps >= cr.RequiredMBps*core.ThroughputTolerance
		cr.MetLatency = ci.delivered > 0 && cr.LatMaxNs <= cr.RequiredLatencyNs
		cr.WithinBound = ci.delivered > 0 && cr.LatMaxNs <= cr.BoundNs
		r.Conns = append(r.Conns, cr)
	}
	return r
}

// WriteRings renders the overlay's ring/slot occupancy, one line per
// ring, for the allocation-inspection CLI.
func (n *Network) WriteRings(w io.Writer) {
	for _, r := range n.rings {
		used := 0
		for _, c := range r.alloc {
			if c != phit.None {
				used++
			}
		}
		ids := make([]int, 0)
		seen := map[phit.ConnID]bool{}
		for _, c := range r.alloc {
			if c != phit.None && !seen[c] {
				seen[c] = true
				ids = append(ids, int(c))
			}
		}
		sort.Ints(ids)
		fmt.Fprintf(w, "%-8s %3d stops, %3d/%3d slots used, conns %v\n", r.name, r.S, used, r.S, ids)
	}
}
