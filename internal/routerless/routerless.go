package routerless

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/area"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/phit"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// SendCapacity is the per-connection source queue depth in words,
// matching the aelite and aethereal NIs so all backends face identical
// IP-side backpressure.
const SendCapacity = 32

// PayloadWords is the payload carried per slot flit. One of the three
// flit words is header-equivalent overhead (destination stop + connection
// id), mirroring aelite's slot format so per-slot bandwidth is directly
// comparable.
const PayloadWords = phit.FlitWords - 1

// Latency model constants, in base-clock cycles (see BoundNs).
const (
	// stopInjectCycles covers acceptance into the source queue and the
	// wait for the next flit-cycle boundary plus in-flit serialisation,
	// mirroring the aelite NI's injection overhead.
	stopInjectCycles = 5
	// stopDeliveryCycles covers destination-side registration of a
	// payload word after the flit arrives at the ejecting stop.
	stopDeliveryCycles = 4
)

// Config parameterises overlay construction. ApplyDefaults fills zero
// fields with the paper-wide defaults.
type Config struct {
	WordBytes int
	FreqMHz   float64
	// TrafficBurstFactor > 1 selects bursty generators at the same
	// average rate; 0 or 1 selects CBR. The analytical bounds assume
	// slot-regulated (CBR-compliant) load, as in aelite.
	TrafficBurstFactor float64
	// Transactional selects line-rate transaction generators. The
	// word-level bounds do not cover transaction drains; audits of
	// transactional runs should tolerate oversubscription.
	Transactional bool
}

// ApplyDefaults fills zero fields: 32-bit words at 500 MHz.
func (c *Config) ApplyDefaults() {
	if c.WordBytes == 0 {
		c.WordBytes = 4
	}
	if c.FreqMHz == 0 {
		c.FreqMHz = 500
	}
}

// BoundNs is the worst-case end-to-end latency, in nanoseconds, of a
// compliant word on a ring of S stops: a word that just misses a slot
// decision waits at most MaxGap+1 owned-slot arrivals (FlitWords cycles
// each), then rides hops ring segments (one flit cycle per stop), plus
// the fixed injection and delivery overheads. The same decomposition as
// analysis.LatencyBoundNs, with ring hops in place of the mesh path.
func BoundNs(slotSet []int, ringSize, hops int, fMHz float64) float64 {
	gap := slots.MaxGap(slotSet, ringSize)
	cycles := phit.FlitWords*(gap+1) + stopInjectCycles + phit.FlitWords*hops + stopDeliveryCycles
	return float64(cycles) * 1e3 / fMHz
}

// waitBudgetNs is the source-stop dwell budget at the raw bound: the
// bound minus the deterministic post-injection transit.
func waitBudgetNs(boundNs float64, hops int, fMHz float64) float64 {
	transit := float64(phit.FlitWords*hops+stopDeliveryCycles) * 1e3 / fMHz
	return boundNs - transit
}

// slotBandwidthMBps is one slot's payload bandwidth on a ring of S stops.
func slotBandwidthMBps(fMHz float64, wordBytes, ringSize int) float64 {
	revolutionsPerSec := fMHz * 1e6 / float64(phit.FlitWords*ringSize)
	return revolutionsPerSec * float64(PayloadWords) * float64(wordBytes) / 1e6
}

// pending is one queued or in-flight payload word.
type pending struct {
	seq      int64
	injected clock.Time
}

// inFlight is one occupied slot: a flit of up to PayloadWords words
// riding the ring towards dstPos.
type inFlight struct {
	conn   phit.ConnID
	dstPos int
	words  []pending
}

// entry is one wheel position: the slot id riding it and its cargo.
type entry struct {
	sid  int
	flit *inFlight
}

// stop is one NI's seat on one ring.
type stop struct {
	name string
	pos  int
	ni   topology.NodeID
	tr   *trace.Emitter
}

// A ring is one unidirectional slotted ring, simulated as a single
// component: stop state has no cross-ring coupling, so modelling the
// whole ring in one deterministic Update keeps the event order exact
// without per-stop wires. It also implements traffic.Port for the
// generators of the connections it carries.
type ring struct {
	name string
	net  *Network
	S    int

	stops []*stop
	pos   map[topology.NodeID]int // stop position of each NI on this ring
	wheel []entry                 // wheel[p] = slot entry currently at stop p
	alloc []phit.ConnID           // slot id -> owning connection (None = free)
	conns map[phit.ConnID]*connInfo
}

// connInfo is everything the overlay derived for one connection.
type connInfo struct {
	spec    spec.Connection
	ring    *ring
	srcPos  int
	dstPos  int
	hops    int
	slotSet []int

	guaranteeMBps float64
	boundNs       float64

	// Source queue and destination-side measurements.
	q         []pending
	delivered int64
	latNs     stats.Histogram
	firstNs   float64
	lastNs    float64
}

// A Network is a built, runnable routerless overlay instance.
type Network struct {
	Cfg  Config
	Mesh *topology.Mesh
	Spec *spec.UseCase

	eng   *sim.Engine
	base  *clock.Clock
	rings []*ring
	conns map[phit.ConnID]*connInfo
	gens  map[phit.ConnID]*traffic.Generator
}

// Engine exposes the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Rings returns the overlay's ring count.
func (n *Network) Rings() int { return len(n.rings) }

// Connections returns the ids of all connections, ascending.
func (n *Network) Connections() []phit.ConnID {
	out := make([]phit.ConnID, 0, len(n.conns))
	for id := range n.conns {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Generator returns a connection's traffic generator.
func (n *Network) Generator(c phit.ConnID) *traffic.Generator { return n.gens[c] }

// Info returns the allocation-derived facts of a connection in the
// shared core.ConnectionInfo shape (TotalShift, RecvCapacity and
// AckRTSlots stay zero: rings have no pipeline shift and no
// credit-managed receive queues).
func (n *Network) Info(c phit.ConnID) (core.ConnectionInfo, error) {
	ci, ok := n.conns[c]
	if !ok {
		return core.ConnectionInfo{}, fmt.Errorf("routerless: unknown connection %d", c)
	}
	return core.ConnectionInfo{
		Conn:           c,
		SrcNI:          ci.ring.stops[ci.srcPos].ni,
		DstNI:          ci.ring.stops[ci.dstPos].ni,
		Slots:          append([]int(nil), ci.slotSet...),
		PathHops:       ci.hops,
		GuaranteedMBps: ci.guaranteeMBps,
		RequiredMBps:   ci.spec.BandwidthMBps,
		BoundNs:        ci.boundNs,
	}, nil
}

// Build assembles the ring overlay for the use case on the mesh: row and
// column rings plus (on 2-D meshes) a global snake ring, then assigns
// every connection to the shortest ring with free slot capacity. The use
// case must be validated and its IPs mapped, exactly as for core.Build.
func Build(m *topology.Mesh, uc *spec.UseCase, cfg Config) (*Network, error) {
	cfg.ApplyDefaults()
	if err := uc.Validate(); err != nil {
		return nil, err
	}
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			return nil, fmt.Errorf("routerless: IP %s is not mapped to an NI", ip.Name)
		}
	}
	n := &Network{
		Cfg:   cfg,
		Mesh:  m,
		Spec:  uc,
		eng:   sim.New(),
		conns: make(map[phit.ConnID]*connInfo),
		gens:  make(map[phit.ConnID]*traffic.Generator),
	}
	n.base = clock.NewMHz("clk", cfg.FreqMHz, 0)
	n.buildRings()

	// Assign connections in id order: same inputs, same overlay.
	conns := append([]spec.Connection(nil), uc.Connections...)
	sort.Slice(conns, func(i, j int) bool { return conns[i].ID < conns[j].ID })
	for _, c := range conns {
		srcIP, err := uc.IP(c.Src)
		if err != nil {
			return nil, err
		}
		dstIP, err := uc.IP(c.Dst)
		if err != nil {
			return nil, err
		}
		if srcIP.NI == dstIP.NI {
			return nil, fmt.Errorf("routerless: connection %d endpoints share NI %d", c.ID, srcIP.NI)
		}
		ci, err := n.place(c, srcIP.NI, dstIP.NI)
		if err != nil {
			return nil, err
		}
		n.conns[c.ID] = ci
		ci.ring.conns[c.ID] = ci
	}

	// Components: rings first (index order), then generators (conn order)
	// — a fixed construction order keeps same-seed runs byte-identical.
	for _, r := range n.rings {
		n.eng.Add(r)
	}
	for _, c := range conns {
		ci := n.conns[c.ID]
		name := fmt.Sprintf("gen.c%d", c.ID)
		start := clock.Time(len(n.gens)%16) * 3 * n.base.Period
		var g *traffic.Generator
		switch {
		case cfg.Transactional:
			g = traffic.NewTransactional(name, n.base, ci.ring, c.ID, c.BandwidthMBps,
				cfg.WordBytes, int64(txWords(c.BandwidthMBps)), start)
		case cfg.TrafficBurstFactor > 1:
			g = traffic.NewBursty(name, n.base, ci.ring, c.ID, c.BandwidthMBps,
				cfg.WordBytes, 64, cfg.TrafficBurstFactor, start)
		default:
			g = traffic.NewCBR(name, n.base, ci.ring, c.ID, c.BandwidthMBps,
				cfg.WordBytes, start)
		}
		n.gens[c.ID] = g
		n.eng.Add(g)
	}
	return n, nil
}

// txWords mirrors core.TxWordsForRate's shape without importing core
// (higher-rate connections drain longer transactions).
func txWords(rateMBps float64) int {
	w := int(rateMBps / 10)
	if w < 4 {
		w = 4
	}
	if w > 64 {
		w = 64
	}
	return w
}

// buildRings lays the overlay: one ring per mesh row, one per column,
// and a boustrophedon snake ring over all NIs when the mesh is 2-D in
// both axes. Stops follow router order, each router contributing its NIs
// in index order.
func (n *Network) buildRings() {
	m := n.Mesh
	addRing := func(name string, nis []topology.NodeID) {
		r := &ring{
			name:  name,
			net:   n,
			S:     len(nis),
			conns: make(map[phit.ConnID]*connInfo),
			pos:   make(map[topology.NodeID]int),
		}
		r.stops = make([]*stop, r.S)
		r.wheel = make([]entry, r.S)
		r.alloc = make([]phit.ConnID, r.S)
		for p, id := range nis {
			r.stops[p] = &stop{
				name: fmt.Sprintf("%s.s%d", name, p),
				pos:  p,
				ni:   id,
			}
			r.pos[id] = p
			r.wheel[p] = entry{sid: p}
		}
		n.rings = append(n.rings, r)
	}
	for y := 0; y < m.Rows; y++ {
		var nis []topology.NodeID
		for x := 0; x < m.Cols; x++ {
			for k := 0; k < m.NIsPerRouter; k++ {
				nis = append(nis, m.NIAt(x, y, k))
			}
		}
		addRing(fmt.Sprintf("row%d", y), nis)
	}
	if m.Rows > 1 {
		for x := 0; x < m.Cols; x++ {
			var nis []topology.NodeID
			for y := 0; y < m.Rows; y++ {
				for k := 0; k < m.NIsPerRouter; k++ {
					nis = append(nis, m.NIAt(x, y, k))
				}
			}
			addRing(fmt.Sprintf("col%d", x), nis)
		}
	}
	if m.Rows > 1 && m.Cols > 1 {
		var nis []topology.NodeID
		for y := 0; y < m.Rows; y++ {
			for i := 0; i < m.Cols; i++ {
				x := i
				if y%2 == 1 {
					x = m.Cols - 1 - i
				}
				for k := 0; k < m.NIsPerRouter; k++ {
					nis = append(nis, m.NIAt(x, y, k))
				}
			}
		}
		addRing("snake", nis)
	}
}

// place assigns a connection to the shortest candidate ring with free
// slot capacity and picks its slot set.
func (n *Network) place(c spec.Connection, src, dst topology.NodeID) (*connInfo, error) {
	type candidate struct {
		r          *ring
		hops       int
		idx        int
		need       int
		srcP, dstP int
	}
	var cands []candidate
	for idx, r := range n.rings {
		sp, okS := r.pos[src]
		dp, okD := r.pos[dst]
		if !okS || !okD {
			continue
		}
		hops := ((dp-sp)%r.S + r.S) % r.S
		if hops == 0 {
			continue
		}
		per := slotBandwidthMBps(n.Cfg.FreqMHz, n.Cfg.WordBytes, r.S)
		need := int(math.Ceil(c.BandwidthMBps / per))
		if need < 1 {
			need = 1
		}
		if need > r.S {
			continue // rate exceeds this ring's capacity outright
		}
		cands = append(cands, candidate{r: r, hops: hops, idx: idx, need: need, srcP: sp, dstP: dp})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hops != cands[j].hops {
			return cands[i].hops < cands[j].hops
		}
		return cands[i].idx < cands[j].idx
	})
	for _, cd := range cands {
		set := cd.r.takeSlots(cd.need)
		if set == nil {
			continue
		}
		for _, s := range set {
			cd.r.alloc[s] = c.ID
		}
		bound := BoundNs(set, cd.r.S, cd.hops, n.Cfg.FreqMHz)
		return &connInfo{
			spec:          c,
			ring:          cd.r,
			srcPos:        cd.srcP,
			dstPos:        cd.dstP,
			hops:          cd.hops,
			slotSet:       set,
			guaranteeMBps: float64(cd.need) * slotBandwidthMBps(n.Cfg.FreqMHz, n.Cfg.WordBytes, cd.r.S),
			boundNs:       bound,
		}, nil
	}
	return nil, fmt.Errorf("routerless: connection %d (%.1f Mbyte/s) fits no ring: every candidate is out of slot capacity", c.ID, c.BandwidthMBps)
}

// takeSlots picks k free slots spread as evenly as the current occupancy
// allows (each even-spread target snaps to the nearest free slot,
// scanning forward), or nil when fewer than k slots are free.
func (r *ring) takeSlots(k int) []int {
	free := 0
	for _, c := range r.alloc {
		if c == phit.None {
			free++
		}
	}
	if free < k {
		return nil
	}
	used := make([]bool, r.S)
	var set []int
	for _, target := range analysis.EvenSlots(k, r.S) {
		for off := 0; off < r.S; off++ {
			s := (target + off) % r.S
			if r.alloc[s] == phit.None && !used[s] {
				used[s] = true
				set = append(set, s)
				break
			}
		}
	}
	sort.Ints(set)
	return set
}

// AreaUm2 estimates the overlay's silicon cost from the paper's area
// primitives: every stop carries one flit-wide ring register stage plus
// ejection control, and every sourced connection a send FIFO. There are
// no routers — that is the routerless trade: more link wiring, less
// switching logic.
func (n *Network) AreaUm2() float64 {
	wordBits := n.Cfg.WordBytes * 8
	var sum float64
	for _, r := range n.rings {
		sum += float64(r.S) * (area.LinkStageArea(wordBits, true) + area.ControlArea)
	}
	for range n.conns {
		sum += area.FIFOArea(SendCapacity, wordBits, true)
	}
	return sum
}
