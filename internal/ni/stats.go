package ni

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/stats"
)

// ConnStats summarises one terminating connection's measured behaviour at
// this NI. Latency is measured per payload word from acceptance into the
// source NI's IP-side FIFO to arrival at the destination NI, in
// nanoseconds — the same span the paper's requirements cover.
type ConnStats struct {
	Delivered int64
	Latency   *stats.Histogram
	// FirstNs and LastNs are the arrival times of the first and last
	// delivered word, for throughput computation over the active span.
	FirstNs, LastNs float64
}

// ThroughputMBps returns the average delivered throughput in Mbyte/s over
// the active span, given the word width in bytes.
func (c ConnStats) ThroughputMBps(wordBytes int) float64 {
	if c.Delivered < 2 || c.LastNs <= c.FirstNs {
		return 0
	}
	bytes := float64(c.Delivered-1) * float64(wordBytes)
	return bytes / (c.LastNs - c.FirstNs) * 1e3 // bytes/ns -> Mbyte/s
}

// InStats returns measurement for a connection terminating here.
func (n *NI) InStats(conn phit.ConnID) ConnStats {
	ic := n.mustIn(conn)
	return ConnStats{
		Delivered: ic.delivered,
		Latency:   &ic.latency,
		FirstNs:   float64(ic.firstAt) / float64(clock.Nanosecond),
		LastNs:    float64(ic.lastAt) / float64(clock.Nanosecond),
	}
}

// SentWords returns how many payload words an out-connection has sent.
func (n *NI) SentWords(conn phit.ConnID) int64 { return n.mustOut(conn).sent }

// BlockedFlits returns how many owned slots an out-connection could not
// use for payload because its end-to-end credits were exhausted — the
// back-pressure signal of paper Section IV.A.
func (n *NI) BlockedFlits(conn phit.ConnID) int64 { return n.mustOut(conn).blocked }

// Credits returns an out-connection's current end-to-end credit count.
func (n *NI) Credits(conn phit.ConnID) int { return n.mustOut(conn).credits }

// OwedCredits returns how many credits an in-connection still owes its
// sender.
func (n *NI) OwedCredits(conn phit.ConnID) int { return n.mustIn(conn).owed }

// PaddingWords returns the number of padding phits received (protocol
// overhead accounting).
func (n *NI) PaddingWords() int64 { return n.paddingSum }

// RecordArrivals enables (or disables) logging of every payload arrival
// instant for an in-connection.
func (n *NI) RecordArrivals(conn phit.ConnID, on bool) {
	ic := n.mustIn(conn)
	ic.record = on
	if !on {
		ic.arrivals = nil
	}
}

// Arrivals returns the logged arrival instants (RecordArrivals must be on).
func (n *NI) Arrivals(conn phit.ConnID) []clock.Time {
	return append([]clock.Time(nil), n.mustIn(conn).arrivals...)
}

// ResetStats clears measurement state (typically after warm-up) without
// touching protocol state.
func (n *NI) ResetStats() {
	for _, ic := range n.inByID {
		ic.delivered = 0
		ic.latency = stats.Histogram{}
		ic.firstAt = 0
		ic.lastAt = 0
		ic.arrivals = nil
	}
	for _, oc := range n.outByID {
		oc.sent = 0
		oc.blocked = 0
	}
	n.paddingSum = 0
	// Counter snapshots taken at a hyperperiod boundary are stale now;
	// the replay program must re-baseline before engaging again.
	n.rmValid = false
}

func (n *NI) String() string {
	return fmt.Sprintf("ni(%s, %d out, %d in)", n.name, len(n.outByID), len(n.inByID))
}

// CorruptSlotForTest deliberately moves one of the connection's table
// reservations to a different, unowned slot — a fault-injection hook for
// verifying that the network's TDM probes and the routers' contention
// checks detect schedule violations. Never call it outside tests.
func (n *NI) CorruptSlotForTest(conn phit.ConnID) {
	from, to := -1, -1
	for s, owner := range n.table.Slots {
		if owner == conn && from < 0 {
			from = s
		}
		if owner == phit.None && to < 0 {
			to = s
		}
	}
	if from < 0 || to < 0 {
		panic(fmt.Sprintf("ni %s: cannot corrupt table for connection %d", n.name, conn))
	}
	n.table.Slots[to] = conn
	n.table.Slots[from] = phit.None
}
