package ni

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
	"repro/internal/slots"
)

var layout = phit.DefaultLayout

// pair wires two NIs directly together (no routers, empty paths): A sends
// data connection 1 to B; B returns credits on connection 2.
type pair struct {
	eng  *sim.Engine
	clk  *clock.Clock
	a, b *NI
}

// newPair builds the harness. aSlots/bSlots pick the injection slots of
// connection 1 (at A) and the reverse connection 2 (at B) in a table of
// size tableSize. recvCap is B's receive queue for connection 1.
func newPair(t *testing.T, tableSize int, aSlots, bSlots []int, recvCap int, autoDrain bool) *pair {
	t.Helper()
	eng := sim.New()
	clk := clock.NewMHz("clk", 500, 0)
	ab := sim.NewWire[phit.Phit]("a>b")
	ba := sim.NewWire[phit.Phit]("b>a")
	eng.AddWire(ab)
	eng.AddWire(ba)

	ta := slots.NewTable(tableSize)
	for _, s := range aSlots {
		ta.Slots[s] = 1
	}
	tb := slots.NewTable(tableSize)
	for _, s := range bSlots {
		tb.Slots[s] = 2
	}
	a := New("A", clk, layout, ta, ba, ab)
	b := New("B", clk, layout, tb, ab, ba)

	hdr1, err := layout.Encode(nil, 0, 0) // qid 0 at B
	if err != nil {
		t.Fatal(err)
	}
	hdr2, err := layout.Encode(nil, 0, 0) // qid 0 at A
	if err != nil {
		t.Fatal(err)
	}
	a.AddOutConn(OutConnConfig{ID: 1, Header: hdr1, InitialCredits: recvCap, PairedIn: 2})
	b.AddInConn(InConnConfig{ID: 1, QID: 0, RecvCapacity: recvCap, CreditFor: 2, AutoDrain: autoDrain})
	b.AddOutConn(OutConnConfig{ID: 2, Header: hdr2, InitialCredits: 0, PairedIn: 1})
	a.AddInConn(InConnConfig{ID: 2, QID: 0, RecvCapacity: 0, CreditFor: 1, AutoDrain: true})

	eng.Add(a)
	eng.Add(b)
	return &pair{eng: eng, clk: clk, a: a, b: b}
}

func (p *pair) cycles(n int64) { p.eng.Run(p.eng.Now() + clock.Time(n)*p.clk.Period) }

func (p *pair) offer(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !p.a.Offer(p.eng.Now(), 1, phit.Meta{Seq: int64(i), Injected: p.eng.Now()}) {
			t.Fatalf("Offer %d rejected", i)
		}
	}
}

func TestNIDeliversPayload(t *testing.T) {
	p := newPair(t, 4, []int{0, 2}, []int{1}, 16, true)
	p.offer(t, 5)
	p.cycles(40)
	st := p.b.InStats(1)
	if st.Delivered != 5 {
		t.Fatalf("delivered %d, want 5", st.Delivered)
	}
	if p.a.SentWords(1) != 5 {
		t.Errorf("SentWords = %d", p.a.SentWords(1))
	}
	if st.Latency.Min() <= 0 {
		t.Errorf("latency min = %v", st.Latency.Min())
	}
}

func TestNIInjectsOnlyInOwnedSlots(t *testing.T) {
	p := newPair(t, 8, []int{3}, []int{6}, 16, true)
	// Watch the wire: valid phits may only appear in slot 3 (+ the
	// drive pipeline offset).
	p.offer(t, 2)
	for i := 0; i < 80; i++ {
		p.cycles(1)
		// The NI drives during edge n; the wire holds it for samplers
		// at n+1. Reconstruct the drive edge.
		n, _ := p.clk.EdgeIndex(p.eng.Now())
		w := p.aOut().Read()
		if w.Valid && w.Meta.Conn == 1 {
			drive := n
			slot := int(drive / 3 % 8)
			if slot != 3 {
				t.Fatalf("connection 1 phit driven in slot %d", slot)
			}
		}
	}
}

// aOut digs the output wire out of the engine (test helper).
func (p *pair) aOut() *sim.Wire[phit.Phit] { return p.a.out }

func TestNIPacketisationPadding(t *testing.T) {
	// One word offered: flit = header + payload + padding with EoP.
	p := newPair(t, 4, []int{0}, []int{2}, 16, true)
	p.offer(t, 1)
	var seen []phit.Phit
	for i := 0; i < 30; i++ {
		p.cycles(1)
		w := p.aOut().Read()
		if w.Valid && w.Meta.Conn == 1 {
			seen = append(seen, w)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("flit had %d words, want 3 (padded)", len(seen))
	}
	if seen[0].Kind != phit.Header || seen[1].Kind != phit.Payload || seen[2].Kind != phit.Padding {
		t.Fatalf("flit kinds: %v %v %v", seen[0].Kind, seen[1].Kind, seen[2].Kind)
	}
	if !seen[2].EoP {
		t.Error("EoP missing on the final (padding) word")
	}
	if p.b.PaddingWords() != 1 {
		t.Errorf("PaddingWords = %d", p.b.PaddingWords())
	}
}

func TestNIHeaderElision(t *testing.T) {
	// Adjacent slots 1,2: a backlog spanning both should send
	// header+2 in slot 1 and 3 payload words (no header) in slot 2.
	p := newPair(t, 4, []int{1, 2}, []int{0}, 32, true)
	p.offer(t, 5)
	var kinds []phit.Kind
	for i := 0; i < 40 && len(kinds) < 6; i++ {
		p.cycles(1)
		w := p.aOut().Read()
		if w.Valid && w.Meta.Conn == 1 {
			kinds = append(kinds, w.Kind)
		}
	}
	want := []phit.Kind{phit.Header, phit.Payload, phit.Payload, phit.Payload, phit.Payload, phit.Payload}
	if len(kinds) != len(want) {
		t.Fatalf("saw %d words: %v", len(kinds), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("word %d is %v, want %v (elided continuation)", i, kinds[i], want[i])
		}
	}
	p.cycles(10) // let the last words land
	if st := p.b.InStats(1); st.Delivered != 5 {
		t.Errorf("delivered %d", st.Delivered)
	}
}

func TestNICreditStallAndReturn(t *testing.T) {
	// recvCap 3: A can send only one flit's payload (2 words, then 1)
	// before waiting for returns; with B's return slot in the loop the
	// full backlog still drains.
	p := newPair(t, 4, []int{0}, []int{2}, 3, true)
	p.offer(t, 9)
	p.cycles(200)
	st := p.b.InStats(1)
	if st.Delivered != 9 {
		t.Fatalf("delivered %d of 9 with tight credits", st.Delivered)
	}
	if got := p.a.Credits(1); got < 0 || got > 3 {
		t.Errorf("credits %d out of [0,3]", got)
	}
}

func TestNICreditExhaustionBlocks(t *testing.T) {
	// B owns no slots, so credits can never return: A must send exactly
	// its initial window (3 words) and then stall, counting blocked
	// flit opportunities — end-to-end flow control protecting B's
	// 3-word queue.
	p := newPair(t, 4, []int{0}, nil, 3, true)
	p.offer(t, 9)
	p.cycles(200)
	if got := p.b.InStats(1).Delivered; got != 3 {
		t.Fatalf("delivered %d, want exactly the 3-word credit window", got)
	}
	if p.a.BlockedFlits(1) == 0 {
		t.Error("sender never counted a blocked flit")
	}
	if got := p.a.Credits(1); got != 0 {
		t.Errorf("credits = %d, want 0", got)
	}
}

func TestNICreditOnlyPackets(t *testing.T) {
	// B owes credits but has no data: it must emit CreditOnly headers.
	p := newPair(t, 4, []int{0}, []int{2}, 6, true)
	p.offer(t, 6)
	sawCreditOnly := false
	for i := 0; i < 120; i++ {
		p.cycles(1)
		w := p.b.out.Read()
		if w.Valid && w.Kind == phit.CreditOnly {
			sawCreditOnly = true
		}
	}
	if !sawCreditOnly {
		t.Error("no credit-only packet on the reverse connection")
	}
	if got := p.a.Credits(1); got != 6 {
		t.Errorf("credits not fully returned: %d of 6", got)
	}
}

func TestNIManualConsume(t *testing.T) {
	p := newPair(t, 4, []int{0}, []int{2}, 6, false) // no auto-drain
	p.offer(t, 4)
	p.cycles(60)
	if got := p.b.InStats(1).Delivered; got != 4 {
		t.Fatalf("delivered %d", got)
	}
	if owed := p.b.OwedCredits(1); owed != 0 {
		t.Errorf("owed %d before consumption", owed)
	}
	metas := p.b.Consume(1, 3)
	if len(metas) != 3 || metas[0].Seq != 0 || metas[2].Seq != 2 {
		t.Fatalf("Consume = %v", metas)
	}
	if owed := p.b.OwedCredits(1); owed != 3 {
		t.Errorf("owed %d after consuming 3", owed)
	}
	rest := p.b.Consume(1, 10)
	if len(rest) != 1 || rest[0].Seq != 3 {
		t.Fatalf("second Consume = %v", rest)
	}
}

func TestNIOfferBlocksWhenFull(t *testing.T) {
	p := newPair(t, 4, []int{0}, []int{2}, 64, true)
	n := 0
	for p.a.Offer(0, 1, phit.Meta{Seq: int64(n)}) {
		n++
		if n > DefaultSendCapacity {
			t.Fatalf("Offer accepted %d words beyond capacity", n)
		}
	}
	if n != DefaultSendCapacity {
		t.Errorf("accepted %d, want %d", n, DefaultSendCapacity)
	}
	if got := p.a.SendQueueSpace(1); got != 0 {
		t.Errorf("SendQueueSpace = %d", got)
	}
}

func TestNIResetStats(t *testing.T) {
	p := newPair(t, 4, []int{0}, []int{2}, 16, true)
	p.offer(t, 3)
	p.cycles(40)
	p.a.ResetStats()
	p.b.ResetStats()
	if got := p.b.InStats(1).Delivered; got != 0 {
		t.Errorf("Delivered after reset = %d", got)
	}
	if got := p.a.SentWords(1); got != 0 {
		t.Errorf("SentWords after reset = %d", got)
	}
}

func TestNIArrivalRecording(t *testing.T) {
	p := newPair(t, 4, []int{0}, []int{2}, 16, true)
	p.b.RecordArrivals(1, true)
	p.offer(t, 3)
	p.cycles(40)
	arr := p.b.Arrivals(1)
	if len(arr) != 3 {
		t.Fatalf("recorded %d arrivals", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			t.Error("arrivals not strictly increasing")
		}
	}
	p.b.RecordArrivals(1, false)
	if len(p.b.Arrivals(1)) != 0 {
		t.Error("arrivals survived disabling")
	}
}

func TestNIPanics(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	tb := slots.NewTable(4)
	for name, f := range map[string]func(){
		"bad layout": func() { New("x", clk, phit.HeaderLayout{}, tb, nil, nil) },
		"zero conn": func() {
			New("x", clk, layout, tb, nil, nil).AddOutConn(OutConnConfig{ID: 0})
		},
		"dup out": func() {
			n := New("x", clk, layout, tb, nil, nil)
			n.AddOutConn(OutConnConfig{ID: 1})
			n.AddOutConn(OutConnConfig{ID: 1})
		},
		"dup qid": func() {
			n := New("x", clk, layout, tb, nil, nil)
			n.AddInConn(InConnConfig{ID: 1, QID: 0})
			n.AddInConn(InConnConfig{ID: 2, QID: 0})
		},
		"qid range": func() {
			New("x", clk, layout, tb, nil, nil).AddInConn(InConnConfig{ID: 1, QID: 99})
		},
		"unknown out": func() {
			New("x", clk, layout, tb, nil, nil).Offer(0, 7, phit.Meta{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNIStepFlitWrapperMode(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	tb := slots.NewTable(2)
	tb.Slots[0] = 1
	n := New("w", clk, layout, tb, nil, nil)
	hdr, _ := layout.Encode(nil, 0, 0)
	n.AddOutConn(OutConnConfig{ID: 1, Header: hdr, InitialCredits: 8})
	n.Offer(0, 1, phit.Meta{Seq: 1, Injected: 0})
	n.Offer(0, 1, phit.Meta{Seq: 2, Injected: 0})

	// Iteration 0 = slot 0 (owned): must carry the data.
	out := n.StepFlit(clk.Period*2, phit.Flit{})
	if out.Empty() {
		t.Fatal("owned slot produced an empty token")
	}
	if out[0].Kind != phit.Header || out[1].Meta.Seq != 1 || out[2].Meta.Seq != 2 {
		t.Fatalf("flit = %v %v %v", out[0], out[1], out[2])
	}
	// Iteration 1 = slot 1 (idle): empty token.
	out = n.StepFlit(clk.Period*5, phit.Flit{})
	if !out.Empty() {
		t.Fatalf("unowned slot produced %v", out)
	}
	// Engine updates must now panic.
	defer func() {
		if recover() == nil {
			t.Error("no panic for engine Update on a wrapped NI")
		}
	}()
	n.Update(clk.Period)
}
