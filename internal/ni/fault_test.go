package ni

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/slots"
)

// faultNI builds a bare NI for violation testing: out connection 1 owns
// slot 0 with 6 initial credits, and in connection 3 sits at queue 0.
func faultNI(creditFor phit.ConnID, recvCap int, autoDrain bool) *NI {
	clk := clock.NewMHz("clk", 500, 0)
	tb := slots.NewTable(4)
	tb.Slots[0] = 1
	n := New("f", clk, layout, tb, nil, nil)
	hdr, _ := layout.Encode(nil, 0, 0)
	n.AddOutConn(OutConnConfig{ID: 1, Header: hdr, InitialCredits: 6})
	n.AddInConn(InConnConfig{ID: 3, QID: 0, RecvCapacity: recvCap, CreditFor: creditFor, AutoDrain: autoDrain})
	return n
}

func header(t *testing.T, qid, credits int) phit.Phit {
	t.Helper()
	hdr, err := layout.Encode(nil, qid, credits)
	if err != nil {
		t.Fatal(err)
	}
	return phit.Phit{Valid: true, Kind: phit.Header, Data: hdr, Meta: phit.Meta{Conn: 3}}
}

// TestNIViolations drives every converted panic site of the NI twice: in
// strict mode (nil reporter) the original fail-fast panic must fire, and
// in collecting mode the same stimulus must record exactly the expected
// violation kind and leave the NI running.
func TestNIViolations(t *testing.T) {
	payload := phit.Phit{Valid: true, Kind: phit.Payload, Meta: phit.Meta{Conn: 3}}
	cases := []struct {
		name  string
		kind  fault.Kind
		build func(t *testing.T) *NI
		run   func(t *testing.T, n *NI)
	}{
		{
			name:  "expected-header",
			kind:  fault.ProtocolError,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 8, true) },
			run: func(t *testing.T, n *NI) {
				n.receivePhit(100, payload)
			},
		},
		{
			name:  "unknown-queue",
			kind:  fault.UnknownQueue,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 8, true) },
			run: func(t *testing.T, n *NI) {
				n.receivePhit(100, header(t, 1, 0)) // queue 1 does not exist
				// The packet body must be swallowed without further reports.
				n.receivePhit(102, payload)
				eop := payload
				eop.EoP = true
				n.receivePhit(104, eop)
			},
		},
		{
			name:  "credits-without-target",
			kind:  fault.CreditError,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 8, true) },
			run: func(t *testing.T, n *NI) {
				n.receivePhit(100, header(t, 0, 2))
			},
		},
		{
			name:  "credit-overflow",
			kind:  fault.CreditError,
			build: func(t *testing.T) *NI { return faultNI(1, 8, true) },
			run: func(t *testing.T, n *NI) {
				// Connection 1 already holds its full 6-credit window; any
				// return is a duplicate.
				n.receivePhit(100, header(t, 0, 1))
			},
		},
		{
			name:  "receive-queue-overflow",
			kind:  fault.QueueOverflow,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 1, false) },
			run: func(t *testing.T, n *NI) {
				n.receivePhit(100, header(t, 0, 0))
				n.receivePhit(102, payload) // fills the 1-word queue
				n.receivePhit(104, payload) // overflows it
			},
		},
		{
			name:  "kind-inside-packet",
			kind:  fault.ProtocolError,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 8, true) },
			run: func(t *testing.T, n *NI) {
				n.receivePhit(100, header(t, 0, 0))
				n.receivePhit(102, header(t, 0, 0)) // header inside a packet
			},
		},
		{
			name:  "packet-open-into-unowned-slot",
			kind:  fault.PacketState,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 8, true) },
			run: func(t *testing.T, n *NI) {
				n.openConn = 1
				n.buildFlit(100, 1) // slot 1 is unowned
			},
		},
		{
			name: "packet-open-into-foreign-slot",
			kind: fault.PacketState,
			build: func(t *testing.T) *NI {
				n := faultNI(phit.None, 8, true)
				hdr, _ := layout.Encode(nil, 0, 0)
				n.AddOutConn(OutConnConfig{ID: 9, Header: hdr, InitialCredits: 6})
				n.table.Slots[1] = 9
				return n
			},
			run: func(t *testing.T, n *NI) {
				n.openConn = 1
				n.buildFlit(100, 1) // slot 1 belongs to connection 9
			},
		},
		{
			name:  "kept-open-with-nothing-to-send",
			kind:  fault.PacketState,
			build: func(t *testing.T) *NI { return faultNI(phit.None, 8, true) },
			run: func(t *testing.T, n *NI) {
				n.openConn = 1
				n.buildFlit(100, 0) // own slot, but the send queue is empty
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/strict", func(t *testing.T) {
			n := tc.build(t)
			defer func() {
				if recover() == nil {
					t.Error("no panic in strict mode")
				}
			}()
			tc.run(t, n)
		})
		t.Run(tc.name+"/collect", func(t *testing.T) {
			n := tc.build(t)
			col := fault.NewCollector()
			n.SetReporter(col)
			tc.run(t, n)
			if col.Total() != 1 {
				t.Fatalf("collected %d violations, want exactly 1: %v", col.Total(), col.Violations())
			}
			if got := col.Violations()[0].Kind; got != tc.kind {
				t.Errorf("violation kind %v, want %v", got, tc.kind)
			}
		})
	}
}

// TestNIForceClosedPacketRecovers: after a packet-state violation is
// collected, the NI must close the packet cleanly and keep injecting.
func TestNIForceClosedPacketRecovers(t *testing.T) {
	n := faultNI(phit.None, 8, true)
	col := fault.NewCollector()
	n.SetReporter(col)
	n.openConn = 1
	n.buildFlit(100, 0) // kept open with nothing to send
	if n.openConn != phit.None {
		t.Error("packet not force-closed")
	}
	if !n.flitBuf[phit.FlitWords-1].EoP {
		t.Error("force-closed flit missing EoP")
	}
	// Next owned slot with real data must still work.
	n.Offer(200, 1, phit.Meta{Seq: 1})
	n.buildFlit(10000, 0)
	if !n.flitBuf[0].Valid || n.flitBuf[0].Kind != phit.Header {
		t.Errorf("NI stopped injecting after a collected violation: %v", n.flitBuf[0])
	}
}
