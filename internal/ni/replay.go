package ni

// Hyperperiod replay support: the NI implements replay.Periodic so the
// compiled fast path can prove its state periodic, fast-forward it by
// whole epochs, and fall back to cycle-accurate execution losslessly.

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/replay"
)

// ensureSorted refreshes the id-ordered connection caches used for
// deterministic fingerprints and shifts.
func (n *NI) ensureSorted() {
	if n.sortedOK {
		return
	}
	n.sortedOut = n.sortedOut[:0]
	for _, oc := range n.outByID {
		n.sortedOut = append(n.sortedOut, oc)
	}
	sort.Slice(n.sortedOut, func(i, j int) bool { return n.sortedOut[i].cfg.ID < n.sortedOut[j].cfg.ID })
	n.sortedIn = n.sortedIn[:0]
	for _, ic := range n.inByID {
		n.sortedIn = append(n.sortedIn, ic)
	}
	sort.Slice(n.sortedIn, func(i, j int) bool { return n.sortedIn[i].cfg.ID < n.sortedIn[j].cfg.ID })
	n.sortedOK = true
}

// ReplayOK implements replay.Periodic: false while a mode that makes the
// NI's behaviour or observation data-dependent is active.
func (n *NI) ReplayOK() bool {
	if n.wrapped || n.rel != nil {
		return false
	}
	for _, ic := range n.inByID {
		if ic.record {
			return false
		}
	}
	return true
}

// ReplayPeriod implements replay.Periodic: the NI's behaviour depends on
// absolute time through the word index within a flit and the TDM slot
// index, which repeat every FlitWords*TableSize clock cycles.
func (n *NI) ReplayPeriod() clock.Duration {
	return clock.Duration(phit.FlitWords*n.table.Size()) * n.clk.Period
}

// ReplayMark implements replay.Periodic.
func (n *NI) ReplayMark(now clock.Time) bool {
	n.ensureSorted()
	first := !n.rmValid
	clean := !first
	for _, oc := range n.sortedOut {
		oc.dSent = oc.sent - oc.mSent
		oc.dBlocked = oc.blocked - oc.mBlocked
		if oc.maxOcc != oc.mMaxOcc {
			// The traced high-water mark rose during the epoch: its
			// Occupancy event is in the recorded schedule but a real run
			// would not re-emit it, so the epoch is not replayable.
			clean = false
		}
		oc.mSent, oc.mBlocked, oc.mMaxOcc = oc.sent, oc.blocked, oc.maxOcc
	}
	for _, ic := range n.sortedIn {
		ic.dDelivered = ic.delivered - ic.mDelivered
		dLast := ic.lastAt - ic.mLastAt
		ic.lastMoved = dLast != 0
		if ic.delivered > 0 && dLast != now-n.markNow() && dLast != 0 {
			clean = false
		}
		if ic.firstAt != ic.mFirstAt {
			clean = false
		}
		ic.pSamples, ic.mSamples = ic.mSamples, len(ic.latency.Samples())
		ic.mDelivered, ic.mLastAt, ic.mFirstAt = ic.delivered, ic.lastAt, ic.firstAt
	}
	n.dFlit = n.flitIndex - n.mFlit
	n.dPadding = n.paddingSum - n.mPadding
	n.mFlit, n.mPadding = n.flitIndex, n.paddingSum
	n.rmNow = now
	n.rmValid = true
	return clean
}

func (n *NI) markNow() clock.Time { return n.rmNow }

// ReplayFingerprint implements replay.Periodic: the complete protocol
// state, normalised to the boundary instant and the per-connection
// sequence base. Monotone statistics are excluded (they shift by deltas);
// the slot table contents are included so an unsynchronised table
// reprogram can never match a stale fingerprint.
func (n *NI) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	n.ensureSorted()
	buf = replay.AppendI64(buf, int64(n.openConn))
	var flags int64
	if n.inPacket {
		flags |= 1
	}
	if n.dropPacket {
		flags |= 2
	}
	buf = replay.AppendI64(buf, flags)
	cur := int64(-1)
	if n.curIn != nil {
		cur = int64(n.curIn.cfg.QID)
	}
	buf = replay.AppendI64(buf, cur)
	for _, p := range n.flitBuf {
		buf = replay.AppendPhit(buf, p, ctx)
	}
	for _, owner := range n.table.Slots {
		buf = replay.AppendI64(buf, int64(owner))
	}
	for _, oc := range n.sortedOut {
		buf = replay.AppendI64(buf, int64(oc.cfg.ID))
		buf = replay.AppendI64(buf, int64(oc.credits))
		buf = replay.AppendI64(buf, int64(oc.queue.Len()))
		oc.queue.Scan(func(m phit.Meta, pushed, visible clock.Time) {
			buf = replay.AppendMeta(buf, m, ctx)
			buf = replay.AppendTime(buf, pushed, ctx)
			buf = replay.AppendTime(buf, visible, ctx)
		})
	}
	for _, ic := range n.sortedIn {
		buf = replay.AppendI64(buf, int64(ic.cfg.ID))
		buf = replay.AppendI64(buf, int64(ic.owed))
		buf = replay.AppendI64(buf, int64(len(ic.recvQ)))
		for _, m := range ic.recvQ {
			buf = replay.AppendMeta(buf, m, ctx)
		}
	}
	return buf
}

// ReplayShift implements replay.Periodic.
func (n *NI) ReplayShift(s *replay.Shift) {
	n.ensureSorted()
	n.flitIndex += s.Epochs * n.dFlit
	n.paddingSum += s.Epochs * n.dPadding
	for i := range n.flitBuf {
		n.flitBuf[i] = replay.ShiftPhit(n.flitBuf[i], s)
	}
	for _, oc := range n.sortedOut {
		oc.sent += s.Epochs * oc.dSent
		oc.blocked += s.Epochs * oc.dBlocked
		oc.queue.Adjust(func(m phit.Meta, pushed, visible clock.Time) (phit.Meta, clock.Time, clock.Time) {
			return replay.ShiftMeta(m, s), pushed + clock.Time(s.DT), visible + clock.Time(s.DT)
		})
	}
	for _, ic := range n.sortedIn {
		ic.delivered += s.Epochs * ic.dDelivered
		if ic.lastMoved {
			ic.lastAt = replay.ShiftTime(ic.lastAt, s.DT)
		}
		for i := range ic.recvQ {
			ic.recvQ[i] = replay.ShiftMeta(ic.recvQ[i], s)
		}
		// Re-append the epoch's latency samples once per replayed epoch:
		// latencies are time differences, identical in every epoch, and
		// the histogram keeps raw samples in insertion order, so the
		// result is bit-identical to a cycle-accurate run.
		if ic.mSamples > ic.pSamples {
			tail := append([]float64(nil), ic.latency.Samples()[ic.pSamples:ic.mSamples]...)
			for e := int64(0); e < s.Epochs; e++ {
				for _, v := range tail {
					ic.latency.Add(v)
				}
			}
		}
	}
	n.rmValid = false
}
