package ni

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/reliable"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultSendCapacity is the default depth, in words, of the IP-to-NI
// bi-synchronous FIFO of each connection.
const DefaultSendCapacity = 32

// OutConnConfig configures one connection sourced at this NI.
type OutConnConfig struct {
	ID phit.ConnID
	// Header is the encoded header word (path + destination queue id)
	// with a zero credit field; per-packet credits are merged in.
	Header phit.Word
	// Headers optionally overrides Header per injection slot: the
	// allocator may reserve different (equal-length) paths for
	// different slots of one connection, and each packet must follow
	// the path its slot was reserved on.
	Headers map[int]phit.Word
	// InitialCredits is the remote receive queue capacity in words.
	InitialCredits int
	// PairedIn names the in-connection at this NI whose owed credits
	// ride on this connection's headers (phit.None if no pairing).
	PairedIn phit.ConnID
	// SendCapacity is the IP-side FIFO depth in words (0 selects
	// DefaultSendCapacity).
	SendCapacity int
}

// InConnConfig configures one connection terminating at this NI.
type InConnConfig struct {
	ID phit.ConnID
	// QID is this connection's receive queue index, as encoded in the
	// headers the sender builds.
	QID int
	// RecvCapacity is the receive queue depth in words; it must match
	// the sender's InitialCredits.
	RecvCapacity int
	// CreditFor names the out-connection at this NI that is credited by
	// the credit field of this connection's incoming headers (phit.None
	// if this connection's headers never carry credits for us).
	CreditFor phit.ConnID
	// AutoDrain, when true (the common case: the IP consumes at line
	// rate), pops arriving words immediately and returns credits.
	AutoDrain bool
}

type outConn struct {
	cfg     OutConnConfig
	credits int
	queue   *sim.Bisync[phit.Meta] // IP -> NI
	sent    int64                  // payload words sent
	blocked int64                  // flit opportunities lost to credit exhaustion
	maxOcc  int                    // traced high-water mark of the queue depth

	// Hyperperiod-boundary snapshots and per-epoch deltas (see replay.go).
	mSent, mBlocked int64
	dSent, dBlocked int64
	mMaxOcc         int
}

type inConn struct {
	cfg       InConnConfig
	recvQ     []phit.Meta
	owed      int // credits owed to the sender (freed queue space)
	delivered int64
	latency   stats.Histogram // ns per payload word, inject->arrival
	// firstAt/lastAt are the arrival instants of the first and last
	// delivered word. Kept in exact picoseconds (converted to ns only at
	// the stats boundary) so hyperperiod replay can shift them by whole
	// epochs without floating-point drift.
	firstAt clock.Time
	lastAt  clock.Time

	// Hyperperiod-boundary snapshots and per-epoch deltas (see replay.go).
	mDelivered, dDelivered int64
	mFirstAt, mLastAt      clock.Time
	lastMoved              bool
	mSamples, pSamples     int

	// record, when set, logs every payload arrival instant — the raw
	// material of the composability experiments (cycle-exact timing
	// comparison across runs).
	record   bool
	arrivals []clock.Time
}

// An NI is the network interface simulation component.
type NI struct {
	name   string
	clk    *clock.Clock
	layout phit.HeaderLayout
	table  *slots.Table

	in  *sim.Wire[phit.Phit] // from router
	out *sim.Wire[phit.Phit] // to router

	outByID map[phit.ConnID]*outConn
	inByID  map[phit.ConnID]*inConn
	inByQID map[int]*inConn

	// Sender state.
	flitIndex int64 // count of flit cycles begun
	openConn  phit.ConnID
	flitBuf   [phit.FlitWords]phit.Phit

	// Receiver state.
	curIn      *inConn
	inPacket   bool
	sampled    phit.Phit
	paddingSum int64

	// phase tracks the word index within the current flit cycle in
	// component mode; in wrapper (flit-granular) mode it is unused.
	wrapped bool

	// dropPacket discards the remainder of an incoming packet whose
	// header was unusable (unknown queue) in collecting mode.
	dropPacket bool

	// rep receives envelope violations (protocol breaks, flow-control
	// failures, packetisation state errors); nil preserves the original
	// fail-fast panics.
	rep fault.Reporter

	// tr, when non-nil, receives this NI's flit-lifecycle events
	// (injection, send, slot builds, ejection, credits, back-pressure).
	tr *trace.Emitter

	// rel, when non-nil, is the end-to-end reliability shell wrapped
	// around this NI's kernel ports: flits are CRC-stamped and windowed on
	// the way out and verified, filtered and acked on the way in. Nil (the
	// default) keeps the baseline protocol; the hot-path cost is then one
	// pointer test per phit.
	rel *reliable.Endpoint

	// Hyperperiod replay bookkeeping (see replay.go). sortedOut/sortedIn
	// cache the connections in id order for deterministic fingerprints.
	rmValid            bool
	rmNow              clock.Time
	mFlit, dFlit       int64
	mPadding, dPadding int64
	sortedOut          []*outConn
	sortedIn           []*inConn
	sortedOK           bool
}

// New builds an NI clocked by clk with the given header layout and slot
// table. in/out are the wires to and from the attached router (either may
// be nil for NIs used only in one direction, e.g. in unit tests).
func New(name string, clk *clock.Clock, layout phit.HeaderLayout, table *slots.Table,
	in, out *sim.Wire[phit.Phit]) *NI {
	if err := layout.Validate(); err != nil {
		panic(fmt.Sprintf("ni %s: %v", name, err))
	}
	return &NI{
		name:    name,
		clk:     clk,
		layout:  layout,
		table:   table,
		in:      in,
		out:     out,
		outByID: make(map[phit.ConnID]*outConn),
		inByID:  make(map[phit.ConnID]*inConn),
		inByQID: make(map[int]*inConn),
	}
}

// AddOutConn registers a connection sourced at this NI.
func (n *NI) AddOutConn(cfg OutConnConfig) {
	if cfg.ID == phit.None {
		panic(fmt.Sprintf("ni %s: out connection with reserved id 0", n.name))
	}
	if _, dup := n.outByID[cfg.ID]; dup {
		panic(fmt.Sprintf("ni %s: duplicate out connection %d", n.name, cfg.ID))
	}
	if cfg.InitialCredits < 0 {
		panic(fmt.Sprintf("ni %s: connection %d negative credits", n.name, cfg.ID))
	}
	cap := cfg.SendCapacity
	if cap == 0 {
		cap = DefaultSendCapacity
	}
	n.outByID[cfg.ID] = &outConn{
		cfg:     cfg,
		credits: cfg.InitialCredits,
		queue:   sim.NewBisync[phit.Meta](fmt.Sprintf("%s.c%d.send", n.name, cfg.ID), cap, n.clk.Period),
	}
	n.sortedOK = false
}

// AddInConn registers a connection terminating at this NI.
func (n *NI) AddInConn(cfg InConnConfig) {
	if cfg.ID == phit.None {
		panic(fmt.Sprintf("ni %s: in connection with reserved id 0", n.name))
	}
	if _, dup := n.inByID[cfg.ID]; dup {
		panic(fmt.Sprintf("ni %s: duplicate in connection %d", n.name, cfg.ID))
	}
	if _, dup := n.inByQID[cfg.QID]; dup {
		panic(fmt.Sprintf("ni %s: duplicate queue id %d", n.name, cfg.QID))
	}
	if cfg.QID < 0 || cfg.QID > n.layout.MaxQID() {
		panic(fmt.Sprintf("ni %s: queue id %d outside layout range 0..%d", n.name, cfg.QID, n.layout.MaxQID()))
	}
	ic := &inConn{cfg: cfg}
	n.inByID[cfg.ID] = ic
	n.inByQID[cfg.QID] = ic
	n.sortedOK = false
}

// Offer enqueues one word of payload for the connection from the IP side,
// returning false when the IP-side FIFO is full (the blocking write of the
// paper: the IP retries next cycle). now must be the caller's current
// time.
func (n *NI) Offer(now clock.Time, conn phit.ConnID, meta phit.Meta) bool {
	oc := n.mustOut(conn)
	if !oc.queue.CanPush() {
		return false
	}
	meta.Conn = conn
	oc.queue.Push(now, meta)
	if n.tr != nil {
		n.tr.Emit(trace.Event{Time: now, Kind: trace.Inject, Conn: conn, Seq: meta.Seq, Slot: trace.NoSlot})
		if l := oc.queue.Len(); l > oc.maxOcc {
			oc.maxOcc = l
			n.tr.Emit(trace.Event{Time: now, Kind: trace.Occupancy, Arg: int64(l), Slot: trace.NoSlot})
		}
	}
	return true
}

// SendQueueSpace returns the free space of the connection's IP-side FIFO.
func (n *NI) SendQueueSpace(conn phit.ConnID) int {
	oc := n.mustOut(conn)
	return oc.queue.Cap() - oc.queue.Len()
}

// Consume pops up to max words from the connection's receive queue,
// returning credits to the sender. It is how a modelled IP reads data when
// AutoDrain is off.
func (n *NI) Consume(conn phit.ConnID, max int) []phit.Meta {
	ic := n.mustIn(conn)
	k := len(ic.recvQ)
	if k > max {
		k = max
	}
	out := append([]phit.Meta(nil), ic.recvQ[:k]...)
	ic.recvQ = ic.recvQ[k:]
	ic.owed += k
	return out
}

func (n *NI) mustOut(conn phit.ConnID) *outConn {
	oc := n.outByID[conn]
	if oc == nil {
		panic(fmt.Sprintf("ni %s: unknown out connection %d", n.name, conn))
	}
	return oc
}

func (n *NI) mustIn(conn phit.ConnID) *inConn {
	ic := n.inByID[conn]
	if ic == nil {
		panic(fmt.Sprintf("ni %s: unknown in connection %d", n.name, conn))
	}
	return ic
}

// SetReporter routes the NI's envelope checks to r; nil restores the
// fail-fast panics. An installed reliability endpoint follows the NI's
// reporter.
func (n *NI) SetReporter(r fault.Reporter) {
	n.rep = r
	if n.rel != nil {
		n.rel.SetReporter(r)
	}
}

// SetTracer installs the NI's lifecycle-event emitter; nil disables
// tracing (the default, and free: every emission site is a pointer test).
// An installed reliability endpoint follows the NI's emitter.
func (n *NI) SetTracer(e *trace.Emitter) {
	n.tr = e
	if n.rel != nil {
		n.rel.SetTracer(e)
	}
}

// SetReliable installs the end-to-end reliability endpoint around this
// NI's kernel ports (nil restores the baseline protocol). The endpoint
// inherits the NI's reporter and tracer and returns acked words through
// the NI's credit counters.
func (n *NI) SetReliable(ep *reliable.Endpoint) {
	n.rel = ep
	if ep != nil {
		ep.SetReporter(n.rep)
		ep.SetTracer(n.tr)
		ep.BindCredit(n.ackCredits)
	}
}

// Reliable returns the installed reliability endpoint (nil when off).
func (n *NI) Reliable() *reliable.Endpoint { return n.rel }

// ackCredits returns cumulative-ack progress to a sender's end-to-end
// credit counter — the reliable-mode replacement for the in-header credit
// field (whose incremental deltas a lossy link could destroy).
func (n *NI) ackCredits(now clock.Time, conn phit.ConnID, words int) {
	oc := n.mustOut(conn)
	oc.credits += words
	if oc.credits > oc.cfg.InitialCredits {
		fault.Report(n.rep, fault.Violation{
			Kind: fault.CreditError, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
			Detail: fmt.Sprintf("connection %d ack credits %d exceed capacity %d, clamped",
				conn, oc.credits, oc.cfg.InitialCredits),
		})
		oc.credits = oc.cfg.InitialCredits
	}
	if n.tr != nil {
		n.tr.Emit(trace.Event{Time: now, Kind: trace.Credit, Conn: conn,
			Arg: int64(words), Slot: trace.NoSlot})
	}
}

// Name implements sim.Component.
func (n *NI) Name() string { return n.name }

// Clock implements sim.Component.
func (n *NI) Clock() *clock.Clock { return n.clk }

// Sample implements sim.Component.
func (n *NI) Sample(now clock.Time) {
	if n.in != nil {
		n.sampled = n.in.Read()
	} else {
		n.sampled = phit.IdlePhit
	}
}

// Update implements sim.Component.
func (n *NI) Update(now clock.Time) {
	if n.wrapped {
		panic(fmt.Sprintf("ni %s: engine Update on a wrapper-mode NI", n.name))
	}
	edge, ok := n.clk.EdgeIndex(now)
	if !ok {
		panic(fmt.Sprintf("ni %s: update off-edge at %d ps", n.name, now))
	}
	n.receive(now, n.sampled)
	w := int(edge % phit.FlitWords)
	if w == 0 {
		slot := int((edge / phit.FlitWords) % int64(n.table.Size()))
		n.buildFlit(now, slot)
		n.flitIndex++
	}
	if n.out != nil {
		n.out.Drive(n.flitBuf[w])
	} else if n.flitBuf[w].Valid {
		fault.Report(n.rep, fault.Violation{
			Kind: fault.RouteError, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
			Detail: "valid phit but no output wire, phit dropped",
		})
	}
}

// StepFlit advances the NI by one flit cycle in wrapper (asynchronous)
// mode: the in token's phits are received, the next slot's flit is built
// and returned. The slot counter advances one slot per call — the
// iteration count, not wall-clock time, indexes the TDM table, which is
// how the adapted slot allocation of paper Section VI stays valid under
// plesiochronous clocks. A wrapped NI must not also be registered with the
// engine as a component.
func (n *NI) StepFlit(now clock.Time, in phit.Flit) phit.Flit {
	n.wrapped = true
	for _, p := range in {
		n.receive(now, p)
	}
	slot := int(n.flitIndex % int64(n.table.Size()))
	n.buildFlit(now, slot)
	n.flitIndex++
	var out phit.Flit
	copy(out[:], n.flitBuf[:])
	return out
}

// receive dispatches one arriving phit. In baseline mode it goes straight
// to the protocol engine; in reliable mode the reliability endpoint first
// reassembles, CRC-verifies and sequence-filters whole flits, and only the
// phits of clean in-order flits reach the protocol engine — exactly the
// stream the baseline would have seen on a fault-free network.
func (n *NI) receive(now clock.Time, p phit.Phit) {
	if n.rel == nil {
		n.receivePhit(now, p)
		return
	}
	f, ok := n.rel.Accept(now, p)
	if !ok {
		return
	}
	for _, q := range f {
		n.receivePhit(now, q)
	}
}

// receivePhit processes one arriving phit. With a reporter set, every
// envelope break degrades gracefully — the offending phit (or the rest of
// its packet) is dropped and a Violation recorded — instead of panicking.
func (n *NI) receivePhit(now clock.Time, p phit.Phit) {
	if !p.Valid {
		return
	}
	if !n.inPacket {
		if p.Kind != phit.Header && p.Kind != phit.CreditOnly {
			fault.Report(n.rep, fault.Violation{
				Kind: fault.ProtocolError, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("expected header, got %v (conn %d), phit dropped", p.Kind, p.Meta.Conn),
			})
			return
		}
		qid := n.layout.QID(p.Data)
		ic := n.inByQID[qid]
		if ic == nil {
			fault.Report(n.rep, fault.Violation{
				Kind: fault.UnknownQueue, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("header for unknown queue %d (conn %d), packet dropped", qid, p.Meta.Conn),
			})
			// Swallow the rest of the packet: its payload belongs to no
			// receive queue we know.
			n.inPacket = true
			n.dropPacket = true
			n.curIn = nil
			if p.EoP {
				n.inPacket = false
				n.dropPacket = false
			}
			return
		}
		n.curIn = ic
		n.dropPacket = false
		if cr := n.layout.Credits(p.Data); cr > 0 {
			target := ic.cfg.CreditFor
			if target == phit.None {
				fault.Report(n.rep, fault.Violation{
					Kind: fault.CreditError, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
					Detail: fmt.Sprintf("%d credits arrived on connection %d with no credit target, credits discarded",
						cr, ic.cfg.ID),
				})
			} else {
				oc := n.mustOut(target)
				// Credits travel in flit units (one credit = FlitWords
				// words of freed buffer), tripling the return bandwidth
				// of the narrow header field.
				oc.credits += cr * phit.FlitWords
				if oc.credits > oc.cfg.InitialCredits {
					fault.Report(n.rep, fault.Violation{
						Kind: fault.CreditError, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
						Detail: fmt.Sprintf("connection %d credits %d exceed capacity %d — duplicate credit return, clamped",
							target, oc.credits, oc.cfg.InitialCredits),
					})
					oc.credits = oc.cfg.InitialCredits
				}
				if n.tr != nil {
					n.tr.Emit(trace.Event{Time: now, Kind: trace.Credit, Conn: target,
						Arg: int64(cr * phit.FlitWords), Slot: trace.NoSlot})
				}
			}
		}
		n.inPacket = true
	} else if n.dropPacket {
		// Discarding the remainder of a packet with an unusable header.
	} else {
		switch p.Kind {
		case phit.Payload:
			ic := n.curIn
			if len(ic.recvQ) >= ic.cfg.RecvCapacity && !ic.cfg.AutoDrain {
				fault.Report(n.rep, fault.Violation{
					Kind: fault.QueueOverflow, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
					Detail: fmt.Sprintf("receive queue overflow on connection %d — end-to-end flow control violated, word dropped",
						ic.cfg.ID),
				})
				break
			}
			lat := float64(now-p.Meta.Injected) / float64(clock.Nanosecond)
			ic.latency.Add(lat)
			ic.delivered++
			ic.lastAt = now
			if ic.delivered == 1 {
				ic.firstAt = now
			}
			if ic.record {
				ic.arrivals = append(ic.arrivals, now)
			}
			if n.tr != nil {
				n.tr.Emit(trace.Event{Time: now, Ref: p.Meta.Injected, Kind: trace.Eject,
					Conn: ic.cfg.ID, Seq: p.Meta.Seq, Slot: trace.NoSlot})
			}
			if ic.cfg.AutoDrain {
				ic.owed++
			} else {
				ic.recvQ = append(ic.recvQ, p.Meta)
			}
		case phit.Padding:
			n.paddingSum++
		default:
			fault.Report(n.rep, fault.Violation{
				Kind: fault.ProtocolError, Component: "ni " + n.name, Time: now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("%v phit inside packet (conn %d), phit dropped", p.Kind, p.Meta.Conn),
			})
		}
	}
	if p.EoP {
		n.inPacket = false
		n.dropPacket = false
	}
}

// headerFor returns the connection's header word for packets opened in
// the given slot.
func (n *NI) headerFor(oc *outConn, slot int) phit.Word {
	if oc.cfg.Headers != nil {
		if h, ok := oc.cfg.Headers[slot%n.table.Size()]; ok {
			return h
		}
	}
	return oc.cfg.Header
}

// buildFlit decides the content of the flit injected in this slot and
// stores it in flitBuf.
func (n *NI) buildFlit(now clock.Time, slot int) {
	for i := range n.flitBuf {
		n.flitBuf[i] = phit.IdlePhit
	}
	owner := n.table.Owner(slot)
	if owner == phit.None {
		if n.openConn != phit.None {
			fault.Report(n.rep, fault.Violation{
				Kind: fault.PacketState, Component: "ni " + n.name, Time: now, Slot: slot,
				Detail: fmt.Sprintf("packet of connection %d left open into unowned slot, packet force-closed",
					n.openConn),
			})
			n.openConn = phit.None
		}
		return
	}
	oc := n.mustOut(owner)
	if n.rel != nil {
		n.buildFlitReliable(now, slot, owner, oc)
		return
	}
	continuing := n.openConn == owner
	if n.openConn != phit.None && !continuing {
		fault.Report(n.rep, fault.Violation{
			Kind: fault.PacketState, Component: "ni " + n.name, Time: now, Slot: slot,
			Detail: fmt.Sprintf("packet of connection %d open entering slot owned by %d, packet force-closed",
				n.openConn, owner),
		})
		n.openConn = phit.None
	}

	maxPayload := phit.FlitWords - 1
	if continuing {
		maxPayload = phit.FlitWords
	}
	avail := 0
	for avail < maxPayload && avail < oc.credits && oc.queue.ValidAt(now, avail) {
		avail++
	}
	if oc.queue.Valid(now) && oc.credits == 0 {
		oc.blocked++
		if n.tr != nil {
			n.tr.Emit(trace.Event{Time: now, Kind: trace.Blocked, Conn: owner, Slot: int32(slot)})
		}
	}

	// Credits owed on the paired reverse connection (only headers carry
	// them), in flit units; a sub-flit remainder simply waits for the
	// next header, costing at most FlitWords-1 words of effective
	// buffer (the capacity sizing accounts for it).
	owed := 0
	var pairedIn *inConn
	if oc.cfg.PairedIn != phit.None {
		pairedIn = n.mustIn(oc.cfg.PairedIn)
		owed = pairedIn.owed / phit.FlitWords
		if owed > n.layout.MaxCredits() {
			owed = n.layout.MaxCredits()
		}
	}

	word := 0
	if !continuing {
		if avail == 0 && owed == 0 {
			return // nothing to send: idle slot
		}
		hdr, err := n.layout.WithCredits(n.headerFor(oc, slot), owed)
		if err != nil {
			panic(fmt.Sprintf("ni %s: %v", n.name, err))
		}
		if pairedIn != nil {
			pairedIn.owed -= owed * phit.FlitWords
		}
		kind := phit.Header
		if avail == 0 {
			kind = phit.CreditOnly
		}
		n.flitBuf[0] = phit.Phit{Valid: true, Kind: kind, Data: hdr, Meta: phit.Meta{Conn: owner}}
		word = 1
	} else if avail == 0 {
		fault.Report(n.rep, fault.Violation{
			Kind: fault.PacketState, Component: "ni " + n.name, Time: now, Slot: slot,
			Detail: fmt.Sprintf("connection %d packet kept open with nothing to send, padded and closed", owner),
		})
		// Fall through with no payload: the flit fills with padding and
		// the keep-open test below closes the packet with an EoP.
	}

	sent := 0
	for ; word < phit.FlitWords && sent < avail; word++ {
		meta := oc.queue.Pop(now)
		meta.Sent = now
		n.flitBuf[word] = phit.Phit{Valid: true, Kind: phit.Payload, Data: phit.Word(meta.Seq), Meta: meta}
		if n.tr != nil {
			n.tr.Emit(trace.Event{Time: now, Ref: meta.Injected, Kind: trace.Send,
				Conn: owner, Seq: meta.Seq, Slot: int32(slot)})
		}
		sent++
	}
	oc.credits -= sent
	oc.sent += int64(sent)
	for ; word < phit.FlitWords; word++ {
		n.flitBuf[word] = phit.Phit{Valid: true, Kind: phit.Padding, Meta: phit.Meta{Conn: owner}}
	}
	if n.tr != nil && n.flitBuf[0].Valid {
		n.tr.Emit(trace.Event{Time: now, Kind: trace.SlotStart, Conn: owner, Slot: int32(slot), Arg: int64(sent)})
	}

	// Keep the packet open only if this connection owns the next slot
	// *on the same path* (a continuation flit follows the route held by
	// the routers' HPUs, so it must occupy the slots reserved for that
	// route) and can certainly send at least one payload word in it.
	next := n.table.Owner(slot + 1)
	keepOpen := next == owner && oc.credits > 0 && oc.queue.ValidAt(now, 0) &&
		n.headerFor(oc, slot) == n.headerFor(oc, slot+1)
	if keepOpen {
		n.openConn = owner
	} else {
		n.openConn = phit.None
		n.flitBuf[phit.FlitWords-1].EoP = true
	}
}

// buildFlitReliable is the reliable-mode flit builder. It differs from the
// baseline in three deliberate ways: header elision is disabled (every
// flit is self-contained — own header, CRC and EoP — so a lost flit never
// poisons its neighbour and go-back-N can rebuild any flit from its window
// entry alone); the header's credit field stays zero (cumulative acks on
// the sideband replace the lossy incremental credit returns); and due
// retransmissions pre-empt fresh payload in the connection's own reserved
// slots, so recovery consumes no other connection's bandwidth.
func (n *NI) buildFlitReliable(now clock.Time, slot int, owner phit.ConnID, oc *outConn) {
	if n.rel.Quarantined(owner) {
		return // quarantined: the reserved slots fall idle
	}
	hdr := n.headerFor(oc, slot)
	if f, words, ok := n.rel.Resend(now, owner, hdr); ok {
		copy(n.flitBuf[:], f[:])
		if n.tr != nil {
			n.tr.Emit(trace.Event{Time: now, Kind: trace.SlotStart, Conn: owner,
				Slot: int32(slot), Arg: int64(words)})
		}
		return
	}
	if n.rel.Quarantined(owner) {
		return // Resend exhausted the retry budget just now
	}
	avail := 0
	for avail < phit.FlitWords-1 && avail < oc.credits && oc.queue.ValidAt(now, avail) {
		avail++
	}
	if oc.queue.Valid(now) && oc.credits == 0 {
		oc.blocked++
		if n.tr != nil {
			n.tr.Emit(trace.Event{Time: now, Kind: trace.Blocked, Conn: owner, Slot: int32(slot)})
		}
	}
	if avail == 0 && !n.rel.WantAck(owner) {
		return // idle slot: nothing to send, no ack owed
	}
	kind := phit.Header
	if avail == 0 {
		kind = phit.CreditOnly
	}
	n.flitBuf[0] = phit.Phit{Valid: true, Kind: kind, Data: hdr, Meta: phit.Meta{Conn: owner}}
	word := 1
	for ; word <= avail; word++ {
		meta := oc.queue.Pop(now)
		meta.Sent = now
		n.flitBuf[word] = phit.Phit{Valid: true, Kind: phit.Payload, Data: phit.Word(meta.Seq), Meta: meta}
		if n.tr != nil {
			n.tr.Emit(trace.Event{Time: now, Ref: meta.Injected, Kind: trace.Send,
				Conn: owner, Seq: meta.Seq, Slot: int32(slot)})
		}
	}
	oc.credits -= avail
	oc.sent += int64(avail)
	for ; word < phit.FlitWords; word++ {
		n.flitBuf[word] = phit.Phit{Valid: true, Kind: phit.Padding, Meta: phit.Meta{Conn: owner}}
	}
	n.flitBuf[phit.FlitWords-1].EoP = true
	if n.tr != nil {
		n.tr.Emit(trace.Event{Time: now, Kind: trace.SlotStart, Conn: owner,
			Slot: int32(slot), Arg: int64(avail)})
	}
	n.rel.FinishTx(now, owner, (*phit.Flit)(&n.flitBuf), avail)
}
