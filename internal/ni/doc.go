// Package ni implements the aelite Network Interface (NI).
//
// The NI is where all intelligence of the GS-only network lives (the
// routers have none, by design):
//
//   - TDM injection: a slot table of the network-wide size regulates when
//     each connection may inject a flit (paper Section III). Slots are one
//     flit cycle (3 cycles) long.
//   - Packetisation: the first word of a packet is a header carrying the
//     source route, the destination queue id and piggybacked end-to-end
//     credits. A packet is extended into the next slot (header elision,
//     3 payload words instead of 2) only when the same connection owns
//     that next slot — otherwise the packet is closed with an
//     End-of-Packet marker so the routers' port-hold logic stays correct.
//     Used slots always carry whole 3-word flits (padded if necessary) so
//     mesochronous link FSMs can forward fixed-size flits.
//   - End-to-end flow control: credit-based. A sender holds credits equal
//     to the free space (in words) of the remote receive queue and blocks
//     when they run out, so receive queues can never overflow and an
//     oversubscribing application only slows itself down (paper Section
//     IV.A). Credits are returned piggybacked in headers of the paired
//     reverse connection, or in credit-only packets when that connection
//     has no data of its own.
//   - GALS edge: IPs reach the NI through bi-synchronous FIFOs, so IP
//     clocks are unconstrained.
//
// The receive side is self-describing (headers carry the queue id), so
// only injection needs slot knowledge — routers and receive paths are
// TDM-oblivious.
//
// Reliable mode (SetReliable) wraps the port in the end-to-end
// reliability shell of package reliable: outgoing flits carry a
// sequence/CRC sideband and enter a go-back-N retransmission window,
// incoming phits pass the shell's CRC and ordering checks before normal
// receive processing, and the in-header credit scheme is replaced by
// cumulative acks piggybacked on the paired reverse connection. Header
// elision is disabled so every flit is self-contained and individually
// retransmittable; due retransmissions pre-empt fresh payload in the
// connection's own reserved slots, so recovery never consumes another
// connection's bandwidth.
package ni
