// Package router implements the aelite router (paper Section IV).
//
// The router is deliberately minimal — that minimality is the paper's
// point. It has:
//
//   - three pipeline stages, matching the 3-word flit: an input register,
//     a Header Parsing Unit (HPU) per input, and a switch;
//   - no routing table: the output port comes from the source route in the
//     packet header, and the HPU shifts the path field one hop per router;
//   - no arbiter: TDM slot allocation guarantees no two flits ever want
//     the same output in the same cycle. The switch *asserts* this; a
//     collision means the allocation (or a model) is broken and the
//     simulation halts rather than silently arbitrating;
//   - no link-level flow control and a single one-word buffer per input
//     (the input register): GS-only operation means a flit that enters a
//     router always has a reserved slot downstream;
//   - explicit sideband valid and End-of-Packet bits, so the HPU never
//     decodes data and stays off the critical path;
//   - parameters only for data width (the header layout) and arity.
//
// Core is the cycle-exact state machine; Component adapts it to the
// simulation engine for synchronous and mesochronous operation. The
// asynchronous wrapper (package wrapper) reuses the same Core at flit
// granularity, so there is a single source of truth for router behaviour.
package router
