package router

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/trace"
)

// StepFlitDirect advances the router by one whole flit cycle in wrapper
// (asynchronous) mode. The wrapper feeds the datapath directly, bypassing
// the input registers — the paper's Section VI notes the fire signal
// reaches the Output Port Interfaces with a 2-cycle delay "corresponding
// to the data path in the router without input registers" — so the output
// flits belong to the same dataflow iteration as the input flits. The
// physical 2-cycle latency is modelled by the wrapper's channel delay, not
// here.
//
// in[i] is the token consumed from input port i this iteration (empty
// tokens are all-idle flits); the result gives the token produced on each
// output port. Contention is an envelope violation: with the adapted slot
// allocation (one extra shift per initial channel token) no two flits may
// collide. In strict mode (nil reporter) it panics; in collecting mode the
// colliding phit is dropped and a fault.Violation recorded.
func (c *Core) StepFlitDirect(in []phit.Flit, out []phit.Flit) []phit.Flit {
	if len(in) != c.arity {
		panic(fmt.Sprintf("router %s: %d input tokens for arity %d", c.name, len(in), c.arity))
	}
	if cap(out) < c.arity {
		out = make([]phit.Flit, c.arity)
	}
	out = out[:c.arity]
	for i := range out {
		out[i] = phit.Flit{}
	}
	for w := 0; w < phit.FlitWords; w++ {
		for i := 0; i < c.arity; i++ {
			p := in[i][w]
			st := &c.hpu[i]
			if !p.Valid {
				continue
			}
			if !st.inPacket {
				if p.Kind != phit.Header && p.Kind != phit.CreditOnly {
					fault.Report(c.rep, fault.Violation{
						Kind: fault.ProtocolError, Component: "router " + c.name, Time: c.now, Slot: fault.NoSlot,
						Detail: fmt.Sprintf("input %d expected header, got %v (conn %d), phit dropped",
							i, p.Kind, p.Meta.Conn),
					})
					continue
				}
				port, shifted := c.layout.NextPort(p.Data)
				p.Data = shifted
				st.outPort = port
				st.inPacket = true
			}
			if p.EoP {
				st.inPacket = false
			}
			if st.outPort < 0 || st.outPort >= c.arity {
				fault.Report(c.rep, fault.Violation{
					Kind: fault.RouteError, Component: "router " + c.name, Time: c.now, Slot: fault.NoSlot,
					Detail: fmt.Sprintf("input %d routed to non-existent port %d, phit dropped", i, st.outPort),
				})
				continue
			}
			if out[st.outPort][w].Valid {
				fault.Report(c.rep, fault.Violation{
					Kind: fault.SlotContention, Component: "router " + c.name, Time: c.now, Slot: fault.NoSlot,
					Detail: fmt.Sprintf("token contention on output %d word %d between connections %d and %d",
						st.outPort, w, out[st.outPort][w].Meta.Conn, p.Meta.Conn),
				})
				continue
			}
			out[st.outPort][w] = p
			c.forwarded++
			if c.tr != nil {
				// One event per flit token: a flit's first word is never
				// idle, so emit only when every earlier word was.
				start := true
				for pw := 0; pw < w; pw++ {
					if in[i][pw].Valid {
						start = false
						break
					}
				}
				if start {
					c.tr.Emit(trace.Event{Time: c.now, Kind: trace.RouterForward, Conn: p.Meta.Conn,
						Seq: p.Meta.Seq, Arg: int64(st.outPort), Slot: trace.NoSlot})
				}
			}
		}
	}
	return out
}
