package router

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/sim"
)

// TestRouterViolations drives every converted envelope check of the router
// core — the pipelined Step datapath and the wrapper-mode StepFlitDirect —
// in strict mode (panic) and collecting mode (exactly one violation of the
// expected kind, datapath keeps going).
func TestRouterViolations(t *testing.T) {
	eopHeader := func(t *testing.T, path []int, conn phit.ConnID) phit.Phit {
		h := header(t, path, 0)
		h.EoP = true
		h.Meta.Conn = conn
		return h
	}
	cases := []struct {
		name string
		kind fault.Kind
		run  func(t *testing.T, c *Core)
	}{
		{
			name: "step/expected-header",
			kind: fault.ProtocolError,
			run: func(t *testing.T, c *Core) {
				var out []phit.Phit
				out = stepOne(c, payload(1, false), out)
				for i := 0; i < 2; i++ {
					out = stepOne(c, phit.IdlePhit, out)
				}
			},
		},
		{
			name: "step/route-off-mesh",
			kind: fault.RouteError,
			run: func(t *testing.T, c *Core) {
				var out []phit.Phit
				out = stepOne(c, eopHeader(t, []int{5}, 1), out) // port 5 on an arity-2 router
				for i := 0; i < 2; i++ {
					out = stepOne(c, phit.IdlePhit, out)
				}
			},
		},
		{
			name: "step/contention",
			kind: fault.SlotContention,
			run: func(t *testing.T, c *Core) {
				in := []phit.Phit{eopHeader(t, []int{1}, 1), eopHeader(t, []int{1}, 2)}
				var out []phit.Phit
				out = c.Step(in, out)
				for i := 0; i < 2; i++ {
					out = c.Step(make([]phit.Phit, 2), out)
				}
			},
		},
		{
			name: "flit/expected-header",
			kind: fault.ProtocolError,
			run: func(t *testing.T, c *Core) {
				var in [2]phit.Flit
				in[0][0] = payload(1, false)
				c.StepFlitDirect(in[:], nil)
			},
		},
		{
			name: "flit/route-off-mesh",
			kind: fault.RouteError,
			run: func(t *testing.T, c *Core) {
				var in [2]phit.Flit
				in[0][0] = eopHeader(t, []int{5}, 1)
				c.StepFlitDirect(in[:], nil)
			},
		},
		{
			name: "flit/contention",
			kind: fault.SlotContention,
			run: func(t *testing.T, c *Core) {
				var in [2]phit.Flit
				in[0][0] = eopHeader(t, []int{1}, 1)
				in[1][0] = eopHeader(t, []int{1}, 2)
				c.StepFlitDirect(in[:], nil)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/strict", func(t *testing.T) {
			c := NewCore("r", 2, layout)
			defer func() {
				if recover() == nil {
					t.Error("no panic in strict mode")
				}
			}()
			tc.run(t, c)
		})
		t.Run(tc.name+"/collect", func(t *testing.T) {
			c := NewCore("r", 2, layout)
			col := fault.NewCollector()
			c.SetReporter(col)
			tc.run(t, c)
			if col.Total() != 1 {
				t.Fatalf("collected %d violations, want exactly 1: %v", col.Total(), col.Violations())
			}
			if got := col.Violations()[0].Kind; got != tc.kind {
				t.Errorf("violation kind %v, want %v", got, tc.kind)
			}
		})
	}
}

// TestCoreContentionKeepsFirst: in collecting mode the first-switched phit
// survives a contention; only the collider is dropped.
func TestCoreContentionKeepsFirst(t *testing.T) {
	c := NewCore("r", 2, layout)
	col := fault.NewCollector()
	c.SetReporter(col)
	var in [2]phit.Flit
	h0 := header(t, []int{1}, 3)
	h0.EoP = true
	h0.Meta.Conn = 1
	h1 := h0
	h1.Meta.Conn = 2
	in[0][0] = h0
	in[1][0] = h1
	out := c.StepFlitDirect(in[:], nil)
	if !out[1][0].Valid || out[1][0].Meta.Conn != 1 {
		t.Errorf("first phit did not survive the contention: %v", out[1][0])
	}
	if c.Forwarded() != 1 {
		t.Errorf("Forwarded = %d, want 1", c.Forwarded())
	}
}

// TestComponentUnconnectedOutputCollects: the engine-adapter variant of the
// route-off-mesh check records a violation and keeps the simulation
// running (the strict variant lives in router_test.go).
func TestComponentUnconnectedOutputCollects(t *testing.T) {
	eng := sim.New()
	clk := clock.NewMHz("clk", 500, 0)
	in := sim.NewWire[phit.Phit]("in")
	eng.AddWire(in)
	r := NewComponent("r", 2, layout, clk)
	r.ConnectIn(0, in)
	col := fault.NewCollector()
	r.SetReporter(col)
	eng.Add(r)
	eng.Add(&scriptedSource{name: "src", clk: clk, out: in, seq: []phit.Phit{
		header(t, []int{1}, 0),
		{Valid: true, Kind: phit.Payload, EoP: true},
	}})
	eng.Run(10 * clk.Period)
	if col.Total() == 0 {
		t.Fatal("no violation for a flit routed off the edge of the network")
	}
	for _, v := range col.Violations() {
		if v.Kind != fault.RouteError {
			t.Errorf("unexpected violation kind %v", v.Kind)
		}
	}
}
