package router

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

var layout = phit.DefaultLayout

func header(t *testing.T, path []int, qid int) phit.Phit {
	t.Helper()
	w, err := layout.Encode(path, qid, 0)
	if err != nil {
		t.Fatal(err)
	}
	return phit.Phit{Valid: true, Kind: phit.Header, Data: w}
}

func payload(seq int64, eop bool) phit.Phit {
	return phit.Phit{Valid: true, Kind: phit.Payload, EoP: eop, Data: phit.Word(seq), Meta: phit.Meta{Seq: seq}}
}

// step feeds one cycle with a single valid input on port 0.
func stepOne(c *Core, p phit.Phit, out []phit.Phit) []phit.Phit {
	in := make([]phit.Phit, c.Arity())
	in[0] = p
	return c.Step(in, out)
}

func TestCoreThreeCycleLatency(t *testing.T) {
	c := NewCore("r", 3, layout)
	var out []phit.Phit
	h := header(t, []int{2}, 4)

	out = stepOne(c, h, out) // call 0: into input register
	for _, p := range out {
		if p.Valid {
			t.Fatal("output valid after 1 call")
		}
	}
	out = stepOne(c, payload(1, false), out) // call 1: header in HPU
	for _, p := range out {
		if p.Valid {
			t.Fatal("output valid after 2 calls")
		}
	}
	// The router drives its output during the third cycle of a flit; the
	// downstream element samples it one cycle later, completing the
	// 3-cycle per-hop latency.
	out = stepOne(c, payload(2, true), out) // call 2: header on output
	if !out[2].Valid || out[2].Kind != phit.Header {
		t.Fatalf("header not on port 2 after 3 cycles: %v", out)
	}
	// Path must have been consumed (shifted).
	if got := layout.QID(out[2].Data); got != 4 {
		t.Errorf("qid corrupted: %d", got)
	}
	port, _ := layout.NextPort(out[2].Data)
	if port != 0 {
		t.Errorf("path not shifted: next port %d", port)
	}
	out = stepOne(c, phit.IdlePhit, out)
	if !out[2].Valid || out[2].Meta.Seq != 1 {
		t.Fatalf("payload 1 not following header: %v", out[2])
	}
	out = stepOne(c, phit.IdlePhit, out)
	if !out[2].Valid || !out[2].EoP || out[2].Meta.Seq != 2 {
		t.Fatalf("payload 2 with EoP missing: %v", out[2])
	}
	if c.Forwarded() != 3 {
		t.Errorf("Forwarded = %d", c.Forwarded())
	}
}

func TestCorePortHeldUntilEoP(t *testing.T) {
	c := NewCore("r", 4, layout)
	var out []phit.Phit
	stepOne(c, header(t, []int{1}, 0), out) // call 0
	// A gap (idle cycle) inside the packet must not end it.
	stepOne(c, phit.IdlePhit, out)     // call 1
	stepOne(c, payload(1, false), out) // call 2
	stepOne(c, phit.IdlePhit, out)     // call 3
	// Output lags input by two calls: call 4 emits call 2's payload.
	out = stepOne(c, payload(2, true), out) // call 4
	if !out[1].Valid || out[1].Meta.Seq != 1 {
		t.Fatalf("payload 1 not routed to held port: %v", out)
	}
	out = stepOne(c, phit.IdlePhit, out) // call 5: gap
	if out[1].Valid {
		t.Fatalf("unexpected output during gap: %v", out)
	}
	out = stepOne(c, phit.IdlePhit, out) // call 6: p2
	if !out[1].Valid || out[1].Meta.Seq != 2 || !out[1].EoP {
		t.Fatalf("payload 2 not routed: %v", out)
	}
	// After EoP, a new header may pick another port.
	stepOne(c, header(t, []int{3}, 0), out) // call 7
	stepOne(c, phit.IdlePhit, out)          // call 8
	out = stepOne(c, phit.IdlePhit, out)    // call 9: header out
	if !out[3].Valid {
		t.Fatalf("new packet not routed to port 3: %v", out)
	}
}

func TestCoreContentionPanics(t *testing.T) {
	c := NewCore("r", 2, layout)
	in := make([]phit.Phit, 2)
	in[0] = header(t, []int{1}, 0)
	in[1] = header(t, []int{1}, 1) // same output port 1
	var out []phit.Phit
	out = c.Step(in, out)
	out = c.Step(make([]phit.Phit, 2), out)
	defer func() {
		if r := recover(); r == nil {
			t.Error("no panic on TDM contention")
		} else if !strings.Contains(r.(string), "contention") {
			t.Errorf("unexpected panic: %v", r)
		}
	}()
	c.Step(make([]phit.Phit, 2), out)
}

func TestCorePayloadWithoutHeaderPanics(t *testing.T) {
	c := NewCore("r", 2, layout)
	var out []phit.Phit
	stepOne(c, payload(1, false), out)
	defer func() {
		if recover() == nil {
			t.Error("no panic for payload outside a packet")
		}
	}()
	stepOne(c, phit.IdlePhit, out)
}

func TestCoreBadArityPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"arity":       func() { NewCore("r", 1, layout) },
		"layout":      func() { NewCore("r", 2, phit.HeaderLayout{}) },
		"input count": func() { NewCore("r", 3, layout).Step(make([]phit.Phit, 2), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// scriptedSource drives a fixed phit sequence onto a wire, then idles.
type scriptedSource struct {
	name string
	clk  *clock.Clock
	out  *sim.Wire[phit.Phit]
	seq  []phit.Phit
	pos  int
}

func (s *scriptedSource) Name() string          { return s.name }
func (s *scriptedSource) Clock() *clock.Clock   { return s.clk }
func (s *scriptedSource) Sample(now clock.Time) {}
func (s *scriptedSource) Update(now clock.Time) {
	if s.pos < len(s.seq) {
		s.out.Drive(s.seq[s.pos])
		s.pos++
	} else {
		s.out.Drive(phit.IdlePhit)
	}
}

func TestComponentWiring(t *testing.T) {
	eng := sim.New()
	clk := clock.NewMHz("clk", 500, 0)
	in := sim.NewWire[phit.Phit]("in")
	out := sim.NewWire[phit.Phit]("out")
	eng.AddWire(in)
	eng.AddWire(out)
	r := NewComponent("r", 3, layout, clk)
	r.ConnectIn(0, in)
	r.ConnectOut(2, out)
	eng.Add(r)
	if r.Name() != "r" || r.Clock() != clk {
		t.Error("component identity wrong")
	}
	src := &scriptedSource{name: "src", clk: clk, out: in, seq: []phit.Phit{
		header(t, []int{2}, 3),
		{Valid: true, Kind: phit.Payload, EoP: true, Meta: phit.Meta{Seq: 9}},
	}}
	eng.Add(src)

	sawHeader, sawPayload := false, false
	for i := 0; i < 10; i++ {
		eng.Run(eng.Now() + clk.Period)
		got := out.Read()
		if got.Valid && got.Kind == phit.Header {
			sawHeader = true
			if qid := layout.QID(got.Data); qid != 3 {
				t.Errorf("qid = %d", qid)
			}
		}
		if got.Valid && got.Kind == phit.Payload {
			sawPayload = true
			if got.Meta.Seq != 9 || !got.EoP {
				t.Errorf("payload = %v", got)
			}
		}
	}
	if !sawHeader || !sawPayload {
		t.Fatalf("header seen %v, payload seen %v", sawHeader, sawPayload)
	}
	if r.Core().Forwarded() != 2 {
		t.Errorf("Forwarded = %d", r.Core().Forwarded())
	}
}

func TestComponentUnconnectedOutputPanics(t *testing.T) {
	eng := sim.New()
	clk := clock.NewMHz("clk", 500, 0)
	in := sim.NewWire[phit.Phit]("in")
	eng.AddWire(in)
	r := NewComponent("r", 2, layout, clk)
	r.ConnectIn(0, in)
	eng.Add(r)
	eng.Add(&scriptedSource{name: "src", clk: clk, out: in, seq: []phit.Phit{
		header(t, []int{1}, 0),
		{Valid: true, Kind: phit.Payload, EoP: true},
	}})
	defer func() {
		if recover() == nil {
			t.Error("no panic for a flit routed off the edge of the network")
		}
	}()
	eng.Run(10 * clk.Period)
}

func TestStepFlitDirect(t *testing.T) {
	c := NewCore("r", 3, layout)
	var in [3]phit.Flit
	in[0][0] = header(t, []int{2}, 5)
	in[0][1] = payload(1, false)
	in[0][2] = payload(2, true)
	out := c.StepFlitDirect(in[:], nil)
	if !out[2][0].Valid || out[2][0].Kind != phit.Header {
		t.Fatalf("flit not switched to port 2: %v", out[2])
	}
	if out[2][1].Meta.Seq != 1 || out[2][2].Meta.Seq != 2 || !out[2][2].EoP {
		t.Errorf("payload order wrong: %v", out[2])
	}
	// Empty token in -> empty tokens out.
	var empty [3]phit.Flit
	out = c.StepFlitDirect(empty[:], out)
	for i, f := range out {
		if !f.Empty() {
			t.Errorf("port %d produced a non-empty token from empty inputs", i)
		}
	}
}

func TestStepFlitDirectContentionPanics(t *testing.T) {
	c := NewCore("r", 2, layout)
	var in [2]phit.Flit
	in[0][0] = header(t, []int{1}, 0)
	in[1][0] = header(t, []int{1}, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on token contention")
		}
	}()
	c.StepFlitDirect(in[:], nil)
}

// TestStepFlitDirectPacketAcrossTokens: header elision — a packet spanning
// two consecutive tokens holds its port.
func TestStepFlitDirectPacketAcrossTokens(t *testing.T) {
	c := NewCore("r", 3, layout)
	var t1, t2 [3]phit.Flit
	t1[0][0] = header(t, []int{2}, 0)
	t1[0][1] = payload(1, false)
	t1[0][2] = payload(2, false) // packet stays open
	t2[0][0] = payload(3, false)
	t2[0][1] = payload(4, false)
	t2[0][2] = payload(5, true)
	out := c.StepFlitDirect(t1[:], nil)
	if !out[2][2].Valid {
		t.Fatal("first token not forwarded")
	}
	out = c.StepFlitDirect(t2[:], out)
	if out[2][0].Meta.Seq != 3 || !out[2][2].EoP {
		t.Fatalf("continuation token not forwarded on held port: %v", out[2])
	}
}
