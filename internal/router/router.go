package router

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/trace"
)

// A Source provides a phit when sampled; sim.Wire[phit.Phit] implements it.
type Source interface{ Read() phit.Phit }

// A Sink accepts a driven phit; sim.Wire[phit.Phit] implements it.
type Sink interface{ Drive(phit.Phit) }

// hpuState tracks one input's position within a packet.
type hpuState struct {
	inPacket bool
	outPort  int
}

// stage2Reg is the register between the HPU and the switch.
type stage2Reg struct {
	p       phit.Phit
	outPort int
}

// Core is the cycle-exact aelite router state machine. Step advances it by
// one clock cycle. Core carries no notion of time or wiring; callers own
// both.
type Core struct {
	name   string
	layout phit.HeaderLayout
	arity  int

	reg1 []phit.Phit // input registers (stage 1)
	reg2 []stage2Reg // HPU output registers (stage 2)
	hpu  []hpuState

	// flitLeft counts the words remaining in the flit currently crossing
	// each input's switch stage, so tracing can emit one RouterForward per
	// flit instead of one per word. A flit's first word is never idle, so
	// the counter self-aligns: zero at a valid word marks a flit start.
	flitLeft []int8

	// forwarded counts valid phits switched, a cheap progress metric.
	// mForwarded/dForwarded are its hyperperiod-boundary snapshot and
	// per-epoch delta (see replay.go).
	forwarded              int64
	mForwarded, dForwarded int64
	rmValid                bool

	// rep receives envelope violations (TDM contention, protocol errors);
	// nil preserves the fail-fast panics. now is the adapter-maintained
	// simulation time stamped onto violations — Core itself is timeless.
	rep fault.Reporter
	now clock.Time

	// tr, when non-nil, receives a RouterForward event per switched flit
	// (stamped with the flit's first word), using the adapter-maintained now.
	tr *trace.Emitter
}

// NewCore returns a router core with the given arity (number of input and
// output ports) and header layout.
func NewCore(name string, arity int, layout phit.HeaderLayout) *Core {
	if arity < 2 {
		panic(fmt.Sprintf("router %s: arity %d below minimum 2", name, arity))
	}
	if err := layout.Validate(); err != nil {
		panic(fmt.Sprintf("router %s: %v", name, err))
	}
	return &Core{
		name:     name,
		layout:   layout,
		arity:    arity,
		reg1:     make([]phit.Phit, arity),
		reg2:     make([]stage2Reg, arity),
		hpu:      make([]hpuState, arity),
		flitLeft: make([]int8, arity),
	}
}

// Arity returns the port count.
func (c *Core) Arity() int { return c.arity }

// Name returns the router's name.
func (c *Core) Name() string { return c.name }

// Forwarded returns the number of valid phits switched so far.
func (c *Core) Forwarded() int64 { return c.forwarded }

// SetReporter routes the router's envelope checks (TDM contention,
// protocol errors, routing errors) to r; nil restores fail-fast panics.
func (c *Core) SetReporter(r fault.Reporter) { c.rep = r }

// SetTracer installs the router's lifecycle-event emitter; nil disables
// tracing.
func (c *Core) SetTracer(e *trace.Emitter) { c.tr = e }

// SetNow stamps subsequent violations with the given simulation time; the
// engine adapter and the asynchronous wrapper call it, keeping Core itself
// free of any notion of time.
func (c *Core) SetNow(t clock.Time) { c.now = t }

// Step advances the router by one cycle: in[i] is the phit present at
// input port i this cycle; the returned slice (valid until the next call)
// holds the phit driven on each output port. The output corresponds to
// inputs presented three cycles earlier.
func (c *Core) Step(in []phit.Phit, out []phit.Phit) []phit.Phit {
	if len(in) != c.arity {
		panic(fmt.Sprintf("router %s: %d inputs for arity %d", c.name, len(in), c.arity))
	}
	if cap(out) < c.arity {
		out = make([]phit.Phit, c.arity)
	}
	out = out[:c.arity]
	for i := range out {
		out[i] = phit.IdlePhit
	}

	// Stage 3: switch reg2 to the outputs. TDM contention-freedom means
	// at most one input targets each output; hitting a collision is a
	// broken allocation, not an arbitration event. In collecting mode the
	// first-switched phit wins and the collider is dropped — hardware
	// would garble both, but keeping one preserves more observable
	// behaviour downstream.
	for i := range c.reg2 {
		r := &c.reg2[i]
		if !r.p.Valid {
			if c.flitLeft[i] > 0 {
				c.flitLeft[i]-- // idle padding inside a flit
			}
			continue
		}
		flitStart := c.flitLeft[i] == 0
		if flitStart {
			c.flitLeft[i] = phit.FlitWords - 1
		} else {
			c.flitLeft[i]--
		}
		if r.outPort < 0 || r.outPort >= c.arity {
			fault.Report(c.rep, fault.Violation{
				Kind: fault.RouteError, Component: "router " + c.name, Time: c.now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("input %d routed to non-existent port %d (conn %d), phit dropped",
					i, r.outPort, r.p.Meta.Conn),
			})
			continue
		}
		if out[r.outPort].Valid {
			fault.Report(c.rep, fault.Violation{
				Kind: fault.SlotContention, Component: "router " + c.name, Time: c.now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("TDM contention on output %d between connections %d and %d — slot allocation violated",
					r.outPort, out[r.outPort].Meta.Conn, r.p.Meta.Conn),
			})
			continue
		}
		out[r.outPort] = r.p
		c.forwarded++
		if c.tr != nil && flitStart {
			c.tr.Emit(trace.Event{Time: c.now, Kind: trace.RouterForward, Conn: r.p.Meta.Conn,
				Seq: r.p.Meta.Seq, Arg: int64(r.outPort), Slot: trace.NoSlot})
		}
	}

	// Stage 2: HPU. A valid phit outside a packet is a header: consume
	// one hop of the path and latch the output port until EoP. A
	// non-header phit outside a packet (a dropped or corrupted header
	// upstream) is discarded until the next packet start.
	for i := range c.reg1 {
		p := c.reg1[i]
		st := &c.hpu[i]
		if !p.Valid {
			c.reg2[i] = stage2Reg{}
			continue
		}
		if !st.inPacket {
			if p.Kind != phit.Header && p.Kind != phit.CreditOnly {
				fault.Report(c.rep, fault.Violation{
					Kind: fault.ProtocolError, Component: "router " + c.name, Time: c.now, Slot: fault.NoSlot,
					Detail: fmt.Sprintf("input %d expected header, got %v (conn %d), phit dropped",
						i, p.Kind, p.Meta.Conn),
				})
				c.reg2[i] = stage2Reg{}
				continue
			}
			port, shifted := c.layout.NextPort(p.Data)
			p.Data = shifted
			st.outPort = port
			st.inPacket = true
		}
		if p.EoP {
			st.inPacket = false
		}
		c.reg2[i] = stage2Reg{p: p, outPort: st.outPort}
	}

	// Stage 1: input registers.
	copy(c.reg1, in)
	return out
}

// Component adapts a Core to the simulation engine: inputs are sampled
// from Sources and outputs driven to Sinks each cycle of the router's
// clock.
type Component struct {
	core *Core
	clk  *clock.Clock

	in      []Source
	out     []Sink
	sampled []phit.Phit
	outBuf  []phit.Phit
}

// NewComponent wraps a new Core for the engine. Inputs and outputs are
// connected afterwards with ConnectIn/ConnectOut; unconnected ports read
// idle and discard idle-only output (driving a valid phit to an
// unconnected output panics — it means a route leaves the network).
func NewComponent(name string, arity int, layout phit.HeaderLayout, clk *clock.Clock) *Component {
	return &Component{
		core:    NewCore(name, arity, layout),
		clk:     clk,
		in:      make([]Source, arity),
		out:     make([]Sink, arity),
		sampled: make([]phit.Phit, arity),
	}
}

// Core exposes the underlying state machine (used by tests and tools).
func (r *Component) Core() *Core { return r.core }

// ConnectIn attaches a source to input port i.
func (r *Component) ConnectIn(i int, s Source) { r.in[i] = s }

// ConnectOut attaches a sink to output port i.
func (r *Component) ConnectOut(i int, s Sink) { r.out[i] = s }

// Name implements sim.Component.
func (r *Component) Name() string { return r.core.name }

// Clock implements sim.Component.
func (r *Component) Clock() *clock.Clock { return r.clk }

// SetReporter routes the wrapped core's envelope checks to r.
func (r *Component) SetReporter(rep fault.Reporter) { r.core.SetReporter(rep) }

// SetTracer installs the wrapped core's lifecycle-event emitter.
func (r *Component) SetTracer(e *trace.Emitter) { r.core.SetTracer(e) }

// Sample implements sim.Component.
func (r *Component) Sample(now clock.Time) {
	for i, s := range r.in {
		if s == nil {
			r.sampled[i] = phit.IdlePhit
		} else {
			r.sampled[i] = s.Read()
		}
	}
}

// Update implements sim.Component.
func (r *Component) Update(now clock.Time) {
	r.core.SetNow(now)
	r.outBuf = r.core.Step(r.sampled, r.outBuf)
	for i, s := range r.out {
		if s != nil {
			s.Drive(r.outBuf[i])
		} else if r.outBuf[i].Valid {
			fault.Report(r.core.rep, fault.Violation{
				Kind: fault.RouteError, Component: "router " + r.core.name, Time: now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("valid phit for unconnected output %d (conn %d), phit dropped",
					i, r.outBuf[i].Meta.Conn),
			})
		}
	}
}
