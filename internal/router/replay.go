package router

// Hyperperiod replay support: the engine-adapted router implements
// replay.Periodic. The router's behaviour never depends on absolute time
// (SetNow only stamps violation reports), so its pattern period is a
// single clock cycle; its architectural state is the three pipeline
// stages plus the per-input packet trackers.

import (
	"repro/internal/clock"
	"repro/internal/replay"
)

// ReplayOK implements replay.Periodic.
func (r *Component) ReplayOK() bool { return true }

// ReplayPeriod implements replay.Periodic.
func (r *Component) ReplayPeriod() clock.Duration { return r.clk.Period }

// ReplayMark implements replay.Periodic.
func (r *Component) ReplayMark(now clock.Time) bool {
	c := r.core
	first := !c.rmValid
	c.dForwarded = c.forwarded - c.mForwarded
	c.mForwarded = c.forwarded
	c.rmValid = true
	return !first
}

// ReplayFingerprint implements replay.Periodic.
func (r *Component) ReplayFingerprint(ctx *replay.Ctx, buf []byte) []byte {
	c := r.core
	for _, p := range c.reg1 {
		buf = replay.AppendPhit(buf, p, ctx)
	}
	for _, reg := range c.reg2 {
		buf = replay.AppendPhit(buf, reg.p, ctx)
		buf = replay.AppendI64(buf, int64(reg.outPort))
	}
	for _, st := range c.hpu {
		var f int64
		if st.inPacket {
			f = 1
		}
		buf = replay.AppendI64(buf, f<<32|int64(uint32(st.outPort)))
	}
	for _, fl := range c.flitLeft {
		buf = append(buf, byte(fl))
	}
	return buf
}

// ReplayShift implements replay.Periodic.
func (r *Component) ReplayShift(s *replay.Shift) {
	c := r.core
	c.forwarded += s.Epochs * c.dForwarded
	for i := range c.reg1 {
		c.reg1[i] = replay.ShiftPhit(c.reg1[i], s)
	}
	for i := range c.reg2 {
		c.reg2[i].p = replay.ShiftPhit(c.reg2[i].p, s)
	}
	c.rmValid = false
}
