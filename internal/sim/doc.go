// Package sim is a deterministic, multi-clock-domain, cycle-accurate
// simulation engine for on-chip networks.
//
// The engine advances absolute time (integer picoseconds, see package
// clock) from rising edge to rising edge. All components whose clocks have
// an edge at the current instant execute in two phases:
//
//  1. Sample: every due component reads its input wires. Wires still hold
//     the values committed before this instant, so a reader clocked at the
//     same instant as a writer observes the writer's *previous* output —
//     exactly the register-transfer semantics of synchronous hardware.
//  2. Update: every due component computes its next state and drives its
//     output wires. Drives are buffered.
//  3. Commit: all buffered drives become visible.
//
// Components in different clock domains simply fire at different instants;
// cross-domain channels (bi-synchronous FIFOs, token channels) are modelled
// in package sim as well, with explicit forwarding delays, because they are
// the only legal clock-domain crossings in aelite.
//
// The engine is strictly single-threaded (design-space parallelism lives
// in internal/parallel, one private engine per point) and deterministic
// to the picosecond, which is what makes trace comparison, composability
// checks and the replay fast path (internal/replay, via the FastPath
// hook) sound.
package sim
