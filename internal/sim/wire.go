package sim

import (
	"fmt"

	"repro/internal/clock"
)

// A Wire carries a value of type T between two components in the same
// clock domain with register-transfer semantics: a value driven during
// Update at instant t becomes visible to Sample at instants > t.
//
// Wires must be registered with Engine.AddWire so their drives commit at
// the end of each instant.
type Wire[T any] struct {
	name    string
	cur     T
	next    T
	pending bool

	// intercept, when non-nil, observes and may override the wire's
	// effective value at every commit (fault injection: drop, corrupt or
	// replay values in place, without adding a pipeline stage that would
	// perturb timing by itself). driven reports whether a component drove
	// the wire this instant.
	intercept func(v T, driven bool) T
}

// NewWire returns a wire carrying the zero value of T.
func NewWire[T any](name string) *Wire[T] { return &Wire[T]{name: name} }

// Name returns the wire's diagnostic name.
func (w *Wire[T]) Name() string { return w.name }

// Read returns the currently committed value. Components call this during
// Sample.
func (w *Wire[T]) Read() T { return w.cur }

// Drive buffers a new value; it becomes visible after the commit phase of
// the current instant. Components call this during Update.
func (w *Wire[T]) Drive(v T) {
	w.next = v
	w.pending = true
}

func (w *Wire[T]) commit() {
	driven := w.pending
	if w.pending {
		w.cur = w.next
		w.pending = false
	}
	if w.intercept != nil {
		w.cur = w.intercept(w.cur, driven)
	}
}

// SetIntercept installs (or, with nil, removes) a commit-time intercept.
// The intercept sees the value about to become visible and returns the
// value that actually does; it runs on every commit of the engine, with
// driven reporting whether this instant drove a fresh value.
func (w *Wire[T]) SetIntercept(f func(v T, driven bool) T) { w.intercept = f }

// HasIntercept reports whether a commit-time intercept is installed. The
// replay fast path refuses to engage while any registered wire has one,
// because an intercept makes commits data-dependent.
func (w *Wire[T]) HasIntercept() bool { return w.intercept != nil }

// Adjust rewrites the committed value in place. It is the replay fast
// path's state-shift hook and must only be called between instants with no
// pending drive (the fast path guarantees this at epoch boundaries).
func (w *Wire[T]) Adjust(f func(T) T) { w.cur = f(w.cur) }

// A Bisync is a bi-synchronous FIFO: the only legal mesochronous
// clock-domain crossing in aelite (paper Section V, after [14], [18]).
//
// The writer pushes one word per writer-clock edge; a pushed word becomes
// visible to the reader ForwardDelay picoseconds later, modelling the
// FIFO's synchroniser forwarding delay (the paper assumes 1-2 reader
// cycles). Capacity is enforced: aelite sizes the FIFO (4 words) so that it
// never fills under the skew assumptions, and the model panics if that
// invariant is violated, because real hardware would lose data (there is no
// full/accept handshake, by design).
type Bisync[T any] struct {
	name         string
	capacity     int
	forwardDelay clock.Duration

	entries []bisyncEntry[T]
	// maxOccupancy records the high-water mark for invariant checks.
	maxOccupancy int
}

type bisyncEntry[T any] struct {
	v       T
	pushed  clock.Time // writer instant of the push
	visible clock.Time // first instant at which the reader may pop this
}

// NewBisync returns a bi-synchronous FIFO with the given capacity (words)
// and forwarding delay.
func NewBisync[T any](name string, capacity int, forwardDelay clock.Duration) *Bisync[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: bisync %q capacity must be positive", name))
	}
	return &Bisync[T]{name: name, capacity: capacity, forwardDelay: forwardDelay}
}

// Name returns the FIFO's diagnostic name.
func (b *Bisync[T]) Name() string { return b.name }

// Push enqueues a word at writer time now. It panics on overflow: the
// aelite link FIFO is sized to never fill, so overflow is a modelling or
// configuration error, not a runtime condition.
func (b *Bisync[T]) Push(now clock.Time, v T) {
	if len(b.entries) >= b.capacity {
		panic(fmt.Sprintf("sim: bisync %q overflow (capacity %d) at t=%d ps", b.name, b.capacity, now))
	}
	b.entries = append(b.entries, bisyncEntry[T]{v: v, pushed: now, visible: now + b.forwardDelay})
	if len(b.entries) > b.maxOccupancy {
		b.maxOccupancy = len(b.entries)
	}
}

// ForwardDelay returns the current synchroniser forwarding delay.
func (b *Bisync[T]) ForwardDelay() clock.Duration { return b.forwardDelay }

// SetForwardDelay changes the forwarding delay for subsequently pushed
// words (fault injection: a slow or metastable synchroniser). Words already
// in flight keep their original visibility times.
func (b *Bisync[T]) SetForwardDelay(d clock.Duration) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: bisync %q non-positive forwarding delay %d", b.name, d))
	}
	b.forwardDelay = d
}

// HeadAge returns how long ago the head word was pushed, at reader time
// now. It panics if the FIFO is empty.
func (b *Bisync[T]) HeadAge(now clock.Time) clock.Duration {
	if len(b.entries) == 0 {
		panic(fmt.Sprintf("sim: bisync %q head age of empty FIFO", b.name))
	}
	return now - b.entries[0].pushed
}

// CanPush reports whether a push would succeed.
func (b *Bisync[T]) CanPush() bool { return len(b.entries) < b.capacity }

// Valid reports whether the reader can pop a word at reader time now.
func (b *Bisync[T]) Valid(now clock.Time) bool {
	return len(b.entries) > 0 && b.entries[0].visible <= now
}

// Peek returns the head word without popping. It panics if !Valid(now).
func (b *Bisync[T]) Peek(now clock.Time) T {
	if !b.Valid(now) {
		panic(fmt.Sprintf("sim: bisync %q peek on invalid head at t=%d ps", b.name, now))
	}
	return b.entries[0].v
}

// Pop removes and returns the head word. It panics if !Valid(now).
func (b *Bisync[T]) Pop(now clock.Time) T {
	v := b.Peek(now)
	copy(b.entries, b.entries[1:])
	b.entries = b.entries[:len(b.entries)-1]
	return v
}

// ValidAt reports whether the reader could pop at least i+1 words at time
// now (i.e. entry i is visible).
func (b *Bisync[T]) ValidAt(now clock.Time, i int) bool {
	return i < len(b.entries) && b.entries[i].visible <= now
}

// Len returns the current occupancy (including not-yet-visible words).
func (b *Bisync[T]) Len() int { return len(b.entries) }

// Cap returns the FIFO capacity in words.
func (b *Bisync[T]) Cap() int { return b.capacity }

// MaxOccupancy returns the high-water mark since construction.
func (b *Bisync[T]) MaxOccupancy() int { return b.maxOccupancy }

// Scan calls f for every queued entry, oldest first, with the entry's
// value, push instant and visibility instant. The replay fast path uses it
// to fingerprint in-flight words.
func (b *Bisync[T]) Scan(f func(v T, pushed, visible clock.Time)) {
	for _, en := range b.entries {
		f(en.v, en.pushed, en.visible)
	}
}

// Adjust rewrites every queued entry in place, oldest first. It is the
// replay fast path's state-shift hook.
func (b *Bisync[T]) Adjust(f func(v T, pushed, visible clock.Time) (T, clock.Time, clock.Time)) {
	for i := range b.entries {
		en := &b.entries[i]
		en.v, en.pushed, en.visible = f(en.v, en.pushed, en.visible)
	}
}

// commit is a no-op; Bisync state changes are immediate but visibility is
// governed by timestamps. It satisfies committable so a Bisync may be
// registered like a wire for uniformity.
func (b *Bisync[T]) commit() {}

// A TokenChannel is the asynchronous channel used between wrapped network
// elements (paper Section VI). Tokens (whole flits, possibly empty) are
// transferred with a handshake delay; capacity models the depth of the
// wrapper's port FIFOs plus the link. Unlike Bisync it exposes space
// explicitly, because OPIs reserve space ahead of time.
type TokenChannel[T any] struct {
	name     string
	capacity int
	delay    clock.Duration
	entries  []bisyncEntry[T]
}

// NewTokenChannel returns a token channel with the given capacity and
// transfer delay.
func NewTokenChannel[T any](name string, capacity int, delay clock.Duration) *TokenChannel[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: token channel %q capacity must be positive", name))
	}
	return &TokenChannel[T]{name: name, capacity: capacity, delay: delay}
}

// Name returns the channel's diagnostic name.
func (t *TokenChannel[T]) Name() string { return t.name }

// CanPush reports whether the channel has space for another token.
func (t *TokenChannel[T]) CanPush() bool { return len(t.entries) < t.capacity }

// Prime injects an initial token that is visible immediately. The
// asynchronous wrappers prime every channel with empty tokens at reset
// (paper Section VI: "a few cycles are spent at reset to produce initial
// empty tokens... otherwise the system deadlocks").
func (t *TokenChannel[T]) Prime(v T) {
	if !t.CanPush() {
		panic(fmt.Sprintf("sim: token channel %q overflow while priming", t.name))
	}
	t.entries = append(t.entries, bisyncEntry[T]{v: v, visible: 0})
}

// Push enqueues a token at time now; it panics on overflow because the
// wrapper's OPI reserves space before sending.
func (t *TokenChannel[T]) Push(now clock.Time, v T) {
	if !t.CanPush() {
		panic(fmt.Sprintf("sim: token channel %q overflow (capacity %d) at t=%d ps", t.name, t.capacity, now))
	}
	t.entries = append(t.entries, bisyncEntry[T]{v: v, visible: now + t.delay})
}

// Valid reports whether a token is available at time now.
func (t *TokenChannel[T]) Valid(now clock.Time) bool {
	return len(t.entries) > 0 && t.entries[0].visible <= now
}

// Pop removes and returns the head token; panics if !Valid(now).
func (t *TokenChannel[T]) Pop(now clock.Time) T {
	if !t.Valid(now) {
		panic(fmt.Sprintf("sim: token channel %q pop on empty at t=%d ps", t.name, now))
	}
	v := t.entries[0].v
	copy(t.entries, t.entries[1:])
	t.entries = t.entries[:len(t.entries)-1]
	return v
}

// Len returns the number of queued tokens (including in-flight ones).
func (t *TokenChannel[T]) Len() int { return len(t.entries) }

func (t *TokenChannel[T]) commit() {}
