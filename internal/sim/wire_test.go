package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestWireCommit(t *testing.T) {
	w := NewWire[string]("w")
	if w.Name() != "w" {
		t.Errorf("Name = %q", w.Name())
	}
	w.Drive("x")
	if got := w.Read(); got != "" {
		t.Errorf("value visible before commit: %q", got)
	}
	w.commit()
	if got := w.Read(); got != "x" {
		t.Errorf("after commit: %q", got)
	}
	// Commit without a pending drive keeps the value.
	w.commit()
	if got := w.Read(); got != "x" {
		t.Errorf("idempotent commit: %q", got)
	}
}

func TestBisyncVisibilityDelay(t *testing.T) {
	b := NewBisync[int]("b", 4, 1000)
	b.Push(0, 42)
	if b.Valid(999) {
		t.Error("word visible before forwarding delay")
	}
	if !b.Valid(1000) {
		t.Error("word not visible at forwarding delay")
	}
	if got := b.Peek(1000); got != 42 {
		t.Errorf("Peek = %d", got)
	}
	if got := b.Pop(1000); got != 42 {
		t.Errorf("Pop = %d", got)
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestBisyncOrderAndOccupancy(t *testing.T) {
	b := NewBisync[int]("b", 4, 10)
	for i := 0; i < 4; i++ {
		b.Push(clock.Time(i), i)
	}
	if b.CanPush() {
		t.Error("CanPush on full FIFO")
	}
	if b.MaxOccupancy() != 4 {
		t.Errorf("MaxOccupancy = %d", b.MaxOccupancy())
	}
	if !b.ValidAt(100, 3) {
		t.Error("ValidAt(3) false after delay")
	}
	if b.ValidAt(100, 4) {
		t.Error("ValidAt(4) true beyond occupancy")
	}
	for i := 0; i < 4; i++ {
		if got := b.Pop(100); got != i {
			t.Errorf("pop %d = %d", i, got)
		}
	}
}

func TestBisyncOverflowPanics(t *testing.T) {
	b := NewBisync[int]("b", 1, 10)
	b.Push(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on overflow")
		}
	}()
	b.Push(0, 2)
}

func TestBisyncPopEmptyPanics(t *testing.T) {
	b := NewBisync[int]("b", 1, 10)
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty pop")
		}
	}()
	b.Pop(0)
}

func TestBisyncZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero capacity")
		}
	}()
	NewBisync[int]("b", 0, 10)
}

// TestBisyncFIFOQuick: random interleavings of pushes and delayed pops
// always pop in push order and never see a word early.
func TestBisyncFIFOQuick(t *testing.T) {
	f := func(ops []bool, delay uint8) bool {
		d := clock.Duration(delay%50) + 1
		b := NewBisync[int]("q", 1024, d)
		now := clock.Time(0)
		pushed, popped := 0, 0
		for _, isPush := range ops {
			now += 25
			if isPush {
				b.Push(now, pushed)
				pushed++
			} else if b.Valid(now) {
				if got := b.Pop(now); got != popped {
					return false
				}
				popped++
			}
		}
		// Drain: everything becomes visible eventually.
		now += clock.Time(d)
		for b.Valid(now) {
			if got := b.Pop(now); got != popped {
				return false
			}
			popped++
		}
		return popped == pushed
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTokenChannel(t *testing.T) {
	ch := NewTokenChannel[string]("ch", 2, 100)
	if ch.Name() != "ch" {
		t.Errorf("Name = %q", ch.Name())
	}
	ch.Prime("init")
	if !ch.Valid(0) {
		t.Error("primed token not immediately visible")
	}
	ch.Push(50, "x")
	if ch.CanPush() {
		t.Error("CanPush on full channel")
	}
	if got := ch.Pop(0); got != "init" {
		t.Errorf("Pop = %q", got)
	}
	if ch.Valid(100) {
		t.Error("pushed token visible before delay")
	}
	if got := ch.Pop(150); got != "x" {
		t.Errorf("Pop = %q", got)
	}
	if ch.Len() != 0 {
		t.Errorf("Len = %d", ch.Len())
	}
}

func TestTokenChannelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero capacity": func() { NewTokenChannel[int]("x", 0, 1) },
		"overflow": func() {
			ch := NewTokenChannel[int]("x", 1, 1)
			ch.Push(0, 1)
			ch.Push(0, 2)
		},
		"prime overflow": func() {
			ch := NewTokenChannel[int]("x", 1, 1)
			ch.Prime(1)
			ch.Prime(2)
		},
		"empty pop": func() { NewTokenChannel[int]("x", 1, 1).Pop(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
