package sim

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/trace"
)

// counter is a minimal component: it samples an input wire, adds one, and
// drives an output wire.
type counter struct {
	name     string
	clk      *clock.Clock
	in, out  *Wire[int]
	sampled  int
	updates  int
	lastTime clock.Time
}

func (c *counter) Name() string        { return c.name }
func (c *counter) Clock() *clock.Clock { return c.clk }
func (c *counter) Sample(now clock.Time) {
	if c.in != nil {
		c.sampled = c.in.Read()
	}
}
func (c *counter) Update(now clock.Time) {
	c.updates++
	c.lastTime = now
	if c.out != nil {
		c.out.Drive(c.sampled + 1)
	}
}

func TestEngineRunsEdges(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	eng.Run(5000)
	// Edges strictly after 0 and <= 5000: 1000..5000 = 5 edges.
	if a.updates != 5 {
		t.Errorf("updates = %d, want 5", a.updates)
	}
	if eng.Now() != 5000 {
		t.Errorf("Now = %d", eng.Now())
	}
	if eng.Edges() != 5 {
		t.Errorf("Edges = %d", eng.Edges())
	}
}

// TestRegisterSemantics: a chain a->w1->b->w2: values driven at instant t
// are visible only at instants > t, so the pipeline delays by one cycle
// per stage.
func TestRegisterSemantics(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	w1 := NewWire[int]("w1")
	w2 := NewWire[int]("w2")
	eng.AddWire(w1)
	eng.AddWire(w2)
	a := &counter{name: "a", clk: clk, out: w1}
	b := &counter{name: "b", clk: clk, in: w1, out: w2}
	eng.Add(a)
	eng.Add(b)
	eng.Run(1000) // one edge
	// a drove 1 into w1; b sampled the OLD w1 (0) and drove 1 into w2.
	if got := w1.Read(); got != 1 {
		t.Errorf("w1 = %d, want 1", got)
	}
	if got := w2.Read(); got != 1 {
		t.Errorf("w2 = %d, want 1 (sampled zero + 1)", got)
	}
	eng.Run(2000)
	if got := w2.Read(); got != 2 {
		t.Errorf("after 2 edges w2 = %d, want 2", got)
	}
}

// TestOrderIndependence: with two-phase execution, registration order of
// same-clock components does not change results.
func TestOrderIndependence(t *testing.T) {
	run := func(swap bool) int {
		eng := New()
		clk := clock.New("c", 1000, 0)
		w1 := NewWire[int]("w1")
		w2 := NewWire[int]("w2")
		eng.AddWire(w1)
		eng.AddWire(w2)
		a := &counter{name: "a", clk: clk, out: w1}
		b := &counter{name: "b", clk: clk, in: w1, out: w2}
		if swap {
			eng.Add(b)
			eng.Add(a)
		} else {
			eng.Add(a)
			eng.Add(b)
		}
		eng.Run(7000)
		return w2.Read()
	}
	if x, y := run(false), run(true); x != y {
		t.Errorf("order-dependent result: %d vs %d", x, y)
	}
}

func TestMultiDomainInterleaving(t *testing.T) {
	eng := New()
	c1 := clock.New("c1", 1000, 0)
	c2 := clock.New("c2", 1000, 500) // mesochronous, half-cycle offset
	a := &counter{name: "a", clk: c1}
	b := &counter{name: "b", clk: c2}
	eng.Add(a)
	eng.Add(b)
	instants := eng.Run(3000)
	// Edges: c1 at 1000,2000,3000; c2 at 500,1500,2500 -> 6 instants.
	if instants != 6 {
		t.Errorf("instants = %d, want 6", instants)
	}
	if a.updates != 3 || b.updates != 3 {
		t.Errorf("updates = %d,%d", a.updates, b.updates)
	}
	if a.lastTime != 3000 || b.lastTime != 2500 {
		t.Errorf("lastTime = %d,%d", a.lastTime, b.lastTime)
	}
}

func TestRunCycles(t *testing.T) {
	eng := New()
	clk := clock.New("c", 2000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	eng.RunCycles(clk, 4)
	if a.updates != 4 {
		t.Errorf("updates = %d, want 4", a.updates)
	}
	eng.RunCycles(clk, 0)
	if a.updates != 4 {
		t.Error("RunCycles(0) advanced the simulation")
	}
}

func TestComponentsSorted(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	eng.Add(&counter{name: "z", clk: clk})
	eng.Add(&counter{name: "a", clk: clk})
	got := eng.Components()
	if got[0].Name() != "a" || got[1].Name() != "z" {
		t.Errorf("Components not sorted: %v, %v", got[0].Name(), got[1].Name())
	}
}

func TestAddPanicsWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for component without clock")
		}
	}()
	New().Add(&counter{name: "x"})
}

type captureSink struct{ events []trace.Event }

func (c *captureSink) Event(ev trace.Event) { c.events = append(c.events, ev) }

func TestTracer(t *testing.T) {
	eng := New()
	if eng.Tracer() != nil {
		t.Error("tracing enabled by default")
	}
	bus := trace.NewBus()
	sink := &captureSink{}
	bus.Attach(sink)
	eng.SetTracer(bus)
	em := eng.Tracer().Emitter("test.comp")
	em.Emit(trace.Event{Time: 42, Kind: trace.Inject, Conn: 7})
	if len(sink.events) != 1 {
		t.Fatalf("events = %d", len(sink.events))
	}
	ev := sink.events[0]
	if ev.Time != 42 || ev.Kind != trace.Inject || ev.Conn != 7 {
		t.Errorf("event = %+v", ev)
	}
	if bus.ComponentName(ev.Comp) != "test.comp" {
		t.Errorf("component = %q", bus.ComponentName(ev.Comp))
	}
	eng.SetTracer(nil)
	if eng.Tracer() != nil {
		t.Error("tracer not cleared")
	}
}

// TestAtReturnsEffectiveFiringTime: scheduling a callback at or before the
// current instant cannot fire in the past, so At rounds it to the next
// executed instant — and must say so. A reconfiguration script that
// schedules "at now" needs the actual instant to reason about what state
// its callback will see; the old signature silently shifted it.
func TestAtReturnsEffectiveFiringTime(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	eng.Add(&counter{name: "a", clk: clk})
	eng.Run(5000) // now = 5000

	var fired []clock.Time
	record := func() { fired = append(fired, eng.Now()) }

	past := eng.At(4000, record)    // strictly in the past
	present := eng.At(5000, record) // at the current instant
	future := eng.At(6000, record)  // genuinely in the future
	if past != 5001 || present != 5001 {
		t.Errorf("effective times for past/present = %d, %d; want 5001, 5001", past, present)
	}
	if future != 6000 {
		t.Errorf("effective time for future = %d; want 6000", future)
	}

	eng.Run(7000)
	want := []clock.Time{past, present, future}
	if len(fired) != len(want) {
		t.Fatalf("fired %d callbacks, want %d", len(fired), len(want))
	}
	for i, at := range fired {
		if at != want[i] {
			t.Errorf("callback %d fired at %d, promised %d", i, at, want[i])
		}
	}
}

// oneShotDriver drives a single value on its first update, then goes
// quiet; it exists to leave a pending (uncommitted) drive on a wire.
type oneShotDriver struct {
	clk   *clock.Clock
	out   *Wire[int]
	v     int
	armed bool
}

func (d *oneShotDriver) Name() string          { return "oneshot" }
func (d *oneShotDriver) Clock() *clock.Clock   { return d.clk }
func (d *oneShotDriver) Sample(now clock.Time) {}
func (d *oneShotDriver) Update(now clock.Time) {
	if d.armed {
		d.armed = false
		d.out.Drive(d.v)
	}
}

// TestOrphanedClockedWireCommitsAfterRemove: a wire clocked on domain B
// normally commits only on B's edges. When Remove strips B's last
// component mid-run, B's edges stop executing — the orphan fallback must
// take over and commit the wire's pending drive at subsequent instants
// instead of leaving it latched forever.
func TestOrphanedClockedWireCommitsAfterRemove(t *testing.T) {
	eng := New()
	clkA := clock.New("a", 1000, 0)
	clkB := clock.New("b", 1000, 500)
	w := NewWire[int]("w")
	eng.AddWireClocked(w, clkB)
	sink := &counter{name: "sink", clk: clkB, in: w}
	drv := &oneShotDriver{clk: clkA, out: w, v: 42}
	eng.Add(drv)
	eng.Add(sink)

	eng.Run(400) // before any edge: nothing driven, nothing committed
	if got := w.Read(); got != 0 {
		t.Fatalf("w committed %d before any edge", got)
	}
	drv.armed = true
	eng.Run(1200) // drv drives 42 at 1000; clkB's next commit edge is 1500
	if got := w.Read(); got != 0 {
		t.Fatalf("w = %d; the drive must stay pending until a clkB edge", got)
	}
	if !eng.Remove(sink) {
		t.Fatal("Remove did not find the component")
	}
	// clkB now drives no component: its edges never execute. The pending
	// 42 must still land via the orphan fallback at the next instant.
	eng.Run(2200)
	if got := w.Read(); got != 42 {
		t.Fatalf("w = %d after orphaning; pending drive was never committed", got)
	}
}
